package xtq

import (
	"context"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const validQuery = `transform copy $a := doc("d") modify do delete $a//price return $a`

// TestEvalStreamPreservesKinds is the regression test for EvalStream's
// error classification: its fallback kind is KindIO (sinks and readers),
// but typed failures from inside the two passes must keep their own kind
// — a malformed document stays KindParse (with its position), a
// cancellation stays KindEval — instead of being blanket-classified.
func TestEvalStreamPreservesKinds(t *testing.T) {
	eng := NewEngine()
	p := mustPrepare(t, eng, validQuery)

	// Malformed document: the well-formedness violation detected inside
	// the first pass surfaces as KindParse, not as the KindIO fallback.
	_, err := p.EvalStream(context.Background(), FromString("<db>\n<part></db>"), Discard())
	var xe *Error
	if !errors.As(err, &xe) || xe.Kind != KindParse {
		t.Errorf("malformed document through EvalStream: kind = %v, want parse (err %v)", kindOf(err), err)
	} else if xe.Pos == "" {
		t.Errorf("parse error lost its position: %v", err)
	}

	// Cancellation inside the transform: KindEval, identity preserved.
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = p.EvalStream(cancelled, FromString("<db><part><price>9</price></part></db>"), Discard())
	if !errors.As(err, &xe) || xe.Kind != KindEval || !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled EvalStream: kind = %v, want eval wrapping context.Canceled (err %v)", kindOf(err), err)
	}

	// A source that cannot be opened is a genuine I/O failure.
	_, err = p.EvalStream(context.Background(), FileSource("/nonexistent/xtq-test.xml"), Discard())
	if !errors.As(err, &xe) || xe.Kind != KindIO {
		t.Errorf("unopenable source: kind = %v, want io (err %v)", kindOf(err), err)
	}
}

func kindOf(err error) ErrorKind {
	var xe *Error
	if errors.As(err, &xe) {
		return xe.Kind
	}
	return 0
}

// TestErrorTaxonomy drives every entry point into each failure mode and
// asserts the error carries the right Kind (and position, where the
// input has one) through errors.As.
func TestErrorTaxonomy(t *testing.T) {
	ctx := context.Background()
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	eng := NewEngine()

	cases := []struct {
		name    string
		run     func() error
		kind    ErrorKind
		wantPos bool
	}{
		{
			name: "malformed query",
			run: func() error {
				_, err := eng.Prepare("not a query")
				return err
			},
			kind:    KindParse,
			wantPos: true,
		},
		{
			name: "malformed path in query",
			run: func() error {
				_, err := eng.Prepare(`transform copy $a := doc("d") modify do delete $a/part[ return $a`)
				return err
			},
			kind:    KindParse,
			wantPos: true,
		},
		{
			name: "query outside the fragment",
			run: func() error {
				// An attribute step cannot be the target of an update.
				_, err := eng.Prepare(`transform copy $a := doc("d") modify do delete $a/part/@id return $a`)
				return err
			},
			kind: KindCompile,
		},
		{
			name: "malformed XML document",
			run: func() error {
				p := mustPrepare(t, eng, validQuery)
				_, err := p.Eval(ctx, FromString("<db>\n<part></db>"))
				return err
			},
			kind:    KindParse,
			wantPos: true,
		},
		{
			name: "malformed XML document in streaming",
			run: func() error {
				p := mustPrepare(t, eng, validQuery)
				_, err := p.EvalStream(ctx, FromString("<db><part></db>"), Discard())
				return err
			},
			kind:    KindParse,
			wantPos: true,
		},
		{
			name: "unknown method",
			run: func() error {
				_, err := NewEngine(WithMethod(Method("bogus"))).Prepare(validQuery)
				return err
			},
			kind: KindEval,
		},
		{
			name: "unknown method via ParseMethod",
			run: func() error {
				_, err := ParseMethod("bogus")
				return err
			},
			kind: KindEval,
		},
		{
			name: "cancelled context, in-memory",
			run: func() error {
				p := mustPrepare(t, eng, validQuery)
				_, err := p.Eval(cancelled, FromString("<db><price>1</price></db>"))
				return err
			},
			kind: KindEval,
		},
		{
			name: "cancelled context, streaming",
			run: func() error {
				p := mustPrepare(t, eng, validQuery)
				_, err := p.EvalStream(cancelled, FromString("<db><price>1</price></db>"), Discard())
				return err
			},
			kind: KindEval,
		},
		{
			name: "missing input file",
			run: func() error {
				p := mustPrepare(t, eng, validQuery)
				_, err := p.Eval(ctx, FileSource(t.TempDir()+"/missing.xml"))
				return err
			},
			kind: KindIO,
		},
		{
			name: "missing input file in streaming",
			run: func() error {
				p := mustPrepare(t, eng, validQuery)
				_, err := p.EvalStream(ctx, FileSource(t.TempDir()+"/missing.xml"), Discard())
				return err
			},
			kind: KindIO,
		},
		{
			name: "failing reader source",
			run: func() error {
				p := mustPrepare(t, eng, validQuery)
				_, err := p.Eval(ctx, FromReader(failingReader{}))
				return err
			},
			kind: KindIO,
		},
		{
			name: "store: missing document",
			run: func() error {
				_, err := NewStore(eng).Snapshot("nope")
				return err
			},
			kind: KindNotFound,
		},
		{
			name: "store: missing view",
			run: func() error {
				_, err := NewStore(eng).LookupView("nope")
				return err
			},
			kind: KindNotFound,
		},
		{
			name: "store: stale conditional commit",
			run: func() error {
				st := NewStore(eng)
				if _, _, err := st.Put(ctx, "d", FromString("<db><price>1</price></db>")); err != nil {
					return err
				}
				if _, _, err := st.Apply(ctx, "d", validQuery); err != nil {
					return err
				}
				_, _, err := st.ApplyAt(ctx, "d", validQuery, 1)
				return err
			},
			kind: KindConflict,
		},
		{
			name: "store: corrupt write-ahead log",
			run: func() error {
				dir := t.TempDir()
				// A garbled checkpoint file: behind an atomic rename this
				// can only be bit rot, so recovery must refuse, typed and
				// positioned.
				if err := os.WriteFile(filepath.Join(dir, "ckpt-0000000000000001.ckpt"),
					[]byte("this is not a checkpoint, it is corruption"), 0o644); err != nil {
					return err
				}
				_, err := OpenStore(dir, eng)
				return err
			},
			kind:    KindCorrupt,
			wantPos: true,
		},
		{
			name: "store: in-place update of a sealed snapshot",
			run: func() error {
				st := NewStore(eng)
				if _, _, err := st.Put(ctx, "d", FromString("<db><price>1</price></db>")); err != nil {
					return err
				}
				snap, err := st.Snapshot("d")
				if err != nil {
					return err
				}
				q, err := ParseQuery(validQuery)
				if err != nil {
					return err
				}
				return q.Update.Apply(snap.Root())
			},
			kind: KindEval,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.run()
			if err == nil {
				t.Fatal("no error")
			}
			var xe *Error
			if !errors.As(err, &xe) {
				t.Fatalf("error %v (%T) is not an *xtq.Error", err, err)
			}
			if xe.Kind != tc.kind {
				t.Errorf("kind = %v, want %v (err: %v)", xe.Kind, tc.kind, err)
			}
			if tc.wantPos && xe.Pos == "" {
				t.Errorf("no position in %v", err)
			}
		})
	}
}

// TestCancelledContextKeepsIdentity asserts that the typed wrapper does
// not hide the context error from errors.Is.
func TestCancelledContextKeepsIdentity(t *testing.T) {
	eng := NewEngine()
	p := mustPrepare(t, eng, validQuery)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := p.Eval(ctx, FromString("<db/>"))
	if !errors.Is(err, context.Canceled) {
		t.Errorf("errors.Is(err, context.Canceled) = false for %v", err)
	}
	var xe *Error
	if !errors.As(err, &xe) || xe.Kind != KindEval {
		t.Errorf("cancelled eval not classified as KindEval: %v", err)
	}
}

// TestParseErrorPositions spot-checks that positions point into the
// input, not just that they exist.
func TestParseErrorPositions(t *testing.T) {
	_, err := ParseQuery(`transform copy $a := doc("d") modify do remove $a//p return $a`)
	var xe *Error
	if !errors.As(err, &xe) {
		t.Fatalf("not a typed error: %v", err)
	}
	// "remove" starts at offset 40 of the trimmed query.
	if xe.Pos != "offset 40" {
		t.Errorf("pos = %q, want offset 40 (err: %v)", xe.Pos, err)
	}

	_, err = ParseString("<db>\n  <part>oops</wrong>\n</db>")
	if !errors.As(err, &xe) {
		t.Fatalf("not a typed error: %v", err)
	}
	if !strings.HasPrefix(xe.Pos, "2:") {
		t.Errorf("pos = %q, want line 2 (err: %v)", xe.Pos, err)
	}
}

// TestErrorString covers the rendered form used in logs.
func TestErrorString(t *testing.T) {
	e := &Error{Kind: KindParse, Pos: "offset 3", Msg: "boom"}
	if got := e.Error(); got != "parse: offset 3: boom" {
		t.Errorf("Error() = %q", got)
	}
	e = &Error{Kind: KindIO, Err: errors.New("disk gone")}
	if got := e.Error(); got != "io: disk gone" {
		t.Errorf("Error() = %q", got)
	}
	for kind, name := range map[ErrorKind]string{
		KindParse: "parse", KindCompile: "compile", KindEval: "eval", KindIO: "io",
		KindNotFound: "notfound", KindConflict: "conflict", KindCorrupt: "corrupt",
	} {
		if kind.String() != name {
			t.Errorf("Kind(%d).String() = %q, want %q", kind, kind.String(), name)
		}
	}
}

func mustPrepare(t *testing.T, eng *Engine, src string) *Prepared {
	t.Helper()
	p, err := eng.Prepare(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

type failingReader struct{}

func (failingReader) Read([]byte) (int, error) { return 0, io.ErrUnexpectedEOF }
