package xtq

import (
	"context"
	"time"

	"xtq/internal/compose"
	"xtq/internal/core"
	"xtq/internal/obs"
	"xtq/internal/plan"
	"xtq/internal/saxeval"
	"xtq/internal/stats"
	"xtq/internal/tree"
)

// Prepared is a compiled transform query bound to its engine: the parse
// and the O(|p|) selecting-NFA construction (§3.4) are done once, then
// the handle is evaluated over any number of documents. A Prepared is
// immutable and safe for concurrent use by multiple goroutines; each
// evaluation carries its own state.
type Prepared struct {
	eng      *Engine
	src      string
	compiled *core.Compiled
}

// Query returns the parsed query behind the prepared statement. Treat it
// as read-only: the compiled form (possibly shared through the engine
// cache) reflects the query at Prepare time.
func (p *Prepared) Query() *Query { return p.compiled.Query }

// String renders the query in surface syntax.
func (p *Prepared) String() string { return p.compiled.Query.String() }

// Eval evaluates the query over src with the engine's in-memory method
// and returns the transformed document. src is any Source — an
// already-parsed *Node evaluates directly, other sources are parsed
// first (honouring the engine's WithMaxDepth). The input's structure and
// content are never modified; depending on the method the result may
// share unmodified subtrees with it. Cancelling ctx aborts evaluation at
// node granularity with a KindEval error satisfying
// errors.Is(err, context.Canceled).
//
// Concurrency: a document is indexed on its first evaluation (dense
// symbol/ordinal bookkeeping stamped onto its nodes, built exactly once
// under a lock). Concurrent evaluations of the same document, or of
// documents that share no nodes, are always safe. The one unsafe pattern
// is indexing a not-yet-evaluated tree that shares subtrees with a
// document another goroutine is concurrently evaluating — e.g. a result
// tree (which shares unmodified subtrees with its input) evaluated for
// the first time while the original input is still being evaluated
// elsewhere. Evaluate derived trees from one goroutine first (any later
// use is fine), or deep-copy them.
func (p *Prepared) Eval(ctx context.Context, src Source) (*Node, error) {
	return p.evalMethod(ctx, src, p.eng.method)
}

func (p *Prepared) evalMethod(ctx context.Context, src Source, m Method) (*Node, error) {
	doc, err := p.eng.parse(ctx, src)
	if err != nil {
		return nil, err
	}
	tr := obs.TraceFrom(ctx)
	var pt *obs.PlanTrace
	if m == core.MethodAuto {
		// Resolve Auto before evaluation: the planner picks a concrete
		// method from the document's statistics (indexing the document
		// as a side effect — which Eval would do anyway).
		dec, hit := p.eng.decide(p.src, p.compiled, doc)
		m = dec.Method
		pt = &obs.PlanTrace{
			Method:   string(dec.Method),
			Auto:     true,
			EstNodes: dec.EstNodes,
			EstCost:  dec.EstCost,
			Reason:   dec.Reason,
			CacheHit: hit,
		}
	} else if tr != nil {
		// A forced method under a trace still gets a planner section:
		// what the planner would have chosen (the serving layer reports
		// it as planned_method) and the model's estimate for the method
		// that actually runs, so EXPLAIN compares estimated to actual
		// visits apples-to-apples. Not recorded in the decisions metric
		// — the decision was not used.
		ix := tree.EnsureIndex(doc)
		would := plan.WouldChoose(p.compiled, ix)
		est := plan.EstimateMethod(p.compiled, stats.Of(ix), m)
		pt = &obs.PlanTrace{
			Method:   string(would.Method),
			Auto:     false,
			EstNodes: est.Nodes,
			EstCost:  est.Cost,
			Reason:   would.Reason,
		}
	}
	if tr != nil {
		tr.SetMethod(string(m))
		if pt != nil {
			tr.SetPlan(pt)
		}
		if ix := tree.IndexOf(doc); ix != nil {
			// O(1) from the index instead of the O(n) subtree walk —
			// sealed snapshots track their live count, plain indexes
			// their width.
			if n := ix.Live; n > 0 {
				tr.SetDocNodes(n)
			} else {
				tr.SetDocNodes(ix.NumNodes)
			}
		} else {
			// Deferred: only a trace that is actually rendered
			// (?explain=1, a slow-query line) pays for the O(n) count.
			tr.SetDocNodesFunc(doc.Size)
		}
	}
	start := time.Now()
	out, err := p.compiled.EvalContext(ctx, doc, m)
	d := time.Since(start)
	mEvalSeconds.With(string(m)).Observe(d)
	if tr != nil {
		tr.AddEval(d)
		if pt != nil {
			plan.ObserveError(pt.EstNodes, tr.NodesVisited())
		}
	}
	if err != nil {
		return nil, classify(err, KindEval)
	}
	return out, nil
}

// EvalStream evaluates the query over src with the streaming twoPassSAX
// algorithm (§6), pushing the result into sink. Memory use is bounded by
// the document depth, independent of its size; src is read twice (the
// two passes), which is why Source demands repeatable reads. Cancelling
// ctx aborts either pass at SAX-event granularity, so multi-gigabyte
// documents stop streaming promptly.
func (p *Prepared) EvalStream(ctx context.Context, src Source, sink Sink) (StreamResult, error) {
	res, err := saxeval.TransformContext(ctx, p.compiled, src, sink.Handler())
	if err != nil {
		// classify passes typed errors through, so a malformed document
		// stays KindParse and a cancelled or failed evaluation stays
		// KindEval; KindIO is only the fallback for untyped reader
		// failures. See TestEvalStreamPreservesKinds.
		return res, classify(err, KindIO)
	}
	if err := sink.Flush(); err != nil {
		return res, classify(err, KindIO)
	}
	return res, nil
}

// Compose builds the single-pass composition Qc with Qc(T) = Q(Qt(T))
// (§4): user queries answered over the virtual output of the transform
// query without materializing it. Each call returns a fresh Composed
// (they record per-run statistics and must not be shared between
// goroutines); the compiled transform inside is shared.
//
// Deprecated: use Engine.View and View.Prepare — the resulting
// PreparedView is goroutine-safe, returns its statistics by value,
// accepts any Source, supports stacks of transform layers, and is cached
// on the engine.
func (p *Prepared) Compose(q *UserQuery) (*Composed, error) {
	c, err := compose.New(p.compiled, q)
	if err != nil {
		return nil, classify(err, KindCompile)
	}
	return c, nil
}

// NaiveCompose builds the sequential composition of §4's Naive
// Composition Method: materialize the transform result, then run the
// user query. It exists as the baseline Compose is measured against.
//
// Deprecated: use Engine.View and PreparedView.EvalSequential, the same
// baseline generalized to stacks.
func (p *Prepared) NaiveCompose(q *UserQuery) (*NaiveComposition, error) {
	c, err := compose.NewNaive(p.compiled, q)
	if err != nil {
		return nil, classify(err, KindCompile)
	}
	return c, nil
}
