package xtq_test

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"xtq"
)

// startPrimary opens a durable facade store and serves its replication
// feed the way a primary xtqd does.
func startPrimary(t *testing.T) (*xtq.Store, *httptest.Server) {
	t.Helper()
	st, err := xtq.OpenStore(t.TempDir(), nil, xtq.WithFsync(xtq.FsyncNone))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	mux := http.NewServeMux()
	mux.Handle("/wal/", http.StripPrefix("/wal", st.ReplicationHandler()))
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return st, srv
}

func TestFollowReplicatesAndPromotes(t *testing.T) {
	ctx := context.Background()
	st, srv := startPrimary(t)
	if st.ReplicationHandler() == nil {
		t.Fatal("durable store has no replication handler")
	}
	if xtq.NewStore(nil).ReplicationHandler() != nil {
		t.Fatal("in-memory store grew a replication handler")
	}
	if _, _, err := st.Put(ctx, "parts", xtq.FromString(storeDoc)); err != nil {
		t.Fatal(err)
	}

	f, err := xtq.Follow(srv.URL, nil, xtq.WithFollowPoll(200*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if !f.Store().ReadOnly() {
		t.Fatal("follower store is not read-only")
	}

	snap2, _, err := st.Apply(ctx, "parts",
		`transform copy $a := doc("parts") modify do delete $a//price return $a`)
	if err != nil {
		t.Fatal(err)
	}

	// Read-your-writes: wait for the commit we just saw, then read it.
	wctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := f.WaitMinVersion(wctx, "parts", snap2.Version()); err != nil {
		t.Fatal(err)
	}
	got, err := f.Store().Snapshot("parts")
	if err != nil {
		t.Fatal(err)
	}
	if got.Version() != snap2.Version() {
		t.Fatalf("follower at version %d, want %d", got.Version(), snap2.Version())
	}
	var pb, fb bytes.Buffer
	if err := snap2.WriteXML(&pb); err != nil {
		t.Fatal(err)
	}
	if err := got.WriteXML(&fb); err != nil {
		t.Fatal(err)
	}
	if pb.String() != fb.String() {
		t.Fatal("follower bytes differ from primary")
	}

	// Writes are typed Conflict until promotion.
	_, _, err = f.Store().Apply(ctx, "parts",
		`transform copy $a := doc("parts") modify do delete $a//country return $a`)
	if storeKind(t, err) != xtq.KindConflict {
		t.Fatalf("write on follower = %v, want KindConflict", err)
	}

	stats := f.Stats()
	if !stats.Connected || stats.Err != "" || !strings.HasPrefix(stats.Position, "seg-") {
		t.Fatalf("stats = %+v", stats)
	}
	seg, off, recs, ok := st.WalTail()
	if !ok || seg == 0 || off == 0 || recs != 2 {
		t.Fatalf("WalTail = %d %d %d %v", seg, off, recs, ok)
	}

	// Failover: promote, then the chain continues without a gap.
	f.Promote()
	snap3, _, err := f.Store().Apply(ctx, "parts",
		`transform copy $a := doc("parts") modify do delete $a//country return $a`)
	if err != nil {
		t.Fatal(err)
	}
	if snap3.Version() != snap2.Version()+1 {
		t.Fatalf("post-promotion version = %d, want %d", snap3.Version(), snap2.Version()+1)
	}
	if !f.Stats().Promoted {
		t.Fatal("stats do not report promotion")
	}
}
