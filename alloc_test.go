package xtq

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"xtq/internal/obs"
)

// TestPreparedEvalAllocs pins the steady-state allocation count of
// Prepared.Eval on an already-parsed document. The dense representation
// (symbol-bound automaton stepping, per-depth state-set pooling, lazy
// child-slice copying) keeps the per-evaluation count small and — more
// importantly — independent of the untouched part of the document; a
// regression here means an allocation crept back into the traversal hot
// path. The bound has headroom over the measured value (~32) so unrelated
// runtime changes do not flake, while still catching per-node
// regressions, which show up as hundreds of allocations even on this
// small document.
func TestPreparedEvalAllocs(t *testing.T) {
	eng := NewEngine()
	p, err := eng.Prepare(`transform copy $a := doc("foo") modify do delete $a//supplier[country = "A"]/price return $a`)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := ParseString(`<db><part><pname>kb</pname>` +
		`<supplier><sname>HP</sname><price>15</price><country>US</country></supplier>` +
		`<supplier><sname>Logi</sname><price>12</price><country>A</country></supplier>` +
		`<subPart><part><pname>key</pname><supplier><sname>Acme</sname><price>20</price><country>CN</country></supplier></part></subPart>` +
		`</part></db>`)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := p.Eval(ctx, doc); err != nil { // index + warm up
		t.Fatal(err)
	}
	const maxAllocs = 60
	if got := testing.AllocsPerRun(200, func() {
		if _, err := p.Eval(ctx, doc); err != nil {
			t.Fatal(err)
		}
	}); got > maxAllocs {
		t.Errorf("Prepared.Eval allocates %.1f times per run, want <= %d", got, maxAllocs)
	}
}

// doc640 builds the 640-element benchmark document used by the SoA
// allocation pins: a root, nine sections, and 630 attributed items
// (1 + 9 + 630 = 640 elements; just under 1300 nodes counting text,
// so the column store spans several chunks).
func doc640() string {
	var b strings.Builder
	b.WriteString("<db>")
	for s := 0; s < 9; s++ {
		b.WriteString("<sec>")
		for i := 0; i < 70; i++ {
			fmt.Fprintf(&b, "<item id=\"%d\">v%d</item>", i, i)
		}
		b.WriteString("</sec>")
	}
	b.WriteString("</db>")
	return b.String()
}

// TestSealedEvalAllocs pins Prepared.Eval over a sealed
// structure-of-arrays document — the store's read path. Sealing must
// be free at evaluation time: the automaton walks the same pointer
// structure, the ordinal columns ride along untouched, and the count
// here is the same as for a freshly parsed copy of the document
// (predicate evaluation over the 630 candidate items dominates, at
// about one allocation per candidate; measured ~661). A regression
// that makes sealed trees more expensive to read — say a defensive
// copy on access — shows up as a multiple of the document size.
func TestSealedEvalAllocs(t *testing.T) {
	ctx := context.Background()
	st := NewStore(nil)
	if _, _, err := st.Put(ctx, "d", FromString(doc640())); err != nil {
		t.Fatal(err)
	}
	snap, err := st.Snapshot("d")
	if err != nil {
		t.Fatal(err)
	}
	sealed := snap.Root()

	p, err := st.Engine().Prepare(`transform copy $a := doc("d") modify do delete $a//item[@id = "3"] return $a`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Eval(ctx, sealed); err != nil { // warm up
		t.Fatal(err)
	}
	const maxAllocs = 1000
	if got := testing.AllocsPerRun(100, func() {
		if _, err := p.Eval(ctx, sealed); err != nil {
			t.Fatal(err)
		}
	}); got > maxAllocs {
		t.Errorf("Prepared.Eval over sealed doc allocates %.1f times per run, want <= %d", got, maxAllocs)
	}
}

// TestTracedEvalDocNodesAllocs pins the explain path's document-size
// accounting over a sealed snapshot: the doc-node count is served from
// the index's live count in O(1), and the whole traced evaluation —
// trace bookkeeping, the planner section, reading DocNodes back — may
// add only a constant number of allocations over the untraced pin.
// A regression that reintroduces the O(n) subtree walk (or any other
// per-node work on the trace path) shows up as document-proportional
// extra allocations here.
func TestTracedEvalDocNodesAllocs(t *testing.T) {
	ctx := context.Background()
	st := NewStore(nil)
	if _, _, err := st.Put(ctx, "d", FromString(doc640())); err != nil {
		t.Fatal(err)
	}
	snap, err := st.Snapshot("d")
	if err != nil {
		t.Fatal(err)
	}
	sealed := snap.Root()
	p, err := st.Engine().Prepare(`transform copy $a := doc("d") modify do delete $a//item[@id = "3"] return $a`)
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTrace()
	tctx := obs.WithTrace(ctx, tr)
	if _, err := p.Eval(tctx, sealed); err != nil { // warm up both paths
		t.Fatal(err)
	}
	if got, want := tr.DocNodes(), snap.NumNodes(); got != want {
		t.Fatalf("traced DocNodes = %d, want the snapshot's live count %d", got, want)
	}
	base := testing.AllocsPerRun(100, func() {
		if _, err := p.Eval(ctx, sealed); err != nil {
			t.Fatal(err)
		}
	})
	traced := testing.AllocsPerRun(100, func() {
		if _, err := p.Eval(tctx, sealed); err != nil {
			t.Fatal(err)
		}
		_ = tr.DocNodes()
	})
	const maxExtra = 40
	if traced > base+maxExtra {
		t.Errorf("traced eval allocates %.1f vs %.1f untraced; want <= %.1f extra allocations",
			traced, base, float64(maxExtra))
	}
}

// TestPathCopyCommitAllocs pins a full store commit — evaluate, path
// copy, link into the version chain — on the 640-element document.
// The alternating rename touches nine items (one per section), so the
// path copy rebuilds a ~20-node spine and copies only the chunks those
// rows live in; everything else is shared with the previous version by
// reference. Measured ~470 allocations per commit, dominated by
// evaluation; the bound has headroom for runtime drift but is far
// below what a whole-tree copy per commit costs on this document.
func TestPathCopyCommitAllocs(t *testing.T) {
	ctx := context.Background()
	st := NewStore(nil)
	if _, _, err := st.Put(ctx, "d", FromString(doc640())); err != nil {
		t.Fatal(err)
	}
	fwd := `transform copy $a := doc("d") modify do rename $a//item[@id = "3"] as even return $a`
	back := `transform copy $a := doc("d") modify do rename $a//even as item return $a`
	// Warm up one full cycle so query compilation is cached.
	if _, _, err := st.Apply(ctx, "d", fwd); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Apply(ctx, "d", back); err != nil {
		t.Fatal(err)
	}
	i := 0
	const maxAllocs = 800
	if got := testing.AllocsPerRun(100, func() {
		q := fwd
		if i%2 == 1 {
			q = back
		}
		i++
		if _, _, err := st.Apply(ctx, "d", q); err != nil {
			t.Fatal(err)
		}
	}); got > maxAllocs {
		t.Errorf("path-copy commit allocates %.1f times per run, want <= %d", got, maxAllocs)
	}
}
