package xtq

import (
	"context"
	"testing"
)

// TestPreparedEvalAllocs pins the steady-state allocation count of
// Prepared.Eval on an already-parsed document. The dense representation
// (symbol-bound automaton stepping, per-depth state-set pooling, lazy
// child-slice copying) keeps the per-evaluation count small and — more
// importantly — independent of the untouched part of the document; a
// regression here means an allocation crept back into the traversal hot
// path. The bound has headroom over the measured value (~32) so unrelated
// runtime changes do not flake, while still catching per-node
// regressions, which show up as hundreds of allocations even on this
// small document.
func TestPreparedEvalAllocs(t *testing.T) {
	eng := NewEngine()
	p, err := eng.Prepare(`transform copy $a := doc("foo") modify do delete $a//supplier[country = "A"]/price return $a`)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := ParseString(`<db><part><pname>kb</pname>` +
		`<supplier><sname>HP</sname><price>15</price><country>US</country></supplier>` +
		`<supplier><sname>Logi</sname><price>12</price><country>A</country></supplier>` +
		`<subPart><part><pname>key</pname><supplier><sname>Acme</sname><price>20</price><country>CN</country></supplier></part></subPart>` +
		`</part></db>`)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := p.Eval(ctx, doc); err != nil { // index + warm up
		t.Fatal(err)
	}
	const maxAllocs = 60
	if got := testing.AllocsPerRun(200, func() {
		if _, err := p.Eval(ctx, doc); err != nil {
			t.Fatal(err)
		}
	}); got > maxAllocs {
		t.Errorf("Prepared.Eval allocates %.1f times per run, want <= %d", got, maxAllocs)
	}
}
