package xtq

import (
	"context"
	"net/http"
	"time"

	"xtq/internal/core"
	"xtq/internal/replica"
	"xtq/internal/store"
)

// ReplicationHandler exposes a durable store's write-ahead log over HTTP
// — the primary half of WAL-shipping replication. Mount it under /wal
// (strip the prefix) and point followers at the server's base URL:
//
//	mux.Handle("/wal/", http.StripPrefix("/wal", st.ReplicationHandler()))
//
// The feed serves the log's own frames verbatim (sealed segments and a
// long-polled live tail) plus the newest checkpoint for bootstrap; it is
// read-only and safe to expose alongside the normal document API. An
// in-memory store has no log; the handler is nil.
func (s *Store) ReplicationHandler() http.Handler {
	l := s.st.WAL()
	if l == nil {
		return nil
	}
	return replica.NewLogService(l)
}

// WalTail reports the durable store's current log tail — active segment
// number, safe byte offset within it, and records appended since open.
// ok is false on an in-memory store. This is what /healthz reports on a
// primary: a follower is caught up exactly when its position equals this
// tail.
func (s *Store) WalTail() (segment uint64, offset int64, records int64, ok bool) {
	l := s.st.WAL()
	if l == nil {
		return 0, 0, 0, false
	}
	pos := l.TailPos()
	return pos.Seq, pos.Offset, l.AppendedRecords(), true
}

// ReadOnly reports whether this store is an unpromoted follower replica
// — every write returns a KindConflict error until Follower.Promote.
func (s *Store) ReadOnly() bool { return s.st.ReadOnly() }

// FollowerStats is a point-in-time reading of a follower's replication
// state, JSON-ready for /healthz.
type FollowerStats struct {
	// Position is the next primary log byte the follower will fetch
	// ("seg-NNNN.wal:OFFSET"); everything before it is applied locally.
	Position string `json:"position"`
	// Applied and AppliedBytes count log records and bytes applied since
	// this process started following.
	Applied      int64 `json:"applied_records"`
	AppliedBytes int64 `json:"applied_bytes"`
	// Tail is the primary's log tail as of the last successful fetch.
	Tail string `json:"primary_tail"`
	// BehindBytes is the byte lag behind the primary's tail; -1 before
	// the first successful fetch.
	BehindBytes int64 `json:"behind_bytes"`
	// BehindRecords is the version lag: primary commits not yet applied
	// here. -1 until the follower has fully caught up once (which anchors
	// the primary's record counter) or after a primary restart.
	BehindRecords int64 `json:"behind_records"`
	// Connected reports whether the last feed request succeeded.
	Connected bool `json:"connected"`
	// Promoted reports a promoted (now writable) follower.
	Promoted bool `json:"promoted"`
	// Err is the sticky failure that stopped replication ("" while
	// healthy) — a divergence or corruption, never a transient error.
	Err string `json:"error,omitempty"`
}

// followConfig collects the Follow options.
type followConfig struct {
	o replica.Options
}

// FollowOption configures Follow.
type FollowOption func(*followConfig)

// WithFollowDir persists the follower's state (periodic local
// checkpoints plus its replay position) under dir, so a restarted
// follower resumes tailing where it stopped instead of re-bootstrapping
// from the primary. Default: fully in memory.
func WithFollowDir(dir string) FollowOption {
	return func(c *followConfig) { c.o.Dir = dir }
}

// WithFollowCheckpointEvery writes a local checkpoint after n applied
// log bytes (only meaningful with WithFollowDir). Default 8 MiB;
// negative disables periodic checkpoints (one is still written on
// Close).
func WithFollowCheckpointEvery(n int64) FollowOption {
	return func(c *followConfig) { c.o.CheckpointEvery = n }
}

// WithFollowPoll sets the long-poll wait per feed request. Default 2s.
func WithFollowPoll(d time.Duration) FollowOption {
	return func(c *followConfig) { c.o.Poll = d }
}

// WithFollowClient overrides the HTTP client used against the primary.
func WithFollowClient(hc *http.Client) FollowOption {
	return func(c *followConfig) { c.o.Client = hc }
}

// WithFollowLogf directs replication progress lines to f.
func WithFollowLogf(f func(format string, args ...any)) FollowOption {
	return func(c *followConfig) { c.o.Logf = f }
}

// Follower is a live read replica of a primary xtqd: it tails the
// primary's write-ahead-log feed and replays every logical update record
// through its own engine, so its store converges to byte-identical
// document state with fully verified version chains. Reads on Store()
// are lock-free snapshots exactly as on the primary; writes fail with
// KindConflict until Promote.
//
// Because the log records are canonical update-query text (the paper's
// update syntax doubling as the replication protocol), replay is
// method-independent: the follower may evaluate with a different method
// than the primary and still converge to the same bytes.
type Follower struct {
	f  *replica.Follower
	st *Store
}

// Follow starts a follower replicating the primary at primaryURL (the
// base URL of a durable xtqd — its /wal feed is derived from it). A nil
// eng uses a fresh default Engine; its Prepare compiles the replayed
// update queries through the shared query cache. Follow fails if the
// primary is unreachable and no consistent local state (WithFollowDir)
// exists.
func Follow(primaryURL string, eng *Engine, options ...FollowOption) (*Follower, error) {
	if eng == nil {
		eng = NewEngine()
	}
	cfg := followConfig{o: replica.Options{
		Primary: primaryURL,
		Replay: store.ReplayOptions{
			Compile: func(src string) (*core.Compiled, error) {
				p, err := eng.Prepare(src)
				if err != nil {
					return nil, err
				}
				return p.compiled, nil
			},
			Method:   eng.method,
			MaxDepth: eng.maxDepth,
		},
	}}
	for _, o := range options {
		o(&cfg)
	}
	f, err := replica.Start(cfg.o)
	if err != nil {
		return nil, classify(err, KindIO)
	}
	st := &Store{eng: eng, st: f.Store(), views: make(map[string]*View)}
	// Followers serve /watch and materialized views off the replication
	// tail: the single applier goroutine drives the same commit hook a
	// primary's writers do, so events arrive in replayed-version order.
	st.wireIVM()
	return &Follower{f: f, st: st}, nil
}

// Store returns the replica's document store. It serves Snapshot /
// SnapshotAt / History / views like any store; writes return
// KindConflict until Promote.
func (f *Follower) Store() *Store { return f.st }

// Primary returns the primary's base URL.
func (f *Follower) Primary() string { return f.f.Primary() }

// WaitMinVersion blocks until name's version chain reaches at least
// version — the read-your-writes primitive behind xtqd's
// X-Xtq-Min-Version header. It returns nil immediately on a promoted
// follower (local state is then authoritative), the context's error on
// deadline (callers redirect the read to the primary), and the sticky
// replication failure, typed, if tailing has stopped.
func (f *Follower) WaitMinVersion(ctx context.Context, name string, version uint64) error {
	err := f.f.WaitMinVersion(ctx, name, version)
	if err == ctx.Err() {
		return err // keep context identity for errors.Is
	}
	return classify(err, KindCorrupt)
}

// Stats returns a point-in-time reading of the replication state.
func (f *Follower) Stats() FollowerStats {
	s := f.f.Stats()
	return FollowerStats{
		Position:      s.Position.String(),
		Applied:       s.Applied,
		AppliedBytes:  s.AppliedBytes,
		Tail:          s.Tail.String(),
		BehindBytes:   s.BehindBytes,
		BehindRecords: s.BehindRecords,
		Connected:     s.Connected,
		Promoted:      s.Promoted,
		Err:           s.Err,
	}
}

// Err returns the sticky failure that stopped replication, nil while
// healthy.
func (f *Follower) Err() error { return classify(f.f.Err(), KindCorrupt) }

// Promote stops replication and makes the store writable — failover.
// The replicated version chains continue seamlessly: the next commit to
// a document lands at lastReplicated+1, exactly as it would have on the
// primary. Promotion is one-way.
func (f *Follower) Promote() { f.f.Promote() }

// Close stops replication (persisting a final local checkpoint when
// WithFollowDir is set). The store stays readable — and writable, if
// promoted.
func (f *Follower) Close() error { return f.f.Close() }
