package xtq

import (
	"context"
	"testing"
	"time"

	"xtq/internal/obs"
	"xtq/internal/queries"
)

// plannerTrials is the per-(query, method) repetition count; the
// minimum over trials filters scheduler noise (and the one-time planner
// decision of the first Auto trial).
const plannerTrials = 4

// plannerSlack absorbs constant per-evaluation overhead (trace
// bookkeeping, the decision-cache lookup) so the 25% bound measures the
// method choice, not fixed costs, on sub-millisecond documents.
const plannerSlack = 500 * time.Microsecond

// TestPlannerProperty is the planner's acceptance property over the
// paper's XMark workload at two scale factors: for every (query,
// document) pair, evaluating with MethodAuto is never more than 25%
// (plus a constant slack) slower than the best static method, and the
// planner's estimated visit count is within 10x of the nodes the chosen
// evaluator actually visited.
func TestPlannerProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("timing property; skipped in -short")
	}
	statics := []Method{MethodCopyUpdate, MethodNaive, MethodTwoPass, MethodTopDown}
	engines := map[Method]*Engine{MethodAuto: NewEngine(WithMethod(MethodAuto))}
	for _, m := range statics {
		engines[m] = NewEngine(WithMethod(m))
	}

	minEval := func(t *testing.T, eng *Engine, src string, doc *Node) time.Duration {
		t.Helper()
		p, err := eng.Prepare(src)
		if err != nil {
			t.Fatal(err)
		}
		best := time.Duration(1<<63 - 1)
		for i := 0; i < plannerTrials; i++ {
			start := time.Now()
			if _, err := p.Eval(context.Background(), doc); err != nil {
				t.Fatal(err)
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}

	for _, factor := range []float64{0.001, 0.01} {
		doc, err := GenerateXMark(XMarkConfig{Factor: factor, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i <= 10; i++ {
			src := queries.Transform(i).String()

			best := time.Duration(1<<63 - 1)
			var bestM Method
			for _, m := range statics {
				if d := minEval(t, engines[m], src, doc); d < best {
					best, bestM = d, m
				}
			}
			auto := minEval(t, engines[MethodAuto], src, doc)
			if limit := best + best/4 + plannerSlack; auto > limit {
				t.Errorf("factor=%g U%d: auto %v > %v (best static %s %v + 25%% + slack)",
					factor, i, auto, limit, bestM, best)
			}

			// Estimated vs actual visits of the planned method.
			tr := obs.NewTrace()
			ctx := obs.WithTrace(context.Background(), tr)
			p, err := engines[MethodAuto].PrepareContext(ctx, src)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := p.Eval(ctx, doc); err != nil {
				t.Fatal(err)
			}
			pt := tr.Plan()
			if pt == nil || !pt.Auto {
				t.Fatalf("factor=%g U%d: no auto plan trace (%+v)", factor, i, pt)
			}
			if pt.Method != tr.Method() {
				t.Errorf("factor=%g U%d: plan method %q but trace method %q",
					factor, i, pt.Method, tr.Method())
			}
			est := float64(pt.EstNodes)
			actual := float64(tr.NodesVisited())
			if est < 1 {
				est = 1
			}
			if actual < 1 {
				actual = 1
			}
			if ratio := est / actual; ratio > 10 || ratio < 0.1 {
				t.Errorf("factor=%g U%d (%s): estimated %v vs actual %v visits (ratio %.2f)",
					factor, i, pt.Method, pt.EstNodes, tr.NodesVisited(), ratio)
			}
		}
	}
}
