package xtq_test

import (
	"context"
	"errors"
	"fmt"
	"os"

	"xtq"
)

// ExampleOpenStore shows the durable store: commits are appended to a
// write-ahead log of logical update records (the update query's own
// text) before they are published, so closing and reopening the
// directory — or crashing — loses nothing, and recent versions stay
// readable through SnapshotAt.
func ExampleOpenStore() {
	ctx := context.Background()
	dir, err := os.MkdirTemp("", "xtq-wal-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)

	st, err := xtq.OpenStore(dir, nil, xtq.WithFsync(xtq.FsyncAlways))
	if err != nil {
		panic(err)
	}
	if _, _, err := st.Put(ctx, "parts", xtq.FromString(
		`<db><part><pname>keyboard</pname><price>15</price></part></db>`)); err != nil {
		panic(err)
	}
	if _, _, err := st.Apply(ctx, "parts",
		`transform copy $a := doc("parts") modify do delete $a//price return $a`); err != nil {
		panic(err)
	}
	if err := st.Close(); err != nil { // the process "crashes" here
		panic(err)
	}

	// Reopening replays the log: the ingest re-parses, the update
	// re-evaluates its logged query text through the engine.
	st, err = xtq.OpenStore(dir, nil)
	if err != nil {
		panic(err)
	}
	defer st.Close()
	cur, err := st.Snapshot("parts")
	if err != nil {
		panic(err)
	}
	fmt.Printf("recovered v%d: %s\n", cur.Version(), cur.Root())

	// Time travel: version 1 (pre-update) is still servable.
	old, err := st.SnapshotAt(ctx, "parts", 1)
	if err != nil {
		panic(err)
	}
	fmt.Printf("time travel v%d: %s\n", old.Version(), old.Root())
	// Output:
	// recovered v2: <db><part><pname>keyboard</pname></part></db>
	// time travel v1: <db><part><pname>keyboard</pname><price>15</price></part></db>
}

// ExampleStore_Apply commits XQU updates through the store: each Apply
// evaluates the update copy-on-write over the current snapshot and
// publishes the result as the next version, while ApplyAt adds
// If-Match-style optimistic concurrency.
func ExampleStore_Apply() {
	ctx := context.Background()
	st := xtq.NewStore(nil)

	_, _, err := st.Put(ctx, "parts", xtq.FromString(
		`<db><part><pname>keyboard</pname><price>15</price></part></db>`))
	if err != nil {
		panic(err)
	}

	snap, com, err := st.Apply(ctx, "parts",
		`transform copy $a := doc("parts") modify do delete $a//price return $a`)
	if err != nil {
		panic(err)
	}
	fmt.Printf("version %d: %s\n", com.Version, snap.Root())

	// A conditional update against the version we just saw succeeds ...
	if _, _, err = st.ApplyAt(ctx, "parts",
		`transform copy $a := doc("parts") modify do insert <audit/> into $a/db/part return $a`,
		snap.Version()); err != nil {
		panic(err)
	}
	// ... but re-running it against the now-stale version conflicts.
	_, _, err = st.ApplyAt(ctx, "parts",
		`transform copy $a := doc("parts") modify do insert <audit/> into $a/db/part return $a`,
		snap.Version())
	var xe *xtq.Error
	if errors.As(err, &xe) {
		fmt.Println("stale commit:", xe.Kind)
	}
	// Output:
	// version 2: <db><part><pname>keyboard</pname></part></db>
	// stale commit: conflict
}

// ExampleStore_Snapshot shows reader isolation: a snapshot handle keeps
// serving its committed version — evaluable by any Prepared query —
// while writers move the document forward.
func ExampleStore_Snapshot() {
	ctx := context.Background()
	st := xtq.NewStore(nil)

	if _, _, err := st.Put(ctx, "parts", xtq.FromString(
		`<db><part><pname>mouse</pname><price>9</price></part></db>`)); err != nil {
		panic(err)
	}

	before, err := st.Snapshot("parts")
	if err != nil {
		panic(err)
	}

	// A writer deletes every price after the reader took its handle.
	if _, _, err := st.Apply(ctx, "parts",
		`transform copy $a := doc("parts") modify do delete $a//price return $a`); err != nil {
		panic(err)
	}
	after, err := st.Snapshot("parts")
	if err != nil {
		panic(err)
	}

	// Snapshots are Sources: evaluate a prepared query over each.
	p, err := st.Engine().Prepare(
		`transform copy $a := doc("parts") modify do rename $a/db/part as row return $a`)
	if err != nil {
		panic(err)
	}
	v1, err := p.Eval(ctx, before)
	if err != nil {
		panic(err)
	}
	v2, err := p.Eval(ctx, after)
	if err != nil {
		panic(err)
	}
	fmt.Printf("v%d: %s\n", before.Version(), v1)
	fmt.Printf("v%d: %s\n", after.Version(), v2)
	// Output:
	// v1: <db><row><pname>mouse</pname><price>9</price></row></db>
	// v2: <db><row><pname>mouse</pname></row></db>
}
