package xtq

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"testing"
)

func TestEngineCacheHitsAndEviction(t *testing.T) {
	eng := NewEngine(WithQueryCacheSize(2))
	q1 := `transform copy $a := doc("d") modify do delete $a//price return $a`
	q2 := `transform copy $a := doc("d") modify do delete $a//sname return $a`
	q3 := `transform copy $a := doc("d") modify do delete $a//country return $a`

	p1, err := eng.Prepare(q1)
	if err != nil {
		t.Fatal(err)
	}
	p1again, err := eng.Prepare(q1)
	if err != nil {
		t.Fatal(err)
	}
	if hits, misses, size := eng.CacheStats(); hits != 1 || misses != 1 || size != 1 {
		t.Errorf("after re-prepare: hits=%d misses=%d size=%d, want 1/1/1", hits, misses, size)
	}
	// The cached compiled form is shared between handles.
	if p1.compiled != p1again.compiled {
		t.Error("re-prepared query did not reuse the compiled form")
	}

	// Fill the cache beyond capacity: q1 (LRU) must be evicted.
	if _, err := eng.Prepare(q2); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Prepare(q3); err != nil {
		t.Fatal(err)
	}
	if _, _, size := eng.CacheStats(); size != 2 {
		t.Errorf("cache size = %d, want capacity 2", size)
	}
	if _, err := eng.Prepare(q1); err != nil {
		t.Fatal(err)
	}
	if hits, misses, _ := eng.CacheStats(); hits != 1 || misses != 4 {
		t.Errorf("evicted query re-prepare: hits=%d misses=%d, want 1/4", hits, misses)
	}

	// Cache disabled: every Prepare compiles afresh.
	off := NewEngine(WithQueryCacheSize(0))
	if _, err := off.Prepare(q1); err != nil {
		t.Fatal(err)
	}
	if _, err := off.Prepare(q1); err != nil {
		t.Fatal(err)
	}
	if hits, _, size := off.CacheStats(); hits != 0 || size != 0 {
		t.Errorf("disabled cache recorded hits=%d size=%d", hits, size)
	}
}

// TestPreparedConcurrent evaluates one shared Prepared from many
// goroutines across all three entry points; run with -race this asserts
// the goroutine-safety claim of the API.
func TestPreparedConcurrent(t *testing.T) {
	eng := NewEngine(WithMethod(MethodTwoPass))
	p := mustPrepare(t, eng, `transform copy $a := doc("d") modify do delete $a//price return $a`)
	doc, err := GenerateXMark(XMarkConfig{Factor: 0.002, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	xml := []byte(doc.String())
	user, err := ParseUserQuery(`for $x in /site/regions//item return $x/name`)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				if _, err := p.Eval(ctx, doc); err != nil {
					errs <- fmt.Errorf("Eval: %w", err)
					return
				}
				if _, err := p.EvalStream(ctx, BytesSource(xml), Discard()); err != nil {
					errs <- fmt.Errorf("EvalStream: %w", err)
					return
				}
				comp, err := p.Compose(user)
				if err != nil {
					errs <- fmt.Errorf("Compose: %w", err)
					return
				}
				if _, err := comp.EvalContext(ctx, doc); err != nil {
					errs <- fmt.Errorf("Composed.Eval: %w", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// cancelAfterSource serves a document but cancels the attached context
// once the second pass has read a chunk — deterministic mid-document
// cancellation for a stream that would otherwise complete.
type cancelAfterSource struct {
	data   []byte
	cancel context.CancelFunc
	opens  int
}

func (s *cancelAfterSource) Open() (io.ReadCloser, error) {
	s.opens++
	if s.opens < 2 {
		return io.NopCloser(bytes.NewReader(s.data)), nil
	}
	return &cancellingReader{r: bytes.NewReader(s.data), cancel: s.cancel}, nil
}

type cancellingReader struct {
	r      io.Reader
	cancel context.CancelFunc
	reads  int
}

func (c *cancellingReader) Read(p []byte) (int, error) {
	c.reads++
	if c.reads == 2 {
		// The first chunk is flowing through the evaluator; cancel now
		// so the abort happens mid-document.
		c.cancel()
	}
	if len(p) > 512 {
		p = p[:512] // small chunks so cancellation lands mid-stream
	}
	return c.r.Read(p)
}

func (c *cancellingReader) Close() error { return nil }

// endDocumentRecorder flags whether the output stream ever completed.
type endDocumentRecorder struct {
	mu    sync.Mutex
	ended bool
	n     int
}

func (r *endDocumentRecorder) StartDocument() error { return nil }
func (r *endDocumentRecorder) StartElement(string, []Attr) error {
	r.mu.Lock()
	r.n++
	r.mu.Unlock()
	return nil
}
func (r *endDocumentRecorder) Text(string) error       { return nil }
func (r *endDocumentRecorder) EndElement(string) error { return nil }
func (r *endDocumentRecorder) EndDocument() error {
	r.mu.Lock()
	r.ended = true
	r.mu.Unlock()
	return nil
}

// TestEvalStreamMidDocumentCancellation cancels the context while the
// second pass is emitting output and asserts the stream aborts with a
// typed cancellation error before the document completes.
func TestEvalStreamMidDocumentCancellation(t *testing.T) {
	doc, err := GenerateXMark(XMarkConfig{Factor: 0.01, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	xml := []byte(doc.String())

	eng := NewEngine()
	p := mustPrepare(t, eng, `transform copy $a := doc("d") modify do delete $a//increase return $a`)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	src := &cancelAfterSource{data: xml, cancel: cancel}
	rec := &endDocumentRecorder{}
	_, err = p.EvalStream(ctx, src, ToHandler(rec))
	if err == nil {
		t.Fatal("cancelled stream completed")
	}
	var xe *Error
	if !errors.As(err, &xe) || xe.Kind != KindEval {
		t.Errorf("mid-stream cancellation not KindEval: %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("errors.Is(err, context.Canceled) = false: %v", err)
	}
	if rec.ended {
		t.Error("output stream ran to EndDocument despite cancellation")
	}
	if rec.n == 0 {
		t.Error("cancellation hit before any output: not a mid-document abort")
	}
}

// TestSourceUnification drives one prepared query through every Source
// shape on both the in-memory and the streaming entry points.
func TestSourceUnification(t *testing.T) {
	const docXML = `<db><part><pname>kb</pname><price>9</price></part></db>`
	ctx := context.Background()
	eng := NewEngine()
	p := mustPrepare(t, eng, `transform copy $a := doc("d") modify do delete $a//price return $a`)

	node, err := ParseString(docXML)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := dir + "/doc.xml"
	if err := writeFile(path, docXML); err != nil {
		t.Fatal(err)
	}

	sources := map[string]Source{
		"node":   node,
		"file":   FileSource(path),
		"bytes":  BytesSource(docXML),
		"string": FromString(docXML),
	}
	for name, src := range sources {
		out, err := p.Eval(ctx, src)
		if err != nil {
			t.Fatalf("Eval(%s): %v", name, err)
		}
		if strings.Contains(out.String(), "<price>") {
			t.Errorf("Eval(%s): price not deleted", name)
		}
		var sb strings.Builder
		if _, err := p.EvalStream(ctx, src, ToWriter(&sb)); err != nil {
			t.Fatalf("EvalStream(%s): %v", name, err)
		}
		if strings.Contains(sb.String(), "<price>") {
			t.Errorf("EvalStream(%s): price not deleted in %q", name, sb.String())
		}
	}

	// FromReader buffers, so it also survives the streaming evaluator's
	// two passes. (A fresh one per use: a reader has one shot.)
	var sb strings.Builder
	if _, err := p.EvalStream(ctx, FromReader(strings.NewReader(docXML)), ToWriter(&sb)); err != nil {
		t.Fatalf("EvalStream(reader): %v", err)
	}
	if strings.Contains(sb.String(), "<price>") {
		t.Errorf("EvalStream(reader): price not deleted")
	}
	if out, err := p.Eval(ctx, FromReader(strings.NewReader(docXML))); err != nil {
		t.Fatalf("Eval(reader): %v", err)
	} else if strings.Contains(out.String(), "<price>") {
		t.Errorf("Eval(reader): price not deleted")
	}
}

func TestEngineMaxDepth(t *testing.T) {
	eng := NewEngine(WithMaxDepth(3))
	p := mustPrepare(t, eng, `transform copy $a := doc("d") modify do delete $a//x return $a`)
	_, err := p.Eval(context.Background(), FromString("<a><b><c><d>deep</d></c></b></a>"))
	var xe *Error
	if !errors.As(err, &xe) || xe.Kind != KindParse {
		t.Errorf("depth overflow not a parse error: %v", err)
	}
	if _, err := p.Eval(context.Background(), FromString("<a><b><c>ok</c></b></a>")); err != nil {
		t.Errorf("depth-3 document rejected: %v", err)
	}
}

// TestDeprecatedWrappers keeps the legacy package-level functions honest:
// they share the default engine and still produce correct results.
func TestDeprecatedWrappers(t *testing.T) {
	doc, err := ParseString(`<db><part><price>9</price><sname>D</sname></part></db>`)
	if err != nil {
		t.Fatal(err)
	}
	q, err := ParseQuery(`transform copy $a := doc("d") modify do delete $a//price return $a`)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Transform(doc, q, MethodNaive)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "<price>") {
		t.Error("Transform wrapper: price not deleted")
	}
	// Repeat calls hit the default engine's cache.
	h0, _, _ := defaultEngine.CacheStats()
	if _, err := Transform(doc, q, MethodTopDown); err != nil {
		t.Fatal(err)
	}
	h1, _, _ := defaultEngine.CacheStats()
	if h1 <= h0 {
		t.Errorf("Transform wrapper bypassed the default engine cache (hits %d -> %d)", h0, h1)
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

// TestWrapperDocArgRoundTrip: the deprecated wrappers route through the
// engine cache keyed by Query.String(), so queries whose doc() argument
// contains a quote character must render back into parseable surface
// syntax.
func TestWrapperDocArgRoundTrip(t *testing.T) {
	doc, err := ParseString(`<db><part><price>9</price></part></db>`)
	if err != nil {
		t.Fatal(err)
	}
	q, err := ParseQuery(`transform copy $a := doc('x"y') modify do delete $a//price return $a`)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Transform(doc, q, MethodTopDown)
	if err != nil {
		t.Fatalf("Transform with quoted doc arg: %v", err)
	}
	if strings.Contains(out.String(), "<price>") {
		t.Error("price not deleted")
	}
	// Both quote kinds in the argument: not expressible in surface
	// syntax, so the engine must bypass the cache rather than fail.
	q2 := &Query{Var: "a", Doc: `x"y'z`, Update: q.Update}
	if _, err := Transform(doc, q2, MethodTopDown); err != nil {
		t.Fatalf("Transform with unrenderable doc arg: %v", err)
	}
}

// TestComposePreCancelled: a composition must fail deterministically on
// an already-cancelled context even for documents too small to hit the
// navigation poll.
func TestComposePreCancelled(t *testing.T) {
	eng := NewEngine()
	p := mustPrepare(t, eng, `transform copy $a := doc("d") modify do delete $a//price return $a`)
	user, err := ParseUserQuery(`for $x in /db/part return $x/pname`)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := ParseString(`<db><part><pname>kb</pname><price>9</price></part></db>`)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for name, run := range map[string]func() error{
		"compose": func() error {
			c, err := p.Compose(user)
			if err != nil {
				return err
			}
			_, err = c.EvalContext(ctx, doc)
			return err
		},
		"naive": func() error {
			c, err := p.NaiveCompose(user)
			if err != nil {
				return err
			}
			_, err = c.EvalContext(ctx, doc)
			return err
		},
	} {
		err := run()
		var xe *Error
		if !errors.As(err, &xe) || xe.Kind != KindEval || !errors.Is(err, context.Canceled) {
			t.Errorf("%s: pre-cancelled context not a KindEval cancellation: %v", name, err)
		}
	}
}

// TestEvalCancelsDuringParse: for a non-Node source, Prepared.Eval must
// honour the context while the input is being parsed, not only after.
func TestEvalCancelsDuringParse(t *testing.T) {
	doc, err := GenerateXMark(XMarkConfig{Factor: 0.01, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	xml := []byte(doc.String())
	eng := NewEngine()
	p := mustPrepare(t, eng, `transform copy $a := doc("d") modify do delete $a//increase return $a`)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Reuse the mid-read cancelling source: it fires cancel on its
	// second read, while the DOM parse is still consuming input.
	src := &cancelAfterSource{data: xml, cancel: cancel}
	src.opens = 1 // cancel on the first (only) open
	_, err = p.Eval(ctx, src)
	var xe *Error
	if !errors.As(err, &xe) || xe.Kind != KindEval || !errors.Is(err, context.Canceled) {
		t.Errorf("cancel during parse not a KindEval cancellation: %v", err)
	}
}
