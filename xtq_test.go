package xtq

import (
	"strings"
	"testing"
)

const partsDoc = `<db>
<part><pname>keyboard</pname>
  <supplier><sname>HP</sname><price>15</price><country>US</country></supplier>
  <supplier><sname>Logi</sname><price>12</price><country>A</country></supplier>
</part>
<part><pname>mouse</pname>
  <supplier><sname>Dell</sname><price>9</price><country>A</country></supplier>
</part>
</db>`

func countLabel(n *Node, label string) int {
	count := 0
	if n.Label == label {
		count++
	}
	for _, c := range n.Children {
		count += countLabel(c, label)
	}
	return count
}

func TestQuickstartFlow(t *testing.T) {
	doc, err := ParseString(partsDoc)
	if err != nil {
		t.Fatal(err)
	}
	q, err := ParseQuery(`transform copy $a := doc("parts") modify do delete $a//price return $a`)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range Methods() {
		view, err := Transform(doc, q, m)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if countLabel(view, "price") != 0 {
			t.Errorf("%s: prices remain", m)
		}
	}
	if countLabel(doc, "price") != 3 {
		t.Errorf("source modified")
	}
}

func TestTransformStreamFlow(t *testing.T) {
	q, err := ParseQuery(`transform copy $a := doc("parts") modify do delete $a//price return $a`)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	res, err := TransformStream(q, BytesSource(partsDoc), &sb)
	if err != nil {
		t.Fatal(err)
	}
	if res.First.MaxStackDepth == 0 {
		t.Errorf("no stats: %+v", res)
	}
	out, err := ParseString(sb.String())
	if err != nil {
		t.Fatal(err)
	}
	if countLabel(out, "price") != 0 {
		t.Errorf("prices remain in stream output")
	}
	bad := &Query{}
	if _, err := TransformStream(bad, BytesSource(partsDoc), &sb); err == nil {
		t.Errorf("invalid query accepted")
	}
}

func TestComposeFlow(t *testing.T) {
	doc, err := ParseString(partsDoc)
	if err != nil {
		t.Fatal(err)
	}
	qt, err := ParseQuery(`transform copy $a := doc("parts") modify do delete $a//supplier[country = "A"] return $a`)
	if err != nil {
		t.Fatal(err)
	}
	uq, err := ParseUserQuery(`for $x in /db/part/supplier return $x/sname`)
	if err != nil {
		t.Fatal(err)
	}
	comp, err := Compose(qt, uq)
	if err != nil {
		t.Fatal(err)
	}
	got, err := comp.Eval(doc)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := NaiveCompose(qt, uq)
	if err != nil {
		t.Fatal(err)
	}
	want, err := naive.Eval(doc)
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Fatalf("compose %s != naive %s", got, want)
	}
	if countLabel(got, "sname") != 1 {
		t.Errorf("expected only the HP supplier, got %s", got)
	}
	if comp.XQueryText() == "" || naive.XQueryText() == "" {
		t.Errorf("empty rendered composition")
	}
	if _, err := Compose(&Query{}, uq); err == nil {
		t.Errorf("invalid transform accepted")
	}
	if _, err := NaiveCompose(&Query{}, uq); err == nil {
		t.Errorf("invalid transform accepted by NaiveCompose")
	}
}

func TestParseFileAndXMark(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/x.xml"
	n, err := WriteXMarkFile(XMarkConfig{Factor: 0.001, Seed: 1}, path)
	if err != nil || n == 0 {
		t.Fatalf("WriteXMarkFile: %d, %v", n, err)
	}
	doc, err := ParseFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Root().Label != "site" {
		t.Errorf("root = %q", doc.Root().Label)
	}
	mem, err := GenerateXMark(XMarkConfig{Factor: 0.001, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if mem.Root().Label != "site" {
		t.Errorf("in-memory root = %q", mem.Root().Label)
	}
	if _, err := ParseFile(path + ".missing"); err == nil {
		t.Errorf("missing file accepted")
	}
}

func TestParsePath(t *testing.T) {
	p, err := ParsePath(`/site/people/person[@id = "person10"]`)
	if err != nil {
		t.Fatal(err)
	}
	if p.String() == "" {
		t.Errorf("empty path rendering")
	}
	if _, err := ParsePath("a["); err == nil {
		t.Errorf("bad path accepted")
	}
}
