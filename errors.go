package xtq

import (
	"context"
	"errors"
	"fmt"

	"xtq/internal/sax"
	"xtq/internal/xerr"
	"xtq/internal/xpath"
)

// Error is the typed error returned by every entry point of this package.
// Classify failures with errors.As instead of matching message text:
//
//	view, err := prepared.Eval(ctx, doc)
//	var xe *xtq.Error
//	if errors.As(err, &xe) {
//		switch xe.Kind {
//		case xtq.KindParse:   // bad query or malformed XML (xe.Pos says where)
//		case xtq.KindCompile: // query outside the supported fragment
//		case xtq.KindEval:    // evaluation failed or was cancelled
//		case xtq.KindIO:      // source/sink failure
//		case xtq.KindNotFound: // store document/view does not exist
//		case xtq.KindConflict: // optimistic store commit lost the race
//		case xtq.KindCorrupt:  // WAL/checkpoint damage (xe.Pos says where)
//		}
//	}
//
// Cancellation keeps its identity through the wrapping:
// errors.Is(err, context.Canceled) holds for an evaluation aborted by a
// cancelled context.
type Error = xerr.Error

// ErrorKind classifies an Error by pipeline stage.
type ErrorKind = xerr.Kind

// Error kinds.
const (
	// KindParse marks syntax errors in query text or input XML.
	KindParse = xerr.Parse
	// KindCompile marks semantically invalid queries.
	KindCompile = xerr.Compile
	// KindEval marks evaluation failures, including cancellation.
	KindEval = xerr.Eval
	// KindIO marks source and sink failures.
	KindIO = xerr.IO
	// KindNotFound marks store lookups of unknown documents or views.
	KindNotFound = xerr.NotFound
	// KindConflict marks optimistic store commits whose base version was
	// superseded by a concurrent writer (Store.ApplyAt; If-Match in xtqd).
	KindConflict = xerr.Conflict
	// KindCorrupt marks durable-store recovery failures: a write-ahead-log
	// record or checkpoint with a bad checksum, impossible framing, or a
	// broken version chain. The Pos names the segment file and byte
	// offset.
	KindCorrupt = xerr.Corrupt
)

// classify maps an arbitrary error onto the taxonomy, attaching position
// information the typed inner errors carry. Errors that already hold an
// *Error pass through so a precise inner kind is never overwritten;
// fallback is the kind most plausible for the call site.
func classify(err error, fallback ErrorKind) error {
	if err == nil {
		return nil
	}
	var xe *Error
	if errors.As(err, &xe) {
		return err
	}
	var pe *sax.ParseError
	if errors.As(err, &pe) {
		return &Error{Kind: KindParse, Pos: fmt.Sprintf("%d:%d", pe.Line, pe.Col), Msg: pe.Msg, Err: err}
	}
	var se *xpath.SyntaxError
	if errors.As(err, &se) {
		return &Error{Kind: KindParse, Pos: fmt.Sprintf("offset %d", se.Pos), Msg: se.Error(), Err: err}
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return &Error{Kind: KindEval, Err: err}
	}
	return &Error{Kind: fallback, Err: err}
}
