package xtq_test

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"xtq"
	"xtq/internal/xmark"
)

// facadeUpdates is the pool the property test draws from: a mix of
// updates that are provably absorbed by the views below (inserts into
// view-deleted regions), updates that force delta maintenance, and
// updates that select nothing (no-op commits).
var facadeUpdates = []string{
	`transform copy $a := doc("auc") modify do insert <interest category="c"/> into $a//profile return $a`,
	`transform copy $a := doc("auc") modify do insert <note>n</note> into $a//annotation return $a`,
	`transform copy $a := doc("auc") modify do insert <bidder><increase>3</increase></bidder> into $a//open_auction return $a`,
	`transform copy $a := doc("auc") modify do delete $a//reserve return $a`,
	`transform copy $a := doc("auc") modify do replace $a//happiness with <happiness>5</happiness> return $a`,
	`transform copy $a := doc("auc") modify do delete $a//listitem return $a`,
	`transform copy $a := doc("auc") modify do rename $a/site/regions as zones return $a`,
	`transform copy $a := doc("auc") modify do insert <mark/> into $a/site/regions return $a`,
}

// TestQuickFacadeViewsMatchOracle drives random XMark update sequences
// against a store with a lazy two-layer view and an eager three-layer
// materialized view, and checks after every commit — and from eight
// concurrent racing readers — that what the maintained cache serves is
// byte-identical to a from-scratch recomposition of the same snapshot.
func TestQuickFacadeViewsMatchOracle(t *testing.T) {
	ctx := context.Background()
	var totalDelta, totalUnaffected int

	for seed := int64(1); seed <= 4; seed++ {
		st := xtq.NewStore(nil)
		doc, err := xmark.Generate(xmark.Config{Factor: 0.002, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := st.Put(ctx, "auc", doc); err != nil {
			t.Fatal(err)
		}

		lazy, err := st.RegisterView("public",
			`transform copy $a := doc("x") modify do delete $a//profile return $a`,
			`transform copy $a := doc("x") modify do delete $a//reserve return $a`,
		)
		if err != nil {
			t.Fatal(err)
		}
		eager, err := st.RegisterMaterializedView("feed",
			`transform copy $a := doc("x") modify do delete $a//annotation return $a`,
			`transform copy $a := doc("x") modify do delete $a//increase return $a`,
			`transform copy $a := doc("x") modify do rename $a/site as auctions return $a`,
		)
		if err != nil {
			t.Fatal(err)
		}
		oracles := map[string]*xtq.View{"public": lazy, "feed": eager}

		// check compares the maintained read against the oracle on snap.
		check := func(snap *xtq.Snapshot) error {
			for name, v := range oracles {
				got, _, err := st.ViewAt(ctx, snap, name)
				if err != nil {
					return err
				}
				want, err := v.Materialize(ctx, snap)
				if err != nil {
					return err
				}
				if got.String() != want.String() {
					t.Errorf("seed %d: view %s diverges from oracle at version %d",
						seed, name, snap.Version())
				}
			}
			return nil
		}

		// Eight readers race the writer, each validating whatever
		// snapshot is current when it looks.
		var stop atomic.Bool
		var readerErr atomic.Value
		var wg sync.WaitGroup
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for !stop.Load() {
					snap, err := st.Snapshot("auc")
					if err != nil {
						readerErr.Store(err)
						return
					}
					if err := check(snap); err != nil {
						readerErr.Store(err)
						return
					}
				}
			}()
		}

		rng := rand.New(rand.NewSource(seed * 7919))
		for i := 0; i < 8; i++ {
			upd := facadeUpdates[rng.Intn(len(facadeUpdates))]
			snap, _, err := st.Apply(ctx, "auc", upd)
			if err != nil {
				t.Fatalf("seed %d update %d: %v", seed, i, err)
			}
			if err := check(snap); err != nil {
				t.Fatalf("seed %d version %d: %v", seed, snap.Version(), err)
			}
		}
		stop.Store(true)
		wg.Wait()
		if err := readerErr.Load(); err != nil {
			t.Fatalf("seed %d reader: %v", seed, err)
		}

		// Older versions stay readable and correct (time travel).
		if snap, err := st.SnapshotAt(ctx, "auc", 3); err == nil {
			if err := check(snap); err != nil {
				t.Fatalf("seed %d time travel: %v", seed, err)
			}
		}

		snap, err := st.Snapshot("auc")
		if err != nil {
			t.Fatal(err)
		}
		if _, stats, err := st.ViewAt(ctx, snap, "feed"); err == nil {
			totalDelta += stats.DeltaCommits
			totalUnaffected += stats.UnaffectedCommits
		}
		if _, stats, err := st.ViewAt(ctx, snap, "public"); err == nil {
			totalDelta += stats.DeltaCommits
			totalUnaffected += stats.UnaffectedCommits
		}
	}

	// The pool must have exercised both fast paths somewhere across the
	// seeds, or the test is not probing what it claims to.
	if totalDelta == 0 {
		t.Error("no commit was delta-maintained")
	}
	if totalUnaffected == 0 {
		t.Error("no commit was proved unaffected")
	}
}
