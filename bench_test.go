package xtq

// Benchmarks regenerating the paper's figures, one benchmark tree per
// figure (see DESIGN.md's per-experiment index and EXPERIMENTS.md for the
// expected shapes). The factors are scaled down from the paper's so that
// `go test -bench=.` completes in minutes; `cmd/xbench` runs the
// full-scale sweeps.

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"xtq/internal/compose"
	"xtq/internal/core"
	"xtq/internal/harness"
	"xtq/internal/queries"
	"xtq/internal/saxeval"
	"xtq/internal/tree"
	"xtq/internal/xmark"
)

// benchState lazily generates and caches benchmark documents.
var benchState = struct {
	docs map[float64]*tree.Node
	xml  map[float64][]byte
}{docs: map[float64]*tree.Node{}, xml: map[float64][]byte{}}

func benchDoc(b *testing.B, factor float64) *tree.Node {
	b.Helper()
	if d, ok := benchState.docs[factor]; ok {
		return d
	}
	d, err := xmark.Generate(xmark.Config{Factor: factor, Seed: 42})
	if err != nil {
		b.Fatal(err)
	}
	benchState.docs[factor] = d
	return d
}

func benchXML(b *testing.B, factor float64) []byte {
	b.Helper()
	if x, ok := benchState.xml[factor]; ok {
		return x
	}
	doc := benchDoc(b, factor)
	x := []byte(doc.String())
	benchState.xml[factor] = x
	return x
}

var benchMethods = []struct {
	name   string
	method core.Method
}{
	{"GalaXUpdate", core.MethodCopyUpdate},
	{"NAIVE", core.MethodNaive},
	{"TD-BU", core.MethodTwoPass},
	{"GENTOP", core.MethodTopDown},
}

// BenchmarkFig12 reproduces Figure 12: all five evaluation methods over
// the ten insert transform queries at one document size.
func BenchmarkFig12(b *testing.B) {
	const factor = 0.02
	for i := 1; i <= 10; i++ {
		c, err := queries.Compile(i)
		if err != nil {
			b.Fatal(err)
		}
		for _, m := range benchMethods {
			b.Run(fmt.Sprintf("U%d/%s", i, m.name), func(b *testing.B) {
				doc := benchDoc(b, factor)
				b.ResetTimer()
				for n := 0; n < b.N; n++ {
					if _, err := c.Eval(doc, m.method); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
		b.Run(fmt.Sprintf("U%d/twoPassSAX", i), func(b *testing.B) {
			xml := benchXML(b, factor)
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				if _, err := saxeval.Transform(c, saxeval.BytesSource(xml), discard{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig13 reproduces Figure 13: scalability with document size for
// the representative queries U2, U4, U7, U10.
func BenchmarkFig13(b *testing.B) {
	for _, qi := range []int{2, 4, 7, 10} {
		c, err := queries.Compile(qi)
		if err != nil {
			b.Fatal(err)
		}
		for _, factor := range []float64{0.01, 0.02, 0.04} {
			for _, m := range benchMethods {
				b.Run(fmt.Sprintf("U%d/factor=%g/%s", qi, factor, m.name), func(b *testing.B) {
					doc := benchDoc(b, factor)
					b.ResetTimer()
					for n := 0; n < b.N; n++ {
						if _, err := c.Eval(doc, m.method); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
			b.Run(fmt.Sprintf("U%d/factor=%g/twoPassSAX", qi, factor), func(b *testing.B) {
				xml := benchXML(b, factor)
				b.ResetTimer()
				for n := 0; n < b.N; n++ {
					if _, err := saxeval.Transform(c, saxeval.BytesSource(xml), discard{}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig14 reproduces Figure 14: the streaming evaluator over files,
// with -benchmem substantiating the flat memory claim (allocation per op
// stays constant as the factor grows).
func BenchmarkFig14(b *testing.B) {
	for _, factor := range []float64{0.02, 0.05, 0.1} {
		path := filepath.Join(b.TempDir(), fmt.Sprintf("xmark-%g.xml", factor))
		if _, err := xmark.WriteFile(xmark.Config{Factor: factor, Seed: 42}, path); err != nil {
			b.Fatal(err)
		}
		for _, qi := range []int{2, 4, 7, 10} {
			c, err := queries.Compile(qi)
			if err != nil {
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("factor=%g/U%d", factor, qi), func(b *testing.B) {
				for n := 0; n < b.N; n++ {
					if _, err := saxeval.Transform(c, saxeval.FileSource(path), discard{}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
		b.Cleanup(func() { os.Remove(path) })
	}
}

// BenchmarkFig15 reproduces Figure 15: Naive Composition versus the
// Compose Method over the four transform/user query pairs.
func BenchmarkFig15(b *testing.B) {
	for _, p := range queries.Pairs() {
		ct, err := p.Transform.Compile()
		if err != nil {
			b.Fatal(err)
		}
		plan, err := compose.NewPlan([]*core.Compiled{ct}, p.User)
		if err != nil {
			b.Fatal(err)
		}
		ctx := context.Background()
		for _, factor := range []float64{0.02, 0.04} {
			b.Run(fmt.Sprintf("%s/factor=%g/NaiveComposition", p.Name, factor), func(b *testing.B) {
				doc := benchDoc(b, factor)
				b.ResetTimer()
				for n := 0; n < b.N; n++ {
					if _, err := plan.EvalSequential(ctx, doc, core.MethodTopDown); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run(fmt.Sprintf("%s/factor=%g/Compose", p.Name, factor), func(b *testing.B) {
				doc := benchDoc(b, factor)
				b.ResetTimer()
				for n := 0; n < b.N; n++ {
					if _, _, err := plan.Eval(ctx, doc); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkViewStacks measures the stacked-view workloads: single-pass
// stacked evaluation (Plan.Eval, what PreparedView.Eval runs) versus
// sequentially materializing every layer.
func BenchmarkViewStacks(b *testing.B) {
	for _, s := range queries.Stacks() {
		plan, err := harness.StackPlan(s)
		if err != nil {
			b.Fatal(err)
		}
		ctx := context.Background()
		for _, factor := range []float64{0.02, 0.04} {
			b.Run(fmt.Sprintf("%s/factor=%g/Sequential", s.Name, factor), func(b *testing.B) {
				doc := benchDoc(b, factor)
				b.ResetTimer()
				for n := 0; n < b.N; n++ {
					if _, err := plan.EvalSequential(ctx, doc, core.MethodTopDown); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run(fmt.Sprintf("%s/factor=%g/Stacked", s.Name, factor), func(b *testing.B) {
				doc := benchDoc(b, factor)
				b.ResetTimer()
				for n := 0; n < b.N; n++ {
					if _, _, err := plan.Eval(ctx, doc); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkNaiveQuadratic isolates the §7.1 claim that NAIVE degrades when
// |$xp| grows with the document (U1) but stays linear when |$xp| is fixed
// (U2).
func BenchmarkNaiveQuadratic(b *testing.B) {
	for _, factor := range []float64{0.01, 0.02, 0.04} {
		for _, qi := range []int{1, 2} {
			c, err := queries.Compile(qi)
			if err != nil {
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("U%d/factor=%g", qi, factor), func(b *testing.B) {
				doc := benchDoc(b, factor)
				b.ResetTimer()
				for n := 0; n < b.N; n++ {
					if _, err := c.Eval(doc, core.MethodNaive); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkAblationNoPrune quantifies the subtree-pruning design choice:
// topDown with and without the empty-state-set shortcut (DESIGN.md,
// ablation 1).
func BenchmarkAblationNoPrune(b *testing.B) {
	c, err := queries.Compile(2) // highly selective: pruning matters most
	if err != nil {
		b.Fatal(err)
	}
	b.Run("pruned", func(b *testing.B) {
		doc := benchDoc(b, 0.02)
		b.ResetTimer()
		for n := 0; n < b.N; n++ {
			if _, err := core.EvalTopDown(context.Background(), c, doc, core.DirectChecker{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("noprune", func(b *testing.B) {
		doc := benchDoc(b, 0.02)
		b.ResetTimer()
		for n := 0; n < b.N; n++ {
			if _, err := core.EvalTopDownNoPrune(context.Background(), c, doc, core.DirectChecker{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkQualifierStrategies compares GENTOP's direct qualifier
// evaluation against TD-BU's annotated lookups on the complex-qualifier
// queries (DESIGN.md, ablation 2).
func BenchmarkQualifierStrategies(b *testing.B) {
	for _, qi := range []int{7, 8} {
		c, err := queries.Compile(qi)
		if err != nil {
			b.Fatal(err)
		}
		for _, m := range []core.Method{core.MethodTopDown, core.MethodTwoPass} {
			b.Run(fmt.Sprintf("U%d/%s", qi, m), func(b *testing.B) {
				doc := benchDoc(b, 0.02)
				b.ResetTimer()
				for n := 0; n < b.N; n++ {
					if _, err := c.Eval(doc, m); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// discard swallows the streamed output events.
type discard struct{}

func (discard) StartDocument() error                   { return nil }
func (discard) StartElement(string, []tree.Attr) error { return nil }
func (discard) Text(string) error                      { return nil }
func (discard) EndElement(string) error                { return nil }
func (discard) EndDocument() error                     { return nil }

// BenchmarkPreparedReuse measures the steady state of the Engine API: one
// Prepare, then evaluation per document. Compare against
// BenchmarkParsePerCall to see what the compiled-query reuse amortizes
// away (query parsing plus selecting-NFA construction per call).
func BenchmarkPreparedReuse(b *testing.B) {
	const query = `transform copy $a := doc("site") modify
		do delete $a/site/regions//item[location = "United States"] return $a`
	eng := NewEngine(WithMethod(MethodTopDown))
	p, err := eng.Prepare(query)
	if err != nil {
		b.Fatal(err)
	}
	doc := benchDoc(b, 0.01)
	ctx := context.Background()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if _, err := p.Eval(ctx, doc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPreparedCacheHit includes the engine's Prepare in the loop:
// the LRU lookup replaces parse+compile, the configuration of a service
// receiving query text with every request.
func BenchmarkPreparedCacheHit(b *testing.B) {
	const query = `transform copy $a := doc("site") modify
		do delete $a/site/regions//item[location = "United States"] return $a`
	eng := NewEngine(WithMethod(MethodTopDown))
	doc := benchDoc(b, 0.01)
	ctx := context.Background()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		p, err := eng.Prepare(query)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := p.Eval(ctx, doc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParsePerCall is the pre-Engine behaviour: parse and compile
// the query text on every evaluation.
func BenchmarkParsePerCall(b *testing.B) {
	const query = `transform copy $a := doc("site") modify
		do delete $a/site/regions//item[location = "United States"] return $a`
	doc := benchDoc(b, 0.01)
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		q, err := ParseQuery(query)
		if err != nil {
			b.Fatal(err)
		}
		c, err := q.Compile()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := c.Eval(doc, MethodTopDown); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompileOnly isolates what Prepare amortizes: query parsing
// plus automaton construction, no evaluation.
func BenchmarkCompileOnly(b *testing.B) {
	const query = `transform copy $a := doc("site") modify
		do delete $a/site/regions//item[location = "United States"] return $a`
	for n := 0; n < b.N; n++ {
		q, err := ParseQuery(query)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := q.Compile(); err != nil {
			b.Fatal(err)
		}
	}
}

// Small-document variants: with microsecond evaluations the per-call
// parse+compile dominates, which is exactly the regime of a service
// answering many small requests — the case the Engine cache exists for.
func BenchmarkPreparedReuseSmallDoc(b *testing.B) {
	const query = `transform copy $a := doc("d") modify do delete $a//price return $a`
	docXML := `<db><part><pname>kb</pname><price>9</price></part><part><pname>m</pname><price>5</price></part></db>`
	doc, err := ParseString(docXML)
	if err != nil {
		b.Fatal(err)
	}
	eng := NewEngine()
	p, err := eng.Prepare(query)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if _, err := p.Eval(ctx, doc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParsePerCallSmallDoc(b *testing.B) {
	const query = `transform copy $a := doc("d") modify do delete $a//price return $a`
	docXML := `<db><part><pname>kb</pname><price>9</price></part><part><pname>m</pname><price>5</price></part></db>`
	doc, err := ParseString(docXML)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		q, err := ParseQuery(query)
		if err != nil {
			b.Fatal(err)
		}
		c, err := q.Compile()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := c.Eval(doc, MethodTopDown); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSealedSnapshotEval measures Prepared evaluation over a
// sealed store snapshot — the structure-of-arrays read path every
// xtqd query takes. Compare with BenchmarkPreparedReuse: sealing (and
// the column core riding on the index) must not tax evaluation.
func BenchmarkSealedSnapshotEval(b *testing.B) {
	doc := benchDoc(b, 0.01)
	ctx := context.Background()
	st := NewStore(nil)
	if _, _, err := st.Put(ctx, "d", doc); err != nil {
		b.Fatal(err)
	}
	p, err := st.Engine().Prepare(`transform copy $a := doc("d") modify
		do delete $a/site/regions//item[location = "United States"] return $a`)
	if err != nil {
		b.Fatal(err)
	}
	snap, err := st.Snapshot("d")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Eval(ctx, snap.Root()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPathCopyCommit measures the full write path — evaluate the
// update, path-copy the touched spine, publish the version — under the
// alternating //item rename workload of the store sweeps. The
// copied-B/op metric is the per-commit copy volume: spine nodes plus
// the column chunks they dirty, everything else shared with the
// previous version (whole-tree copying cost ~2.1 MB/op here, see
// BENCH_PR5.json).
func BenchmarkPathCopyCommit(b *testing.B) {
	doc := benchDoc(b, 0.01)
	ctx := context.Background()
	st := NewStore(nil)
	if _, _, err := st.Put(ctx, "d", doc); err != nil {
		b.Fatal(err)
	}
	fwd := `transform copy $a := doc("d") modify do rename $a/site/regions//item as item_ return $a`
	back := `transform copy $a := doc("d") modify do rename $a/site/regions//item_ as item return $a`
	if _, _, err := st.Apply(ctx, "d", fwd); err != nil { // warm caches
		b.Fatal(err)
	}
	if _, _, err := st.Apply(ctx, "d", back); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var copied int64
	for i := 0; i < b.N; i++ {
		q := fwd
		if i%2 == 1 {
			q = back
		}
		_, com, err := st.Apply(ctx, "d", q)
		if err != nil {
			b.Fatal(err)
		}
		copied += com.CopiedBytes
	}
	if b.N > 0 {
		b.ReportMetric(float64(copied)/float64(b.N), "copied-B/op")
	}
}
