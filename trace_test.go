package xtq

import (
	"context"
	"testing"

	"xtq/internal/obs"
)

// TestEvalTrace drives one explained evaluation end to end and asserts
// the trace reports the method actually run, the query-cache outcome,
// the document size, and a plausible nodes-visited figure from the
// evaluator's cancellation counter.
func TestEvalTrace(t *testing.T) {
	eng := NewEngine(WithMethod(MethodTopDown))
	src := `transform copy $a := doc("d") modify do delete $a//price return $a`

	tr := obs.NewTrace()
	ctx := obs.WithTrace(context.Background(), tr)
	p, err := eng.PrepareContext(ctx, src)
	if err != nil {
		t.Fatal(err)
	}
	if hit, known := tr.CacheHit(); !known || hit {
		t.Fatalf("first prepare: hit=%v known=%v, want miss", hit, known)
	}
	if tr.Compile() <= 0 {
		t.Fatal("compile time not recorded on a cache miss")
	}

	doc, err := GenerateXMark(XMarkConfig{Factor: 0.002, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Eval(ctx, doc); err != nil {
		t.Fatal(err)
	}
	if got := tr.Method(); got != string(MethodTopDown) {
		t.Fatalf("trace method = %q, want %q", got, MethodTopDown)
	}
	if tr.DocNodes() <= 0 {
		t.Fatal("doc nodes not recorded")
	}
	if tr.Eval() <= 0 {
		t.Fatal("eval time not recorded")
	}
	if v := tr.NodesVisited(); v <= 0 || v > 4*tr.DocNodes() {
		t.Fatalf("nodes visited = %d with %d doc nodes", v, tr.DocNodes())
	}

	// A second prepare of the same source is a cache hit on a fresh trace.
	tr2 := obs.NewTrace()
	if _, err := eng.PrepareContext(obs.WithTrace(context.Background(), tr2), src); err != nil {
		t.Fatal(err)
	}
	if hit, known := tr2.CacheHit(); !known || !hit {
		t.Fatalf("re-prepare: hit=%v known=%v, want hit", hit, known)
	}
}
