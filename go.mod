module xtq

go 1.22
