package xtq

import (
	"context"
	"strconv"

	"xtq/internal/core"
	"xtq/internal/ivm"
	"xtq/internal/store"
)

// Event is one entry of a document's change feed: a committed version
// with its ETag and the registered views the commit may have changed,
// or one of the two out-of-band signals — ViewsChanged (the view
// registry mutated under an unchanged document) and Resync (the
// subscriber has a gap and must re-read current state). Events are
// what GET /docs/{name}/watch streams.
type Event = ivm.Event

// Subscription is one live change-feed connection: Next blocks for the
// next batch of events, Close detaches. A slow subscriber never blocks
// commits — its backlog collapses into a single Resync event instead.
type Subscription = ivm.Subscriber

// MatViewStats describes one materialized-view read and the
// maintenance history of its cache entry — delta versus full commits,
// provably-unaffected no-ops, and the per-layer work counters of the
// evaluation that produced the served tree. xtqd reports it in the
// X-Xtq-View-Stats header.
type MatViewStats = ivm.Stats

// wireIVM attaches the incremental-view-maintenance pipeline to the
// store: a materialization manager driven by the commit hook and a
// change-feed hub that turns every commit into subscriber events.
// Called once at construction, before the store accepts writes.
func (s *Store) wireIVM() {
	s.mgr = ivm.NewManager(core.Method(s.eng.method), verdictCache{s.eng.verdicts})
	s.hub = ivm.NewHub(0, 0)
	s.st.SetCommitHook(func(ev store.CommitEvent) {
		affected := s.mgr.OnCommit(ev)
		e := Event{Doc: ev.Name, Version: ev.Version}
		switch ev.Kind {
		case store.CommitReset:
			// Follower bootstrap replaced the whole document state:
			// versions may have been skipped, subscribers must resync.
			e.Resync = true
		case store.CommitRemove:
			e.Deleted = true
			e.ETag = eventETag(ev.Version)
			e.AffectedViews = affected
		default:
			e.ETag = eventETag(ev.Version)
			e.AffectedViews = affected
		}
		s.hub.Publish(e)
	})
}

// eventETag renders a version as the strong entity tag the document
// endpoints serve (see xtqd's versionHeaders).
func eventETag(v uint64) string {
	return `"` + strconv.FormatUint(v, 10) + `"`
}

// Watch subscribes to name's change feed starting from now: the first
// event is the next commit. The document does not have to exist yet —
// its first Put is then the first event. Close the subscription when
// done.
func (s *Store) Watch(name string) *Subscription {
	return s.hub.Subscribe(name, 0, false, 0)
}

// WatchFrom subscribes to name's change feed resuming after version
// from: events from+1, from+2, ... are replayed from the feed's
// history ring before live delivery begins. When the ring no longer
// reaches back to from (or the server restarted since), the first
// event is a Resync carrying the current version — the caller re-reads
// state and continues gaplessly from there.
func (s *Store) WatchFrom(name string, from uint64) *Subscription {
	head, _ := s.st.HeadVersion(name)
	return s.hub.Subscribe(name, from, true, head)
}

// ViewDocument serves the materialization of a registered view over
// the current snapshot of name, maintained incrementally across
// commits: reads at the maintained version return the cached tree
// (stats.Source == "cache"), anything else evaluates on demand. The
// returned tree is immutable; serialize it, do not index it.
func (s *Store) ViewDocument(ctx context.Context, name, view string) (*Node, MatViewStats, error) {
	snap, err := s.st.Snapshot(name)
	if err != nil {
		return nil, MatViewStats{}, classify(err, KindNotFound)
	}
	return s.ViewAt(ctx, snap, view)
}

// ViewAt is ViewDocument over an explicit snapshot — time-travel reads
// of a view at any version SnapshotAt can serve. Reads below the
// maintained version evaluate on demand without disturbing the cache.
func (s *Store) ViewAt(ctx context.Context, snap *Snapshot, view string) (*Node, MatViewStats, error) {
	out, stats, err := s.mgr.Get(ctx, snap, view)
	if err != nil {
		return nil, stats, classify(err, KindEval)
	}
	return out, stats, nil
}
