package xtq

import (
	"container/list"
	"context"
	"sync"

	"xtq/internal/core"
	"xtq/internal/sax"
)

// DefaultQueryCacheSize is the compiled-query cache capacity of an Engine
// built without WithQueryCacheSize.
const DefaultQueryCacheSize = 128

// Engine is the long-lived entry point of the package, in the mould of
// database/sql.DB: construct one per process (or per configuration),
// hand out Prepared statements, and share both freely across goroutines.
//
//	eng := xtq.NewEngine(xtq.WithMethod(xtq.MethodTwoPass))
//	p, err := eng.Prepare(`transform copy $a := doc("d") modify
//	                       do delete $a//price return $a`)
//	view, err := p.Eval(ctx, doc)
//
// The engine owns an LRU cache of compiled queries keyed by query source,
// so repeated Prepare calls with the same text — the steady state of a
// service evaluating a fixed query set over many documents — skip both
// parsing and automaton construction.
type Engine struct {
	method   Method
	cacheCap int
	maxDepth int

	mu     sync.Mutex
	lru    *list.List // front = most recently used; values are *cacheEntry
	byKey  map[string]*list.Element
	hits   uint64
	misses uint64
}

type cacheEntry struct {
	key      string
	compiled *core.Compiled
}

// Option configures an Engine.
type Option func(*Engine)

// WithMethod selects the in-memory evaluation method Prepared.Eval uses;
// the default is MethodTopDown, the paper's best-performing general
// method ("GENTOP").
func WithMethod(m Method) Option { return func(e *Engine) { e.method = m } }

// WithQueryCacheSize sets the capacity of the compiled-query cache; zero
// disables caching, negative values leave the default in place.
func WithQueryCacheSize(n int) Option {
	return func(e *Engine) {
		if n >= 0 {
			e.cacheCap = n
		}
	}
}

// WithMaxDepth bounds element nesting when the engine parses input
// documents (Prepared.Eval over file/bytes/reader sources); zero, the
// default, means no limit. Streaming evaluation is not affected: its
// memory use is O(depth) by construction.
func WithMaxDepth(d int) Option { return func(e *Engine) { e.maxDepth = d } }

// NewEngine builds an Engine from functional options.
func NewEngine(opts ...Option) *Engine {
	e := &Engine{
		method:   MethodTopDown,
		cacheCap: DefaultQueryCacheSize,
		lru:      list.New(),
		byKey:    make(map[string]*list.Element),
	}
	for _, o := range opts {
		o(e)
	}
	return e
}

// Method returns the evaluation method Prepared.Eval uses.
func (e *Engine) Method() Method { return e.method }

// Prepare parses and compiles a transform query, or retrieves the
// compiled form from the engine's cache. The returned Prepared is
// immutable and safe for concurrent use.
func (e *Engine) Prepare(src string) (*Prepared, error) {
	if err := e.validateMethod(); err != nil {
		return nil, err
	}
	return e.prepare(src, func() (*core.Compiled, error) {
		q, err := core.ParseQuery(src)
		if err != nil {
			return nil, err
		}
		return q.Compile()
	})
}

// PrepareQuery compiles an already-parsed query, caching by its canonical
// rendering. The cached compiled form is re-parsed from that rendering
// rather than aliasing q, so the caller remains free to mutate q between
// calls (the contract of the pre-Engine API this backs): a later
// mutation changes the rendering and simply keys a different entry.
func (e *Engine) PrepareQuery(q *Query) (*Prepared, error) {
	if err := e.validateMethod(); err != nil {
		return nil, err
	}
	if err := q.Validate(); err != nil {
		// Validate before rendering: String is only meaningful on
		// well-formed queries.
		return nil, err
	}
	key := q.String()
	own, err := core.ParseQuery(key)
	if err != nil {
		// The rendering does not round-trip (e.g. a doc() argument
		// containing both quote characters, which surface syntax cannot
		// express). Compile the live query directly and skip the shared
		// cache so its entries never alias caller-mutable state.
		c, cerr := q.Compile()
		if cerr != nil {
			return nil, classify(cerr, KindCompile)
		}
		return &Prepared{eng: e, src: key, compiled: c}, nil
	}
	return e.prepare(key, own.Compile)
}

func (e *Engine) validateMethod() error {
	_, err := core.ParseMethod(string(e.method))
	return err
}

func (e *Engine) prepare(key string, compile func() (*core.Compiled, error)) (*Prepared, error) {
	if e.cacheCap > 0 {
		e.mu.Lock()
		if el, ok := e.byKey[key]; ok {
			e.lru.MoveToFront(el)
			e.hits++
			c := el.Value.(*cacheEntry).compiled
			e.mu.Unlock()
			return &Prepared{eng: e, src: key, compiled: c}, nil
		}
		e.misses++
		e.mu.Unlock()
	}
	c, err := compile()
	if err != nil {
		return nil, classify(err, KindCompile)
	}
	if e.cacheCap > 0 {
		e.mu.Lock()
		if _, ok := e.byKey[key]; !ok {
			e.byKey[key] = e.lru.PushFront(&cacheEntry{key: key, compiled: c})
			for e.lru.Len() > e.cacheCap {
				oldest := e.lru.Back()
				e.lru.Remove(oldest)
				delete(e.byKey, oldest.Value.(*cacheEntry).key)
			}
		}
		e.mu.Unlock()
	}
	return &Prepared{eng: e, src: key, compiled: c}, nil
}

// CacheStats reports compiled-query cache effectiveness: hits and misses
// since the engine was built, and the current number of cached queries.
func (e *Engine) CacheStats() (hits, misses uint64, size int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.hits, e.misses, e.lru.Len()
}

// parse reads one document from src applying the engine's parse options.
// Cancelling ctx aborts the parse at SAX-event granularity, so a large
// input stops loading promptly.
func (e *Engine) parse(ctx context.Context, src Source) (*Node, error) {
	if n, ok := src.(*Node); ok {
		return n, nil
	}
	r, err := src.Open()
	if err != nil {
		return nil, classify(err, KindIO)
	}
	defer r.Close()
	var tb sax.TreeBuilder
	p := sax.NewParserOptions(r, sax.WithCancel(ctx, &tb), sax.Options{MaxDepth: e.maxDepth})
	if err := p.Parse(); err != nil {
		// Well-formedness violations arrive as *sax.ParseError and
		// classify as KindParse, cancellations as KindEval; anything
		// else is the reader failing mid-document — an I/O failure.
		return nil, classify(err, KindIO)
	}
	return tb.Document(), nil
}
