package xtq

import (
	"container/list"
	"context"
	"strconv"
	"sync"
	"time"

	"xtq/internal/core"
	"xtq/internal/ivm"
	"xtq/internal/obs"
	"xtq/internal/plan"
	"xtq/internal/sax"
	"xtq/internal/stats"
	"xtq/internal/store"
	"xtq/internal/tree"
)

// DefaultQueryCacheSize is the compiled-query cache capacity of an Engine
// built without WithQueryCacheSize.
const DefaultQueryCacheSize = 128

// DefaultViewCacheSize is the composition-plan cache capacity of an
// Engine built without WithViewCacheSize. Plans are keyed by (view stack,
// user query), so the steady state of a service answering a fixed set of
// user queries over a fixed set of views never rebuilds a plan.
const DefaultViewCacheSize = 64

// DefaultVerdictCacheSize is the impact-verdict cache capacity of an
// Engine built without WithVerdictCacheSize. Verdicts are keyed by the
// canonical renderings of (view stack, update query), so a workload
// with a fixed update vocabulary decides each (view, update) pair's
// impact exactly once.
const DefaultVerdictCacheSize = 512

// DefaultDecisionCacheSize is the planner decision cache capacity of an
// Engine built without WithDecisionCacheSize. Decisions are keyed by
// (query source, statistics fingerprint), so an Auto engine evaluating
// a fixed query set against a document version runs the cost model once
// per (query, version-statistics) pair; a commit changes the
// fingerprint and naturally invalidates every entry for the document.
const DefaultDecisionCacheSize = 256

// Engine is the long-lived entry point of the package, in the mould of
// database/sql.DB: construct one per process (or per configuration),
// hand out Prepared statements and PreparedViews, and share all of them
// freely across goroutines.
//
//	eng := xtq.NewEngine(xtq.WithMethod(xtq.MethodTwoPass))
//	p, err := eng.Prepare(`transform copy $a := doc("d") modify
//	                       do delete $a//price return $a`)
//	view, err := p.Eval(ctx, doc)
//
// The engine owns two LRU caches: compiled queries keyed by query source
// (absorbing repeated Prepare calls — the steady state of a service
// evaluating a fixed query set over many documents skips both parsing
// and automaton construction) and view composition plans keyed by
// (view stack, user query) (absorbing repeated View(...).Prepare calls).
type Engine struct {
	method   Method
	maxDepth int

	queryCap    int
	viewCap     int
	verdictCap  int
	decisionCap int
	queries     *lruCache // *core.Compiled values
	plans       *lruCache // *compose.Plan values
	verdicts    *lruCache // ivm.Verdict values
	decisions   *lruCache // plan.Decision values
}

// lruCache is a mutex-guarded LRU keyed by strings. The zero capacity
// disables it: get always misses without counting, add is a no-op.
type lruCache struct {
	cap int

	mu     sync.Mutex
	ll     *list.List // front = most recently used; values are *lruEntry
	byKey  map[string]*list.Element
	hits   uint64
	misses uint64

	// mHits/mMisses mirror the per-cache counters onto the process-wide
	// obs registry; the local uint64s stay authoritative for CacheStats.
	mHits   *obs.Counter
	mMisses *obs.Counter
}

type lruEntry struct {
	key   string
	value any
}

func newLRUCache(capacity int, name string) *lruCache {
	return &lruCache{
		cap:     capacity,
		ll:      list.New(),
		byKey:   make(map[string]*list.Element),
		mHits:   mCacheHits.With(name),
		mMisses: mCacheMisses.With(name),
	}
}

// get returns the cached value for key, marking it most recently used.
func (c *lruCache) get(key string) (any, bool) {
	if c.cap <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		c.mHits.Inc()
		return el.Value.(*lruEntry).value, true
	}
	c.misses++
	c.mMisses.Inc()
	return nil, false
}

// add inserts key → value unless the key raced in since the miss, then
// evicts down to capacity.
func (c *lruCache) add(key string, value any) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.byKey[key]; ok {
		return
	}
	c.byKey[key] = c.ll.PushFront(&lruEntry{key: key, value: value})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.byKey, oldest.Value.(*lruEntry).key)
	}
}

// stats reports hits and misses since construction and the current size.
func (c *lruCache) stats() (hits, misses uint64, size int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.ll.Len()
}

// Option configures an Engine.
type Option func(*Engine)

// WithMethod selects the in-memory evaluation method Prepared.Eval uses;
// the default is MethodTopDown, the paper's best-performing general
// method ("GENTOP"). MethodAuto (alias Auto) lets the cost-based
// planner pick a concrete method per (query, document) from the
// document's statistics instead.
func WithMethod(m Method) Option { return func(e *Engine) { e.method = m } }

// WithQueryCacheSize sets the capacity of the compiled-query cache; zero
// disables caching, negative values leave the default in place.
func WithQueryCacheSize(n int) Option {
	return func(e *Engine) {
		if n >= 0 {
			e.queryCap = n
		}
	}
}

// WithViewCacheSize sets the capacity of the view composition-plan
// cache; zero disables caching, negative values leave the default in
// place.
func WithViewCacheSize(n int) Option {
	return func(e *Engine) {
		if n >= 0 {
			e.viewCap = n
		}
	}
}

// WithVerdictCacheSize sets the capacity of the impact-verdict cache
// maintained materialized views consult on every commit; zero disables
// caching (every commit re-analyzes), negative values leave the default
// in place.
func WithVerdictCacheSize(n int) Option {
	return func(e *Engine) {
		if n >= 0 {
			e.verdictCap = n
		}
	}
}

// WithDecisionCacheSize sets the capacity of the planner decision cache
// an Auto engine consults per evaluation; zero disables caching (every
// evaluation runs the cost model — it is cheap, but not free), negative
// values leave the default in place.
func WithDecisionCacheSize(n int) Option {
	return func(e *Engine) {
		if n >= 0 {
			e.decisionCap = n
		}
	}
}

// WithMaxDepth bounds element nesting when the engine parses input
// documents (Prepared.Eval over file/bytes/reader sources); zero, the
// default, means no limit. Streaming evaluation is not affected: its
// memory use is O(depth) by construction.
func WithMaxDepth(d int) Option { return func(e *Engine) { e.maxDepth = d } }

// NewEngine builds an Engine from functional options.
func NewEngine(opts ...Option) *Engine {
	e := &Engine{
		method:      MethodTopDown,
		queryCap:    DefaultQueryCacheSize,
		viewCap:     DefaultViewCacheSize,
		verdictCap:  DefaultVerdictCacheSize,
		decisionCap: DefaultDecisionCacheSize,
	}
	for _, o := range opts {
		o(e)
	}
	e.queries = newLRUCache(e.queryCap, "query")
	e.plans = newLRUCache(e.viewCap, "plan")
	e.verdicts = newLRUCache(e.verdictCap, "verdict")
	e.decisions = newLRUCache(e.decisionCap, "decision")
	return e
}

// Method returns the evaluation method Prepared.Eval uses.
func (e *Engine) Method() Method { return e.method }

// Prepare parses and compiles a transform query, or retrieves the
// compiled form from the engine's cache. The returned Prepared is
// immutable and safe for concurrent use.
func (e *Engine) Prepare(src string) (*Prepared, error) {
	return e.PrepareContext(context.Background(), src)
}

// PrepareContext is Prepare with a context: when ctx carries an
// obs.Trace (a request being explained), the trace records whether the
// compiled query came from the engine's cache and how long a cache-miss
// compile took. The context does not bound the compile itself — parsing
// and automaton construction are O(|query|) and not worth aborting.
func (e *Engine) PrepareContext(ctx context.Context, src string) (*Prepared, error) {
	if err := e.validateMethod(); err != nil {
		return nil, err
	}
	return e.prepare(ctx, src, func() (*core.Compiled, error) {
		q, err := core.ParseQuery(src)
		if err != nil {
			return nil, err
		}
		return q.Compile()
	})
}

// PrepareQuery compiles an already-parsed query, caching by its canonical
// rendering. The cached compiled form is re-parsed from that rendering
// rather than aliasing q, so the caller remains free to mutate q between
// calls (the contract of the pre-Engine API this backs): a later
// mutation changes the rendering and simply keys a different entry.
func (e *Engine) PrepareQuery(q *Query) (*Prepared, error) {
	if err := e.validateMethod(); err != nil {
		return nil, err
	}
	if err := q.Validate(); err != nil {
		// Validate before rendering: String is only meaningful on
		// well-formed queries.
		return nil, err
	}
	key := q.String()
	own, err := core.ParseQuery(key)
	if err != nil {
		// The rendering does not round-trip (e.g. a doc() argument
		// containing both quote characters, which surface syntax cannot
		// express). Compile the live query directly and skip the shared
		// cache so its entries never alias caller-mutable state.
		c, cerr := q.Compile()
		if cerr != nil {
			return nil, classify(cerr, KindCompile)
		}
		return &Prepared{eng: e, src: key, compiled: c}, nil
	}
	return e.prepare(context.Background(), key, own.Compile)
}

func (e *Engine) validateMethod() error {
	_, err := core.ParseMethod(string(e.method))
	return err
}

func (e *Engine) prepare(ctx context.Context, key string, compile func() (*core.Compiled, error)) (*Prepared, error) {
	tr := obs.TraceFrom(ctx)
	if v, ok := e.queries.get(key); ok {
		if tr != nil {
			tr.SetCacheHit(true)
		}
		return &Prepared{eng: e, src: key, compiled: v.(*core.Compiled)}, nil
	}
	if tr != nil {
		tr.SetCacheHit(false)
	}
	start := time.Now()
	c, err := compile()
	if err != nil {
		return nil, classify(err, KindCompile)
	}
	d := time.Since(start)
	mCompileSeconds.Observe(d)
	if tr != nil {
		tr.AddCompile(d)
	}
	e.queries.add(key, c)
	return &Prepared{eng: e, src: key, compiled: c}, nil
}

// CacheStats reports compiled-query cache effectiveness: hits and misses
// since the engine was built, and the current number of cached queries.
func (e *Engine) CacheStats() (hits, misses uint64, size int) {
	return e.queries.stats()
}

// ViewCacheStats reports composition-plan cache effectiveness: hits and
// misses since the engine was built, and the current number of cached
// plans.
func (e *Engine) ViewCacheStats() (hits, misses uint64, size int) {
	return e.plans.stats()
}

// VerdictCacheStats reports impact-verdict cache effectiveness: hits
// and misses since the engine was built, and the current number of
// cached (view stack, update) verdicts.
func (e *Engine) VerdictCacheStats() (hits, misses uint64, size int) {
	return e.verdicts.stats()
}

// DecisionCacheStats reports planner decision cache effectiveness:
// hits and misses since the engine was built, and the current number of
// cached (query, statistics-fingerprint) decisions.
func (e *Engine) DecisionCacheStats() (hits, misses uint64, size int) {
	return e.decisions.stats()
}

// decide resolves MethodAuto for one (prepared query, document) pair:
// the document's statistics fingerprint keys the cached decision — a
// commit bumps the fingerprint, so stale decisions age out of the LRU
// on their own. The boolean reports a cache hit; hits still count into
// the decisions metric (the planner resolved, however cheaply).
func (e *Engine) decide(src string, c *core.Compiled, doc *Node) (plan.Decision, bool) {
	ix := tree.EnsureIndex(doc)
	key := src + "\x00" + strconv.FormatUint(stats.Of(ix).Fingerprint(), 10)
	if v, ok := e.decisions.get(key); ok {
		dec := v.(plan.Decision)
		plan.RecordDecision(dec.Method)
		return dec, true
	}
	dec := plan.Choose(c, ix)
	e.decisions.add(key, dec)
	return dec, false
}

// verdictCache adapts the engine's LRU to the maintenance layer's
// cache interface.
type verdictCache struct{ c *lruCache }

func (v verdictCache) Get(key string) (ivm.Verdict, bool) {
	if x, ok := v.c.get(key); ok {
		return x.(ivm.Verdict), true
	}
	return ivm.VerdictUnknown, false
}

func (v verdictCache) Add(key string, val ivm.Verdict) { v.c.add(key, val) }

// parse reads one document from src applying the engine's parse options.
// Cancelling ctx aborts the parse at SAX-event granularity, so a large
// input stops loading promptly.
func (e *Engine) parse(ctx context.Context, src Source) (*Node, error) {
	if n, ok := src.(*Node); ok {
		return n, nil
	}
	if sn, ok := src.(*store.Snapshot); ok {
		// Unwrap the sealed tree directly — the store's lock-free read
		// path — instead of serializing and re-parsing through Open.
		return sn.Root(), nil
	}
	r, err := src.Open()
	if err != nil {
		return nil, classify(err, KindIO)
	}
	defer r.Close()
	var tb sax.TreeBuilder
	p := sax.NewParserOptions(r, sax.WithCancel(ctx, &tb), sax.Options{MaxDepth: e.maxDepth})
	if err := p.Parse(); err != nil {
		// Well-formedness violations arrive as *sax.ParseError and
		// classify as KindParse, cancellations as KindEval; anything
		// else is the reader failing mid-document — an I/O failure.
		return nil, classify(err, KindIO)
	}
	return tb.Document(), nil
}
