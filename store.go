package xtq

import (
	"context"
	"sort"
	"strconv"
	"sync"

	"xtq/internal/store"
)

// Snapshot is one immutable committed version of a stored document: a
// sealed, fully-indexed tree behind an atomic version chain. Any number
// of goroutines evaluate Prepared queries and PreparedViews against a
// Snapshot concurrently with zero locking on the hot path — a Snapshot
// is a Source, so it goes wherever a document goes:
//
//	snap, err := st.Snapshot("parts")
//	res, err := prepared.Eval(ctx, snap)        // lock-free, in-memory
//	res, err := prepared.EvalStream(ctx, snap, sink) // O(depth) streaming
//
// A handle stays valid (and evaluable) after newer versions commit and
// after the document is removed: readers are fully isolated from
// writers.
type Snapshot = store.Snapshot

// Commit reports what one store write did: the version it produced and
// the copy-on-write cost it paid (zero copied nodes for adopted ingests
// and for updates that matched nothing).
type Commit = store.Commit

// Store is a goroutine-safe, versioned, in-memory XML document store —
// update syntax as the write path of a live corpus. Documents are held
// as immutable indexed snapshots; writers commit XQU update queries
// copy-on-write with optimistic versioning, readers evaluate against
// snapshot handles without locks:
//
//	st := xtq.NewStore(nil)
//	_, _, err := st.Put(ctx, "parts", xtq.FileSource("parts.xml"))
//	snap, com, err := st.Apply(ctx, "parts",
//	    `transform copy $a := doc("parts") modify do delete $a//price return $a`)
//	// com.Version == 2; version-1 readers are untouched.
//
// Apply always commits against the latest version (losing a race means
// re-evaluating on the winner's snapshot); ApplyAt commits only if the
// version the caller saw is still current, returning a KindConflict
// error otherwise — HTTP If-Match semantics, which cmd/xtqd exposes
// directly. Named view stacks registered with RegisterView serve
// per-principal virtual views of any stored document.
type Store struct {
	eng *Engine
	st  *store.Store

	vmu   sync.RWMutex
	views map[string]*View
}

// NewStore builds a store on top of eng, which compiles the update
// queries Apply receives (sharing the engine's query cache) and parses
// ingested sources. A nil eng uses a fresh default Engine.
func NewStore(eng *Engine) *Store {
	if eng == nil {
		eng = NewEngine()
	}
	return &Store{eng: eng, st: store.New(), views: make(map[string]*View)}
}

// Engine returns the engine the store compiles and parses with.
func (s *Store) Engine() *Engine { return s.eng }

// Put parses src and commits it as the next version of name (version 1
// when the name is new). A src the caller may still hold — an
// already-parsed *Node or a *Snapshot — is deep-copied so the store
// never aliases caller-visible state; sources the store parses itself
// (files, bytes, readers) are adopted without a copy.
func (s *Store) Put(ctx context.Context, name string, src Source) (*Snapshot, Commit, error) {
	if n, ok := src.(*Node); ok {
		snap, com, err := s.st.Put(name, n, false)
		return snap, com, classify(err, KindEval)
	}
	// A *Snapshot source needs no branch of its own: parse unwraps it to
	// its sealed root, and the store's adopt path detects the sealed
	// owner and snapshot-copies (seeding the symbol table from it).
	doc, err := s.eng.parse(ctx, src)
	if err != nil {
		return nil, Commit{}, err
	}
	snap, com, err := s.st.Put(name, doc, true)
	return snap, com, classify(err, KindEval)
}

// Snapshot returns the current committed version of name — one
// read-locked map access plus one atomic load — or a KindNotFound
// error. The handle is immune to every later write.
func (s *Store) Snapshot(name string) (*Snapshot, error) {
	snap, err := s.st.Snapshot(name)
	return snap, classify(err, KindNotFound)
}

// Apply compiles updateQuery through the engine's query cache and
// commits it against the current version of name: the update is
// evaluated copy-on-write over the snapshot (readers keep using it,
// untouched) and the result becomes the next version. A writer losing
// the optimistic race retries against the winner's snapshot; Apply
// never returns a conflict.
func (s *Store) Apply(ctx context.Context, name, updateQuery string) (*Snapshot, Commit, error) {
	p, err := s.eng.Prepare(updateQuery)
	if err != nil {
		return nil, Commit{}, err
	}
	snap, com, err := s.st.Apply(ctx, name, p.compiled, s.eng.method)
	return snap, com, classify(err, KindEval)
}

// ApplyAt is Apply with compare-and-set semantics: the commit succeeds
// only if the current version still equals base, and returns a
// KindConflict error naming the superseding version otherwise. It is
// the primitive behind xtqd's If-Match conditional updates.
func (s *Store) ApplyAt(ctx context.Context, name, updateQuery string, base uint64) (*Snapshot, Commit, error) {
	p, err := s.eng.Prepare(updateQuery)
	if err != nil {
		return nil, Commit{}, err
	}
	snap, com, err := s.st.ApplyAt(ctx, name, p.compiled, s.eng.method, base)
	return snap, com, classify(err, KindEval)
}

// Remove deletes name, reporting whether it existed. Held snapshot
// handles remain valid; a commit racing with the removal fails with
// KindNotFound instead of writing into an unreachable chain.
func (s *Store) Remove(name string) bool { return s.st.Remove(name) }

// Names returns the stored document names, sorted.
func (s *Store) Names() []string {
	names := s.st.Names()
	sort.Strings(names)
	return names
}

// Len returns the number of stored documents.
func (s *Store) Len() int { return s.st.Len() }

// RegisterView registers a named stack of transform queries (innermost
// first, as Engine.View) servable over any stored document —
// per-principal security views over one shared corpus. Re-registering a
// name replaces the stack. The returned View is also usable directly.
func (s *Store) RegisterView(name string, transformSrcs ...string) (*View, error) {
	v, err := s.eng.View(transformSrcs...)
	if err != nil {
		return nil, err
	}
	s.vmu.Lock()
	s.views[name] = v
	s.vmu.Unlock()
	return v, nil
}

// LookupView returns the registered view stack named name, or a
// KindNotFound error.
func (s *Store) LookupView(name string) (*View, error) {
	s.vmu.RLock()
	v := s.views[name]
	s.vmu.RUnlock()
	if v == nil {
		return nil, &Error{Kind: KindNotFound, Msg: "xtq: no view " + strconv.Quote(name)}
	}
	return v, nil
}

// RemoveView unregisters name, reporting whether it existed.
func (s *Store) RemoveView(name string) bool {
	s.vmu.Lock()
	_, ok := s.views[name]
	delete(s.views, name)
	s.vmu.Unlock()
	return ok
}

// ViewNames returns the registered view names, sorted.
func (s *Store) ViewNames() []string {
	s.vmu.RLock()
	out := make([]string, 0, len(s.views))
	for name := range s.views {
		out = append(out, name)
	}
	s.vmu.RUnlock()
	sort.Strings(out)
	return out
}
