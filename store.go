package xtq

import (
	"context"
	"sort"
	"strconv"
	"sync"
	"time"

	"xtq/internal/core"
	"xtq/internal/ivm"
	"xtq/internal/store"
	"xtq/internal/wal"
)

// Snapshot is one immutable committed version of a stored document: a
// sealed, fully-indexed tree behind an atomic version chain. Any number
// of goroutines evaluate Prepared queries and PreparedViews against a
// Snapshot concurrently with zero locking on the hot path — a Snapshot
// is a Source, so it goes wherever a document goes:
//
//	snap, err := st.Snapshot("parts")
//	res, err := prepared.Eval(ctx, snap)        // lock-free, in-memory
//	res, err := prepared.EvalStream(ctx, snap, sink) // O(depth) streaming
//
// A handle stays valid (and evaluable) after newer versions commit and
// after the document is removed: readers are fully isolated from
// writers.
type Snapshot = store.Snapshot

// Commit reports what one store write did: the version it produced and
// the copy-on-write cost it paid (zero copied nodes for adopted ingests
// and for updates that matched nothing).
type Commit = store.Commit

// HistoryEntry describes one servable version of a stored document —
// see Store.History.
type HistoryEntry = store.HistoryEntry

// CheckpointStats reports the checkpoint/compaction activity of a
// durable store — see Store.Checkpoint and Store.CheckpointStats.
type CheckpointStats = store.CheckpointStats

// FsyncPolicy selects when a durable store's committed records are
// forced to stable storage — the commit-latency/durability trade-off of
// OpenStore.
type FsyncPolicy = wal.FsyncPolicy

// Fsync policies for WithFsync.
const (
	// FsyncAlways fsyncs before a commit returns (group-committed across
	// concurrent writers): state survives an OS crash.
	FsyncAlways = wal.FsyncAlways
	// FsyncInterval fsyncs on a background interval: a commit survives a
	// process kill immediately, an OS crash may lose the last interval.
	FsyncInterval = wal.FsyncInterval
	// FsyncNone leaves fsync to rotation, checkpoints and Close: fastest,
	// survives a process kill, an OS crash loses the unsynced tail.
	FsyncNone = wal.FsyncNone
)

// ParseFsyncPolicy parses "always", "interval" or "none".
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	p, err := wal.ParseFsyncPolicy(s)
	return p, classify(err, KindEval)
}

// Store is a goroutine-safe, versioned, in-memory XML document store —
// update syntax as the write path of a live corpus. Documents are held
// as immutable indexed snapshots; writers commit XQU update queries
// copy-on-write with optimistic versioning, readers evaluate against
// snapshot handles without locks:
//
//	st := xtq.NewStore(nil)
//	_, _, err := st.Put(ctx, "parts", xtq.FileSource("parts.xml"))
//	snap, com, err := st.Apply(ctx, "parts",
//	    `transform copy $a := doc("parts") modify do delete $a//price return $a`)
//	// com.Version == 2; version-1 readers are untouched.
//
// Apply always commits against the latest version (losing a race means
// re-evaluating on the winner's snapshot); ApplyAt commits only if the
// version the caller saw is still current, returning a KindConflict
// error otherwise — HTTP If-Match semantics, which cmd/xtqd exposes
// directly. Named view stacks registered with RegisterView serve
// per-principal virtual views of any stored document.
type Store struct {
	eng *Engine
	st  *store.Store

	// mgr maintains materializations of registered views across
	// commits; hub fans commits out to Watch subscribers. Both are
	// driven by the store's commit hook (see wireIVM).
	mgr *ivm.Manager
	hub *ivm.Hub

	vmu   sync.RWMutex
	views map[string]*View
}

// NewStore builds an in-memory store on top of eng, which compiles the
// update queries Apply receives (sharing the engine's query cache) and
// parses ingested sources. A nil eng uses a fresh default Engine. The
// store dies with the process; OpenStore builds one that does not.
func NewStore(eng *Engine) *Store {
	if eng == nil {
		eng = NewEngine()
	}
	s := &Store{eng: eng, st: store.New(), views: make(map[string]*View)}
	s.wireIVM()
	return s
}

// storeConfig collects the OpenStore options.
type storeConfig struct {
	opts store.Options
}

// StoreOption configures OpenStore.
type StoreOption func(*storeConfig)

// WithFsync selects the durability policy commits honour before they
// return. Default FsyncAlways.
func WithFsync(p FsyncPolicy) StoreOption {
	return func(c *storeConfig) { c.opts.Fsync = p }
}

// WithSyncInterval sets the FsyncInterval flush period. Default 25ms.
func WithSyncInterval(d time.Duration) StoreOption {
	return func(c *storeConfig) { c.opts.SyncEvery = d }
}

// WithSegmentBytes sets the log segment rotation size. Default 64 MiB.
func WithSegmentBytes(n int64) StoreOption {
	return func(c *storeConfig) { c.opts.SegmentBytes = n }
}

// WithHistoryDepth sets the per-document ring of recent snapshots that
// SnapshotAt serves lock- and allocation-free. Default 8; negative
// disables the ring (history then always replays the log).
func WithHistoryDepth(n int) StoreOption {
	return func(c *storeConfig) { c.opts.HistoryDepth = n }
}

// WithCheckpointEvery enables the background checkpointer: a checkpoint
// (snapshot capture + log compaction + tombstone GC) runs whenever the
// log has grown by n bytes. Zero (the default) leaves checkpointing to
// explicit Store.Checkpoint calls.
func WithCheckpointEvery(n int64) StoreOption {
	return func(c *storeConfig) { c.opts.CheckpointEvery = n }
}

// OpenStore opens (creating if necessary) a durable store rooted at
// dir: a crash-safe Store whose every successful Put/Apply/ApplyAt/
// Remove is appended to a write-ahead log of logical update records
// before it is published. Because commits are already XQU update
// queries, the log stores their canonical text and recovery replays
// them through eng.Prepare and the same copy-on-write commit path that
// executed them live, verifying the version chain as it goes — the
// paper's uniform read/write syntax doubling as its own durability
// format. Corrupt logs surface as KindCorrupt errors naming the segment
// file and byte offset.
//
// A nil eng uses a fresh default Engine. Close the store when done: it
// stops the background checkpointer and syncs the log.
func OpenStore(dir string, eng *Engine, options ...StoreOption) (*Store, error) {
	if eng == nil {
		eng = NewEngine()
	}
	cfg := storeConfig{opts: store.Options{
		Compile: func(src string) (*core.Compiled, error) {
			p, err := eng.Prepare(src)
			if err != nil {
				return nil, err
			}
			return p.compiled, nil
		},
		Method:   eng.method,
		MaxDepth: eng.maxDepth,
	}}
	for _, o := range options {
		o(&cfg)
	}
	st, err := store.Open(dir, cfg.opts)
	if err != nil {
		return nil, classify(err, KindIO)
	}
	s := &Store{eng: eng, st: st, views: make(map[string]*View)}
	// Recovery already ran hook-free; materializations build lazily on
	// first read, so replay pays no view-maintenance cost.
	s.wireIVM()
	return s, nil
}

// Durable reports whether the store is backed by a write-ahead log.
func (s *Store) Durable() bool { return s.st.Durable() }

// Close stops the background checkpointer and syncs and closes the
// write-ahead log. On an in-memory store it is a no-op. Commits issued
// after Close fail.
func (s *Store) Close() error { return classify(s.st.Close(), KindIO) }

// Engine returns the engine the store compiles and parses with.
func (s *Store) Engine() *Engine { return s.eng }

// Put parses src and commits it as the next version of name (version 1
// when the name is new). A src the caller may still hold — an
// already-parsed *Node or a *Snapshot — is deep-copied so the store
// never aliases caller-visible state; sources the store parses itself
// (files, bytes, readers) are adopted without a copy.
func (s *Store) Put(ctx context.Context, name string, src Source) (*Snapshot, Commit, error) {
	if n, ok := src.(*Node); ok {
		snap, com, err := s.st.Put(name, n, false)
		return snap, com, classify(err, KindEval)
	}
	// A *Snapshot source needs no branch of its own: parse unwraps it to
	// its sealed root, and the store's adopt path detects the sealed
	// owner and snapshot-copies (seeding the symbol table from it).
	doc, err := s.eng.parse(ctx, src)
	if err != nil {
		return nil, Commit{}, err
	}
	snap, com, err := s.st.Put(name, doc, true)
	return snap, com, classify(err, KindEval)
}

// Snapshot returns the current committed version of name — one
// read-locked map access plus one atomic load — or a KindNotFound
// error. The handle is immune to every later write.
func (s *Store) Snapshot(name string) (*Snapshot, error) {
	snap, err := s.st.Snapshot(name)
	return snap, classify(err, KindNotFound)
}

// SnapshotAt returns the committed snapshot of name at exactly version
// — time travel. The current head and the recent-history ring are
// served lock- and allocation-free with zero log reads; on a durable
// store, older versions still covered by the log are reconstructed by
// replaying the logged update queries from the last checkpoint (ctx
// bounds the re-evaluation). Versions never committed, compacted away,
// or removed at that version are KindNotFound.
func (s *Store) SnapshotAt(ctx context.Context, name string, version uint64) (*Snapshot, error) {
	snap, err := s.st.SnapshotAt(ctx, name, version)
	return snap, classify(err, KindNotFound)
}

// History reports the versions of name that SnapshotAt can serve: the
// memory-resident entries (newest first) and the floor — the oldest
// version reconstructable at all (on a durable store, back to the last
// checkpoint).
func (s *Store) History(name string) (entries []HistoryEntry, floor uint64, err error) {
	entries, floor, err = s.st.History(name)
	return entries, floor, classify(err, KindNotFound)
}

// Checkpoint captures every live document into a checkpoint file,
// compacts the log segments it covers and garbage-collects removed
// documents. Only meaningful on a durable store (KindEval error
// otherwise); the background checkpointer (WithCheckpointEvery) calls
// the same machinery.
func (s *Store) Checkpoint(ctx context.Context) (CheckpointStats, error) {
	stats, err := s.st.Checkpoint(ctx)
	return stats, classify(err, KindIO)
}

// CheckpointStats reports checkpoint and compaction activity since the
// store was opened (zeros for an in-memory store).
func (s *Store) CheckpointStats() CheckpointStats { return s.st.CheckpointStats() }

// Apply compiles updateQuery through the engine's query cache and
// commits it against the current version of name: the update is
// evaluated copy-on-write over the snapshot (readers keep using it,
// untouched) and the result becomes the next version. A writer losing
// the optimistic race retries against the winner's snapshot; Apply
// never returns a conflict.
func (s *Store) Apply(ctx context.Context, name, updateQuery string) (*Snapshot, Commit, error) {
	p, err := s.eng.Prepare(updateQuery)
	if err != nil {
		return nil, Commit{}, err
	}
	snap, com, err := s.st.Apply(ctx, name, p.compiled, s.eng.method)
	return snap, com, classify(err, KindEval)
}

// ApplyAt is Apply with compare-and-set semantics: the commit succeeds
// only if the current version still equals base, and returns a
// KindConflict error naming the superseding version otherwise. It is
// the primitive behind xtqd's If-Match conditional updates.
func (s *Store) ApplyAt(ctx context.Context, name, updateQuery string, base uint64) (*Snapshot, Commit, error) {
	p, err := s.eng.Prepare(updateQuery)
	if err != nil {
		return nil, Commit{}, err
	}
	snap, com, err := s.st.ApplyAt(ctx, name, p.compiled, s.eng.method, base)
	return snap, com, classify(err, KindEval)
}

// Remove deletes name, reporting whether it existed. The removal is a
// committed version (a tombstone on the chain — and a logged record,
// when durable): held snapshot handles remain valid, a commit racing
// with the removal fails with KindNotFound instead of writing into an
// unreachable chain, and a later Put of the same name continues the
// version chain. Durable stores garbage-collect tombstones at the next
// checkpoint. The error is non-nil only on a durable store whose log
// append failed.
func (s *Store) Remove(name string) (bool, error) {
	ok, err := s.st.Remove(name)
	return ok, classify(err, KindIO)
}

// Names returns the stored document names, sorted.
func (s *Store) Names() []string {
	names := s.st.Names()
	sort.Strings(names)
	return names
}

// Len returns the number of stored documents.
func (s *Store) Len() int { return s.st.Len() }

// RegisterView registers a named stack of transform queries (innermost
// first, as Engine.View) servable over any stored document —
// per-principal security views over one shared corpus. Re-registering a
// name replaces the stack. The returned View is also usable directly.
//
// The view is maintained lazily: its materialization builds on the
// first ViewDocument read and is then kept current across commits —
// delta-updated when possible, version-bumped for free when impact
// analysis proves a commit cannot affect it. RegisterMaterializedView
// maintains eagerly instead.
func (s *Store) RegisterView(name string, transformSrcs ...string) (*View, error) {
	return s.registerView(name, false, transformSrcs...)
}

// RegisterMaterializedView is RegisterView with eager maintenance: the
// materialization is (re)built on every commit that may affect it, so
// reads always hit. Prefer it for hot views; lazy registration avoids
// the commit-path work for views that are rarely read.
func (s *Store) RegisterMaterializedView(name string, transformSrcs ...string) (*View, error) {
	return s.registerView(name, true, transformSrcs...)
}

func (s *Store) registerView(name string, eager bool, transformSrcs ...string) (*View, error) {
	v, err := s.eng.View(transformSrcs...)
	if err != nil {
		return nil, err
	}
	layers := make([]*core.Compiled, len(v.stack))
	for i, p := range v.stack {
		layers[i] = p.compiled
	}
	s.vmu.Lock()
	s.views[name] = v
	// The registry update and the invalidation of existing
	// materializations are atomic under the view lock: no reader can
	// observe the new definition served from a stale tree.
	s.mgr.SetView(name, layers, eager)
	s.vmu.Unlock()
	s.publishViewsChanged()
	return v, nil
}

// publishViewsChanged tells every document's change feed that the view
// registry mutated: the documents themselves are unchanged (the event
// carries the current version), but compositions over them may differ.
func (s *Store) publishViewsChanged() {
	for _, name := range s.st.Names() {
		if v, ok := s.st.HeadVersion(name); ok {
			s.hub.Publish(Event{Doc: name, Version: v, ETag: eventETag(v), ViewsChanged: true})
		}
	}
}

// LookupView returns the registered view stack named name, or a
// KindNotFound error.
func (s *Store) LookupView(name string) (*View, error) {
	s.vmu.RLock()
	v := s.views[name]
	s.vmu.RUnlock()
	if v == nil {
		return nil, &Error{Kind: KindNotFound, Msg: "xtq: no view " + strconv.Quote(name)}
	}
	return v, nil
}

// RemoveView unregisters name, reporting whether it existed. Its
// materializations are dropped atomically with the registry update and
// every document's change feed receives a ViewsChanged event.
func (s *Store) RemoveView(name string) bool {
	s.vmu.Lock()
	_, ok := s.views[name]
	delete(s.views, name)
	s.mgr.RemoveView(name)
	s.vmu.Unlock()
	if ok {
		s.publishViewsChanged()
	}
	return ok
}

// ViewNames returns the registered view names, sorted.
func (s *Store) ViewNames() []string {
	s.vmu.RLock()
	out := make([]string, 0, len(s.views))
	for name := range s.views {
		out = append(out, name)
	}
	s.vmu.RUnlock()
	sort.Strings(out)
	return out
}
