package xtq

import (
	"context"
	"fmt"
	"strings"
	"testing"
)

// FuzzSoARoundTrip pins the two load-bearing invariants of the
// structure-of-arrays snapshot core end to end through the public API:
//
//  1. Round trip: parse → freeze into a sealed SoA snapshot → serialize
//     from the columns → reparse → serialize again must be
//     byte-identical (the column serializer is exactly the canonical
//     pointer-walk serialization).
//  2. Immutability: committing a path-copied update leaves the previous
//     snapshot's serialization byte-for-byte unchanged — shared chunks
//     are never written through.
func FuzzSoARoundTrip(f *testing.F) {
	f.Add("<db><part><pname>kb</pname><price cur=\"usd\">9</price></part></db>", uint8(0), "price")
	f.Add("<a><b>x</b><b>y&amp;z</b><c/></a>", uint8(1), "b")
	f.Add("<r><x a=\"1\"><y/></x>text<x/></r>", uint8(2), "x")
	f.Add("<r>&lt;not-a-tag&gt;</r>", uint8(3), "r")

	f.Fuzz(func(t *testing.T, xml string, op uint8, label string) {
		doc, err := ParseString(xml)
		if err != nil {
			t.Skip()
		}
		canonical := doc.String()

		st := NewStore(nil)
		ctx := context.Background()
		// FromString adopts via the parser: the sealed snapshot carries
		// columns built from the parser-stamped ordinals.
		if _, _, err := st.Put(ctx, "d", FromString(xml)); err != nil {
			t.Skip()
		}
		snap, err := st.Snapshot("d")
		if err != nil {
			t.Fatal(err)
		}

		// Round trip through the column serializer.
		var fromCols strings.Builder
		if err := snap.WriteXML(&fromCols); err != nil {
			t.Fatal(err)
		}
		if fromCols.String() != canonical {
			t.Fatalf("column serialization %q != canonical %q", fromCols.String(), canonical)
		}
		reparsed, err := ParseString(fromCols.String())
		if err != nil {
			t.Fatalf("column serialization does not reparse: %v", err)
		}
		if reparsed.String() != canonical {
			t.Fatalf("reparse round trip drifted: %q != %q", reparsed.String(), canonical)
		}

		// A path-copy commit derived from the fuzz input. The label is
		// sanitized into the query grammar; updates that match nothing
		// are still commits (share-everything no-ops).
		lb := strings.Map(func(r rune) rune {
			if r >= 'a' && r <= 'z' {
				return r
			}
			return -1
		}, strings.ToLower(label))
		if lb == "" {
			lb = "part"
		}
		var q string
		switch op % 3 {
		case 0:
			q = fmt.Sprintf(`transform copy $a := doc("d") modify do delete $a//%s return $a`, lb)
		case 1:
			q = fmt.Sprintf(`transform copy $a := doc("d") modify do rename $a//%s as zz return $a`, lb)
		case 2:
			q = fmt.Sprintf(`transform copy $a := doc("d") modify do insert <nw>n</nw> into $a//%s return $a`, lb)
		}
		snap2, _, err := st.Apply(ctx, "d", q)
		if err != nil {
			t.Skip() // label collided with a grammar keyword etc.
		}

		// Immutability pin: the previous snapshot still serializes to
		// the exact same bytes, through both walks.
		var prevAgain strings.Builder
		if err := snap.WriteXML(&prevAgain); err != nil {
			t.Fatal(err)
		}
		if prevAgain.String() != canonical {
			t.Fatalf("commit changed the previous snapshot: %q != %q", prevAgain.String(), canonical)
		}
		if snap.Root().String() != canonical {
			t.Fatal("commit changed the previous snapshot's pointer walk")
		}

		// And the new version's column serialization matches its pointer
		// walk (link fixups were complete).
		var newCols strings.Builder
		if err := snap2.WriteXML(&newCols); err != nil {
			t.Fatal(err)
		}
		if newCols.String() != snap2.Root().String() {
			t.Fatalf("new version columns %q != pointers %q", newCols.String(), snap2.Root().String())
		}
	})
}
