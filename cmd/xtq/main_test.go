package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const doc = `<db><part><pname>kb</pname><price>9</price></part></db>`

func write(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunMethods(t *testing.T) {
	dir := t.TempDir()
	in := write(t, dir, "doc.xml", doc)
	query := `transform copy $a := doc("d") modify do delete $a//price return $a`
	for _, method := range []string{"naive", "topdown", "twopass", "copyupdate", "sax"} {
		var sb strings.Builder
		err := run(context.Background(), []string{"-in", in, "-query", query, "-method", method}, &sb)
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		if strings.Contains(sb.String(), "<price>") {
			t.Errorf("%s: price not deleted: %s", method, sb.String())
		}
		if !strings.Contains(sb.String(), "<pname>kb</pname>") {
			t.Errorf("%s: content damaged: %s", method, sb.String())
		}
	}
}

func TestRunQueryFromFile(t *testing.T) {
	dir := t.TempDir()
	in := write(t, dir, "doc.xml", doc)
	qf := write(t, dir, "q.tq", `transform copy $a := doc("d") modify do rename $a//pname as name return $a`)
	out := filepath.Join(dir, "out.xml")
	var sb strings.Builder
	if err := run(context.Background(), []string{"-in", in, "-query", "@" + qf, "-out", out}, &sb); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), "<name>kb</name>") {
		t.Errorf("rename missing: %s", b)
	}
}

func TestRunIndent(t *testing.T) {
	dir := t.TempDir()
	in := write(t, dir, "doc.xml", doc)
	var sb strings.Builder
	err := run(context.Background(), []string{"-in", in, "-indent",
		"-query", `transform copy $a := doc("d") modify do delete $a//price return $a`}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "\n") {
		t.Errorf("indent produced single line")
	}
}

func TestRunErrors(t *testing.T) {
	dir := t.TempDir()
	in := write(t, dir, "doc.xml", doc)
	query := `transform copy $a := doc("d") modify do delete $a//price return $a`
	cases := [][]string{
		{},
		{"-in", in},
		{"-query", query},
		{"-in", dir + "/missing.xml", "-query", query},
		{"-in", in, "-query", "not a query"},
		{"-in", in, "-query", "@" + dir + "/missing.tq"},
		{"-in", in, "-query", query, "-method", "bogus"},
		{"-in", in, "-query", query, "-out", dir + "/no/dir/out.xml"},
		{"-in", dir + "/missing.xml", "-query", query, "-method", "sax"},
	}
	for _, args := range cases {
		var sb strings.Builder
		if err := run(context.Background(), args, &sb); err == nil {
			t.Errorf("run(%v) succeeded", args)
		}
	}
}

func TestRunUserQuery(t *testing.T) {
	dir := t.TempDir()
	in := write(t, dir, "doc.xml", doc)
	var sb strings.Builder
	err := run(context.Background(), []string{"-in", in,
		"-query", `transform copy $a := doc("d") modify do delete $a//price return $a`,
		"-user", `for $x in /db/part return $x/pname`}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "<result>") {
		t.Errorf("missing <result> root: %s", out)
	}
	if !strings.Contains(out, "<pname>kb</pname>") || strings.Contains(out, "<price>") {
		t.Errorf("composed result wrong: %s", out)
	}
}

// TestUserQueryValidatedBeforeInput asserts that a bad -user query is
// rejected up front, before the input document is touched (the input
// path does not exist, so reaching the parser would produce a file error
// instead).
func TestUserQueryValidatedBeforeInput(t *testing.T) {
	query := `transform copy $a := doc("d") modify do delete $a//price return $a`
	var sb strings.Builder
	err := run(context.Background(), []string{
		"-in", t.TempDir() + "/never-created.xml",
		"-query", query, "-user", "for broken"}, &sb)
	if err == nil {
		t.Fatal("broken -user accepted")
	}
	if !strings.Contains(err.Error(), "invalid -user") {
		t.Errorf("error does not blame the user query: %v", err)
	}
	// Composition has its own algorithm: an explicit -method (streaming
	// or in-memory) cannot take effect and is rejected, not ignored.
	for _, m := range []string{"sax", "naive"} {
		err = run(context.Background(), []string{
			"-in", t.TempDir() + "/never-created.xml",
			"-query", query, "-user", "for $x in /db/part return $x", "-method", m}, &sb)
		if err == nil || !strings.Contains(err.Error(), "-method does not apply") {
			t.Errorf("%s+user combination not rejected: %v", m, err)
		}
	}
}

// TestMethodValidatedBeforeInput asserts that a bad -method is rejected
// up front: the input path does not exist, so reaching the parser would
// produce a file error instead of the method error.
func TestMethodValidatedBeforeInput(t *testing.T) {
	var sb strings.Builder
	err := run(context.Background(), []string{
		"-in", t.TempDir() + "/never-created.xml",
		"-query", `transform copy $a := doc("d") modify do delete $a//price return $a`,
		"-method", "bogus"}, &sb)
	if err == nil {
		t.Fatal("bogus method accepted")
	}
	if !strings.Contains(err.Error(), "invalid -method") {
		t.Errorf("error does not blame the method: %v", err)
	}
	for _, m := range []string{"naive", "topdown", "twopass", "copyupdate", "sax"} {
		if !strings.Contains(err.Error(), m) {
			t.Errorf("error does not list valid method %q: %v", m, err)
		}
	}
}
