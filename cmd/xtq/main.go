// Command xtq evaluates a transform query over an XML document.
//
// Usage:
//
//	xtq -in doc.xml -query 'transform copy $a := doc("d") modify do delete $a//price return $a'
//	xtq -in big.xml -query @query.tq -method sax -out result.xml
//
// Methods: naive, topdown (default), twopass, copyupdate — in-memory
// evaluation per the paper's §3/§5 algorithms — and sax, the streaming
// twoPassSAX evaluator of §6 that never materializes the document.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"xtq"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "xtq:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("xtq", flag.ContinueOnError)
	in := fs.String("in", "", "input XML document (required)")
	querySrc := fs.String("query", "", "transform query text, or @file to read it from a file (required)")
	method := fs.String("method", "topdown", "evaluation method: naive|topdown|twopass|copyupdate|sax")
	out := fs.String("out", "", "output file (default: stdout)")
	indent := fs.Bool("indent", false, "pretty-print the result (in-memory methods only)")
	timing := fs.Bool("time", false, "report evaluation time on stderr")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *querySrc == "" {
		fs.Usage()
		return fmt.Errorf("-in and -query are required")
	}
	text := *querySrc
	if strings.HasPrefix(text, "@") {
		b, err := os.ReadFile(text[1:])
		if err != nil {
			return err
		}
		text = string(b)
	}
	q, err := xtq.ParseQuery(text)
	if err != nil {
		return err
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}

	start := time.Now()
	defer func() {
		if *timing {
			fmt.Fprintf(os.Stderr, "evaluated in %v\n", time.Since(start))
		}
	}()

	if *method == "sax" {
		res, err := xtq.TransformStream(q, xtq.FileSource(*in), w)
		if err != nil {
			return err
		}
		if *timing {
			fmt.Fprintf(os.Stderr, "twoPassSAX: %d elements, stack depth %d, %d qualifier values\n",
				res.Second.ElementsSeen, res.First.MaxStackDepth, res.QualOccurrences)
		}
		return nil
	}

	doc, err := xtq.ParseFile(*in)
	if err != nil {
		return err
	}
	result, err := xtq.Transform(doc, q, xtq.Method(*method))
	if err != nil {
		return err
	}
	if *indent {
		return result.WriteIndented(w)
	}
	return result.WriteXML(w)
}
