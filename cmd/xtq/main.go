// Command xtq evaluates a transform query over an XML document.
//
// Usage:
//
//	xtq -in doc.xml -query 'transform copy $a := doc("d") modify do delete $a//price return $a'
//	xtq -in big.xml -query @query.tq -method sax -out result.xml
//	xtq -in doc.xml -query '...' -user 'for $x in /db/part return $x/pname'
//
// Methods: naive, topdown (default), twopass, copyupdate — in-memory
// evaluation per the paper's §3/§5 algorithms — and sax, the streaming
// twoPassSAX evaluator of §6 that never materializes the document.
//
// With -user, the user query is composed with the transform query (§4):
// it is answered over the transform's virtual output in a single pass —
// the view is never materialized — and the <result> document is printed.
// Composition has its own evaluation algorithm, so -user cannot be
// combined with an explicit -method.
//
// Interrupting the process (Ctrl-C) cancels the evaluation context, so
// even a multi-gigabyte streaming run stops promptly.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"time"

	"xtq"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "xtq:", err)
		os.Exit(1)
	}
}

// methodSAX selects the streaming evaluator; it lives beside the
// in-memory methods in the -method flag only.
const methodSAX = "sax"

// validateMethod rejects an unknown -method before any input document is
// read, naming the valid choices.
func validateMethod(s string) error {
	if s == methodSAX {
		return nil
	}
	if _, err := xtq.ParseMethod(s); err != nil {
		return fmt.Errorf("invalid -method %q (valid: %s, %s, %s)",
			s, strings.Join(xtq.MethodNames(), ", "), xtq.MethodAuto, methodSAX)
	}
	return nil
}

func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("xtq", flag.ContinueOnError)
	in := fs.String("in", "", "input XML document (required)")
	querySrc := fs.String("query", "", "transform query text, or @file to read it from a file (required)")
	method := fs.String("method", "topdown", "evaluation method: naive|topdown|twopass|copyupdate|auto|sax (auto = cost-based planner)")
	user := fs.String("user", "", "user query composed over the transform's virtual view, e.g. 'for $x in /db/part return $x'")
	out := fs.String("out", "", "output file (default: stdout)")
	indent := fs.Bool("indent", false, "pretty-print the result (in-memory methods only)")
	timing := fs.Bool("time", false, "report evaluation time on stderr")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *querySrc == "" {
		fs.Usage()
		return fmt.Errorf("-in and -query are required")
	}
	// Fail on a bad method or a bad user query before the transform is
	// compiled or the input document is touched.
	if err := validateMethod(*method); err != nil {
		return err
	}
	var userQuery *xtq.UserQuery
	if *user != "" {
		// Composition always runs the single-pass Compose Method of §4;
		// an explicit -method cannot take effect, so reject it rather
		// than silently ignore it.
		methodSet := false
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "method" {
				methodSet = true
			}
		})
		if methodSet {
			return fmt.Errorf("-user answers the query with the single-pass composition; -method does not apply")
		}
		q, err := xtq.ParseUserQuery(*user)
		if err != nil {
			return fmt.Errorf("invalid -user query: %w", err)
		}
		userQuery = q
	}
	text := *querySrc
	if strings.HasPrefix(text, "@") {
		b, err := os.ReadFile(text[1:])
		if err != nil {
			return err
		}
		text = string(b)
	}

	eng := xtq.NewEngine()
	if *method != methodSAX {
		eng = xtq.NewEngine(xtq.WithMethod(xtq.Method(*method)))
	}
	p, err := eng.Prepare(text)
	if err != nil {
		return err
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}

	start := time.Now()
	defer func() {
		if *timing {
			fmt.Fprintf(os.Stderr, "evaluated in %v\n", time.Since(start))
		}
	}()

	if userQuery != nil {
		view, err := eng.View(text)
		if err != nil {
			return err
		}
		pv, err := view.PrepareQuery(userQuery)
		if err != nil {
			return err
		}
		result, stats, err := pv.Eval(ctx, xtq.FileSource(*in))
		if err != nil {
			return err
		}
		if *timing {
			fmt.Fprintf(os.Stderr, "view: %d nodes visited, %d materialized\n",
				stats.NodesVisited, stats.Materialized)
		}
		if *indent {
			return result.WriteIndented(w)
		}
		return result.WriteXML(w)
	}

	if *method == methodSAX {
		res, err := p.EvalStream(ctx, xtq.FileSource(*in), xtq.ToWriter(w))
		if err != nil {
			return err
		}
		if *timing {
			fmt.Fprintf(os.Stderr, "twoPassSAX: %d elements, stack depth %d, %d qualifier values\n",
				res.Second.ElementsSeen, res.First.MaxStackDepth, res.QualOccurrences)
		}
		return nil
	}

	result, err := p.Eval(ctx, xtq.FileSource(*in))
	if err != nil {
		return err
	}
	if *indent {
		return result.WriteIndented(w)
	}
	return result.WriteXML(w)
}
