package main

import (
	"bytes"
	"encoding/json"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"xtq"
	"xtq/internal/obs"
	"xtq/internal/obs/obstest"
)

const testQuery = `transform copy $a := doc("d") modify do delete $a//price return $a`

// TestExplainReportsMethod round-trips ?explain=1 and checks the trace
// reports the evaluation method that actually ran — the engine default,
// and each ?method= override.
func TestExplainReportsMethod(t *testing.T) {
	ts := newTestServer(t)
	if code, _, body := do(t, "PUT", ts.URL+"/docs/d", testDoc, nil); code != http.StatusCreated {
		t.Fatalf("put: %d %s", code, body)
	}

	for _, method := range []string{"", "naive", "twopass", "copyupdate"} {
		url := ts.URL + "/docs/d/query?explain=1"
		want := "topdown"
		if method != "" {
			url += "&method=" + method
			want = method
		}
		code, _, body := do(t, "POST", url, testQuery, nil)
		if code != http.StatusOK {
			t.Fatalf("explain (%q): %d %s", method, code, body)
		}
		var out struct {
			Doc          string `json:"doc"`
			Version      uint64 `json:"version"`
			Method       string `json:"method"`
			CacheHit     *bool  `json:"query_cache_hit"`
			EvalNS       int64  `json:"eval_ns"`
			WallNS       int64  `json:"wall_ns"`
			NodesVisited int    `json:"nodes_visited"`
			ResultNodes  int    `json:"result_nodes"`
		}
		if err := json.Unmarshal([]byte(body), &out); err != nil {
			t.Fatalf("explain body %q: %v", body, err)
		}
		if out.Method != want {
			t.Errorf("method %q: explain method = %q, want %q", method, out.Method, want)
		}
		if out.Doc != "d" || out.Version != 1 {
			t.Errorf("explain doc/version = %q/%d, want d/1", out.Doc, out.Version)
		}
		if out.CacheHit == nil {
			t.Errorf("method %q: explain has no query_cache_hit", method)
		}
		if out.EvalNS <= 0 || out.WallNS <= 0 {
			t.Errorf("method %q: non-positive timings: eval=%d wall=%d", method, out.EvalNS, out.WallNS)
		}
		if out.ResultNodes <= 0 {
			t.Errorf("method %q: result_nodes = %d", method, out.ResultNodes)
		}
	}

	// A repeat of the same query must report a compiled-query cache hit.
	code, _, body := do(t, "POST", ts.URL+"/docs/d/query?explain=1", testQuery, nil)
	if code != http.StatusOK {
		t.Fatalf("explain repeat: %d %s", code, body)
	}
	var out struct {
		CacheHit *bool `json:"query_cache_hit"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatal(err)
	}
	if out.CacheHit == nil || !*out.CacheHit {
		t.Errorf("repeated explain query_cache_hit = %v, want true", out.CacheHit)
	}
}

func TestExplainRejectsStreaming(t *testing.T) {
	ts := newTestServer(t)
	do(t, "PUT", ts.URL+"/docs/d", testDoc, nil)
	code, _, body := do(t, "POST", ts.URL+"/docs/d/query?explain=1&stream=1", testQuery, nil)
	if code != http.StatusBadRequest {
		t.Fatalf("explain+stream: %d %s, want 400", code, body)
	}
}

// TestExplainView checks the view-read explain carries the ivm layer's
// view section and the composed path reports its method.
func TestExplainView(t *testing.T) {
	ts := newTestServer(t)
	do(t, "PUT", ts.URL+"/docs/d", testDoc, nil)
	stack, _ := json.Marshal([]string{testQuery})
	if code, _, body := do(t, "PUT", ts.URL+"/views/pub", string(stack), nil); code != http.StatusCreated {
		t.Fatalf("put view: %d %s", code, body)
	}

	code, _, body := do(t, "GET", ts.URL+"/docs/d/views/pub?explain=1", "", nil)
	if code != http.StatusOK {
		t.Fatalf("view explain: %d %s", code, body)
	}
	var out struct {
		View *obs.ViewTrace `json:"view"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("view explain body %q: %v", body, err)
	}
	if out.View == nil || out.View.View != "pub" || out.View.Doc != "d" {
		t.Fatalf("view explain has no view section: %s", body)
	}

	code, _, body = do(t, "GET", ts.URL+"/docs/d/views/pub?explain=1&q="+
		"for+$x+in+/db/part+return+%3Centry%3E%7B$x/pname%7D%3C/entry%3E", "", nil)
	if code != http.StatusOK {
		t.Fatalf("composed explain: %d %s", code, body)
	}
	var cout struct {
		Method       string `json:"method"`
		NodesVisited int    `json:"nodes_visited"`
	}
	if err := json.Unmarshal([]byte(body), &cout); err != nil {
		t.Fatal(err)
	}
	if cout.Method != "composed" {
		t.Errorf("composed explain method = %q, want composed", cout.Method)
	}
	if cout.NodesVisited <= 0 {
		t.Errorf("composed explain nodes_visited = %d", cout.NodesVisited)
	}
}

// TestMetricsEndpoint scrapes /metrics after real traffic and lints the
// whole exposition: format, const role label, and the serving-layer
// series the middleware must have recorded.
func TestMetricsEndpoint(t *testing.T) {
	ts := newTestServer(t)
	do(t, "PUT", ts.URL+"/docs/d", testDoc, nil)
	do(t, "POST", ts.URL+"/docs/d/query", testQuery, nil)

	code, hdr, body := do(t, "GET", ts.URL+"/metrics", "", nil)
	if code != http.StatusOK {
		t.Fatalf("/metrics: %d", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	types := obstest.Lint(t, body)
	for _, fam := range []string{
		"xtqd_http_requests_total", "xtqd_http_request_seconds",
		"xtqd_http_in_flight", "xtqd_slow_queries_total",
		"xtq_engine_eval_seconds", "xtq_store_commit_seconds",
	} {
		if _, ok := types[fam]; !ok {
			t.Errorf("family %s missing from /metrics", fam)
		}
	}
	if !strings.Contains(body, `role="primary"`) {
		t.Errorf("/metrics samples not labeled role=primary")
	}
	if !strings.Contains(body, `xtqd_http_requests_total{code="200",role="primary",route="POST /docs/{name}/query"}`) &&
		!strings.Contains(body, `xtqd_http_requests_total{route="POST /docs/{name}/query"`) {
		// Label order depends on the exposition's sorting; accept either,
		// but the query route must be present with a 200.
		if !strings.Contains(body, "POST /docs/{name}/query") {
			t.Errorf("query route missing from request metrics:\n%s", body)
		}
	}
}

// TestHealthzObservabilityFields checks the /healthz extensions.
func TestHealthzObservabilityFields(t *testing.T) {
	ts := newTestServer(t)
	code, _, body := do(t, "GET", ts.URL+"/healthz", "", nil)
	if code != http.StatusOK {
		t.Fatalf("/healthz: %d", code)
	}
	var m map[string]any
	if err := json.Unmarshal([]byte(body), &m); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"uptime_seconds", "metrics_version", "slow_queries"} {
		if _, ok := m[k]; !ok {
			t.Errorf("healthz missing %q: %s", k, body)
		}
	}
}

// TestSlowQueryLog drives a query through a server with a sub-zero
// threshold and checks the structured line lands in the log with the
// trace fields filled.
func TestSlowQueryLog(t *testing.T) {
	st := xtq.NewStore(nil)
	h := buildServer(st, nil, 5*time.Second, 1<<20, 0, 0, time.Nanosecond)
	ts := httptest.NewServer(h)
	defer ts.Close()

	var buf bytes.Buffer
	log.SetOutput(&buf)
	defer log.SetOutput(io.Discard)

	before := obs.Default.Version() // not the slow counter; just ensure registry alive
	_ = before
	do(t, "PUT", ts.URL+"/docs/d", testDoc, nil)
	do(t, "POST", ts.URL+"/docs/d/query", testQuery, nil)

	out := buf.String()
	idx := strings.Index(out, "slow-query ")
	if idx < 0 {
		t.Fatalf("no slow-query line in log: %q", out)
	}
	line := out[idx+len("slow-query "):]
	if i := strings.IndexByte(line, '\n'); i >= 0 {
		line = line[:i]
	}
	var rec struct {
		Route  string  `json:"route"`
		Status int     `json:"status"`
		WallMS float64 `json:"wall_ms"`
		Method string  `json:"method"`
	}
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		t.Fatalf("slow-query line %q: %v", line, err)
	}
	if rec.Status != http.StatusOK || rec.WallMS <= 0 {
		t.Errorf("slow-query line = %+v", rec)
	}
	if !strings.Contains(rec.Route, "/query") && !strings.Contains(rec.Route, "/update") {
		t.Errorf("slow-query route = %q", rec.Route)
	}
}

// TestCommitJSONMatchesTrace checks the update response's commit JSON
// is served from the request trace (the store fills it) and stays
// consistent with the returned headers.
func TestCommitJSONMatchesTrace(t *testing.T) {
	ts := newTestServer(t)
	do(t, "PUT", ts.URL+"/docs/d", testDoc, nil)
	code, hdr, body := do(t, "POST", ts.URL+"/docs/d/update", testQuery, nil)
	if code != http.StatusOK {
		t.Fatalf("update: %d %s", code, body)
	}
	var m struct {
		Version     uint64 `json:"version"`
		CopiedNodes int    `json:"copied_nodes"`
	}
	if err := json.Unmarshal([]byte(body), &m); err != nil {
		t.Fatal(err)
	}
	if m.Version != 2 {
		t.Errorf("commit version = %d, want 2", m.Version)
	}
	if m.CopiedNodes <= 0 {
		t.Errorf("copied_nodes = %d, want > 0", m.CopiedNodes)
	}
	if hdr.Get("X-Xtq-Version") != "2" {
		t.Errorf("X-Xtq-Version = %q", hdr.Get("X-Xtq-Version"))
	}
}
