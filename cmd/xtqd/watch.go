package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"xtq"
)

// defaultHeartbeat is the SSE keep-alive interval when -watch-heartbeat
// is not set.
const defaultHeartbeat = 15 * time.Second

// handleWatch streams a document's change feed. Default is
// Server-Sent Events: one "change" event per committed version (JSON
// body with version, etag and the views the commit may have affected),
// "views" events when the view registry mutates, "resync" events when
// the subscriber has a gap and must re-read current state, and comment
// heartbeats every -watch-heartbeat so intermediaries keep the
// connection alive. ?from=N resumes after version N, replaying missed
// versions from the feed's history ring (or resyncing when the ring no
// longer reaches back). ?poll=1 long-polls instead: the response is
// one JSON batch of events, empty if nothing happened within the
// request timeout.
//
// The document does not have to exist yet — its first ingest is then
// the first event — so a watcher can be attached before the writer.
// On a follower the feed is driven by the replication tail: the same
// events, in the same per-document order, as on the primary.
func (s *server) handleWatch(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var sub *xtq.Subscription
	if f := r.URL.Query().Get("from"); f != "" {
		from, err := strconv.ParseUint(f, 10, 64)
		if err != nil {
			writeError(w, &xtq.Error{Kind: xtq.KindParse, Msg: fmt.Sprintf("xtqd: bad from version %q", f)})
			return
		}
		sub = s.st.WatchFrom(name, from)
	} else {
		sub = s.st.Watch(name)
	}
	defer sub.Close()

	if r.URL.Query().Get("poll") == "1" {
		s.servePoll(w, r, sub)
		return
	}
	s.serveSSE(w, r, sub)
}

// servePoll answers one long-poll: the first pending batch of events,
// or an empty batch when the request timeout elapses first.
func (s *server) servePoll(w http.ResponseWriter, r *http.Request, sub *xtq.Subscription) {
	ctx, cancel := s.ctx(r)
	defer cancel()
	evs, err := sub.Next(ctx)
	if err != nil {
		evs = []xtq.Event{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"events": evs})
}

// serveSSE streams events until the client disconnects. The stream is
// not bounded by the per-request timeout — it is a standing
// subscription; only the client going away (or server shutdown
// draining connections) ends it.
func (s *server) serveSSE(w http.ResponseWriter, r *http.Request, sub *xtq.Subscription) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, &xtq.Error{Kind: xtq.KindIO, Msg: "xtqd: response writer cannot stream"})
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	heartbeat := s.heartbeat
	if heartbeat <= 0 {
		heartbeat = defaultHeartbeat
	}
	for {
		ctx, cancel := context.WithTimeout(r.Context(), heartbeat)
		evs, err := sub.Next(ctx)
		cancel()
		if err != nil {
			if r.Context().Err() != nil {
				return // client gone
			}
			// Idle interval: emit a comment so proxies and clients know
			// the stream is alive.
			if _, err := fmt.Fprint(w, ": heartbeat\n\n"); err != nil {
				return
			}
			fl.Flush()
			continue
		}
		for _, ev := range evs {
			typ := "change"
			switch {
			case ev.Resync:
				typ = "resync"
			case ev.ViewsChanged:
				typ = "views"
			}
			data, err := json.Marshal(ev)
			if err != nil {
				continue
			}
			if _, err := fmt.Fprintf(w, "event: %s\nid: %d\ndata: %s\n\n", typ, ev.Version, data); err != nil {
				return
			}
		}
		fl.Flush()
	}
}
