package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"xtq"
)

// newAutoTestServer serves a store whose engine plans the method per
// (query, document) — what `xtqd` runs by default (-planner).
func newAutoTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	st := xtq.NewStore(xtq.NewEngine(xtq.WithMethod(xtq.MethodAuto)))
	ts := httptest.NewServer(newServer(st, 5*time.Second, 1<<20))
	t.Cleanup(ts.Close)
	return ts
}

type planBody struct {
	Method        string `json:"method"`
	PlannedMethod string `json:"planned_method"`
	NodesVisited  int    `json:"nodes_visited"`
	Plan          *struct {
		Method   string  `json:"method"`
		Auto     bool    `json:"auto"`
		EstNodes int64   `json:"est_nodes"`
		EstCost  float64 `json:"est_cost"`
		Reason   string  `json:"reason"`
	} `json:"plan"`
}

func explainPlan(t *testing.T, url string) planBody {
	t.Helper()
	code, _, body := do(t, "POST", url, testQuery, nil)
	if code != http.StatusOK {
		t.Fatalf("explain: %d %s", code, body)
	}
	var out planBody
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("explain body %q: %v", body, err)
	}
	return out
}

// TestExplainReportsPlan checks the planner section of ?explain=1 on an
// auto engine: a concrete planned method with its estimates, and — the
// regression this pins — a forced ?method= always overriding the
// planner while the explain body still records both the forced method
// and the planner's would-be choice (planned_method).
func TestExplainReportsPlan(t *testing.T) {
	ts := newAutoTestServer(t)
	if code, _, body := do(t, "PUT", ts.URL+"/docs/d", testDoc, nil); code != http.StatusCreated {
		t.Fatalf("put: %d %s", code, body)
	}

	// Auto: the planner picks; explain carries its decision.
	out := explainPlan(t, ts.URL+"/docs/d/query?explain=1")
	if out.Plan == nil {
		t.Fatal("auto explain has no plan section")
	}
	if !out.Plan.Auto {
		t.Error("auto explain: plan.auto = false")
	}
	if out.Method == "" || out.Method == string(xtq.MethodAuto) {
		t.Errorf("auto explain: non-concrete method %q", out.Method)
	}
	if out.Plan.Method != out.Method {
		t.Errorf("auto explain: plan.method %q != method %q", out.Plan.Method, out.Method)
	}
	if out.Plan.EstNodes < 1 || out.Plan.EstCost <= 0 || out.Plan.Reason == "" {
		t.Errorf("auto explain: degenerate estimates %+v", out.Plan)
	}
	if out.PlannedMethod != "" {
		t.Errorf("auto explain: planned_method %q set without an override", out.PlannedMethod)
	}

	// Forced ?method= always overrides the planner, whatever it would
	// have chosen; explain reports both sides.
	for _, forced := range []string{"naive", "twopass", "copyupdate", "topdown"} {
		out := explainPlan(t, ts.URL+"/docs/d/query?explain=1&method="+forced)
		if out.Method != forced {
			t.Errorf("forced %s: ran %q", forced, out.Method)
		}
		if out.Plan == nil {
			t.Fatalf("forced %s: no plan section", forced)
		}
		if out.Plan.Auto {
			t.Errorf("forced %s: plan.auto = true", forced)
		}
		if out.PlannedMethod == "" || out.PlannedMethod == string(xtq.MethodAuto) {
			t.Errorf("forced %s: planned_method = %q, want the planner's concrete choice",
				forced, out.PlannedMethod)
		}
		if out.Plan.EstNodes < 1 {
			t.Errorf("forced %s: no estimate for the forced method", forced)
		}
	}

	// ?method=auto on any server asks the planner explicitly.
	out = explainPlan(t, ts.URL+"/docs/d/query?explain=1&method=auto")
	if out.Plan == nil || !out.Plan.Auto {
		t.Fatalf("method=auto: plan = %+v, want auto section", out.Plan)
	}

	// The planner families made it to /metrics.
	code, _, metrics := do(t, "GET", ts.URL+"/metrics", "", nil)
	if code != http.StatusOK {
		t.Fatalf("/metrics: %d", code)
	}
	for _, fam := range []string{"xtq_plan_decisions_total", "xtq_plan_est_error_ratio"} {
		if !strings.Contains(metrics, fam) {
			t.Errorf("family %s missing from /metrics", fam)
		}
	}
}

// TestUpdatePlansMethod commits an update through an auto engine: the
// store resolves the method per snapshot and the explain body carries
// the decision next to the commit section.
func TestUpdatePlansMethod(t *testing.T) {
	ts := newAutoTestServer(t)
	if code, _, body := do(t, "PUT", ts.URL+"/docs/d", testDoc, nil); code != http.StatusCreated {
		t.Fatalf("put: %d %s", code, body)
	}
	code, _, body := do(t, "POST", ts.URL+"/docs/d/update?explain=1", testQuery, nil)
	if code != http.StatusOK {
		t.Fatalf("update: %d %s", code, body)
	}
	var out struct {
		Method string `json:"method"`
		Plan   *struct {
			Auto   bool   `json:"auto"`
			Method string `json:"method"`
		} `json:"plan"`
		Commit *struct {
			Version uint64 `json:"version"`
		} `json:"commit"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("update explain body %q: %v", body, err)
	}
	if out.Plan == nil || !out.Plan.Auto {
		t.Fatalf("update explain plan = %+v, want auto section", out.Plan)
	}
	if out.Method == "" || out.Method == string(xtq.MethodAuto) {
		t.Errorf("update explain: non-concrete method %q", out.Method)
	}
	if out.Commit == nil || out.Commit.Version != 2 {
		t.Errorf("update explain commit = %+v, want version 2", out.Commit)
	}
}
