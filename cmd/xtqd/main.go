// Command xtqd serves a versioned xtq.Store over HTTP — update syntax as
// the write path of a live XML corpus, transform queries and stacked
// views as its read path.
//
//	xtqd -addr :8344
//
//	curl -X PUT  --data-binary @parts.xml localhost:8344/docs/parts
//	curl -X POST --data-binary \
//	  'transform copy $a := doc("parts") modify do delete $a//price return $a' \
//	  localhost:8344/docs/parts/query
//	curl -X POST -H 'If-Match: "1"' --data-binary \
//	  'transform copy $a := doc("parts") modify do delete $a//price return $a' \
//	  localhost:8344/docs/parts/update
//	curl -X PUT --data-binary \
//	  '["transform copy $a := doc(\"parts\") modify do delete $a//price return $a"]' \
//	  localhost:8344/views/public
//	curl localhost:8344/docs/parts/views/public
//
// Reads are lock-free against immutable snapshots; updates commit
// copy-on-write with optimistic versioning (If-Match → 409 Conflict on
// a lost race). Every request runs under -timeout and is cancelled at
// node/SAX-event granularity when the client disconnects.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"time"

	"xtq"
)

func main() {
	addr := flag.String("addr", ":8344", "listen address")
	method := flag.String("method", string(xtq.MethodTopDown),
		"in-memory evaluation method ("+strings.Join(xtq.MethodNames(), ", ")+")")
	timeout := flag.Duration("timeout", 10*time.Second, "per-request evaluation timeout (0 = none)")
	maxBody := flag.Int64("maxbody", 64<<20, "maximum request body size in bytes")
	maxDepth := flag.Int("maxdepth", 10_000, "maximum element nesting of ingested documents (0 = no limit)")
	flag.Parse()

	m, err := xtq.ParseMethod(*method)
	if err != nil {
		fmt.Fprintln(os.Stderr, "xtqd:", err)
		os.Exit(2)
	}
	eng := xtq.NewEngine(xtq.WithMethod(m), xtq.WithMaxDepth(*maxDepth))
	st := xtq.NewStore(eng)

	srv := &http.Server{
		Addr:              *addr,
		Handler:           newServer(st, *timeout, *maxBody),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(shutdownCtx)
	}()

	log.Printf("xtqd: serving on %s (method=%s, timeout=%s)", *addr, m, *timeout)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("xtqd: %v", err)
	}
	log.Print("xtqd: shut down")
}
