// Command xtqd serves a versioned xtq.Store over HTTP — update syntax as
// the write path of a live XML corpus, transform queries and stacked
// views as its read path.
//
//	xtqd -addr :8344
//
//	curl -X PUT  --data-binary @parts.xml localhost:8344/docs/parts
//	curl -X POST --data-binary \
//	  'transform copy $a := doc("parts") modify do delete $a//price return $a' \
//	  localhost:8344/docs/parts/query
//	curl -X POST -H 'If-Match: "1"' --data-binary \
//	  'transform copy $a := doc("parts") modify do delete $a//price return $a' \
//	  localhost:8344/docs/parts/update
//	curl -X PUT --data-binary \
//	  '["transform copy $a := doc(\"parts\") modify do delete $a//price return $a"]' \
//	  localhost:8344/views/public
//	curl localhost:8344/docs/parts/views/public
//
// Reads are lock-free against immutable snapshots; updates commit
// copy-on-write with optimistic versioning (If-Match → 409 Conflict on
// a lost race). Every request runs under -timeout and is cancelled at
// node/SAX-event granularity when the client disconnects.
//
// With -wal DIR the store is durable: every committed write is appended
// to a write-ahead log of logical update records before it is
// published, the corpus survives kill -9 and restarts (the log replays
// through the engine on startup), background checkpoints bound recovery
// time, and GET /docs/{name}?version=N plus GET /docs/{name}/history
// expose time travel over recent versions. -fsync picks the durability
// policy: always (group-committed fsync per write), interval, or none.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registered on DefaultServeMux, served by -debug-addr
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"xtq"
)

func main() {
	addr := flag.String("addr", ":8344", "listen address")
	method := flag.String("method", string(xtq.MethodTopDown),
		"in-memory evaluation method ("+strings.Join(append(xtq.MethodNames(), string(xtq.MethodAuto)), ", ")+")")
	planner := flag.Bool("planner", true,
		"cost-based method planner: evaluate with method=auto (planned per query and document from its statistics) unless -method is set explicitly")
	timeout := flag.Duration("timeout", 10*time.Second, "per-request evaluation timeout (0 = none)")
	maxBody := flag.Int64("maxbody", 64<<20, "maximum request body size in bytes")
	maxDepth := flag.Int("maxdepth", 10_000, "maximum element nesting of ingested documents (0 = no limit)")
	walDir := flag.String("wal", "", "write-ahead-log directory; empty serves an in-memory (non-durable) store")
	fsync := flag.String("fsync", "always", "WAL fsync policy: always, interval or none")
	ckptEvery := flag.Int64("checkpoint-bytes", 256<<20, "checkpoint after this many bytes of new log (0 = manual only; needs -wal)")
	follow := flag.String("follow", "", "follower mode: primary base URL to replicate from (serves reads, redirects writes)")
	followDir := flag.String("follow-dir", "", "follower state directory (local checkpoints + replay position; empty = in-memory)")
	catchup := flag.Duration("catchup-wait", 500*time.Millisecond,
		"follower mode: how long a read waits for replication to reach X-Xtq-Min-Version before redirecting to the primary")
	heartbeat := flag.Duration("watch-heartbeat", 15*time.Second,
		"keep-alive comment interval of /watch SSE streams")
	route := flag.String("route", "",
		`router mode: static node map "primary[|follower...][,primary[|follower...]...]" — shards documents across groups by name hash and proxies`)
	slowMS := flag.Int64("slow-query-ms", 0,
		"log evaluating requests (query, update, view reads) slower than this many milliseconds as structured slow-query lines (0 = off)")
	debugAddr := flag.String("debug-addr", "",
		"separate listen address for the net/http/pprof debug endpoints (empty = off)")
	flag.Parse()
	slow := time.Duration(*slowMS) * time.Millisecond

	// The planner is the default: unless -method was given explicitly
	// (an explicit method always wins, like ?method= per request), the
	// serving engines run method=auto and plan per (query, document).
	methodSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "method" {
			methodSet = true
		}
	})
	if *planner && !methodSet {
		*method = string(xtq.MethodAuto)
	}

	if *route != "" && *follow != "" {
		fmt.Fprintln(os.Stderr, "xtqd: -route and -follow are mutually exclusive")
		os.Exit(2)
	}

	// Graceful shutdown: stop accepting, drain in-flight requests (their
	// commits finish group-committed fsyncs), then close the store/
	// follower — never the other way around, or a signal races the WAL.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var handler http.Handler
	var closers []func() error

	switch {
	case *route != "":
		shards, err := parseShards(*route)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xtqd: -route:", err)
			os.Exit(2)
		}
		rt := newRouter(shards)
		// The router gets the same observability surface as a data node:
		// /metrics with role="router" and instrumented proxy routes (one
		// coarse label per proxy family — the patterns are the router's,
		// not the data nodes').
		rmux := http.NewServeMux()
		rmux.HandleFunc("GET /metrics", serveMetrics(func() string { return "router" }))
		rmux.Handle("/", instrument("proxy", slow, rt))
		handler = rmux
		log.Printf("xtqd: routing %d shard(s)", len(shards))

	case *follow != "":
		m, err := xtq.ParseMethod(*method)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xtqd:", err)
			os.Exit(2)
		}
		eng := xtq.NewEngine(xtq.WithMethod(m), xtq.WithMaxDepth(*maxDepth))
		fol, err := xtq.Follow(*follow, eng,
			xtq.WithFollowDir(*followDir),
			xtq.WithFollowLogf(log.Printf),
		)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xtqd: starting follower:", err)
			os.Exit(1)
		}
		closers = append(closers, fol.Close)
		handler = buildServer(fol.Store(), fol, *timeout, *maxBody, *catchup, *heartbeat, slow)
		log.Printf("xtqd: following %s (%d docs replicated)", *follow, fol.Store().Len())

	default:
		m, err := xtq.ParseMethod(*method)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xtqd:", err)
			os.Exit(2)
		}
		eng := xtq.NewEngine(xtq.WithMethod(m), xtq.WithMaxDepth(*maxDepth))
		var st *xtq.Store
		if *walDir != "" {
			policy, err := xtq.ParseFsyncPolicy(*fsync)
			if err != nil {
				fmt.Fprintln(os.Stderr, "xtqd:", err)
				os.Exit(2)
			}
			st, err = xtq.OpenStore(*walDir, eng,
				xtq.WithFsync(policy),
				xtq.WithCheckpointEvery(*ckptEvery),
			)
			if err != nil {
				fmt.Fprintln(os.Stderr, "xtqd: opening store:", err)
				os.Exit(1)
			}
			closers = append(closers, st.Close)
			log.Printf("xtqd: durable store at %s (fsync=%s, %d docs recovered; replication feed on /wal)",
				*walDir, policy, st.Len())
		} else {
			st = xtq.NewStore(eng)
		}
		handler = buildServer(st, nil, *timeout, *maxBody, 0, *heartbeat, slow)
		log.Printf("xtqd: serving (method=%s, timeout=%s)", m, *timeout)
	}

	if *debugAddr != "" {
		// pprof rides its own listener so profiling endpoints are never
		// exposed on the service address.
		dsrv := &http.Server{Addr: *debugAddr, Handler: http.DefaultServeMux,
			ReadHeaderTimeout: 10 * time.Second}
		go func() {
			log.Printf("xtqd: pprof debug listener on %s", *debugAddr)
			if err := dsrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("xtqd: debug listener: %v", err)
			}
		}()
		closers = append(closers, dsrv.Close)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(shutdownCtx)
	}()

	log.Printf("xtqd: listening on %s", *addr)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("xtqd: %v", err)
	}
	<-shutdownDone // every in-flight request has finished or timed out
	for _, close := range closers {
		if err := close(); err != nil {
			log.Printf("xtqd: closing: %v", err)
		}
	}
	log.Print("xtqd: shut down")
}
