package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"xtq"
)

// startDurableServer runs a primary xtqd (durable store + /wal feed) on
// an httptest listener.
func startDurableServer(t *testing.T) (*xtq.Store, *httptest.Server) {
	t.Helper()
	st, err := xtq.OpenStore(t.TempDir(), nil, xtq.WithFsync(xtq.FsyncNone))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	ts := httptest.NewServer(newServer(st, 5*time.Second, 1<<20))
	t.Cleanup(ts.Close)
	return st, ts
}

// startFollowerServer runs a follower xtqd replicating primary.
func startFollowerServer(t *testing.T, primary string, catchup time.Duration, opts ...xtq.FollowOption) (*xtq.Follower, *httptest.Server) {
	t.Helper()
	fol, err := xtq.Follow(primary, nil, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fol.Close() })
	ts := httptest.NewServer(newFollowerServer(fol, 5*time.Second, 1<<20, catchup))
	t.Cleanup(ts.Close)
	return fol, ts
}

// noRedirect performs a request without following redirects.
func noRedirect(t *testing.T, method, url, body string, hdr map[string]string) (int, http.Header, string) {
	t.Helper()
	c := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	res, err := c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	b, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	return res.StatusCode, res.Header, string(b)
}

func healthJSON(t *testing.T, url string) map[string]any {
	t.Helper()
	_, _, body := do(t, "GET", url+"/healthz", "", nil)
	var m map[string]any
	if err := json.Unmarshal([]byte(body), &m); err != nil {
		t.Fatalf("healthz JSON %q: %v", body, err)
	}
	return m
}

func TestFollowerServerRedirectsWritesAndServesReads(t *testing.T) {
	_, pts := startDurableServer(t)
	if code, _, body := do(t, "PUT", pts.URL+"/docs/parts", testDoc, nil); code != http.StatusCreated {
		t.Fatalf("ingest: %d %s", code, body)
	}
	_, fts := startFollowerServer(t, pts.URL, 3*time.Second)

	// healthz reports roles and replication position.
	ph := healthJSON(t, pts.URL)
	if ph["role"] != "primary" || ph["wal"] == nil {
		t.Fatalf("primary healthz = %v", ph)
	}
	fh := healthJSON(t, fts.URL)
	if fh["role"] != "follower" || fh["primary"] != pts.URL || fh["replication"] == nil {
		t.Fatalf("follower healthz = %v", fh)
	}

	// Writes on the follower redirect to the primary with the same path.
	up := `transform copy $a := doc("parts") modify do delete $a//price return $a`
	code, hdr, _ := noRedirect(t, "POST", fts.URL+"/docs/parts/update", up, nil)
	if code != http.StatusTemporaryRedirect || hdr.Get("Location") != pts.URL+"/docs/parts/update" {
		t.Fatalf("follower write = %d Location %q", code, hdr.Get("Location"))
	}
	// A client that follows the 307 (Go's default) lands the commit.
	code, _, body := do(t, "POST", fts.URL+"/docs/parts/update", up, nil)
	if code != http.StatusOK || jsonField(t, body, "version") != 2 {
		t.Fatalf("redirected update: %d %s", code, body)
	}

	// Read-your-writes: version 2 through the follower, never stale.
	code, hdr, got := do(t, "GET", fts.URL+"/docs/parts", "", map[string]string{"X-Xtq-Min-Version": "2"})
	if code != http.StatusOK || strings.Contains(got, "<price>") {
		t.Fatalf("min-version read: %d %s", code, got)
	}
	if v, _ := strconv.ParseUint(hdr.Get("X-Xtq-Version"), 10, 64); v < 2 {
		t.Fatalf("min-version read served version %q", hdr.Get("X-Xtq-Version"))
	}
	// If-None-Match at the served version → 304.
	etag := hdr.Get("ETag")
	if code, _, _ := do(t, "GET", fts.URL+"/docs/parts", "", map[string]string{"If-None-Match": etag}); code != http.StatusNotModified {
		t.Fatalf("If-None-Match %s: %d, want 304", etag, code)
	}
	// Garbage min-version → 400.
	if code, _, _ := do(t, "GET", fts.URL+"/docs/parts", "", map[string]string{"X-Xtq-Min-Version": "zap"}); code != http.StatusBadRequest {
		t.Fatalf("bad min-version: %d", code)
	}

	// A min-version the follower cannot reach within -catchup-wait
	// redirects to the primary (302) instead of serving stale bytes.
	sts := httptest.NewServer(newFollowerServer(mustFollow(t, pts.URL), 5*time.Second, 1<<20, 30*time.Millisecond))
	defer sts.Close()
	code, hdr, _ = noRedirect(t, "GET", sts.URL+"/docs/parts", "", map[string]string{"X-Xtq-Min-Version": "99"})
	if code != http.StatusFound || hdr.Get("Location") != pts.URL+"/docs/parts" {
		t.Fatalf("unreachable min-version = %d Location %q, want 302 to primary", code, hdr.Get("Location"))
	}

	// Promotion: writes commit locally, healthz flips role.
	if code, _, _ := do(t, "POST", fts.URL+"/admin/promote", "", nil); code != http.StatusOK {
		t.Fatalf("promote: %d", code)
	}
	code, _, body = do(t, "POST", fts.URL+"/docs/parts/update",
		`transform copy $a := doc("parts") modify do insert <after-failover/> into $a/db return $a`, nil)
	if code != http.StatusOK || jsonField(t, body, "version") != 3 {
		t.Fatalf("post-promotion update: %d %s", code, body)
	}
	if h := healthJSON(t, fts.URL); h["role"] != "primary" {
		t.Fatalf("promoted healthz = %v", h)
	}
}

func mustFollow(t *testing.T, primary string, opts ...xtq.FollowOption) *xtq.Follower {
	t.Helper()
	fol, err := xtq.Follow(primary, nil, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fol.Close() })
	return fol
}

// laggingTransport delays every WAL segment response, keeping the
// follower measurably behind its primary.
type laggingTransport struct {
	delay time.Duration
	on    atomic.Bool
}

func (lt *laggingTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	resp, err := http.DefaultTransport.RoundTrip(req)
	if err == nil && lt.on.Load() && strings.Contains(req.URL.Path, "/wal/segments/") {
		time.Sleep(lt.delay)
	}
	return resp, err
}

func TestRouterReadYourWritesThroughLaggingFollower(t *testing.T) {
	_, pts := startDurableServer(t)
	if code, _, body := do(t, "PUT", pts.URL+"/docs/parts", testDoc, nil); code != http.StatusCreated {
		t.Fatalf("ingest: %d %s", code, body)
	}

	lt := &laggingTransport{delay: 80 * time.Millisecond}
	_, fts := startFollowerServer(t, pts.URL, 5*time.Second,
		xtq.WithFollowClient(&http.Client{Transport: lt}),
		xtq.WithFollowPoll(20*time.Millisecond))
	lt.on.Store(true)

	rt := httptest.NewServer(newRouter([]shard{{primary: pts.URL, replicas: []string{fts.URL}}}))
	defer rt.Close()

	if h := healthJSON(t, rt.URL); h["role"] != "router" {
		t.Fatalf("router healthz = %v", h)
	}

	// Commit through the router, read back through the router with
	// X-Xtq-Min-Version — the read goes to the lagging follower, which
	// either catches up or bounces it to the primary; either way the
	// response is never older than the write we just made.
	for i := 0; i < 8; i++ {
		up := fmt.Sprintf(`transform copy $a := doc("parts") modify do insert <w n="%d"/> into $a/db return $a`, i)
		code, _, body := do(t, "POST", rt.URL+"/docs/parts/update", up, nil)
		if code != http.StatusOK {
			t.Fatalf("routed update %d: %d %s", i, code, body)
		}
		v := jsonField(t, body, "version")
		code, hdr, got := do(t, "GET", rt.URL+"/docs/parts", "",
			map[string]string{"X-Xtq-Min-Version": strconv.Itoa(int(v))})
		if code != http.StatusOK {
			t.Fatalf("routed read %d: %d %s", i, code, got)
		}
		served, _ := strconv.ParseFloat(hdr.Get("X-Xtq-Version"), 64)
		if served < v {
			t.Fatalf("stale read: wrote version %v, served %v", v, served)
		}
		if !strings.Contains(got, fmt.Sprintf(`<w n="%d"/>`, i)) {
			t.Fatalf("read %d missing just-written element: %s", i, got)
		}
	}
}

func TestRouterShardsDocumentsAcrossPrimaries(t *testing.T) {
	stA, ptsA := startDurableServer(t)
	stB, ptsB := startDurableServer(t)
	rt := httptest.NewServer(newRouter([]shard{{primary: ptsA.URL, replicas: []string{ptsA.URL}},
		{primary: ptsB.URL, replicas: []string{ptsB.URL}}}))
	defer rt.Close()

	// Ingest a spread of documents through the single namespace.
	names := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta"}
	for _, n := range names {
		if code, _, body := do(t, "PUT", rt.URL+"/docs/"+n, testDoc, nil); code != http.StatusCreated {
			t.Fatalf("ingest %s: %d %s", n, code, body)
		}
	}
	if stA.Len() == 0 || stB.Len() == 0 {
		t.Fatalf("sharding sent everything one way: %d/%d", stA.Len(), stB.Len())
	}
	if stA.Len()+stB.Len() != len(names) {
		t.Fatalf("lost documents: %d+%d != %d", stA.Len(), stB.Len(), len(names))
	}

	// Reads route to the owner: every document is retrievable.
	for _, n := range names {
		if code, _, _ := do(t, "GET", rt.URL+"/docs/"+n, "", nil); code != http.StatusOK {
			t.Fatalf("routed get %s: %d", n, code)
		}
	}
	// The merged listing shows the whole namespace.
	_, _, body := do(t, "GET", rt.URL+"/docs", "", nil)
	for _, n := range names {
		if !strings.Contains(body, `"`+n+`"`) {
			t.Fatalf("merged listing missing %s: %s", n, body)
		}
	}

	// Views broadcast: registered once through the router, servable on
	// documents living on either shard.
	stack := `["transform copy $a := doc(\"x\") modify do delete $a//price return $a"]`
	if code, _, body := do(t, "PUT", rt.URL+"/views/public", stack, nil); code != http.StatusCreated {
		t.Fatalf("routed view: %d %s", code, body)
	}
	for _, n := range names {
		code, _, got := do(t, "GET", rt.URL+"/docs/"+n+"/views/public", "", nil)
		if code != http.StatusOK || strings.Contains(got, "<price>") {
			t.Fatalf("view over %s: %d %s", n, code, got)
		}
	}
}

// A follower serves /watch off its replication tail: commits written
// through the primary surface as SSE events on the follower in order,
// and the same stream keeps running — gapless — after the follower is
// promoted and commits start landing locally.
func TestFollowerWatchStreamsReplicatedCommitsAcrossPromote(t *testing.T) {
	_, pts := startDurableServer(t)
	if code, _, body := do(t, "PUT", pts.URL+"/docs/parts", testDoc, nil); code != http.StatusCreated {
		t.Fatalf("ingest: %d %s", code, body)
	}
	_, fts := startFollowerServer(t, pts.URL, 3*time.Second)

	// Subscribe on the follower having seen version 1; the floor makes
	// this safe even if replication has not applied version 1 yet.
	ch, cancel := sseSubscribe(t, fts.URL+"/docs/parts/watch?from=1")
	defer cancel()

	for i := 0; i < 3; i++ {
		upd := `transform copy $a := doc("parts") modify do insert <mark/> into $a/db return $a`
		if code, _, body := do(t, "POST", pts.URL+"/docs/parts/update", upd, nil); code != http.StatusOK {
			t.Fatalf("primary update %d: %d %s", i, code, body)
		}
	}
	for want := uint64(2); want <= 4; want++ {
		ev := nextEvent(t, ch)
		if ev.Type != "change" || ev.Ver != want {
			t.Fatalf("replicated event: want change@%d, got %+v", want, ev)
		}
	}

	// Promote the follower; local commits continue the same feed.
	if code, _, _ := do(t, "POST", fts.URL+"/admin/promote", "", nil); code != http.StatusOK {
		t.Fatal("promote")
	}
	code, _, body := do(t, "POST", fts.URL+"/docs/parts/update",
		`transform copy $a := doc("parts") modify do insert <after-failover/> into $a/db return $a`, nil)
	if code != http.StatusOK || jsonField(t, body, "version") != 5 {
		t.Fatalf("post-promotion update: %d %s", code, body)
	}
	ev := nextEvent(t, ch)
	if ev.Type != "change" || ev.Ver != 5 {
		t.Fatalf("post-promotion event: %+v", ev)
	}
}
