package main

import (
	"encoding/json"
	"log"
	"net/http"
	"strconv"
	"strings"
	"time"

	"xtq/internal/obs"
)

// Serving-layer instruments: every route registered through
// (*server).handle (and the router's proxy wrapper) reports request
// count by route and status class, latency by route, and the in-flight
// gauge. Routes are labeled with their literal mux pattern — a closed,
// low-cardinality set fixed at registration time.
var (
	mHTTPRequests = obs.Default.CounterVec("xtqd_http_requests_total",
		"HTTP requests served, by route pattern and status code.", "route", "code")
	mHTTPSeconds = obs.Default.HistogramVec("xtqd_http_request_seconds",
		"HTTP request latency by route pattern.", "route")
	mHTTPInFlight = obs.Default.Gauge("xtqd_http_in_flight",
		"HTTP requests currently being served.")
	mSlowQueries = obs.Default.Counter("xtqd_slow_queries_total",
		"Requests on evaluating routes that exceeded -slow-query-ms.")
)

// statusWriter captures the response status for the request metrics
// while passing flushes through, so SSE streams behind the middleware
// still emit event-by-event.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	return sw.ResponseWriter.Write(p)
}

func (sw *statusWriter) Flush() {
	if fl, ok := sw.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

// slowEligible reports whether a route evaluates queries — the routes
// the slow-query log watches. Long-poll and streaming routes (/watch,
// /wal) are intentionally long-lived and never count as slow.
func slowEligible(pattern string) bool {
	return strings.Contains(pattern, "/query") ||
		strings.Contains(pattern, "/update") ||
		strings.Contains(pattern, "/views/")
}

// instrument wraps h with the request metrics and a fresh per-request
// trace: the one obs.Trace the layers below fill in and the explain
// body, stats header and slow-query line all read back out.
func instrument(pattern string, slow time.Duration, h http.Handler) http.Handler {
	hist := mHTTPSeconds.With(pattern)
	logSlow := slow > 0 && slowEligible(pattern)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tr := obs.NewTrace()
		r = r.WithContext(obs.WithTrace(r.Context(), tr))
		sw := &statusWriter{ResponseWriter: w}
		mHTTPInFlight.Inc()
		start := time.Now()
		h.ServeHTTP(sw, r)
		d := time.Since(start)
		mHTTPInFlight.Dec()
		code := sw.status
		if code == 0 {
			code = http.StatusOK
		}
		mHTTPRequests.With(pattern, strconv.Itoa(code)).Inc()
		hist.Observe(d)
		if logSlow && d >= slow {
			mSlowQueries.Inc()
			logSlowQuery(pattern, r, tr, code, d)
		}
	})
}

// slowQueryLine is the structured (JSON) payload of one slow-query log
// line: where the time went, from the request's trace.
type slowQueryLine struct {
	Route        string           `json:"route"`
	Path         string           `json:"path"`
	Status       int              `json:"status"`
	WallMS       float64          `json:"wall_ms"`
	Method       string           `json:"method,omitempty"`
	CacheHit     *bool            `json:"query_cache_hit,omitempty"`
	CompileMS    float64          `json:"compile_ms,omitempty"`
	EvalMS       float64          `json:"eval_ms,omitempty"`
	DocNodes     int              `json:"doc_nodes,omitempty"`
	NodesVisited int              `json:"nodes_visited,omitempty"`
	Plan         *obs.PlanTrace   `json:"plan,omitempty"`
	View         *obs.ViewTrace   `json:"view,omitempty"`
	Commit       *obs.CommitTrace `json:"commit,omitempty"`
}

func logSlowQuery(pattern string, r *http.Request, tr *obs.Trace, status int, d time.Duration) {
	line := slowQueryLine{
		Route:        pattern,
		Path:         r.URL.Path,
		Status:       status,
		WallMS:       ms(d),
		Method:       tr.Method(),
		CompileMS:    ms(tr.Compile()),
		EvalMS:       ms(tr.Eval()),
		DocNodes:     tr.DocNodes(),
		NodesVisited: tr.NodesVisited(),
		Plan:         tr.Plan(),
		View:         tr.View(),
		Commit:       tr.Commit(),
	}
	if hit, known := tr.CacheHit(); known {
		line.CacheHit = &hit
	}
	b, err := json.Marshal(line)
	if err != nil {
		return
	}
	log.Printf("xtqd: slow-query %s", b)
}

func ms(d time.Duration) float64 {
	return float64(d.Nanoseconds()) / 1e6
}

// serveMetrics returns the GET /metrics handler: the process registry
// in Prometheus text exposition, every sample stamped with the node's
// role. role is a func because a follower's role flips to primary on
// promotion.
func serveMetrics(role func() string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		obs.Default.WriteTo(w, obs.Label{Name: "role", Value: role()})
	}
}

// explainMeta is the JSON body of an ?explain=1 evaluation: the
// request's completed trace, rendered. Durations are integral
// nanoseconds so the numbers divide exactly.
type explainMeta struct {
	Doc     string `json:"doc"`
	Version uint64 `json:"version"`
	// Method is the evaluation method that actually ran, after any
	// ?method= override ("composed" for single-pass view composition).
	Method string `json:"method,omitempty"`
	// QueryCacheHit is the compiled-query cache outcome of this
	// request's Prepare; absent when no engine prepare ran.
	QueryCacheHit *bool `json:"query_cache_hit,omitempty"`
	CompileNS     int64 `json:"compile_ns"`
	EvalNS        int64 `json:"eval_ns"`
	// WallNS is the full wall time from request arrival to the moment
	// the explain body was rendered.
	WallNS       int64 `json:"wall_ns"`
	DocNodes     int   `json:"doc_nodes,omitempty"`
	NodesVisited int   `json:"nodes_visited"`
	ResultNodes  int   `json:"result_nodes,omitempty"`
	// Plan is the planner section: the decision (method, estimated
	// nodes/cost, reason) when the planner picked the method, or the
	// would-have-been decision and the forced method's estimate when
	// ?method= overrode it (plan.auto is false then, and PlannedMethod
	// below names the planner's choice).
	Plan *obs.PlanTrace `json:"plan,omitempty"`
	// PlannedMethod is set only when a forced ?method= overrode the
	// planner: the method the planner would have chosen.
	PlannedMethod string `json:"planned_method,omitempty"`
	// View is the materialized-view section when the request read one.
	View *obs.ViewTrace `json:"view,omitempty"`
	// Commit is the write-cost section when the request committed.
	Commit *obs.CommitTrace `json:"commit,omitempty"`
}

// explainFrom renders a completed trace. Callers fill Doc, Version and
// ResultNodes from the snapshot and result at hand.
func explainFrom(tr *obs.Trace) explainMeta {
	out := explainMeta{
		Method:       tr.Method(),
		CompileNS:    tr.Compile().Nanoseconds(),
		EvalNS:       tr.Eval().Nanoseconds(),
		WallNS:       tr.Elapsed().Nanoseconds(),
		DocNodes:     tr.DocNodes(),
		NodesVisited: tr.NodesVisited(),
		Plan:         tr.Plan(),
		View:         tr.View(),
		Commit:       tr.Commit(),
	}
	if p := out.Plan; p != nil && !p.Auto && p.Method != "" {
		out.PlannedMethod = p.Method
	}
	if hit, known := tr.CacheHit(); known {
		out.QueryCacheHit = &hit
	}
	return out
}

// explainRequested reports the ?explain=1 switch.
func explainRequested(r *http.Request) bool {
	return r.URL.Query().Get("explain") == "1"
}
