package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"xtq/internal/replica"
)

// shard is one replication group in the static node map: a primary that
// commits plus zero or more follower replicas that serve reads.
type shard struct {
	primary  string
	replicas []string // read targets: the followers, or the primary when none
}

// router is the thin coordinator mode (xtqd -route): it owns no
// documents, just a static node map. Documents shard across the groups
// by rendezvous hash of their name, so every router given the same map
// agrees on placement with no shared state; writes proxy to the owning
// shard's primary, reads to one of its replicas round-robin. A read a
// lagging follower cannot serve yet (X-Xtq-Min-Version) comes back as a
// redirect to the primary, which the router follows server-side so the
// client still sees exactly one hop.
type router struct {
	shards []shard
	names  []string // shard keys for rendezvous hashing (the primary URLs)
	hc     *http.Client
	// sc proxies /watch change feeds: no client timeout (the streams
	// are standing subscriptions bounded only by the client hanging up).
	sc *http.Client
	rr atomic.Uint64
}

// parseShards parses the -route node map: comma-separated shards, nodes
// within a shard separated by "|", first node the primary:
//
//	-route "http://p1:8344|http://f1:8345|http://f2:8346,http://p2:8347"
func parseShards(spec string) ([]shard, error) {
	var shards []shard
	for _, group := range strings.Split(spec, ",") {
		group = strings.TrimSpace(group)
		if group == "" {
			continue
		}
		var sh shard
		for i, node := range strings.Split(group, "|") {
			node = strings.TrimRight(strings.TrimSpace(node), "/")
			if !strings.HasPrefix(node, "http://") && !strings.HasPrefix(node, "https://") {
				return nil, fmt.Errorf("node %q is not an http(s) URL", node)
			}
			if i == 0 {
				sh.primary = node
			} else {
				sh.replicas = append(sh.replicas, node)
			}
		}
		if len(sh.replicas) == 0 {
			sh.replicas = []string{sh.primary}
		}
		shards = append(shards, sh)
	}
	if len(shards) == 0 {
		return nil, fmt.Errorf("empty node map")
	}
	return shards, nil
}

func newRouter(shards []shard) *router {
	names := make([]string, len(shards))
	for i, sh := range shards {
		names[i] = sh.primary
	}
	noRedirect := func(req *http.Request, via []*http.Request) error {
		// The router forwards redirects it does not handle itself back
		// to the client instead of chasing them.
		return http.ErrUseLastResponse
	}
	return &router{
		shards: shards,
		names:  names,
		hc:     &http.Client{CheckRedirect: noRedirect, Timeout: 60 * time.Second},
		sc:     &http.Client{CheckRedirect: noRedirect},
	}
}

// shardFor maps a document name onto its owning shard.
func (rt *router) shardFor(name string) shard {
	owner := replica.PickNode(name, rt.names)
	for _, sh := range rt.shards {
		if sh.primary == owner {
			return sh
		}
	}
	return rt.shards[0] // unreachable: PickNode returns a member of names
}

// readTarget picks the next replica of a shard round-robin.
func (rt *router) readTarget(sh shard) string {
	return sh.replicas[rt.rr.Add(1)%uint64(len(sh.replicas))]
}

func (rt *router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	path := r.URL.Path
	switch {
	case path == "/healthz":
		rt.handleHealth(w, r)
	case path == "/docs" && r.Method == http.MethodGet:
		rt.handleListDocs(w, r)
	case strings.HasPrefix(path, "/docs/"):
		rt.proxyDoc(w, r)
	case path == "/views" || strings.HasPrefix(path, "/views/"):
		rt.proxyViews(w, r)
	default:
		http.NotFound(w, r)
	}
}

func (rt *router) handleHealth(w http.ResponseWriter, r *http.Request) {
	type shardOut struct {
		Primary  string   `json:"primary"`
		Replicas []string `json:"replicas"`
	}
	out := make([]shardOut, len(rt.shards))
	for i, sh := range rt.shards {
		out[i] = shardOut{Primary: sh.primary, Replicas: sh.replicas}
	}
	writeJSON(w, http.StatusOK, map[string]any{"ok": true, "role": "router", "shards": out})
}

// proxyDoc routes one document request: writes (PUT/DELETE/POST) to the
// owning shard's primary, reads to a replica. A replica that cannot
// satisfy X-Xtq-Min-Version in time answers 302 to the primary; the
// router follows that one hop itself so read-your-writes holds through
// a single client request.
func (rt *router) proxyDoc(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, "/docs/")
	if i := strings.IndexByte(name, '/'); i >= 0 {
		name = name[:i]
	}
	if name == "" {
		http.NotFound(w, r)
		return
	}
	sh := rt.shardFor(name)
	read := r.Method == http.MethodGet || r.Method == http.MethodHead ||
		(r.Method == http.MethodPost && (strings.HasSuffix(r.URL.Path, "/query") || strings.Contains(r.URL.Path, "/views/")))
	target := sh.primary
	var body []byte
	if read {
		target = rt.readTarget(sh)
	} else if r.Body != nil {
		// Buffer write bodies: a redirect retry must resend them.
		b, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		body = b
	}
	resp, err := rt.forward(w, r, target, body)
	if err != nil {
		return
	}
	// One redirect hop: a follower punting to its primary (302 reads,
	// 307 writes that raced a promotion flip).
	if loc := resp.Header.Get("Location"); (resp.StatusCode == http.StatusFound || resp.StatusCode == http.StatusTemporaryRedirect) && loc != "" {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		resp, err = rt.forwardTo(w, r, loc, body)
		if err != nil {
			return
		}
	}
	relay(w, resp)
}

// handleListDocs fans GET /docs out to every shard primary and merges
// the listings into one namespace.
func (rt *router) handleListDocs(w http.ResponseWriter, r *http.Request) {
	type listing struct {
		Docs []json.RawMessage `json:"docs"`
	}
	var (
		mu     sync.Mutex
		merged []json.RawMessage
		errs   []string
		wg     sync.WaitGroup
	)
	for _, sh := range rt.shards {
		wg.Add(1)
		go func(base string) {
			defer wg.Done()
			req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, base+"/docs", nil)
			if err == nil {
				var resp *http.Response
				if resp, err = rt.hc.Do(req); err == nil {
					defer resp.Body.Close()
					var l listing
					if err = json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(&l); err == nil {
						mu.Lock()
						merged = append(merged, l.Docs...)
						mu.Unlock()
						return
					}
				}
			}
			mu.Lock()
			errs = append(errs, base+": "+err.Error())
			mu.Unlock()
		}(sh.primary)
	}
	wg.Wait()
	if len(errs) > 0 {
		writeJSON(w, http.StatusBadGateway, map[string]any{"error": strings.Join(errs, "; ")})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"docs": merged})
}

// proxyViews broadcasts view mutations to every node (views are
// per-node engine state, so each node needs the stack to serve
// /docs/{name}/views/{view} for the shards it holds) and answers view
// listings from the first shard's primary.
func (rt *router) proxyViews(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodGet {
		resp, err := rt.forward(w, r, rt.shards[0].primary, nil)
		if err != nil {
			return
		}
		relay(w, resp)
		return
	}
	body, err := io.ReadAll(r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	seen := map[string]bool{}
	var nodes []string
	for _, sh := range rt.shards {
		for _, node := range append([]string{sh.primary}, sh.replicas...) {
			if !seen[node] {
				seen[node] = true
				nodes = append(nodes, node)
			}
		}
	}
	var last *http.Response
	for _, node := range nodes {
		resp, err := rt.forwardTo(w, r, node+r.URL.RequestURI(), body)
		if err != nil {
			return
		}
		if last != nil {
			io.Copy(io.Discard, last.Body)
			last.Body.Close()
		}
		last = resp
		if resp.StatusCode >= 400 {
			relay(w, resp)
			return
		}
	}
	relay(w, last)
}

// forward proxies r to target, preserving method, path, query, headers
// and body. The response must be relayed or closed by the caller.
func (rt *router) forward(w http.ResponseWriter, r *http.Request, target string, body []byte) (*http.Response, error) {
	return rt.forwardTo(w, r, target+r.URL.RequestURI(), body)
}

func (rt *router) forwardTo(w http.ResponseWriter, r *http.Request, url string, body []byte) (*http.Response, error) {
	var rd io.Reader
	if body != nil {
		rd = strings.NewReader(string(body))
	} else if r.Method != http.MethodGet && r.Method != http.MethodHead {
		rd = r.Body
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, url, rd)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return nil, err
	}
	for k, vs := range r.Header {
		if k == "Connection" || k == "Keep-Alive" || k == "Transfer-Encoding" {
			continue
		}
		req.Header[k] = vs
	}
	hc := rt.hc
	if strings.HasSuffix(req.URL.Path, "/watch") && req.Method == http.MethodGet {
		hc = rt.sc
	}
	resp, err := hc.Do(req)
	if err != nil {
		writeJSON(w, http.StatusBadGateway, map[string]any{"error": err.Error()})
		return nil, err
	}
	return resp, nil
}

// relay streams a proxied response back to the client. Event streams
// are flushed write-by-write so SSE subscribers behind the router see
// events as they happen, not when a buffer fills.
func relay(w http.ResponseWriter, resp *http.Response) {
	defer resp.Body.Close()
	for k, vs := range resp.Header {
		w.Header()[k] = vs
	}
	w.WriteHeader(resp.StatusCode)
	if strings.HasPrefix(resp.Header.Get("Content-Type"), "text/event-stream") {
		fl, _ := w.(http.Flusher)
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			if n > 0 {
				if _, werr := w.Write(buf[:n]); werr != nil {
					return
				}
				if fl != nil {
					fl.Flush()
				}
			}
			if err != nil {
				return
			}
		}
	}
	io.Copy(w, resp.Body)
}
