package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	Type string
	Doc  string   `json:"doc"`
	Ver  uint64   `json:"version"`
	ETag string   `json:"etag"`
	Aff  []string `json:"affectedViews"`
	Del  bool     `json:"deleted"`
	VC   bool     `json:"viewsChanged"`
	RS   bool     `json:"resync"`
}

// sseSubscribe opens an SSE watch stream and delivers parsed events on
// the returned channel until cancel is called or the stream ends.
func sseSubscribe(t *testing.T, url string) (<-chan sseEvent, context.CancelFunc) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	res, err := http.DefaultClient.Do(req)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	if res.StatusCode != http.StatusOK || !strings.HasPrefix(res.Header.Get("Content-Type"), "text/event-stream") {
		res.Body.Close()
		cancel()
		t.Fatalf("watch: %d %s", res.StatusCode, res.Header.Get("Content-Type"))
	}
	ch := make(chan sseEvent, 64)
	go func() {
		defer res.Body.Close()
		defer close(ch)
		sc := bufio.NewScanner(res.Body)
		var cur sseEvent
		for sc.Scan() {
			line := sc.Text()
			switch {
			case strings.HasPrefix(line, "event: "):
				cur = sseEvent{Type: strings.TrimPrefix(line, "event: ")}
			case strings.HasPrefix(line, "data: "):
				json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &cur)
			case line == "" && cur.Type != "":
				ch <- cur
				cur = sseEvent{}
			}
		}
	}()
	return ch, cancel
}

// nextEvent waits for one event with a bound.
func nextEvent(t *testing.T, ch <-chan sseEvent) sseEvent {
	t.Helper()
	select {
	case ev, ok := <-ch:
		if !ok {
			t.Fatal("event stream closed")
		}
		return ev
	case <-time.After(10 * time.Second):
		t.Fatal("no event within 10s")
	}
	panic("unreachable")
}

func TestWatchSSEStreamsCommits(t *testing.T) {
	ts := newTestServer(t)
	do(t, "PUT", ts.URL+"/views/nosup",
		`["transform copy $a := doc(\"d\") modify do delete $a//supplier return $a"]`, nil)

	ch, cancel := sseSubscribe(t, ts.URL+"/docs/parts/watch")
	defer cancel()

	if code, _, body := do(t, "PUT", ts.URL+"/docs/parts", testDoc, nil); code != http.StatusCreated {
		t.Fatalf("ingest: %d %s", code, body)
	}
	ev := nextEvent(t, ch)
	if ev.Type != "change" || ev.Ver != 1 || ev.ETag != `"1"` {
		t.Fatalf("put event: %+v", ev)
	}
	if len(ev.Aff) != 1 || ev.Aff[0] != "nosup" {
		t.Fatalf("put affectedViews: %+v", ev)
	}

	// An update inside the view-deleted region: provably unaffected.
	upd := `transform copy $a := doc("parts") modify do delete $a/db/part/supplier/price return $a`
	if code, _, body := do(t, "POST", ts.URL+"/docs/parts/update", upd, nil); code != http.StatusOK {
		t.Fatalf("update: %d %s", code, body)
	}
	ev = nextEvent(t, ch)
	if ev.Type != "change" || ev.Ver != 2 || len(ev.Aff) != 0 {
		t.Fatalf("unaffected update event: %+v", ev)
	}

	// Deleting the document is a change event too.
	if code, _, _ := do(t, "DELETE", ts.URL+"/docs/parts", "", nil); code != http.StatusNoContent {
		t.Fatal("delete")
	}
	ev = nextEvent(t, ch)
	if ev.Type != "change" || ev.Ver != 3 || !ev.Del {
		t.Fatalf("delete event: %+v", ev)
	}
}

func TestWatchViewRegistryMutationEmitsEvent(t *testing.T) {
	ts := newTestServer(t)
	do(t, "PUT", ts.URL+"/docs/parts", testDoc, nil)

	ch, cancel := sseSubscribe(t, ts.URL+"/docs/parts/watch")
	defer cancel()

	if code, _, body := do(t, "PUT", ts.URL+"/views/pub",
		`["transform copy $a := doc(\"d\") modify do delete $a//price return $a"]`, nil); code != http.StatusCreated {
		t.Fatalf("register view: %d %s", code, body)
	}
	ev := nextEvent(t, ch)
	if ev.Type != "views" || !ev.VC || ev.Ver != 1 {
		t.Fatalf("views event: %+v", ev)
	}
	if code, _, _ := do(t, "DELETE", ts.URL+"/views/pub", "", nil); code != http.StatusNoContent {
		t.Fatal("remove view")
	}
	ev = nextEvent(t, ch)
	if ev.Type != "views" || !ev.VC {
		t.Fatalf("views removal event: %+v", ev)
	}
}

func TestWatchFromReplaysAndLongPoll(t *testing.T) {
	ts := newTestServer(t)
	do(t, "PUT", ts.URL+"/docs/parts", testDoc, nil)
	for i := 0; i < 3; i++ {
		upd := `transform copy $a := doc("parts") modify do insert <mark/> into $a/db return $a`
		if code, _, body := do(t, "POST", ts.URL+"/docs/parts/update", upd, nil); code != http.StatusOK {
			t.Fatalf("update %d: %d %s", i, code, body)
		}
	}

	// ?from=1 replays versions 2..4 before live delivery.
	ch, cancel := sseSubscribe(t, ts.URL+"/docs/parts/watch?from=1")
	defer cancel()
	for want := uint64(2); want <= 4; want++ {
		ev := nextEvent(t, ch)
		if ev.Type != "change" || ev.Ver != want {
			t.Fatalf("replay: want version %d, got %+v", want, ev)
		}
	}

	// Long-poll with a satisfied from returns the same batch as JSON.
	code, _, body := do(t, "GET", ts.URL+"/docs/parts/watch?from=2&poll=1", "", nil)
	if code != http.StatusOK {
		t.Fatalf("poll: %d %s", code, body)
	}
	var out struct {
		Events []sseEvent `json:"events"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("poll JSON: %v", err)
	}
	if len(out.Events) != 2 || out.Events[0].Ver != 3 || out.Events[1].Ver != 4 {
		t.Fatalf("poll events: %s", body)
	}

	// A from far below the ring floor forces a resync event.
	big := newTestServer(t)
	do(t, "PUT", big.URL+"/docs/d", testDoc, nil)
	for i := 0; i < 70; i++ { // overflow the 64-entry ring
		upd := `transform copy $a := doc("d") modify do insert <mark/> into $a/db return $a`
		do(t, "POST", big.URL+"/docs/d/update", upd, nil)
	}
	code, _, body = do(t, "GET", big.URL+"/docs/d/watch?from=1&poll=1", "", nil)
	if code != http.StatusOK {
		t.Fatalf("resync poll: %d", code)
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil || len(out.Events) == 0 {
		t.Fatalf("resync poll body: %s", body)
	}
	if !out.Events[0].RS || out.Events[0].Ver != 71 {
		t.Fatalf("resync event: %s", body)
	}
}

func TestViewStatsHeader(t *testing.T) {
	ts := newTestServer(t)
	do(t, "PUT", ts.URL+"/docs/parts", testDoc, nil)
	do(t, "PUT", ts.URL+"/views/nosup",
		`["transform copy $a := doc(\"d\") modify do delete $a//supplier return $a"]`, nil)

	code, hdr, body := do(t, "GET", ts.URL+"/docs/parts/views/nosup?stats=1", "", nil)
	if code != http.StatusOK {
		t.Fatalf("view read: %d %s", code, body)
	}
	if src := hdr.Get("X-Xtq-View-Source"); src != "recompute" {
		t.Fatalf("first read source = %q", src)
	}
	var stats struct {
		Doc      string `json:"doc"`
		View     string `json:"view"`
		Version  uint64 `json:"version"`
		Source   string `json:"source"`
		CacheHit bool   `json:"cacheHit"`
		Full     int    `json:"fullCommits"`
	}
	if err := json.Unmarshal([]byte(hdr.Get("X-Xtq-View-Stats")), &stats); err != nil {
		t.Fatalf("stats header %q: %v", hdr.Get("X-Xtq-View-Stats"), err)
	}
	if stats.Doc != "parts" || stats.View != "nosup" || stats.Version != 1 || stats.Full != 1 {
		t.Fatalf("stats: %+v", stats)
	}
	if strings.Contains(body, "supplier") {
		t.Fatal("view leaked suppliers")
	}

	code, hdr, _ = do(t, "GET", ts.URL+"/docs/parts/views/nosup?stats=1", "", nil)
	if code != http.StatusOK || hdr.Get("X-Xtq-View-Source") != "cache" {
		t.Fatalf("second read: %d source=%q", code, hdr.Get("X-Xtq-View-Source"))
	}
}

// Torture: a writer streams commits while subscribers are killed and
// resumed with ?from catch-up; each subscriber chain must observe every
// version exactly once, with no gaps and no duplicates.
func TestWatchTortureReconnects(t *testing.T) {
	ts := newTestServer(t)
	do(t, "PUT", ts.URL+"/docs/parts", testDoc, nil)

	const commits = 60
	var writerErr atomic.Value
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		for i := 0; i < commits; i++ {
			upd := `transform copy $a := doc("parts") modify do insert <mark/> into $a/db return $a`
			if code, _, body := do(t, "POST", ts.URL+"/docs/parts/update", upd, nil); code != http.StatusOK {
				writerErr.Store(fmt.Sprintf("commit %d: %d %s", i, code, body))
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	last := uint64(1) // the ingest
	seen := map[uint64]int{}
	for last < commits+1 {
		ch, cancel := sseSubscribe(t, fmt.Sprintf("%s/docs/parts/watch?from=%d", ts.URL, last))
		// Consume a few events, then kill the connection and resume.
		for i := 0; i < 7 && last < commits+1; i++ {
			ev := nextEvent(t, ch)
			if ev.Type == "resync" {
				t.Fatalf("unexpected resync at %d: %+v", last, ev)
			}
			if ev.Type != "change" {
				continue
			}
			if ev.Ver != last+1 {
				t.Fatalf("gap or duplicate: got %d after %d", ev.Ver, last)
			}
			seen[ev.Ver]++
			last = ev.Ver
		}
		cancel()
	}
	<-writerDone
	if msg := writerErr.Load(); msg != nil {
		t.Fatal(msg)
	}
	for v := uint64(2); v <= commits+1; v++ {
		if seen[v] != 1 {
			t.Fatalf("version %d observed %d times", v, seen[v])
		}
	}
}
