package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"xtq"
)

const testDoc = `<db>` +
	`<part><pname>keyboard</pname><supplier><sname>HP</sname><price>15</price><country>US</country></supplier></part>` +
	`<part><pname>mouse</pname><supplier><sname>Dell</sname><price>9</price><country>A</country></supplier></part>` +
	`</db>`

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	st := xtq.NewStore(nil)
	ts := httptest.NewServer(newServer(st, 5*time.Second, 1<<20))
	t.Cleanup(ts.Close)
	return ts
}

func do(t *testing.T, method, url string, body string, hdr map[string]string) (int, http.Header, string) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	res, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	b, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	return res.StatusCode, res.Header, string(b)
}

func jsonField(t *testing.T, body, field string) float64 {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal([]byte(body), &m); err != nil {
		t.Fatalf("bad JSON %q: %v", body, err)
	}
	f, ok := m[field].(float64)
	if !ok {
		t.Fatalf("no numeric field %q in %s", field, body)
	}
	return f
}

func TestIngestQueryUpdateRoundTrip(t *testing.T) {
	ts := newTestServer(t)

	// Ingest.
	code, hdr, body := do(t, "PUT", ts.URL+"/docs/parts", testDoc, nil)
	if code != http.StatusCreated {
		t.Fatalf("ingest: %d %s", code, body)
	}
	if v := jsonField(t, body, "version"); v != 1 {
		t.Fatalf("ingest version = %v", v)
	}
	if hdr.Get("ETag") != `"1"` {
		t.Fatalf("ingest ETag = %q", hdr.Get("ETag"))
	}

	// Fetch the document back.
	code, hdr, got := do(t, "GET", ts.URL+"/docs/parts", "", nil)
	if code != http.StatusOK || got != testDoc {
		t.Fatalf("get: %d %q", code, got)
	}
	if hdr.Get("X-Xtq-Version") != "1" {
		t.Fatalf("get version header = %q", hdr.Get("X-Xtq-Version"))
	}

	// Query: a side-effect-free read.
	q := `transform copy $a := doc("parts") modify do delete $a//price return $a`
	code, hdr, res := do(t, "POST", ts.URL+"/docs/parts/query", q, nil)
	if code != http.StatusOK {
		t.Fatalf("query: %d %s", code, res)
	}
	if strings.Contains(res, "<price>") || !strings.Contains(res, "<pname>keyboard</pname>") {
		t.Fatalf("query result wrong: %s", res)
	}
	if hdr.Get("X-Xtq-Version") != "1" {
		t.Fatal("query must report the snapshot version it ran over")
	}
	// The document itself is untouched.
	if _, _, cur := do(t, "GET", ts.URL+"/docs/parts", "", nil); !strings.Contains(cur, "<price>") {
		t.Fatal("query mutated the document")
	}

	// The same query via the streaming evaluator.
	code, _, sres := do(t, "POST", ts.URL+"/docs/parts/query?stream=1", q, nil)
	if code != http.StatusOK || sres != res {
		t.Fatalf("stream query diverges: %d %q vs %q", code, sres, res)
	}

	// And per-method overrides agree.
	for _, m := range xtq.MethodNames() {
		code, _, mres := do(t, "POST", ts.URL+"/docs/parts/query?method="+m, q, nil)
		if code != http.StatusOK || mres != res {
			t.Fatalf("method %s diverges: %d %q", m, code, mres)
		}
	}

	// Update: the write path. Version advances.
	code, hdr, ub := do(t, "POST", ts.URL+"/docs/parts/update", q, nil)
	if code != http.StatusOK {
		t.Fatalf("update: %d %s", code, ub)
	}
	if v := jsonField(t, ub, "version"); v != 2 {
		t.Fatalf("update version = %v", v)
	}
	if jsonField(t, ub, "copied_nodes") == 0 {
		t.Fatal("copy-on-write commit reported no copied nodes")
	}
	if jsonField(t, ub, "shared_with_prev") == 0 {
		t.Fatal("path-copy commit shared nothing with the previous version")
	}
	if hdr.Get("ETag") != `"2"` {
		t.Fatalf("update ETag = %q", hdr.Get("ETag"))
	}
	if _, _, cur := do(t, "GET", ts.URL+"/docs/parts", "", nil); strings.Contains(cur, "<price>") {
		t.Fatal("update did not commit")
	}

	// Listing.
	code, _, lb := do(t, "GET", ts.URL+"/docs", "", nil)
	if code != http.StatusOK || !strings.Contains(lb, `"parts"`) {
		t.Fatalf("list: %d %s", code, lb)
	}

	// Delete.
	if code, _, _ := do(t, "DELETE", ts.URL+"/docs/parts", "", nil); code != http.StatusNoContent {
		t.Fatalf("delete: %d", code)
	}
	if code, _, _ := do(t, "GET", ts.URL+"/docs/parts", "", nil); code != http.StatusNotFound {
		t.Fatalf("get after delete: %d", code)
	}
}

func TestConditionalUpdateConflict(t *testing.T) {
	ts := newTestServer(t)
	do(t, "PUT", ts.URL+"/docs/d", testDoc, nil)
	up := `transform copy $a := doc("d") modify do insert <audit/> into $a/db/part return $a`

	// If-Match at the current version commits.
	code, _, body := do(t, "POST", ts.URL+"/docs/d/update", up, map[string]string{"If-Match": `"1"`})
	if code != http.StatusOK || jsonField(t, body, "version") != 2 {
		t.Fatalf("conditional update: %d %s", code, body)
	}
	// A stale If-Match is a 409 with kind conflict, and does not commit.
	code, _, body = do(t, "POST", ts.URL+"/docs/d/update", up, map[string]string{"If-Match": `"1"`})
	if code != http.StatusConflict || !strings.Contains(body, `"conflict"`) {
		t.Fatalf("stale update: %d %s", code, body)
	}
	// X-Xtq-Base-Version works the same way.
	code, _, _ = do(t, "POST", ts.URL+"/docs/d/update", up, map[string]string{"X-Xtq-Base-Version": "2"})
	if code != http.StatusOK {
		t.Fatalf("header-based conditional update: %d", code)
	}
	// If-Match: * means "any current representation" (RFC 9110): the
	// update commits unconditionally as long as the document exists.
	code, _, body = do(t, "POST", ts.URL+"/docs/d/update", up, map[string]string{"If-Match": "*"})
	if code != http.StatusOK || jsonField(t, body, "version") != 4 {
		t.Fatalf("If-Match *: %d %s", code, body)
	}
	if code, _, _ := do(t, "POST", ts.URL+"/docs/none/update", up, map[string]string{"If-Match": "*"}); code != http.StatusNotFound {
		t.Fatalf("If-Match * on missing doc: %d", code)
	}
	if code, _, _ := do(t, "POST", ts.URL+"/docs/d/update", up, map[string]string{"If-Match": `"zap"`}); code != http.StatusBadRequest {
		t.Fatalf("garbage If-Match: %d", code)
	}
}

func TestViewEndpoints(t *testing.T) {
	ts := newTestServer(t)
	do(t, "PUT", ts.URL+"/docs/parts", testDoc, nil)

	stack, err := json.Marshal([]string{
		`transform copy $a := doc("parts") modify do delete $a//price return $a`,
		`transform copy $a := doc("parts") modify do delete $a//country return $a`,
	})
	if err != nil {
		t.Fatal(err)
	}
	code, _, body := do(t, "PUT", ts.URL+"/views/public", string(stack), nil)
	if code != http.StatusCreated || !strings.Contains(body, `"layers": 2`) {
		t.Fatalf("register view: %d %s", code, body)
	}

	// Materialized view over the current snapshot.
	code, hdr, got := do(t, "GET", ts.URL+"/docs/parts/views/public", "", nil)
	if code != http.StatusOK {
		t.Fatalf("view: %d %s", code, got)
	}
	if strings.Contains(got, "<price>") || strings.Contains(got, "<country>") {
		t.Fatalf("view leaked hidden elements: %s", got)
	}
	if hdr.Get("X-Xtq-Version") != "1" {
		t.Fatal("view must carry the snapshot version")
	}

	// Composed user query over the view (single pass, no layer
	// materialized — the handler reports nodes visited).
	code, hdr, got = do(t, "GET",
		ts.URL+"/docs/parts/views/public?q="+
			"for+$x+in+/db/part/supplier+return+%3Centry%3E%7B$x/sname%7D%3C/entry%3E", "", nil)
	if code != http.StatusOK || !strings.Contains(got, "<sname>HP</sname>") {
		t.Fatalf("composed view query: %d %s", code, got)
	}
	if hdr.Get("X-Xtq-Nodes-Visited") == "" {
		t.Fatal("composed query must report stats")
	}

	// The view tracks updates: delete a supplier, the view follows.
	do(t, "POST", ts.URL+"/docs/parts/update",
		`transform copy $a := doc("parts") modify do delete $a//supplier[sname = "HP"] return $a`, nil)
	_, hdr, got = do(t, "GET", ts.URL+"/docs/parts/views/public", "", nil)
	if strings.Contains(got, "HP") || hdr.Get("X-Xtq-Version") != "2" {
		t.Fatalf("view did not follow the update: v=%s %s", hdr.Get("X-Xtq-Version"), got)
	}

	code, _, body = do(t, "GET", ts.URL+"/views", "", nil)
	if code != http.StatusOK || !strings.Contains(body, `"public"`) {
		t.Fatalf("list views: %d %s", code, body)
	}
	if code, _, _ := do(t, "DELETE", ts.URL+"/views/public", "", nil); code != http.StatusNoContent {
		t.Fatalf("delete view: %d", code)
	}
	if code, _, _ := do(t, "GET", ts.URL+"/docs/parts/views/public", "", nil); code != http.StatusNotFound {
		t.Fatalf("view after delete: %d", code)
	}
}

func TestErrorStatuses(t *testing.T) {
	ts := newTestServer(t)
	do(t, "PUT", ts.URL+"/docs/d", testDoc, nil)

	cases := []struct {
		name, method, path, body string
		want                     int
	}{
		{"missing doc query", "POST", "/docs/none/query", `transform copy $a := doc("d") modify do delete $a//x return $a`, 404},
		{"missing doc get", "GET", "/docs/none", "", 404},
		{"malformed query", "POST", "/docs/d/query", "not a query", 400},
		{"empty query", "POST", "/docs/d/query", "", 400},
		{"outside fragment", "POST", "/docs/d/query", `transform copy $a := doc("d") modify do delete $a/part/@id return $a`, 422},
		{"malformed update", "POST", "/docs/d/update", "nope", 400},
		{"malformed ingest", "PUT", "/docs/bad", "<db><open>", 400},
		{"bad view body", "PUT", "/views/v", "not json", 400},
		{"missing view", "GET", "/docs/d/views/none", "", 404},
		{"unknown method", "POST", "/docs/d/query?method=bogus", `transform copy $a := doc("d") modify do delete $a//x return $a`, 400},
		{"method combined with stream", "POST", "/docs/d/query?method=naive&stream=1", `transform copy $a := doc("d") modify do delete $a//x return $a`, 400},
	}
	for _, tc := range cases {
		code, _, body := do(t, tc.method, ts.URL+tc.path, tc.body, nil)
		if code != tc.want {
			t.Errorf("%s: status %d (want %d): %s", tc.name, code, tc.want, body)
		}
	}
}

// TestStreamErrorBeforeOutputReportsStatus pins that a streaming query
// failing before any byte is written returns a real error status, not
// 200 with an empty body: with a nanosecond request timeout the
// evaluation dies before the sink's first flush, so the handler can
// still report 504.
func TestStreamErrorBeforeOutputReportsStatus(t *testing.T) {
	st := xtq.NewStore(nil)
	ts := httptest.NewServer(newServer(st, time.Nanosecond, 1<<20))
	defer ts.Close()
	// Ingest through a store handle directly: the HTTP ingest would also
	// be killed by the nanosecond timeout.
	if _, _, err := st.Put(t.Context(), "d", xtq.FromString(testDoc)); err != nil {
		t.Fatal(err)
	}
	code, _, body := do(t, "POST", ts.URL+"/docs/d/query?stream=1",
		`transform copy $a := doc("d") modify do delete $a//price return $a`, nil)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("stream under expired deadline: %d %q, want 504", code, body)
	}
	if !strings.Contains(body, `"kind"`) {
		t.Fatalf("no error body: %q", body)
	}
}

// TestConcurrentHTTP hammers the server with parallel readers and one
// writer — the serving-layer version of the store's isolation tests.
func TestConcurrentHTTP(t *testing.T) {
	ts := newTestServer(t)
	do(t, "PUT", ts.URL+"/docs/d", testDoc, nil)
	q := `transform copy $a := doc("d") modify do rename $a//supplier as vendor return $a`
	up := `transform copy $a := doc("d") modify do insert <audit/> into $a/db/part return $a`

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				code, _, body := do(t, "POST", ts.URL+"/docs/d/query", q, nil)
				if code != http.StatusOK {
					panic(fmt.Sprintf("reader: %d %s", code, body))
				}
			}
		}()
	}
	for i := 0; i < 15; i++ {
		code, _, body := do(t, "POST", ts.URL+"/docs/d/update", up, nil)
		if code != http.StatusOK {
			t.Errorf("writer: %d %s", code, body)
			break
		}
	}
	close(stop)
	wg.Wait()
	_, hdr, _ := do(t, "GET", ts.URL+"/docs/d", "", nil)
	if hdr.Get("X-Xtq-Version") != "16" {
		t.Fatalf("final version = %s, want 16", hdr.Get("X-Xtq-Version"))
	}
}

const updateQ = `transform copy $a := doc("parts") modify do delete $a//price return $a`

// TestTimeTravelEndpoints drives GET ?version=N and /history over a
// WAL-backed server: old versions stay readable after commits, the
// history listing names them, and unknown versions 404.
func TestTimeTravelEndpoints(t *testing.T) {
	dir := t.TempDir()
	st, err := xtq.OpenStore(dir, nil, xtq.WithFsync(xtq.FsyncNone))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	ts := httptest.NewServer(newServer(st, 5*time.Second, 1<<20))
	t.Cleanup(ts.Close)

	if code, _, body := do(t, "PUT", ts.URL+"/docs/parts", testDoc, nil); code != http.StatusCreated {
		t.Fatalf("ingest: %d %s", code, body)
	}
	if code, _, body := do(t, "POST", ts.URL+"/docs/parts/update", updateQ, nil); code != http.StatusOK {
		t.Fatalf("update: %d %s", code, body)
	}

	// Version 1 still has prices; version 2 does not; the bare GET serves 2.
	code, hdr, body := do(t, "GET", ts.URL+"/docs/parts?version=1", "", nil)
	if code != http.StatusOK || !strings.Contains(body, "<price>") {
		t.Fatalf("v1: %d %s", code, body)
	}
	if hdr.Get("X-Xtq-Version") != "1" {
		t.Fatalf("v1 header = %q", hdr.Get("X-Xtq-Version"))
	}
	if code, _, body := do(t, "GET", ts.URL+"/docs/parts?version=2", "", nil); code != http.StatusOK || strings.Contains(body, "<price>") {
		t.Fatalf("v2: %d %s", code, body)
	}
	if code, _, _ := do(t, "GET", ts.URL+"/docs/parts?version=9", "", nil); code != http.StatusNotFound {
		t.Fatalf("future version: %d", code)
	}
	if code, _, _ := do(t, "GET", ts.URL+"/docs/parts?version=bogus", "", nil); code != http.StatusBadRequest {
		t.Fatalf("bad version: %d", code)
	}

	code, _, body = do(t, "GET", ts.URL+"/docs/parts/history", "", nil)
	if code != http.StatusOK {
		t.Fatalf("history: %d %s", code, body)
	}
	var hist struct {
		Name    string `json:"name"`
		Current uint64 `json:"current"`
		Floor   uint64 `json:"floor"`
		Entries []struct {
			Version  uint64 `json:"version"`
			Resident bool   `json:"resident"`
		} `json:"entries"`
	}
	if err := json.Unmarshal([]byte(body), &hist); err != nil {
		t.Fatalf("history JSON: %v", err)
	}
	if hist.Current != 2 || hist.Floor != 1 || len(hist.Entries) != 2 || !hist.Entries[0].Resident {
		t.Fatalf("history = %+v", hist)
	}
	if code, _, _ := do(t, "GET", ts.URL+"/docs/none/history", "", nil); code != http.StatusNotFound {
		t.Fatalf("missing-doc history: %d", code)
	}
}

// TestDurableServerSurvivesRestart is the serving-layer durability
// round trip: ingest + update through one server instance, tear it down
// (as a crash would), reopen the same WAL dir, and the document — and
// its version — are still there, including time-travel reads.
func TestDurableServerSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	st, err := xtq.OpenStore(dir, nil, xtq.WithFsync(xtq.FsyncInterval))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newServer(st, 5*time.Second, 1<<20))
	if code, _, body := do(t, "PUT", ts.URL+"/docs/parts", testDoc, nil); code != http.StatusCreated {
		t.Fatalf("ingest: %d %s", code, body)
	}
	if code, _, body := do(t, "POST", ts.URL+"/docs/parts/update", updateQ, nil); code != http.StatusOK {
		t.Fatalf("update: %d %s", code, body)
	}
	_, _, before := do(t, "GET", ts.URL+"/docs/parts", "", nil)
	ts.Close()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := xtq.OpenStore(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st2.Close() })
	ts2 := httptest.NewServer(newServer(st2, 5*time.Second, 1<<20))
	t.Cleanup(ts2.Close)

	code, hdr, after := do(t, "GET", ts2.URL+"/docs/parts", "", nil)
	if code != http.StatusOK || after != before {
		t.Fatalf("restart lost state: %d %q != %q", code, after, before)
	}
	if hdr.Get("X-Xtq-Version") != "2" {
		t.Fatalf("restart version = %q", hdr.Get("X-Xtq-Version"))
	}
	if code, _, body := do(t, "GET", ts2.URL+"/docs/parts?version=1", "", nil); code != http.StatusOK || !strings.Contains(body, "<price>") {
		t.Fatalf("time travel after restart: %d %s", code, body)
	}
	// And the chain keeps moving: a conditional update against v2 lands v3.
	if code, _, body := do(t, "POST", ts2.URL+"/docs/parts/update",
		`transform copy $a := doc("parts") modify do insert <audit/> into $a/db/part return $a`,
		map[string]string{"If-Match": `"2"`}); code != http.StatusOK {
		t.Fatalf("post-restart update: %d %s", code, body)
	} else if v := jsonField(t, body, "version"); v != 3 {
		t.Fatalf("post-restart version = %v", v)
	}
}
