package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"xtq"
	"xtq/internal/obs"
	"xtq/internal/sax"
)

// server routes HTTP requests onto one xtq.Store. All handlers are
// stateless beyond the store and safe for concurrent use; every request
// runs under a per-request timeout and is aborted at node/SAX-event
// granularity when the client disconnects.
type server struct {
	st      *xtq.Store
	timeout time.Duration
	maxBody int64
	// fol is set in follower mode: the replication handle behind st.
	// Write requests then redirect to fol.Primary() until promotion, and
	// reads honour X-Xtq-Min-Version by waiting up to catchup for
	// replication before redirecting themselves.
	fol     *xtq.Follower
	catchup time.Duration
	// heartbeat is the SSE keep-alive interval of /watch streams.
	heartbeat time.Duration
	// slow is the -slow-query-ms threshold; zero disables the
	// slow-query log.
	slow time.Duration
	// engines serves the ?method= override of the query endpoint: one
	// long-lived engine per evaluation method, each with its own query
	// cache, built up front so request handling never constructs one.
	engines map[string]*xtq.Engine
}

// role reports the node's current role for /metrics and /healthz: a
// follower flips to primary when promoted.
func (s *server) role() string {
	if s.fol != nil && !s.fol.Stats().Promoted {
		return "follower"
	}
	return "primary"
}

// newServer serves st as a standalone node or replication primary: when
// st is durable its WAL feed is mounted under /wal for followers to
// tail.
func newServer(st *xtq.Store, timeout time.Duration, maxBody int64) http.Handler {
	return buildServer(st, nil, timeout, maxBody, 0, 0, 0)
}

// newFollowerServer serves a follower replica: lock-free reads with
// read-your-writes waiting (bounded by catchup), writes redirected to
// the primary, and POST /admin/promote for failover.
func newFollowerServer(fol *xtq.Follower, timeout time.Duration, maxBody int64, catchup time.Duration) http.Handler {
	return buildServer(fol.Store(), fol, timeout, maxBody, catchup, 0, 0)
}

func buildServer(st *xtq.Store, fol *xtq.Follower, timeout time.Duration, maxBody int64, catchup, heartbeat, slow time.Duration) http.Handler {
	s := &server{st: st, timeout: timeout, maxBody: maxBody, fol: fol, catchup: catchup,
		heartbeat: heartbeat, slow: slow, engines: make(map[string]*xtq.Engine)}
	// One engine per requestable method (?method= swaps engines, so a
	// forced method never disturbs the serving engine's caches), plus
	// the planner's auto.
	for _, m := range append(xtq.Methods(), xtq.MethodAuto) {
		if m == st.Engine().Method() {
			s.engines[string(m)] = st.Engine()
		} else {
			s.engines[string(m)] = xtq.NewEngine(xtq.WithMethod(m))
		}
	}
	mux := http.NewServeMux()
	// handle registers a route behind the metrics middleware; the
	// pattern doubles as the route label of the request metrics.
	handle := func(pattern string, h http.HandlerFunc) {
		mux.Handle(pattern, instrument(pattern, s.slow, h))
	}
	if h := st.ReplicationHandler(); h != nil {
		mux.Handle("/wal/", instrument("/wal/", 0, http.StripPrefix("/wal", h)))
	}
	if fol != nil {
		handle("POST /admin/promote", s.handlePromote)
	}
	// /metrics stays outside the middleware: scrapes should not show up
	// in the request metrics they read.
	mux.HandleFunc("GET /metrics", serveMetrics(s.role))
	handle("GET /healthz", s.handleHealth)
	handle("GET /docs", s.handleListDocs)
	handle("PUT /docs/{name}", s.handlePutDoc)
	handle("GET /docs/{name}", s.handleGetDoc)
	handle("GET /docs/{name}/history", s.handleHistory)
	handle("DELETE /docs/{name}", s.handleDeleteDoc)
	handle("POST /docs/{name}/query", s.handleQuery)
	handle("POST /docs/{name}/update", s.handleUpdate)
	handle("GET /docs/{name}/views/{view}", s.handleDocView)
	handle("GET /docs/{name}/watch", s.handleWatch)
	handle("GET /views", s.handleListViews)
	handle("PUT /views/{view}", s.handlePutView)
	handle("DELETE /views/{view}", s.handleDeleteView)
	return mux
}

// ctx derives the per-request evaluation context: the client
// disconnecting or the server timeout elapsing cancels the in-flight
// parse/evaluation promptly.
func (s *server) ctx(r *http.Request) (context.Context, context.CancelFunc) {
	if s.timeout <= 0 {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), s.timeout)
}

// docMeta is the JSON shape of one document in listings and write
// responses.
type docMeta struct {
	Name    string `json:"name"`
	Version uint64 `json:"version"`
	Nodes   int    `json:"nodes"`
}

// commitMeta is the JSON shape of a successful write.
type commitMeta struct {
	docMeta
	CopiedNodes    int   `json:"copied_nodes"`
	CopiedBytes    int64 `json:"copied_bytes"`
	SharedWithPrev int   `json:"shared_with_prev,omitempty"`
	// Chunk-level sharing of the column store: a path-copy commit copies
	// the chunks its spine touches and shares the rest with the previous
	// version by reference.
	CopiedChunks int `json:"copied_chunks,omitempty"`
	SharedChunks int `json:"shared_chunks,omitempty"`
}

// commitJSON builds the write-response body from the request trace's
// commit section — the store's apply path fills it, and the put handler
// seeds it from the Commit value — falling back to the Commit value
// directly for writes outside a traced context. The trace is the one
// source the response JSON, EXPLAIN and the slow-query log all read.
func commitJSON(ctx context.Context, name string, snap *xtq.Snapshot, com xtq.Commit) commitMeta {
	meta := commitMeta{
		docMeta:        docMeta{Name: name, Version: com.Version, Nodes: snap.NumNodes()},
		CopiedNodes:    com.CopiedNodes,
		CopiedBytes:    com.CopiedBytes,
		SharedWithPrev: com.SharedWithPrev,
		CopiedChunks:   com.CopiedChunks,
		SharedChunks:   com.SharedChunks,
	}
	if tr := obs.TraceFrom(ctx); tr != nil {
		if ct := tr.Commit(); ct != nil {
			meta.Version = ct.Version
			meta.CopiedNodes = ct.CopiedNodes
			meta.CopiedBytes = ct.CopiedBytes
			meta.SharedWithPrev = ct.SharedWithPrev
			meta.CopiedChunks = ct.CopiedChunks
			meta.SharedChunks = ct.SharedChunks
		}
	}
	return meta
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeError maps the xtq error taxonomy onto HTTP statuses. Unknown
// errors are 500s; the typed kinds keep query authors (4xx) apart from
// operational failures (5xx).
func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	kind := "internal"
	var xe *xtq.Error
	if errors.As(err, &xe) {
		kind = xe.Kind.String()
		switch xe.Kind {
		case xtq.KindParse:
			status = http.StatusBadRequest
		case xtq.KindCompile:
			status = http.StatusUnprocessableEntity
		case xtq.KindNotFound:
			status = http.StatusNotFound
		case xtq.KindConflict:
			status = http.StatusConflict
		case xtq.KindEval:
			if errors.Is(err, context.DeadlineExceeded) {
				status = http.StatusGatewayTimeout
			}
		case xtq.KindIO:
			// Oversized ingests surface as IO errors wrapping the
			// http.MaxBytesError the limited reader produced.
			var mbe *http.MaxBytesError
			if errors.As(err, &mbe) {
				status = http.StatusRequestEntityTooLarge
			}
		}
	}
	writeJSON(w, status, map[string]string{"error": err.Error(), "kind": kind})
}

// readBody returns the request body as a string, bounded by maxBody.
func (s *server) readBody(w http.ResponseWriter, r *http.Request) (string, error) {
	b, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.maxBody))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return "", &xtq.Error{Kind: xtq.KindIO, Err: err}
		}
		return "", &xtq.Error{Kind: xtq.KindIO, Msg: "xtqd: reading request body", Err: err}
	}
	return string(b), nil
}

// trackingWriter records whether any byte reached the underlying
// writer, so streaming handlers know if an error can still become a
// proper HTTP status or only a truncated body.
type trackingWriter struct {
	w     io.Writer
	wrote bool
}

func (t *trackingWriter) Write(p []byte) (int, error) {
	if len(p) > 0 {
		t.wrote = true
	}
	return t.w.Write(p)
}

func versionHeaders(w http.ResponseWriter, snap *xtq.Snapshot) {
	v := strconv.FormatUint(snap.Version(), 10)
	w.Header().Set("ETag", `"`+v+`"`)
	w.Header().Set("X-Xtq-Version", v)
}

// baseVersion extracts the optimistic-concurrency base from If-Match
// (ETag syntax: a quoted version) or X-Xtq-Base-Version. Zero means
// unconditional — including `If-Match: *`, RFC 9110's "any current
// representation", whose existence check the store performs anyway.
func baseVersion(r *http.Request) (uint64, error) {
	raw := r.Header.Get("X-Xtq-Base-Version")
	if im := strings.TrimSpace(r.Header.Get("If-Match")); im != "" {
		if im == "*" {
			return 0, nil
		}
		raw = strings.Trim(im, `"`)
	}
	if raw == "" {
		return 0, nil
	}
	v, err := strconv.ParseUint(raw, 10, 64)
	if err != nil || v == 0 {
		return 0, &xtq.Error{Kind: xtq.KindParse, Msg: fmt.Sprintf("xtqd: bad base version %q", raw)}
	}
	return v, nil
}

// redirecting reports (and performs) the follower write redirect: an
// unpromoted follower rejects every mutation with a 307 pointing at the
// same path on the primary, so a client that retries verbatim lands on
// the node that can commit.
func (s *server) redirecting(w http.ResponseWriter, r *http.Request) bool {
	if s.fol == nil || !s.st.ReadOnly() {
		return false
	}
	http.Redirect(w, r, s.fol.Primary()+r.URL.RequestURI(), http.StatusTemporaryRedirect)
	return true
}

// minVersion parses the X-Xtq-Min-Version read-your-writes header;
// 0 means unconditional.
func minVersion(r *http.Request) (uint64, error) {
	raw := strings.TrimSpace(r.Header.Get("X-Xtq-Min-Version"))
	if raw == "" {
		return 0, nil
	}
	v, err := strconv.ParseUint(raw, 10, 64)
	if err != nil || v == 0 {
		return 0, &xtq.Error{Kind: xtq.KindParse, Msg: fmt.Sprintf("xtqd: bad X-Xtq-Min-Version %q", raw)}
	}
	return v, nil
}

// awaitMinVersion enforces read-your-writes on follower reads: a client
// that just committed version N on the primary reads back through this
// follower with X-Xtq-Min-Version: N, and the handler either waits
// (bounded by -catchup-wait) until replication reaches N or redirects
// the read to the primary (302 — the client retries there, where the
// version already exists). It reports whether the caller may proceed;
// on false the response has been written. On a primary or promoted
// node the local head is authoritative and the header is a no-op.
func (s *server) awaitMinVersion(w http.ResponseWriter, r *http.Request, name string) bool {
	v, err := minVersion(r)
	if err != nil {
		writeError(w, err)
		return false
	}
	if v == 0 || s.fol == nil || !s.st.ReadOnly() {
		return true
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.catchup)
	defer cancel()
	err = s.fol.WaitMinVersion(ctx, name, v)
	if err == nil {
		return true
	}
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		http.Redirect(w, r, s.fol.Primary()+r.URL.RequestURI(), http.StatusFound)
		return false
	}
	writeError(w, err) // sticky replication failure: typed Corrupt
	return false
}

// handlePromote makes a follower writable (failover). Idempotent; the
// response reports the final replication stats.
func (s *server) handlePromote(w http.ResponseWriter, r *http.Request) {
	s.fol.Promote()
	writeJSON(w, http.StatusOK, map[string]any{"promoted": true, "replication": s.fol.Stats()})
}

// handleHealth reports role-aware node status: the primary's WAL tail
// (segment, offset, records appended), a follower's replay position and
// lag in bytes and versions, and plain document counts everywhere —
// what the cluster smoke test and an operator's first curl both read.
func (s *server) handleHealth(w http.ResponseWriter, r *http.Request) {
	out := map[string]any{
		"ok":   true,
		"docs": s.st.Len(),
		// Observability vitals: process uptime, the metrics registry's
		// snapshot version (bumps whenever a new series appears), and the
		// slow-query count so "is it slow?" is one curl away.
		"uptime_seconds":  int64(obs.Default.Uptime().Seconds()),
		"metrics_version": obs.Default.Version(),
		"slow_queries":    mSlowQueries.Value(),
	}
	switch {
	case s.fol != nil:
		out["role"] = "follower"
		if s.fol.Stats().Promoted {
			out["role"] = "primary" // promoted: serving writes now
			out["promoted_from"] = s.fol.Primary()
		}
		out["primary"] = s.fol.Primary()
		stats := s.fol.Stats()
		out["replication"] = stats
		out["ok"] = stats.Err == ""
	default:
		out["role"] = "primary"
		if seg, off, recs, ok := s.st.WalTail(); ok {
			out["wal"] = map[string]any{"segment": seg, "offset": off, "records": recs}
		} else {
			out["durable"] = false
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *server) handleListDocs(w http.ResponseWriter, r *http.Request) {
	names := s.st.Names()
	docs := make([]docMeta, 0, len(names))
	for _, name := range names {
		if snap, err := s.st.Snapshot(name); err == nil {
			docs = append(docs, docMeta{Name: name, Version: snap.Version(), Nodes: snap.NumNodes()})
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"docs": docs})
}

func (s *server) handlePutDoc(w http.ResponseWriter, r *http.Request) {
	if s.redirecting(w, r) {
		return
	}
	ctx, cancel := s.ctx(r)
	defer cancel()
	name := r.PathValue("name")
	body := http.MaxBytesReader(w, r.Body, s.maxBody)
	snap, com, err := s.st.Put(ctx, name, xtq.FromReader(body))
	if err != nil {
		writeError(w, err)
		return
	}
	// The store's put path has no request context below the facade, so
	// the handler seeds the trace's commit section itself.
	if tr := obs.TraceFrom(ctx); tr != nil && tr.Commit() == nil {
		tr.SetCommit(&obs.CommitTrace{
			Kind: "put", Version: com.Version,
			CopiedNodes: com.CopiedNodes, CopiedBytes: com.CopiedBytes,
			CopiedChunks: com.CopiedChunks, SharedChunks: com.SharedChunks,
		})
	}
	versionHeaders(w, snap)
	status := http.StatusCreated
	if com.Version > 1 {
		status = http.StatusOK
	}
	writeJSON(w, status, commitJSON(ctx, name, snap, com))
}

// handleGetDoc serves the current snapshot, or — with ?version=N — a
// time-travel read: recent versions come from the in-memory history
// ring, older ones (on a WAL-backed server) are reconstructed by
// replaying the logged update queries from the last checkpoint.
func (s *server) handleGetDoc(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !s.awaitMinVersion(w, r, name) {
		return
	}
	var (
		snap *xtq.Snapshot
		err  error
	)
	if v := r.URL.Query().Get("version"); v != "" {
		version, perr := strconv.ParseUint(v, 10, 64)
		if perr != nil || version == 0 {
			writeError(w, &xtq.Error{Kind: xtq.KindParse, Msg: fmt.Sprintf("xtqd: bad version %q", v)})
			return
		}
		ctx, cancel := s.ctx(r)
		defer cancel()
		snap, err = s.st.SnapshotAt(ctx, name, version)
	} else {
		snap, err = s.st.Snapshot(name)
	}
	if err != nil {
		writeError(w, err)
		return
	}
	versionHeaders(w, snap)
	// If-None-Match: a cache revalidation against the served version.
	if inm := strings.TrimSpace(r.Header.Get("If-None-Match")); inm != "" {
		if strings.Trim(inm, `"`) == strconv.FormatUint(snap.Version(), 10) {
			w.WriteHeader(http.StatusNotModified)
			return
		}
	}
	w.Header().Set("Content-Type", "application/xml")
	snap.WriteXML(w)
}

// historyMeta is the JSON shape of GET /docs/{name}/history.
type historyMeta struct {
	Name    string            `json:"name"`
	Current uint64            `json:"current"`
	Floor   uint64            `json:"floor"`
	Entries []historyEntryOut `json:"entries"`
}

type historyEntryOut struct {
	Version  uint64 `json:"version"`
	Nodes    int    `json:"nodes"`
	Deleted  bool   `json:"deleted,omitempty"`
	Resident bool   `json:"resident"`
}

// handleHistory lists the versions GET ?version=N can serve: the
// memory-resident entries (newest first) and the floor, the oldest
// version reconstructable from the log.
func (s *server) handleHistory(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	entries, floor, err := s.st.History(name)
	if err != nil {
		writeError(w, err)
		return
	}
	out := historyMeta{Name: name, Floor: floor, Entries: make([]historyEntryOut, 0, len(entries))}
	if len(entries) > 0 {
		out.Current = entries[0].Version
	}
	for _, e := range entries {
		out.Entries = append(out.Entries, historyEntryOut{
			Version: e.Version, Nodes: e.Nodes, Deleted: e.Deleted, Resident: e.Resident,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *server) handleDeleteDoc(w http.ResponseWriter, r *http.Request) {
	if s.redirecting(w, r) {
		return
	}
	ok, err := s.st.Remove(r.PathValue("name"))
	if err != nil {
		writeError(w, err)
		return
	}
	if !ok {
		writeError(w, &xtq.Error{Kind: xtq.KindNotFound, Msg: "xtqd: no document " + strconv.Quote(r.PathValue("name"))})
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleQuery evaluates a transform query read from the body against
// the current snapshot of the document, streaming the result document
// through the Sink layer. ?method= overrides the engine's in-memory
// method; ?stream=1 uses the two-pass SAX evaluator instead, emitting
// output as it goes. Note that over an in-memory snapshot the streaming
// evaluator's two input passes each read a fresh serialization of the
// tree (Snapshot.Open), so stream=1 trades extra transient allocation
// for never materializing the result tree — its O(depth) guarantee is
// about evaluation state, not about the already-resident document.
func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := s.ctx(r)
	defer cancel()
	explain := explainRequested(r)
	if explain {
		if r.URL.Query().Get("stream") == "1" {
			// Streaming never materializes the result, so there is no
			// point in the stream an explain body could replace.
			writeError(w, &xtq.Error{Kind: xtq.KindParse,
				Msg: "xtqd: explain=1 cannot be combined with stream=1"})
			return
		}
		if obs.TraceFrom(ctx) == nil {
			ctx = obs.WithTrace(ctx, obs.NewTrace())
		}
	}
	src, err := s.readBody(w, r)
	if err != nil {
		writeError(w, err)
		return
	}
	if strings.TrimSpace(src) == "" {
		writeError(w, &xtq.Error{Kind: xtq.KindParse, Msg: "xtqd: empty query body"})
		return
	}
	if !s.awaitMinVersion(w, r, r.PathValue("name")) {
		return
	}
	snap, err := s.st.Snapshot(r.PathValue("name"))
	if err != nil {
		writeError(w, err)
		return
	}
	eng := s.st.Engine()
	if m := r.URL.Query().Get("method"); m != "" {
		if r.URL.Query().Get("stream") == "1" {
			// stream=1 always evaluates with twoPassSAX; silently
			// ignoring an explicit in-memory method would hand the
			// client a different evaluator than it asked to verify.
			writeError(w, &xtq.Error{Kind: xtq.KindParse,
				Msg: "xtqd: method= cannot be combined with stream=1 (streaming always uses the twoPassSAX evaluator)"})
			return
		}
		if _, err := xtq.ParseMethod(m); err != nil {
			// The unknown-method error is KindEval (it normally means a
			// misconfigured engine); here it is a client-supplied query
			// parameter, so surface it as a 400, not a 500.
			msg := err.Error()
			var ie *xtq.Error
			if errors.As(err, &ie) && ie.Msg != "" {
				msg = ie.Msg
			}
			writeError(w, &xtq.Error{Kind: xtq.KindParse, Msg: msg, Err: err})
			return
		}
		eng = s.engines[m]
	}
	p, err := eng.PrepareContext(ctx, src)
	if err != nil {
		writeError(w, err)
		return
	}

	if r.URL.Query().Get("stream") == "1" {
		versionHeaders(w, snap)
		w.Header().Set("Content-Type", "application/xml")
		// The sink buffers, so a failure before the first flush (a bad
		// evaluation, the timeout expiring mid-pass) can still report a
		// proper status; once bytes are on the wire a truncated body is
		// all a failure can leave behind.
		tw := &trackingWriter{w: w}
		if _, err := p.EvalStream(ctx, snap, xtq.ToWriter(tw)); err != nil {
			if !tw.wrote {
				w.Header().Del("Content-Type")
				writeError(w, err)
			}
			return
		}
		return
	}

	res, err := p.Eval(ctx, snap)
	if err != nil {
		writeError(w, err)
		return
	}
	if explain {
		out := explainFrom(obs.TraceFrom(ctx))
		out.Doc = r.PathValue("name")
		out.Version = snap.Version()
		out.ResultNodes = res.Size()
		versionHeaders(w, snap)
		writeJSON(w, http.StatusOK, out)
		return
	}
	writeResult(w, snap, res)
}

// writeResult serializes a result tree to the response through the Sink
// layer, stamping the snapshot version it was computed over. An Emit
// failure mid-write can only leave a truncated body (the status already
// went out with the first flush), so it is not separately reported.
func writeResult(w http.ResponseWriter, snap *xtq.Snapshot, res *xtq.Node) {
	versionHeaders(w, snap)
	w.Header().Set("Content-Type", "application/xml")
	sink := xtq.ToWriter(w)
	if err := sax.Emit(res, sink.Handler()); err != nil {
		return
	}
	sink.Flush()
}

// handleUpdate commits the update query in the body. If-Match: "v"
// (or X-Xtq-Base-Version: v) makes the commit conditional — 409 when
// the base version was superseded.
func (s *server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	if s.redirecting(w, r) {
		return
	}
	ctx, cancel := s.ctx(r)
	defer cancel()
	src, err := s.readBody(w, r)
	if err != nil {
		writeError(w, err)
		return
	}
	if strings.TrimSpace(src) == "" {
		writeError(w, &xtq.Error{Kind: xtq.KindParse, Msg: "xtqd: empty update body"})
		return
	}
	base, err := baseVersion(r)
	if err != nil {
		writeError(w, err)
		return
	}
	name := r.PathValue("name")
	var (
		snap *xtq.Snapshot
		com  xtq.Commit
	)
	if base != 0 {
		snap, com, err = s.st.ApplyAt(ctx, name, src, base)
	} else {
		snap, com, err = s.st.Apply(ctx, name, src)
	}
	if err != nil {
		writeError(w, err)
		return
	}
	versionHeaders(w, snap)
	if tr := obs.TraceFrom(ctx); tr != nil && explainRequested(r) {
		// ?explain=1 on a write swaps the bare commit body for the full
		// trace rendering: method (planner-resolved under Auto), plan
		// section and commit cost side by side.
		out := explainFrom(tr)
		out.Doc = name
		out.Version = snap.Version()
		writeJSON(w, http.StatusOK, out)
		return
	}
	writeJSON(w, http.StatusOK, commitJSON(ctx, name, snap, com))
}

// handleDocView serves a registered view stack over the current
// snapshot: the maintained materialization by default (served from the
// incremental-view cache when current — X-Xtq-View-Source says which
// path ran, ?stats=1 adds the full per-layer maintenance statistics as
// the X-Xtq-View-Stats JSON header), or — with ?q= — answering a user
// query composed with the stack in a single pass (no layer
// materialized).
func (s *server) handleDocView(w http.ResponseWriter, r *http.Request) {
	if !s.awaitMinVersion(w, r, r.PathValue("name")) {
		return
	}
	ctx, cancel := s.ctx(r)
	defer cancel()
	explain := explainRequested(r)
	if explain && obs.TraceFrom(ctx) == nil {
		ctx = obs.WithTrace(ctx, obs.NewTrace())
	}
	snap, err := s.st.Snapshot(r.PathValue("name"))
	if err != nil {
		writeError(w, err)
		return
	}

	var (
		res *xtq.Node
		// composedVisited carries the single-pass composition's own node
		// count into the explain body (its evaluator predates the trace's
		// visit counters).
		composedVisited int
	)
	if q := r.URL.Query().Get("q"); q != "" {
		v, err := s.st.LookupView(r.PathValue("view"))
		if err != nil {
			writeError(w, err)
			return
		}
		pv, err := v.Prepare(q)
		if err != nil {
			writeError(w, err)
			return
		}
		out, stats, err := pv.Eval(ctx, snap)
		if err != nil {
			writeError(w, err)
			return
		}
		w.Header().Set("X-Xtq-Nodes-Visited", strconv.Itoa(stats.NodesVisited))
		if tr := obs.TraceFrom(ctx); tr != nil && tr.Method() == "" {
			tr.SetMethod("composed")
		}
		composedVisited = stats.NodesVisited
		res = out
	} else {
		out, stats, err := s.st.ViewAt(ctx, snap, r.PathValue("view"))
		if err != nil {
			writeError(w, err)
			return
		}
		w.Header().Set("X-Xtq-View-Source", stats.Source)
		if r.URL.Query().Get("stats") == "1" {
			// The header serializes the trace's view section (the ivm
			// layer fills it; ViewTrace's JSON shape matches the historical
			// ivm.Stats marshaling), falling back to the returned stats for
			// requests outside a traced context.
			var payload any = stats
			if tr := obs.TraceFrom(ctx); tr != nil && tr.View() != nil {
				payload = tr.View()
			}
			if b, err := json.Marshal(payload); err == nil {
				w.Header().Set("X-Xtq-View-Stats", string(b))
			}
		}
		res = out
	}
	if explain {
		out := explainFrom(obs.TraceFrom(ctx))
		out.Doc = r.PathValue("name")
		out.Version = snap.Version()
		out.ResultNodes = res.Size()
		if out.NodesVisited == 0 {
			out.NodesVisited = composedVisited
		}
		versionHeaders(w, snap)
		writeJSON(w, http.StatusOK, out)
		return
	}
	writeResult(w, snap, res)
}

// viewMeta is the JSON shape of one registered view.
type viewMeta struct {
	Name   string `json:"name"`
	Layers int    `json:"layers"`
}

func (s *server) handleListViews(w http.ResponseWriter, r *http.Request) {
	names := s.st.ViewNames()
	views := make([]viewMeta, 0, len(names))
	for _, name := range names {
		if v, err := s.st.LookupView(name); err == nil {
			views = append(views, viewMeta{Name: name, Layers: v.Layers()})
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"views": views})
}

// handlePutView registers a view stack: the body is a JSON array of
// transform query strings, innermost layer first.
func (s *server) handlePutView(w http.ResponseWriter, r *http.Request) {
	body, err := s.readBody(w, r)
	if err != nil {
		writeError(w, err)
		return
	}
	var stack []string
	if err := json.Unmarshal([]byte(body), &stack); err != nil {
		writeError(w, &xtq.Error{Kind: xtq.KindParse, Msg: "xtqd: view body must be a JSON array of transform queries: " + err.Error()})
		return
	}
	v, err := s.st.RegisterView(r.PathValue("view"), stack...)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, viewMeta{Name: r.PathValue("view"), Layers: v.Layers()})
}

func (s *server) handleDeleteView(w http.ResponseWriter, r *http.Request) {
	if !s.st.RemoveView(r.PathValue("view")) {
		writeError(w, &xtq.Error{Kind: xtq.KindNotFound, Msg: "xtqd: no view " + strconv.Quote(r.PathValue("view"))})
		return
	}
	w.WriteHeader(http.StatusNoContent)
}
