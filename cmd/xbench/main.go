// Command xbench reproduces the experimental study of the paper (§7):
// one table per figure, generated on the fly from the XMark-like workload.
//
// Usage:
//
//	xbench -all                        # every figure at default scale
//	xbench -fig12                      # method comparison, factor 0.02
//	xbench -fig13 -factors 0.02,0.1,0.18,0.26,0.34
//	xbench -fig14 -fig14factors 2,4,6,8,10   # the paper's 224 MB-1.1 GB sweep
//	xbench -fig15 -repeats 5
//	xbench -claims                     # §7.1 textual claims
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"

	"xtq/internal/harness"
)

func parseFactors(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		f, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad factor %q: %w", p, err)
		}
		out = append(out, f)
	}
	return out, nil
}

func main() {
	fig11 := flag.Bool("fig11", false, "print the workload table (Fig. 11)")
	fig12 := flag.Bool("fig12", false, "method comparison at factor 0.02 (Fig. 12)")
	fig13 := flag.Bool("fig13", false, "scalability sweep (Fig. 13)")
	fig14 := flag.Bool("fig14", false, "twoPassSAX on large files (Fig. 14)")
	fig15 := flag.Bool("fig15", false, "composition methods (Fig. 15)")
	views := flag.Bool("views", false, "stacked-view sweep: single-pass vs sequential, per-layer stats")
	storeSweep := flag.Bool("store", false, "store throughput sweep: concurrent readers + 1 update writer over snapshots")
	walSweep := flag.Bool("wal", false, "durability sweep: commit latency/throughput across WAL fsync policies vs the in-memory store")
	ivmSweep := flag.Bool("ivm", false,
		"view-maintenance sweep: maintained hot-view reads vs recomposition, commit overhead by registry size, /watch fan-out; with -json the report replaces the standard sweep")
	soaSweep := flag.Bool("soa", false,
		"structure-of-arrays sweep: sealed-snapshot read latency + path-copy commit copy volume at factors 0.01 and 0.1; with -json the report replaces the standard sweep")
	soaSmoke := flag.Bool("soasmoke", false,
		"CI copy-tax check: fail unless copied bytes per commit stay below 10% of the document size on the alternating-rename workload")
	planSweep := flag.Bool("plan", false,
		"planner sweep: cost-based method choice vs every static method per embedded query, with estimated-vs-actual visits; with -json the report replaces the standard sweep")
	planSmoke := flag.Bool("plansmoke", false,
		"CI planner check: fail unless planning per evaluation stays within 25% of the best static method on every embedded query")
	obsSweep := flag.Bool("obs", false,
		"observability overhead sweep: hot read and commit latency with the metrics registry enabled vs killed; with -json the report replaces the standard sweep")
	obsSmoke := flag.Bool("obssmoke", false,
		"CI observability check: fail unless registry overhead on the hot read path stays below 2%")
	claims := flag.Bool("claims", false, "check the §7.1 textual claims")
	jsonOut := flag.String("json", "", "write a machine-readable sweep (ns/op, allocs/op) to the given path ('-' for stdout)")
	jsonFactor := flag.Float64("jsonfactor", 0.01, "XMark factor for the -json and -cluster sweeps")
	cluster := flag.Bool("cluster", false,
		"replication sweep: single-node vs 1-primary/N-follower read throughput and lag percentiles; with -json the report replaces the standard sweep")
	all := flag.Bool("all", false, "run everything")
	factors := flag.String("factors", "", "comma-separated factors for Fig. 13/15 (default 0.02..0.34)")
	fig14factors := flag.String("fig14factors", "", "comma-separated factors for Fig. 14 (default 0.1,0.2,0.4; paper used 2..10)")
	repeats := flag.Int("repeats", 3, "measurements per cell; the median is reported")
	seed := flag.Int64("seed", 42, "workload generator seed")
	tmp := flag.String("tmp", "", "directory for generated large files (default: system temp)")
	flag.Parse()

	fs, err := parseFactors(*factors)
	if err != nil {
		fmt.Fprintln(os.Stderr, "xbench:", err)
		os.Exit(2)
	}
	f14, err := parseFactors(*fig14factors)
	if err != nil {
		fmt.Fprintln(os.Stderr, "xbench:", err)
		os.Exit(2)
	}
	// Ctrl-C cancels the evaluation context: the in-flight measurement
	// aborts at node/SAX-event granularity and the sweep stops.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	r := harness.New(harness.Options{
		Out:          os.Stdout,
		Context:      ctx,
		Factors:      fs,
		Fig14Factors: f14,
		Repeats:      *repeats,
		Seed:         *seed,
		TempDir:      *tmp,
	})

	ran := false
	section := func(enabled bool, fn func()) {
		if (enabled || *all) && ctx.Err() == nil {
			fn()
			fmt.Println()
			ran = true
		}
	}
	section(*fig11, r.Fig11)
	section(*fig12, r.Fig12)
	section(*fig13, r.Fig13)
	section(*fig14, r.Fig14)
	section(*fig15, r.Fig15)
	section(*views, r.Views)
	section(*storeSweep, r.Store)
	section(*walSweep, r.WAL)
	section(*claims, r.Claims)
	if *ivmSweep && *jsonOut == "" {
		section(true, r.IVM)
	}
	if *soaSweep && *jsonOut == "" {
		section(true, r.SoA)
	}
	if *soaSmoke && ctx.Err() == nil {
		if _, err := r.SoASmoke(0.10); err != nil {
			fmt.Fprintln(os.Stderr, "xbench:", err)
			os.Exit(1)
		}
		ran = true
	}
	if *planSweep && *jsonOut == "" {
		section(true, r.Plan)
	}
	if *planSmoke && ctx.Err() == nil {
		if err := r.PlanSmoke(0.25); err != nil {
			fmt.Fprintln(os.Stderr, "xbench:", err)
			os.Exit(1)
		}
		ran = true
	}
	if *obsSweep && *jsonOut == "" {
		section(true, func() {
			if err := runObsTable(ctx, r, os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "xbench:", err)
				os.Exit(1)
			}
		})
	}
	if *obsSmoke && ctx.Err() == nil {
		if err := runObsSmoke(ctx, r, os.Stdout, 0.02); err != nil {
			fmt.Fprintln(os.Stderr, "xbench:", err)
			os.Exit(1)
		}
		ran = true
	}
	if *jsonOut != "" && ctx.Err() == nil {
		w := os.Stdout
		if *jsonOut != "-" {
			f, err := os.Create(*jsonOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, "xbench:", err)
				os.Exit(1)
			}
			defer f.Close()
			w = f
		}
		sweep := r.BenchJSON
		if *cluster {
			sweep = r.ClusterJSON
		}
		if *ivmSweep {
			sweep = r.IVMJSON
		}
		if *soaSweep {
			sweep = r.SoAJSON
		}
		if *planSweep {
			sweep = r.PlanJSON
		}
		if *obsSweep {
			sweep = func(w io.Writer, _ float64) error { return writeObsJSON(ctx, r, w) }
		}
		if err := sweep(w, *jsonFactor); err != nil {
			fmt.Fprintln(os.Stderr, "xbench:", err)
			os.Exit(1)
		}
		ran = true
	} else if *cluster && ctx.Err() == nil {
		if err := r.ClusterJSON(os.Stdout, *jsonFactor); err != nil {
			fmt.Fprintln(os.Stderr, "xbench:", err)
			os.Exit(1)
		}
		ran = true
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
	if ctx.Err() != nil {
		fmt.Fprintln(os.Stderr, "xbench: interrupted")
		os.Exit(130)
	}
}
