// Observability overhead measurements (`xbench -obs`, `-obssmoke`):
// the same hot read and commit workload as the store sweep, driven
// through the public facade (so every instrumented layer is on the
// path), measured with the metrics registry enabled and killed. These
// live in the command, not internal/harness: the harness cannot import
// the root package (the root's in-package benchmarks import the
// harness), and only the facade threads the registry everywhere.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"testing"
	"time"

	"xtq"
	"xtq/internal/harness"
	"xtq/internal/obs"
)

const (
	obsFactor = 0.01
	// obsReadQuery mirrors store/read/U2 of the -json sweep: the U2
	// insert transform evaluated over the current snapshot.
	obsReadQuery = `transform copy $a := doc("d") modify do insert <newnode><info>inserted</info></newnode> into $a/site/people/person[@id = "person10"] return $a`
	// The alternating rename pair of the store commit workload.
	obsRenameFwd  = `transform copy $a := doc("d") modify do rename $a/site/regions//item as item_ return $a`
	obsRenameBack = `transform copy $a := doc("d") modify do rename $a/site/regions//item_ as item return $a`
)

// obsBench is the facade-level workload pair of the overhead check.
type obsBench struct {
	ctx context.Context
	st  *xtq.Store
	p   *xtq.Prepared
	i   int
}

func newObsBench(ctx context.Context, r *harness.Runner) (*obsBench, error) {
	eng := xtq.NewEngine()
	st := xtq.NewStore(eng)
	if _, _, err := st.Put(ctx, "d", xtq.FromString(string(r.XML(obsFactor)))); err != nil {
		return nil, err
	}
	p, err := eng.Prepare(obsReadQuery)
	if err != nil {
		return nil, err
	}
	return &obsBench{ctx: ctx, st: st, p: p}, nil
}

// read is one hot-path read: lock-free snapshot plus an in-memory
// evaluation through the instrumented engine path.
func (o *obsBench) read() error {
	snap, err := o.st.Snapshot("d")
	if err != nil {
		return err
	}
	_, err = o.p.Eval(o.ctx, snap)
	return err
}

// commit is one alternating-rename commit through the instrumented
// store apply path.
func (o *obsBench) commit() error {
	q := obsRenameFwd
	if o.i%2 == 1 {
		q = obsRenameBack
	}
	o.i++
	_, _, err := o.st.Apply(o.ctx, "d", q)
	return err
}

// timeNs runs fn iters times and returns the mean ns per call.
func timeNs(fn func() error, iters int) (float64, error) {
	start := time.Now()
	for i := 0; i < iters; i++ {
		if err := fn(); err != nil {
			return 0, err
		}
	}
	return float64(time.Since(start).Nanoseconds()) / float64(iters), nil
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// obsOverhead measures the enabled/disabled ns-per-op ratio of fn:
// rounds alternate enabled and disabled back to back (so frequency
// scaling and cache state hit both sides alike), the per-mode medians
// make one trial, and the minimum overhead across trials is returned —
// the estimate least inflated by unrelated machine noise. CI asserts an
// upper bound, so the minimum is the robust choice: a single quiet
// trial proves the instrumentation itself is cheap.
func obsOverhead(fn func() error, trials, rounds, iters int) (minFrac, medFrac float64, enNs, disNs float64, err error) {
	defer obs.SetEnabled(true)
	// Warm-up: page in the corpus, fill the query cache, steady-state
	// the allocator before anything is timed.
	if _, err = timeNs(fn, iters); err != nil {
		return 0, 0, 0, 0, err
	}
	best := math.Inf(1)
	var ratios []float64
	for t := 0; t < trials; t++ {
		var en, dis []float64
		for round := 0; round < rounds; round++ {
			obs.SetEnabled(true)
			e, err := timeNs(fn, iters)
			if err != nil {
				return 0, 0, 0, 0, err
			}
			obs.SetEnabled(false)
			d, err := timeNs(fn, iters)
			if err != nil {
				return 0, 0, 0, 0, err
			}
			en = append(en, e)
			dis = append(dis, d)
		}
		me, md := median(en), median(dis)
		ratio := me/md - 1
		ratios = append(ratios, ratio)
		if ratio < best {
			best, enNs, disNs = ratio, me, md
		}
	}
	return best, median(ratios), enNs, disNs, nil
}

// runObsTable is the human-readable `-obs` sweep.
func runObsTable(ctx context.Context, r *harness.Runner, out io.Writer) error {
	o, err := newObsBench(ctx, r)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "observability overhead: registry enabled vs killed (factor %g, min of 3 trials)\n", obsFactor)
	for _, row := range []struct {
		name  string
		fn    func() error
		iters int
	}{
		{"read/U2", o.read, 30},
		{"commit/rename-items", o.commit, 20},
	} {
		frac, med, en, dis, err := obsOverhead(row.fn, 3, 6, row.iters)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "  %-20s enabled %8.1f us/op   disabled %8.1f us/op   overhead min %+.2f%% / median %+.2f%%\n",
			row.name, en/1e3, dis/1e3, 100*frac, 100*med)
	}
	return nil
}

// runObsSmoke is the CI gate (`-obssmoke`): the hot read path must not
// slow down by more than maxFrac with the registry enabled.
func runObsSmoke(ctx context.Context, r *harness.Runner, out io.Writer, maxFrac float64) error {
	o, err := newObsBench(ctx, r)
	if err != nil {
		return err
	}
	frac, med, en, dis, err := obsOverhead(o.read, 5, 6, 30)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "obs smoke: hot-read %0.1f us/op instrumented vs %0.1f us/op disabled — overhead min %+.2f%% / median %+.2f%% (limit %.0f%%)\n",
		en/1e3, dis/1e3, 100*frac, 100*med, 100*maxFrac)
	if frac > maxFrac {
		return fmt.Errorf("observability overhead regression: hot read path %.2f%% slower with the registry enabled (limit %.0f%%)",
			100*frac, 100*maxFrac)
	}
	return nil
}

// writeObsJSON emits the machine-readable overhead report, the format
// of BENCH_PR9.json: testing.Benchmark rows for the read and commit
// workloads in both modes, with the min-of-trials overhead fraction on
// the instrumented rows.
func writeObsJSON(ctx context.Context, r *harness.Runner, w io.Writer) error {
	o, err := newObsBench(ctx, r)
	if err != nil {
		return err
	}
	xml := r.XML(obsFactor)
	report := &harness.BenchReport{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Factor:    obsFactor,
		DocBytes:  len(xml),
		DocNodes:  r.Doc(obsFactor).Size(),
	}
	bench := func(name string, enabled bool, fn func() error) harness.BenchResult {
		obs.SetEnabled(enabled)
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := fn(); err != nil {
					panic(err)
				}
			}
		})
		obs.SetEnabled(true)
		return harness.BenchResult{
			Name:        name,
			N:           res.N,
			NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
		}
	}
	for _, row := range []struct {
		name  string
		fn    func() error
		iters int
	}{
		{"obs/read/U2", o.read, 30},
		{"obs/commit/rename-items", o.commit, 20},
	} {
		frac, med, _, _, err := obsOverhead(row.fn, 3, 6, row.iters)
		if err != nil {
			return err
		}
		en := bench(row.name+"/instrumented", true, row.fn)
		en.Extra = map[string]float64{
			// The interleaved enabled/disabled comparison; the plain
			// ns_per_op of the two rows ran minutes apart and carries
			// machine drift the interleaving cancels.
			"overhead_pct_min":    100 * frac,
			"overhead_pct_median": 100 * med,
		}
		dis := bench(row.name+"/disabled", false, row.fn)
		report.Results = append(report.Results, en, dis)
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("obs sweep interrupted: %w", err)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}
