// Command xmarkgen generates XMark-like auction documents for the
// benchmark harness (the substitute for the original xmlgen binary, see
// DESIGN.md).
//
// Usage:
//
//	xmarkgen -factor 0.02 -o xmark-0.02.xml
//	xmarkgen -factor 2 -seed 7 -o big.xml
package main

import (
	"flag"
	"fmt"
	"os"

	"xtq"
)

func main() {
	factor := flag.Float64("factor", 0.02, "XMark scaling factor (0.02 ≈ 2 MB, 1 ≈ 100 MB)")
	seed := flag.Int64("seed", 42, "generator seed; equal (factor, seed) yield identical documents")
	out := flag.String("o", "", "output file (required)")
	flag.Parse()
	if *out == "" {
		flag.Usage()
		os.Exit(2)
	}
	n, err := xtq.WriteXMarkFile(xtq.XMarkConfig{Factor: *factor, Seed: *seed}, *out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "xmarkgen:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: %.2f MB (factor %g, seed %d)\n", *out, float64(n)/1e6, *factor, *seed)
}
