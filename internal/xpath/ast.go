// Package xpath implements the XPath fragment X of Fan, Cong and Bohannon
// (SIGMOD 2007, §2):
//
//	p ::= ε | l | * | p/p | p//p | p[q]
//	q ::= p | p op 's' | label() = l | q and q | q or q | not(q)
//
// extended — as required by the paper's XMark workload (Fig. 11) — with
// attribute tests (@id = "person10") and the comparison operators
// =, !=, <, <=, >, >= over strings and numbers.
//
// The package provides a lexer and parser for the fragment, a direct
// recursive evaluator over tree documents (used by the Naive method and by
// topDown's checkp), the qualifier normal form of §5 and the QualDP
// dynamic-programming recurrence that the bottomUp and twoPassSAX
// algorithms build on.
package xpath

import "strings"

// Axis identifies the axis of a step. The fragment has downward modality
// only.
type Axis uint8

const (
	// Child is the default axis: l, * and ε[q]-steps move to children.
	Child Axis = iota
	// DescendantOrSelf is the '//' separator, i.e.
	// /descendant-or-self::node()/.
	DescendantOrSelf
	// Self is the ε (".") step.
	Self
	// Attribute is an @name step; permitted only as the final step of a
	// qualifier path.
	Attribute
)

// String returns a compact axis name.
func (a Axis) String() string {
	switch a {
	case Child:
		return "child"
	case DescendantOrSelf:
		return "descendant-or-self"
	case Self:
		return "self"
	case Attribute:
		return "attribute"
	default:
		return "invalid"
	}
}

// Step is one step of a path: an axis, a node test, and zero or more
// qualifiers.
type Step struct {
	Axis     Axis
	Label    string // label test, or attribute name for Attribute axis
	Wildcard bool   // '*' test (Child axis only)
	Quals    []Qual // the [q] qualifiers attached to this step
}

// Path is a parsed X expression: a sequence of steps evaluated left to
// right from a context node.
type Path struct {
	Steps []Step
}

// CmpOp is a comparison operator in a qualifier.
type CmpOp uint8

// Comparison operators. OpNone marks a pure existence test.
const (
	OpNone CmpOp = iota
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

// String returns the surface syntax of the operator.
func (op CmpOp) String() string {
	switch op {
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	default:
		return "?"
	}
}

// Qual is a qualifier expression.
type Qual interface {
	qual()
	// String renders the qualifier in surface syntax.
	String() string
}

// PathQual is an existence test: true iff the path selects at least one
// node (or the final attribute is present).
type PathQual struct {
	Path *Path
}

// CmpQual tests whether some node selected by Path has a value satisfying
// "value Op Lit". Comparison is numeric when both sides parse as numbers,
// lexicographic otherwise.
type CmpQual struct {
	Path *Path
	Op   CmpOp
	Lit  string
}

// LabelQual is the label() = l test on the context node.
type LabelQual struct {
	Label string
}

// AndQual is conjunction.
type AndQual struct {
	L, R Qual
}

// OrQual is disjunction.
type OrQual struct {
	L, R Qual
}

// NotQual is negation.
type NotQual struct {
	X Qual
}

// TrueQual is the trivial qualifier [true] that the automaton construction
// attaches to unqualified steps.
type TrueQual struct{}

func (*PathQual) qual()  {}
func (*CmpQual) qual()   {}
func (*LabelQual) qual() {}
func (*AndQual) qual()   {}
func (*OrQual) qual()    {}
func (*NotQual) qual()   {}
func (*TrueQual) qual()  {}

// String implements Qual.
func (q *PathQual) String() string { return q.Path.String() }

// String implements Qual.
func (q *CmpQual) String() string {
	return q.Path.String() + " " + q.Op.String() + " " + quoteLit(q.Lit)
}

// String implements Qual.
func (q *LabelQual) String() string { return "label() = " + quoteLit(q.Label) }

// String implements Qual.
func (q *AndQual) String() string { return "(" + q.L.String() + " and " + q.R.String() + ")" }

// String implements Qual.
func (q *OrQual) String() string { return "(" + q.L.String() + " or " + q.R.String() + ")" }

// String implements Qual.
func (q *NotQual) String() string { return "not(" + q.X.String() + ")" }

// String implements Qual.
func (q *TrueQual) String() string { return "true" }

func quoteLit(s string) string {
	if isNumber(s) {
		return s
	}
	return `"` + s + `"`
}

func isNumber(s string) bool {
	if s == "" {
		return false
	}
	dot := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == '-' && i == 0 && len(s) > 1 {
			continue
		}
		if c == '.' && !dot {
			dot = true
			continue
		}
		if c < '0' || c > '9' {
			return false
		}
	}
	return true
}

// String renders the path in surface syntax.
func (p *Path) String() string {
	if p == nil || len(p.Steps) == 0 {
		return "."
	}
	var b strings.Builder
	for i, s := range p.Steps {
		switch s.Axis {
		case DescendantOrSelf:
			if i == 0 {
				b.WriteString("//")
			} else {
				b.WriteString("//")
			}
			// '//' is a separator; its own test is implicit.
			writeQuals(&b, s.Quals)
			continue
		case Child:
			if i > 0 && p.Steps[i-1].Axis != DescendantOrSelf {
				b.WriteByte('/')
			} else if i > 0 {
				// previous '//' already wrote the separator
			}
			if s.Wildcard {
				b.WriteByte('*')
			} else {
				b.WriteString(s.Label)
			}
		case Self:
			if i > 0 && p.Steps[i-1].Axis != DescendantOrSelf {
				b.WriteByte('/')
			}
			b.WriteByte('.')
		case Attribute:
			if i > 0 && p.Steps[i-1].Axis != DescendantOrSelf {
				b.WriteByte('/')
			}
			b.WriteByte('@')
			b.WriteString(s.Label)
		}
		writeQuals(&b, s.Quals)
	}
	return b.String()
}

func writeQuals(b *strings.Builder, quals []Qual) {
	for _, q := range quals {
		b.WriteByte('[')
		b.WriteString(q.String())
		b.WriteByte(']')
	}
}

// HasAttributeStep reports whether any step of the selecting path (not
// inside qualifiers) is an attribute step. Transform queries cannot target
// attributes, so callers reject such paths.
func (p *Path) HasAttributeStep() bool {
	for _, s := range p.Steps {
		if s.Axis == Attribute {
			return true
		}
	}
	return false
}

// Clone returns a deep copy of the path (qualifiers are immutable and
// shared).
func (p *Path) Clone() *Path {
	steps := make([]Step, len(p.Steps))
	copy(steps, p.Steps)
	return &Path{Steps: steps}
}
