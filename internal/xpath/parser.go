package xpath

// Parser for the X fragment. Grammar (op ∈ {=, !=, <, <=, >, >=}):
//
//	path    := ('/' | '//')? step (('/' | '//') step)*
//	step    := (name | '*' | '.' | '@'name) ('[' qual ']')*
//	qual    := orExpr
//	orExpr  := andExpr ('or' andExpr)*
//	andExpr := unary ('and' unary)*
//	unary   := 'not' '(' qual ')' | '(' qual ')' | atom
//	atom    := 'label' '(' ')' '=' literal | path (op literal)?
//	literal := string | number
//
// A leading '/' anchors at the context node (which is the document node for
// paths embedded in transform queries) and is otherwise a no-op; a leading
// '//' contributes a descendant-or-self step.

import "fmt"

type parser struct {
	lex *lexer
	tok token
}

// Parse parses an X expression.
func Parse(src string) (*Path, error) {
	p := &parser{lex: &lexer{src: src}}
	if err := p.advance(); err != nil {
		return nil, err
	}
	path, err := p.parsePath()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, p.errf("unexpected %s after path", p.tok.kind)
	}
	return path, nil
}

// MustParse parses src and panics on error; for tests and static queries.
func MustParse(src string) *Path {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

func (p *parser) errf(format string, args ...any) error {
	return &SyntaxError{Expr: p.lex.src, Pos: p.tok.pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) advance() error {
	tok, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = tok
	return nil
}

func (p *parser) parsePath() (*Path, error) {
	path := &Path{}
	switch p.tok.kind {
	case tokSlash:
		if err := p.advance(); err != nil {
			return nil, err
		}
	case tokDoubleSlash:
		path.Steps = append(path.Steps, Step{Axis: DescendantOrSelf})
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if err := p.parseStep(path); err != nil {
		return nil, err
	}
	for {
		switch p.tok.kind {
		case tokSlash:
			if err := p.advance(); err != nil {
				return nil, err
			}
		case tokDoubleSlash:
			path.Steps = append(path.Steps, Step{Axis: DescendantOrSelf})
			if err := p.advance(); err != nil {
				return nil, err
			}
		default:
			return path, nil
		}
		if err := p.parseStep(path); err != nil {
			return nil, err
		}
	}
}

func (p *parser) parseStep(path *Path) error {
	var step Step
	switch p.tok.kind {
	case tokIdent:
		step = Step{Axis: Child, Label: p.tok.text}
	case tokStar:
		step = Step{Axis: Child, Wildcard: true}
	case tokDot:
		step = Step{Axis: Self}
	case tokAt:
		if err := p.advance(); err != nil {
			return err
		}
		if p.tok.kind != tokIdent {
			return p.errf("expected attribute name after '@', got %s", p.tok.kind)
		}
		step = Step{Axis: Attribute, Label: p.tok.text}
	default:
		return p.errf("expected a step, got %s", p.tok.kind)
	}
	if err := p.advance(); err != nil {
		return err
	}
	for p.tok.kind == tokLBracket {
		if err := p.advance(); err != nil {
			return err
		}
		q, err := p.parseQual()
		if err != nil {
			return err
		}
		if p.tok.kind != tokRBracket {
			return p.errf("expected ']', got %s", p.tok.kind)
		}
		if err := p.advance(); err != nil {
			return err
		}
		step.Quals = append(step.Quals, q)
	}
	if step.Axis == Attribute && len(step.Quals) > 0 {
		return p.errf("attribute steps cannot carry qualifiers")
	}
	path.Steps = append(path.Steps, step)
	return nil
}

func (p *parser) parseQual() (Qual, error) {
	return p.parseOr()
}

func (p *parser) parseOr() (Qual, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokIdent && p.tok.text == "or" {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &OrQual{L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Qual, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokIdent && p.tok.text == "and" {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &AndQual{L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseUnary() (Qual, error) {
	switch {
	case p.tok.kind == tokIdent && p.tok.text == "not":
		// 'not' is a function call; "not" followed by anything other
		// than '(' is a name step.
		save := *p.lex
		savedTok := p.tok
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind != tokLParen {
			*p.lex = save
			p.tok = savedTok
			return p.parseAtom()
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		inner, err := p.parseQual()
		if err != nil {
			return nil, err
		}
		if p.tok.kind != tokRParen {
			return nil, p.errf("expected ')' to close not(...), got %s", p.tok.kind)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &NotQual{X: inner}, nil
	case p.tok.kind == tokLParen:
		if err := p.advance(); err != nil {
			return nil, err
		}
		inner, err := p.parseQual()
		if err != nil {
			return nil, err
		}
		if p.tok.kind != tokRParen {
			return nil, p.errf("expected ')', got %s", p.tok.kind)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		return inner, nil
	default:
		return p.parseAtom()
	}
}

func (p *parser) parseAtom() (Qual, error) {
	if p.tok.kind == tokIdent && p.tok.text == "label" {
		save := *p.lex
		savedTok := p.tok
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind == tokLParen {
			if err := p.advance(); err != nil {
				return nil, err
			}
			if p.tok.kind != tokRParen {
				return nil, p.errf("expected ')' in label(), got %s", p.tok.kind)
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
			if p.tok.kind != tokEq {
				return nil, p.errf("expected '=' after label(), got %s", p.tok.kind)
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
			if p.tok.kind != tokString && p.tok.kind != tokIdent {
				return nil, p.errf("expected a label after label() =, got %s", p.tok.kind)
			}
			label := p.tok.text
			if err := p.advance(); err != nil {
				return nil, err
			}
			return &LabelQual{Label: label}, nil
		}
		// "label" used as an element name; rewind.
		*p.lex = save
		p.tok = savedTok
	}
	path, err := p.parsePath()
	if err != nil {
		return nil, err
	}
	var op CmpOp
	switch p.tok.kind {
	case tokEq:
		op = OpEq
	case tokNe:
		op = OpNe
	case tokLt:
		op = OpLt
	case tokLe:
		op = OpLe
	case tokGt:
		op = OpGt
	case tokGe:
		op = OpGe
	default:
		return &PathQual{Path: path}, nil
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	if p.tok.kind != tokString && p.tok.kind != tokNumber {
		return nil, p.errf("expected a literal after %s, got %s", op, p.tok.kind)
	}
	lit := p.tok.text
	if err := p.advance(); err != nil {
		return nil, err
	}
	return &CmpQual{Path: path, Op: op, Lit: lit}, nil
}
