package xpath

import (
	"math/rand"
	"testing"

	"xtq/internal/sax"
	"xtq/internal/tree"
)

// fig1 is the document of Fig. 1 of the paper.
const fig1 = `<db>
<part><pname>keyboard</pname>
  <supplier><sname>HP</sname><price>15</price><country>US</country></supplier>
  <supplier><sname>Logi</sname><price>12</price><country>A</country></supplier>
  <subPart><part><pname>key</pname>
    <supplier><sname>Acme</sname><price>2</price><country>CN</country></supplier>
  </part></subPart>
</part>
<part><pname>mouse</pname>
  <supplier><sname>Dell</sname><price>9</price><country>A</country></supplier>
</part>
</db>`

func parseDoc(t *testing.T, s string) *tree.Node {
	t.Helper()
	doc, err := sax.ParseString(s)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return doc
}

func sel(t *testing.T, doc *tree.Node, expr string) []*tree.Node {
	t.Helper()
	return Select(doc, MustParse(expr))
}

func labels(nodes []*tree.Node) []string {
	out := make([]string, len(nodes))
	for i, n := range nodes {
		out[i] = n.Label
	}
	return out
}

func TestSelectChildPaths(t *testing.T) {
	doc := parseDoc(t, fig1)
	if got := sel(t, doc, "db/part"); len(got) != 2 {
		t.Errorf("db/part: %d nodes, want 2", len(got))
	}
	if got := sel(t, doc, "db/part/pname"); len(got) != 2 {
		t.Errorf("db/part/pname: %d, want 2", len(got))
	}
	if got := sel(t, doc, "db/nosuch"); len(got) != 0 {
		t.Errorf("db/nosuch: %d, want 0", len(got))
	}
	if got := sel(t, doc, "part"); len(got) != 0 {
		t.Errorf("part at document: %d, want 0 (db is the root)", len(got))
	}
}

func TestSelectDescendant(t *testing.T) {
	doc := parseDoc(t, fig1)
	if got := sel(t, doc, "//part"); len(got) != 3 {
		t.Errorf("//part: %d, want 3", len(got))
	}
	if got := sel(t, doc, "//price"); len(got) != 4 {
		t.Errorf("//price: %d, want 4", len(got))
	}
	if got := sel(t, doc, "//part//part"); len(got) != 1 {
		t.Errorf("//part//part: %d, want 1", len(got))
	}
	if got := sel(t, doc, "db//supplier/price"); len(got) != 4 {
		t.Errorf("db//supplier/price: %d, want 4", len(got))
	}
	// '//' must not produce duplicates.
	if got := sel(t, doc, "//db//price"); len(got) != 4 {
		t.Errorf("//db//price: %d, want 4", len(got))
	}
}

func TestSelectWildcardAndSelf(t *testing.T) {
	doc := parseDoc(t, fig1)
	if got := sel(t, doc, "db/part/*"); len(got) != 4+2 {
		t.Errorf("db/part/*: %d, want 6", len(got))
	}
	if got := sel(t, doc, "db/."); len(got) != 1 || got[0].Label != "db" {
		t.Errorf("db/. = %v", labels(got))
	}
	if got := sel(t, doc, "."); len(got) != 1 || got[0].Kind != tree.Document {
		t.Errorf(". should select the context node")
	}
}

func TestSelectQualifiers(t *testing.T) {
	doc := parseDoc(t, fig1)
	cases := []struct {
		expr string
		want int
	}{
		{`db/part[pname = "keyboard"]`, 1},
		{`db/part[pname = "nothing"]`, 0},
		{`//part[pname]`, 3},
		{`//supplier[price < 10]`, 2},
		{`//supplier[price <= 9]`, 2},
		{`//supplier[price > 10]`, 2},
		{`//supplier[price >= 12]`, 2},
		{`//supplier[price != 15]`, 3},
		{`//supplier[country = "A"]`, 2},
		{`//supplier[country = "A" and price < 10]`, 1},
		{`//supplier[country = "A" or price = 2]`, 3},
		{`//supplier[not(country = "A")]`, 2},
		{`//part[supplier/sname = "HP"]`, 1},
		{`//part[not(supplier/sname = "HP") and not(supplier/price < 15)]`, 0},
		{`//part[not(supplier/sname = "HP")]`, 2},
		{`//part[subPart/part]`, 1},
		{`//part[.//supplier]`, 3},
		{`//part[label() = "part"]`, 3},
		{`//part[label() = "supplier"]`, 0},
		{`//*[label() = "supplier"]`, 4},
		{`//part[. = ""]`, 3}, // parts have no direct text
		{`//pname[. = "keyboard"]`, 1},
	}
	for _, tc := range cases {
		if got := sel(t, doc, tc.expr); len(got) != tc.want {
			t.Errorf("%s: %d nodes (%v), want %d", tc.expr, len(got), labels(got), tc.want)
		}
	}
}

func TestSelectAttributes(t *testing.T) {
	doc := parseDoc(t, `<site><people>
		<person id="person0"><name>Ada</name></person>
		<person id="person10"><name>Bob</name></person>
		<person><name>Anon</name></person>
	</people></site>`)
	cases := []struct {
		expr string
		want int
	}{
		{`site/people/person[@id = "person10"]`, 1},
		{`site/people/person[@id]`, 2},
		{`site/people/person[not(@id)]`, 1},
		{`site/people/person[@id != "person10"]`, 1},
		{`site/people/person[@nope]`, 0},
	}
	for _, tc := range cases {
		if got := sel(t, doc, tc.expr); len(got) != tc.want {
			t.Errorf("%s: %d, want %d", tc.expr, len(got), tc.want)
		}
	}
	// Attribute steps in selection paths select nothing.
	if got := sel(t, doc, "site/people/person/@id"); len(got) != 0 {
		t.Errorf("selection path with attribute step returned %d nodes", len(got))
	}
}

func TestSelectDocumentOrder(t *testing.T) {
	doc := parseDoc(t, fig1)
	got := sel(t, doc, "//sname")
	want := []string{"HP", "Logi", "Acme", "Dell"}
	if len(got) != len(want) {
		t.Fatalf("got %d snames", len(got))
	}
	for i, n := range got {
		if n.Value() != want[i] {
			t.Errorf("sname[%d] = %q, want %q (document order)", i, n.Value(), want[i])
		}
	}
}

func TestExample31(t *testing.T) {
	// p1 = //part[q1]//part[q2] from Example 3.1: parts below a keyboard
	// part such that no supplier is HP and no supplier has price < 15.
	doc := parseDoc(t, fig1)
	p1 := `//part[pname = "keyboard"]//part[not(supplier/sname = "HP") and not(supplier/price < 15)]`
	got := sel(t, doc, p1)
	// The inner "key" part has supplier Acme at price 2 → price<15 → excluded.
	if len(got) != 0 {
		t.Errorf("p1 selected %v, want none", labels(got))
	}
	// Relax the price bound: now the inner part qualifies.
	p2 := `//part[pname = "keyboard"]//part[not(supplier/sname = "HP") and not(supplier/price < 2)]`
	got = sel(t, doc, p2)
	if len(got) != 1 || got[0].Children[0].Value() != "key" {
		t.Errorf("p2 selected %v, want the inner part", labels(got))
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		v    string
		op   CmpOp
		lit  string
		want bool
	}{
		{"15", OpEq, "15", true},
		{"15", OpEq, "15.0", true}, // numeric comparison
		{"15", OpNe, "15.0", false},
		{"9", OpLt, "10", true},
		{"9", OpLt, "10 ", true},
		{"abc", OpEq, "abc", true},
		{"abc", OpLt, "abd", true},
		{"10", OpGt, "9", true}, // numeric: 10 > 9
		{"10", OpGe, "10", true},
		{"10", OpLe, "10", true},
		{"x10", OpGt, "x9", false}, // string: "x10" < "x9"
		{"", OpEq, "", true},
		{"1.5", OpGt, "1.25", true},
		{"-3", OpLt, "0", true},
		{"United States", OpEq, "United States", true},
		{"5", OpNone, "5", false}, // OpNone never holds
	}
	for _, tc := range cases {
		if got := Compare(tc.v, tc.op, tc.lit); got != tc.want {
			t.Errorf("Compare(%q %s %q) = %v, want %v", tc.v, tc.op, tc.lit, got, tc.want)
		}
	}
}

func TestEvalQualUnknownType(t *testing.T) {
	if EvalQual(tree.NewElement("a"), nil) {
		t.Errorf("nil qualifier should evaluate to false")
	}
}

func TestSelectEmptyFrontierShortCircuit(t *testing.T) {
	doc := parseDoc(t, fig1)
	if got := sel(t, doc, "nosuch/part/pname"); got != nil {
		t.Errorf("got %v, want nil", labels(got))
	}
}

// --- QualDP / normal form tests ---

func TestNormalizeExample51(t *testing.T) {
	// Example 5.1: the qualifier list for p1 of Example 3.1 contains the
	// nine sub-expressions q1..q9 (modulo interning of shared structure).
	p := MustParse(`//part[pname = "keyboard"]//part[not(supplier/sname = "HP") and not(supplier/price < 15)]`)
	lq := NewLQ()
	var ids []int
	for _, s := range p.Steps {
		id, err := lq.AddQuals(s.Quals)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if lq.Len() < 9 {
		t.Errorf("LQ has %d expressions, want at least the 9 of Example 5.1", lq.Len())
	}
	// Sub-expressions precede containing expressions.
	for _, e := range lq.Exprs {
		if e.A >= e.ID || e.B >= e.ID {
			t.Errorf("expression %d references later sub-expression (%d, %d)", e.ID, e.A, e.B)
		}
	}
	// Closure of the final step's qualifier includes itself and is sorted.
	cl := lq.Closure([]int{ids[len(ids)-1]})
	for i := 1; i < len(cl); i++ {
		if cl[i-1] >= cl[i] {
			t.Errorf("closure not sorted: %v", cl)
		}
	}
}

func TestNormalizeInterning(t *testing.T) {
	lq := NewLQ()
	q := MustParse(`a[b = "x"]`).Steps[0].Quals[0]
	id1, err := lq.AddQual(q)
	if err != nil {
		t.Fatal(err)
	}
	n := lq.Len()
	id2, err := lq.AddQual(q)
	if err != nil {
		t.Fatal(err)
	}
	if id1 != id2 || lq.Len() != n {
		t.Errorf("re-adding identical qualifier changed LQ: %d → %d ids, %d exprs", id1, id2, lq.Len())
	}
}

func TestNormalizeAttrMidPathRejected(t *testing.T) {
	lq := NewLQ()
	q := &PathQual{Path: &Path{Steps: []Step{
		{Axis: Attribute, Label: "id"},
		{Axis: Child, Label: "b"},
	}}}
	if _, err := lq.AddQual(q); err == nil {
		t.Errorf("attribute step in non-final position should be rejected")
	}
}

func TestLQStringCoverage(t *testing.T) {
	lq := NewLQ()
	quals := []string{
		`a[b = "x"]`, `a[.//c > 3]`, `a[not(b) and (c or d)]`,
		`a[@id]`, `a[@id = "z"]`, `a[label() = "l"]`, `a[. = "v"]`,
	}
	for _, s := range quals {
		q := MustParse(s).Steps[0].Quals[0]
		id, err := lq.AddQual(q)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if lq.String(id) == "" || lq.String(id) == "?" {
			t.Errorf("%s: bad rendering %q", s, lq.String(id))
		}
	}
}

// Property: for random documents and random qualifiers, the QualDP
// bottom-up evaluation agrees with direct recursive evaluation at every
// element node. This validates the dynamic program of Fig. 7 against the
// reference semantics.
func TestQualDPMatchesDirectEval(t *testing.T) {
	genOpts := tree.DefaultGenOptions()
	cfg := DefaultGenConfig()
	for seed := int64(0); seed < 150; seed++ {
		rng := rand.New(rand.NewSource(seed))
		doc := tree.Generate(rng, genOpts)
		q := RandomQual(rng, cfg)
		lq := NewLQ()
		id, err := lq.AddQual(q)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		checkQualDPNode(t, seed, doc.Root(), q, lq, id)
	}
}

func checkQualDPNode(t *testing.T, seed int64, n *tree.Node, q Qual, lq *LQ, id int) {
	t.Helper()
	sat := lq.EvalAll(n)
	want := EvalQual(n, q)
	if sat[id] != want {
		t.Fatalf("seed %d: QualDP=%v direct=%v at %s for qualifier %s",
			seed, sat[id], want, n.Label, q.String())
	}
	for _, c := range n.Children {
		if c.Kind == tree.Element {
			checkQualDPNode(t, seed, c, q, lq, id)
		}
	}
}

// Property: step qualifiers of random full paths agree between QualDP and
// direct evaluation (exercises qualifier lists with shared sub-expressions
// across steps).
func TestQualDPMatchesDirectEvalPerStep(t *testing.T) {
	genOpts := tree.DefaultGenOptions()
	cfg := DefaultGenConfig()
	for seed := int64(1000); seed < 1100; seed++ {
		rng := rand.New(rand.NewSource(seed))
		doc := tree.Generate(rng, genOpts)
		p := RandomPath(rng, cfg)
		lq := NewLQ()
		type stepQual struct {
			id    int
			quals []Qual
		}
		var sqs []stepQual
		for _, s := range p.Steps {
			if len(s.Quals) == 0 {
				continue
			}
			id, err := lq.AddQuals(s.Quals)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			sqs = append(sqs, stepQual{id: id, quals: s.Quals})
		}
		if len(sqs) == 0 {
			continue
		}
		var walk func(n *tree.Node)
		walk = func(n *tree.Node) {
			sat := lq.EvalAll(n)
			for _, sq := range sqs {
				want := true
				for _, q := range sq.quals {
					if !EvalQual(n, q) {
						want = false
						break
					}
				}
				if sat[sq.id] != want {
					t.Fatalf("seed %d: mismatch at %s: QualDP=%v direct=%v", seed, n.Label, sat[sq.id], want)
				}
			}
			for _, c := range n.Children {
				if c.Kind == tree.Element {
					walk(c)
				}
			}
		}
		walk(doc.Root())
	}
}

func TestClosureSubset(t *testing.T) {
	lq := NewLQ()
	idA, _ := lq.AddQual(MustParse(`x[a/b = "1"]`).Steps[0].Quals[0])
	idB, _ := lq.AddQual(MustParse(`x[c]`).Steps[0].Quals[0])
	clA := lq.Closure([]int{idA})
	clAll := lq.Closure([]int{idA, idB})
	if len(clA) >= len(clAll) {
		t.Errorf("closure of one root (%d) should be smaller than of both (%d)", len(clA), len(clAll))
	}
	if got := lq.Closure(nil); len(got) != 0 {
		t.Errorf("closure of no roots = %v", got)
	}
}
