package xpath

import "math/rand"

// GenConfig drives the random query generator used by property tests (both
// here and in the evaluator packages).
type GenConfig struct {
	Labels   []string
	Attrs    []string
	Values   []string
	MaxSteps int
	MaxQual  int // maximum qualifier nesting depth
}

// DefaultGenConfig matches tree.DefaultGenOptions so random queries have
// non-trivial selectivity on random documents.
func DefaultGenConfig() GenConfig {
	return GenConfig{
		Labels:   []string{"a", "b", "c", "d", "part", "supplier", "price"},
		Attrs:    []string{"id", "kind"},
		Values:   []string{"1", "2", "15", "HP", "keyboard", "x"},
		MaxSteps: 4,
		MaxQual:  2,
	}
}

// RandomPath returns a random selection path (no attribute steps outside
// qualifiers).
func RandomPath(rng *rand.Rand, cfg GenConfig) *Path {
	return randomPath(rng, cfg, 1+rng.Intn(cfg.MaxSteps), cfg.MaxQual, false)
}

// RandomQual returns a random qualifier of bounded depth.
func RandomQual(rng *rand.Rand, cfg GenConfig) Qual {
	return randomQual(rng, cfg, cfg.MaxQual)
}

func randomPath(rng *rand.Rand, cfg GenConfig, steps, qualDepth int, allowAttr bool) *Path {
	p := &Path{}
	for i := 0; i < steps; i++ {
		if rng.Float64() < 0.25 {
			p.Steps = append(p.Steps, Step{Axis: DescendantOrSelf})
		}
		last := i == steps-1
		if allowAttr && last && rng.Float64() < 0.3 {
			p.Steps = append(p.Steps, Step{Axis: Attribute, Label: cfg.Attrs[rng.Intn(len(cfg.Attrs))]})
			return p
		}
		var s Step
		if rng.Float64() < 0.15 {
			s = Step{Axis: Child, Wildcard: true}
		} else {
			s = Step{Axis: Child, Label: cfg.Labels[rng.Intn(len(cfg.Labels))]}
		}
		if qualDepth > 0 && rng.Float64() < 0.35 {
			s.Quals = append(s.Quals, randomQual(rng, cfg, qualDepth-1))
		}
		p.Steps = append(p.Steps, s)
	}
	return p
}

func randomQual(rng *rand.Rand, cfg GenConfig, depth int) Qual {
	if depth <= 0 {
		return randomAtomQual(rng, cfg)
	}
	switch rng.Intn(6) {
	case 0:
		return &AndQual{L: randomQual(rng, cfg, depth-1), R: randomQual(rng, cfg, depth-1)}
	case 1:
		return &OrQual{L: randomQual(rng, cfg, depth-1), R: randomQual(rng, cfg, depth-1)}
	case 2:
		return &NotQual{X: randomQual(rng, cfg, depth-1)}
	default:
		return randomAtomQual(rng, cfg)
	}
}

func randomAtomQual(rng *rand.Rand, cfg GenConfig) Qual {
	path := randomPath(rng, cfg, 1+rng.Intn(2), 0, true)
	switch rng.Intn(4) {
	case 0:
		return &PathQual{Path: path}
	case 1:
		return &LabelQual{Label: cfg.Labels[rng.Intn(len(cfg.Labels))]}
	default:
		ops := []CmpOp{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe}
		return &CmpQual{
			Path: path,
			Op:   ops[rng.Intn(len(ops))],
			Lit:  cfg.Values[rng.Intn(len(cfg.Values))],
		}
	}
}
