package xpath

import (
	"strconv"
	"strings"

	"xtq/internal/tree"
)

// Select evaluates the path p at context node ctx and returns the selected
// element nodes in document order, without duplicates (the '//' axis can
// reach a node along several routes). This is the reference semantics
// v[[p]] of §2; the Naive method and all correctness tests are defined
// against it.
//
// Attribute steps are not valid in selecting paths and yield an empty
// result; use EvalQual for qualifier paths that end in attribute tests.
func Select(ctx *tree.Node, p *Path) []*tree.Node {
	frontier := []*tree.Node{ctx}
	for _, s := range p.Steps {
		if len(frontier) == 0 {
			return nil
		}
		frontier = applyStep(frontier, s)
	}
	return frontier
}

// applyStep maps a frontier (in document order, duplicate-free) through one
// step, preserving order and uniqueness.
func applyStep(frontier []*tree.Node, s Step) []*tree.Node {
	var out []*tree.Node
	seen := make(map[*tree.Node]struct{})
	add := func(n *tree.Node) {
		if _, dup := seen[n]; dup {
			return
		}
		seen[n] = struct{}{}
		out = append(out, n)
	}
	for _, n := range frontier {
		switch s.Axis {
		case Child:
			for _, c := range n.Children {
				if c.Kind != tree.Element {
					continue
				}
				if !s.Wildcard && c.Label != s.Label {
					continue
				}
				if qualsHold(c, s.Quals) {
					add(c)
				}
			}
		case DescendantOrSelf:
			// Qualifiers never appear on '//' itself (the parser
			// attaches them to named steps), but handle them anyway.
			var visit func(m *tree.Node)
			visit = func(m *tree.Node) {
				if m.Kind == tree.Element || m.Kind == tree.Document {
					if qualsHold(m, s.Quals) {
						add(m)
					}
				}
				for _, c := range m.Children {
					if c.Kind == tree.Element {
						visit(c)
					}
				}
			}
			visit(n)
		case Self:
			if qualsHold(n, s.Quals) {
				add(n)
			}
		case Attribute:
			// Attributes are not nodes in this model; selection paths
			// must not contain attribute steps.
		}
	}
	return out
}

func qualsHold(n *tree.Node, quals []Qual) bool {
	for _, q := range quals {
		if !EvalQual(n, q) {
			return false
		}
	}
	return true
}

// EvalQual evaluates qualifier q at context node n. It implements checkp()
// of §3.3 by direct recursive evaluation — the strategy the paper calls
// "native qualifier evaluation" (as done by Qizx) and uses in GENTOP.
func EvalQual(n *tree.Node, q Qual) bool {
	switch q := q.(type) {
	case *TrueQual:
		return true
	case *LabelQual:
		return n.Kind == tree.Element && n.Label == q.Label
	case *AndQual:
		return EvalQual(n, q.L) && EvalQual(n, q.R)
	case *OrQual:
		return EvalQual(n, q.L) || EvalQual(n, q.R)
	case *NotQual:
		return !EvalQual(n, q.X)
	case *PathQual:
		return evalPathTest(n, q.Path, OpNone, "")
	case *CmpQual:
		return evalPathTest(n, q.Path, q.Op, q.Lit)
	default:
		return false
	}
}

// evalPathTest evaluates a qualifier path at n. With op == OpNone it is an
// existence test; otherwise it tests whether some selected value satisfies
// "value op lit". A trailing attribute step tests attribute presence or
// value; an empty path tests the context node itself.
func evalPathTest(n *tree.Node, p *Path, op CmpOp, lit string) bool {
	steps := p.Steps
	var attr string
	if k := len(steps); k > 0 && steps[k-1].Axis == Attribute {
		attr = steps[k-1].Label
		steps = steps[:k-1]
	}
	nodes := Select(n, &Path{Steps: steps})
	for _, m := range nodes {
		if attr != "" {
			v, ok := m.Attr(attr)
			if !ok {
				continue
			}
			if op == OpNone || Compare(v, op, lit) {
				return true
			}
			continue
		}
		if op == OpNone || Compare(m.Value(), op, lit) {
			return true
		}
	}
	return false
}

// mayBeNumber is a cheap pre-filter for parseFloat: it accepts every
// character that can occur in a string strconv.ParseFloat accepts (digits,
// sign, point, exponent and the inf/nan spellings), so rejecting a string
// here proves ParseFloat would fail — without paying for the error value
// ParseFloat allocates on failure. Qualifier comparisons run once per
// candidate node, and most non-numeric values (names, country codes) are
// rejected on their first letter.
func mayBeNumber(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case c >= '0' && c <= '9':
		case c == '.' || c == '+' || c == '-' || c == '_':
			// '_' included: ParseFloat accepts Go-style digit separators.
		default:
			switch c | 0x20 { // ASCII lower-case
			case 'e', 'i', 'n', 'f', 't', 'y', 'a', 'x', 'p':
				// exponents, hex floats, "inf(inity)", "nan"
			default:
				return false
			}
		}
	}
	return true
}

// parseFloat is strconv.ParseFloat behind the mayBeNumber pre-filter.
func parseFloat(s string) (float64, bool) {
	s = strings.TrimSpace(s)
	if !mayBeNumber(s) {
		return 0, false
	}
	f, err := strconv.ParseFloat(s, 64)
	return f, err == nil
}

// Compare applies "value op lit". When both sides parse as floating-point
// numbers the comparison is numeric, otherwise it is lexicographic — the
// convention needed by the XMark qualifiers (increase > 5, age > 20) while
// keeping string equality tests (country = 'A') exact.
func Compare(value string, op CmpOp, lit string) bool {
	var cmp int
	if lv, okV := parseFloat(value); okV {
		if ll, okL := parseFloat(lit); okL {
			switch {
			case lv < ll:
				cmp = -1
			case lv > ll:
				cmp = 1
			}
		} else {
			cmp = strings.Compare(value, lit)
		}
	} else {
		cmp = strings.Compare(value, lit)
	}
	switch op {
	case OpEq:
		return cmp == 0
	case OpNe:
		return cmp != 0
	case OpLt:
		return cmp < 0
	case OpLe:
		return cmp <= 0
	case OpGt:
		return cmp > 0
	case OpGe:
		return cmp >= 0
	default:
		return false
	}
}
