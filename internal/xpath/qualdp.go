package xpath

import "xtq/internal/tree"

// This file implements algorithm QualDP (Fig. 7 of the paper): given the
// truth values of every qualifier in LQ at a node's children (csat) and at
// its proper descendants (dsat), compute the truth values at the node with
// a constant amount of work per qualifier.

// SatVec holds one truth value per LQ expression, indexed by expression id.
type SatVec []bool

// NewSatVec returns an all-false vector sized for lq; it doubles as the
// csat⊥/dsat⊥ vector of leaf nodes.
func (lq *LQ) NewSatVec() SatVec { return make(SatVec, len(lq.Exprs)) }

// QualDP computes sat values at node n for the expressions listed in ids
// (which must be closed under sub-expressions and sorted ascending, as
// produced by Closure), writing into sat. csat[q] must hold iff some
// element child of n satisfies q; dsat[q] iff some proper element
// descendant of n satisfies q. Entries of sat outside ids are left
// untouched.
func (lq *LQ) QualDP(n *tree.Node, ids []int, csat, dsat, sat SatVec) {
	for _, id := range ids {
		e := &lq.Exprs[id]
		switch e.Kind {
		case KTrue:
			sat[id] = true
		case KSelfCond:
			sat[id] = sat[e.A] && sat[e.B]
		case KChild:
			sat[id] = csat[e.B]
		case KDesc:
			sat[id] = sat[e.B] || dsat[e.B]
		case KCmp:
			sat[id] = Compare(n.Value(), e.Op, e.Lit)
		case KLabel:
			sat[id] = n.Kind == tree.Element && n.Label == e.Label
		case KAnd:
			sat[id] = sat[e.A] && sat[e.B]
		case KOr:
			sat[id] = sat[e.A] || sat[e.B]
		case KNot:
			sat[id] = !sat[e.A]
		case KAttr:
			v, ok := n.Attr(e.Label)
			if !ok {
				sat[id] = false
			} else if e.Op == OpNone {
				sat[id] = true
			} else {
				sat[id] = Compare(v, e.Op, e.Lit)
			}
		}
	}
}

// ChildNeeds returns the expression ids whose truth is required at the
// children of a node that evaluates evalIDs (a closure as produced by
// Closure): a */p expression needs p at each child, and a //p expression
// needs itself at each child (sat(//p) at a child is exactly "p holds at
// the child or below it", which is what dsat aggregation consumes).
//
// This propagation is the filtering-NFA descent of §5 expressed on
// normal-form ids: the returned set, closed and united with the qualifiers
// of the automaton states entered at a child, is the list LQ(S') the paper
// evaluates at that child.
func (lq *LQ) ChildNeeds(evalIDs []int) []int {
	var out []int
	seen := make(map[int]struct{})
	add := func(id int) {
		if _, dup := seen[id]; dup {
			return
		}
		seen[id] = struct{}{}
		out = append(out, id)
	}
	for _, id := range evalIDs {
		e := &lq.Exprs[id]
		switch e.Kind {
		case KChild:
			add(e.B)
		case KDesc:
			add(id)
		}
	}
	return out
}

// EvalAll computes the full sat vector at node n by recursing over the
// subtree — a reference implementation used in tests to validate the
// incremental propagation performed by the bottomUp and twoPassSAX
// algorithms. It evaluates every expression of lq at every node, returning
// sat for n.
func (lq *LQ) EvalAll(n *tree.Node) SatVec {
	sat, _ := lq.evalAll(n)
	return sat
}

// evalAll returns (sat at n, "sat at n or some descendant of n").
func (lq *LQ) evalAll(n *tree.Node) (sat, selfOrDesc SatVec) {
	csat := lq.NewSatVec()
	dsat := lq.NewSatVec()
	for _, c := range n.Children {
		if c.Kind != tree.Element {
			continue
		}
		cSat, cSelfOrDesc := lq.evalAll(c)
		for i := range csat {
			csat[i] = csat[i] || cSat[i]
			dsat[i] = dsat[i] || cSelfOrDesc[i]
		}
	}
	sat = lq.NewSatVec()
	all := make([]int, len(lq.Exprs))
	for i := range all {
		all[i] = i
	}
	lq.QualDP(n, all, csat, dsat, sat)
	selfOrDesc = lq.NewSatVec()
	for i := range selfOrDesc {
		selfOrDesc[i] = sat[i] || dsat[i]
	}
	return sat, selfOrDesc
}
