package xpath

import (
	"fmt"

	"xtq/internal/xerr"
)

// This file implements the qualifier normal form of §5: every path inside a
// qualifier is rewritten so that each step is η/p' with η one of *, // or
// ε[q], using the rules
//
//	(1) l        →  */ε[label() = l]
//	(2) p[q]     →  p/ε[q]
//	(3) p[q1]…[qn] → p[q1 and … and qn]
//	(4) p op 's' →  p[ε op 's']
//
// Normalized expressions are interned into a topologically sorted list LQ
// (sub-expressions strictly before the expressions containing them), which
// is exactly the structure algorithm QualDP (Fig. 7) recurses over.

// NKind enumerates the normal-form expression constructors, matching the
// cases of Fig. 7.
type NKind uint8

const (
	// KTrue is ε, the trivially true qualifier (case 1).
	KTrue NKind = iota
	// KSelfCond is ε[q']/p (case 2): A holds here and B holds here.
	KSelfCond
	// KChild is */p (case 3): some element child satisfies B.
	KChild
	// KDesc is //p (case 4): B holds here or at some element descendant.
	KDesc
	// KCmp is ε op 's' (case 5, generalized to all comparison operators).
	KCmp
	// KLabel is label() = l (case 6).
	KLabel
	// KAnd is q1 ∧ q2 (case 7).
	KAnd
	// KOr is q1 ∨ q2 (case 8).
	KOr
	// KNot is ¬q1 (case 9).
	KNot
	// KAttr tests the context node's attribute: existence when Op is
	// OpNone, comparison otherwise. This extends Fig. 7 for the @id
	// tests of the XMark workload; like cases 5-6 it is local to the
	// node, so the recurrence stays O(1) per expression.
	KAttr
)

// NQual is one interned normal-form expression. A and B index
// sub-expressions in the owning LQ (-1 when unused).
type NQual struct {
	ID    int
	Kind  NKind
	A, B  int
	Label string // label for KLabel, attribute name for KAttr
	Op    CmpOp
	Lit   string
}

// LQ is the topologically sorted list of (sub-)qualifiers of §5: for every
// expression, its sub-expressions appear earlier in the list. All
// qualifiers of one query share a single LQ so that common sub-expressions
// are evaluated once per node.
type LQ struct {
	Exprs []NQual
	byKey map[string]int
}

// NewLQ returns an empty qualifier list.
func NewLQ() *LQ {
	return &LQ{byKey: make(map[string]int)}
}

// Len returns the number of interned expressions.
func (lq *LQ) Len() int { return len(lq.Exprs) }

func (lq *LQ) intern(kind NKind, a, b int, label string, op CmpOp, lit string) int {
	key := fmt.Sprintf("%d|%d|%d|%s|%d|%s", kind, a, b, label, op, lit)
	if id, ok := lq.byKey[key]; ok {
		return id
	}
	id := len(lq.Exprs)
	lq.Exprs = append(lq.Exprs, NQual{ID: id, Kind: kind, A: a, B: b, Label: label, Op: op, Lit: lit})
	lq.byKey[key] = id
	return id
}

// True returns the id of the trivially true expression ε.
func (lq *LQ) True() int { return lq.intern(KTrue, -1, -1, "", OpNone, "") }

// AddQual normalizes qualifier q and interns it, returning its id.
func (lq *LQ) AddQual(q Qual) (int, error) {
	switch q := q.(type) {
	case *TrueQual:
		return lq.True(), nil
	case *LabelQual:
		return lq.intern(KLabel, -1, -1, q.Label, OpNone, ""), nil
	case *AndQual:
		l, err := lq.AddQual(q.L)
		if err != nil {
			return 0, err
		}
		r, err := lq.AddQual(q.R)
		if err != nil {
			return 0, err
		}
		return lq.intern(KAnd, l, r, "", OpNone, ""), nil
	case *OrQual:
		l, err := lq.AddQual(q.L)
		if err != nil {
			return 0, err
		}
		r, err := lq.AddQual(q.R)
		if err != nil {
			return 0, err
		}
		return lq.intern(KOr, l, r, "", OpNone, ""), nil
	case *NotQual:
		x, err := lq.AddQual(q.X)
		if err != nil {
			return 0, err
		}
		return lq.intern(KNot, x, -1, "", OpNone, ""), nil
	case *PathQual:
		return lq.addPath(q.Path, OpNone, "")
	case *CmpQual:
		return lq.addPath(q.Path, q.Op, q.Lit)
	default:
		return 0, xerr.New(xerr.Compile, "", "xpath: unknown qualifier type %T", q)
	}
}

// AddQuals interns the conjunction of quals (rule 3); an empty list is ε.
func (lq *LQ) AddQuals(quals []Qual) (int, error) {
	if len(quals) == 0 {
		return lq.True(), nil
	}
	id, err := lq.AddQual(quals[0])
	if err != nil {
		return 0, err
	}
	for _, q := range quals[1:] {
		next, err := lq.AddQual(q)
		if err != nil {
			return 0, err
		}
		id = lq.intern(KAnd, id, next, "", OpNone, "")
	}
	return id, nil
}

// addPath normalizes a qualifier path with an optional trailing comparison
// (rule 4). The path is folded right to left onto the "tail" expression.
func (lq *LQ) addPath(p *Path, op CmpOp, lit string) (int, error) {
	steps := p.Steps
	var tail int
	// A trailing attribute step becomes the local KAttr tail.
	if k := len(steps); k > 0 && steps[k-1].Axis == Attribute {
		tail = lq.intern(KAttr, -1, -1, steps[k-1].Label, op, lit)
		steps = steps[:k-1]
	} else if op == OpNone {
		tail = lq.True()
	} else {
		tail = lq.intern(KCmp, -1, -1, "", op, lit)
	}
	rest := tail
	for i := len(steps) - 1; i >= 0; i-- {
		s := steps[i]
		if s.Axis == Attribute {
			return 0, xerr.New(xerr.Compile, "", "xpath: attribute step not in final position of qualifier path")
		}
		cond, err := lq.AddQuals(s.Quals)
		if err != nil {
			return 0, err
		}
		switch s.Axis {
		case Self:
			if cond != lq.True() {
				rest = lq.intern(KSelfCond, cond, rest, "", OpNone, "")
			}
		case DescendantOrSelf:
			if cond != lq.True() {
				rest = lq.intern(KSelfCond, cond, rest, "", OpNone, "")
			}
			rest = lq.intern(KDesc, -1, rest, "", OpNone, "")
		case Child:
			self := rest
			if !s.Wildcard {
				// Rule (1): l → */ε[label() = l].
				labelTest := lq.intern(KLabel, -1, -1, s.Label, OpNone, "")
				cond = lq.conj(labelTest, cond)
			}
			if cond != lq.True() {
				self = lq.intern(KSelfCond, cond, self, "", OpNone, "")
			}
			rest = lq.intern(KChild, -1, self, "", OpNone, "")
		}
	}
	return rest, nil
}

func (lq *LQ) conj(a, b int) int {
	t := lq.True()
	if a == t {
		return b
	}
	if b == t {
		return a
	}
	return lq.intern(KAnd, a, b, "", OpNone, "")
}

// Closure returns the ids of all expressions reachable from roots
// (including the roots), sorted ascending — i.e. in evaluation order. This
// is LQ(S) of §5: the sub-qualifier list that must be evaluated at a node
// whose automaton states carry the root qualifiers.
func (lq *LQ) Closure(roots []int) []int {
	need := make([]bool, len(lq.Exprs))
	var mark func(int)
	mark = func(id int) {
		if id < 0 || need[id] {
			return
		}
		need[id] = true
		mark(lq.Exprs[id].A)
		mark(lq.Exprs[id].B)
	}
	for _, r := range roots {
		mark(r)
	}
	out := make([]int, 0, len(roots))
	for id, ok := range need {
		if ok {
			out = append(out, id)
		}
	}
	return out
}

// String renders expression id for diagnostics.
func (lq *LQ) String(id int) string {
	e := lq.Exprs[id]
	switch e.Kind {
	case KTrue:
		return "true"
	case KSelfCond:
		return fmt.Sprintf(".[%s]/%s", lq.String(e.A), lq.String(e.B))
	case KChild:
		return fmt.Sprintf("*/%s", lq.String(e.B))
	case KDesc:
		return fmt.Sprintf("//%s", lq.String(e.B))
	case KCmp:
		return fmt.Sprintf(". %s %s", e.Op, quoteLit(e.Lit))
	case KLabel:
		return fmt.Sprintf("label() = %s", e.Label)
	case KAnd:
		return fmt.Sprintf("(%s and %s)", lq.String(e.A), lq.String(e.B))
	case KOr:
		return fmt.Sprintf("(%s or %s)", lq.String(e.A), lq.String(e.B))
	case KNot:
		return fmt.Sprintf("not(%s)", lq.String(e.A))
	case KAttr:
		if e.Op == OpNone {
			return "@" + e.Label
		}
		return fmt.Sprintf("@%s %s %s", e.Label, e.Op, quoteLit(e.Lit))
	default:
		return "?"
	}
}
