package xpath

import (
	"math/rand"
	"strings"
	"testing"
)

func TestParseBasicPaths(t *testing.T) {
	cases := []struct {
		in        string
		wantSteps int
		rendered  string // expected String(), "" means same as in
	}{
		{"a", 1, ""},
		{"a/b", 2, ""},
		{"a/b/c", 3, ""},
		{"*", 1, ""},
		{"a/*/c", 3, ""},
		{".", 1, ""},
		{"a//b", 3, ""},
		{"//a", 2, ""},
		{"//a//b", 4, ""},
		{"/a/b", 2, "a/b"},
		{"site/people/person", 3, ""},
		{"a/./b", 3, "a/./b"},
		{"open_auctions/open_auction", 2, ""},
	}
	for _, tc := range cases {
		p, err := Parse(tc.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", tc.in, err)
			continue
		}
		if len(p.Steps) != tc.wantSteps {
			t.Errorf("Parse(%q): %d steps, want %d", tc.in, len(p.Steps), tc.wantSteps)
		}
		want := tc.rendered
		if want == "" {
			want = tc.in
		}
		if got := p.String(); got != want {
			t.Errorf("Parse(%q).String() = %q, want %q", tc.in, got, want)
		}
	}
}

func TestParseQualifiers(t *testing.T) {
	cases := []string{
		`a[b]`,
		`a[b = "x"]`,
		`a[b != "x"]`,
		`a[b < 15]`,
		`a[b <= 15]`,
		`a[b > 5]`,
		`a[b >= 5]`,
		`a[@id = "person10"]`,
		`a[@id]`,
		`a[label() = "part"]`,
		`a[b and c]`,
		`a[b or c]`,
		`a[not(b)]`,
		`a[not(b = "A")]`,
		`a[(b and c) or not(d)]`,
		`a[b/c = "x"]`,
		`a[b//c]`,
		`a[.//c]`,
		`a[. = "x"]`,
		`a[b][c]`,
		`a[profile/age > 20]`,
		`a[not(@id = "open_auction2")]`,
		`a[initial > 10 and reserve > 50]`,
	}
	for _, in := range cases {
		p, err := Parse(in)
		if err != nil {
			t.Errorf("Parse(%q): %v", in, err)
			continue
		}
		// Re-parse the rendering: must yield the same rendering (fixpoint).
		again, err := Parse(p.String())
		if err != nil {
			t.Errorf("reparse of %q → %q: %v", in, p.String(), err)
			continue
		}
		if again.String() != p.String() {
			t.Errorf("render not a fixpoint: %q → %q → %q", in, p.String(), again.String())
		}
	}
}

func TestParsePaperQueries(t *testing.T) {
	// The ten embedded XPath queries of Fig. 11 (site/ prefix relative to
	// the document node).
	queries := []string{
		`/site/people/person`,
		`/site/people/person[@id = "person10"]`,
		`/site/people/person[profile/age > 20]`,
		`/site/regions//item`,
		`/site//description`,
		`/site/closed_auctions/closed_auction/annotation/description/parlist/listitem/parlist/listitem/text/emph/keyword`,
		`/site/open_auctions/open_auction[bidder/increase > 5]/annotation[happiness < 20]/description//text`,
		`/site/open_auctions/open_auction[initial > 10 and reserve > 50]/bidder`,
		`/site/regions//item[location = "United States"]`,
		`/site//open_auctions/open_auction[not(@id = "open_auction2")]/bidder[increase > 10]`,
	}
	for i, qs := range queries {
		p, err := Parse(qs)
		if err != nil {
			t.Errorf("U%d %q: %v", i+1, qs, err)
			continue
		}
		if p.HasAttributeStep() {
			t.Errorf("U%d: selection path claims attribute step", i+1)
		}
	}
}

func TestParsePaperExamples(t *testing.T) {
	// Queries from the running example (Example 3.1 etc.).
	for _, qs := range []string{
		`//part[pname = "keyboard"]//part[not(supplier/sname = "HP") and not(supplier/price < 15)]`,
		`//supplier[country = "c1" or country = "c2"]/price`,
		`//price`,
		`a/b[q]`,
		`supplier//part`,
	} {
		if _, err := Parse(qs); err != nil {
			t.Errorf("Parse(%q): %v", qs, err)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"/",
		"a/",
		"a//",
		"a[",
		"a[]",
		"a[b",
		"a[b]]",
		"a]",
		"a[b =]",
		"a[b = ]",
		"a[= 'x']",
		"a['x']",
		"a[b !]",
		"a[not(b]",
		"a[(b]",
		"a[label( = 'x']",
		"a[label() 'x']",
		"a[label() = ]",
		"a[b or]",
		"a[b and]",
		`a["unterminated]`,
		"a[b = 'unterminated]",
		"a@b",
		"@",
		"a/@",
		"#a",
		"a[b ! c]",
		"a b",
		"a[@id[x]]",
	}
	for _, in := range cases {
		if p, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) accepted as %q", in, p.String())
		}
	}
}

func TestSyntaxErrorMessage(t *testing.T) {
	_, err := Parse("a[b &&]")
	if err == nil {
		t.Fatal("expected error")
	}
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if !strings.Contains(se.Error(), "offset") {
		t.Errorf("Error() = %q", se.Error())
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse should panic on bad input")
		}
	}()
	MustParse("a[")
}

func TestParseNotAsElementName(t *testing.T) {
	// "not" and "label" followed by something other than '(' are names.
	p, err := Parse("a[not]")
	if err != nil {
		t.Fatalf("Parse(a[not]): %v", err)
	}
	pq, ok := p.Steps[0].Quals[0].(*PathQual)
	if !ok || pq.Path.Steps[0].Label != "not" {
		t.Errorf("qualifier = %#v, want path 'not'", p.Steps[0].Quals[0])
	}
	p, err = Parse("a[label = 'x']")
	if err != nil {
		t.Fatalf("Parse(a[label = 'x']): %v", err)
	}
	if _, ok := p.Steps[0].Quals[0].(*CmpQual); !ok {
		t.Errorf("qualifier = %#v, want comparison on element 'label'", p.Steps[0].Quals[0])
	}
}

func TestParseNumbers(t *testing.T) {
	p := MustParse("a[b > 2.5]")
	cq := p.Steps[0].Quals[0].(*CmpQual)
	if cq.Lit != "2.5" {
		t.Errorf("Lit = %q, want 2.5", cq.Lit)
	}
	p = MustParse("a[b = -3]")
	cq = p.Steps[0].Quals[0].(*CmpQual)
	if cq.Lit != "-3" {
		t.Errorf("Lit = %q, want -3", cq.Lit)
	}
}

func TestAxisString(t *testing.T) {
	for a, want := range map[Axis]string{
		Child: "child", DescendantOrSelf: "descendant-or-self",
		Self: "self", Attribute: "attribute", Axis(9): "invalid",
	} {
		if got := a.String(); got != want {
			t.Errorf("Axis(%d) = %q, want %q", a, got, want)
		}
	}
}

func TestCmpOpString(t *testing.T) {
	ops := map[CmpOp]string{OpEq: "=", OpNe: "!=", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=", OpNone: "?"}
	for op, want := range ops {
		if got := op.String(); got != want {
			t.Errorf("op %d = %q, want %q", op, got, want)
		}
	}
}

func TestPathClone(t *testing.T) {
	p := MustParse("a/b[c]")
	c := p.Clone()
	c.Steps[0].Label = "z"
	if p.Steps[0].Label != "a" {
		t.Errorf("Clone shares step storage")
	}
}

// Property: rendering any random path parses back to an identical rendering.
func TestRandomPathRenderParseFixpoint(t *testing.T) {
	cfg := DefaultGenConfig()
	for seed := int64(0); seed < 300; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := RandomPath(rng, cfg)
		s := p.String()
		parsed, err := Parse(s)
		if err != nil {
			t.Fatalf("seed %d: Parse(%q): %v", seed, s, err)
		}
		if got := parsed.String(); got != s {
			t.Fatalf("seed %d: fixpoint violation %q → %q", seed, s, got)
		}
	}
}
