package xpath

import "fmt"

type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokString // quoted literal
	tokNumber
	tokSlash       // /
	tokDoubleSlash // //
	tokStar        // *
	tokDot         // .
	tokAt          // @
	tokLBracket    // [
	tokRBracket    // ]
	tokLParen      // (
	tokRParen      // )
	tokEq          // =
	tokNe          // !=
	tokLt          // <
	tokLe          // <=
	tokGt          // >
	tokGe          // >=
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of expression"
	case tokIdent:
		return "name"
	case tokString:
		return "string literal"
	case tokNumber:
		return "number"
	case tokSlash:
		return "'/'"
	case tokDoubleSlash:
		return "'//'"
	case tokStar:
		return "'*'"
	case tokDot:
		return "'.'"
	case tokAt:
		return "'@'"
	case tokLBracket:
		return "'['"
	case tokRBracket:
		return "']'"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokEq:
		return "'='"
	case tokNe:
		return "'!='"
	case tokLt:
		return "'<'"
	case tokLe:
		return "'<='"
	case tokGt:
		return "'>'"
	case tokGe:
		return "'>='"
	default:
		return "?"
	}
}

type token struct {
	kind tokenKind
	text string
	pos  int
}

// SyntaxError reports a parse failure with its byte offset in the
// expression.
type SyntaxError struct {
	Expr string
	Pos  int
	Msg  string
}

// Error implements error.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("xpath: %s at offset %d in %q", e.Msg, e.Pos, e.Expr)
}

type lexer struct {
	src string
	pos int
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c >= 0x80
}

// isIdentChar accepts name characters; '.' is excluded (unlike XML names)
// because it lexes as the self step.
func isIdentChar(c byte) bool {
	return isIdentStart(c) || c == '-' || (c >= '0' && c <= '9')
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func (l *lexer) errf(pos int, format string, args ...any) *SyntaxError {
	return &SyntaxError{Expr: l.src, Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) && (l.src[l.pos] == ' ' || l.src[l.pos] == '\t' || l.src[l.pos] == '\n' || l.src[l.pos] == '\r') {
		l.pos++
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case c == '/':
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '/' {
			l.pos++
			return token{kind: tokDoubleSlash, text: "//", pos: start}, nil
		}
		return token{kind: tokSlash, text: "/", pos: start}, nil
	case c == '*':
		l.pos++
		return token{kind: tokStar, text: "*", pos: start}, nil
	case c == '.':
		l.pos++
		return token{kind: tokDot, text: ".", pos: start}, nil
	case c == '@':
		l.pos++
		return token{kind: tokAt, text: "@", pos: start}, nil
	case c == '[':
		l.pos++
		return token{kind: tokLBracket, text: "[", pos: start}, nil
	case c == ']':
		l.pos++
		return token{kind: tokRBracket, text: "]", pos: start}, nil
	case c == '(':
		l.pos++
		return token{kind: tokLParen, text: "(", pos: start}, nil
	case c == ')':
		l.pos++
		return token{kind: tokRParen, text: ")", pos: start}, nil
	case c == '=':
		l.pos++
		return token{kind: tokEq, text: "=", pos: start}, nil
	case c == '!':
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
			return token{kind: tokNe, text: "!=", pos: start}, nil
		}
		return token{}, l.errf(start, "unexpected '!'")
	case c == '<':
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
			return token{kind: tokLe, text: "<=", pos: start}, nil
		}
		return token{kind: tokLt, text: "<", pos: start}, nil
	case c == '>':
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
			return token{kind: tokGe, text: ">=", pos: start}, nil
		}
		return token{kind: tokGt, text: ">", pos: start}, nil
	case c == '"' || c == '\'':
		quote := c
		l.pos++
		for l.pos < len(l.src) && l.src[l.pos] != quote {
			l.pos++
		}
		if l.pos >= len(l.src) {
			return token{}, l.errf(start, "unterminated string literal")
		}
		text := l.src[start+1 : l.pos]
		l.pos++
		return token{kind: tokString, text: text, pos: start}, nil
	case isDigit(c) || (c == '-' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1])):
		l.pos++
		dot := false
		for l.pos < len(l.src) && (isDigit(l.src[l.pos]) || (l.src[l.pos] == '.' && !dot)) {
			if l.src[l.pos] == '.' {
				// Only treat as a decimal point when followed by a digit;
				// otherwise it is a path '.' step.
				if l.pos+1 >= len(l.src) || !isDigit(l.src[l.pos+1]) {
					break
				}
				dot = true
			}
			l.pos++
		}
		return token{kind: tokNumber, text: l.src[start:l.pos], pos: start}, nil
	case isIdentStart(c):
		l.pos++
		for l.pos < len(l.src) && isIdentChar(l.src[l.pos]) {
			l.pos++
		}
		return token{kind: tokIdent, text: l.src[start:l.pos], pos: start}, nil
	default:
		return token{}, l.errf(start, "unexpected character %q", c)
	}
}
