package xquery

import (
	"strings"

	"xtq/internal/xpath"
)

// Parse parses a user query in the restricted form of §4, e.g.
//
//	for $x in /site/people/person[@id = "person10"] return $x
//	for $x in /site/regions//item
//	  where $x/location = "United States" and $x/quantity > 2
//	  return <hit>{$x/name}{$x/location}</hit>
//
// The return clause is either "$x" (optionally with a path) or an element
// template whose holes are written {$x/path} or {"constant"}.
func Parse(src string) (*UserQuery, error) {
	p := &uparser{s: src}
	p.skipSpace()
	if !p.word("for") {
		return nil, fmtErr("expected 'for' at %q", p.rest())
	}
	v, ok := p.variable()
	if !ok {
		return nil, fmtErr("expected a variable after 'for' at %q", p.rest())
	}
	if !p.word("in") {
		return nil, fmtErr("expected 'in' at %q", p.rest())
	}
	pathSrc := p.until([]string{"where", "return"})
	path, err := xpath.Parse(strings.TrimSpace(pathSrc))
	if err != nil {
		return nil, err
	}
	q := &UserQuery{Var: v, Path: path}
	if p.word("where") {
		for {
			c, err := p.cond(v)
			if err != nil {
				return nil, err
			}
			q.Conds = append(q.Conds, *c)
			if !p.word("and") {
				break
			}
		}
	}
	if !p.word("return") {
		return nil, fmtErr("expected 'return' at %q", p.rest())
	}
	item, err := p.item(v)
	if err != nil {
		return nil, err
	}
	q.Return = item
	p.skipSpace()
	if p.i < len(p.s) {
		return nil, fmtErr("trailing input %q", p.rest())
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}

// MustParse parses src and panics on error.
func MustParse(src string) *UserQuery {
	q, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return q
}

type uparser struct {
	s string
	i int
}

func (p *uparser) rest() string {
	r := p.s[p.i:]
	if len(r) > 40 {
		r = r[:40] + "..."
	}
	return r
}

func (p *uparser) skipSpace() {
	for p.i < len(p.s) {
		switch p.s[p.i] {
		case ' ', '\t', '\n', '\r':
			p.i++
		default:
			return
		}
	}
}

// word consumes the keyword w if it appears next (followed by a
// non-name character).
func (p *uparser) word(w string) bool {
	p.skipSpace()
	if !strings.HasPrefix(p.s[p.i:], w) {
		return false
	}
	j := p.i + len(w)
	if j < len(p.s) {
		c := p.s[j]
		if c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' {
			return false
		}
	}
	p.i = j
	return true
}

func (p *uparser) variable() (string, bool) {
	p.skipSpace()
	if p.i >= len(p.s) || p.s[p.i] != '$' {
		return "", false
	}
	j := p.i + 1
	for j < len(p.s) {
		c := p.s[j]
		if c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' {
			j++
			continue
		}
		break
	}
	if j == p.i+1 {
		return "", false
	}
	v := p.s[p.i+1 : j]
	p.i = j
	return v, true
}

// until returns the raw text up to (not including) the first of the
// keywords at a whitespace boundary outside quotes, or the rest of the
// input.
func (p *uparser) until(keywords []string) string {
	start := p.i
	inQuote := byte(0)
	for p.i < len(p.s) {
		c := p.s[p.i]
		if inQuote != 0 {
			if c == inQuote {
				inQuote = 0
			}
			p.i++
			continue
		}
		if c == '"' || c == '\'' {
			inQuote = c
			p.i++
			continue
		}
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			save := p.i
			p.skipSpace()
			for _, kw := range keywords {
				if strings.HasPrefix(p.s[p.i:], kw) {
					j := p.i + len(kw)
					if j >= len(p.s) || isBoundary(p.s[j]) {
						text := p.s[start:save]
						return text
					}
				}
			}
			continue
		}
		p.i++
	}
	return p.s[start:]
}

func isBoundary(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '$' || c == '<' || c == '('
}

// scanOperandPath consumes an $x-relative path operand: it stops, at
// qualifier-bracket depth zero and outside string literals, before a
// comparison operator, a '}' hole terminator, or a keyword (and / return /
// where) following whitespace.
func (p *uparser) scanOperandPath() string {
	start := p.i
	depth := 0
	inQuote := byte(0)
	for p.i < len(p.s) {
		c := p.s[p.i]
		if inQuote != 0 {
			if c == inQuote {
				inQuote = 0
			}
			p.i++
			continue
		}
		switch c {
		case '"', '\'':
			inQuote = c
			p.i++
		case '[':
			depth++
			p.i++
		case ']':
			depth--
			p.i++
		case '=', '!', '<', '>', '}':
			if depth == 0 {
				return p.s[start:p.i]
			}
			p.i++
		case ' ', '\t', '\n', '\r':
			if depth > 0 {
				p.i++
				continue
			}
			save := p.i
			p.skipSpace()
			for _, kw := range []string{"and", "return", "where"} {
				if strings.HasPrefix(p.s[p.i:], kw) {
					j := p.i + len(kw)
					if j >= len(p.s) || isBoundary(p.s[j]) {
						return p.s[start:save]
					}
				}
			}
		default:
			p.i++
		}
	}
	return p.s[start:]
}

func (p *uparser) cond(v string) (*Cond, error) {
	l, err := p.operand(v)
	if err != nil {
		return nil, err
	}
	op, err := p.cmpOp()
	if err != nil {
		return nil, err
	}
	r, err := p.operand(v)
	if err != nil {
		return nil, err
	}
	return &Cond{L: *l, Op: op, R: *r}, nil
}

func (p *uparser) cmpOp() (xpath.CmpOp, error) {
	p.skipSpace()
	two := ""
	if p.i+1 < len(p.s) {
		two = p.s[p.i : p.i+2]
	}
	switch two {
	case "!=":
		p.i += 2
		return xpath.OpNe, nil
	case "<=":
		p.i += 2
		return xpath.OpLe, nil
	case ">=":
		p.i += 2
		return xpath.OpGe, nil
	}
	if p.i < len(p.s) {
		switch p.s[p.i] {
		case '=':
			p.i++
			return xpath.OpEq, nil
		case '<':
			p.i++
			return xpath.OpLt, nil
		case '>':
			p.i++
			return xpath.OpGt, nil
		}
	}
	return xpath.OpNone, fmtErr("expected a comparison operator at %q", p.rest())
}

// operand parses $x, $x/path, a quoted string or a number.
func (p *uparser) operand(v string) (*Operand, error) {
	p.skipSpace()
	if p.i < len(p.s) && p.s[p.i] == '$' {
		name, ok := p.variable()
		if !ok || name != v {
			return nil, fmtErr("operand variable must be $%s at %q", v, p.rest())
		}
		if p.i < len(p.s) && p.s[p.i] == '/' {
			pathSrc := strings.TrimSpace(p.scanOperandPath())
			path, err := xpath.Parse(pathSrc)
			if err != nil {
				return nil, err
			}
			return &Operand{Path: path}, nil
		}
		return &Operand{}, nil
	}
	if p.i < len(p.s) && (p.s[p.i] == '"' || p.s[p.i] == '\'') {
		quote := p.s[p.i]
		end := strings.IndexByte(p.s[p.i+1:], quote)
		if end < 0 {
			return nil, fmtErr("unterminated string at %q", p.rest())
		}
		val := p.s[p.i+1 : p.i+1+end]
		p.i += end + 2
		return &Operand{IsConst: true, Const: val}, nil
	}
	// Number literal.
	j := p.i
	if j < len(p.s) && p.s[j] == '-' {
		j++
	}
	for j < len(p.s) && (p.s[j] >= '0' && p.s[j] <= '9' || p.s[j] == '.') {
		j++
	}
	if j > p.i && p.s[j-1] != '-' {
		val := p.s[p.i:j]
		p.i = j
		return &Operand{IsConst: true, Const: val}, nil
	}
	return nil, fmtErr("expected an operand at %q", p.rest())
}

// item parses the return clause: "$x[/path]" or an element template.
func (p *uparser) item(v string) (Item, error) {
	p.skipSpace()
	if p.i < len(p.s) && p.s[p.i] == '$' {
		op, err := p.operand(v)
		if err != nil {
			return nil, err
		}
		return &Hole{Operand: *op}, nil
	}
	if p.i < len(p.s) && p.s[p.i] == '<' {
		return p.template(v)
	}
	return nil, fmtErr("expected '$%s' or an element template at %q", v, p.rest())
}

// template parses <label>...</label> with nested templates, text and
// {operand} holes.
func (p *uparser) template(v string) (Item, error) {
	// p.s[p.i] == '<'
	p.i++
	name, ok := p.name()
	if !ok {
		return nil, fmtErr("expected an element name at %q", p.rest())
	}
	p.skipSpace()
	if strings.HasPrefix(p.s[p.i:], "/>") {
		p.i += 2
		return &ElemTemplate{Label: name}, nil
	}
	if p.i >= len(p.s) || p.s[p.i] != '>' {
		return nil, fmtErr("expected '>' in template <%s> at %q", name, p.rest())
	}
	p.i++
	t := &ElemTemplate{Label: name}
	for {
		if p.i >= len(p.s) {
			return nil, fmtErr("unterminated template <%s>", name)
		}
		switch {
		case strings.HasPrefix(p.s[p.i:], "</"):
			p.i += 2
			end, ok := p.name()
			if !ok || end != name {
				return nil, fmtErr("mismatched end tag </%s> for <%s>", end, name)
			}
			p.skipSpace()
			if p.i >= len(p.s) || p.s[p.i] != '>' {
				return nil, fmtErr("expected '>' in end tag </%s>", name)
			}
			p.i++
			return t, nil
		case p.s[p.i] == '<':
			child, err := p.template(v)
			if err != nil {
				return nil, err
			}
			t.Items = append(t.Items, child)
		case p.s[p.i] == '{':
			p.i++
			op, err := p.operand(v)
			if err != nil {
				return nil, err
			}
			p.skipSpace()
			if p.i >= len(p.s) || p.s[p.i] != '}' {
				return nil, fmtErr("expected '}' at %q", p.rest())
			}
			p.i++
			t.Items = append(t.Items, &Hole{Operand: *op})
		default:
			j := strings.IndexAny(p.s[p.i:], "<{")
			if j < 0 {
				return nil, fmtErr("unterminated template <%s>", name)
			}
			text := p.s[p.i : p.i+j]
			p.i += j
			if strings.TrimSpace(text) != "" {
				t.Items = append(t.Items, &TextItem{Data: text})
			}
		}
	}
}

func (p *uparser) name() (string, bool) {
	j := p.i
	for j < len(p.s) {
		c := p.s[j]
		if c == '_' || c == '-' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' {
			j++
			continue
		}
		break
	}
	if j == p.i {
		return "", false
	}
	n := p.s[p.i:j]
	p.i = j
	return n, true
}
