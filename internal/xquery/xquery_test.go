package xquery

import (
	"strings"
	"testing"

	"xtq/internal/sax"
	"xtq/internal/tree"
	"xtq/internal/xpath"
)

const site = `<site>
<people>
  <person id="person0"><name>Ada</name><profile><age>33</age></profile></person>
  <person id="person10"><name>Bob</name><profile><age>19</age></profile></person>
</people>
<regions>
  <africa><item id="item0"><location>United States</location><quantity>5</quantity><name>chair</name></item></africa>
  <asia><item id="item1"><location>Japan</location><quantity>1</quantity><name>desk</name></item></asia>
</regions>
</site>`

func parseDoc(t *testing.T, s string) *tree.Node {
	t.Helper()
	d, err := sax.ParseString(s)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestParseAndEvalSimple(t *testing.T) {
	q := MustParse(`for $x in /site/people/person return $x`)
	doc := parseDoc(t, site)
	res, err := q.Eval(doc)
	if err != nil {
		t.Fatal(err)
	}
	root := res.Root()
	if root.Label != "result" || len(root.Children) != 2 {
		t.Fatalf("result = %s", res)
	}
	if root.Children[0].Label != "person" {
		t.Errorf("first item = %s", root.Children[0])
	}
}

func TestParseWhere(t *testing.T) {
	q := MustParse(`for $x in /site/people/person where $x/profile/age > 20 return $x/name`)
	doc := parseDoc(t, site)
	res, err := q.Eval(doc)
	if err != nil {
		t.Fatal(err)
	}
	root := res.Root()
	if len(root.Children) != 1 || root.Children[0].Value() != "Ada" {
		t.Fatalf("result = %s", res)
	}
}

func TestParseWhereConjunction(t *testing.T) {
	q := MustParse(`for $x in /site/regions//item where $x/location = "United States" and $x/quantity > 2 return <hit>{$x/name}</hit>`)
	doc := parseDoc(t, site)
	res, err := q.Eval(doc)
	if err != nil {
		t.Fatal(err)
	}
	root := res.Root()
	if len(root.Children) != 1 {
		t.Fatalf("result = %s", res)
	}
	hit := root.Children[0]
	if hit.Label != "hit" || tree.CountLabel(hit, "name") != 1 {
		t.Errorf("hit = %s", hit)
	}
}

func TestParseAttributeCond(t *testing.T) {
	q := MustParse(`for $x in /site/people/person where $x/@id = "person10" return $x/name`)
	doc := parseDoc(t, site)
	res, err := q.Eval(doc)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Root().Children[0].Value(); got != "Bob" {
		t.Errorf("got %q", got)
	}
}

func TestQualifierInForPath(t *testing.T) {
	q := MustParse(`for $x in /site/people/person[@id = "person10"] return $x`)
	doc := parseDoc(t, site)
	res, err := q.Eval(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Root().Children) != 1 {
		t.Fatalf("result = %s", res)
	}
}

func TestTemplateNestedAndText(t *testing.T) {
	q := MustParse(`for $x in /site/people/person return <p><label>who: </label><inner>{$x/name}</inner><flag/></p>`)
	doc := parseDoc(t, site)
	res, err := q.Eval(doc)
	if err != nil {
		t.Fatal(err)
	}
	first := res.Root().Children[0]
	if first.Label != "p" || len(first.Children) != 3 {
		t.Fatalf("instance = %s", first)
	}
	if first.Children[0].Value() != "who: " {
		t.Errorf("text = %q", first.Children[0].Value())
	}
	if first.Children[2].Label != "flag" {
		t.Errorf("flag missing")
	}
}

func TestConstHole(t *testing.T) {
	q := MustParse(`for $x in /site/people/person return <p>{"marker"}</p>`)
	doc := parseDoc(t, site)
	res, err := q.Eval(doc)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Root().Children[0].Value(); got != "marker" {
		t.Errorf("const hole = %q", got)
	}
}

func TestAttributeHole(t *testing.T) {
	q := MustParse(`for $x in /site/people/person return <id>{$x/@id}</id>`)
	doc := parseDoc(t, site)
	res, err := q.Eval(doc)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Root().Children[0].Value(); got != "person0" {
		t.Errorf("attr hole = %q", got)
	}
}

func TestSelfOperand(t *testing.T) {
	q := MustParse(`for $x in /site/people/person/name where $x = "Ada" return $x`)
	doc := parseDoc(t, site)
	res, err := q.Eval(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Root().Children) != 1 {
		t.Fatalf("result = %s", res)
	}
}

func TestNumericConstOperand(t *testing.T) {
	q := MustParse(`for $x in /site/regions//item where $x/quantity >= 5 return $x`)
	doc := parseDoc(t, site)
	res, err := q.Eval(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Root().Children) != 1 {
		t.Fatalf("result = %s", res)
	}
}

func TestStringRoundTrip(t *testing.T) {
	queries := []string{
		`for $x in /site/people/person return $x`,
		`for $x in /site/people/person[@id = "person10"] return $x`,
		`for $x in /site/regions//item where $x/location = "United States" return <hit>{$x/name}</hit>`,
		`for $x in /site/people/person where $x/profile/age > 20 and $x/@id != "x" return $x/name`,
	}
	for _, src := range queries {
		q, err := Parse(src)
		if err != nil {
			t.Errorf("Parse(%q): %v", src, err)
			continue
		}
		again, err := Parse(q.String())
		if err != nil {
			t.Errorf("reparse of %q: %v", q.String(), err)
			continue
		}
		if again.String() != q.String() {
			t.Errorf("render not fixpoint:\n%q\n%q", q.String(), again.String())
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		``,
		`for`,
		`for x in /a return $x`,
		`for $x /a return $x`,
		`for $x in return $x`,
		`for $x in /a[ return $x`,
		`for $x in /a where return $x`,
		`for $x in /a where $x/b return $x`,
		`for $x in /a where $x/b = return $x`,
		`for $x in /a where $y/b = "1" return $x`,
		`for $x in /a where $x/b = 'unterminated return $x`,
		`for $x in /a`,
		`for $x in /a return`,
		`for $x in /a return <t>{$x}`,
		`for $x in /a return <t></u>`,
		`for $x in /a return <t>{$x</t>`,
		`for $x in /a return < t/>`,
		`for $x in /a return $x junk`,
		`for $x in /a return 42`,
		`for $x in /a/@id return $x`,
	}
	for _, src := range cases {
		if q, err := Parse(src); err == nil {
			t.Errorf("Parse accepted %q as %q", src, q.String())
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustParse("broken")
}

func TestEvalSharesNodes(t *testing.T) {
	// Returned nodes are shared with the source document (immutability
	// convention); the composition tests rely on this.
	doc := parseDoc(t, site)
	q := MustParse(`for $x in /site/people/person return $x`)
	res, err := q.Eval(doc)
	if err != nil {
		t.Fatal(err)
	}
	persons := xpath.Select(doc, xpath.MustParse("site/people/person"))
	if res.Root().Children[0] != persons[0] {
		t.Errorf("returned node is not shared")
	}
}

func TestValidate(t *testing.T) {
	good := MustParse(`for $x in /site return $x`)
	bad := []*UserQuery{
		{Var: "", Path: good.Path, Return: good.Return},
		{Var: "x", Return: good.Return},
		{Var: "x", Path: good.Path},
		{Var: "x", Path: good.Path, Return: good.Return,
			Conds: []Cond{{L: Operand{IsConst: true, Const: "1"}, Op: xpath.OpNone, R: Operand{IsConst: true, Const: "1"}}}},
	}
	for i, q := range bad {
		if err := q.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestOperandString(t *testing.T) {
	cases := []struct {
		o    Operand
		want string
	}{
		{Operand{IsConst: true, Const: "abc"}, `"abc"`},
		{Operand{}, "$x"},
		{Operand{Path: xpath.MustParse("a/b")}, "$x/a/b"},
		{Operand{Path: xpath.MustParse("//a")}, "$x//a"},
	}
	for _, tc := range cases {
		if got := tc.o.String("x"); got != tc.want {
			t.Errorf("String = %q, want %q", got, tc.want)
		}
	}
}

func TestWhitespaceInsignificant(t *testing.T) {
	q1 := MustParse("for $x in /site/people/person\n  where $x/profile/age > 20\n  return $x")
	q2 := MustParse(`for $x in /site/people/person where $x/profile/age > 20 return $x`)
	if q1.String() != q2.String() {
		t.Errorf("%q vs %q", q1.String(), q2.String())
	}
}

func TestTemplateKeepsSignificantText(t *testing.T) {
	q := MustParse(`for $x in /site return <t>  </t>`)
	et := q.Return.(*ElemTemplate)
	if len(et.Items) != 0 {
		t.Errorf("whitespace-only template text should be dropped, got %d items", len(et.Items))
	}
	if !strings.Contains(q.String(), "<t>") {
		t.Errorf("String = %q", q.String())
	}
}
