// Package xquery implements the restricted XQuery user-query form of §4 of
// Fan, Cong & Bohannon (SIGMOD 2007):
//
//	for $x in ρ
//	where ρ'1 op ρ''1 and … and ρ'k op ρ''k
//	return exp(̺1, …, ̺m)
//
// where ρ is an X path evaluated from the document node, the ρ'/ρ”/̺
// operands are either constants or $x-relative X paths, and exp is an XML
// element template with holes. This is the class of user queries the
// paper's composition algorithm accepts; the compose package rewrites
// values of this type against a transform query.
package xquery

import (
	"errors"
	"fmt"
	"strings"

	"xtq/internal/tree"
	"xtq/internal/xpath"
)

// Operand is a constant or an $x-relative path.
type Operand struct {
	IsConst bool
	Const   string
	Path    *xpath.Path // nil means "$x" itself (the self path)
}

// String renders the operand with the given variable name.
func (o Operand) String(v string) string {
	if o.IsConst {
		return quote(o.Const)
	}
	if o.Path == nil || len(o.Path.Steps) == 0 {
		return "$" + v
	}
	ps := o.Path.String()
	if strings.HasPrefix(ps, "/") {
		return "$" + v + ps
	}
	return "$" + v + "/" + ps
}

// Values returns the comparison values of the operand at context node n:
// the constant itself, or the values of the nodes selected by the path
// (with attribute-final paths yielding attribute values).
func (o Operand) Values(n *tree.Node) []string {
	if o.IsConst {
		return []string{o.Const}
	}
	if o.Path == nil || len(o.Path.Steps) == 0 {
		return []string{n.Value()}
	}
	steps := o.Path.Steps
	var attr string
	if k := len(steps); steps[k-1].Axis == xpath.Attribute {
		attr = steps[k-1].Label
		steps = steps[:k-1]
	}
	nodes := xpath.Select(n, &xpath.Path{Steps: steps})
	var out []string
	for _, m := range nodes {
		if attr != "" {
			if v, ok := m.Attr(attr); ok {
				out = append(out, v)
			}
			continue
		}
		out = append(out, m.Value())
	}
	return out
}

// Cond is one where-clause comparison ρ' op ρ”.
type Cond struct {
	L  Operand
	Op xpath.CmpOp
	R  Operand
}

// Holds evaluates the condition at context node n with the existential
// semantics of XPath general comparisons.
func (c Cond) Holds(n *tree.Node) bool {
	for _, l := range c.L.Values(n) {
		for _, r := range c.R.Values(n) {
			if xpath.Compare(l, c.Op, r) {
				return true
			}
		}
	}
	return false
}

// String renders the condition.
func (c Cond) String(v string) string {
	return c.L.String(v) + " " + c.Op.String() + " " + c.R.String(v)
}

// Item is a node of the return template: an element constructor, literal
// text, or a hole whose operand is spliced in.
type Item interface {
	item()
	render(v string, b *strings.Builder)
}

// ElemTemplate constructs an element with the given label and child items.
type ElemTemplate struct {
	Label string
	Items []Item
}

// TextItem is literal character data.
type TextItem struct {
	Data string
}

// Hole splices the nodes (or constant) selected by Operand.
type Hole struct {
	Operand Operand
}

func (*ElemTemplate) item() {}
func (*TextItem) item()     {}
func (*Hole) item()         {}

func (e *ElemTemplate) render(v string, b *strings.Builder) {
	b.WriteByte('<')
	b.WriteString(e.Label)
	b.WriteByte('>')
	for _, it := range e.Items {
		it.render(v, b)
	}
	b.WriteString("</")
	b.WriteString(e.Label)
	b.WriteByte('>')
}

func (t *TextItem) render(_ string, b *strings.Builder) { b.WriteString(t.Data) }

func (h *Hole) render(v string, b *strings.Builder) {
	b.WriteByte('{')
	b.WriteString(h.Operand.String(v))
	b.WriteByte('}')
}

// UserQuery is the restricted for/where/return query of §4.
type UserQuery struct {
	Var   string
	Path  *xpath.Path
	Conds []Cond
	// Return is the constructed output: an element template or a bare
	// hole (e.g. "return $x").
	Return Item
}

// Validate checks the query's well-formedness.
func (q *UserQuery) Validate() error {
	if q.Var == "" {
		return errors.New("xquery: user query without variable")
	}
	if q.Path == nil || len(q.Path.Steps) == 0 {
		return errors.New("xquery: user query without a for path")
	}
	if q.Path.HasAttributeStep() {
		return errors.New("xquery: for path must select elements")
	}
	if q.Return == nil {
		return errors.New("xquery: user query without a return clause")
	}
	for _, c := range q.Conds {
		if c.Op == xpath.OpNone {
			return errors.New("xquery: condition without operator")
		}
	}
	return nil
}

// String renders the query in XQuery surface syntax.
func (q *UserQuery) String() string {
	var b strings.Builder
	b.WriteString("for $")
	b.WriteString(q.Var)
	b.WriteString(" in ")
	ps := q.Path.String()
	if !strings.HasPrefix(ps, "/") {
		b.WriteByte('/')
	}
	b.WriteString(ps)
	if len(q.Conds) > 0 {
		b.WriteString(" where ")
		for i, c := range q.Conds {
			if i > 0 {
				b.WriteString(" and ")
			}
			b.WriteString(c.String(q.Var))
		}
	}
	b.WriteString(" return ")
	switch r := q.Return.(type) {
	case *Hole:
		b.WriteString(r.Operand.String(q.Var))
	default:
		q.Return.render(q.Var, &b)
	}
	return b.String()
}

// Eval evaluates the user query over doc and returns a document with a
// <result> root wrapping the constructed items, following the enclosing
// element of the paper's Examples 4.1/4.2.
func (q *UserQuery) Eval(doc *tree.Node) (*tree.Node, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	result := tree.NewElement("result")
	for _, n := range xpath.Select(doc, q.Path) {
		if !q.condsHold(n) {
			continue
		}
		result.Children = append(result.Children, q.instantiate(n)...)
	}
	return tree.NewDocument(result), nil
}

func (q *UserQuery) condsHold(n *tree.Node) bool {
	for _, c := range q.Conds {
		if !c.Holds(n) {
			return false
		}
	}
	return true
}

// instantiate builds the return value for one binding of $x. Selected
// nodes are shared with the input tree (trees are immutable values).
func (q *UserQuery) instantiate(x *tree.Node) []*tree.Node {
	return instantiateItem(q.Return, x)
}

func instantiateItem(it Item, x *tree.Node) []*tree.Node {
	switch it := it.(type) {
	case *TextItem:
		return []*tree.Node{tree.NewText(it.Data)}
	case *Hole:
		return holeNodes(it.Operand, x)
	case *ElemTemplate:
		e := tree.NewElement(it.Label)
		for _, c := range it.Items {
			e.Children = append(e.Children, instantiateItem(c, x)...)
		}
		return []*tree.Node{e}
	default:
		return nil
	}
}

func holeNodes(o Operand, x *tree.Node) []*tree.Node {
	if o.IsConst {
		return []*tree.Node{tree.NewText(o.Const)}
	}
	if o.Path == nil || len(o.Path.Steps) == 0 {
		return []*tree.Node{x}
	}
	steps := o.Path.Steps
	if steps[len(steps)-1].Axis == xpath.Attribute {
		// Attribute holes yield the attribute values as text.
		var out []*tree.Node
		for _, v := range o.Values(x) {
			out = append(out, tree.NewText(v))
		}
		return out
	}
	return xpath.Select(x, o.Path)
}

func quote(s string) string {
	return `"` + s + `"`
}

func fmtErr(format string, args ...any) error {
	return fmt.Errorf("xquery: "+format, args...)
}
