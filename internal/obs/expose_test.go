package obs

import (
	"strings"
	"testing"
	"time"

	"xtq/internal/obs/obstest"
)

// TestExpositionGolden pins the exact text exposition of a small
// registry: format drift (spacing, ordering, escaping, le rendering)
// fails here before any scraper sees it.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	c := r.CounterVec("app_requests_total", "Requests served.", "route", "code")
	c.With("/docs", "200").Add(3)
	c.With("/docs", "500").Inc()
	g := r.Gauge("app_in_flight", "In-flight requests.")
	g.Set(2)
	r.GaugeFunc("app_answer", "The answer.", func() float64 { return 42 })

	var sb strings.Builder
	if err := r.WriteTo(&sb, Label{Name: "role", Value: "primary"}); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		`# HELP app_answer The answer.`,
		`# TYPE app_answer gauge`,
		`app_answer{role="primary"} 42`,
		`# HELP app_in_flight In-flight requests.`,
		`# TYPE app_in_flight gauge`,
		`app_in_flight{role="primary"} 2`,
		`# HELP app_requests_total Requests served.`,
		`# TYPE app_requests_total counter`,
		`app_requests_total{code="200",role="primary",route="/docs"} 3`,
		`app_requests_total{code="500",role="primary",route="/docs"} 1`,
		``,
	}, "\n")
	if got := sb.String(); got != want {
		t.Fatalf("exposition mismatch:\n got:\n%s\nwant:\n%s", got, want)
	}
}

func TestExpositionHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("app_lat_seconds", "Latency.")
	h.Observe(3 * time.Microsecond) // lands in the 4µs bucket
	var sb strings.Builder
	if err := r.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		`# TYPE app_lat_seconds histogram`,
		`app_lat_seconds_bucket{le="1e-06"} 0`,
		`app_lat_seconds_bucket{le="4e-06"} 1`,
		`app_lat_seconds_bucket{le="+Inf"} 1`,
		`app_lat_seconds_sum 3e-06`,
		`app_lat_seconds_count 1`,
	} {
		if !strings.Contains(text, want+"\n") {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
}

func TestExpositionEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("app_esc_total", "Help with \\ and\nnewline.", "q").
		With("a\"b\\c\nd").Inc()
	var sb strings.Builder
	if err := r.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	if !strings.Contains(text, `# HELP app_esc_total Help with \\ and\nnewline.`) {
		t.Fatalf("HELP not escaped:\n%s", text)
	}
	if !strings.Contains(text, `app_esc_total{q="a\"b\\c\nd"} 1`) {
		t.Fatalf("label value not escaped:\n%s", text)
	}
}

// TestLintExposition runs the shared exposition lint (obstest.Lint)
// over a registry exercising every instrument type — the golden lint
// the serving layer's /metrics test repeats over the full production
// family set.
func TestLintExposition(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("app_ops_total", "Ops.", "kind").With("read").Add(7)
	r.Gauge("app_subscribers", "Subscribers.").Set(3)
	h := r.HistogramVec("app_commit_seconds", "Commit latency.", "kind")
	h.With("update").Observe(time.Millisecond)
	h.With("put").Observe(3 * time.Second)
	var sb strings.Builder
	if err := r.WriteTo(&sb, Label{Name: "role", Value: "primary"}); err != nil {
		t.Fatal(err)
	}
	fams := obstest.Lint(t, sb.String())
	for _, want := range []string{"app_ops_total", "app_subscribers", "app_commit_seconds"} {
		if _, ok := fams[want]; !ok {
			t.Fatalf("lint lost family %q", want)
		}
	}
}
