package obs

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "ops")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("test_depth", "depth")
	g.Set(7)
	g.Add(-2)
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
	// Re-registering the same shape returns the same instrument.
	if r.Counter("test_ops_total", "ops") != c {
		t.Fatal("re-registration returned a different counter")
	}
}

func TestKillSwitch(t *testing.T) {
	defer SetEnabled(true)
	r := NewRegistry()
	c := r.Counter("test_total", "t")
	h := r.Histogram("test_seconds", "t")
	g := r.Gauge("test_gauge", "t")
	SetEnabled(false)
	if Enabled() {
		t.Fatal("Enabled() after SetEnabled(false)")
	}
	c.Add(10)
	h.Observe(time.Millisecond)
	g.Inc() // gauges ignore the switch
	if c.Value() != 0 || h.Count() != 0 {
		t.Fatalf("disabled instruments recorded: counter=%d hist=%d", c.Value(), h.Count())
	}
	if g.Value() != 1 {
		t.Fatalf("disabled gauge = %d, want 1", g.Value())
	}
	SetEnabled(true)
	c.Inc()
	if c.Value() != 1 {
		t.Fatalf("re-enabled counter = %d, want 1", c.Value())
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_lat_seconds", "latency")
	// 100 observations at 1ms, 100 at 100ms: p50 inside the 1ms bucket
	// region, p99 near 100ms.
	for i := 0; i < 100; i++ {
		h.Observe(time.Millisecond)
		h.Observe(100 * time.Millisecond)
	}
	if got := h.Count(); got != 200 {
		t.Fatalf("count = %d, want 200", got)
	}
	if got, want := h.Sum(), 200*50500*time.Microsecond; got != want {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	p50 := h.Quantile(0.5)
	if p50 <= 0 || p50 > 2*time.Millisecond {
		t.Fatalf("p50 = %v, want (0, 2ms]", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 50*time.Millisecond || p99 > 200*time.Millisecond {
		t.Fatalf("p99 = %v, want [50ms, 200ms]", p99)
	}
}

func TestHistogramZero(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_zero_seconds", "z")
	if h.Quantile(0.99) != 0 {
		t.Fatal("quantile of empty histogram != 0")
	}
	h.Observe(-time.Second) // clamped, lands in the lowest bucket
	if h.Count() != 1 || h.Sum() != 0 {
		t.Fatalf("negative observation: count=%d sum=%v", h.Count(), h.Sum())
	}
}

func TestVecChildren(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("test_req_total", "requests", "route", "code")
	v.With("/docs", "200").Add(3)
	v.With("/docs", "404").Inc()
	if v.With("/docs", "200").Value() != 3 {
		t.Fatal("child not shared across With calls")
	}
	hv := r.HistogramVec("test_h_seconds", "h", "m")
	hv.With("a").Observe(time.Millisecond)
	if hv.With("a").Count() != 1 {
		t.Fatal("histogram child lost an observation")
	}
}

func TestRegistryVersionAdvances(t *testing.T) {
	r := NewRegistry()
	v0 := r.Version()
	c := r.CounterVec("test_total", "t", "l")
	v1 := r.Version()
	if v1 <= v0 {
		t.Fatal("version did not advance on family registration")
	}
	c.With("x")
	if r.Version() <= v1 {
		t.Fatal("version did not advance on child creation")
	}
	c.With("x") // existing child: no bump
	v2 := r.Version()
	c.With("x")
	if r.Version() != v2 {
		t.Fatal("version advanced on a repeat With")
	}
}

func TestInvalidNamesPanic(t *testing.T) {
	r := NewRegistry()
	mustPanic(t, func() { r.Counter("bad name", "h") })
	mustPanic(t, func() { r.CounterVec("ok_total", "h", "bad-label") })
	mustPanic(t, func() { r.HistogramVec("h_seconds", "h", "le") })
	r.Counter("shape_total", "h")
	mustPanic(t, func() { r.Gauge("shape_total", "h") })
	mustPanic(t, func() { r.CounterVec("shape_total", "h", "l") })
}

func mustPanic(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	fn()
}

func TestTrace(t *testing.T) {
	tr := NewTrace()
	tr.SetMethod("topdown")
	tr.SetCacheHit(true)
	tr.AddCompile(2 * time.Millisecond)
	tr.AddEval(3 * time.Millisecond)
	tr.SetDocNodes(42)
	var a, b uint32 = 100, 24
	tr.AddVisitCounter(&a)
	tr.AddVisitCounter(&b)
	if tr.Method() != "topdown" {
		t.Fatalf("method = %q", tr.Method())
	}
	if hit, known := tr.CacheHit(); !hit || !known {
		t.Fatal("cache hit not recorded")
	}
	if tr.NodesVisited() != 124 {
		t.Fatalf("nodes visited = %d, want 124", tr.NodesVisited())
	}
	if tr.Compile() != 2*time.Millisecond || tr.Eval() != 3*time.Millisecond {
		t.Fatal("durations not recorded")
	}
	if tr.DocNodes() != 42 {
		t.Fatal("doc nodes not recorded")
	}
}

func TestTraceContext(t *testing.T) {
	if TraceFrom(nil) != nil {
		t.Fatal("TraceFrom(nil) != nil")
	}
	tr := NewTrace()
	ctx := WithTrace(context.Background(), tr)
	if TraceFrom(ctx) != tr {
		t.Fatal("trace not carried by context")
	}
}

// TestHistogramConcurrency hammers one histogram from 8 writers while
// scraping the registry concurrently — the -race proof that Observe and
// WriteTo never synchronize wrongly, and that cumulative bucket counts
// in any scrape are monotonic.
func TestHistogramConcurrency(t *testing.T) {
	r := NewRegistry()
	h := r.HistogramVec("test_conc_seconds", "concurrent", "writer")
	const writers, perWriter = 8, 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		child := h.With("w")
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				child.Observe(time.Duration(1+i%1000) * time.Microsecond)
			}
		}(w)
	}
	var scrapes sync.WaitGroup
	for s := 0; s < 4; s++ {
		scrapes.Add(1)
		go func() {
			defer scrapes.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var sb strings.Builder
				if err := r.WriteTo(&sb); err != nil {
					t.Error(err)
					return
				}
				assertMonotonicBuckets(t, sb.String())
			}
		}()
	}
	wg.Wait()
	close(stop)
	scrapes.Wait()
	if got := h.With("w").Count(); got != writers*perWriter {
		t.Fatalf("count = %d, want %d", got, writers*perWriter)
	}
}

// assertMonotonicBuckets parses one exposition and checks every
// histogram's cumulative bucket counts never decrease.
func assertMonotonicBuckets(t *testing.T, text string) {
	t.Helper()
	var prev uint64
	var inBuckets bool
	for _, line := range strings.Split(text, "\n") {
		if !strings.Contains(line, "_bucket{") {
			inBuckets = false
			continue
		}
		var v uint64
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Errorf("malformed sample %q", line)
			return
		}
		for _, ch := range fields[1] {
			v = v*10 + uint64(ch-'0')
		}
		if inBuckets && v < prev {
			t.Errorf("bucket counts decreased: %q after %d", line, prev)
			return
		}
		prev, inBuckets = v, true
	}
}
