package obs

import (
	"context"
	"sync"
	"time"
)

// Trace is the per-request trace context: one value created at the top
// of a request (or any caller wanting an EXPLAIN view of one
// evaluation), carried down through the layers in the context, and
// filled in by whichever layers run — the engine records the method,
// query-cache outcome and compile/eval time, the evaluators register
// their node-visit counters, the view layer its per-layer statistics,
// the store its commit cost. The serving layer turns a completed Trace
// into the ?explain=1 JSON body, the X-Xtq-View-Stats header and the
// slow-query log line, all from this one source.
//
// A Trace is written by the request's own goroutine as it descends the
// layers; setters are mutex-guarded so incidental cross-goroutine use
// is safe, but the read-out (NodesVisited and friends) is only
// meaningful after the traced evaluation returned.
type Trace struct {
	start time.Time

	mu sync.Mutex
	// method is the evaluation method actually used ("topdown", ...,
	// "twopassSAX", or "composed" for single-pass view composition).
	method string
	// cacheKnown/cacheHit record the compiled-query cache outcome of the
	// Prepare that fed this request.
	cacheKnown bool
	cacheHit   bool
	compile    time.Duration
	eval       time.Duration
	docNodes   int
	// docNodesFn computes the document size on first DocNodes read, so
	// a traced request that never renders its trace (most of them — the
	// trace only surfaces for ?explain=1 and slow-query lines) never
	// pays the O(n) size walk.
	docNodesFn func() int
	// visits are the evaluators' node-visit counters (core.Canceler
	// registers one per evaluation pass); their sum is the nodes-visited
	// figure of the trace.
	visits []*uint32

	plan   *PlanTrace
	view   *ViewTrace
	commit *CommitTrace
}

// PlanTrace is the planner section of a trace: what the cost-based
// method planner decided (or would have decided, when ?method= forced
// the choice) for this request, with its estimates — ?explain=1 pairs
// them with the actual visit counters.
type PlanTrace struct {
	// Method is the method the planner chose.
	Method string `json:"method"`
	// Auto reports whether the planner's choice was actually used
	// (false when a forced ?method= overrode it).
	Auto bool `json:"auto"`
	// EstNodes and EstCost are the model's estimates for the method
	// that ran: predicted visited nodes and cost in visit units.
	EstNodes int64   `json:"est_nodes"`
	EstCost  float64 `json:"est_cost"`
	// Reason is the planner's one-line justification.
	Reason string `json:"reason,omitempty"`
	// CacheHit reports whether the decision came from the engine's
	// decision cache rather than a fresh cost-model run.
	CacheHit bool `json:"decision_cache_hit,omitempty"`
}

// ViewTrace is the view-read section of a trace: the same reading the
// ivm layer reports per materialized-view read, JSON-compatible with
// the historical X-Xtq-View-Stats header (which is now serialized from
// here — the trace is the one source of truth the header and EXPLAIN
// both read).
type ViewTrace struct {
	Doc     string `json:"doc"`
	View    string `json:"view"`
	Version uint64 `json:"version"`
	// Source is "cache" when the read was served from a current
	// materialization, "recompute" when it was evaluated on demand.
	Source   string `json:"source"`
	CacheHit bool   `json:"cacheHit"`
	// Commit-path counters of the cache entry.
	DeltaCommits      int `json:"deltaCommits"`
	FullCommits       int `json:"fullCommits"`
	UnaffectedCommits int `json:"unaffectedCommits"`
	UnknownCommits    int `json:"unknownCommits"`
	// Work counters of the evaluation the entry's tree came from.
	NodesVisited   int `json:"nodesVisited"`
	Materialized   int `json:"materialized"`
	ReusedSubtrees int `json:"reusedSubtrees"`
	// Layers breaks the work down per transform layer.
	Layers []LayerTrace `json:"layers,omitempty"`
}

// LayerTrace is the per-transform-layer work of a view evaluation.
type LayerTrace struct {
	NodesVisited int `json:"NodesVisited"`
	Materialized int `json:"Materialized"`
}

// CommitTrace is the write section of a trace: what the store's commit
// of this request cost, filled in by the store's apply path.
type CommitTrace struct {
	Kind    string `json:"kind"` // put, update, remove
	Version uint64 `json:"version"`
	NoOp    bool   `json:"noop,omitempty"`
	// Copy-on-write cost and structure sharing of the commit.
	CopiedNodes    int   `json:"copied_nodes"`
	CopiedBytes    int64 `json:"copied_bytes"`
	SharedWithPrev int   `json:"shared_with_prev,omitempty"`
	CopiedChunks   int   `json:"copied_chunks,omitempty"`
	SharedChunks   int   `json:"shared_chunks,omitempty"`
	// Retries counts CAS rounds this commit lost before winning.
	Retries int `json:"retries,omitempty"`
}

// NewTrace returns an empty trace anchored at now.
func NewTrace() *Trace { return &Trace{start: time.Now()} }

// Elapsed returns the wall time since the trace was created.
func (t *Trace) Elapsed() time.Duration { return time.Since(t.start) }

// SetMethod records the evaluation method actually used.
func (t *Trace) SetMethod(m string) {
	t.mu.Lock()
	t.method = m
	t.mu.Unlock()
}

// Method returns the recorded evaluation method.
func (t *Trace) Method() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.method
}

// SetCacheHit records the compiled-query cache outcome.
func (t *Trace) SetCacheHit(hit bool) {
	t.mu.Lock()
	t.cacheKnown, t.cacheHit = true, hit
	t.mu.Unlock()
}

// CacheHit returns the query-cache outcome and whether one was
// recorded.
func (t *Trace) CacheHit() (hit, known bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.cacheHit, t.cacheKnown
}

// AddCompile accumulates compile time.
func (t *Trace) AddCompile(d time.Duration) {
	t.mu.Lock()
	t.compile += d
	t.mu.Unlock()
}

// Compile returns the accumulated compile time.
func (t *Trace) Compile() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.compile
}

// AddEval accumulates evaluation time.
func (t *Trace) AddEval(d time.Duration) {
	t.mu.Lock()
	t.eval += d
	t.mu.Unlock()
}

// Eval returns the accumulated evaluation time.
func (t *Trace) Eval() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.eval
}

// SetDocNodes records the size of the document evaluated over.
func (t *Trace) SetDocNodes(n int) {
	t.mu.Lock()
	t.docNodes, t.docNodesFn = n, nil
	t.mu.Unlock()
}

// SetDocNodesFunc records a deferred size computation, run (once) only
// if the trace is actually read out.
func (t *Trace) SetDocNodesFunc(fn func() int) {
	t.mu.Lock()
	t.docNodesFn = fn
	t.mu.Unlock()
}

// DocNodes returns the recorded document size, resolving a deferred
// computation on first call.
func (t *Trace) DocNodes() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.docNodesFn != nil {
		t.docNodes, t.docNodesFn = t.docNodesFn(), nil
	}
	return t.docNodes
}

// AddVisitCounter registers an evaluator's node-visit counter. The
// counter is read by NodesVisited after the evaluation returns; the
// evaluator increments it without synchronization on its hot loop.
func (t *Trace) AddVisitCounter(p *uint32) {
	t.mu.Lock()
	t.visits = append(t.visits, p)
	t.mu.Unlock()
}

// NodesVisited sums the registered visit counters — the nodes the
// evaluators actually touched for this request. Only meaningful after
// the traced evaluation returned.
func (t *Trace) NodesVisited() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	var n uint64
	for _, p := range t.visits {
		n += uint64(*p)
	}
	return int(n)
}

// SetPlan records the planner section.
func (t *Trace) SetPlan(p *PlanTrace) {
	t.mu.Lock()
	t.plan = p
	t.mu.Unlock()
}

// Plan returns the planner section, nil when no planner ran.
func (t *Trace) Plan() *PlanTrace {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.plan
}

// SetView records the view-read section.
func (t *Trace) SetView(v *ViewTrace) {
	t.mu.Lock()
	t.view = v
	t.mu.Unlock()
}

// View returns the view-read section, nil when the request read no
// view.
func (t *Trace) View() *ViewTrace {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.view
}

// SetCommit records the commit section.
func (t *Trace) SetCommit(c *CommitTrace) {
	t.mu.Lock()
	t.commit = c
	t.mu.Unlock()
}

// Commit returns the commit section, nil when the request committed
// nothing.
func (t *Trace) Commit() *CommitTrace {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.commit
}

// traceKey is the context key carrying a *Trace.
type traceKey struct{}

// WithTrace returns ctx carrying t.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, t)
}

// TraceFrom returns the trace carried by ctx, or nil. Layers call it at
// their instrumentation points and skip the bookkeeping when no trace
// rides the request.
func TraceFrom(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}
