// Package obs is the unified observability layer: a dependency-free,
// goroutine-safe metrics registry (counters, gauges, fixed-bucket
// latency histograms) with Prometheus text exposition, plus a
// per-request trace context the serving layer turns into EXPLAIN
// output and slow-query log lines.
//
// The design optimizes the instrumentation points, not the scrape: the
// hot path of every instrument is one package-level atomic load (the
// kill switch) plus one or two atomic adds — no locks, no allocation,
// no map lookups. Labeled families (CounterVec and friends) resolve
// their children under a mutex, so callers on hot paths resolve once at
// init and retain the child. Scraping walks the families under the
// registry lock but reads the instrument values with plain atomic
// loads; a scrape is a consistent-enough point-in-time reading, never a
// stop-the-world.
//
// Subsystems register their instruments on the Default registry at
// package init and increment them unconditionally; SetEnabled(false)
// turns every counter add and histogram observation into a no-op (the
// xbench -obs sweep measures exactly this delta). Gauges ignore the
// kill switch: their Inc/Dec pairs must stay balanced across a toggle.
package obs

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// disabled is the global kill switch, inverted so the zero value means
// enabled. Counter adds and histogram observations check it; gauges and
// traces do not.
var disabled atomic.Bool

// SetEnabled arms or disarms every counter and histogram in the
// process. Registration, exposition and gauges are unaffected.
func SetEnabled(on bool) { disabled.Store(!on) }

// Enabled reports whether counters and histograms record.
func Enabled() bool { return !disabled.Load() }

// Counter is a monotonically increasing value. The zero value is usable
// but unregistered; obtain registered counters from a Registry.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n. A no-op while the package is disabled.
func (c *Counter) Add(n uint64) {
	if disabled.Load() {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that goes up and down. Gauge operations ignore the
// kill switch so Inc/Dec pairs stay balanced across a toggle.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds delta (negative to subtract).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefBuckets are the default histogram bucket upper bounds: powers of
// two from 1µs to ~8.4s, sized for the latencies this system produces
// (sub-millisecond evals up to multi-second checkpoint and recovery
// work). 24 buckets keep p50/p99 interpolation within a factor of two
// everywhere.
var DefBuckets = defBuckets()

func defBuckets() []time.Duration {
	out := make([]time.Duration, 24)
	b := time.Microsecond
	for i := range out {
		out[i] = b
		b *= 2
	}
	return out
}

// Histogram is a fixed-bucket latency histogram: cumulative-on-read
// bucket counters plus a nanosecond sum. Observe is lock-free — one
// binary search over the bounds and two atomic adds.
type Histogram struct {
	bounds []time.Duration // sorted upper bounds; counts has one extra +Inf slot
	counts []atomic.Uint64
	sum    atomic.Int64 // nanoseconds
}

// Observe records one duration. A no-op while the package is disabled.
func (h *Histogram) Observe(d time.Duration) {
	if disabled.Load() {
		return
	}
	if d < 0 {
		d = 0
	}
	h.sum.Add(int64(d))
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if d > h.bounds[mid] {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo].Add(1)
}

// Since is Observe(time.Since(start)) — the idiomatic defer form.
func (h *Histogram) Since(start time.Time) { h.Observe(time.Since(start)) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the total observed time.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// Quantile estimates the q-quantile (0 < q < 1) by linear interpolation
// within the bucket containing it, the standard histogram_quantile
// estimate. Zero observations estimate zero.
func (h *Histogram) Quantile(q float64) time.Duration {
	total := h.Count()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var seen float64
	for i := range h.counts {
		c := float64(h.counts[i].Load())
		if seen+c < rank || c == 0 {
			seen += c
			continue
		}
		var lo, hi float64
		if i > 0 {
			lo = float64(h.bounds[i-1])
		}
		if i < len(h.bounds) {
			hi = float64(h.bounds[i])
		} else {
			// +Inf bucket: report its lower bound, the best finite answer.
			return time.Duration(lo)
		}
		return time.Duration(lo + (hi-lo)*(rank-seen)/c)
	}
	return time.Duration(h.bounds[len(h.bounds)-1])
}

// metricKind discriminates exposition TYPE lines.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// child is one labeled instrument of a family.
type child struct {
	labelValues []string
	counter     *Counter
	gauge       *Gauge
	hist        *Histogram
	gaugeFn     func() float64
}

// family is one named metric family: metadata plus its children. An
// unlabeled instrument is a family with a single child carrying no
// label values.
type family struct {
	name   string
	help   string
	kind   metricKind
	labels []string
	bounds []time.Duration // histograms only

	mu       sync.Mutex
	children []*child
	byKey    map[string]*child
}

var (
	nameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// Registry is a set of metric families. Families register once (by
// name; re-registering a name with the same shape returns the existing
// family, a different shape panics — instrument registration is
// programmer-controlled init-time code). The zero value is not usable;
// use NewRegistry or the package Default.
type Registry struct {
	mu      sync.Mutex
	fams    map[string]*family
	ordered []*family
	version atomic.Uint64
	start   time.Time
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family), start: time.Now()}
}

// Default is the process-wide registry every subsystem registers on.
var Default = NewRegistry()

// Version returns the registration version: it increments whenever a
// family or labeled child is created, so a scraper (or /healthz) can
// cheaply detect that the set of exposed series changed.
func (r *Registry) Version() uint64 { return r.version.Load() }

// Start returns when the registry was created — process start for the
// Default registry, which /healthz turns into uptime.
func (r *Registry) Start() time.Time { return r.start }

func (r *Registry) register(name, help string, kind metricKind, labels []string, bounds []time.Duration) *family {
	if !nameRe.MatchString(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !labelRe.MatchString(l) || l == "le" {
			panic(fmt.Sprintf("obs: invalid label name %q on %q", l, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f := r.fams[name]; f != nil {
		if f.kind != kind || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: metric %q re-registered with a different shape", name))
		}
		for i := range labels {
			if f.labels[i] != labels[i] {
				panic(fmt.Sprintf("obs: metric %q re-registered with different labels", name))
			}
		}
		return f
	}
	f := &family{name: name, help: help, kind: kind, labels: labels, bounds: bounds,
		byKey: make(map[string]*child)}
	r.fams[name] = f
	r.ordered = append(r.ordered, f)
	r.version.Add(1)
	return f
}

// childOf resolves (creating if absent) the child with the given label
// values.
func (r *Registry) childOf(f *family, values []string) *child {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := ""
	for _, v := range values {
		key += v + "\x1f"
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c := f.byKey[key]; c != nil {
		return c
	}
	c := &child{labelValues: append([]string(nil), values...)}
	switch f.kind {
	case kindCounter:
		c.counter = &Counter{}
	case kindGauge:
		c.gauge = &Gauge{}
	case kindHistogram:
		c.hist = &Histogram{bounds: f.bounds, counts: make([]atomic.Uint64, len(f.bounds)+1)}
	}
	f.byKey[key] = c
	f.children = append(f.children, c)
	r.version.Add(1)
	return c
}

// Counter registers (or returns) the unlabeled counter name.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, kindCounter, nil, nil)
	return r.childOf(f, nil).counter
}

// Gauge registers (or returns) the unlabeled gauge name.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, kindGauge, nil, nil)
	return r.childOf(f, nil).gauge
}

// GaugeFunc registers a gauge whose value is computed at scrape time —
// uptime, queue depths owned by other structures, and similar readings
// that are cheaper to compute than to maintain.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.register(name, help, kindGauge, nil, nil)
	c := r.childOf(f, nil)
	f.mu.Lock()
	c.gaugeFn = fn
	f.mu.Unlock()
}

// Histogram registers (or returns) the unlabeled histogram name with
// DefBuckets bounds.
func (r *Registry) Histogram(name, help string) *Histogram {
	f := r.register(name, help, kindHistogram, nil, DefBuckets)
	return r.childOf(f, nil).hist
}

// HistogramBuckets registers (or returns) the unlabeled histogram name
// with caller-chosen bucket upper bounds — for instruments that do not
// measure time (the bounds are still expressed as durations because the
// exposition renders all histogram samples in seconds: observe
// dimensionless ratios as time.Duration(ratio * float64(time.Second))
// and the scrape reads them back as plain numbers).
func (r *Registry) HistogramBuckets(name, help string, bounds []time.Duration) *Histogram {
	f := r.register(name, help, kindHistogram, nil, bounds)
	return r.childOf(f, nil).hist
}

// CounterVec is a counter family with labels; resolve children with
// With (and retain them — resolution takes the family lock).
type CounterVec struct {
	r *Registry
	f *family
}

// CounterVec registers (or returns) the labeled counter family name.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r: r, f: r.register(name, help, kindCounter, labels, nil)}
}

// With returns the child for the given label values, creating it on
// first use.
func (v *CounterVec) With(values ...string) *Counter {
	return v.r.childOf(v.f, values).counter
}

// GaugeVec is a gauge family with labels.
type GaugeVec struct {
	r *Registry
	f *family
}

// GaugeVec registers (or returns) the labeled gauge family name.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r: r, f: r.register(name, help, kindGauge, labels, nil)}
}

// With returns the child for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.r.childOf(v.f, values).gauge
}

// HistogramVec is a histogram family with labels.
type HistogramVec struct {
	r *Registry
	f *family
}

// HistogramVec registers (or returns) the labeled histogram family name
// with DefBuckets bounds.
func (r *Registry) HistogramVec(name, help string, labels ...string) *HistogramVec {
	return &HistogramVec{r: r, f: r.register(name, help, kindHistogram, labels, DefBuckets)}
}

// With returns the child for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.r.childOf(v.f, values).hist
}

// families returns a name-sorted copy of the registered families.
func (r *Registry) families() []*family {
	r.mu.Lock()
	out := append([]*family(nil), r.ordered...)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// seconds renders a duration as a Prometheus seconds value.
func seconds(d time.Duration) float64 { return float64(d) / float64(time.Second) }

// isInf reports the +Inf bucket sentinel.
func isInf(f float64) bool { return math.IsInf(f, +1) }
