package obs

import (
	"bufio"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Label is one constant label applied to every sample of an exposition
// — the role label ("primary", "follower", "router") cmd/xtqd stamps on
// /metrics.
type Label struct {
	Name, Value string
}

// WriteTo writes the registry in the Prometheus text exposition format
// (version 0.0.4): every family with its HELP and TYPE lines, samples
// sorted by family name then label values, durations in seconds.
// constLabels are merged into every sample. Concurrent instrument
// updates during a scrape are fine — each value is one atomic load.
func (r *Registry) WriteTo(w io.Writer, constLabels ...Label) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.families() {
		f.mu.Lock()
		children := append([]*child(nil), f.children...)
		f.mu.Unlock()
		if len(children) == 0 {
			continue
		}
		sort.Slice(children, func(i, j int) bool {
			return labelKey(children[i].labelValues) < labelKey(children[j].labelValues)
		})
		bw.WriteString("# HELP ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(escapeHelp(f.help))
		bw.WriteString("\n# TYPE ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.kind.String())
		bw.WriteByte('\n')
		for _, c := range children {
			base := labelPairs(constLabels, f.labels, c.labelValues)
			switch f.kind {
			case kindCounter:
				writeSample(bw, f.name, base, "", formatUint(c.counter.Value()))
			case kindGauge:
				if c.gaugeFn != nil {
					writeSample(bw, f.name, base, "", formatFloat(c.gaugeFn()))
				} else {
					writeSample(bw, f.name, base, "", strconv.FormatInt(c.gauge.Value(), 10))
				}
			case kindHistogram:
				writeHistogram(bw, f.name, base, c.hist)
			}
		}
	}
	return bw.Flush()
}

// writeHistogram emits the cumulative _bucket series plus _sum and
// _count. Bucket counts are read low-to-high and accumulated, so a
// concurrent Observe can at worst land in a higher bucket than the
// running total — cumulative counts stay monotonic within one scrape.
func writeHistogram(bw *bufio.Writer, name string, base string, h *Histogram) {
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		le := "+Inf"
		if i < len(h.bounds) {
			le = formatFloat(seconds(h.bounds[i]))
		}
		writeSample(bw, name+"_bucket", base, `le="`+le+`"`, formatUint(cum))
	}
	writeSample(bw, name+"_sum", base, "", formatFloat(seconds(h.Sum())))
	writeSample(bw, name+"_count", base, "", formatUint(cum))
}

// writeSample emits one `name{labels} value` line; extra is an
// additional pre-rendered pair (the histogram le).
func writeSample(bw *bufio.Writer, name, base, extra, value string) {
	bw.WriteString(name)
	if base != "" || extra != "" {
		bw.WriteByte('{')
		bw.WriteString(base)
		if base != "" && extra != "" {
			bw.WriteByte(',')
		}
		bw.WriteString(extra)
		bw.WriteByte('}')
	}
	bw.WriteByte(' ')
	bw.WriteString(value)
	bw.WriteByte('\n')
}

// labelPairs renders const labels plus the family's own, sorted by
// label name for a stable exposition.
func labelPairs(consts []Label, names, values []string) string {
	n := len(consts) + len(names)
	if n == 0 {
		return ""
	}
	pairs := make([]Label, 0, n)
	pairs = append(pairs, consts...)
	for i, name := range names {
		pairs = append(pairs, Label{Name: name, Value: values[i]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].Name < pairs[j].Name })
	var b strings.Builder
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(p.Value))
		b.WriteByte('"')
	}
	return b.String()
}

func labelKey(values []string) string { return strings.Join(values, "\x1f") }

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

// escapeHelp escapes a HELP line per the exposition format.
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}

func formatUint(v uint64) string { return strconv.FormatUint(v, 10) }

// formatFloat renders a float the way Prometheus clients do: shortest
// representation that round-trips.
func formatFloat(v float64) string {
	if isInf(v) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Uptime returns the seconds since the registry was created, as a
// GaugeFunc-friendly reading.
func (r *Registry) Uptime() time.Duration { return time.Since(r.start) }
