// Package obstest holds test-only helpers for the observability layer:
// a Prometheus text-exposition parser and linter shared by the obs unit
// tests and the serving layer's /metrics round-trip tests.
package obstest

import (
	"regexp"
	"strconv"
	"strings"
	"testing"
)

var (
	nameRe      = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelPairRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"$`)
	leRe        = regexp.MustCompile(`(^|,)le="[^"]*"`)
)

// Lint parses a text exposition and applies the Prometheus naming and
// structure lints this repo commits to: valid metric and label names,
// HELP+TYPE preceding every family's samples, counters ending in
// _total, histograms ending in a base unit (_seconds, _ratio), gauges not ending in
// _total, cumulative buckets monotonic and the +Inf bucket equal to
// _count. It returns the set of family names seen, so callers can
// additionally assert coverage (engine, store, WAL, ... families all
// present).
func Lint(t *testing.T, text string) map[string]string {
	t.Helper()
	type fam struct {
		typ     string
		help    bool
		samples int
	}
	fams := map[string]*fam{}
	nameOf := func(sample string) string {
		if i := strings.IndexAny(sample, "{ "); i >= 0 {
			return sample[:i]
		}
		return sample
	}
	base := func(name string) string {
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if trimmed := strings.TrimSuffix(name, suf); trimmed != name {
				if f, ok := fams[trimmed]; ok && f.typ == "histogram" {
					return trimmed
				}
			}
		}
		return name
	}
	lastCum := map[string]uint64{}
	count := map[string]uint64{}
	infSeen := map[string]uint64{}

	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name := nameOf(rest)
			if fams[name] == nil {
				fams[name] = &fam{}
			}
			fams[name].help = true
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			parts := strings.Fields(rest)
			if len(parts) != 2 {
				t.Fatalf("line %d: malformed TYPE %q", ln+1, line)
			}
			name, typ := parts[0], parts[1]
			if fams[name] == nil {
				fams[name] = &fam{}
			}
			f := fams[name]
			if f.samples > 0 {
				t.Fatalf("line %d: TYPE for %s after its samples", ln+1, name)
			}
			f.typ = typ
			if !nameRe.MatchString(name) {
				t.Fatalf("line %d: invalid metric name %q", ln+1, name)
			}
			switch typ {
			case "counter":
				if !strings.HasSuffix(name, "_total") {
					t.Fatalf("line %d: counter %q does not end in _total", ln+1, name)
				}
			case "histogram":
				// Histograms carry a base unit suffix: _seconds for
				// durations, _ratio for dimensionless samples (the
				// planner's estimation error).
				if !strings.HasSuffix(name, "_seconds") && !strings.HasSuffix(name, "_ratio") {
					t.Fatalf("line %d: histogram %q does not end in a base unit (_seconds, _ratio)", ln+1, name)
				}
			case "gauge":
				if strings.HasSuffix(name, "_total") {
					t.Fatalf("line %d: gauge %q ends in _total", ln+1, name)
				}
			default:
				t.Fatalf("line %d: unknown TYPE %q", ln+1, typ)
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("line %d: unexpected comment %q", ln+1, line)
		}
		name := nameOf(line)
		famName := base(name)
		f := fams[famName]
		if f == nil || f.typ == "" || !f.help {
			t.Fatalf("line %d: sample %q before HELP+TYPE of %q", ln+1, line, famName)
		}
		f.samples++
		rest := line[len(name):]
		var labels string
		if strings.HasPrefix(rest, "{") {
			end := strings.LastIndex(rest, "}")
			if end < 0 {
				t.Fatalf("line %d: unterminated labels %q", ln+1, line)
			}
			labels, rest = rest[1:end], rest[end+1:]
		}
		for _, pair := range splitLabelPairs(labels) {
			if !labelPairRe.MatchString(pair) {
				t.Fatalf("line %d: malformed label pair %q", ln+1, pair)
			}
		}
		valueStr := strings.TrimSpace(rest)
		value, err := strconv.ParseFloat(valueStr, 64)
		if err != nil && valueStr != "+Inf" {
			t.Fatalf("line %d: bad value %q: %v", ln+1, valueStr, err)
		}
		if f.typ == "counter" && value < 0 {
			t.Fatalf("line %d: negative counter %q", ln+1, line)
		}
		if f.typ == "histogram" && strings.HasSuffix(name, "_bucket") {
			// Track cumulative monotonicity per series (labels minus le);
			// a series' buckets appear contiguously in the exposition.
			key := famName + "{" + strings.TrimPrefix(leRe.ReplaceAllString(labels, ""), ",") + "}"
			if strings.Contains(labels, `le="+Inf"`) {
				infSeen[key] = uint64(value)
				delete(lastCum, key) // series complete; next one restarts
			} else {
				if prev, ok := lastCum[key]; ok && uint64(value) < prev {
					t.Fatalf("line %d: non-monotonic buckets for %s", ln+1, key)
				}
				lastCum[key] = uint64(value)
			}
		}
		if f.typ == "histogram" && strings.HasSuffix(name, "_count") {
			count[famName+"{"+labels+"}"] = uint64(value)
		}
	}
	for key, inf := range infSeen {
		if c, ok := count[key]; ok && c != inf {
			t.Fatalf("series %s: +Inf bucket %d != count %d", key, inf, c)
		}
	}
	if len(fams) == 0 {
		t.Fatal("exposition contained no families")
	}
	out := make(map[string]string, len(fams))
	for name, f := range fams {
		out[name] = f.typ
	}
	return out
}

// splitLabelPairs splits `a="x",b="y"` at commas outside quotes.
func splitLabelPairs(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	var start int
	inQ := false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if inQ {
				i++
			}
		case '"':
			inQ = !inQ
		case ',':
			if !inQ {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	return append(out, s[start:])
}
