package sax

import (
	"context"

	"xtq/internal/tree"
)

// cancelPollMask checks the context every 64 SAX events: frequent enough
// that a multi-gigabyte stream aborts within microseconds of
// cancellation, sparse enough that the select stays off the per-event
// hot path.
const cancelPollMask = 63

// WithCancel wraps h so the event stream aborts once ctx is cancelled:
// the wrapper returns ctx.Err() from the next event callback, which the
// Parser propagates to its caller. When ctx can never be cancelled, h is
// returned unwrapped and parsing pays nothing.
func WithCancel(ctx context.Context, h Handler) Handler {
	if ctx == nil || ctx.Done() == nil {
		return h
	}
	c := &cancelHandler{ctx: ctx, done: ctx.Done(), h: h}
	if sh, ok := h.(SymbolHandler); ok {
		// Preserve symbol-awareness: the parser sees a SymbolHandler and
		// keeps delivering interned start tags through the wrapper.
		return &cancelSymHandler{cancelHandler: c, sh: sh}
	}
	return c
}

// cancelSymHandler is cancelHandler for symbol-aware inner handlers.
type cancelSymHandler struct {
	*cancelHandler
	sh SymbolHandler
}

// SetSymbols implements SymbolHandler.
func (c *cancelSymHandler) SetSymbols(s *tree.Symbols) { c.sh.SetSymbols(s) }

// StartElementSym implements SymbolHandler.
func (c *cancelSymHandler) StartElementSym(sym tree.SymID, name string, attrs []tree.Attr) error {
	if err := c.check(); err != nil {
		return err
	}
	return c.sh.StartElementSym(sym, name, attrs)
}

type cancelHandler struct {
	ctx  context.Context
	done <-chan struct{}
	h    Handler
	n    uint32
}

func (c *cancelHandler) check() error {
	c.n++
	if c.n&cancelPollMask != 0 {
		return nil
	}
	select {
	case <-c.done:
		return c.ctx.Err()
	default:
		return nil
	}
}

// StartDocument implements Handler.
func (c *cancelHandler) StartDocument() error {
	if err := c.check(); err != nil {
		return err
	}
	return c.h.StartDocument()
}

// StartElement implements Handler.
func (c *cancelHandler) StartElement(name string, attrs []tree.Attr) error {
	if err := c.check(); err != nil {
		return err
	}
	return c.h.StartElement(name, attrs)
}

// Text implements Handler.
func (c *cancelHandler) Text(data string) error {
	if err := c.check(); err != nil {
		return err
	}
	return c.h.Text(data)
}

// EndElement implements Handler.
func (c *cancelHandler) EndElement(name string) error {
	if err := c.check(); err != nil {
		return err
	}
	return c.h.EndElement(name)
}

// EndDocument implements Handler.
func (c *cancelHandler) EndDocument() error {
	if err := c.check(); err != nil {
		return err
	}
	return c.h.EndDocument()
}
