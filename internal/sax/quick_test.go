package sax

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"xtq/internal/tree"
)

type randomDoc struct{ Doc *tree.Node }

// Generate implements quick.Generator.
func (randomDoc) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(randomDoc{Doc: tree.Generate(r, tree.DefaultGenOptions())})
}

// Property: parsing the serialization of any tree yields an equal tree
// (modulo whitespace-only nodes and text coalescing, both normalized by
// stripWS), and serialization is a fixpoint under re-parsing.
func TestQuickRoundTrip(t *testing.T) {
	prop := func(d randomDoc) bool {
		s := d.Doc.String()
		parsed, err := ParseString(s)
		if err != nil {
			return false
		}
		if !treeEqualModuloWS(d.Doc, parsed) {
			return false
		}
		return parsed.String() == stripWS(d.Doc).String()
	}
	cfg := &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// Property: replaying a tree as events through a Writer produces the same
// bytes as the tree serializer — the two output paths never diverge.
func TestQuickWriterMatchesSerializer(t *testing.T) {
	prop := func(d randomDoc) bool {
		var sb stringsBuilder
		w := NewWriter(&sb)
		if err := Emit(d.Doc, w); err != nil {
			return false
		}
		return sb.String() == d.Doc.String()
	}
	cfg := &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(12))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// stringsBuilder avoids importing strings for one use in this file.
type stringsBuilder struct{ b []byte }

func (s *stringsBuilder) Write(p []byte) (int, error) {
	s.b = append(s.b, p...)
	return len(p), nil
}

func (s *stringsBuilder) String() string { return string(s.b) }
