package sax

import (
	"math/rand"
	"strings"
	"testing"

	"xtq/internal/tree"
)

func mustParse(t *testing.T, s string) *tree.Node {
	t.Helper()
	doc, err := ParseString(s)
	if err != nil {
		t.Fatalf("ParseString(%q): %v", s, err)
	}
	return doc
}

func TestParseSimple(t *testing.T) {
	doc := mustParse(t, `<db><part><pname>keyboard</pname></part></db>`)
	root := doc.Root()
	if root.Label != "db" {
		t.Fatalf("root = %q", root.Label)
	}
	pname := root.Children[0].Children[0]
	if pname.Label != "pname" || pname.Value() != "keyboard" {
		t.Fatalf("pname = %s", pname)
	}
}

func TestParseAttributes(t *testing.T) {
	doc := mustParse(t, `<person id="person10" class='vip'><name>Ada</name></person>`)
	p := doc.Root()
	if v, ok := p.Attr("id"); !ok || v != "person10" {
		t.Errorf("id attr = %q, %v", v, ok)
	}
	if v, ok := p.Attr("class"); !ok || v != "vip" {
		t.Errorf("class attr = %q, %v", v, ok)
	}
}

func TestParseSelfClosing(t *testing.T) {
	doc := mustParse(t, `<a><b/><c x="1"/></a>`)
	root := doc.Root()
	if len(root.Children) != 2 {
		t.Fatalf("children = %d", len(root.Children))
	}
	if root.Children[0].Label != "b" || len(root.Children[0].Children) != 0 {
		t.Errorf("b = %s", root.Children[0])
	}
	if v, _ := root.Children[1].Attr("x"); v != "1" {
		t.Errorf("c/@x = %q", v)
	}
}

func TestParseEntities(t *testing.T) {
	doc := mustParse(t, `<a m="&quot;q&apos;">&lt;x&gt; &amp; &#65;&#x42;</a>`)
	root := doc.Root()
	if got := root.Value(); got != "<x> & AB" {
		t.Errorf("text = %q", got)
	}
	if v, _ := root.Attr("m"); v != `"q'` {
		t.Errorf("attr = %q", v)
	}
}

func TestParseCDATA(t *testing.T) {
	doc := mustParse(t, `<a>pre<![CDATA[<raw> & ]]>post</a>`)
	root := doc.Root()
	if len(root.Children) != 1 {
		t.Fatalf("CDATA should coalesce with neighbouring text, got %d children", len(root.Children))
	}
	if got := root.Value(); got != "pre<raw> & post" {
		t.Errorf("text = %q", got)
	}
}

func TestParseCDATAWithBrackets(t *testing.T) {
	doc := mustParse(t, `<a><![CDATA[x]]y]]]></a>`)
	if got := doc.Root().Value(); got != "x]]y]" {
		t.Errorf("text = %q", got)
	}
}

func TestParseCommentsAndPI(t *testing.T) {
	doc := mustParse(t, `<?xml version="1.0"?><!-- top --><a>x<!-- mid -->y<?pi data?>z</a><!-- tail -->`)
	root := doc.Root()
	if got := root.Value(); got != "xyz" {
		t.Errorf("comments/PIs should be transparent, text = %q", got)
	}
	if len(root.Children) != 1 {
		t.Errorf("text split by comment: %d children", len(root.Children))
	}
}

func TestParseDoctype(t *testing.T) {
	doc := mustParse(t, `<!DOCTYPE db [ <!ELEMENT db (#PCDATA)> ]><db>x</db>`)
	if doc.Root().Label != "db" {
		t.Errorf("root = %q", doc.Root().Label)
	}
}

func TestParseWhitespaceModes(t *testing.T) {
	in := "<a>\n  <b>1</b>\n</a>"
	doc := mustParse(t, in)
	if len(doc.Root().Children) != 1 {
		t.Errorf("whitespace not skipped: %d children", len(doc.Root().Children))
	}
	var b TreeBuilder
	p := NewParserOptions(strings.NewReader(in), &b, Options{PreserveWhitespace: true})
	if err := p.Parse(); err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(b.Document().Root().Children) != 3 {
		t.Errorf("whitespace preserved: want 3 children, got %d", len(b.Document().Root().Children))
	}
}

func TestParseMaxDepth(t *testing.T) {
	var b TreeBuilder
	p := NewParserOptions(strings.NewReader("<a><b><c/></b></a>"), &b, Options{MaxDepth: 2})
	if err := p.Parse(); err == nil {
		t.Fatalf("MaxDepth=2 should reject depth-3 document")
	}
	p = NewParserOptions(strings.NewReader("<a><b><c/></b></a>"), &TreeBuilder{}, Options{MaxDepth: 3})
	if err := p.Parse(); err != nil {
		t.Fatalf("MaxDepth=3 should accept depth-3 document: %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"empty", ""},
		{"only comment", "<!-- x -->"},
		{"unclosed root", "<a>"},
		{"unclosed nested", "<a><b></a>"},
		{"mismatched", "<a></b>"},
		{"stray end", "</a>"},
		{"two roots", "<a/><b/>"},
		{"text outside root", "<a/>junk"},
		{"bad tag char", "<a><1/></a>"},
		{"bad after lt", "<a>< b/></a>"},
		{"unquoted attr", `<a x=1/>`},
		{"missing eq", `<a x "1"/>`},
		{"lt in attr", `<a x="<"/>`},
		{"unknown entity", "<a>&nope;</a>"},
		{"bad charref", "<a>&#xzz;</a>"},
		{"endless entity", "<a>&aaaaaaaaaaaaaaaaaa;</a>"},
		{"malformed comment", "<a><!-x--></a>"},
		{"malformed cdata", "<a><![CDAT[x]]></a>"},
		{"cdata outside root", "<![CDATA[x]]><a/>"},
		{"doctype inside root", "<a><!DOCTYPE x></a>"},
		{"truncated tag", "<a"},
		{"truncated attr", `<a x="1`},
		{"truncated comment", "<a><!-- x"},
		{"truncated pi", "<?pi"},
		{"truncated text", "<a>x"},
		{"bang garbage", "<a><!Zoo></a>"},
	}
	for _, tc := range cases {
		if _, err := ParseString(tc.in); err == nil {
			t.Errorf("%s: Parse accepted %q", tc.name, tc.in)
		}
	}
}

func TestParseErrorPosition(t *testing.T) {
	_, err := ParseString("<a>\n<b></c>\n</a>")
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("error type %T, want *ParseError", err)
	}
	if pe.Line != 2 {
		t.Errorf("error line = %d, want 2; err = %v", pe.Line, pe)
	}
	if !strings.Contains(pe.Error(), "xml:2:") {
		t.Errorf("Error() = %q", pe.Error())
	}
}

func TestRoundTripSample(t *testing.T) {
	in := `<db><part kind="x"><pname>keyboard &amp; mouse</pname><supplier><sname>HP</sname><price>15</price></supplier></part></db>`
	doc := mustParse(t, in)
	out := doc.String()
	doc2 := mustParse(t, out)
	if !tree.Equal(doc, doc2) {
		t.Fatalf("round trip changed tree:\n in: %s\nout: %s", in, out)
	}
}

// Property: serialize(parse(serialize(T))) is a fixpoint and parsing the
// serialization of any generated tree yields an Equal tree.
func TestRoundTripGenerated(t *testing.T) {
	opts := tree.DefaultGenOptions()
	for seed := int64(0); seed < 200; seed++ {
		doc := tree.Generate(rand.New(rand.NewSource(seed)), opts)
		s := doc.String()
		parsed, err := ParseString(s)
		if err != nil {
			t.Fatalf("seed %d: parse of serialization failed: %v\n%s", seed, err, s)
		}
		if !treeEqualModuloWS(doc, parsed) {
			t.Fatalf("seed %d: round trip mismatch\nwant %s\ngot  %s", seed, s, parsed)
		}
	}
}

// treeEqualModuloWS compares trees ignoring whitespace-only text nodes,
// which the default parser options drop.
func treeEqualModuloWS(a, b *tree.Node) bool {
	return tree.Equal(stripWS(a), stripWS(b))
}

// stripWS drops whitespace-only text nodes and merges adjacent text nodes,
// normalizing the two ways a tree can differ from its parse-of-serialization
// (the parser drops whitespace runs and coalesces neighbouring text).
func stripWS(n *tree.Node) *tree.Node {
	c := &tree.Node{Kind: n.Kind, Label: n.Label, Data: n.Data, Attrs: n.Attrs}
	for _, ch := range n.Children {
		if ch.Kind == tree.Text && strings.TrimSpace(ch.Data) == "" {
			continue
		}
		s := stripWS(ch)
		if last := len(c.Children) - 1; s.Kind == tree.Text && last >= 0 && c.Children[last].Kind == tree.Text {
			c.Children[last] = tree.NewText(c.Children[last].Data + s.Data)
			continue
		}
		c.Children = append(c.Children, s)
	}
	return c
}

func TestRoundTripIndented(t *testing.T) {
	doc := mustParse(t, `<db><part><pname>kb</pname><n>1</n></part></db>`)
	var b strings.Builder
	if err := doc.WriteIndented(&b); err != nil {
		t.Fatal(err)
	}
	parsed := mustParse(t, b.String())
	if !tree.Equal(doc, parsed) {
		t.Fatalf("indented round trip mismatch:\n%s\nvs\n%s", doc, parsed)
	}
}

func TestEmitRecorder(t *testing.T) {
	doc := mustParse(t, `<a x="1"><b>t</b><c/></a>`)
	var r Recorder
	if err := Emit(doc, &r); err != nil {
		t.Fatal(err)
	}
	kinds := make([]string, len(r.Events))
	for i, e := range r.Events {
		kinds[i] = e.Kind
	}
	want := []string{"startDocument", "startElement", "startElement", "text",
		"endElement", "startElement", "endElement", "endElement", "endDocument"}
	if len(kinds) != len(want) {
		t.Fatalf("events = %v", r.Events)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("event %d = %s, want %s (%v)", i, kinds[i], want[i], r.Events)
		}
	}
	if r.Events[1].Attrs[0] != (tree.Attr{Name: "x", Value: "1"}) {
		t.Errorf("attrs not recorded: %v", r.Events[1])
	}
}

func TestWriterRoundTrip(t *testing.T) {
	in := `<db><part kind="&quot;x&quot;"><pname>a &lt; b</pname><empty/></part></db>`
	doc := mustParse(t, in)
	var sb strings.Builder
	w := NewWriter(&sb)
	if err := Emit(doc, w); err != nil {
		t.Fatal(err)
	}
	doc2 := mustParse(t, sb.String())
	if !tree.Equal(doc, doc2) {
		t.Fatalf("writer round trip mismatch:\n%s\nvs\n%s", in, sb.String())
	}
}

func TestWriterEventsEqualTreeSerialization(t *testing.T) {
	opts := tree.DefaultGenOptions()
	for seed := int64(0); seed < 100; seed++ {
		doc := tree.Generate(rand.New(rand.NewSource(seed)), opts)
		var sb strings.Builder
		w := NewWriter(&sb)
		if err := Emit(doc, w); err != nil {
			t.Fatal(err)
		}
		if sb.String() != doc.String() {
			t.Fatalf("seed %d: event serialization differs from tree serialization\n%s\nvs\n%s",
				seed, sb.String(), doc.String())
		}
	}
}

func TestEventString(t *testing.T) {
	events := []Event{
		{Kind: "startElement", Name: "a"},
		{Kind: "endElement", Name: "a"},
		{Kind: "text", Data: "x"},
		{Kind: "startDocument"},
	}
	for _, e := range events {
		if e.String() == "" {
			t.Errorf("empty String() for %v", e.Kind)
		}
	}
}

func TestParseDeepDocument(t *testing.T) {
	depth := 10000
	var b strings.Builder
	for i := 0; i < depth; i++ {
		b.WriteString("<d>")
	}
	for i := 0; i < depth; i++ {
		b.WriteString("</d>")
	}
	doc, err := ParseString(b.String())
	if err != nil {
		t.Fatalf("deep parse: %v", err)
	}
	if got := doc.Depth(); got != depth+1 {
		t.Errorf("Depth = %d, want %d", got, depth+1)
	}
}
