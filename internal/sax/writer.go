package sax

import (
	"bufio"
	"fmt"
	"io"

	"xtq/internal/tree"
)

// Writer is a Handler that serializes the event stream back to XML. It is
// the output side of the twoPassSAX evaluator: the second pass rewrites the
// input event stream and pushes the result into a Writer (or any other
// Handler, e.g. a TreeBuilder or a downstream query operator).
type Writer struct {
	w    *bufio.Writer
	open bool // a start tag is open and may still become self-closing
}

// NewWriter returns a Writer serializing to w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 64<<10)}
}

// Flush writes buffered output to the underlying writer.
func (s *Writer) Flush() error { return s.w.Flush() }

func (s *Writer) closeOpenTag() {
	if s.open {
		s.w.WriteByte('>')
		s.open = false
	}
}

// StartDocument implements Handler.
func (s *Writer) StartDocument() error { return nil }

// StartElement implements Handler.
func (s *Writer) StartElement(name string, attrs []tree.Attr) error {
	s.closeOpenTag()
	s.w.WriteByte('<')
	s.w.WriteString(name)
	for _, a := range attrs {
		s.w.WriteByte(' ')
		s.w.WriteString(a.Name)
		s.w.WriteString(`="`)
		escapeAttrTo(s.w, a.Value)
		s.w.WriteByte('"')
	}
	s.open = true
	return nil
}

// Text implements Handler.
func (s *Writer) Text(data string) error {
	s.closeOpenTag()
	escapeTextTo(s.w, data)
	return nil
}

// EndElement implements Handler.
func (s *Writer) EndElement(name string) error {
	if s.open {
		s.w.WriteString("/>")
		s.open = false
		return nil
	}
	s.w.WriteString("</")
	s.w.WriteString(name)
	s.w.WriteByte('>')
	return nil
}

// EndDocument implements Handler.
func (s *Writer) EndDocument() error { return s.w.Flush() }

func escapeTextTo(w *bufio.Writer, s string) {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '&':
			w.WriteString("&amp;")
		case '<':
			w.WriteString("&lt;")
		case '>':
			w.WriteString("&gt;")
		default:
			w.WriteByte(s[i])
		}
	}
}

func escapeAttrTo(w *bufio.Writer, s string) {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '&':
			w.WriteString("&amp;")
		case '<':
			w.WriteString("&lt;")
		case '"':
			w.WriteString("&quot;")
		default:
			w.WriteByte(s[i])
		}
	}
}

// Event is one recorded SAX event, used by tests and diagnostics.
type Event struct {
	Kind  string // "startDocument", "startElement", "text", "endElement", "endDocument"
	Name  string
	Attrs []tree.Attr
	Data  string
}

// String renders the event compactly.
func (e Event) String() string {
	switch e.Kind {
	case "startElement":
		return fmt.Sprintf("<%s %v>", e.Name, e.Attrs)
	case "endElement":
		return fmt.Sprintf("</%s>", e.Name)
	case "text":
		return fmt.Sprintf("text(%q)", e.Data)
	default:
		return e.Kind
	}
}

// Recorder is a Handler that records all events, for tests.
type Recorder struct {
	Events []Event
}

// StartDocument implements Handler.
func (r *Recorder) StartDocument() error {
	r.Events = append(r.Events, Event{Kind: "startDocument"})
	return nil
}

// StartElement implements Handler.
func (r *Recorder) StartElement(name string, attrs []tree.Attr) error {
	cp := make([]tree.Attr, len(attrs))
	copy(cp, attrs)
	r.Events = append(r.Events, Event{Kind: "startElement", Name: name, Attrs: cp})
	return nil
}

// Text implements Handler.
func (r *Recorder) Text(data string) error {
	r.Events = append(r.Events, Event{Kind: "text", Data: data})
	return nil
}

// EndElement implements Handler.
func (r *Recorder) EndElement(name string) error {
	r.Events = append(r.Events, Event{Kind: "endElement", Name: name})
	return nil
}

// EndDocument implements Handler.
func (r *Recorder) EndDocument() error {
	r.Events = append(r.Events, Event{Kind: "endDocument"})
	return nil
}
