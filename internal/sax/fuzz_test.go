package sax

import (
	"bytes"
	"strings"
	"testing"

	"xtq/internal/tree"
)

// FuzzParse asserts three properties on arbitrary input:
//
//   - the parser never panics — it either builds a tree or reports a
//     *ParseError / IO error;
//   - accepted documents round-trip: serializing the tree and reparsing
//     the output yields a structurally identical tree (the Writer escapes
//     everything the Parser can produce);
//   - the MaxDepth option is an invariant, not a hint: any accepted
//     document respects the configured nesting limit.
func FuzzParse(f *testing.F) {
	seeds := []string{
		`<a/>`,
		`<db><part><pname>keyboard</pname><supplier sid="s1">HP</supplier></part></db>`,
		`<a attr="v&amp;w">x&lt;y&#65;</a>`,
		`<a><!-- comment --><![CDATA[<raw>&stuff;]]>tail</a>`,
		`<?xml version="1.0"?><!DOCTYPE a [<!ELEMENT a ANY>]><a>t</a>`,
		`<a>` + strings.Repeat("<b>", 30) + strings.Repeat("</b>", 30) + `</a>`,
		`<a b="c" d='e'><f/></a>`,
		`<a>&#x1F600;</a>`,
		`<a>]]></a>`,
		`<mismatch></wrong>`,
		`<unterminated`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	const maxDepth = 64
	f.Fuzz(func(t *testing.T, data []byte) {
		var b TreeBuilder
		p := NewParserOptions(bytes.NewReader(data), &b, Options{MaxDepth: maxDepth})
		if err := p.Parse(); err != nil {
			return // rejected input: the only requirement is "no panic"
		}
		doc := b.Document()
		if doc.Depth() > maxDepth+1 { // +1: the document node itself
			t.Fatalf("accepted document exceeds MaxDepth %d: depth %d", maxDepth, doc.Depth())
		}
		if err := tree.Validate(doc); err != nil {
			t.Fatalf("accepted document fails validation: %v", err)
		}
		var out bytes.Buffer
		w := NewWriter(&out)
		if err := Emit(doc, w); err != nil {
			t.Fatalf("serialize: %v", err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		doc2, err := Parse(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("reparse of own output failed: %v\noutput: %q", err, out.Bytes())
		}
		if !tree.Equal(doc, doc2) {
			t.Fatalf("round-trip mismatch:\nfirst:  %s\nsecond: %s", doc, doc2)
		}
	})
}
