package sax

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"xtq/internal/tree"
)

// Options configures a Parser.
type Options struct {
	// PreserveWhitespace keeps text events that consist solely of XML
	// whitespace. By default such events are dropped, which is the usual
	// behaviour for data-oriented documents and makes parsing an
	// indented serialization yield the same tree as the compact one.
	PreserveWhitespace bool
	// MaxDepth aborts parsing when element nesting exceeds the limit;
	// zero means no limit.
	MaxDepth int
}

// ParseError reports a well-formedness violation with its input position.
type ParseError struct {
	Line int
	Col  int
	Msg  string
}

// Error implements error.
func (e *ParseError) Error() string {
	return fmt.Sprintf("xml:%d:%d: %s", e.Line, e.Col, e.Msg)
}

// Parser is a streaming XML parser pushing events into a Handler.
type Parser struct {
	r    *bufio.Reader
	h    Handler
	sh   SymbolHandler // h when it is symbol-aware, else nil
	opts Options

	line, col int
	stack     []string // open element labels
	text      []byte   // pending character data
	attrs     []tree.Attr
	peeked    int    // -1 when empty, otherwise the buffered byte
	nameBuf   []byte // scratch for readName
	// syms interns element and attribute names: repeated names share one
	// string allocation and get the dense symbol ids the symbol-aware
	// handlers key their transition caches by. lastSym is the symbol of
	// the most recent readName.
	syms    *tree.Symbols
	lastSym tree.SymID
}

// NewParser returns a parser reading from r and reporting events to h with
// default options.
func NewParser(r io.Reader, h Handler) *Parser {
	return NewParserOptions(r, h, Options{})
}

// NewParserOptions returns a parser with explicit options.
func NewParserOptions(r io.Reader, h Handler, opts Options) *Parser {
	p := &Parser{
		r: bufio.NewReaderSize(r, 64<<10), h: h, opts: opts,
		line: 1, col: 0, peeked: -1,
		syms: tree.NewSymbols(),
	}
	p.sh, _ = h.(SymbolHandler)
	return p
}

// Symbols returns the parser's interning table. It grows during Parse and
// must not be read concurrently with it.
func (p *Parser) Symbols() *tree.Symbols { return p.syms }

func (p *Parser) errf(format string, args ...any) error {
	return &ParseError{Line: p.line, Col: p.col, Msg: fmt.Sprintf(format, args...)}
}

func (p *Parser) readByte() (byte, error) {
	if p.peeked >= 0 {
		b := byte(p.peeked)
		p.peeked = -1
		return b, nil
	}
	b, err := p.r.ReadByte()
	if err != nil {
		return 0, err
	}
	if b == '\n' {
		p.line++
		p.col = 0
	} else {
		p.col++
	}
	return b, nil
}

func (p *Parser) unread(b byte) { p.peeked = int(b) }

func (p *Parser) mustByte() (byte, error) {
	b, err := p.readByte()
	if err == io.EOF {
		return 0, p.errf("unexpected end of input")
	}
	return b, err
}

func isSpace(b byte) bool { return b == ' ' || b == '\t' || b == '\n' || b == '\r' }

func isNameStart(b byte) bool {
	return b == '_' || b == ':' || (b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z') || b >= 0x80
}

func isNameChar(b byte) bool {
	return isNameStart(b) || b == '-' || b == '.' || (b >= '0' && b <= '9')
}

// Parse consumes the input and drives the handler. It validates
// well-formedness (matching tags, single root element) and returns the
// first error encountered.
func (p *Parser) Parse() error {
	if p.sh != nil {
		p.sh.SetSymbols(p.syms)
	}
	if err := p.h.StartDocument(); err != nil {
		return err
	}
	sawRoot := false
	for {
		b, err := p.readByte()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		if b != '<' {
			if len(p.stack) == 0 {
				if !isSpace(b) {
					return p.errf("character data outside the root element")
				}
				continue
			}
			p.unread(b)
			if err := p.readText(); err != nil {
				return err
			}
			continue
		}
		b, err = p.mustByte()
		if err != nil {
			return err
		}
		switch {
		case b == '?':
			if err := p.skipPI(); err != nil {
				return err
			}
		case b == '!':
			if err := p.readBang(); err != nil {
				return err
			}
		case b == '/':
			if err := p.flushText(); err != nil {
				return err
			}
			if err := p.readEndTag(); err != nil {
				return err
			}
		case isNameStart(b):
			if len(p.stack) == 0 {
				if sawRoot {
					return p.errf("multiple root elements")
				}
				sawRoot = true
			}
			if err := p.flushText(); err != nil {
				return err
			}
			p.unread(b)
			if err := p.readStartTag(); err != nil {
				return err
			}
		default:
			return p.errf("unexpected character %q after '<'", b)
		}
	}
	if len(p.stack) > 0 {
		return p.errf("unexpected end of input: <%s> not closed", p.stack[len(p.stack)-1])
	}
	if !sawRoot {
		return p.errf("document has no root element")
	}
	return p.h.EndDocument()
}

// readName scans an XML name, interning the result so repeated element and
// attribute names share one string allocation — names dominate
// markup-heavy documents.
func (p *Parser) readName() (string, error) {
	b, err := p.mustByte()
	if err != nil {
		return "", err
	}
	if !isNameStart(b) {
		return "", p.errf("invalid name start character %q", b)
	}
	p.nameBuf = append(p.nameBuf[:0], b)
	for {
		b, err := p.readByte()
		if err == io.EOF {
			return p.intern(), nil
		}
		if err != nil {
			return "", err
		}
		if !isNameChar(b) {
			p.unread(b)
			return p.intern(), nil
		}
		p.nameBuf = append(p.nameBuf, b)
	}
}

func (p *Parser) intern() string {
	sym, s := p.syms.InternBytes(p.nameBuf)
	p.lastSym = sym
	return s
}

func (p *Parser) skipSpace() (byte, error) {
	for {
		b, err := p.mustByte()
		if err != nil {
			return 0, err
		}
		if !isSpace(b) {
			return b, nil
		}
	}
}

// startElement dispatches a start tag, through the symbol-aware entry
// point when the handler has one.
func (p *Parser) startElement(sym tree.SymID, name string, attrs []tree.Attr) error {
	if p.sh != nil {
		return p.sh.StartElementSym(sym, name, attrs)
	}
	return p.h.StartElement(name, attrs)
}

func (p *Parser) readStartTag() error {
	name, err := p.readName()
	if err != nil {
		return err
	}
	sym := p.lastSym // readAttr's names overwrite lastSym below
	if p.opts.MaxDepth > 0 && len(p.stack)+1 > p.opts.MaxDepth {
		return p.errf("element nesting exceeds %d", p.opts.MaxDepth)
	}
	p.attrs = p.attrs[:0]
	for {
		b, err := p.skipSpace()
		if err != nil {
			return err
		}
		switch {
		case b == '>':
			p.stack = append(p.stack, name)
			return p.startElement(sym, name, p.attrs)
		case b == '/':
			b, err = p.mustByte()
			if err != nil {
				return err
			}
			if b != '>' {
				return p.errf("expected '>' after '/' in tag <%s>", name)
			}
			if err := p.startElement(sym, name, p.attrs); err != nil {
				return err
			}
			return p.h.EndElement(name)
		case isNameStart(b):
			p.unread(b)
			if err := p.readAttr(name); err != nil {
				return err
			}
		default:
			return p.errf("unexpected character %q in tag <%s>", b, name)
		}
	}
}

func (p *Parser) readAttr(elem string) error {
	name, err := p.readName()
	if err != nil {
		return err
	}
	b, err := p.skipSpace()
	if err != nil {
		return err
	}
	if b != '=' {
		return p.errf("expected '=' after attribute %q of <%s>", name, elem)
	}
	b, err = p.skipSpace()
	if err != nil {
		return err
	}
	if b != '"' && b != '\'' {
		return p.errf("attribute %q of <%s> must be quoted", name, elem)
	}
	quote := b
	var sb strings.Builder
	for {
		b, err := p.mustByte()
		if err != nil {
			return err
		}
		switch b {
		case quote:
			p.attrs = append(p.attrs, tree.Attr{Name: name, Value: sb.String()})
			return nil
		case '<':
			return p.errf("'<' in attribute value of %q", name)
		case '&':
			s, err := p.readEntity()
			if err != nil {
				return err
			}
			sb.WriteString(s)
		default:
			sb.WriteByte(b)
		}
	}
}

func (p *Parser) readEndTag() error {
	name, err := p.readName()
	if err != nil {
		return err
	}
	b, err := p.skipSpace()
	if err != nil {
		return err
	}
	if b != '>' {
		return p.errf("expected '>' in end tag </%s>", name)
	}
	if len(p.stack) == 0 {
		return p.errf("end tag </%s> without matching start tag", name)
	}
	open := p.stack[len(p.stack)-1]
	if open != name {
		return p.errf("end tag </%s> does not match <%s>", name, open)
	}
	p.stack = p.stack[:len(p.stack)-1]
	return p.h.EndElement(name)
}

// readText accumulates character data up to (but excluding) the next '<'.
// The data stays buffered so that CDATA sections, comments and processing
// instructions do not split a logical text run; flushText emits the event.
// Character data makes up the bulk of typical documents, so readText
// consumes it in buffer-sized chunks via ReadSlice instead of byte by
// byte; entity references are decoded in place within each chunk.
func (p *Parser) readText() error {
	for {
		if p.peeked >= 0 {
			b, _ := p.readByte()
			if b == '<' {
				p.unread(b)
				return nil
			}
			if b == '&' {
				s, err := p.readEntity()
				if err != nil {
					return err
				}
				p.text = append(p.text, s...)
			} else {
				p.text = append(p.text, b)
			}
			continue
		}
		chunk, err := p.r.ReadSlice('<')
		data := chunk
		sawLT := false
		if n := len(chunk); n > 0 && chunk[n-1] == '<' {
			data, sawLT = chunk[:n-1], true
		}
		p.advancePos(data)
		if cerr := p.appendTextChunk(data, sawLT); cerr != nil {
			return cerr
		}
		if sawLT {
			p.col++ // the consumed '<'
			p.unread('<')
			return nil
		}
		switch err {
		case nil:
			// '<' handled above; unreachable otherwise.
		case bufio.ErrBufferFull:
			// Long text run: keep reading.
		case io.EOF:
			return p.errf("unexpected end of input inside <%s>", p.stack[len(p.stack)-1])
		default:
			return err
		}
	}
}

// appendTextChunk copies data into the text buffer, decoding entity
// references in place.
func (p *Parser) appendTextChunk(data []byte, sawLT bool) error {
	for len(data) > 0 {
		amp := bytesIndexByte(data, '&')
		if amp < 0 {
			p.text = append(p.text, data...)
			return nil
		}
		p.text = append(p.text, data[:amp]...)
		data = data[amp+1:]
		semi := bytesIndexByte(data, ';')
		if semi < 0 {
			if sawLT {
				return p.errf("unterminated entity reference")
			}
			// The reference spans the chunk boundary: finish it
			// byte-wise from the reader.
			s, err := p.finishEntity(string(data))
			if err != nil {
				return err
			}
			p.text = append(p.text, s...)
			return nil
		}
		s, err := p.decodeEntity(string(data[:semi]))
		if err != nil {
			return err
		}
		p.text = append(p.text, s...)
		data = data[semi+1:]
	}
	return nil
}

func bytesIndexByte(b []byte, c byte) int {
	for i, x := range b {
		if x == c {
			return i
		}
	}
	return -1
}

// advancePos updates line/column tracking for a consumed chunk.
func (p *Parser) advancePos(chunk []byte) {
	for _, b := range chunk {
		if b == '\n' {
			p.line++
			p.col = 0
		} else {
			p.col++
		}
	}
}

// finishEntity completes an entity whose prefix was split off by a chunk
// boundary, reading up to the terminating ';'.
func (p *Parser) finishEntity(prefix string) (string, error) {
	var sb strings.Builder
	sb.WriteString(prefix)
	for {
		b, err := p.mustByte()
		if err != nil {
			return "", err
		}
		if b == ';' {
			return p.decodeEntity(sb.String())
		}
		if sb.Len() > 10 {
			return "", p.errf("entity reference too long: &%s...", sb.String())
		}
		sb.WriteByte(b)
	}
}

func (p *Parser) flushText() error {
	if len(p.text) == 0 {
		return nil
	}
	data := string(p.text)
	p.text = p.text[:0]
	if !p.opts.PreserveWhitespace && strings.TrimFunc(data, func(r rune) bool {
		return r == ' ' || r == '\t' || r == '\n' || r == '\r'
	}) == "" {
		return nil
	}
	return p.h.Text(data)
}

func (p *Parser) readEntity() (string, error) {
	var sb strings.Builder
	for {
		b, err := p.mustByte()
		if err != nil {
			return "", err
		}
		if b == ';' {
			break
		}
		if sb.Len() > 10 {
			return "", p.errf("entity reference too long: &%s...", sb.String())
		}
		sb.WriteByte(b)
	}
	return p.decodeEntity(sb.String())
}

// decodeEntity resolves the text of a reference (without '&' and ';').
func (p *Parser) decodeEntity(ent string) (string, error) {
	switch ent {
	case "amp":
		return "&", nil
	case "lt":
		return "<", nil
	case "gt":
		return ">", nil
	case "quot":
		return `"`, nil
	case "apos":
		return "'", nil
	}
	if strings.HasPrefix(ent, "#") {
		num := ent[1:]
		base := 10
		if strings.HasPrefix(num, "x") || strings.HasPrefix(num, "X") {
			num, base = num[1:], 16
		}
		code, err := strconv.ParseInt(num, base, 32)
		if err != nil || code < 0 {
			return "", p.errf("invalid character reference &%s;", ent)
		}
		return string(rune(code)), nil
	}
	return "", p.errf("unknown entity &%s;", ent)
}

// readBang handles constructs introduced by "<!": comments, CDATA sections
// and a DOCTYPE declaration (which is skipped).
func (p *Parser) readBang() error {
	b, err := p.mustByte()
	if err != nil {
		return err
	}
	switch b {
	case '-':
		if b, err = p.mustByte(); err != nil {
			return err
		}
		if b != '-' {
			return p.errf("malformed comment")
		}
		return p.skipComment()
	case '[':
		for _, want := range []byte("CDATA[") {
			b, err := p.mustByte()
			if err != nil {
				return err
			}
			if b != want {
				return p.errf("malformed CDATA section")
			}
		}
		if len(p.stack) == 0 {
			return p.errf("CDATA section outside the root element")
		}
		return p.readCDATA()
	case 'D':
		if len(p.stack) > 0 {
			return p.errf("DOCTYPE inside the root element")
		}
		return p.skipDoctype()
	default:
		return p.errf("unexpected markup <!%c", b)
	}
}

func (p *Parser) skipComment() error {
	dashes := 0
	for {
		b, err := p.mustByte()
		if err != nil {
			return err
		}
		switch {
		case b == '-':
			dashes++
		case b == '>' && dashes >= 2:
			return nil
		default:
			dashes = 0
		}
	}
}

func (p *Parser) readCDATA() error {
	brackets := 0
	for {
		b, err := p.mustByte()
		if err != nil {
			return err
		}
		switch {
		case b == ']':
			brackets++
		case b == '>' && brackets >= 2:
			for ; brackets > 2; brackets-- {
				p.text = append(p.text, ']')
			}
			return nil
		default:
			for ; brackets > 0; brackets-- {
				p.text = append(p.text, ']')
			}
			p.text = append(p.text, b)
		}
	}
}

func (p *Parser) skipPI() error {
	question := false
	for {
		b, err := p.mustByte()
		if err != nil {
			return err
		}
		if question && b == '>' {
			return nil
		}
		question = b == '?'
	}
}

// skipDoctype consumes a DOCTYPE declaration, including an optional
// internal subset in brackets.
func (p *Parser) skipDoctype() error {
	depth := 0
	for {
		b, err := p.mustByte()
		if err != nil {
			return err
		}
		switch b {
		case '[':
			depth++
		case ']':
			depth--
		case '>':
			if depth <= 0 {
				return nil
			}
		}
	}
}
