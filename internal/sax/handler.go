// Package sax implements a from-scratch streaming XML parser and serializer
// with the five-event model assumed by the paper's twoPassSAX algorithm
// (§6): startDocument, startElement, text, endElement, endDocument.
//
// The parser is deliberately small: it supports elements, attributes,
// character data, the five predefined entities plus numeric character
// references, CDATA sections, comments, processing instructions and a
// DOCTYPE prologue. Namespaces are out of scope, as in the paper.
package sax

import (
	"io"

	"xtq/internal/tree"
)

// Handler receives the SAX event stream of a document. Methods returning a
// non-nil error abort parsing and propagate the error to the caller.
type Handler interface {
	StartDocument() error
	StartElement(name string, attrs []tree.Attr) error
	Text(data string) error
	EndElement(name string) error
	EndDocument() error
}

// SymbolHandler is an optional extension of Handler for consumers that
// work with interned symbols. When a Parser's handler implements it, the
// parser calls SetSymbols with its interning table before StartDocument
// and delivers start tags through StartElementSym (instead of
// StartElement) with the label's dense tree.SymID — the symbol-keyed
// evaluators step their automata on the id without ever comparing label
// strings. The table grows as the parse discovers new names and must not
// be shared outside the handler until the parse completes.
type SymbolHandler interface {
	Handler
	SetSymbols(*tree.Symbols)
	StartElementSym(sym tree.SymID, name string, attrs []tree.Attr) error
}

// TreeBuilder is a Handler that materializes the event stream as a
// tree.Node document. Driven by a Parser it is also a SymbolHandler: the
// parser's interning table becomes the document's symbol table and the
// finished document is indexed (tree.Index) before Document returns it,
// so evaluation never pays a separate indexing walk for parsed input.
type TreeBuilder struct {
	doc   *tree.Node
	stack []*tree.Node
	syms  *tree.Symbols
	ib    *tree.IndexBuilder
}

// Document returns the built document; valid after EndDocument.
func (b *TreeBuilder) Document() *tree.Node { return b.doc }

// SetSymbols implements SymbolHandler.
func (b *TreeBuilder) SetSymbols(s *tree.Symbols) { b.syms = s }

// StartDocument implements Handler.
func (b *TreeBuilder) StartDocument() error {
	b.doc = tree.NewDocument(nil)
	b.stack = b.stack[:0]
	b.stack = append(b.stack, b.doc)
	// A symbol-aware parser has already interned attribute names into the
	// table it handed over; without one the builder interns them itself.
	b.ib = tree.NewIndexBuilder(b.syms, b.syms == nil)
	b.ib.Add(b.doc)
	return nil
}

// StartElement implements Handler.
func (b *TreeBuilder) StartElement(name string, attrs []tree.Attr) error {
	return b.StartElementSym(tree.NoSym, name, attrs)
}

// StartElementSym implements SymbolHandler.
func (b *TreeBuilder) StartElementSym(sym tree.SymID, name string, attrs []tree.Attr) error {
	e := tree.NewElement(name)
	e.Sym = sym
	if len(attrs) > 0 {
		e.Attrs = make([]tree.Attr, len(attrs))
		copy(e.Attrs, attrs)
	}
	b.ib.Add(e)
	top := b.stack[len(b.stack)-1]
	top.Children = append(top.Children, e)
	b.stack = append(b.stack, e)
	return nil
}

// Text implements Handler.
func (b *TreeBuilder) Text(data string) error {
	t := tree.NewText(data)
	b.ib.Add(t)
	top := b.stack[len(b.stack)-1]
	top.Children = append(top.Children, t)
	return nil
}

// EndElement implements Handler.
func (b *TreeBuilder) EndElement(string) error {
	b.stack = b.stack[:len(b.stack)-1]
	return nil
}

// EndDocument implements Handler.
func (b *TreeBuilder) EndDocument() error {
	b.stack = b.stack[:len(b.stack)-1]
	b.ib.Finish(b.doc)
	b.ib = nil
	b.syms = nil
	return nil
}

// Emit replays the subtree rooted at n as SAX events on h, including the
// surrounding StartDocument/EndDocument pair when n is a document node.
// It is the bridge from the DOM world back into the event world.
func Emit(n *tree.Node, h Handler) error {
	if n.Kind == tree.Document {
		if err := h.StartDocument(); err != nil {
			return err
		}
		for _, c := range n.Children {
			if err := emitNode(c, h); err != nil {
				return err
			}
		}
		return h.EndDocument()
	}
	return emitNode(n, h)
}

func emitNode(n *tree.Node, h Handler) error {
	switch n.Kind {
	case tree.Text:
		return h.Text(n.Data)
	case tree.Element:
		if err := h.StartElement(n.Label, n.Attrs); err != nil {
			return err
		}
		for _, c := range n.Children {
			if err := emitNode(c, h); err != nil {
				return err
			}
		}
		return h.EndElement(n.Label)
	default:
		return nil
	}
}

// Parse reads an XML document from r and returns it as a tree. It is the
// standard way the rest of the repository loads documents into memory.
func Parse(r io.Reader) (*tree.Node, error) {
	var b TreeBuilder
	p := NewParser(r, &b)
	if err := p.Parse(); err != nil {
		return nil, err
	}
	return b.Document(), nil
}

// ParseString parses an XML document held in a string.
func ParseString(s string) (*tree.Node, error) {
	return Parse(newStringReader(s))
}

type stringReader struct {
	s string
	i int
}

func newStringReader(s string) *stringReader { return &stringReader{s: s} }

func (r *stringReader) Read(p []byte) (int, error) {
	if r.i >= len(r.s) {
		return 0, io.EOF
	}
	n := copy(p, r.s[r.i:])
	r.i += n
	return n, nil
}
