package harness

import (
	"context"
	"strings"
	"testing"
	"time"

	"xtq/internal/core"
	"xtq/internal/queries"
	"xtq/internal/tree"
)

// fastOpts keeps harness tests quick: tiny factors, one repeat.
func fastOpts(out *strings.Builder, t *testing.T) Options {
	return Options{
		Out:          out,
		Factors:      []float64{0.002, 0.004},
		Fig14Factors: []float64{0.004},
		Repeats:      1,
		Seed:         7,
		TempDir:      t.TempDir(),
	}
}

func TestFig11(t *testing.T) {
	var out strings.Builder
	New(fastOpts(&out, t)).Fig11()
	for _, want := range []string{"U1", "U10", "person", "open_auction"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("Fig11 output missing %q:\n%s", want, out.String())
		}
	}
}

func TestFig12(t *testing.T) {
	var out strings.Builder
	r := New(fastOpts(&out, t))
	// Override the hard-coded 0.02 factor by pre-caching small docs is
	// not possible; run it for real but assert only the format to keep
	// the suite fast at the default factor.
	if testing.Short() {
		t.Skip("skipping factor-0.02 run in -short mode")
	}
	r.Fig12()
	s := out.String()
	for _, want := range []string{"Figure 12", "GalaXUpdate", "NAIVE", "TD-BU", "GENTOP", "twoPassSAX", "U10"} {
		if !strings.Contains(s, want) {
			t.Errorf("Fig12 output missing %q", want)
		}
	}
	if len(strings.Split(strings.TrimSpace(s), "\n")) < 13 {
		t.Errorf("Fig12 should print 10 data rows:\n%s", s)
	}
}

func TestFig13(t *testing.T) {
	var out strings.Builder
	New(fastOpts(&out, t)).Fig13()
	s := out.String()
	if strings.Count(s, "Figure 13") != 4 {
		t.Errorf("Fig13 should print 4 tables (U2, U4, U7, U10):\n%s", s)
	}
	if !strings.Contains(s, "0.00") && !strings.Contains(s, "0.002") {
		// factors formatted with two decimals
		t.Logf("output:\n%s", s)
	}
}

func TestFig14(t *testing.T) {
	var out strings.Builder
	New(fastOpts(&out, t)).Fig14()
	s := out.String()
	for _, want := range []string{"Figure 14", "file MB", "peak extra heap MB"} {
		if !strings.Contains(s, want) {
			t.Errorf("Fig14 output missing %q:\n%s", want, s)
		}
	}
}

func TestFig15(t *testing.T) {
	var out strings.Builder
	New(fastOpts(&out, t)).Fig15()
	s := out.String()
	if strings.Count(s, "Figure 15") != 4 {
		t.Errorf("Fig15 should print 4 tables:\n%s", s)
	}
	for _, want := range []string{"(U1,U2)", "(U9,U1)", "(U9,U4)", "(U8,U10)", "Naive Composition", "Compose"} {
		if !strings.Contains(s, want) {
			t.Errorf("Fig15 output missing %q", want)
		}
	}
}

func TestClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("claims sweep uses factor 0.32")
	}
	var out strings.Builder
	opts := fastOpts(&out, t)
	New(opts).Claims()
	s := out.String()
	for _, want := range []string{"Claim 1", "Claim 2", "NAIVE U1 ms"} {
		if !strings.Contains(s, want) {
			t.Errorf("Claims output missing %q", want)
		}
	}
}

func TestViews(t *testing.T) {
	var out strings.Builder
	New(fastOpts(&out, t)).Views()
	s := out.String()
	for _, want := range []string{"Stacked views:", "upd|audit", "hyp|sec", "upd|ren|sec",
		"sequential", "stacked", "intermediate nodes", "L0 visited", "L1 mat"} {
		if !strings.Contains(s, want) {
			t.Errorf("Views output missing %q:\n%s", want, s)
		}
	}
}

// TestStackedViewMaterializesLessThanIntermediates pins the stacked-view
// acceptance claim: a 2+-layer stack evaluates in a single pass, with
// the run's Materialized count staying below the total size of the
// intermediate views the sequential method builds — and with results
// identical to sequential materialization.
func TestStackedViewMaterializesLessThanIntermediates(t *testing.T) {
	r := New(fastOpts(&strings.Builder{}, t))
	ctx := context.Background()
	doc := r.Doc(0.004)
	for _, s := range queries.Stacks() {
		plan, err := StackPlan(s)
		if err != nil {
			t.Fatal(err)
		}
		if plan.NumLayers() < 2 {
			t.Fatalf("%s: stack has %d layers, want 2+", s.Name, plan.NumLayers())
		}
		got, vs, err := plan.Eval(ctx, doc)
		if err != nil {
			t.Fatal(err)
		}
		want, err := plan.EvalSequential(ctx, doc, core.MethodTopDown)
		if err != nil {
			t.Fatal(err)
		}
		if !tree.Equal(got, want) {
			t.Errorf("%s: single pass disagrees with sequential materialization", s.Name)
		}
		inter, err := IntermediateSize(ctx, plan, doc)
		if err != nil {
			t.Fatal(err)
		}
		if vs.Materialized >= inter {
			t.Errorf("%s: Materialized = %d, not below intermediate size %d",
				s.Name, vs.Materialized, inter)
		}
		for i, ls := range vs.Layers {
			if ls.NodesVisited == 0 {
				t.Errorf("%s: layer %d reports no visited nodes", s.Name, i)
			}
		}
	}
}

func TestMedian(t *testing.T) {
	r := New(Options{Out: &strings.Builder{}, Repeats: 3})
	calls := 0
	d := r.median(func() { calls++; time.Sleep(time.Millisecond) })
	if calls != 3 {
		t.Errorf("median ran fn %d times, want 3", calls)
	}
	if d < time.Millisecond {
		t.Errorf("median %v implausibly small", d)
	}
}

func TestTableAlignment(t *testing.T) {
	var out strings.Builder
	table(&out, []string{"a", "long-header"}, [][]string{{"xx", "1"}, {"y", "22"}})
	lines := strings.Split(strings.TrimRight(out.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table printed %d lines", len(lines))
	}
	if len(lines[0]) != len(lines[1]) {
		t.Errorf("separator misaligned:\n%s", out.String())
	}
}

func TestDocCaching(t *testing.T) {
	r := New(fastOpts(&strings.Builder{}, t))
	a := r.Doc(0.002)
	b := r.Doc(0.002)
	if a != b {
		t.Errorf("documents not cached")
	}
	x := r.XML(0.002)
	y := r.XML(0.002)
	if &x[0] != &y[0] {
		t.Errorf("serializations not cached")
	}
}

// peakSink keeps the test allocation reachable until the measurement's
// final sample; a buffer that dies inside fn can be collected before
// measurePeakHeap reads the heap, making the test timing-dependent.
var peakSink []byte

func TestMeasurePeakHeap(t *testing.T) {
	peak := measurePeakHeap(func() {
		buf := make([]byte, 8<<20)
		for i := range buf {
			buf[i] = byte(i)
		}
		peakSink = buf
	})
	peakSink = nil
	if peak < 4<<20 {
		t.Errorf("peak = %d, expected to observe the 8 MB allocation", peak)
	}
}

func TestStoreSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping factor-0.01 store sweep in -short mode")
	}
	var out strings.Builder
	New(fastOpts(&out, t)).Store()
	s := out.String()
	for _, want := range []string{"Store sweep", "readers", "reads/s", "commit ms", "copied MB/commit"} {
		if !strings.Contains(s, want) {
			t.Errorf("store sweep output missing %q:\n%s", want, s)
		}
	}
	if rows := strings.Split(strings.TrimSpace(s), "\n"); len(rows) < 8 {
		t.Errorf("store sweep should print 5 data rows:\n%s", s)
	}
}

func TestBenchJSONIncludesStoreRows(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping bench sweep in -short mode")
	}
	var out strings.Builder
	r := New(fastOpts(&out, t))
	var buf strings.Builder
	if err := r.BenchJSON(&buf, 0.002); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{`"store/read/U2"`, `"store/commit/rename-items"`, `"copied-B/op"`} {
		if !strings.Contains(s, want) {
			t.Errorf("bench JSON missing %q", want)
		}
	}
}
