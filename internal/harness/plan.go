package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"testing"
	"time"

	"xtq/internal/core"
	"xtq/internal/obs"
	"xtq/internal/plan"
	"xtq/internal/queries"
	"xtq/internal/stats"
	"xtq/internal/tree"
)

// planTrials is the per-(query, method) repetition count of the
// planner sweeps; the minimum over trials filters scheduler noise so
// the smoke gate measures the method choice, not the machine.
const planTrials = 5

// planSlack absorbs constant per-evaluation overhead (the planner
// consultation itself, trace-free evaluation setup) so the regression
// bound stays meaningful on sub-millisecond documents.
const planSlack = time.Millisecond

// planCell is one (query, document) measurement of the planner sweep.
type planCell struct {
	dec    plan.Decision
	actual int // nodes the planned method actually visited
	// static holds the best-of-trials evaluation time per concrete
	// method, in methodLabels order; auto is the same measurement with
	// the planner consulted per evaluation.
	static []time.Duration
	auto   time.Duration
}

// planIndex freezes the cached document for a factor: the planner reads
// statistics off sealed snapshots, which is where the store consults it.
func (r *Runner) planIndex(factor float64) *tree.Index {
	_, ix, _ := tree.Freeze(r.Doc(factor), nil)
	return ix
}

// bestOf runs fn planTrials times and returns the fastest run — the
// estimator of choice for a regression gate, where one slow outlier
// must not fail the build.
func (r *Runner) bestOf(fn func()) time.Duration {
	best := time.Duration(1<<63 - 1)
	for i := 0; i < planTrials; i++ {
		start := time.Now()
		fn()
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best
}

func (r *Runner) measurePlanCell(c *core.Compiled, ix *tree.Index) planCell {
	cell := planCell{dec: plan.WouldChoose(c, ix)}
	for _, m := range methodLabels {
		cell.static = append(cell.static, r.bestOf(func() {
			_, err := c.EvalContext(r.opts.Context, ix.Root, m.method)
			r.check(err)
		}))
	}
	// Auto pays the planner consultation inside the measured region —
	// the engine amortizes it behind a decision cache, so charging the
	// full WouldChoose per evaluation here is the conservative bound.
	cell.auto = r.bestOf(func() {
		d := plan.WouldChoose(c, ix)
		_, err := c.EvalContext(r.opts.Context, ix.Root, d.Method)
		r.check(err)
	})
	tr := obs.NewTrace()
	_, err := c.EvalContext(obs.WithTrace(r.opts.Context, tr), ix.Root, cell.dec.Method)
	r.check(err)
	cell.actual = tr.NodesVisited()
	return cell
}

// planFactors are the XMark scales of the planner sweep — the scales of
// the planner property test, bridging the tiny-document regime (where
// whole-pass methods are nearly free) and the paper's measurement range.
var planFactors = []float64{0.005, 0.02}

// Plan prints the planner sweep: for each factor and embedded query,
// the planner's decision with its estimated-vs-actual visit counts next
// to the measured runtime of every static method and of planning per
// evaluation ("auto"). The auto column tracking the per-row minimum is
// the sweep's whole point.
func (r *Runner) Plan() {
	for _, f := range planFactors {
		ix := r.planIndex(f)
		n := stats.Of(ix).Nodes()
		fmt.Fprintf(r.opts.Out, "Planner: method choice vs static methods (best-of-%d ms), factor %g (%d nodes)\n",
			planTrials, f, n)
		header := []string{"query", "decision", "est", "actual", "GalaXUpdate", "NAIVE", "TD-BU", "GENTOP", "auto"}
		var rows [][]string
		for i := 1; i <= 10; i++ {
			c, err := queries.Compile(i)
			if err != nil {
				panic(err)
			}
			cell := r.measurePlanCell(c, ix)
			if r.stopped() {
				break
			}
			row := []string{fmt.Sprintf("U%d", i), string(cell.dec.Method),
				fmt.Sprintf("%d", cell.dec.EstNodes), fmt.Sprintf("%d", cell.actual)}
			for _, d := range cell.static {
				row = append(row, ms(d))
			}
			row = append(row, ms(cell.auto))
			rows = append(rows, row)
		}
		table(r.opts.Out, header, rows)
		fmt.Fprintln(r.opts.Out)
		if r.stopped() {
			return
		}
	}
}

// PlanJSON writes the machine-readable planner sweep (`xbench -plan
// -json`), the format of BENCH_PR10.json: for every embedded query at
// the given factor, one exact testing.Benchmark row per static method
// plus the "auto" row (planner consulted per evaluation), whose Extra
// carries the decision's estimated and actual visit counts. Comparing
// the auto row with the per-query minimum across PRs is what makes the
// planner's acceptance claim checkable.
func (r *Runner) PlanJSON(w io.Writer, factor float64) error {
	ix := r.planIndex(factor)
	report := &BenchReport{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Factor:    factor,
		DocBytes:  len(r.XML(factor)),
		DocNodes:  stats.Of(ix).Nodes(),
	}
	add := func(name string, extra map[string]float64, fn func(b *testing.B)) {
		if r.stopped() {
			return
		}
		res := testing.Benchmark(fn)
		if r.stopped() {
			return
		}
		row := toResult(name, res)
		if len(extra) > 0 {
			if row.Extra == nil {
				row.Extra = map[string]float64{}
			}
			for k, v := range extra {
				row.Extra[k] = v
			}
		}
		report.Results = append(report.Results, row)
	}
	for i := 1; i <= 10; i++ {
		c, err := queries.Compile(i)
		if err != nil {
			return err
		}
		for _, m := range methodLabels {
			method := m.method
			add(fmt.Sprintf("plan/U%d/%s", i, method), nil, func(b *testing.B) {
				b.ReportAllocs()
				for j := 0; j < b.N; j++ {
					_, err := c.EvalContext(r.opts.Context, ix.Root, method)
					r.check(err)
				}
			})
		}
		dec := plan.WouldChoose(c, ix)
		tr := obs.NewTrace()
		if _, err := c.EvalContext(obs.WithTrace(r.opts.Context, tr), ix.Root, dec.Method); err != nil {
			r.check(err)
		}
		add(fmt.Sprintf("plan/U%d/auto", i), map[string]float64{
			"est_nodes":    float64(dec.EstNodes),
			"est_cost":     dec.EstCost,
			"actual_nodes": float64(tr.NodesVisited()),
		}, func(b *testing.B) {
			b.ReportAllocs()
			for j := 0; j < b.N; j++ {
				d := plan.WouldChoose(c, ix)
				_, err := c.EvalContext(r.opts.Context, ix.Root, d.Method)
				r.check(err)
			}
		})
	}
	if err := r.opts.Context.Err(); err != nil {
		return fmt.Errorf("plan sweep interrupted: %w", err)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}

// PlanSmoke runs the CI planner check at factor 0.01: for every
// embedded query, evaluating with the planner's choice (planner
// consulted per evaluation, as in the auto rows of the sweep) must not
// be more than maxRegression slower than the best static method, plus a
// constant slack for the consultation itself. A failure means the cost
// model started picking a method a whole document pass worse than the
// best — the one mistake a planner must never make.
func (r *Runner) PlanSmoke(maxRegression float64) error {
	const factor = 0.01
	ix := r.planIndex(factor)
	start := time.Now()
	var failures []string
	worst := 0.0
	for i := 1; i <= 10; i++ {
		c, err := queries.Compile(i)
		if err != nil {
			return err
		}
		cell := r.measurePlanCell(c, ix)
		if r.stopped() {
			return r.opts.Context.Err()
		}
		best := cell.static[0]
		bestM := methodLabels[0].label
		for j, d := range cell.static[1:] {
			if d < best {
				best, bestM = d, methodLabels[j+1].label
			}
		}
		over := float64(cell.auto-best) / float64(best)
		if over > worst {
			worst = over
		}
		limit := best + time.Duration(float64(best)*maxRegression) + planSlack
		if cell.auto > limit {
			failures = append(failures, fmt.Sprintf(
				"U%d: auto (%s) %v > %v (best static %s %v + %.0f%% + slack)",
				i, cell.dec.Method, cell.auto, limit, bestM, best, 100*maxRegression))
		}
	}
	fmt.Fprintf(r.opts.Out, "plan smoke: 10 queries at factor %g in %v, worst auto-vs-best gap %.1f%% (limit %.0f%%+%v)\n",
		factor, time.Since(start).Round(time.Millisecond), 100*worst, 100*maxRegression, planSlack)
	if len(failures) > 0 {
		return fmt.Errorf("planner regression:\n  %s", joinLines(failures))
	}
	return nil
}

func joinLines(ss []string) string {
	out := ""
	for i, s := range ss {
		if i > 0 {
			out += "\n  "
		}
		out += s
	}
	return out
}
