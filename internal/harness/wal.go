package harness

import (
	"fmt"
	"os"
	"time"

	"xtq/internal/core"
	"xtq/internal/store"
	"xtq/internal/wal"
)

// walPolicies are the fsync policies the durability sweep measures, in
// decreasing durability order, after the in-memory baseline.
var walPolicies = []wal.FsyncPolicy{wal.FsyncNone, wal.FsyncInterval, wal.FsyncAlways}

// WAL runs the durability sweep (`xbench -wal`): the alternating
// rename-update writer of the store sweep committing back-to-back
// against (a) the in-memory store and (b) a WAL-backed store under each
// fsync policy, reporting commits/s and mean/total commit latency. The
// gap between rows is the price of each durability level: none ≈
// write(2) per commit, interval adds nothing on the commit path but
// bounds loss to the sync window, always pays a (group-committed) fsync
// per commit.
func (r *Runner) WAL() {
	const (
		factor  = 0.01
		perCell = 400 * time.Millisecond
	)
	doc := r.Doc(factor)
	writeA, writeB, err := StoreWriteQueries()
	r.check(err)

	fmt.Fprintf(r.opts.Out, "Durability sweep: factor %.2f (%d nodes), 1 writer committing alternating //item renames, %s per cell\n",
		factor, doc.Size(), perCell)

	var rows [][]string
	addRow := func(label string, commits int64, elapsed time.Duration, logBytes int64) {
		if commits == 0 {
			return
		}
		perCommit := elapsed / time.Duration(commits)
		mb := "-"
		if logBytes > 0 {
			mb = fmt.Sprintf("%.2f", float64(logBytes)/1e6)
		}
		rows = append(rows, []string{
			label,
			fmt.Sprintf("%.1f", float64(commits)/elapsed.Seconds()),
			fmt.Sprintf("%.3f", float64(perCommit)/1e6),
			mb,
		})
	}

	// Baseline: the in-memory store's commit path (evaluation + snapshot
	// copy + CAS), no logging at all.
	if !r.stopped() {
		st := store.New()
		_, _, err := st.Put("d", doc.DeepCopy(), true)
		r.check(err)
		commits, elapsed := r.commitLoop(st, writeA, writeB, perCell)
		addRow("memory", commits, elapsed, 0)
	}

	for _, policy := range walPolicies {
		if r.stopped() {
			break
		}
		dir, err := os.MkdirTemp(r.opts.TempDir, "xtq-wal-*")
		r.check(err)
		st, err := store.Open(dir, store.Options{Fsync: policy})
		r.check(err)
		_, _, err = st.Put("d", doc.DeepCopy(), true)
		r.check(err)
		commits, elapsed := r.commitLoop(st, writeA, writeB, perCell)
		logBytes := st.CheckpointStats().LogBytes
		r.check(st.Close())
		os.RemoveAll(dir)
		if r.stopped() {
			break // drop the interrupted row
		}
		addRow("wal/"+policy.String(), commits, elapsed, logBytes)
	}
	table(r.opts.Out, []string{"store", "commits/s", "commit ms", "log MB"}, rows)
}

// commitLoop commits alternating updates back-to-back for d, returning
// the commit count and elapsed time.
func (r *Runner) commitLoop(st *store.Store, writeA, writeB *core.Compiled, d time.Duration) (int64, time.Duration) {
	ctx := r.opts.Context
	start := time.Now()
	deadline := start.Add(d)
	var commits int64
	for time.Now().Before(deadline) {
		if r.stopped() {
			break
		}
		writeC := writeA
		if commits%2 == 1 {
			writeC = writeB
		}
		_, _, err := st.Apply(ctx, "d", writeC, core.MethodTopDown)
		r.check(err)
		commits++
	}
	return commits, time.Since(start)
}
