package harness

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"

	"xtq/internal/core"
	"xtq/internal/queries"
	"xtq/internal/sax"
	"xtq/internal/saxeval"
	"xtq/internal/store"
	"xtq/internal/wal"
)

// BenchResult is one machine-readable measurement of the -json sweep.
// The fields mirror testing.BenchmarkResult so the numbers are directly
// comparable with `go test -bench` output.
type BenchResult struct {
	Name        string  `json:"name"`
	N           int     `json:"n"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// Extra carries custom b.ReportMetric values (e.g. the store commit
	// sweep's "copied-B/op" snapshot-copy volume).
	Extra map[string]float64 `json:"extra,omitempty"`
}

// BenchReport is the machine-readable sweep emitted by `xbench -json`:
// every in-memory evaluation method plus the streaming evaluator over the
// representative queries at one XMark factor, with allocation counts. It
// is the format of the BENCH_PR*.json trajectory files committed to the
// repository, which make performance claims across PRs checkable.
type BenchReport struct {
	GoVersion string        `json:"go_version"`
	GOOS      string        `json:"goos"`
	GOARCH    string        `json:"goarch"`
	Factor    float64       `json:"factor"`
	DocBytes  int           `json:"doc_bytes"`
	DocNodes  int           `json:"doc_nodes"`
	Results   []BenchResult `json:"results"`
}

// benchQueries are the representative embedded queries of the paper's
// scalability figures (U2, U4, U7, U10).
var benchQueries = []int{2, 4, 7, 10}

func toResult(name string, r testing.BenchmarkResult) BenchResult {
	out := BenchResult{
		Name:        name,
		N:           r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
	if len(r.Extra) > 0 {
		out.Extra = make(map[string]float64, len(r.Extra))
		for k, v := range r.Extra {
			out.Extra[k] = v
		}
	}
	return out
}

// BenchJSON runs the machine-readable sweep at the given factor and writes
// a BenchReport as indented JSON to w. Unlike the figure tables, every
// measurement uses testing.Benchmark, so allocs/op and bytes/op are exact.
// Cancelling the runner's context aborts the sweep: the in-flight row is
// discarded (it was measured against aborting evaluations) and an error
// is returned instead of a report full of zero rows — real evaluation
// failures panic, as in the table sweeps (Runner.check).
func (r *Runner) BenchJSON(w io.Writer, factor float64) error {
	xml := r.XML(factor)
	doc := r.Doc(factor)
	report := &BenchReport{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Factor:    factor,
		DocBytes:  len(xml),
		DocNodes:  doc.Size(),
	}
	add := func(name string, fn func(b *testing.B)) {
		if r.stopped() {
			return
		}
		res := testing.Benchmark(fn)
		if r.stopped() {
			return // drop the interrupted row
		}
		report.Results = append(report.Results, toResult(name, res))
	}

	add("parse", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sax.Parse(bytes.NewReader(xml)); err != nil {
				panic(err)
			}
		}
	})

	for _, qi := range benchQueries {
		c, err := queries.Compile(qi)
		if err != nil {
			return err
		}
		for _, m := range []core.Method{core.MethodTopDown, core.MethodTwoPass} {
			add(fmt.Sprintf("%s/U%d", m, qi), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					_, err := c.EvalContext(r.opts.Context, doc, m)
					r.check(err)
				}
			})
		}
		add(fmt.Sprintf("bottomup/U%d", qi), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, err := core.EvalBottomUp(r.opts.Context, c, doc)
				r.check(err)
			}
		})
		add(fmt.Sprintf("saxstream/U%d", qi), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, err := saxeval.TransformContext(r.opts.Context, c, saxeval.BytesSource(xml), discardHandler{})
				r.check(err)
			}
		})
	}

	for _, s := range queries.Stacks() {
		plan, err := StackPlan(s)
		if err != nil {
			return err
		}
		add(fmt.Sprintf("viewstack/%s", s.Name), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, _, err := plan.Eval(r.opts.Context, doc)
				r.check(err)
			}
		})
	}

	// Store rows: the snapshot read path (compare with topdown/U2 — the
	// same evaluation over the same corpus as a plain tree; the
	// acceptance bar is within 10%) and the copy-on-write commit path
	// with its snapshot-copy volume.
	if !r.stopped() {
		st := store.New()
		if _, _, err := st.Put("d", doc.DeepCopy(), true); err != nil {
			return err
		}
		readC, err := queries.Compile(2)
		if err != nil {
			return err
		}
		writeA, writeB, err := StoreWriteQueries()
		if err != nil {
			return err
		}
		add("store/read/U2", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				snap, err := st.Snapshot("d")
				if err != nil {
					panic(err)
				}
				_, err = readC.EvalContext(r.opts.Context, snap.Root(), core.MethodTopDown)
				r.check(err)
			}
		})
		add("store/commit/rename-items", func(b *testing.B) {
			b.ReportAllocs()
			var copied int64
			for i := 0; i < b.N; i++ {
				writeC := writeA
				if i%2 == 1 {
					writeC = writeB
				}
				_, com, err := st.Apply(r.opts.Context, "d", writeC, core.MethodTopDown)
				r.check(err)
				copied += com.CopiedBytes
			}
			if b.N > 0 {
				b.ReportMetric(float64(copied)/float64(b.N), "copied-B/op")
			}
		})

		// WAL rows: the same commit with durability attached, one row per
		// fsync policy (compare with store/commit/rename-items, the
		// in-memory baseline), plus the cost of recovering a log.
		for _, policy := range walPolicies {
			if r.stopped() {
				break
			}
			dir, err := os.MkdirTemp(r.opts.TempDir, "xtq-wal-*")
			if err != nil {
				return err
			}
			dst, err := store.Open(dir, store.Options{Fsync: policy})
			if err != nil {
				return err
			}
			if _, _, err := dst.Put("d", doc.DeepCopy(), true); err != nil {
				return err
			}
			add(fmt.Sprintf("wal/commit/%s", policy), func(b *testing.B) {
				b.ReportAllocs()
				logStart := dst.CheckpointStats().LogBytes
				for i := 0; i < b.N; i++ {
					writeC := writeA
					if i%2 == 1 {
						writeC = writeB
					}
					_, _, err := dst.Apply(r.opts.Context, "d", writeC, core.MethodTopDown)
					r.check(err)
				}
				if b.N > 0 {
					b.ReportMetric(float64(dst.CheckpointStats().LogBytes-logStart)/float64(b.N), "log-B/op")
				}
			})
			if err := dst.Close(); err != nil {
				return err
			}
			os.RemoveAll(dir)
		}

		if !r.stopped() {
			// Recovery cost: reopening a log of 50 update records over the
			// checkpointless corpus — the startup latency durability buys.
			dir, err := os.MkdirTemp(r.opts.TempDir, "xtq-walrec-*")
			if err != nil {
				return err
			}
			rst, err := store.Open(dir, store.Options{Fsync: wal.FsyncNone})
			if err != nil {
				return err
			}
			if _, _, err := rst.Put("d", doc.DeepCopy(), true); err != nil {
				return err
			}
			for i := 0; i < 50; i++ {
				writeC := writeA
				if i%2 == 1 {
					writeC = writeB
				}
				if _, _, err := rst.Apply(r.opts.Context, "d", writeC, core.MethodTopDown); err != nil {
					return err
				}
			}
			if err := rst.Close(); err != nil {
				return err
			}
			add("wal/recover/50-updates", func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					st, err := store.Open(dir, store.Options{})
					if err != nil {
						panic(err)
					}
					if err := st.Close(); err != nil {
						panic(err)
					}
				}
			})
			os.RemoveAll(dir)
		}
	}

	if err := r.opts.Context.Err(); err != nil {
		return fmt.Errorf("bench sweep interrupted: %w", err)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}
