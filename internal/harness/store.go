package harness

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"xtq/internal/core"
	"xtq/internal/queries"
	"xtq/internal/store"
	"xtq/internal/tree"
	"xtq/internal/xpath"
)

// StoreWriteQueries returns the alternating pair of rename updates the
// store measurements commit: the first renames every /site/regions//item
// to item_, the second renames them back. Alternating keeps the work
// and the snapshot-copy volume of every commit identical — an
// insert-based writer would grow the corpus with each commit and skew
// latency over the run.
func StoreWriteQueries() (a, b *core.Compiled, err error) {
	qa := &core.Query{Var: "a", Doc: "xmark", Update: core.Update{
		Op: core.Rename, Path: xpath.MustParse(`/site/regions//item`), Label: "item_"}}
	qb := &core.Query{Var: "a", Doc: "xmark", Update: core.Update{
		Op: core.Rename, Path: xpath.MustParse(`/site/regions//item_`), Label: "item"}}
	if a, err = qa.Compile(); err != nil {
		return nil, nil, err
	}
	if b, err = qb.Compile(); err != nil {
		return nil, nil, err
	}
	return a, b, nil
}

// storeCell is one measured configuration of the store sweep.
type storeCell struct {
	readers        int
	withWriter     bool
	readsPerSec    float64
	commitsPerSec  float64
	commitMeanMs   float64
	copiedMBCommit float64
}

// Store runs the store throughput sweep (`xbench -store`): N concurrent
// readers evaluating a prepared query over lock-free snapshots of a
// factor-0.01 XMark corpus while one writer commits copy-on-write
// updates, reporting aggregate reads/sec, commit latency and
// snapshot-copy volume. The single-reader no-writer row is the plain
// evaluation baseline the acceptance criterion compares against: the
// snapshot hot path must stay within a few percent of it.
func (r *Runner) Store() {
	const (
		factor  = 0.01
		perCell = 300 * time.Millisecond
	)
	doc := r.Doc(factor)
	readC, err := queries.Compile(2)
	r.check(err)
	writeA, writeB, err := StoreWriteQueries()
	r.check(err)

	fmt.Fprintf(r.opts.Out, "Store sweep: factor %.2f (%d nodes), read=U2 insert transform, write=alternating //item renames, %s per cell\n",
		factor, doc.Size(), perCell)

	var rows [][]string
	for _, cfg := range []struct {
		readers    int
		withWriter bool
	}{
		{1, false},
		{1, true},
		{2, true},
		{4, true},
		{8, true},
	} {
		if r.stopped() {
			break
		}
		cell := r.measureStoreCell(doc, readC, writeA, writeB, cfg.readers, cfg.withWriter, perCell)
		if r.stopped() {
			// Ctrl-C truncated the cell: its counters cover a partial
			// window (and reads that died with cancellation), so drop
			// the in-flight row instead of printing bogus numbers —
			// same contract as the figure sweeps.
			break
		}
		writer := "-"
		commits := "-"
		latency := "-"
		copied := "-"
		if cfg.withWriter {
			writer = "1"
			commits = fmt.Sprintf("%.1f", cell.commitsPerSec)
			latency = fmt.Sprintf("%.2f", cell.commitMeanMs)
			copied = fmt.Sprintf("%.2f", cell.copiedMBCommit)
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", cell.readers),
			writer,
			fmt.Sprintf("%.0f", cell.readsPerSec),
			fmt.Sprintf("%.0f", cell.readsPerSec/float64(cell.readers)),
			commits,
			latency,
			copied,
		})
	}
	table(r.opts.Out, []string{"readers", "writer", "reads/s", "reads/s/reader", "commits/s", "commit ms", "copied MB/commit"}, rows)
}

// measureStoreCell runs one configuration: readers evaluate over
// snapshots in a tight loop for the cell duration; the optional writer
// applies updates back-to-back. The store is rebuilt per cell so commit
// history does not accumulate across cells.
func (r *Runner) measureStoreCell(doc *tree.Node, readC, writeA, writeB *core.Compiled, readers int, withWriter bool, d time.Duration) storeCell {
	st := store.New()
	if _, _, err := st.Put("d", doc.DeepCopy(), true); err != nil {
		panic(err)
	}
	ctx := r.opts.Context

	var (
		reads       atomic.Int64
		commits     atomic.Int64
		commitNanos atomic.Int64
		copiedBytes atomic.Int64
		wg          sync.WaitGroup
	)
	stop := make(chan struct{})
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap, err := st.Snapshot("d")
				if err != nil {
					panic(err)
				}
				_, err = readC.EvalContext(ctx, snap.Root(), core.MethodTopDown)
				r.check(err)
				reads.Add(1)
			}
		}()
	}
	if withWriter {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				writeC := writeA
				if i%2 == 1 {
					writeC = writeB
				}
				start := time.Now()
				_, com, err := st.Apply(ctx, "d", writeC, core.MethodTopDown)
				r.check(err)
				if err != nil {
					return
				}
				commitNanos.Add(int64(time.Since(start)))
				commits.Add(1)
				copiedBytes.Add(com.CopiedBytes)
			}
		}()
	}

	start := time.Now()
	timer := time.NewTimer(d)
	select {
	case <-timer.C:
	case <-ctx.Done():
		timer.Stop()
	}
	close(stop)
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	cell := storeCell{
		readers:     readers,
		withWriter:  withWriter,
		readsPerSec: float64(reads.Load()) / elapsed,
	}
	if n := commits.Load(); withWriter && n > 0 {
		cell.commitsPerSec = float64(n) / elapsed
		cell.commitMeanMs = float64(commitNanos.Load()) / float64(n) / 1e6
		cell.copiedMBCommit = float64(copiedBytes.Load()) / float64(n) / 1e6
	}
	return cell
}
