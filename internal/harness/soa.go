package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"testing"
	"time"

	"xtq/internal/core"
	"xtq/internal/queries"
	"xtq/internal/store"
	"xtq/internal/tree"
)

// soaFactors are the corpus scales of the structure-of-arrays sweep.
// The small factor matches the BENCH_PR5/PR7 store baselines (the
// whole-tree-copy commit there moved ~2.1 MB per commit); the large one
// shows the copy volume growing with the touched spine, not the
// document.
var soaFactors = []float64{0.01, 0.1}

// SoA runs the structure-of-arrays sweep (`xbench -soa`): per factor,
// the sealed-snapshot evaluation latency (the store read path over the
// column-backed document) and the path-copy commit under the
// alternating //item rename writer, with the copy volume and
// chunk-sharing split the Commit reports. The headline column is
// copied KB/commit: before path copying the store copied the whole
// tree (2141 KB at factor 0.01, see BENCH_PR5.json); now only the
// spine chunks move.
func (r *Runner) SoA() {
	fmt.Fprintf(r.opts.Out, "SoA sweep: sealed-snapshot reads (U2) + alternating //item rename commits, factors %v\n", soaFactors)
	var rows [][]string
	for _, factor := range soaFactors {
		if r.stopped() {
			break
		}
		cell, err := r.measureSoACell(factor)
		if err != nil {
			panic(err)
		}
		if r.stopped() {
			break // drop the interrupted row
		}
		rows = append(rows, []string{
			fmt.Sprintf("%.2f", factor),
			fmt.Sprintf("%d", cell.docKB),
			fmt.Sprintf("%d", cell.chunks),
			fmt.Sprintf("%.1f", cell.readUs),
			fmt.Sprintf("%.2f", cell.commitMs),
			fmt.Sprintf("%.0f", cell.copiedKB),
			fmt.Sprintf("%.1f/%.1f", cell.copiedChunks, cell.sharedChunks),
			fmt.Sprintf("%.0f%%", cell.sharedPct),
		})
	}
	table(r.opts.Out, []string{"factor", "doc KB", "chunks", "read us", "commit ms", "copied KB/commit", "chunks copied/shared", "nodes shared"}, rows)
}

// soaCell is one measured factor of the SoA sweep.
type soaCell struct {
	docKB        int
	docNodes     int
	chunks       int
	readUs       float64
	readRes      testing.BenchmarkResult
	commitMs     float64
	commitRes    testing.BenchmarkResult
	copiedKB     float64
	copiedBytes  float64
	copiedChunks float64
	sharedChunks float64
	sharedPct    float64
}

// measureSoACell builds a store over the factor's corpus and measures
// the sealed read and the alternating-rename commit with
// testing.Benchmark, folding the Commit copy/sharing counters into
// per-op averages.
func (r *Runner) measureSoACell(factor float64) (soaCell, error) {
	xml := r.XML(factor)
	doc := r.Doc(factor)
	st := store.New()
	if _, _, err := st.Put("d", doc.DeepCopy(), true); err != nil {
		return soaCell{}, err
	}
	readC, err := queries.Compile(2)
	if err != nil {
		return soaCell{}, err
	}
	writeA, writeB, err := StoreWriteQueries()
	if err != nil {
		return soaCell{}, err
	}

	cell := soaCell{docKB: len(xml) / 1024, docNodes: doc.Size()}
	snap, err := st.Snapshot("d")
	if err != nil {
		return soaCell{}, err
	}
	if ix := tree.SealedOwner(snap.Root()); ix != nil && ix.Cols() != nil {
		cell.chunks = ix.Cols().NumChunks()
	}

	cell.readRes = testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			snap, err := st.Snapshot("d")
			if err != nil {
				panic(err)
			}
			_, err = readC.EvalContext(r.opts.Context, snap.Root(), core.MethodTopDown)
			r.check(err)
		}
	})
	cell.readUs = float64(cell.readRes.T.Nanoseconds()) / float64(cell.readRes.N) / 1e3

	var copied, copiedChunks, sharedChunks, sharedNodes, totalNodes int64
	cell.commitRes = testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		copied, copiedChunks, sharedChunks, sharedNodes, totalNodes = 0, 0, 0, 0, 0
		for i := 0; i < b.N; i++ {
			writeC := writeA
			if i%2 == 1 {
				writeC = writeB
			}
			_, com, err := st.Apply(r.opts.Context, "d", writeC, core.MethodTopDown)
			r.check(err)
			copied += com.CopiedBytes
			copiedChunks += int64(com.CopiedChunks)
			sharedChunks += int64(com.SharedChunks)
			sharedNodes += int64(com.SharedWithPrev)
			totalNodes += int64(com.CopiedNodes + com.SharedWithPrev)
		}
		if b.N > 0 {
			b.ReportMetric(float64(copied)/float64(b.N), "copied-B/op")
			b.ReportMetric(float64(copiedChunks)/float64(b.N), "copied-chunks/op")
			b.ReportMetric(float64(sharedChunks)/float64(b.N), "shared-chunks/op")
		}
	})
	n := float64(cell.commitRes.N)
	cell.commitMs = float64(cell.commitRes.T.Nanoseconds()) / n / 1e6
	cell.copiedBytes = float64(copied) / n
	cell.copiedKB = cell.copiedBytes / 1024
	cell.copiedChunks = float64(copiedChunks) / n
	cell.sharedChunks = float64(sharedChunks) / n
	if totalNodes > 0 {
		cell.sharedPct = 100 * float64(sharedNodes) / float64(totalNodes)
	}
	return cell, nil
}

// SoAJSON writes the machine-readable SoA sweep (`xbench -soa -json`),
// the format of BENCH_PR8.json. It measures both soaFactors regardless
// of the -jsonfactor flag — the report's purpose is the cross-PR
// comparison against the store rows of BENCH_PR5.json (whole-tree
// copy) and the commit rows of BENCH_PR7.json at factor 0.01, plus the
// factor-0.1 scaling row. Row names carry the factor; per-factor
// corpus sizes ride in Extra.
func (r *Runner) SoAJSON(w io.Writer, factor float64) error {
	_ = factor // the sweep is defined over soaFactors; see doc comment
	report := &BenchReport{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Factor:    soaFactors[0],
		DocBytes:  len(r.XML(soaFactors[0])),
		DocNodes:  r.Doc(soaFactors[0]).Size(),
	}
	for _, f := range soaFactors {
		if r.stopped() {
			break
		}
		cell, err := r.measureSoACell(f)
		if err != nil {
			return err
		}
		if r.stopped() {
			break
		}
		read := toResult(fmt.Sprintf("soa/read/U2/f%g", f), cell.readRes)
		if read.Extra == nil {
			read.Extra = map[string]float64{}
		}
		read.Extra["doc_bytes"] = float64(cell.docKB * 1024)
		read.Extra["doc_nodes"] = float64(cell.docNodes)
		commit := toResult(fmt.Sprintf("soa/commit/rename-items/f%g", f), cell.commitRes)
		if commit.Extra == nil {
			commit.Extra = map[string]float64{}
		}
		commit.Extra["doc_bytes"] = float64(cell.docKB * 1024)
		commit.Extra["chunks"] = float64(cell.chunks)
		commit.Extra["shared_nodes_pct"] = cell.sharedPct
		report.Results = append(report.Results, read, commit)
	}
	if err := r.opts.Context.Err(); err != nil {
		return fmt.Errorf("soa sweep interrupted: %w", err)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}

// SoASmoke runs the CI copy-tax check: on the factor-0.01
// alternating-rename workload, the bytes a commit copies must stay
// below maxFrac of the document's size in the store — the bytes the
// initial Put reports for freezing the whole tree, which is exactly
// what every commit used to copy before path copying (~2.1 MB at this
// factor, see store/commit/rename-items in BENCH_PR5.json). It returns
// the measured fraction. A failure means structural sharing regressed —
// some path started copying subtrees (or whole column chunks) it used
// to share.
func (r *Runner) SoASmoke(maxFrac float64) (float64, error) {
	const factor = 0.01
	doc := r.Doc(factor)
	st := store.New()
	// adopt=false: the store freezes its own copy and the Commit reports
	// the full-tree copy cost — the denominator of the tax.
	_, put, err := st.Put("d", doc, false)
	if err != nil {
		return 0, err
	}
	if put.CopiedBytes <= 0 {
		return 0, fmt.Errorf("initial Put reported %d copied bytes; cannot size the document", put.CopiedBytes)
	}
	writeA, writeB, err := StoreWriteQueries()
	if err != nil {
		return 0, err
	}
	const commits = 20
	var copied int64
	start := time.Now()
	for i := 0; i < commits; i++ {
		writeC := writeA
		if i%2 == 1 {
			writeC = writeB
		}
		_, com, err := st.Apply(r.opts.Context, "d", writeC, core.MethodTopDown)
		if err != nil {
			return 0, err
		}
		copied += com.CopiedBytes
	}
	perCommit := float64(copied) / commits
	frac := perCommit / float64(put.CopiedBytes)
	fmt.Fprintf(r.opts.Out, "soa smoke: %d commits in %v, %.0f KB copied/commit over a %.0f KB document (%.1f%%, limit %.0f%%)\n",
		commits, time.Since(start).Round(time.Millisecond), perCommit/1024, float64(put.CopiedBytes)/1024, 100*frac, 100*maxFrac)
	if frac >= maxFrac {
		return frac, fmt.Errorf("copy tax regression: %.0f bytes copied per commit is %.1f%% of the %d-byte document (limit %.0f%%)",
			perCommit, 100*frac, put.CopiedBytes, 100*maxFrac)
	}
	return frac, nil
}
