// Package harness reproduces the experimental study of §7: it generates
// XMark-like data, runs every evaluation and composition method over the
// workload of Fig. 11, and prints one table per figure of the paper
// (Figures 12-15) plus targeted checks of the section's textual claims.
//
// Absolute numbers differ from the paper's 2007 testbed; the tables are
// meant to reproduce the *shape* of each figure: which method wins, how
// methods scale with document size, and that the streaming evaluator's
// memory footprint is independent of file size. EXPERIMENTS.md records the
// expected versus observed shapes.
package harness

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"

	"xtq/internal/compose"
	"xtq/internal/core"
	"xtq/internal/queries"
	"xtq/internal/sax"
	"xtq/internal/saxeval"
	"xtq/internal/tree"
	"xtq/internal/xmark"
)

// Options configures a Runner.
type Options struct {
	Out io.Writer
	// Context cancels a sweep: cancellation aborts the in-flight
	// evaluation (at node or SAX-event granularity) and the runner
	// returns before starting the next measurement. Defaults to
	// context.Background().
	Context context.Context
	// Factors for the scalability experiments (Fig. 13 and Fig. 15);
	// defaults to the paper's 0.02-0.34 sweep.
	Factors []float64
	// Fig14Factors for the large-file streaming experiment. The paper
	// uses 2-10 (224 MB-1.1 GB); the default is scaled down so the
	// suite runs in seconds — pass the full sweep explicitly to
	// reproduce the original sizes.
	Fig14Factors []float64
	// Repeats per measurement; the median is reported.
	Repeats int
	Seed    int64
	// TempDir for generated files (Fig. 14); defaults to os.TempDir().
	TempDir string
}

func (o Options) withDefaults() Options {
	if o.Out == nil {
		o.Out = os.Stdout
	}
	if len(o.Factors) == 0 {
		o.Factors = []float64{0.02, 0.10, 0.18, 0.26, 0.34}
	}
	if len(o.Fig14Factors) == 0 {
		o.Fig14Factors = []float64{0.1, 0.2, 0.4}
	}
	if o.Repeats <= 0 {
		o.Repeats = 3
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.TempDir == "" {
		o.TempDir = os.TempDir()
	}
	if o.Context == nil {
		o.Context = context.Background()
	}
	return o
}

// Runner executes experiments, caching generated documents per factor.
type Runner struct {
	opts  Options
	docs  map[float64]*tree.Node
	bytes map[float64][]byte
}

// stopped reports whether the sweep's context was cancelled; experiment
// loops consult it between measurements.
func (r *Runner) stopped() bool { return r.opts.Context.Err() != nil }

// check panics on real evaluation errors but swallows cancellation: the
// enclosing experiment loop sees stopped() and returns an incomplete
// table instead of crashing on Ctrl-C.
func (r *Runner) check(err error) {
	if err == nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return
	}
	panic(err)
}

// New returns a Runner with the given options.
func New(opts Options) *Runner {
	return &Runner{
		opts:  opts.withDefaults(),
		docs:  make(map[float64]*tree.Node),
		bytes: make(map[float64][]byte),
	}
}

// Doc returns the cached in-memory document for a factor.
func (r *Runner) Doc(factor float64) *tree.Node {
	if d, ok := r.docs[factor]; ok {
		return d
	}
	d, err := xmark.Generate(xmark.Config{Factor: factor, Seed: r.opts.Seed})
	if err != nil {
		panic(fmt.Sprintf("harness: generate factor %g: %v", factor, err))
	}
	r.docs[factor] = d
	return d
}

// XML returns the cached serialized document for a factor.
func (r *Runner) XML(factor float64) []byte {
	if b, ok := r.bytes[factor]; ok {
		return b
	}
	var sb strings.Builder
	if _, err := xmark.Write(xmark.Config{Factor: factor, Seed: r.opts.Seed}, &sb); err != nil {
		panic(fmt.Sprintf("harness: serialize factor %g: %v", factor, err))
	}
	b := []byte(sb.String())
	r.bytes[factor] = b
	return b
}

// ReleaseCaches drops the generated-document caches and returns the memory
// to the collector; memory-sensitive experiments call it so earlier
// experiments' working sets do not distort heap measurements.
func (r *Runner) ReleaseCaches() {
	r.docs = make(map[float64]*tree.Node)
	r.bytes = make(map[float64][]byte)
	runtime.GC()
}

// median runs fn Repeats times and returns the median duration.
func (r *Runner) median(fn func()) time.Duration {
	times := make([]time.Duration, r.opts.Repeats)
	for i := range times {
		start := time.Now()
		fn()
		times[i] = time.Since(start)
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	return times[len(times)/2]
}

func ms(d time.Duration) string {
	return fmt.Sprintf("%.1f", float64(d.Microseconds())/1000)
}

// table prints an aligned text table.
func table(w io.Writer, header []string, rows [][]string) {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				fmt.Fprint(w, "  ")
			}
			fmt.Fprintf(w, "%-*s", widths[i], cell)
		}
		fmt.Fprintln(w)
	}
	line(header)
	seps := make([]string, len(header))
	for i := range seps {
		seps[i] = strings.Repeat("-", widths[i])
	}
	line(seps)
	for _, row := range rows {
		line(row)
	}
}

// methodNames maps internal method ids to the paper's figure labels.
var methodLabels = []struct {
	label  string
	method core.Method
}{
	{"GalaXUpdate", core.MethodCopyUpdate},
	{"NAIVE", core.MethodNaive},
	{"TD-BU", core.MethodTwoPass},
	{"GENTOP", core.MethodTopDown},
}

// Fig11 prints the workload table (the embedded XPath queries).
func (r *Runner) Fig11() {
	fmt.Fprintln(r.opts.Out, "Figure 11: embedded XPath queries")
	var rows [][]string
	for i := 1; i <= 10; i++ {
		rows = append(rows, []string{fmt.Sprintf("U%d", i), queries.U[i]})
	}
	table(r.opts.Out, []string{"id", "query"}, rows)
}

// evalWithLoad parses the serialized document and evaluates the query on
// the tree — the end-to-end cost an XQuery engine pays per query, which is
// what the paper's figures measure (its engines load the file per run,
// while twoPassSAX streams it without ever building a DOM).
func (r *Runner) evalWithLoad(c *core.Compiled, xml []byte, m core.Method) {
	doc, err := sax.Parse(bytes.NewReader(xml))
	if err != nil {
		panic(err)
	}
	_, err = c.EvalContext(r.opts.Context, doc, m)
	r.check(err)
}

// Fig12 reproduces Figure 12: execution time of the five evaluation
// methods on insert transform queries U1-U10 over the factor-0.02
// document. In-memory methods include document loading; see evalWithLoad.
func (r *Runner) Fig12() {
	const factor = 0.02
	xml := r.XML(factor)
	fmt.Fprintf(r.opts.Out, "Figure 12: execution time incl. document load (ms), factor %.2f (%.2f MB), insert transform queries\n",
		factor, float64(len(xml))/1e6)
	header := []string{"query", "GalaXUpdate", "NAIVE", "TD-BU", "GENTOP", "twoPassSAX"}
	var rows [][]string
	for i := 1; i <= 10; i++ {
		c, err := queries.Compile(i)
		if err != nil {
			panic(err)
		}
		row := []string{fmt.Sprintf("U%d", i)}
		for _, m := range methodLabels {
			d := r.median(func() { r.evalWithLoad(c, xml, m.method) })
			row = append(row, ms(d))
		}
		row = append(row, ms(r.median(func() {
			_, err := saxeval.TransformContext(r.opts.Context, c, saxeval.BytesSource(xml), discardHandler{})
			r.check(err)
		})))
		if r.stopped() {
			// The in-flight row was measured against aborting
			// evaluations; discard it rather than print bogus medians.
			break
		}
		rows = append(rows, row)
	}
	table(r.opts.Out, header, rows)
}

// Fig13 reproduces Figure 13: scalability of all five methods with file
// size for the representative queries U2, U4, U7 and U10.
func (r *Runner) Fig13() {
	for _, qi := range []int{2, 4, 7, 10} {
		c, err := queries.Compile(qi)
		if err != nil {
			panic(err)
		}
		fmt.Fprintf(r.opts.Out, "Figure 13: scalability, query U%d (runtime ms incl. document load, per XMark factor)\n", qi)
		header := []string{"factor", "GalaXUpdate", "NAIVE", "TD-BU", "GENTOP", "twoPassSAX"}
		var rows [][]string
		for _, f := range r.opts.Factors {
			xml := r.XML(f)
			row := []string{fmt.Sprintf("%.2f", f)}
			for _, m := range methodLabels {
				d := r.median(func() { r.evalWithLoad(c, xml, m.method) })
				row = append(row, ms(d))
			}
			row = append(row, ms(r.median(func() {
				_, err := saxeval.TransformContext(r.opts.Context, c, saxeval.BytesSource(xml), discardHandler{})
				r.check(err)
			})))
			if r.stopped() {
				break
			}
			rows = append(rows, row)
		}
		table(r.opts.Out, header, rows)
		fmt.Fprintln(r.opts.Out)
		if r.stopped() {
			return
		}
	}
}

// Fig14 reproduces Figure 14: the streaming twoPassSAX evaluator over
// large files, reporting runtime and peak extra heap — the latter must not
// grow with file size.
func (r *Runner) Fig14() {
	fmt.Fprintln(r.opts.Out, "Figure 14: twoPassSAX on large files (streamed from disk)")
	header := []string{"factor", "file MB", "U2 ms", "U4 ms", "U7 ms", "U10 ms", "peak extra heap MB"}
	var rows [][]string
	for _, f := range r.opts.Fig14Factors {
		path := filepath.Join(r.opts.TempDir, fmt.Sprintf("xtq-xmark-%g.xml", f))
		n, err := xmark.WriteFile(xmark.Config{Factor: f, Seed: r.opts.Seed}, path)
		if err != nil {
			panic(err)
		}
		row := []string{fmt.Sprintf("%g", f), fmt.Sprintf("%.1f", float64(n)/1e6)}
		var peak uint64
		for _, qi := range []int{2, 4, 7, 10} {
			c, err := queries.Compile(qi)
			if err != nil {
				panic(err)
			}
			var d time.Duration
			p := measurePeakHeap(func() {
				d = r.median(func() {
					_, err := saxeval.TransformContext(r.opts.Context, c, saxeval.FileSource(path), discardHandler{})
					r.check(err)
				})
			})
			if p > peak {
				peak = p
			}
			row = append(row, ms(d))
		}
		row = append(row, fmt.Sprintf("%.1f", float64(peak)/1e6))
		os.Remove(path)
		if r.stopped() {
			break
		}
		rows = append(rows, row)
	}
	table(r.opts.Out, header, rows)
}

// Fig15 reproduces Figure 15: Naive Composition versus the Compose Method
// over the four transform/user query pairs, through the composition-plan
// API (single-layer stacks).
func (r *Runner) Fig15() {
	for _, p := range queries.Pairs() {
		ct, err := p.Transform.Compile()
		if err != nil {
			panic(err)
		}
		plan, err := compose.NewPlan([]*core.Compiled{ct}, p.User)
		if err != nil {
			panic(err)
		}
		fmt.Fprintf(r.opts.Out, "Figure 15: composition pair %s (runtime ms per XMark factor)\n", p.Name)
		header := []string{"factor", "Naive Composition", "Compose"}
		var rows [][]string
		for _, f := range r.opts.Factors {
			doc := r.Doc(f)
			nd := r.median(func() {
				_, err := plan.EvalSequential(r.opts.Context, doc, core.MethodTopDown)
				r.check(err)
			})
			cd := r.median(func() {
				_, _, err := plan.Eval(r.opts.Context, doc)
				r.check(err)
			})
			if r.stopped() {
				break
			}
			rows = append(rows, []string{fmt.Sprintf("%.2f", f), ms(nd), ms(cd)})
		}
		table(r.opts.Out, header, rows)
		fmt.Fprintln(r.opts.Out)
		if r.stopped() {
			return
		}
	}
}

// StackPlan compiles one stacked-view workload into a composition plan.
func StackPlan(s queries.Stack) (*compose.Plan, error) {
	layers := make([]*core.Compiled, len(s.Layers))
	for i, q := range s.Layers {
		c, err := q.Compile()
		if err != nil {
			return nil, err
		}
		layers[i] = c
	}
	return compose.NewPlan(layers, s.User)
}

// IntermediateSize sequentially materializes every layer of the plan and
// returns the total node count of the intermediate (and final) views —
// the trees the naive method builds and the single-pass method avoids.
func IntermediateSize(ctx context.Context, p *compose.Plan, doc *tree.Node) (int, error) {
	total := 0
	cur := doc
	for i := 0; i < p.NumLayers(); i++ {
		var err error
		cur, err = p.Layer(i).EvalContext(ctx, cur, core.MethodTopDown)
		if err != nil {
			return 0, err
		}
		total += cur.Size()
	}
	return total, nil
}

// Views reports the stacked-view sweep: for each 2-3-layer view chain of
// queries.Stacks and each factor, the runtime of the single-pass stacked
// evaluation versus sequentially materializing every layer, the total
// size of the intermediate views the sequential method builds, and the
// per-layer ViewStats (NodesVisited/Materialized) of the single pass —
// the Figure-14-style "touches only the relevant region" claim, made
// measurable per view layer.
func (r *Runner) Views() {
	for _, s := range queries.Stacks() {
		plan, err := StackPlan(s)
		if err != nil {
			panic(err)
		}
		fmt.Fprintf(r.opts.Out, "Stacked views: %s (%d layers; runtime ms per XMark factor)\n",
			s.Name, plan.NumLayers())
		header := []string{"factor", "sequential", "stacked", "intermediate nodes", "visited", "materialized"}
		for i := 0; i < plan.NumLayers(); i++ {
			header = append(header, fmt.Sprintf("L%d visited", i), fmt.Sprintf("L%d mat", i))
		}
		var rows [][]string
		for _, f := range r.opts.Factors {
			doc := r.Doc(f)
			sd := r.median(func() {
				_, err := plan.EvalSequential(r.opts.Context, doc, core.MethodTopDown)
				r.check(err)
			})
			var vs compose.ViewStats
			cd := r.median(func() {
				_, stats, err := plan.Eval(r.opts.Context, doc)
				r.check(err)
				vs = stats
			})
			inter, err := IntermediateSize(r.opts.Context, plan, doc)
			r.check(err)
			if r.stopped() {
				break
			}
			row := []string{fmt.Sprintf("%.2f", f), ms(sd), ms(cd),
				fmt.Sprintf("%d", inter),
				fmt.Sprintf("%d", vs.NodesVisited), fmt.Sprintf("%d", vs.Materialized)}
			for _, ls := range vs.Layers {
				row = append(row, fmt.Sprintf("%d", ls.NodesVisited), fmt.Sprintf("%d", ls.Materialized))
			}
			rows = append(rows, row)
		}
		table(r.opts.Out, header, rows)
		fmt.Fprintln(r.opts.Out)
		if r.stopped() {
			return
		}
	}
}

// Claims checks the two headline textual claims of §7.1: NAIVE degrades
// superlinearly when the update's scope is broad while the automaton
// methods stay linear, and twoPassSAX memory is flat in file size.
func (r *Runner) Claims() {
	out := r.opts.Out
	fmt.Fprintln(out, "Claim 1: NAIVE is quadratic when |$xp| grows with the document (U1), linear when |$xp| is fixed (U2)")
	header := []string{"factor", "NAIVE U1 ms", "GENTOP U1 ms", "NAIVE U2 ms"}
	var rows [][]string
	factors := []float64{0.02, 0.08, 0.32}
	u1, _ := queries.Compile(1)
	u2, _ := queries.Compile(2)
	for _, f := range factors {
		doc := r.Doc(f)
		n1 := r.median(func() { u1.EvalContext(r.opts.Context, doc, core.MethodNaive) })
		g1 := r.median(func() { u1.EvalContext(r.opts.Context, doc, core.MethodTopDown) })
		n2 := r.median(func() { u2.EvalContext(r.opts.Context, doc, core.MethodNaive) })
		if r.stopped() {
			break
		}
		rows = append(rows, []string{fmt.Sprintf("%.2f", f), ms(n1), ms(g1), ms(n2)})
	}
	table(out, header, rows)

	fmt.Fprintln(out, "\nClaim 2: twoPassSAX peak heap is independent of file size")
	// Drop the document caches first: retained multi-hundred-MB trees
	// from claim 1 would raise the GC threshold and let transient
	// garbage pile up, polluting the peak-heap measurement.
	r.ReleaseCaches()
	header = []string{"factor", "file MB", "peak extra heap MB"}
	rows = nil
	u4, _ := queries.Compile(4)
	for _, f := range []float64{0.05, 0.1, 0.2} {
		if r.stopped() {
			break
		}
		path := filepath.Join(r.opts.TempDir, fmt.Sprintf("xtq-claim2-%g.xml", f))
		n, err := xmark.WriteFile(xmark.Config{Factor: f, Seed: r.opts.Seed}, path)
		if err != nil {
			panic(err)
		}
		peak := measurePeakHeap(func() {
			_, err := saxeval.TransformContext(r.opts.Context, u4, saxeval.FileSource(path), discardHandler{})
			r.check(err)
		})
		os.Remove(path)
		if r.stopped() {
			break
		}
		rows = append(rows, []string{fmt.Sprintf("%g", f),
			fmt.Sprintf("%.1f", float64(n)/1e6), fmt.Sprintf("%.1f", float64(peak)/1e6)})
	}
	table(out, header, rows)
}

// discardHandler swallows the output event stream, so measurements cover
// evaluation cost only (the paper's engines similarly discard results).
type discardHandler struct{}

func (discardHandler) StartDocument() error                   { return nil }
func (discardHandler) StartElement(string, []tree.Attr) error { return nil }
func (discardHandler) Text(string) error                      { return nil }
func (discardHandler) EndElement(string) error                { return nil }
func (discardHandler) EndDocument() error                     { return nil }

// measurePeakHeap runs fn while sampling the heap, returning the peak
// allocation growth over the pre-run baseline. The sampler hands its
// peak back over a channel so the final read happens after the goroutine
// is done writing (reading a shared variable right after close(done)
// races with the sampler's last tick).
func measurePeakHeap(fn func()) uint64 {
	runtime.GC()
	var base runtime.MemStats
	runtime.ReadMemStats(&base)
	done := make(chan struct{})
	sampled := make(chan uint64, 1)
	go func() {
		ticker := time.NewTicker(2 * time.Millisecond)
		defer ticker.Stop()
		var peak uint64
		for {
			select {
			case <-done:
				sampled <- peak
				return
			case <-ticker.C:
				var m runtime.MemStats
				runtime.ReadMemStats(&m)
				if m.HeapAlloc > base.HeapAlloc && m.HeapAlloc-base.HeapAlloc > peak {
					peak = m.HeapAlloc - base.HeapAlloc
				}
			}
		}
	}()
	fn()
	// Sample on this goroutine before stopping the ticker: fn's working
	// set is still reachable here, so short runs that never hit a tick
	// are measured too.
	var end runtime.MemStats
	runtime.ReadMemStats(&end)
	close(done)
	peak := <-sampled
	if end.HeapAlloc > base.HeapAlloc && end.HeapAlloc-base.HeapAlloc > peak {
		peak = end.HeapAlloc - base.HeapAlloc
	}
	return peak
}
