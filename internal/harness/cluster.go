package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"xtq/internal/core"
	"xtq/internal/queries"
	"xtq/internal/replica"
	"xtq/internal/store"
	"xtq/internal/tree"
	"xtq/internal/wal"
)

// clusterFollowers are the topologies of the `xbench -cluster` sweep:
// one primary feeding N followers for each N here, compared against the
// single-node baseline.
var clusterFollowers = []int{1, 2, 4}

// clusterLagWindow is how long the lag sampler watches each topology
// while the alternating-rename writer commits against the primary.
const clusterLagWindow = 2 * time.Second

// ClusterJSON runs the replication sweep at the given factor and writes
// a BenchReport to w — the payload of BENCH_PR6.json. It measures two
// things the single-store sweep cannot:
//
//   - Aggregate read throughput of a 1-primary/N-follower group versus
//     one node. Follower reads are shared-nothing (each node evaluates
//     over its own snapshots; replication only appends), so each node's
//     throughput is measured in isolation with testing.Benchmark and the
//     aggregate is the sum. On a single-CPU host concurrent measurement
//     would only time-slice one core; the sum of isolated per-node rates
//     is what N single-core machines actually serve.
//
//   - Replication lag under write load: an alternating-rename writer
//     commits against the primary while a sampler records, for each
//     follower, how many committed versions it is behind. Reported as
//     p50/p99 versions-behind per topology.
func (r *Runner) ClusterJSON(w io.Writer, factor float64) error {
	xml := r.XML(factor)
	doc := r.Doc(factor)
	report := &BenchReport{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Factor:    factor,
		DocBytes:  len(xml),
		DocNodes:  doc.Size(),
	}
	readC, err := queries.Compile(2)
	if err != nil {
		return err
	}
	writeA, writeB, err := StoreWriteQueries()
	if err != nil {
		return err
	}

	readBench := func(st *store.Store) testing.BenchmarkResult {
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				snap, err := st.Snapshot("d")
				if err != nil {
					panic(err)
				}
				_, err = readC.EvalContext(r.opts.Context, snap.Root(), core.MethodTopDown)
				r.check(err)
			}
		})
	}

	// Baseline: one durable node serving reads, no replication at all.
	dir, err := os.MkdirTemp(r.opts.TempDir, "xtq-cluster-single-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	single, err := store.Open(dir, store.Options{Fsync: wal.FsyncNone})
	if err != nil {
		return err
	}
	if _, _, err := single.Put("d", doc.DeepCopy(), true); err != nil {
		return err
	}
	if r.stopped() {
		single.Close()
		return r.opts.Context.Err()
	}
	singleRes := readBench(single)
	singleRate := readsPerSec(singleRes)
	if err := single.Close(); err != nil {
		return err
	}
	row := toResult("cluster/read/single-node", singleRes)
	if row.Extra == nil {
		row.Extra = map[string]float64{}
	}
	row.Extra["reads/s"] = singleRate
	report.Results = append(report.Results, row)

	for _, n := range clusterFollowers {
		if r.stopped() {
			break
		}
		rows, err := r.clusterTopology(doc, readBench, writeA, writeB, n, singleRate)
		if err != nil {
			return err
		}
		if r.stopped() {
			break // drop rows measured against aborting evaluations
		}
		report.Results = append(report.Results, rows...)
	}

	if err := r.opts.Context.Err(); err != nil {
		return fmt.Errorf("cluster sweep interrupted: %w", err)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}

// clusterTopology measures one 1-primary/N-follower group: replication
// lag percentiles while the alternating-rename writer commits against
// the primary, then each follower's isolated read throughput once the
// group has drained.
func (r *Runner) clusterTopology(doc *tree.Node, readBench func(*store.Store) testing.BenchmarkResult,
	writeA, writeB *core.Compiled, n int, singleRate float64) ([]BenchResult, error) {
	dir, err := os.MkdirTemp(r.opts.TempDir, fmt.Sprintf("xtq-cluster-1p%df-*", n))
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	primary, err := store.Open(dir, store.Options{Fsync: wal.FsyncNone})
	if err != nil {
		return nil, err
	}
	defer primary.Close()
	if _, _, err := primary.Put("d", doc.DeepCopy(), true); err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.Handle("/wal/", http.StripPrefix("/wal", replica.NewLogService(primary.WAL())))
	srv := httptest.NewServer(mux)
	defer srv.Close()

	followers := make([]*replica.Follower, n)
	for i := range followers {
		f, err := replica.Start(replica.Options{
			Primary: srv.URL,
			Poll:    10 * time.Millisecond,
		})
		if err != nil {
			return nil, err
		}
		defer f.Close()
		followers[i] = f
	}
	if err := r.clusterDrain(primary, followers); err != nil {
		return nil, err
	}

	// Read throughput first, on freshly converged replicas — the same
	// store state the single-node baseline was measured in, so the rows
	// compare the read path and not accumulated write-churn garbage.
	// Each node is measured alone; the aggregate is the sum.
	aggregate := 0.0
	var nodeRes testing.BenchmarkResult
	for _, f := range followers {
		if r.stopped() {
			return nil, nil
		}
		nodeRes = readBench(f.Store())
		aggregate += readsPerSec(nodeRes)
	}

	// Lag under load: the writer commits alternating renames back to
	// back (the same writer as the store sweep) while the sampler reads
	// every follower's versions-behind.
	var lag []float64
	writerDone := make(chan error, 1)
	stop := make(chan struct{})
	go func() {
		for i := 0; ; i++ {
			select {
			case <-stop:
				writerDone <- nil
				return
			default:
			}
			writeC := writeA
			if i%2 == 1 {
				writeC = writeB
			}
			if _, _, err := primary.Apply(r.opts.Context, "d", writeC, core.MethodTopDown); err != nil {
				writerDone <- err
				return
			}
		}
	}()
	deadline := time.Now().Add(clusterLagWindow)
	for time.Now().Before(deadline) && !r.stopped() {
		pv, ok := primary.HeadVersion("d")
		if !ok {
			break
		}
		for _, f := range followers {
			fv, _ := f.Store().HeadVersion("d")
			if fv > pv {
				continue // sampled across a commit; not lag
			}
			lag = append(lag, float64(pv-fv))
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	if err := <-writerDone; err != nil {
		return nil, err
	}
	if r.stopped() {
		return nil, nil
	}
	if err := r.clusterDrain(primary, followers); err != nil {
		return nil, err
	}

	var rows []BenchResult
	name := fmt.Sprintf("cluster/read/1p%df", n)
	row := toResult(name, nodeRes) // ns/op etc. of the last follower; all replicas are identical
	if row.Extra == nil {
		row.Extra = map[string]float64{}
	}
	row.Extra["reads/s-aggregate"] = aggregate
	row.Extra["reads/s-per-node"] = aggregate / float64(n)
	if singleRate > 0 {
		row.Extra["speedup-vs-single"] = aggregate / singleRate
	}
	rows = append(rows, row)

	sort.Float64s(lag)
	rows = append(rows, BenchResult{
		Name: fmt.Sprintf("cluster/lag/1p%df", n),
		N:    len(lag),
		Extra: map[string]float64{
			"p50-versions-behind": percentile(lag, 50),
			"p99-versions-behind": percentile(lag, 99),
			"samples":             float64(len(lag)),
		},
	})
	return rows, nil
}

// clusterDrain waits until every follower has applied the primary's
// entire log.
func (r *Runner) clusterDrain(primary *store.Store, followers []*replica.Follower) error {
	tail := primary.WAL().TailPos()
	deadline := time.Now().Add(30 * time.Second)
	for _, f := range followers {
		for {
			if r.stopped() {
				return nil
			}
			s := f.Stats()
			if s.Err != "" {
				return fmt.Errorf("follower failed during drain: %s", s.Err)
			}
			if s.Position.Seq > tail.Seq || (s.Position.Seq == tail.Seq && s.Position.Offset >= tail.Offset) {
				break
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("follower never drained: at %v, want %v", s.Position, tail)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	return nil
}

func readsPerSec(res testing.BenchmarkResult) float64 {
	ns := float64(res.T.Nanoseconds()) / float64(res.N)
	if ns <= 0 {
		return 0
	}
	return 1e9 / ns
}

// percentile returns the pth percentile (0..100) of sorted samples by
// nearest-rank interpolation-free indexing.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p / 100 * float64(len(sorted)-1))
	return sorted[idx]
}
