package harness

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"xtq/internal/compose"
	"xtq/internal/core"
	"xtq/internal/ivm"
	"xtq/internal/store"
	"xtq/internal/tree"
	"xtq/internal/xpath"
)

// ivmFanoutSubscribers is how many concurrent watch subscribers the
// fan-out measurement drains events through.
const ivmFanoutSubscribers = 64

// ivmFanoutEvents is how many versions the fan-out measurement
// publishes; it stays below the subscriber buffer so no event collapses
// into a resync and every delivery is counted.
const ivmFanoutEvents = 5000

// ivmCommitViews are the registry sizes of the commit-overhead cells:
// the acceptance criterion compares the largest against the no-views
// baseline.
var ivmCommitViews = []int{0, 4, 16}

// mapVerdicts is the sweep's verdict cache (the facade uses the engine
// LRU; the harness only needs the steady-state hit behavior).
type mapVerdicts struct {
	mu sync.Mutex
	m  map[string]ivm.Verdict
}

func newMapVerdicts() *mapVerdicts { return &mapVerdicts{m: make(map[string]ivm.Verdict)} }

func (c *mapVerdicts) Get(key string) (ivm.Verdict, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.m[key]
	return v, ok
}

func (c *mapVerdicts) Add(key string, v ivm.Verdict) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[key] = v
}

func compileIVMUpdate(u core.Update) *core.Compiled {
	c, err := (&core.Query{Var: "a", Doc: "d", Update: u}).Compile()
	if err != nil {
		panic(err)
	}
	return c
}

func ivmDelete(p string) *core.Compiled {
	return compileIVMUpdate(core.Update{Op: core.Delete, Path: xpath.MustParse(p)})
}

func ivmRename(p, label string) *core.Compiled {
	return compileIVMUpdate(core.Update{Op: core.Rename, Path: xpath.MustParse(p), Label: label})
}

// ivmHotLayers is the maintained view the read cells serve: two stacked
// deletes that the alternating //item rename writer is NOT absorbed by,
// so every commit delta-maintains the materialization.
func ivmHotLayers() []*core.Compiled {
	return []*core.Compiled{ivmDelete(`//annotation`), ivmDelete(`//increase`)}
}

// ivmAbsorbedLayers is a view whose first layer deletes the whole
// region the writer renames under: impact analysis proves every commit
// unaffected and maintenance is a version bump.
func ivmAbsorbedLayers() []*core.Compiled {
	return []*core.Compiled{ivmDelete(`/site/regions`), ivmRename(`/site/people`, "crowd")}
}

// newIVMStore builds a store with a wired maintenance manager over doc.
func newIVMStore(doc *tree.Node) (*store.Store, *ivm.Manager) {
	st := store.New()
	mgr := ivm.NewManager(core.MethodTopDown, newMapVerdicts())
	st.SetCommitHook(func(ev store.CommitEvent) { mgr.OnCommit(ev) })
	if _, _, err := st.Put("d", doc.DeepCopy(), true); err != nil {
		panic(err)
	}
	return st, mgr
}

// ivmWriter starts the alternating-rename commit loop and returns its
// stop function.
func (r *Runner) ivmWriter(st *store.Store) func() {
	writeA, writeB, err := StoreWriteQueries()
	r.check(err)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			c := writeA
			if i%2 == 1 {
				c = writeB
			}
			_, _, err := st.Apply(r.opts.Context, "d", c, core.MethodTopDown)
			r.check(err)
			if err != nil {
				return
			}
		}
	}()
	return func() { close(stop); wg.Wait() }
}

// ivmReadCells measures serving the hot view from the maintained cache
// versus recomposing it from scratch, both while the writer commits.
func (r *Runner) ivmReadCells(doc *tree.Node) (cached, recompute testing.BenchmarkResult) {
	ctx := r.opts.Context
	st, mgr := newIVMStore(doc)
	mgr.SetView("hot", ivmHotLayers(), true)
	snap, err := st.Snapshot("d")
	r.check(err)
	if _, _, err := mgr.Get(ctx, snap, "hot"); err != nil {
		panic(err)
	}
	stack, err := compose.NewStack(ivmHotLayers())
	r.check(err)

	stopWriter := r.ivmWriter(st)
	defer stopWriter()
	cached = testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			snap, err := st.Snapshot("d")
			r.check(err)
			if _, _, err := mgr.Get(ctx, snap, "hot"); err != nil {
				r.check(err)
				return
			}
		}
	})
	recompute = testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			snap, err := st.Snapshot("d")
			r.check(err)
			if _, _, _, err := stack.Eval(ctx, snap.Root()); err != nil {
				r.check(err)
				return
			}
		}
	})
	return cached, recompute
}

// ivmCommitCell measures commit latency with n registered views, the
// majority provably unaffected by the writer (eager, maintained as a
// version bump) and the rest affected but lazy.
func (r *Runner) ivmCommitCell(doc *tree.Node, n int) testing.BenchmarkResult {
	ctx := r.opts.Context
	st, mgr := newIVMStore(doc)
	affected := n / 8
	for i := 0; i < n-affected; i++ {
		mgr.SetView(fmt.Sprintf("absorbed%d", i), ivmAbsorbedLayers(), true)
	}
	for i := 0; i < affected; i++ {
		mgr.SetView(fmt.Sprintf("touched%d", i), []*core.Compiled{ivmDelete(`//annotation`)}, false)
	}
	// Prime the eager materializations so unaffected commits exercise
	// the bump path rather than skipping absent entries.
	snap, err := st.Snapshot("d")
	r.check(err)
	for i := 0; i < n-affected; i++ {
		if _, _, err := mgr.Get(ctx, snap, fmt.Sprintf("absorbed%d", i)); err != nil {
			panic(err)
		}
	}
	writeA, writeB, err := StoreWriteQueries()
	r.check(err)
	return testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c := writeA
			if i%2 == 1 {
				c = writeB
			}
			if _, _, err := st.Apply(ctx, "d", c, core.MethodTopDown); err != nil {
				r.check(err)
				return
			}
		}
	})
}

// ivmFanout publishes versions through a hub while subscribers drain
// them concurrently, returning total deliveries and the wall-clock rate.
func (r *Runner) ivmFanout() (delivered int64, perSec float64) {
	hub := ivm.NewHub(ivmFanoutEvents, ivmFanoutEvents+8)
	ctx, cancel := context.WithCancel(r.opts.Context)
	defer cancel()

	var count atomic.Int64
	var wg sync.WaitGroup
	done := make(chan struct{})
	for i := 0; i < ivmFanoutSubscribers; i++ {
		sub := hub.Subscribe("d", 0, false, 0)
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer sub.Close()
			for {
				evs, err := sub.Next(ctx)
				if err != nil {
					return
				}
				if count.Add(int64(len(evs))) >= ivmFanoutSubscribers*ivmFanoutEvents {
					select {
					case done <- struct{}{}:
					default:
					}
				}
			}
		}()
	}
	start := time.Now()
	for v := uint64(1); v <= ivmFanoutEvents; v++ {
		hub.Publish(ivm.Event{Doc: "d", Version: v, ETag: fmt.Sprintf("%q", "v")})
	}
	select {
	case <-done:
	case <-time.After(30 * time.Second):
	case <-ctx.Done():
	}
	elapsed := time.Since(start).Seconds()
	cancel()
	wg.Wait()
	return count.Load(), float64(count.Load()) / elapsed
}

// IVM prints the incremental-view-maintenance sweep (`xbench -ivm`):
// maintained hot-view reads against from-scratch recomposition under an
// alternating writer, commit latency as the view registry grows with
// mostly statically-unaffected views, and change-feed fan-out.
func (r *Runner) IVM() {
	const factor = 0.01
	doc := r.Doc(factor)
	fmt.Fprintf(r.opts.Out, "IVM sweep: factor %.2f (%d nodes), write=alternating //item renames\n",
		factor, doc.Size())

	cached, recompute := r.ivmReadCells(doc)
	if r.stopped() {
		return
	}
	cns := float64(cached.T.Nanoseconds()) / float64(cached.N)
	rns := float64(recompute.T.Nanoseconds()) / float64(recompute.N)
	table(r.opts.Out, []string{"hot-view read", "ns/op", "speedup"}, [][]string{
		{"maintained cache", fmt.Sprintf("%.0f", cns), fmt.Sprintf("%.1fx", rns/cns)},
		{"full recomposition", fmt.Sprintf("%.0f", rns), "1.0x"},
	})
	fmt.Fprintln(r.opts.Out)

	var rows [][]string
	var base float64
	for _, n := range ivmCommitViews {
		if r.stopped() {
			return
		}
		res := r.ivmCommitCell(doc, n)
		ns := float64(res.T.Nanoseconds()) / float64(res.N)
		if n == 0 {
			base = ns
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.2f", ns/1e6),
			fmt.Sprintf("%+.1f%%", (ns/base-1)*100),
		})
	}
	table(r.opts.Out, []string{"views", "commit ms", "vs no views"}, rows)
	fmt.Fprintln(r.opts.Out)

	delivered, perSec := r.ivmFanout()
	table(r.opts.Out, []string{"subscribers", "events delivered", "events/s"}, [][]string{
		{fmt.Sprintf("%d", ivmFanoutSubscribers), fmt.Sprintf("%d", delivered), fmt.Sprintf("%.0f", perSec)},
	})
}

// IVMJSON runs the IVM sweep and writes a BenchReport, the format of
// the BENCH_PR*.json trajectory files.
func (r *Runner) IVMJSON(w io.Writer, factor float64) error {
	doc := r.Doc(factor)
	report := &BenchReport{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Factor:    factor,
		DocBytes:  len(r.XML(factor)),
		DocNodes:  doc.Size(),
	}

	cached, recompute := r.ivmReadCells(doc)
	if r.stopped() {
		return r.opts.Context.Err()
	}
	cres := toResult("ivm/view-read/cached", cached)
	rres := toResult("ivm/view-read/recompute", recompute)
	cres.Extra = map[string]float64{"speedup_x": rres.NsPerOp / cres.NsPerOp}
	report.Results = append(report.Results, cres, rres)

	var base float64
	for _, n := range ivmCommitViews {
		if r.stopped() {
			return r.opts.Context.Err()
		}
		res := toResult(fmt.Sprintf("ivm/commit/views-%d", n), r.ivmCommitCell(doc, n))
		if n == 0 {
			base = res.NsPerOp
		} else {
			res.Extra = map[string]float64{"overhead_vs_none_pct": (res.NsPerOp/base - 1) * 100}
		}
		report.Results = append(report.Results, res)
	}

	delivered, perSec := r.ivmFanout()
	if r.stopped() {
		return r.opts.Context.Err()
	}
	report.Results = append(report.Results, BenchResult{
		Name: "ivm/watch/fanout",
		N:    int(delivered),
		Extra: map[string]float64{
			"subscribers":    ivmFanoutSubscribers,
			"events_per_sec": perSec,
		},
	})
	if err := r.opts.Context.Err(); err != nil {
		return fmt.Errorf("ivm sweep interrupted: %w", err)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}
