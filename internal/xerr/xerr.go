// Package xerr defines the typed error reported by every public entry
// point of the module. The facade re-exports Error as xtq.Error, so
// callers classify failures with errors.As instead of matching message
// strings:
//
//	var xe *xtq.Error
//	if errors.As(err, &xe) && xe.Kind == xtq.KindParse { ... }
//
// Internal packages construct *Error at the point of failure (keeping the
// position information they alone have) and the facade guarantees the
// invariant by wrapping any stray untyped error before it escapes.
package xerr

import (
	"errors"
	"fmt"
)

// Kind classifies a failure by the pipeline stage that produced it.
type Kind uint8

const (
	// Parse covers syntax errors: malformed transform queries, user
	// queries, path expressions and malformed input XML.
	Parse Kind = iota + 1
	// Compile covers semantically invalid queries: validation failures
	// and selection paths outside the fragment the automaton accepts.
	Compile
	// Eval covers evaluation-time failures: unknown methods, cancelled
	// contexts, cursor desyncs.
	Eval
	// IO covers failures opening, reading or writing sources and sinks.
	IO
	// NotFound covers lookups of documents or views that are not in a
	// store.
	NotFound
	// Conflict covers optimistic-concurrency failures: a store commit
	// whose base version was superseded by another writer.
	Conflict
	// Corrupt covers durability failures: a write-ahead-log record or
	// checkpoint that fails its checksum, frames an impossible length, or
	// breaks the recovered version chain. Pos names the segment file and
	// byte offset of the offending record.
	Corrupt
)

// String returns the kind's lower-case name.
func (k Kind) String() string {
	switch k {
	case Parse:
		return "parse"
	case Compile:
		return "compile"
	case Eval:
		return "eval"
	case IO:
		return "io"
	case NotFound:
		return "notfound"
	case Conflict:
		return "conflict"
	case Corrupt:
		return "corrupt"
	default:
		return "unknown"
	}
}

// Error is a classified failure with an optional input position and an
// optional wrapped cause. It is the concrete type behind xtq.Error.
type Error struct {
	Kind Kind
	// Pos locates the failure in the offending input when known:
	// "offset N" for query and path text, "LINE:COL" for XML documents.
	Pos string
	Msg string
	// Err is the wrapped cause; errors.Is/As traverse it, so a cancelled
	// evaluation satisfies errors.Is(err, context.Canceled).
	Err error
}

// Error implements error.
func (e *Error) Error() string {
	s := e.Kind.String()
	if e.Pos != "" {
		s += ": " + e.Pos
	}
	if e.Msg != "" {
		s += ": " + e.Msg
	}
	if e.Err != nil {
		if e.Msg == "" {
			return s + ": " + e.Err.Error()
		}
		return s
	}
	return s
}

// Unwrap returns the wrapped cause.
func (e *Error) Unwrap() error { return e.Err }

// New builds an Error with a formatted message.
func New(k Kind, pos, format string, args ...any) *Error {
	return &Error{Kind: k, Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// Wrap classifies err under kind k, preserving its text and chain. A nil
// err and an err that already carries an *Error pass through unchanged,
// so wrapping at the facade never hides a more precise inner kind.
func Wrap(k Kind, err error) error {
	if err == nil {
		return nil
	}
	var xe *Error
	if errors.As(err, &xe) {
		return err
	}
	return &Error{Kind: k, Err: err}
}
