// Package xmark generates synthetic auction documents with the XMark
// vocabulary (Schmidt et al., VLDB 2002) that the paper's experiments run
// on. The generator covers exactly the element structure probed by the ten
// workload queries of Fig. 11 — people/person/@id/profile/age,
// regions/<continent>/item/location, open_auctions with initial, reserve,
// bidder/increase and annotation/happiness/description, closed_auctions
// with the nested parlist/listitem structure — and scales linearly in a
// "factor" calibrated like XMark's (factor 0.02 ≈ a couple of MB).
//
// Documents are produced as SAX events, so the same generator builds
// in-memory trees (via sax.TreeBuilder) and streams arbitrarily large
// files (via sax.Writer) without materializing them; the latter feeds the
// Fig. 14 experiment. Generation is deterministic in (Factor, Seed).
package xmark

import (
	"fmt"
	"io"
	"math/rand"
	"os"

	"xtq/internal/sax"
	"xtq/internal/tree"
)

// Config parameterizes the generator.
type Config struct {
	// Factor scales entity counts like XMark's scaling factor; 0.02
	// yields roughly 2 MB.
	Factor float64
	// Seed makes the document reproducible; documents with equal
	// (Factor, Seed) are identical.
	Seed int64
}

// Counts returns the entity counts for the configured factor, using
// XMark's proportions (25500 persons, 21750 items, 12000 open and 9750
// closed auctions at factor 1).
func (c Config) Counts() (people, items, open, closed int) {
	f := c.Factor
	atLeast := func(n int) int {
		if n < 1 {
			return 1
		}
		return n
	}
	return atLeast(int(25500 * f)), atLeast(int(21750 * f)),
		atLeast(int(12000 * f)), atLeast(int(9750 * f))
}

var continents = []string{"africa", "asia", "australia", "europe", "namerica", "samerica"}

var words = []string{
	"gold", "silver", "vintage", "rare", "mint", "signed", "original",
	"antique", "classic", "limited", "edition", "boxed", "sealed",
	"pristine", "restored", "handmade", "imported", "certified",
	"collector", "estate", "auction", "lot", "bundle", "set", "piece",
	"quality", "condition", "shipping", "included", "offer",
}

var locations = []string{
	"United States", "Germany", "Japan", "France", "United Kingdom",
	"Canada", "Italy", "Spain", "Australia", "China",
}

var firstNames = []string{"Ada", "Bob", "Cyd", "Dee", "Eli", "Fay", "Gus", "Hal", "Ivy", "Joy"}
var lastNames = []string{"Ames", "Beck", "Cole", "Dorn", "Ekman", "Frey", "Gage", "Hart", "Ibsen", "Jung"}

// gen drives a Handler with the document's events.
type gen struct {
	h   sax.Handler
	rng *rand.Rand
	err error
}

func (g *gen) start(name string, attrs ...tree.Attr) {
	if g.err == nil {
		g.err = g.h.StartElement(name, attrs)
	}
}

func (g *gen) end(name string) {
	if g.err == nil {
		g.err = g.h.EndElement(name)
	}
}

func (g *gen) text(s string) {
	if g.err == nil {
		g.err = g.h.Text(s)
	}
}

func (g *gen) leaf(name, value string) {
	g.start(name)
	g.text(value)
	g.end(name)
}

// Emit streams the document for cfg into h.
func Emit(cfg Config, h sax.Handler) error {
	g := &gen{h: h, rng: rand.New(rand.NewSource(cfg.Seed ^ 0x9e3779b9))}
	people, items, open, closed := cfg.Counts()
	if g.err = h.StartDocument(); g.err != nil {
		return g.err
	}
	g.start("site")
	g.regions(items)
	g.people(people)
	g.openAuctions(open, people)
	g.closedAuctions(closed, people)
	g.end("site")
	if g.err != nil {
		return g.err
	}
	return h.EndDocument()
}

// Generate builds the document for cfg as an in-memory tree.
func Generate(cfg Config) (*tree.Node, error) {
	var b sax.TreeBuilder
	if err := Emit(cfg, &b); err != nil {
		return nil, err
	}
	return b.Document(), nil
}

// Write streams the document for cfg to w as XML and reports the number of
// bytes written.
func Write(cfg Config, w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	sw := sax.NewWriter(cw)
	if err := Emit(cfg, sw); err != nil {
		return cw.n, err
	}
	return cw.n, sw.Flush()
}

// WriteFile streams the document for cfg into the named file.
func WriteFile(cfg Config, path string) (int64, error) {
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	n, werr := Write(cfg, f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return n, werr
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

func (g *gen) sentence(n int) string {
	buf := make([]byte, 0, n*8)
	for i := 0; i < n; i++ {
		if i > 0 {
			buf = append(buf, ' ')
		}
		buf = append(buf, words[g.rng.Intn(len(words))]...)
	}
	return string(buf)
}

// description emits a description element: either flowing text or a
// (possibly nested) parlist. U5 and U7 probe descriptions; U6 needs the
// doubly nested parlist/listitem chain under closed auctions.
func (g *gen) description(forceDeep bool) {
	g.start("description")
	if forceDeep || g.rng.Float64() < 0.35 {
		g.parlist(2, forceDeep)
	} else {
		g.textElem(false)
	}
	g.end("description")
}

// parlist emits parlist/listitem content; depth > 1 allows a nested
// parlist inside a listitem, giving the U6 chain
// parlist/listitem/parlist/listitem/text/emph/keyword.
func (g *gen) parlist(depth int, forceDeep bool) {
	g.start("parlist")
	items := 1 + g.rng.Intn(3)
	for i := 0; i < items; i++ {
		g.start("listitem")
		nest := depth > 1 && (forceDeep && i == 0 || g.rng.Float64() < 0.3)
		if nest {
			g.parlist(depth-1, forceDeep && i == 0)
		} else {
			g.textElem(forceDeep && i == 0)
		}
		g.end("listitem")
	}
	g.end("parlist")
}

// textElem emits a text element with words and occasional emph/keyword
// children; force guarantees both, completing the U6 chain when reached
// through a forced-deep parlist.
func (g *gen) textElem(force bool) {
	g.start("text")
	g.text(g.sentence(8 + g.rng.Intn(25)))
	if force || g.rng.Float64() < 0.6 {
		g.start("emph")
		g.text(words[g.rng.Intn(len(words))])
		if force || g.rng.Float64() < 0.7 {
			g.leaf("keyword", words[g.rng.Intn(len(words))])
		}
		g.end("emph")
	}
	if g.rng.Float64() < 0.3 {
		g.leaf("keyword", g.sentence(2))
	}
	g.end("text")
}

func (g *gen) regions(items int) {
	g.start("regions")
	perContinent := items / len(continents)
	id := 0
	for _, cont := range continents {
		g.start(cont)
		n := perContinent
		if cont == continents[len(continents)-1] {
			n = items - perContinent*(len(continents)-1)
		}
		for i := 0; i < n; i++ {
			g.item(id)
			id++
		}
		g.end(cont)
	}
	g.end("regions")
}

func (g *gen) item(id int) {
	g.start("item", tree.Attr{Name: "id", Value: fmt.Sprintf("item%d", id)})
	g.leaf("location", locations[g.rng.Intn(len(locations))])
	g.leaf("quantity", fmt.Sprintf("%d", 1+g.rng.Intn(10)))
	g.leaf("name", g.sentence(2+g.rng.Intn(3)))
	g.leaf("payment", "Creditcard")
	g.description(false)
	g.start("shipping")
	g.text("Will ship internationally")
	g.end("shipping")
	g.start("mailbox")
	for m := g.rng.Intn(3); m > 0; m-- {
		g.start("mail")
		g.leaf("from", g.personName())
		g.leaf("to", g.personName())
		g.leaf("date", g.date())
		g.textElem(false)
		g.end("mail")
	}
	g.end("mailbox")
	g.end("item")
}

func (g *gen) personName() string {
	return firstNames[g.rng.Intn(len(firstNames))] + " " + lastNames[g.rng.Intn(len(lastNames))]
}

func (g *gen) date() string {
	return fmt.Sprintf("%02d/%02d/%d", 1+g.rng.Intn(12), 1+g.rng.Intn(28), 1998+g.rng.Intn(5))
}

func (g *gen) people(n int) {
	g.start("people")
	for i := 0; i < n; i++ {
		g.start("person", tree.Attr{Name: "id", Value: fmt.Sprintf("person%d", i)})
		g.leaf("name", g.personName())
		g.leaf("emailaddress", fmt.Sprintf("mailto:user%d@example.com", i))
		if g.rng.Float64() < 0.6 {
			g.leaf("phone", fmt.Sprintf("+1 (%d) %d", 100+g.rng.Intn(900), 1000000+g.rng.Intn(9000000)))
		}
		g.start("profile", tree.Attr{Name: "income", Value: fmt.Sprintf("%d", 20000+g.rng.Intn(80000))})
		for k := g.rng.Intn(3); k > 0; k-- {
			g.start("interest", tree.Attr{Name: "category", Value: fmt.Sprintf("category%d", g.rng.Intn(50))})
			g.end("interest")
		}
		if g.rng.Float64() < 0.7 {
			// Ages 18-70: roughly 95% exceed the U3 bound of 20.
			g.leaf("age", fmt.Sprintf("%d", 18+g.rng.Intn(53)))
		}
		g.leaf("business", "Yes")
		g.end("profile")
		g.end("person")
	}
	g.end("people")
}

func (g *gen) openAuctions(n, people int) {
	g.start("open_auctions")
	for i := 0; i < n; i++ {
		g.start("open_auction", tree.Attr{Name: "id", Value: fmt.Sprintf("open_auction%d", i)})
		g.leaf("initial", fmt.Sprintf("%.2f", 1+g.rng.Float64()*99))
		if g.rng.Float64() < 0.5 {
			g.leaf("reserve", fmt.Sprintf("%.2f", 10+g.rng.Float64()*190))
		}
		bidders := g.rng.Intn(5)
		for b := 0; b < bidders; b++ {
			g.start("bidder")
			g.leaf("date", g.date())
			g.leaf("time", fmt.Sprintf("%02d:%02d:%02d", g.rng.Intn(24), g.rng.Intn(60), g.rng.Intn(60)))
			g.start("personref", tree.Attr{Name: "person", Value: fmt.Sprintf("person%d", g.rng.Intn(people))})
			g.end("personref")
			g.leaf("increase", fmt.Sprintf("%.2f", 1.5*float64(1+g.rng.Intn(16))))
			g.end("bidder")
		}
		g.leaf("current", fmt.Sprintf("%.2f", 1+g.rng.Float64()*299))
		g.start("itemref", tree.Attr{Name: "item", Value: fmt.Sprintf("item%d", g.rng.Intn(1+n))})
		g.end("itemref")
		g.start("seller", tree.Attr{Name: "person", Value: fmt.Sprintf("person%d", g.rng.Intn(people))})
		g.end("seller")
		g.annotation()
		g.leaf("quantity", fmt.Sprintf("%d", 1+g.rng.Intn(5)))
		g.leaf("type", "Regular")
		g.end("open_auction")
	}
	g.end("open_auctions")
}

// annotation carries the happiness rating (XMark: 1-10) and a description,
// probed by U7's annotation[happiness < 20]/description//text.
func (g *gen) annotation() {
	g.start("annotation")
	g.leaf("author", g.personName())
	g.description(false)
	g.leaf("happiness", fmt.Sprintf("%d", 1+g.rng.Intn(10)))
	g.end("annotation")
}

func (g *gen) closedAuctions(n, people int) {
	g.start("closed_auctions")
	for i := 0; i < n; i++ {
		g.start("closed_auction")
		g.start("seller", tree.Attr{Name: "person", Value: fmt.Sprintf("person%d", g.rng.Intn(people))})
		g.end("seller")
		g.start("buyer", tree.Attr{Name: "person", Value: fmt.Sprintf("person%d", g.rng.Intn(people))})
		g.end("buyer")
		g.start("itemref", tree.Attr{Name: "item", Value: fmt.Sprintf("item%d", g.rng.Intn(1+n))})
		g.end("itemref")
		g.leaf("price", fmt.Sprintf("%.2f", 1+g.rng.Float64()*499))
		g.leaf("date", g.date())
		g.leaf("quantity", fmt.Sprintf("%d", 1+g.rng.Intn(5)))
		g.leaf("type", "Regular")
		g.start("annotation")
		g.leaf("author", g.personName())
		// Every fourth closed auction gets the guaranteed deep chain
		// that U6 selects; the rest draw randomly.
		g.description(i%4 == 0)
		g.leaf("happiness", fmt.Sprintf("%d", 1+g.rng.Intn(10)))
		g.end("annotation")
		g.end("closed_auction")
	}
	g.end("closed_auctions")
}
