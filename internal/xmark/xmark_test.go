package xmark

import (
	"strings"
	"testing"

	"xtq/internal/sax"
	"xtq/internal/tree"
	"xtq/internal/xpath"
)

func gen001(t *testing.T) *tree.Node {
	t.Helper()
	doc, err := Generate(Config{Factor: 0.004, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

func TestGenerateValid(t *testing.T) {
	doc := gen001(t)
	if err := tree.Validate(doc); err != nil {
		t.Fatalf("generated document invalid: %v", err)
	}
	if doc.Root().Label != "site" {
		t.Fatalf("root = %q", doc.Root().Label)
	}
}

func TestDeterministic(t *testing.T) {
	a, err := Generate(Config{Factor: 0.002, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Config{Factor: 0.002, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !tree.Equal(a, b) {
		t.Fatalf("same config produced different documents")
	}
	c, err := Generate(Config{Factor: 0.002, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Equal(a, c) {
		t.Fatalf("different seeds produced identical documents")
	}
}

func TestCounts(t *testing.T) {
	cfg := Config{Factor: 0.01, Seed: 1}
	people, items, open, closed := cfg.Counts()
	if people != 255 || items != 217 || open != 120 || closed != 97 {
		t.Errorf("counts = %d %d %d %d", people, items, open, closed)
	}
	doc, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.CountLabel(doc, "person"); got != people {
		t.Errorf("persons = %d, want %d", got, people)
	}
	if got := tree.CountLabel(doc, "item"); got != items {
		t.Errorf("items = %d, want %d", got, items)
	}
	if got := tree.CountLabel(doc, "open_auction"); got != open {
		t.Errorf("open auctions = %d, want %d", got, open)
	}
	if got := tree.CountLabel(doc, "closed_auction"); got != closed {
		t.Errorf("closed auctions = %d, want %d", got, closed)
	}
	tiny, _, _, _ := Config{Factor: 0}.Counts()
	if tiny != 1 {
		t.Errorf("zero factor should still produce one entity, got %d", tiny)
	}
}

// TestWorkloadSelectivities checks that every query of Fig. 11 selects a
// plausible, non-degenerate node set on generated data.
func TestWorkloadSelectivities(t *testing.T) {
	doc := gen001(t)
	queries := map[string]struct {
		expr    string
		minHits int
	}{
		"U1":  {`/site/people/person`, 10},
		"U2":  {`/site/people/person[@id = "person10"]`, 1},
		"U3":  {`/site/people/person[profile/age > 20]`, 5},
		"U4":  {`/site/regions//item`, 10},
		"U5":  {`/site//description`, 10},
		"U6":  {`/site/closed_auctions/closed_auction/annotation/description/parlist/listitem/parlist/listitem/text/emph/keyword`, 1},
		"U7":  {`/site/open_auctions/open_auction[bidder/increase > 5]/annotation[happiness < 20]/description//text`, 2},
		"U8":  {`/site/open_auctions/open_auction[initial > 10 and reserve > 50]/bidder`, 2},
		"U9":  {`/site/regions//item[location = "United States"]`, 1},
		"U10": {`/site//open_auctions/open_auction[not(@id = "open_auction2")]/bidder[increase > 10]`, 2},
	}
	for name, q := range queries {
		got := len(xpath.Select(doc, xpath.MustParse(q.expr)))
		if got < q.minHits {
			t.Errorf("%s selects %d nodes, want ≥ %d", name, got, q.minHits)
		}
	}
	// U2 must select exactly one person.
	if got := len(xpath.Select(doc, xpath.MustParse(`/site/people/person[@id = "person10"]`))); got != 1 {
		t.Errorf("U2 selects %d nodes, want exactly 1", got)
	}
}

func TestStreamMatchesTree(t *testing.T) {
	cfg := Config{Factor: 0.002, Seed: 3}
	doc, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	n, err := Write(cfg, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(sb.Len()) {
		t.Errorf("reported %d bytes, wrote %d", n, sb.Len())
	}
	parsed, err := sax.ParseString(sb.String())
	if err != nil {
		t.Fatal(err)
	}
	if !tree.Equal(doc, parsed) {
		t.Fatalf("streamed document differs from generated tree")
	}
}

func TestScalesLinearly(t *testing.T) {
	size := func(f float64) int64 {
		var sb strings.Builder
		n, err := Write(Config{Factor: f, Seed: 1}, &sb)
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	s1 := size(0.002)
	s4 := size(0.008)
	ratio := float64(s4) / float64(s1)
	if ratio < 3.0 || ratio > 5.0 {
		t.Errorf("4x factor gave %.1fx bytes (s1=%d, s4=%d)", ratio, s1, s4)
	}
}

func TestFactorSizeCalibration(t *testing.T) {
	// Factor 0.02 should be on the order of megabytes (the paper's
	// 2.22 MB); allow a wide band since the vocabulary is a subset.
	var sb strings.Builder
	n, err := Write(Config{Factor: 0.02, Seed: 1}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if n < 500_000 || n > 10_000_000 {
		t.Errorf("factor 0.02 = %d bytes; want within [0.5 MB, 10 MB]", n)
	}
	t.Logf("factor 0.02 = %.2f MB", float64(n)/1e6)
}

func TestWriteFile(t *testing.T) {
	path := t.TempDir() + "/x.xml"
	n, err := WriteFile(Config{Factor: 0.001, Seed: 1}, path)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("empty file")
	}
	if _, err := WriteFile(Config{Factor: 0.001, Seed: 1}, t.TempDir()+"/no/such/dir/x.xml"); err == nil {
		t.Errorf("bad path accepted")
	}
}
