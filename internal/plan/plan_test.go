package plan

import (
	"context"
	"testing"

	"xtq/internal/core"
	"xtq/internal/queries"
	"xtq/internal/stats"
	"xtq/internal/tree"
	"xtq/internal/xmark"
)

func xmarkIndex(t *testing.T, factor float64) *tree.Index {
	t.Helper()
	doc, err := xmark.Generate(xmark.Config{Factor: factor, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	_, ix, _ := tree.Freeze(doc, nil)
	return ix
}

func compile(t *testing.T, i int) *core.Compiled {
	t.Helper()
	c, err := queries.Compile(i)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// Every XMark query must get a concrete, runnable decision with
// positive estimates and a reason.
func TestChooseDecisions(t *testing.T) {
	ix := xmarkIndex(t, 0.005)
	for i := 1; i <= 10; i++ {
		c := compile(t, i)
		dec := Choose(c, ix)
		if dec.Method == core.MethodAuto || dec.Method == "" {
			t.Fatalf("U%d: planner returned non-concrete method %q", i, dec.Method)
		}
		if dec.EstNodes < 1 || dec.EstCost <= 0 {
			t.Fatalf("U%d: degenerate estimate %+v", i, dec)
		}
		if dec.Reason == "" {
			t.Fatalf("U%d: no reason", i)
		}
		if _, err := c.EvalContext(context.Background(), ix.Root, dec.Method); err != nil {
			t.Fatalf("U%d: planned method %s fails: %v", i, dec.Method, err)
		}
	}
}

// The estimator must never price a whole-document pass below the guided
// scan of a selective child path: U1 (/site/people/person, no
// qualifiers, no '//') is the clearest case — the planner has to pick
// the guided top-down method, and its estimate must stay well under the
// document size times the naive pass count.
func TestChoosePrefersGuidedOnSelectivePaths(t *testing.T) {
	ix := xmarkIndex(t, 0.01)
	dec := Choose(compile(t, 1), ix)
	if dec.Method != core.MethodTopDown {
		t.Fatalf("U1: chose %s, want topdown (reason: %s)", dec.Method, dec.Reason)
	}
	n := int64(stats.Of(ix).Nodes())
	if dec.EstNodes >= n {
		t.Fatalf("U1: estimated %d visits over a %d-node document", dec.EstNodes, n)
	}
}

// A path whose label does not occur kills the frontier: the estimate
// must collapse to near zero rather than a document pass.
func TestEstimateDeadFrontier(t *testing.T) {
	ix := xmarkIndex(t, 0.005)
	q, err := core.ParseQuery(`transform copy $a := doc("x") modify do delete $a/site/nosuchlabel/item return $a`)
	if err != nil {
		t.Fatal(err)
	}
	c, err := q.Compile()
	if err != nil {
		t.Fatal(err)
	}
	est := EstimateMethod(c, stats.Of(ix), core.MethodTopDown)
	if est.Nodes > int64(stats.Of(ix).Nodes()/10) {
		t.Fatalf("dead frontier estimated %d visits", est.Nodes)
	}
}

// Without statistics the planner degrades to the engine default.
func TestChooseWithoutStatistics(t *testing.T) {
	dec := Choose(compile(t, 1), nil)
	if dec.Method != core.MethodTopDown {
		t.Fatalf("nil index: chose %s, want topdown", dec.Method)
	}
}

// Estimates must rank the no-op rewriting and copy baselines above the
// guided methods on every XMark query — they pay whole-document passes
// the paper's measurements never see winning.
func TestBaselinesNeverWin(t *testing.T) {
	ix := xmarkIndex(t, 0.005)
	for i := 1; i <= 10; i++ {
		dec := Choose(compile(t, i), ix)
		if dec.Method == core.MethodNaive || dec.Method == core.MethodCopyUpdate {
			t.Fatalf("U%d: planner picked baseline %s", i, dec.Method)
		}
	}
}
