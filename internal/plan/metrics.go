package plan

import (
	"time"

	"xtq/internal/core"
	"xtq/internal/obs"
)

// Planner metrics on the process-wide registry. The estimation-error
// histogram is dimensionless (ratio of estimated to actual visited
// nodes); the registry's exposition renders histogram samples in
// seconds, so ratios are observed as duration-encoded seconds and the
// buckets are symmetric powers of two around 1.0 — a scrape showing
// mass outside [1/4, 4] means the cost model has drifted from the
// evaluators.
var (
	mDecisions = obs.Default.CounterVec("xtq_plan_decisions_total",
		"Planner method decisions, including decision-cache hits.", "method")
	mEstError = obs.Default.HistogramBuckets("xtq_plan_est_error_ratio",
		"Ratio of planner-estimated to actually visited nodes.", ratioBuckets())
)

// ratioBuckets returns bounds 1/32, 1/16, ..., 16, 32 encoded as
// durations (1.0 == time.Second).
func ratioBuckets() []time.Duration {
	out := make([]time.Duration, 0, 11)
	for e := -5; e <= 5; e++ {
		r := 1.0
		for i := 0; i < e; i++ {
			r *= 2
		}
		for i := 0; i > e; i-- {
			r /= 2
		}
		out = append(out, time.Duration(r*float64(time.Second)))
	}
	return out
}

// RecordDecision counts one planner resolution of method m — fresh
// cost-model runs (Choose calls it) and decision-cache hits (the
// engine's cache calls it on hit) alike, so the counter reads as "how
// often did Auto resolve to m".
func RecordDecision(m core.Method) {
	mDecisions.With(string(m)).Inc()
}

// ObserveError records one estimated-vs-actual comparison after a
// planned evaluation: the ratio est/actual, with both sides clamped to
// at least one node so empty selections stay finite.
func ObserveError(estNodes int64, actualNodes int) {
	e := float64(estNodes)
	if e < 1 {
		e = 1
	}
	a := float64(actualNodes)
	if a < 1 {
		a = 1
	}
	mEstError.Observe(time.Duration(e / a * float64(time.Second)))
}
