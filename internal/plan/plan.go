// Package plan is the cost-based method planner: given a compiled
// transform query and the statistics of the document version it will
// run against (internal/stats), it estimates the node-visit cost of
// each in-memory evaluation method and picks the cheapest. The model
// follows the paper's analysis of the methods (§3, §6): the guided
// top-down walk (GENTOP) visits only the frontier the selecting NFA
// keeps alive, paying a per-candidate price to re-walk qualifiers; the
// two-pass method (TD-BU) pays one full bottom-up pass over the
// document to annotate qualifier truth values and then a top-down pass
// with O(1) qualifier checks; the naive rewriting method and the
// copy-then-update baseline touch the whole document a constant number
// of times regardless of the query.
//
// Estimates are deliberately coarse — per-label counts, the average
// fanout and the document size are all the statistics carry — but the
// decision only needs the right order of magnitude: the methods it
// arbitrates differ by whole document passes, not by percents. The
// acceptance bar (Auto within 25% of the best static method, estimated
// visits within 10x of actual) is enforced by the planner property
// tests and the xbench -plansmoke gate.
package plan

import (
	"fmt"

	"xtq/internal/core"
	"xtq/internal/stats"
	"xtq/internal/tree"
	"xtq/internal/xpath"
)

// Model constants: per-visit cost weights relative to one guided
// top-down visit, calibrated against the committed XMark sweeps
// (BENCH_PR3.json): topdown beats twopass on every measured
// (query, factor) cell — the bottom-up pass evaluates the QualDP
// recurrence at every node, which is worth roughly 1.6 plain visits —
// and naive and copyupdate trail by whole passes.
const (
	// twoPassNodeCost weighs one bottom-up QualDP visit.
	twoPassNodeCost = 1.6
	// naivePasses approximates the rewriting method's repeated
	// whole-document traversals (rewrite + evaluate + stitch).
	naivePasses = 3.0
	// copyPasses approximates snapshot-copy plus in-place update,
	// with the copy's allocation overhead folded in.
	copyPasses = 2.5
	// qualReWalk is the per-candidate price of re-walking one
	// qualifier step in the guided top-down method, in visits.
	qualReWalk = 1.0
	// descQualFactor inflates qualifier re-walk cost when the
	// qualifier itself contains a '//' step: the re-walk then scans
	// the candidate's whole subtree rather than a bounded path.
	descQualFactor = 4.0
)

// Decision is the planner's verdict for one (query, document version)
// pair: the method to run, the estimated node visits of that method
// (comparable to the observability layer's visited-node counters), its
// model cost in visit units, and a one-line justification for EXPLAIN.
type Decision struct {
	Method   core.Method
	EstNodes int64
	EstCost  float64
	Reason   string
}

// Estimate is one method's predicted cost.
type Estimate struct {
	Method core.Method
	// Nodes is the predicted visited-node count, aligned with what the
	// evaluator's visit counters (obs trace) report for this method.
	Nodes int64
	// Cost is the model cost in guided-visit units: Nodes weighted by
	// the method's per-visit constant plus method-fixed overheads.
	Cost float64
}

// pathShape is what the estimator extracts from the compiled query's
// selecting NFA against one document's statistics.
type pathShape struct {
	// scan is the total number of nodes the guided top-down walk
	// examines to feed all transitions (frontier expansion).
	scan float64
	// qual is the extra per-candidate qualifier re-walk cost the
	// guided method pays (the two-pass method replaces it with the
	// bottom-up annotation pass).
	qual float64
	// selected is the estimated cardinality of the selected set.
	selected float64
	// descs counts '//' transitions, quals counts qualified ones.
	descs, quals int
}

// shape runs the cardinality propagation: for each consuming transition
// of the selecting NFA, the frontier it can produce is the per-label
// element count (the statistics cannot localize labels, so the global
// count is the estimate), and the nodes scanned to feed it is the
// children of the previous frontier for a child step — at least
// frontier x average-fanout, at least the label count itself (hub nodes
// like XMark's <people> have fanouts far above the average, and every
// eventual match must have been scanned) — or, for a descendant step,
// the subtree mass below the frontier, taken from the depth histogram:
// of the nodes deeper than the frontier's depth, the fraction of that
// depth level the frontier covers. A frontier that dies (a label the
// document does not contain) zeroes everything downstream, exactly like
// the evaluator's early exit.
func shape(c *core.Compiled, d stats.Doc) pathShape {
	var sh pathShape
	fanout := d.Fanout()
	frontier := 1.0 // the document node
	depth := 0
	sh.scan = 1
	for _, t := range c.NFA.Transitions() {
		var card float64
		if t.Wild {
			card = float64(d.Elems())
		} else {
			card = float64(d.Count(t.Label))
		}
		var scanned float64
		if t.Desc {
			sh.descs++
			below := float64(d.BelowDepth(depth))
			cover := 1.0
			if at := float64(d.AtDepth(depth)); at > frontier && at > 0 {
				cover = frontier / at
			}
			scanned = below * cover
			if scanned < frontier*fanout {
				scanned = frontier * fanout
			}
		} else {
			scanned = frontier * fanout
			if card > scanned {
				scanned = card
			}
		}
		depth++
		if frontier == 0 {
			card, scanned = 0, 0
		}
		sh.scan += scanned
		if t.Qualified {
			sh.quals++
			sh.qual += card * qualCost(t.Quals, fanout)
		}
		frontier = card
	}
	sh.selected = frontier
	return sh
}

// qualCost estimates the guided method's per-candidate re-walk cost of
// a qualifier list, in visits: each path leaf costs its step count
// scaled by the fanout (the re-walk tries every child per step), with
// descendant steps inflating the whole qualifier to a subtree scan.
func qualCost(quals []xpath.Qual, fanout float64) float64 {
	var cost float64
	for _, q := range quals {
		cost += qualLeafCost(q, fanout)
	}
	if cost < 1 {
		cost = 1
	}
	return cost
}

func qualLeafCost(q xpath.Qual, fanout float64) float64 {
	switch q := q.(type) {
	case *xpath.PathQual:
		return qualPathCost(q.Path, fanout)
	case *xpath.CmpQual:
		return qualPathCost(q.Path, fanout)
	case *xpath.AndQual:
		return qualLeafCost(q.L, fanout) + qualLeafCost(q.R, fanout)
	case *xpath.OrQual:
		return qualLeafCost(q.L, fanout) + qualLeafCost(q.R, fanout)
	case *xpath.NotQual:
		return qualLeafCost(q.X, fanout)
	default: // LabelQual, TrueQual: O(1) tests.
		return 0.5
	}
}

func qualPathCost(p *xpath.Path, fanout float64) float64 {
	if p == nil {
		return qualReWalk
	}
	cost := qualReWalk
	for _, s := range p.Steps {
		switch s.Axis {
		case xpath.Attribute:
			cost += 0.5
		case xpath.DescendantOrSelf:
			cost = cost * descQualFactor
			cost += fanout
		default:
			cost += fanout
		}
		for _, q := range s.Quals {
			cost += qualLeafCost(q, fanout)
		}
	}
	return cost
}

// EstimateMethod predicts the visited-node count and model cost of
// running c against the document described by d with method m.
func EstimateMethod(c *core.Compiled, d stats.Doc, m core.Method) Estimate {
	n := float64(d.Nodes())
	if !d.Valid() || c == nil || c.NFA == nil {
		// No statistics: every method degrades to "touches the whole
		// document once or more"; rank by pass constants only.
		return Estimate{Method: m, Nodes: int64(n), Cost: passCost(m) * maxf(n, 1)}
	}
	sh := shape(c, d)
	switch m {
	case core.MethodTopDown:
		// The qualifier re-walk visits nodes too (checkp runs the
		// direct evaluator under the same cancellation counter), so it
		// counts into the visit estimate, not just the cost.
		v := sh.scan + sh.qual
		return Estimate{Method: m, Nodes: ceil64(v), Cost: v}
	case core.MethodTwoPass:
		// The bottom-up pass visits every node; the guided second pass
		// re-scans the frontier with O(1) qualifier checks.
		v := n + sh.scan
		return Estimate{Method: m, Nodes: ceil64(v), Cost: twoPassNodeCost*n + sh.scan}
	case core.MethodNaive:
		v := naivePasses * n
		return Estimate{Method: m, Nodes: ceil64(v), Cost: v + sh.qual}
	case core.MethodCopyUpdate:
		v := 2 * n
		return Estimate{Method: m, Nodes: ceil64(v), Cost: copyPasses * n}
	default:
		return Estimate{Method: m, Nodes: int64(n), Cost: passCost(core.MethodTopDown) * maxf(n, 1)}
	}
}

func passCost(m core.Method) float64 {
	switch m {
	case core.MethodTwoPass:
		return twoPassNodeCost + 1
	case core.MethodNaive:
		return naivePasses
	case core.MethodCopyUpdate:
		return copyPasses
	default:
		return 1
	}
}

// Estimates returns the per-method estimates for c over d, in
// core.Methods() order.
func Estimates(c *core.Compiled, d stats.Doc) []Estimate {
	ms := core.Methods()
	out := make([]Estimate, 0, len(ms))
	for _, m := range ms {
		out = append(out, EstimateMethod(c, d, m))
	}
	return out
}

// Choose picks the cheapest method for running c against the document
// version indexed by ix, recording the decision in the planner metrics.
// A nil index or compiled query falls back to the engine default
// (topdown) with a degenerate estimate.
func Choose(c *core.Compiled, ix *tree.Index) Decision {
	dec := WouldChoose(c, ix)
	RecordDecision(dec.Method)
	return dec
}

// WouldChoose is Choose without the metrics side effect — for layers
// reporting what the planner would have picked when a forced ?method=
// overrode it (the decision was not used, so it must not count).
func WouldChoose(c *core.Compiled, ix *tree.Index) Decision {
	d := stats.Of(ix)
	if !d.Valid() || c == nil || c.NFA == nil {
		return Decision{
			Method:   core.MethodTopDown,
			EstNodes: int64(d.Nodes()),
			EstCost:  maxf(float64(d.Nodes()), 1),
			Reason:   "no statistics: defaulting to guided top-down",
		}
	}
	ests := Estimates(c, d)
	best := ests[0]
	for _, e := range ests[1:] {
		// Ties go to the later entry: Methods() orders topdown last, so
		// equal costs resolve to the paper's best general method.
		if e.Cost <= best.Cost {
			best = e
		}
	}
	sh := shape(c, d)
	return Decision{
		Method:   best.Method,
		EstNodes: best.Nodes,
		EstCost:  best.Cost,
		Reason:   reason(best.Method, sh, d),
	}
}

// reason renders a one-line justification for EXPLAIN output.
func reason(m core.Method, sh pathShape, d stats.Doc) string {
	n := d.Nodes()
	switch m {
	case core.MethodTopDown:
		if sh.quals == 0 {
			return fmt.Sprintf("no qualifiers: guided walk scans ~%d of %d nodes", ceil64(sh.scan), n)
		}
		return fmt.Sprintf("guided walk scans ~%d of %d nodes; qualifier re-walk (~%d visits) cheaper than a full bottom-up pass", ceil64(sh.scan), n, ceil64(sh.qual))
	case core.MethodTwoPass:
		return fmt.Sprintf("qualifier re-walk (~%d visits) would dominate: one bottom-up pass over %d nodes annotates all %d qualified steps", ceil64(sh.qual), n, sh.quals)
	case core.MethodNaive:
		return "rewriting estimated cheapest"
	case core.MethodCopyUpdate:
		return "whole-document copy estimated cheapest"
	default:
		return ""
	}
}

func ceil64(v float64) int64 {
	i := int64(v)
	if float64(i) < v {
		i++
	}
	if i < 1 {
		i = 1
	}
	return i
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
