package replica

import (
	"fmt"
	"testing"
)

func TestPickNodeDeterministicAndTotal(t *testing.T) {
	nodes := []string{"http://a:8080", "http://b:8080", "http://c:8080"}
	if got := PickNode("doc", nil); got != "" {
		t.Fatalf("empty node list picked %q", got)
	}
	hits := map[string]int{}
	for i := 0; i < 300; i++ {
		name := fmt.Sprintf("doc-%03d", i)
		n1 := PickNode(name, nodes)
		n2 := PickNode(name, []string{nodes[2], nodes[0], nodes[1]})
		if n1 != n2 {
			t.Fatalf("%q: order-dependent pick %q vs %q", name, n1, n2)
		}
		hits[n1]++
	}
	for _, n := range nodes {
		if hits[n] == 0 {
			t.Fatalf("node %q owns nothing across 300 names: %v", n, hits)
		}
	}
}

func TestPickNodeMinimalRemapping(t *testing.T) {
	full := []string{"n1", "n2", "n3", "n4"}
	reduced := []string{"n1", "n2", "n4"}
	for i := 0; i < 500; i++ {
		name := fmt.Sprintf("doc-%03d", i)
		before := PickNode(name, full)
		after := PickNode(name, reduced)
		if before != "n3" && after != before {
			t.Fatalf("%q moved %q -> %q though its owner never left", name, before, after)
		}
		if before == "n3" && after == "n3" {
			t.Fatalf("%q still assigned to removed node", name)
		}
	}
}
