package replica

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"xtq/internal/wal"
	"xtq/internal/xerr"
)

// Sentinel conditions of the feed protocol, surfaced by feedClient for
// the follower's tail loop to branch on.
var (
	// errGone: the requested segment was compacted away; re-bootstrap
	// from the primary's checkpoint.
	errGone = errors.New("replica: segment compacted on primary")
	// errRewound: the primary's log ends before our position — the
	// primary lost acknowledged-to-us bytes (OS crash under a relaxed
	// fsync policy). The follower holds diverged state.
	errRewound = errors.New("replica: primary log rewound below our position")
	// errNotYet: the segment does not exist on the primary yet.
	errNotYet = errors.New("replica: segment not on primary yet")
)

// chunk is one segment fetch: raw frame bytes plus the log geometry the
// feed headers described at response time.
type chunk struct {
	data    []byte
	from    int64 // offset data starts at
	size    int64 // segment's safe size at response time
	sealed  bool
	tail    wal.Pos
	behind  int64 // bytes from end of data to tail
	records int64 // primary's appended-record count
}

// feedClient speaks the log service protocol against one primary.
type feedClient struct {
	base string // primary base URL, no trailing slash
	hc   *http.Client
}

func newFeedClient(primary string, hc *http.Client) *feedClient {
	if hc == nil {
		hc = &http.Client{}
	}
	return &feedClient{base: strings.TrimRight(primary, "/"), hc: hc}
}

func (c *feedClient) get(ctx context.Context, path string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return nil, err
	}
	return c.hc.Do(req)
}

// status fetches the primary's log status.
func (c *feedClient) status(ctx context.Context) (Status, error) {
	resp, err := c.get(ctx, "/wal/status")
	if err != nil {
		return Status{}, err
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		return Status{}, fmt.Errorf("replica: primary status: %s", resp.Status)
	}
	var st Status
	if err := decodeJSON(resp.Body, &st); err != nil {
		return Status{}, err
	}
	return st, nil
}

// checkpoint downloads the primary's newest checkpoint into path
// (written atomically: temp file + rename) and parses it. ok is false
// when the primary has no checkpoint yet.
func (c *feedClient) checkpoint(ctx context.Context, path string) (ck *wal.Checkpoint, ok bool, err error) {
	resp, err := c.get(ctx, "/wal/checkpoint")
	if err != nil {
		return nil, false, err
	}
	defer drain(resp)
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNotFound:
		return nil, false, nil
	default:
		return nil, false, fmt.Errorf("replica: primary checkpoint: %s", resp.Status)
	}
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, false, xerr.Wrap(xerr.IO, err)
	}
	_, cpErr := io.Copy(f, resp.Body)
	if err := f.Sync(); cpErr == nil {
		cpErr = err
	}
	if err := f.Close(); cpErr == nil {
		cpErr = err
	}
	if cpErr != nil {
		os.Remove(tmp)
		return nil, false, xerr.Wrap(xerr.IO, cpErr)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return nil, false, xerr.Wrap(xerr.IO, err)
	}
	ck, err = wal.ReadCheckpointFile(path)
	if err != nil {
		return nil, false, err
	}
	return ck, true, nil
}

// segment fetches bytes of segment seq starting at from, long-polling
// up to wait when caught up. A 204 returns an empty chunk with the
// geometry headers still populated.
func (c *feedClient) segment(ctx context.Context, seq uint64, from int64, wait time.Duration, maxBytes int64) (chunk, error) {
	path := fmt.Sprintf("/wal/segments/%d?from=%d&wait=%d&max=%d", seq, from, wait.Milliseconds(), maxBytes)
	resp, err := c.get(ctx, path)
	if err != nil {
		return chunk{}, err
	}
	defer drain(resp)
	switch resp.StatusCode {
	case http.StatusOK, http.StatusNoContent:
	case http.StatusGone:
		return chunk{}, errGone
	case http.StatusRequestedRangeNotSatisfiable:
		return chunk{}, errRewound
	case http.StatusNotFound:
		return chunk{}, errNotYet
	default:
		return chunk{}, fmt.Errorf("replica: primary segment %d: %s", seq, resp.Status)
	}
	ch := chunk{
		from:    headerInt(resp, HdrFrom, from),
		size:    headerInt(resp, HdrSize, 0),
		sealed:  resp.Header.Get(HdrSealed) == "true",
		behind:  headerInt(resp, HdrBehind, -1),
		records: headerInt(resp, HdrRecords, -1),
	}
	ch.tail = wal.Pos{
		Seq:    uint64(headerInt(resp, HdrTailSegment, 0)),
		Offset: headerInt(resp, HdrTailOffset, 0),
	}
	if resp.StatusCode == http.StatusOK {
		ch.data, err = io.ReadAll(io.LimitReader(resp.Body, maxMaxChunk+1))
		if err != nil {
			return chunk{}, err
		}
	}
	return ch, nil
}

func headerInt(resp *http.Response, name string, def int64) int64 {
	if v, err := strconv.ParseInt(resp.Header.Get(name), 10, 64); err == nil {
		return v
	}
	return def
}

func decodeJSON(r io.Reader, v any) error {
	b, err := io.ReadAll(io.LimitReader(r, 8<<20))
	if err != nil {
		return err
	}
	return json.Unmarshal(b, v)
}

// drain consumes and closes a response body so the transport can reuse
// the connection.
func drain(resp *http.Response) {
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
}
