package replica

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"xtq/internal/core"
	"xtq/internal/store"
	"xtq/internal/wal"
	"xtq/internal/xmark"
)

// flakyTransport injects the failures a real network serves up: whole
// requests dropped before they start, and response bodies cut off after
// a random number of bytes (which lands the follower mid-frame — it
// must refetch, never apply a partial record).
type flakyTransport struct {
	mu     sync.Mutex
	rng    *rand.Rand
	active atomic.Bool
}

func (ft *flakyTransport) roll(p float64) bool {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	return ft.rng.Float64() < p
}

func (ft *flakyTransport) intn(n int) int {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	return ft.rng.Intn(n)
}

func (ft *flakyTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if ft.active.Load() && ft.roll(0.15) {
		return nil, errors.New("torture: injected connection drop")
	}
	resp, err := http.DefaultTransport.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if ft.active.Load() && strings.Contains(req.URL.Path, "/wal/segments/") && ft.roll(0.20) {
		resp.Body = &truncatingBody{rc: resp.Body, remain: int64(ft.intn(300))}
	}
	return resp, nil
}

// truncatingBody yields remain bytes then fails the read — a connection
// dying mid-response.
type truncatingBody struct {
	rc     io.ReadCloser
	remain int64
}

func (tb *truncatingBody) Read(p []byte) (int, error) {
	if tb.remain <= 0 {
		return 0, errors.New("torture: connection died mid-body")
	}
	if int64(len(p)) > tb.remain {
		p = p[:tb.remain]
	}
	n, err := tb.rc.Read(p)
	tb.remain -= int64(n)
	return n, err
}

func (tb *truncatingBody) Close() error { return tb.rc.Close() }

// tortureUpdate builds the i-th random update query over the XMark
// vocabulary for document name.
func tortureUpdate(rng *rand.Rand, name string, i int) string {
	paths := []string{
		`$a/site/people/person`,
		`$a/site/regions//item`,
		`$a/site/open_auctions/open_auction/bidder`,
		`$a/site//description`,
		`$a/site/closed_auctions/closed_auction/annotation`,
	}
	p := paths[rng.Intn(len(paths))]
	var u string
	switch rng.Intn(4) {
	case 0:
		u = fmt.Sprintf(`insert <patch><n>p%d</n></patch> into %s`, i, p)
	case 1:
		u = fmt.Sprintf(`delete %s`, p)
	case 2:
		u = fmt.Sprintf(`replace %s with <stub><n>r%d</n></stub>`, p, i)
	default:
		u = fmt.Sprintf(`rename %s as relabeled%d`, p, i%3)
	}
	return fmt.Sprintf(`transform copy $a := doc(%q) modify do %s return $a`, name, u)
}

// TestFollowerTortureConvergence is the replication subsystem's
// end-to-end adversarial test: a writer hammers the primary with random
// XMark updates — removing and re-ingesting a document midstream, so
// the follower must replay a tombstone and a chain restart — while the
// primary checkpoints (compacting segments out from under a lagging
// follower, forcing re-bootstrap) and the feed connection drops and
// dies mid-response at random. The follower is also hard-restarted
// several times, resuming from its own local checkpoint + position.
// When the writer drains, the follower must hold exactly the primary's
// documents, version- and byte-identical.
func TestFollowerTortureConvergence(t *testing.T) {
	const updates = 200
	ctx := context.Background()

	st, err := store.Open(t.TempDir(), store.Options{Fsync: wal.FsyncNone, SegmentBytes: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	mux := http.NewServeMux()
	mux.Handle("/wal/", http.StripPrefix("/wal", NewLogService(st.WAL())))
	srv := httptest.NewServer(mux)
	defer srv.Close()

	base, err := xmark.Generate(xmark.Config{Factor: 0.002, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Put("d", base.DeepCopy(), true); err != nil {
		t.Fatal(err)
	}
	put(t, st, "side", `<side><v>0</v></side>`)

	ft := &flakyTransport{rng: rand.New(rand.NewSource(7))}
	folDir := t.TempDir()
	folOpts := Options{
		Primary:         srv.URL,
		Dir:             folDir,
		CheckpointEvery: 32 << 10,
		Poll:            25 * time.Millisecond,
		MaxFetch:        8 << 10,
		Client:          &http.Client{Transport: ft},
	}
	f, err := Start(folOpts)
	if err != nil {
		t.Fatal(err)
	}
	ft.active.Store(true)

	// The writer: random updates, a midstream remove + re-ingest (chain
	// restart), occasional side-document churn, periodic checkpoints
	// compacting the log.
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		wrng := rand.New(rand.NewSource(99))
		for i := 0; i < updates; i++ {
			src := tortureUpdate(wrng, "d", i)
			c, err := core.MustParseQuery(src).Compile()
			if err != nil {
				t.Errorf("compile %s: %v", src, err)
				return
			}
			if _, _, err := st.Apply(ctx, "d", c, core.MethodTopDown); err != nil {
				t.Errorf("writer update %d: %v", i, err)
				return
			}
			switch i {
			case updates / 3:
				if _, err := st.Remove("d"); err != nil {
					t.Errorf("remove: %v", err)
					return
				}
				if _, _, err := st.Put("d", base.DeepCopy(), true); err != nil {
					t.Errorf("re-ingest: %v", err)
					return
				}
			case updates / 2, updates - 20:
				if _, err := st.Checkpoint(ctx); err != nil {
					t.Errorf("checkpoint: %v", err)
					return
				}
			}
			if i%10 == 0 {
				applyQ(t, st, "side", fmt.Sprintf(
					`transform copy $a := doc("side") modify do replace $a/side/v with <v>%d</v> return $a`, i))
			}
			// Throttle just enough that restarts, checkpoints and drops
			// genuinely interleave with live tailing.
			time.Sleep(2 * time.Millisecond)
		}
	}()

	// Meanwhile: hard-restart the follower a few times; it must resume
	// from its local checkpoint + position (or re-bootstrap when its
	// position was compacted away) without losing chain verification.
	restarts := 0
	for running := true; running; {
		select {
		case <-writerDone:
			running = false
		case <-time.After(100 * time.Millisecond):
			if restarts >= 4 {
				continue
			}
			restarts++
			f.Close()
			var err error
			for attempt := 0; ; attempt++ {
				f, err = Start(folOpts)
				if err == nil {
					break
				}
				if attempt > 50 {
					t.Fatalf("follower restart: %v", err)
				}
				time.Sleep(20 * time.Millisecond)
			}
		}
	}

	// Drain: stop injecting failures and wait for full convergence.
	ft.active.Store(false)
	defer f.Close()
	tail := st.WAL().TailPos()
	deadline := time.Now().Add(60 * time.Second)
	for {
		s := f.Stats()
		if s.Position.Seq > tail.Seq || (s.Position.Seq == tail.Seq && s.Position.Offset >= tail.Offset) {
			break
		}
		if err := f.Err(); err != nil {
			t.Fatalf("follower failed during drain: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never drained: at %v, want %v", s.Position, tail)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if restarts == 0 {
		t.Fatal("torture exercised no restarts")
	}
	assertIdentical(t, st, f.Store())

	// And the lag accounting agrees: fully drained means zero behind.
	if s := f.Stats(); s.BehindBytes != 0 {
		t.Fatalf("drained follower reports BehindBytes=%d", s.BehindBytes)
	}
}
