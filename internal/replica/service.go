// Package replica implements WAL-shipping replication for the durable
// document store: a primary-side log service that exposes the
// write-ahead log over HTTP, and a follower that tails it, replaying
// the primary's logical update records through its own store via the
// exact machinery crash recovery uses.
//
// The protocol leans on what PR 5 already built. Every commit is
// durable as a logical record — canonical update-query text plus the
// version chain it extends — so the log IS the replication stream: no
// separate format, no physical pages, and a follower may even evaluate
// under a different method than the primary (replay is
// method-independent). Frames are CRC32C-checksummed end to end; the
// follower decodes with the same codec and verifies every chain link,
// so divergence is always a typed xerr.Corrupt naming the primary's
// segment file and byte offset — never a silently wrong replica.
//
// The feed has three endpoints, mounted by xtqd under /wal:
//
//	GET <base>/status        → JSON: checkpoint cut, tail position,
//	                           record count, live segments
//	GET <base>/checkpoint    → the newest checkpoint file's raw bytes
//	                           (404 when none exists yet)
//	GET <base>/segments/{n}?from=F&wait=MS&max=B
//	                         → raw CRC-framed record bytes of segment n
//	                           starting at byte F; long-polls up to MS
//	                           for new bytes when caught up (204 when
//	                           none arrive), serves at most B bytes
//
// Status codes carry the protocol's edge cases: 410 Gone means the
// segment was compacted away (the follower re-bootstraps from the
// checkpoint), 416 means the requested offset is beyond the segment's
// end — the signature of a primary whose log rewound (an OS crash under
// a relaxed fsync policy), which the follower surfaces as divergence.
package replica

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"xtq/internal/wal"
)

// Feed headers. Every segment response (200, 204, 410, 416) describes
// the log around it so a follower tracks lag from the responses alone.
const (
	HdrSegment     = "X-Xtq-Wal-Segment"      // segment this response serves
	HdrFrom        = "X-Xtq-Wal-From"         // byte offset the body starts at
	HdrSize        = "X-Xtq-Wal-Size"         // segment's safe size at response time
	HdrSealed      = "X-Xtq-Wal-Sealed"       // "true" once rotation froze it
	HdrTailSegment = "X-Xtq-Wal-Tail-Segment" // active segment at response time
	HdrTailOffset  = "X-Xtq-Wal-Tail-Offset"  // its safe size at response time
	HdrBehind      = "X-Xtq-Wal-Behind"       // bytes from end-of-body to tail
	HdrRecords     = "X-Xtq-Wal-Records"      // records appended since primary open
	HdrCkptSeq     = "X-Xtq-Ckpt-Seq"         // checkpoint cut (checkpoint + 410 responses)
)

const (
	defaultMaxChunk = 4 << 20
	maxMaxChunk     = 64 << 20
	maxWait         = 30 * time.Second
)

// Status is the log service's JSON status document.
type Status struct {
	// CheckpointSeq is the newest checkpoint's segment cut, 0 when no
	// checkpoint exists yet.
	CheckpointSeq uint64 `json:"checkpoint_seq"`
	// Tail is the position one past the last complete record.
	Tail PosJSON `json:"tail"`
	// Records counts records appended since the primary opened its log.
	Records int64 `json:"records"`
	// Segments lists the live segments in ascending order.
	Segments []SegmentJSON `json:"segments"`
}

// PosJSON is a log position in JSON form.
type PosJSON struct {
	Segment uint64 `json:"segment"`
	Offset  int64  `json:"offset"`
}

// SegmentJSON describes one live segment in JSON form.
type SegmentJSON struct {
	Segment uint64 `json:"segment"`
	Size    int64  `json:"size"`
	Sealed  bool   `json:"sealed"`
}

// LogService is the primary-side feed: an http.Handler serving a
// store's write-ahead log to followers. Mount it under a prefix (xtqd
// uses /wal) with http.StripPrefix.
type LogService struct {
	log *wal.Log
}

// NewLogService returns the feed handler for l.
func NewLogService(l *wal.Log) *LogService { return &LogService{log: l} }

func (s *LogService) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	path := strings.TrimPrefix(r.URL.Path, "/")
	switch {
	case path == "status":
		s.serveStatus(w)
	case path == "checkpoint":
		s.serveCheckpoint(w, r)
	case strings.HasPrefix(path, "segments/"):
		seq, err := strconv.ParseUint(strings.TrimPrefix(path, "segments/"), 10, 64)
		if err != nil || seq == 0 {
			http.Error(w, "bad segment number", http.StatusBadRequest)
			return
		}
		s.serveSegment(w, r, seq)
	default:
		http.NotFound(w, r)
	}
}

func (s *LogService) serveStatus(w http.ResponseWriter) {
	_, ckSeq, _, err := wal.LatestCheckpointInfo(s.log.Dir())
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	tail := s.log.TailPos()
	st := Status{
		CheckpointSeq: ckSeq,
		Tail:          PosJSON{Segment: tail.Seq, Offset: tail.Offset},
		Records:       s.log.AppendedRecords(),
	}
	for _, seg := range s.log.SegmentStatus() {
		st.Segments = append(st.Segments, SegmentJSON{Segment: seg.Seq, Size: seg.Size, Sealed: seg.Sealed})
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(st)
}

// serveCheckpoint streams the newest checkpoint file's raw bytes. The
// small retry loop covers the race with compaction replacing the
// newest checkpoint between the directory listing and the open (the
// newest itself is never deleted, so a missing file always means a
// newer one exists).
func (s *LogService) serveCheckpoint(w http.ResponseWriter, r *http.Request) {
	for attempt := 0; ; attempt++ {
		path, seq, ok, err := wal.LatestCheckpointInfo(s.log.Dir())
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		if !ok {
			http.Error(w, "no checkpoint yet", http.StatusNotFound)
			return
		}
		f, err := os.Open(path)
		if err != nil {
			if os.IsNotExist(err) && attempt < 5 {
				continue
			}
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		defer f.Close()
		fi, err := f.Stat()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Length", strconv.FormatInt(fi.Size(), 10))
		w.Header().Set(HdrCkptSeq, strconv.FormatUint(seq, 10))
		if r.Method != http.MethodHead {
			io.Copy(w, f)
		}
		return
	}
}

func (s *LogService) serveSegment(w http.ResponseWriter, r *http.Request, seq uint64) {
	q := r.URL.Query()
	from, err := strconv.ParseInt(q.Get("from"), 10, 64)
	if err != nil || from < 0 {
		from = 0
	}
	var wait time.Duration
	if ms, err := strconv.ParseInt(q.Get("wait"), 10, 64); err == nil && ms > 0 {
		wait = min(time.Duration(ms)*time.Millisecond, maxWait)
	}
	maxBytes := int64(defaultMaxChunk)
	if m, err := strconv.ParseInt(q.Get("max"), 10, 64); err == nil && m > 0 {
		maxBytes = min(m, maxMaxChunk)
	}

	deadline := time.Now().Add(wait)
	for {
		info, live := s.segInfo(seq)
		if !live {
			if segs := s.log.SegmentStatus(); len(segs) > 0 && seq < segs[0].Seq {
				// Compacted away: the follower re-bootstraps from the
				// checkpoint that covered it.
				if _, ckSeq, ok, err := wal.LatestCheckpointInfo(s.log.Dir()); err == nil && ok {
					w.Header().Set(HdrCkptSeq, strconv.FormatUint(ckSeq, 10))
				}
				http.Error(w, "segment compacted", http.StatusGone)
				return
			}
			http.Error(w, "no such segment", http.StatusNotFound)
			return
		}
		if from > info.Size {
			// The primary's log ends before the follower's position: the
			// log rewound (a crash under a relaxed fsync policy lost the
			// tail). The follower holds state the primary never re-served —
			// divergence, its call to make.
			s.describe(w, seq, from, from, info)
			http.Error(w, "offset beyond segment end", http.StatusRequestedRangeNotSatisfiable)
			return
		}
		if from < info.Size {
			s.sendChunk(w, r, seq, from, info, maxBytes)
			return
		}
		if info.Sealed {
			// Caught up on a sealed segment: tell the follower so it
			// advances to the next one.
			s.describe(w, seq, from, from, info)
			w.WriteHeader(http.StatusNoContent)
			return
		}
		// Caught up on the active segment: long-poll for new bytes.
		tail, ch := s.log.TailState()
		if tail.Seq != seq || tail.Offset > from {
			continue // the tail moved between the size check and here
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			s.describe(w, seq, from, from, info)
			w.WriteHeader(http.StatusNoContent)
			return
		}
		t := time.NewTimer(remain)
		select {
		case <-ch:
			t.Stop()
			mLongpollWakeups.Inc()
		case <-t.C:
		case <-r.Context().Done():
			t.Stop()
			return
		}
	}
}

func (s *LogService) segInfo(seq uint64) (wal.SegmentInfo, bool) {
	for _, seg := range s.log.SegmentStatus() {
		if seg.Seq == seq {
			return seg, true
		}
	}
	return wal.SegmentInfo{}, false
}

// describe stamps the standard feed headers for a response whose body
// covers [from, end) of segment seq (from == end for empty responses).
func (s *LogService) describe(w http.ResponseWriter, seq uint64, from, end int64, info wal.SegmentInfo) {
	h := w.Header()
	h.Set(HdrSegment, strconv.FormatUint(seq, 10))
	h.Set(HdrFrom, strconv.FormatInt(from, 10))
	h.Set(HdrSize, strconv.FormatInt(info.Size, 10))
	h.Set(HdrSealed, strconv.FormatBool(info.Sealed))
	tail := s.log.TailPos()
	h.Set(HdrTailSegment, strconv.FormatUint(tail.Seq, 10))
	h.Set(HdrTailOffset, strconv.FormatInt(tail.Offset, 10))
	var behind int64
	for _, seg := range s.log.SegmentStatus() {
		switch {
		case seg.Seq == seq:
			behind += max(seg.Size-end, 0)
		case seg.Seq > seq:
			behind += seg.Size
		}
	}
	h.Set(HdrBehind, strconv.FormatInt(behind, 10))
	h.Set(HdrRecords, strconv.FormatInt(s.log.AppendedRecords(), 10))
}

func (s *LogService) sendChunk(w http.ResponseWriter, r *http.Request, seq uint64, from int64, info wal.SegmentInfo, maxBytes int64) {
	n := min(info.Size-from, maxBytes)
	f, err := os.Open(wal.SegmentPath(s.log.Dir(), seq))
	if err != nil {
		if os.IsNotExist(err) {
			// Compacted between the size check and the open.
			http.Error(w, "segment compacted", http.StatusGone)
			return
		}
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	defer f.Close()
	buf := make([]byte, n)
	if _, err := io.ReadFull(io.NewSectionReader(f, from, n), buf); err != nil && !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	s.describe(w, seq, from, from+n, info)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.FormatInt(n, 10))
	if r.Method != http.MethodHead {
		w.Write(buf)
	}
}
