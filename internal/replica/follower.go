package replica

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"xtq/internal/store"
	"xtq/internal/wal"
	"xtq/internal/xerr"
)

// Options configures a Follower.
type Options struct {
	// Primary is the primary xtqd's base URL (its /wal endpoints are
	// derived from it).
	Primary string
	// Dir, when non-empty, persists the follower's state — periodic
	// local checkpoints plus the replay position — so a restart resumes
	// tailing where it stopped instead of re-bootstrapping. Empty runs
	// fully in memory.
	Dir string
	// Replay configures how records re-evaluate (compiler, method,
	// parser depth). The follower may use a different method than the
	// primary: replay is method-independent.
	Replay store.ReplayOptions
	// HistoryDepth is the store's per-document snapshot ring size
	// (0 = store.DefaultHistoryDepth, negative disables).
	HistoryDepth int
	// CheckpointEvery writes a local checkpoint after this many applied
	// log bytes (only with Dir). Default 8 MiB; negative disables.
	CheckpointEvery int64
	// Poll is the long-poll wait per feed request. Default 2s.
	Poll time.Duration
	// MaxFetch caps bytes per feed response. Default 4 MiB; grows
	// automatically when a single record exceeds it.
	MaxFetch int64
	// Client overrides the HTTP client (tests inject failures here).
	Client *http.Client
	// Logf, when set, receives replication progress lines.
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.CheckpointEvery == 0 {
		o.CheckpointEvery = 8 << 20
	}
	if o.Poll <= 0 {
		o.Poll = 2 * time.Second
	}
	if o.MaxFetch <= 0 {
		o.MaxFetch = defaultMaxChunk
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// Stats is a point-in-time reading of a follower's replication state.
type Stats struct {
	// Position is the next log byte the follower will fetch —
	// everything before it is applied.
	Position wal.Pos
	// Applied and AppliedBytes count records and bytes applied since
	// this process started.
	Applied      int64
	AppliedBytes int64
	// Tail is the primary's tail as of the last successful fetch.
	Tail wal.Pos
	// BehindBytes is the byte lag reported by the last fetch; -1 before
	// the first successful fetch.
	BehindBytes int64
	// BehindRecords is the record ("version") lag: primary commits not
	// yet applied here. -1 until the follower has fully caught up once
	// (the baseline that makes the primary's record counter comparable).
	BehindRecords int64
	// Connected reports whether the last feed request succeeded.
	Connected bool
	// Promoted reports a promoted (now writable) follower.
	Promoted bool
	// Err is the sticky failure that stopped tailing ("" while
	// healthy) — always a divergence or corruption, never a transient
	// network error.
	Err string
}

// Follower replicates one primary into a local read-only store by
// tailing its WAL feed and replaying every record through the store's
// recovery machinery. Reads on Store() are lock-free and isolated, as
// on any store; writes fail typed until Promote.
//
// The applier is a single goroutine; transient fetch failures retry
// with backoff, a compacted-away position re-bootstraps from the
// primary's checkpoint, and any verification failure — a garbled frame,
// a chain that does not link — stops tailing with a sticky typed
// Corrupt error naming the primary's segment and offset. A diverged
// follower keeps serving the reads it can prove; it never applies past
// the damage.
type Follower struct {
	st *store.Store
	o  Options
	c  *feedClient

	ctx    context.Context // canceled by Close/Promote
	cancel context.CancelFunc

	mu        sync.Mutex
	pos       wal.Pos // next byte to fetch
	gen       chan struct{}
	stats     Stats
	failed    error // sticky corrupt
	ckptKey   uint64
	sinceCkpt int64
	// recordBase anchors the primary's appended-record counter to this
	// follower's applied count, valid (haveBase) from the first full
	// catch-up until a primary restart breaks comparability.
	recordBase int64
	haveBase   bool

	promoted atomic.Bool
	stopOnce sync.Once
	done     chan struct{}
}

// positionFile is the on-disk replay position, written atomically next
// to the follower's local checkpoints. CkptKey names the checkpoint
// file (ckpt-<key>.ckpt) holding the store state at exactly
// Segment:Offset; a mismatch between the two files means a crash split
// the pair, and the follower re-bootstraps rather than guess.
type positionFile struct {
	Segment uint64 `json:"segment"`
	Offset  int64  `json:"offset"`
	CkptKey uint64 `json:"ckpt_key"`
}

// Start bootstraps a follower and begins tailing. With a Dir holding a
// consistent checkpoint + position pair it resumes locally; otherwise
// it bootstraps from the primary: fetch the newest checkpoint (if any),
// install it, and tail from the cut. Start fails if the primary is
// unreachable — a follower that never saw its primary has nothing sound
// to serve.
func Start(o Options) (*Follower, error) {
	o = o.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	f := &Follower{
		st:     store.NewFollower(o.HistoryDepth),
		o:      o,
		c:      newFeedClient(o.Primary, o.Client),
		ctx:    ctx,
		cancel: cancel,
		gen:    make(chan struct{}),
		done:   make(chan struct{}),
	}
	f.stats.BehindBytes = -1
	f.stats.BehindRecords = -1
	if o.Dir != "" {
		if err := os.MkdirAll(o.Dir, 0o755); err != nil {
			cancel()
			return nil, xerr.Wrap(xerr.IO, err)
		}
	}
	if !f.resumeLocal() {
		if err := f.bootstrap(ctx); err != nil {
			cancel()
			return nil, err
		}
	}
	go f.run()
	return f, nil
}

// Store returns the replica's document store: read-only until Promote,
// serving snapshots lock-free like any store.
func (f *Follower) Store() *store.Store { return f.st }

// Primary returns the primary's base URL.
func (f *Follower) Primary() string { return f.o.Primary }

// Err returns the sticky failure that stopped tailing, nil while
// healthy.
func (f *Follower) Err() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.failed
}

// Stats returns a point-in-time reading of the replication state.
func (f *Follower) Stats() Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	s := f.stats
	s.Position = f.pos
	s.Promoted = f.promoted.Load()
	if f.failed != nil {
		s.Err = f.failed.Error()
	}
	return s
}

// WaitMinVersion blocks until name's chain head reaches at least
// version — the read-your-writes wait. It returns nil immediately on a
// promoted follower (the local state is then authoritative). A context
// deadline returns the context error (the caller redirects to the
// primary); a sticky replication failure returns it typed.
func (f *Follower) WaitMinVersion(ctx context.Context, name string, version uint64) error {
	for {
		if v, ok := f.st.HeadVersion(name); ok && v >= version {
			return nil
		}
		if f.promoted.Load() {
			return nil
		}
		f.mu.Lock()
		failed := f.failed
		ch := f.gen
		f.mu.Unlock()
		if failed != nil {
			return failed
		}
		select {
		case <-ch:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// Promote stops replication and makes the store writable. The local
// version chains continue seamlessly: the next write to a document
// commits at lastReplicated+1, exactly as it would have on the primary.
func (f *Follower) Promote() {
	if !f.promoted.CompareAndSwap(false, true) {
		return
	}
	f.stopLoop()
	f.st.Promote()
	f.mu.Lock()
	f.bumpGen()
	f.mu.Unlock()
	f.o.Logf("replica: promoted at %s", f.pos)
}

// Close stops replication. The store stays readable (and writable, if
// promoted).
func (f *Follower) Close() error {
	f.stopLoop()
	return nil
}

func (f *Follower) stopLoop() {
	f.stopOnce.Do(func() {
		f.cancel()
		<-f.done
	})
}

// bumpGen wakes WaitMinVersion waiters. Callers hold f.mu.
func (f *Follower) bumpGen() {
	close(f.gen)
	f.gen = make(chan struct{})
}

// fail records the sticky replication failure and wakes waiters.
func (f *Follower) fail(err error) {
	f.mu.Lock()
	if f.failed == nil {
		f.failed = err
	}
	f.bumpGen()
	f.mu.Unlock()
	f.o.Logf("replica: replication stopped: %v", err)
}

// resumeLocal tries to restore state from Dir: a position file naming a
// checkpoint that exists and parses. Any inconsistency is a clean miss
// — the caller falls back to a remote bootstrap.
func (f *Follower) resumeLocal() bool {
	if f.o.Dir == "" {
		return false
	}
	b, err := os.ReadFile(filepath.Join(f.o.Dir, "position.json"))
	if err != nil {
		return false
	}
	var p positionFile
	if json.Unmarshal(b, &p) != nil || p.Segment == 0 {
		return false
	}
	ck, err := wal.ReadCheckpointFile(wal.CheckpointPath(f.o.Dir, p.CkptKey))
	if err != nil {
		return false
	}
	if f.st.ResetToLogged(ck.Docs, wal.CheckpointPath(f.o.Dir, p.CkptKey), f.o.Replay) != nil {
		return false
	}
	f.pos = wal.Pos{Seq: p.Segment, Offset: p.Offset}
	f.ckptKey = p.CkptKey
	f.st.SetReplPos(f.pos)
	f.o.Logf("replica: resumed from local checkpoint %d at %s", p.CkptKey, f.pos)
	return true
}

// bootstrap (re)initializes from the primary: fetch its newest
// checkpoint if one exists, install it wholesale, and position the tail
// at the cut. Called at Start and again whenever the feed reports the
// follower's position compacted away (410).
func (f *Follower) bootstrap(ctx context.Context) error {
	st, err := f.c.status(ctx)
	if err != nil {
		return err
	}
	var docs []wal.CheckpointDoc
	pos := wal.Pos{Seq: 1}
	if len(st.Segments) > 0 {
		pos.Seq = st.Segments[0].Segment
	}
	ckName := "primary checkpoint"
	if st.CheckpointSeq > 0 {
		path := filepath.Join(os.TempDir(), "xtq-bootstrap.ckpt")
		if f.o.Dir != "" {
			path = filepath.Join(f.o.Dir, "bootstrap.ckpt")
		}
		ck, ok, err := f.c.checkpoint(ctx, path)
		if err != nil {
			return err
		}
		defer os.Remove(path)
		if ok {
			docs = ck.Docs
			// Tail from just past the cut; segment CheckpointSeq+1 always
			// exists on the primary (its numbering floors above every
			// checkpoint). If a newer checkpoint already compacted it, the
			// first fetch 410s and we bootstrap again.
			pos = wal.Pos{Seq: ck.Seq + 1}
			ckName = path
		}
	}
	if err := f.st.ResetToLogged(docs, ckName, f.o.Replay); err != nil {
		return err
	}
	f.mu.Lock()
	f.pos = pos
	f.sinceCkpt = 0
	f.stats.Applied = 0
	f.stats.AppliedBytes = 0
	f.stats.BehindBytes = -1
	f.stats.BehindRecords = -1
	f.bumpGen()
	f.mu.Unlock()
	f.st.SetReplPos(pos)
	if f.o.Dir != "" {
		if err := f.checkpointLocal(); err != nil {
			return err
		}
	}
	f.o.Logf("replica: bootstrapped from primary at %s (%d docs)", pos, len(docs))
	return nil
}

// run is the applier loop: fetch, verify, apply, persist — forever,
// until Close/Promote or a sticky failure.
func (f *Follower) run() {
	defer close(f.done)
	defer f.persistPosition() // best effort on the way out
	backoff := 50 * time.Millisecond
	note := func(connected bool) {
		f.mu.Lock()
		f.stats.Connected = connected
		f.mu.Unlock()
		if connected {
			mConnected.Set(1)
		} else {
			mConnected.Set(0)
		}
	}
	for {
		if f.ctx.Err() != nil {
			return
		}
		f.mu.Lock()
		pos := f.pos
		f.mu.Unlock()
		ck, err := f.c.segment(f.ctx, pos.Seq, pos.Offset, f.o.Poll, f.o.MaxFetch)
		switch {
		case err == nil:
			note(true)
			backoff = 50 * time.Millisecond
			if !f.consume(pos, ck) {
				return // sticky failure recorded
			}
		case errors.Is(err, errGone):
			// Our position predates the primary's oldest live segment: a
			// checkpoint compacted it away while we were behind (or down).
			// Start over from the checkpoint.
			note(true)
			mRebootstraps.Inc()
			f.o.Logf("replica: position %s compacted on primary; re-bootstrapping", pos)
			if err := f.bootstrap(f.ctx); err != nil {
				if f.ctx.Err() != nil {
					return
				}
				f.o.Logf("replica: re-bootstrap failed: %v", err)
				backoff = f.sleep(backoff)
			}
		case errors.Is(err, errRewound), errors.Is(err, errNotYet):
			// The primary's log ends before our position (416), or the
			// segment we're mid-way through does not exist (404 — same
			// situation, one rotation later). We applied and possibly served
			// bytes the primary no longer has: divergence, not a retry.
			note(true)
			f.fail(xerr.New(xerr.Corrupt, pos.String(),
				"replica: primary log ends before our replay position (its unsynced tail was lost); local state has diverged"))
			return
		default:
			if f.ctx.Err() != nil {
				return
			}
			note(false)
			backoff = f.sleep(backoff)
		}
	}
}

func (f *Follower) sleep(backoff time.Duration) time.Duration {
	t := time.NewTimer(backoff)
	defer t.Stop()
	select {
	case <-t.C:
	case <-f.ctx.Done():
	}
	return min(backoff*2, 2*time.Second)
}

// consume decodes and applies every whole frame in ck, advancing the
// position past each applied record. It reports false when a sticky
// failure stopped the follower.
func (f *Follower) consume(pos wal.Pos, ck chunk) bool {
	buf := ck.data
	used := 0
	for {
		at := wal.Pos{Seq: pos.Seq, Offset: pos.Offset + int64(used)}
		rec, n, err := wal.DecodeRecord(buf[used:], at.String())
		if wal.IsShortFrame(err) {
			break
		}
		if err != nil {
			// The frame is complete but garbled — CRC mismatch or framing
			// violation. Typed Corrupt from the codec, position included.
			f.fail(err)
			return false
		}
		if err := f.st.ApplyLogged(rec, at, f.o.Replay); err != nil {
			f.fail(err)
			return false
		}
		used += n
		f.noteApplied(at.Offset+int64(n), int64(n))
	}
	if used == 0 && len(buf) > 0 && int64(len(buf)) >= f.o.MaxFetch {
		// A single record larger than the fetch window: widen it.
		f.o.MaxFetch = min(f.o.MaxFetch*2, maxMaxChunk)
	}

	f.mu.Lock()
	f.stats.Tail = ck.tail
	if ck.behind >= 0 {
		f.stats.BehindBytes = max(ck.behind, 0) + int64(len(buf)-used)
	}
	f.trackRecordLag(ck)
	end := f.pos
	mBehindBytes.Set(f.stats.BehindBytes)
	mBehindRecords.Set(f.stats.BehindRecords)
	f.mu.Unlock()

	// Finished a sealed segment: continue at the next one.
	if ck.sealed && end.Seq == pos.Seq && end.Offset >= ck.size && used == len(buf) {
		f.mu.Lock()
		f.pos = wal.Pos{Seq: pos.Seq + 1}
		f.mu.Unlock()
		f.st.SetReplPos(wal.Pos{Seq: pos.Seq + 1})
	}
	if f.o.Dir != "" && f.sinceCkptLoad() >= f.o.CheckpointEvery && f.o.CheckpointEvery > 0 {
		if err := f.checkpointLocal(); err != nil {
			f.o.Logf("replica: local checkpoint failed: %v", err)
		}
	}
	return true
}

func (f *Follower) noteApplied(endOffset, n int64) {
	mAppliedRecords.Inc()
	f.mu.Lock()
	f.pos.Offset = endOffset
	f.stats.Applied++
	f.stats.AppliedBytes += n
	f.sinceCkpt += n
	f.bumpGen()
	pos := f.pos
	f.mu.Unlock()
	f.st.SetReplPos(pos)
}

func (f *Follower) sinceCkptLoad() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.sinceCkpt
}

// trackRecordLag converts the primary's appended-record counter into a
// "versions behind" reading. The counter starts at the primary's Open,
// not at the log's origin, so it is only comparable after the follower
// has drained to the tail once: at that instant the baseline is
// (counter - applied), and from then on lag = counter - baseline -
// applied. A primary restart shrinks the counter and invalidates the
// baseline; lag reads -1 (unknown) until the next full catch-up.
// Callers hold f.mu.
func (f *Follower) trackRecordLag(ck chunk) {
	if ck.records < 0 {
		return
	}
	base := ck.records - f.stats.Applied
	switch {
	case f.stats.BehindBytes == 0:
		f.recordBase = base
		f.haveBase = true
		f.stats.BehindRecords = 0
	case f.haveBase:
		lag := ck.records - f.recordBase - f.stats.Applied
		if lag < 0 {
			f.haveBase = false // primary restarted; counter no longer comparable
			f.stats.BehindRecords = -1
		} else {
			f.stats.BehindRecords = lag
		}
	}
}

// checkpointLocal persists the follower's exact current state: a local
// checkpoint file holding every document (tombstones included) plus the
// position file naming it. The applier is this goroutine, so the
// capture is exact — the state is precisely "everything before pos".
// Both writes are atomic renames; a crash between them leaves a
// position file naming the previous checkpoint, which still pairs
// consistently (it described the previous position too — resumeLocal
// only trusts matched pairs).
func (f *Follower) checkpointLocal() error {
	f.mu.Lock()
	pos := f.pos
	key := f.ckptKey + 1
	f.mu.Unlock()

	caps := f.st.CaptureAll()
	cw, err := wal.NewCheckpointWriter(f.o.Dir, key, uint64(len(caps)))
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	for _, s := range caps {
		doc := wal.CheckpointDoc{Name: s.Name(), Version: s.Version(), Removed: s.Deleted()}
		if !s.Deleted() {
			buf.Reset()
			if err := s.WriteXML(&buf); err != nil {
				cw.Abort()
				return xerr.Wrap(xerr.IO, err)
			}
			doc.XML = buf.Bytes()
		}
		if err := cw.Add(doc); err != nil {
			cw.Abort()
			return err
		}
	}
	if err := cw.Close(); err != nil {
		return err
	}

	if err := writeAtomic(filepath.Join(f.o.Dir, "position.json"), positionFile{
		Segment: pos.Seq, Offset: pos.Offset, CkptKey: key,
	}); err != nil {
		return err
	}
	f.mu.Lock()
	f.ckptKey = key
	f.sinceCkpt = 0
	f.mu.Unlock()
	wal.RemoveCheckpointsBelow(f.o.Dir, key)
	f.o.Logf("replica: local checkpoint %d at %s (%d docs)", key, pos, len(caps))
	return nil
}

// persistPosition saves state on the way out of the applier loop. The
// position file must describe exactly the state in the checkpoint it
// names (a bare position update would claim records the checkpoint does
// not hold), so shutdown takes a full local checkpoint.
func (f *Follower) persistPosition() {
	if f.o.Dir == "" || f.Err() != nil {
		return
	}
	if err := f.checkpointLocal(); err != nil {
		f.o.Logf("replica: shutdown checkpoint failed: %v", err)
	}
}

func writeAtomic(path string, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return xerr.Wrap(xerr.IO, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return xerr.Wrap(xerr.IO, err)
	}
	return nil
}
