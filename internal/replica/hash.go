package replica

import "hash/fnv"

// PickNode returns the node that owns name under rendezvous
// (highest-random-weight) hashing: every (node, name) pair gets a
// pseudo-random weight and the highest weight wins. Unlike modular
// hashing, removing one node from the list reassigns only the names
// that node owned — every other name keeps its owner — and every router
// given the same node list agrees on the assignment without any shared
// state. Ties (astronomically unlikely with a 64-bit hash, but the
// router must be deterministic anyway) break toward the
// lexicographically smaller node string. An empty node list returns "".
func PickNode(name string, nodes []string) string {
	var (
		best   string
		bestW  uint64
		picked bool
	)
	for _, node := range nodes {
		w := weight(node, name)
		if !picked || w > bestW || (w == bestW && node < best) {
			best, bestW, picked = node, w, true
		}
	}
	return best
}

// weight hashes the (node, name) pair with FNV-1a, separating the two
// with a NUL so ("ab","c") and ("a","bc") cannot collide by
// concatenation. Raw FNV-1a has poor avalanche when inputs differ only
// in their last few bytes — two document names then produce nearby
// weights for every node and the same node wins the comparison every
// time — so the sum goes through a 64-bit finalizer (the murmur3
// fmix64 constants) to spread suffix differences across all bits.
func weight(node, name string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(node))
	h.Write([]byte{0})
	h.Write([]byte(name))
	return mix64(h.Sum64())
}

func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}
