package replica

import "xtq/internal/obs"

// Replication instruments on the process-wide obs registry. The lag
// gauges mirror Stats.BehindBytes/BehindRecords — including the -1
// "unknown" reading, so dashboards can tell "caught up" from "not yet
// comparable". Gauges ignore the obs kill switch by design.
var (
	mBehindBytes = obs.Default.Gauge("xtq_replica_behind_bytes",
		"Byte lag behind the primary's WAL tail (-1 before the first fetch).")
	mBehindRecords = obs.Default.Gauge("xtq_replica_behind_records",
		"Primary commits not yet applied here (-1 until first full catch-up).")
	mConnected = obs.Default.Gauge("xtq_replica_connected",
		"1 while the last feed request succeeded, 0 while disconnected.")
	mRebootstraps = obs.Default.Counter("xtq_replica_rebootstraps_total",
		"Re-bootstraps from the primary's checkpoint after compaction outran us.")
	mAppliedRecords = obs.Default.Counter("xtq_replica_applied_records_total",
		"WAL records fetched, verified and applied to the local store.")
	mLongpollWakeups = obs.Default.Counter("xtq_walfeed_longpoll_wakeups_total",
		"Feed long-polls woken by a new WAL append (primary side).")
)
