package replica

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"xtq/internal/core"
	"xtq/internal/sax"
	"xtq/internal/store"
	"xtq/internal/wal"
	"xtq/internal/xerr"
)

const partsXML = `<db>` +
	`<part><pname>keyboard</pname><supplier><sname>HP</sname><price>15</price></supplier></part>` +
	`<part><pname>mouse</pname><supplier><sname>Dell</sname><price>9</price></supplier></part>` +
	`</db>`

// newPrimary opens a durable store and serves its WAL feed the way
// xtqd does: mounted under /wal.
func newPrimary(t *testing.T, opts store.Options) (*store.Store, *httptest.Server) {
	t.Helper()
	if opts.Fsync == 0 {
		opts.Fsync = wal.FsyncNone
	}
	st, err := store.Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	mux := http.NewServeMux()
	mux.Handle("/wal/", http.StripPrefix("/wal", NewLogService(st.WAL())))
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return st, srv
}

func put(t *testing.T, st *store.Store, name, xml string) {
	t.Helper()
	doc, err := sax.ParseString(xml)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Put(name, doc, true); err != nil {
		t.Fatal(err)
	}
}

func applyQ(t *testing.T, st *store.Store, name, src string) uint64 {
	t.Helper()
	c, err := core.MustParseQuery(src).Compile()
	if err != nil {
		t.Fatal(err)
	}
	snap, _, err := st.Apply(context.Background(), name, c, core.MethodTopDown)
	if err != nil {
		t.Fatal(err)
	}
	return snap.Version()
}

// serialize renders a document's current snapshot, failing the test on
// a read error.
func serialize(t *testing.T, st *store.Store, name string) (uint64, string) {
	t.Helper()
	snap, err := st.Snapshot(name)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := snap.WriteXML(&buf); err != nil {
		t.Fatal(err)
	}
	return snap.Version(), buf.String()
}

// waitConverged blocks until the follower has applied every byte the
// primary's log holds.
func waitConverged(t *testing.T, primary *store.Store, f *Follower) {
	t.Helper()
	tail := primary.WAL().TailPos()
	deadline := time.Now().Add(10 * time.Second)
	for {
		s := f.Stats()
		if s.Position.Seq > tail.Seq || (s.Position.Seq == tail.Seq && s.Position.Offset >= tail.Offset) {
			return
		}
		if err := f.Err(); err != nil {
			t.Fatalf("follower failed while converging: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never converged: at %v, want %v", s.Position, tail)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// assertIdentical compares every document byte-for-byte between
// primary and follower.
func assertIdentical(t *testing.T, primary, follower *store.Store) {
	t.Helper()
	names := primary.Names()
	if got := follower.Names(); len(got) != len(names) {
		t.Fatalf("follower has %d documents, primary %d", len(got), len(names))
	}
	for _, name := range names {
		pv, px := serialize(t, primary, name)
		fv, fx := serialize(t, follower, name)
		if pv != fv {
			t.Fatalf("%q: follower at version %d, primary at %d", name, fv, pv)
		}
		if px != fx {
			t.Fatalf("%q@%d: follower bytes differ from primary", name, pv)
		}
	}
}

func TestLogServiceStatusAndSegmentBytes(t *testing.T) {
	st, srv := newPrimary(t, store.Options{})
	put(t, st, "parts", partsXML)
	applyQ(t, st, "parts", `transform copy $a := doc("parts") modify do delete $a//price return $a`)

	resp, err := http.Get(srv.URL + "/wal/status")
	if err != nil {
		t.Fatal(err)
	}
	var status Status
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if status.Records != 2 || len(status.Segments) != 1 || status.Segments[0].Sealed {
		t.Fatalf("status = %+v, want 2 records in one active segment", status)
	}
	if status.Tail.Segment != status.Segments[0].Segment || status.Tail.Offset != status.Segments[0].Size {
		t.Fatalf("status tail %+v disagrees with segment %+v", status.Tail, status.Segments[0])
	}

	// The segment bytes decode with the stock codec into the two records.
	resp, err = http.Get(fmt.Sprintf("%s/wal/segments/%d?from=0", srv.URL, status.Tail.Segment))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("segment fetch: %s", resp.Status)
	}
	var body bytes.Buffer
	body.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.Header.Get(HdrBehind) != "0" {
		t.Fatalf("Behind = %q, want 0", resp.Header.Get(HdrBehind))
	}
	var kinds []wal.Kind
	b := body.Bytes()
	for len(b) > 0 {
		rec, n, err := wal.DecodeRecord(b, "resp")
		if err != nil {
			t.Fatalf("feed bytes do not decode: %v", err)
		}
		kinds = append(kinds, rec.Kind)
		b = b[n:]
	}
	if len(kinds) != 2 || kinds[0] != wal.KindPut || kinds[1] != wal.KindUpdate {
		t.Fatalf("feed kinds = %v, want [put update]", kinds)
	}

	// Caught up + no wait → 204 with geometry headers.
	resp, err = http.Get(fmt.Sprintf("%s/wal/segments/%d?from=%d", srv.URL, status.Tail.Segment, status.Tail.Offset))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("caught-up fetch = %s, want 204", resp.Status)
	}

	// Beyond the end → 416 (the rewind signal).
	resp, err = http.Get(fmt.Sprintf("%s/wal/segments/%d?from=%d", srv.URL, status.Tail.Segment, status.Tail.Offset+999))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestedRangeNotSatisfiable {
		t.Fatalf("beyond-end fetch = %s, want 416", resp.Status)
	}

	// Unknown high segment → 404; segment 0 → 400.
	for path, want := range map[string]int{"/wal/segments/99": 404, "/wal/segments/0": 400} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("%s = %s, want %d", path, resp.Status, want)
		}
	}
}

func TestLogServiceLongPollWakesOnAppend(t *testing.T) {
	st, srv := newPrimary(t, store.Options{})
	put(t, st, "parts", partsXML)
	tail := st.WAL().TailPos()

	start := time.Now()
	type result struct {
		code int
		n    int64
		err  error
	}
	ch := make(chan result, 1)
	go func() {
		resp, err := http.Get(fmt.Sprintf("%s/wal/segments/%d?from=%d&wait=8000", srv.URL, tail.Seq, tail.Offset))
		if err != nil {
			ch <- result{err: err}
			return
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		n, _ := buf.ReadFrom(resp.Body)
		ch <- result{code: resp.StatusCode, n: n}
	}()
	time.Sleep(50 * time.Millisecond) // let the poll park
	applyQ(t, st, "parts", `transform copy $a := doc("parts") modify do delete $a//price return $a`)
	r := <-ch
	if r.err != nil || r.code != http.StatusOK || r.n == 0 {
		t.Fatalf("long poll = %+v", r)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("long poll waited out its full window despite an append")
	}
}

func TestFollowerReplicatesLiveCommits(t *testing.T) {
	st, srv := newPrimary(t, store.Options{})
	put(t, st, "parts", partsXML)

	f, err := Start(Options{Primary: srv.URL})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	if !f.Store().ReadOnly() {
		t.Fatal("follower store must be read-only")
	}
	v := applyQ(t, st, "parts", `transform copy $a := doc("parts") modify do delete $a//price return $a`)
	put(t, st, "extra", `<x><y/></x>`)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := f.WaitMinVersion(ctx, "parts", v); err != nil {
		t.Fatal(err)
	}
	waitConverged(t, st, f)
	assertIdentical(t, st, f.Store())

	s := f.Stats()
	if !s.Connected || s.Err != "" {
		t.Fatalf("stats = %+v, want connected and healthy", s)
	}
	if s.BehindBytes != 0 {
		t.Fatalf("BehindBytes = %d after convergence", s.BehindBytes)
	}
}

func TestFollowerBootstrapsFromCheckpointAndSurvivesCompaction(t *testing.T) {
	// Small segments force rotations; explicit checkpoints compact.
	st, srv := newPrimary(t, store.Options{SegmentBytes: 1 << 10})
	put(t, st, "parts", partsXML)
	for i := 0; i < 5; i++ {
		applyQ(t, st, "parts", `transform copy $a := doc("parts") modify do insert <audit/> into $a/db return $a`)
	}
	if _, err := st.Checkpoint(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Bootstrap lands on the checkpoint, then tails.
	f, err := Start(Options{Primary: srv.URL})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	waitConverged(t, st, f)
	assertIdentical(t, st, f.Store())

	// While the follower is parked at the tail, more writes + another
	// checkpoint compact the segments it already consumed — tailing must
	// simply continue (its position is past the compacted range).
	for i := 0; i < 5; i++ {
		applyQ(t, st, "parts", `transform copy $a := doc("parts") modify do insert <more/> into $a/db return $a`)
	}
	if _, err := st.Checkpoint(context.Background()); err != nil {
		t.Fatal(err)
	}
	applyQ(t, st, "parts", `transform copy $a := doc("parts") modify do insert <tail/> into $a/db return $a`)
	waitConverged(t, st, f)
	assertIdentical(t, st, f.Store())
	if err := f.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestFollowerResumesFromLocalState(t *testing.T) {
	st, srv := newPrimary(t, store.Options{})
	put(t, st, "parts", partsXML)
	dir := t.TempDir()

	f, err := Start(Options{Primary: srv.URL, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	waitConverged(t, st, f)
	f.Close() // persists a local checkpoint + position

	// Commits while the follower is down.
	v := applyQ(t, st, "parts", `transform copy $a := doc("parts") modify do delete $a//supplier return $a`)

	f2, err := Start(Options{Primary: srv.URL, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := f2.WaitMinVersion(ctx, "parts", v); err != nil {
		t.Fatal(err)
	}
	waitConverged(t, st, f2)
	assertIdentical(t, st, f2.Store())
}

func TestFollowerPromotionContinuesChains(t *testing.T) {
	st, srv := newPrimary(t, store.Options{})
	put(t, st, "parts", partsXML)
	v := applyQ(t, st, "parts", `transform copy $a := doc("parts") modify do delete $a//price return $a`)

	f, err := Start(Options{Primary: srv.URL})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	waitConverged(t, st, f)

	// Primary dies hard; promote the replica.
	srv.CloseClientConnections()
	srv.Close()
	f.Promote()
	if !f.Stats().Promoted {
		t.Fatal("stats do not report promotion")
	}
	if f.Store().ReadOnly() {
		t.Fatal("promoted follower still read-only")
	}

	// The next commit continues the replicated chain without a gap.
	got := applyQ(t, f.Store(), "parts", `transform copy $a := doc("parts") modify do insert <after-failover/> into $a/db return $a`)
	if got != v+1 {
		t.Fatalf("post-promotion version = %d, want %d", got, v+1)
	}
	// WaitMinVersion is immediately satisfied on a promoted follower,
	// even for versions never replicated: local state is authoritative.
	if err := f.WaitMinVersion(context.Background(), "parts", got+100); err != nil {
		t.Fatal(err)
	}
}

func TestWaitMinVersionTimesOutWhileLagging(t *testing.T) {
	st, srv := newPrimary(t, store.Options{})
	put(t, st, "parts", partsXML)
	f, err := Start(Options{Primary: srv.URL})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	waitConverged(t, st, f)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	err = f.WaitMinVersion(ctx, "parts", 99)
	if err == nil || ctx.Err() == nil {
		t.Fatalf("WaitMinVersion for an unreached version = %v, want context timeout", err)
	}
}

func TestGarbledFeedBytesAreTypedCorrupt(t *testing.T) {
	st, srv := newPrimary(t, store.Options{})
	put(t, st, "parts", partsXML)

	// A proxy that flips a byte inside every frame payload it relays.
	garble := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		resp, err := http.Get(srv.URL + r.URL.String())
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		b := buf.Bytes()
		for k, vs := range resp.Header {
			w.Header()[k] = vs
		}
		if resp.StatusCode == http.StatusOK && len(b) > 12 && r.URL.Path != "/wal/checkpoint" {
			b[12] ^= 0xFF
		}
		w.Header().Set("Content-Length", fmt.Sprint(len(b)))
		w.WriteHeader(resp.StatusCode)
		w.Write(b)
	}))
	defer garble.Close()

	f, err := Start(Options{Primary: garble.URL})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	deadline := time.Now().Add(10 * time.Second)
	for f.Err() == nil {
		if time.Now().After(deadline) {
			t.Fatal("garbled feed never surfaced an error")
		}
		time.Sleep(2 * time.Millisecond)
	}
	var xe *xerr.Error
	if err := f.Err(); !asXerr(err, &xe) || xe.Kind != xerr.Corrupt {
		t.Fatalf("garbled feed error = %v, want typed Corrupt", f.Err())
	}
	if xe.Pos == "" {
		t.Fatalf("corrupt error has no position: %v", xe)
	}
	// Divergence never happened: the poisoned record was not applied.
	if _, err := f.Store().Snapshot("parts"); err == nil {
		t.Fatal("follower applied a garbled record")
	}
}

func asXerr(err error, xe **xerr.Error) bool {
	e, ok := err.(*xerr.Error)
	if ok {
		*xe = e
	}
	return ok
}
