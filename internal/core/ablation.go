package core

import (
	"context"

	"xtq/internal/automaton"
	"xtq/internal/tree"
)

// EvalTopDownNoPrune is EvalTopDown with the empty-state-set shortcut
// (Fig. 3 lines 2-3) disabled: the traversal continues into subtrees no
// automaton state can reach. It computes the same result and exists only
// as an ablation — benchmarked against EvalTopDown it isolates how much of
// the topDown method's advantage over whole-tree approaches comes from
// subtree pruning.
func EvalTopDownNoPrune(ctx context.Context, c *Compiled, doc *tree.Node, check QualChecker) (*tree.Node, error) {
	can := NewCanceler(ctx)
	var process func(n *tree.Node, s automaton.StateSet) []*tree.Node
	process = func(n *tree.Node, s automaton.StateSet) []*tree.Node {
		if can.Stopped() {
			return nil
		}
		m := c.NFA
		next := m.Step(s, n.Label, func(id int) bool { return check.Check(&m.States[id], n) })
		u := &c.Query.Update
		matched := m.Matches(next)
		if matched {
			switch u.Op {
			case Delete:
				return nil
			case Replace:
				return []*tree.Node{u.Elem.DeepCopy()}
			}
		}
		changed := false
		newChildren := make([]*tree.Node, 0, len(n.Children)+1)
		for _, ch := range n.Children {
			if ch.Kind != tree.Element {
				newChildren = append(newChildren, ch)
				continue
			}
			r := process(ch, next)
			if len(r) != 1 || r[0] != ch {
				changed = true
			}
			newChildren = append(newChildren, r...)
		}
		if matched && u.Op == Insert {
			newChildren = append(newChildren, u.Elem.DeepCopy())
			changed = true
		}
		relabel := matched && u.Op == Rename
		if !changed && !relabel {
			return []*tree.Node{n}
		}
		out := &tree.Node{Kind: tree.Element, Label: n.Label, Attrs: n.Attrs, Children: newChildren}
		if relabel {
			out.Label = u.Label
		}
		return []*tree.Node{out}
	}

	s0 := c.NFA.InitialSet()
	result := tree.NewDocument(nil)
	for _, ch := range doc.Children {
		if ch.Kind != tree.Element {
			result.Children = append(result.Children, ch)
			continue
		}
		result.Children = append(result.Children, process(ch, s0)...)
	}
	if err := can.Err(); err != nil {
		return nil, err
	}
	return result, nil
}
