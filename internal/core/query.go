package core

import (
	"errors"
	"fmt"
	"strings"

	"xtq/internal/automaton"
	"xtq/internal/sax"
	"xtq/internal/tree"
	"xtq/internal/xerr"
	"xtq/internal/xpath"
)

// Query is a transform query
//
//	transform copy $a := doc("T") modify do u($a) return $a.
type Query struct {
	Var    string // variable name without '$', e.g. "a"
	Doc    string // the doc(...) argument, informational
	Update Update
}

// Validate checks the query.
func (q *Query) Validate() error {
	if q.Var == "" {
		return xerr.New(xerr.Compile, "", "core: transform query without variable")
	}
	return q.Update.Validate()
}

// String renders the query in the W3C draft surface syntax used throughout
// the paper. The rendering round-trips through ParseQuery (the engine's
// cache relies on it), so the doc() argument is quoted with whichever
// quote character it does not contain rather than Go escaping.
func (q *Query) String() string {
	v := "$" + q.Var
	return fmt.Sprintf("transform copy %s := doc(%s) modify do %s return %s",
		v, quoteDocArg(q.Doc), q.Update.String(v), v)
}

// quoteDocArg renders a doc() argument in surface syntax. The parser
// takes everything between the quotes literally (no escapes), so an
// argument containing both quote characters is not expressible; fall
// back to Go quoting for display — ParseQuery will reject it, which
// callers that need round-tripping detect.
func quoteDocArg(s string) string {
	if !strings.Contains(s, `"`) {
		return `"` + s + `"`
	}
	if !strings.Contains(s, "'") {
		return "'" + s + "'"
	}
	return fmt.Sprintf("%q", s)
}

// Compiled is a transform query with its selecting NFA built; evaluation
// methods operate on compiled queries so the O(|p|) automaton construction
// (§3.4) happens once. A Compiled is immutable after construction and safe
// for concurrent use by multiple goroutines.
type Compiled struct {
	Query *Query
	NFA   *automaton.NFA
}

// Compile validates the query and builds its selecting NFA.
func (q *Query) Compile() (*Compiled, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	nfa, err := automaton.New(q.Update.Path)
	if err != nil {
		return nil, xerr.Wrap(xerr.Compile, err)
	}
	return &Compiled{Query: q, NFA: nfa}, nil
}

// ParseQuery parses a transform query in surface syntax, e.g.
//
//	transform copy $a := doc("foo") modify do delete $a//price return $a
//	transform copy $a := doc("foo") modify
//	    do insert <supplier><sname>HP</sname></supplier> into $a//part
//	    return $a
//
// The embedded update forms are: "insert ELEM into $v/p", "delete $v/p",
// "replace $v/p with ELEM" and "rename $v/p as label", where ELEM is a
// literal XML element and p an expression of the fragment X. Failures are
// reported as *xerr.Error with kind Parse and a byte offset into the
// (whitespace-trimmed) query text.
func ParseQuery(src string) (*Query, error) {
	p := &qscan{src: strings.TrimSpace(src)}
	s := p.src
	var err error
	if s, err = p.expectWord(s, "transform"); err != nil {
		return nil, err
	}
	if s, err = p.expectWord(s, "copy"); err != nil {
		return nil, err
	}
	varName, s, err := p.parseVar(s)
	if err != nil {
		return nil, err
	}
	if s, err = p.expectToken(s, ":="); err != nil {
		return nil, err
	}
	docArg, s, err := p.parseDocCall(s)
	if err != nil {
		return nil, err
	}
	if s, err = p.expectWord(s, "modify"); err != nil {
		return nil, err
	}
	if s, err = p.expectWord(s, "do"); err != nil {
		return nil, err
	}
	u, s, err := p.parseUpdate(s, varName)
	if err != nil {
		return nil, err
	}
	if s, err = p.expectWord(s, "return"); err != nil {
		return nil, err
	}
	retVar, s, err := p.parseVar(s)
	if err != nil {
		return nil, err
	}
	if retVar != varName {
		return nil, p.errAt(s, "core: return variable $%s does not match copied $%s", retVar, varName)
	}
	if strings.TrimSpace(s) != "" {
		return nil, p.errAt(s, "core: trailing input after transform query: %q", strings.TrimSpace(s))
	}
	q := &Query{Var: varName, Doc: docArg, Update: *u}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}

// MustParseQuery parses src and panics on error; for tests and examples.
func MustParseQuery(src string) *Query {
	q, err := ParseQuery(src)
	if err != nil {
		panic(err)
	}
	return q
}

// qscan threads the full query text through the parse helpers so every
// error can report its byte offset. The helpers receive and return
// suffixes of src; the offset of a failure is src's length minus the
// remaining suffix's.
type qscan struct {
	src string
}

// errAt builds a Parse error positioned at the start of the remaining
// input rest, which must be a suffix of p.src.
func (p *qscan) errAt(rest, format string, args ...any) *xerr.Error {
	off := len(p.src) - len(rest)
	if off < 0 {
		off = 0
	}
	return xerr.New(xerr.Parse, fmt.Sprintf("offset %d", off), format, args...)
}

func (p *qscan) expectWord(s, word string) (string, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, word) {
		return "", p.errAt(s, "core: expected %q at %q", word, truncate(s))
	}
	rest := s[len(word):]
	if rest != "" && !isWordBreak(rest[0]) {
		return "", p.errAt(s, "core: expected %q at %q", word, truncate(s))
	}
	return rest, nil
}

func isWordBreak(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '$' || c == '<' || c == '(' || c == ':'
}

func (p *qscan) expectToken(s, tok string) (string, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, tok) {
		return "", p.errAt(s, "core: expected %q at %q", tok, truncate(s))
	}
	return s[len(tok):], nil
}

func (p *qscan) parseVar(s string) (string, string, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "$") {
		return "", "", p.errAt(s, "core: expected a variable at %q", truncate(s))
	}
	i := 1
	for i < len(s) && (s[i] == '_' || s[i] >= 'a' && s[i] <= 'z' || s[i] >= 'A' && s[i] <= 'Z' || s[i] >= '0' && s[i] <= '9') {
		i++
	}
	if i == 1 {
		return "", "", p.errAt(s, "core: empty variable name at %q", truncate(s))
	}
	return s[1:i], s[i:], nil
}

func (p *qscan) parseDocCall(s string) (string, string, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "doc(") {
		return "", "", p.errAt(s, "core: expected doc(...) at %q", truncate(s))
	}
	s = s[len("doc("):]
	s = strings.TrimSpace(s)
	if s == "" || (s[0] != '"' && s[0] != '\'') {
		return "", "", p.errAt(s, "core: doc() argument must be a quoted string")
	}
	quote := s[0]
	end := strings.IndexByte(s[1:], quote)
	if end < 0 {
		return "", "", p.errAt(s, "core: unterminated doc() argument")
	}
	arg := s[1 : 1+end]
	s = strings.TrimSpace(s[2+end:])
	if !strings.HasPrefix(s, ")") {
		return "", "", p.errAt(s, "core: expected ')' after doc() argument")
	}
	return arg, s[1:], nil
}

func (p *qscan) parseUpdate(s, varName string) (*Update, string, error) {
	s = strings.TrimSpace(s)
	switch {
	case strings.HasPrefix(s, "insert"):
		s = s[len("insert"):]
		elem, rest, err := p.parseElem(s)
		if err != nil {
			return nil, "", err
		}
		if rest, err = p.expectWord(rest, "into"); err != nil {
			return nil, "", err
		}
		path, rest, err := p.parseVarPath(rest, varName)
		if err != nil {
			return nil, "", err
		}
		return &Update{Op: Insert, Path: path, Elem: elem}, rest, nil
	case strings.HasPrefix(s, "delete"):
		path, rest, err := p.parseVarPath(s[len("delete"):], varName)
		if err != nil {
			return nil, "", err
		}
		return &Update{Op: Delete, Path: path}, rest, nil
	case strings.HasPrefix(s, "replace"):
		path, rest, err := p.parseVarPath(s[len("replace"):], varName)
		if err != nil {
			return nil, "", err
		}
		if rest, err = p.expectWord(rest, "with"); err != nil {
			return nil, "", err
		}
		elem, rest, err := p.parseElem(rest)
		if err != nil {
			return nil, "", err
		}
		return &Update{Op: Replace, Path: path, Elem: elem}, rest, nil
	case strings.HasPrefix(s, "rename"):
		path, rest, err := p.parseVarPath(s[len("rename"):], varName)
		if err != nil {
			return nil, "", err
		}
		if rest, err = p.expectWord(rest, "as"); err != nil {
			return nil, "", err
		}
		rest = strings.TrimSpace(rest)
		i := 0
		for i < len(rest) && !isWordBreak(rest[i]) {
			i++
		}
		if i == 0 {
			return nil, "", p.errAt(rest, "core: rename requires a label")
		}
		return &Update{Op: Rename, Path: path, Label: rest[:i]}, rest[i:], nil
	default:
		return nil, "", p.errAt(s, "core: expected an update (insert/delete/replace/rename) at %q", truncate(s))
	}
}

// parseVarPath parses "$v/path" or "$v//path".
func (p *qscan) parseVarPath(s, varName string) (*xpath.Path, string, error) {
	v, rest, err := p.parseVar(s)
	if err != nil {
		return nil, "", err
	}
	if v != varName {
		return nil, "", p.errAt(s, "core: update path uses $%s, query copies $%s", v, varName)
	}
	rest = strings.TrimLeft(rest, " \t\n\r")
	if !strings.HasPrefix(rest, "/") {
		return nil, "", p.errAt(rest, "core: expected a path after $%s", varName)
	}
	// The path extends to the next top-level keyword (return/into/with/as)
	// or end of string; paths cannot contain those words outside string
	// literals, so scan with quote awareness.
	end := pathEnd(rest)
	expr := strings.TrimSpace(rest[:end])
	path, err := xpath.Parse(expr)
	if err != nil {
		return nil, "", p.wrapPathErr(rest, err)
	}
	return path, rest[end:], nil
}

// wrapPathErr re-positions an xpath syntax error relative to the whole
// query: the path's offset within the query plus the error's offset within
// the path.
func (p *qscan) wrapPathErr(rest string, err error) error {
	off := len(p.src) - len(rest)
	if off < 0 {
		off = 0
	}
	var se *xpath.SyntaxError
	if errors.As(err, &se) {
		return &xerr.Error{
			Kind: xerr.Parse,
			Pos:  fmt.Sprintf("offset %d", off+se.Pos),
			Msg:  se.Error(),
			Err:  err,
		}
	}
	return &xerr.Error{Kind: xerr.Parse, Pos: fmt.Sprintf("offset %d", off), Err: err}
}

// pathEnd returns the index where the path expression ends: the first
// keyword boundary (" return", " with", " as", " into") outside quotes.
func pathEnd(s string) int {
	inQuote := byte(0)
	for i := 0; i < len(s); i++ {
		c := s[i]
		if inQuote != 0 {
			if c == inQuote {
				inQuote = 0
			}
			continue
		}
		if c == '"' || c == '\'' {
			inQuote = c
			continue
		}
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			rest := strings.TrimLeft(s[i:], " \t\n\r")
			for _, kw := range []string{"return", "with", "as", "into"} {
				if strings.HasPrefix(rest, kw) {
					tail := rest[len(kw):]
					if tail == "" || isWordBreak(tail[0]) || tail[0] == '/' {
						return i
					}
				}
			}
		}
	}
	return len(s)
}

// parseElem parses a literal XML element from the head of s and returns it
// with the unconsumed remainder.
func (p *qscan) parseElem(s string) (*tree.Node, string, error) {
	s2 := strings.TrimLeft(s, " \t\n\r")
	if !strings.HasPrefix(s2, "<") {
		return nil, "", p.errAt(s2, "core: expected a literal XML element at %q", truncate(s2))
	}
	end, err := elemEnd(s2)
	if err != nil {
		return nil, "", p.errAt(s2, "core: %v", err)
	}
	doc, err := sax.ParseString(s2[:end])
	if err != nil {
		return nil, "", p.errAt(s2, "core: invalid constant element: %v", err)
	}
	root := doc.Root()
	if root == nil {
		return nil, "", p.errAt(s2, "core: constant element is empty")
	}
	return root, s2[end:], nil
}

// elemEnd scans a balanced XML element and returns the index just past it.
func elemEnd(s string) (int, error) {
	depth := 0
	i := 0
	for i < len(s) {
		c := s[i]
		switch c {
		case '<':
			if strings.HasPrefix(s[i:], "<!--") {
				end := strings.Index(s[i:], "-->")
				if end < 0 {
					return 0, errors.New("unterminated comment in constant element")
				}
				i += end + 3
				continue
			}
			closing := i+1 < len(s) && s[i+1] == '/'
			// Scan to the matching '>' with quote awareness.
			j := i + 1
			inQuote := byte(0)
			selfClose := false
			for j < len(s) {
				cj := s[j]
				if inQuote != 0 {
					if cj == inQuote {
						inQuote = 0
					}
					j++
					continue
				}
				if cj == '"' || cj == '\'' {
					inQuote = cj
					j++
					continue
				}
				if cj == '>' {
					selfClose = s[j-1] == '/'
					break
				}
				j++
			}
			if j >= len(s) {
				return 0, errors.New("unterminated tag in constant element")
			}
			switch {
			case closing:
				depth--
			case selfClose:
				// depth unchanged
			default:
				depth++
			}
			i = j + 1
			if depth == 0 {
				return i, nil
			}
			if depth < 0 {
				return 0, errors.New("unbalanced end tag in constant element")
			}
		default:
			i++
		}
	}
	return 0, errors.New("unterminated constant element")
}

func truncate(s string) string {
	if len(s) > 40 {
		return s[:40] + "..."
	}
	return s
}
