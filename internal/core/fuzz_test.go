package core

import (
	"testing"
)

// FuzzParseQuery asserts that the transform-query parser never panics on
// arbitrary input, and that accepted queries uphold the rendering
// invariant the engine's query cache relies on: q.String() reparses to a
// query with the identical rendering (String is a canonical form).
// Compilation of accepted queries must not panic either.
func FuzzParseQuery(f *testing.F) {
	seeds := []string{
		`transform copy $a := doc("foo") modify do delete $a//price return $a`,
		`transform copy $a := doc("foo") modify do insert <supplier><sname>HP</sname></supplier> into $a//part return $a`,
		`transform copy $a := doc("foo") modify do replace $a//supplier[price > 10]/price with <price>0</price> return $a`,
		`transform copy $a := doc("foo") modify do rename $a//subPart as componentOf return $a`,
		`transform copy $x := doc('q"uote') modify do delete $x/db/part[pname = "keyboard" and not(supplier)] return $x`,
		`transform copy $a := doc("f") modify do delete $a//part[@id = "p1"]//sub[label() = "s" or c/d = '7'] return $a`,
		`transform copy $a := doc("f") modify do insert <t a="1">x</t> into $a/db/*[. = "v"] return $a`,
		`transform copy $a := doc("f") modify do delete $a/return return $a`,
		`transform copy $a := `,
		`transform copy $a := doc("f") modify do delete $b//x return $a`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := ParseQuery(src)
		if err != nil {
			return // rejected input: the only requirement is "no panic"
		}
		first := q.String()
		q2, err := ParseQuery(first)
		if err != nil {
			t.Fatalf("canonical rendering does not reparse: %v\nquery: %s", err, first)
		}
		if second := q2.String(); second != first {
			t.Fatalf("rendering not canonical:\nfirst:  %s\nsecond: %s", first, second)
		}
		// Compiling either succeeds or reports a typed error; it must not
		// panic (the rendering invariant above already pins equivalence).
		_, _ = q.Compile()
	})
}
