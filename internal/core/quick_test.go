package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"xtq/internal/tree"
	"xtq/internal/xpath"
)

// randomCase couples a random document with a random compilable update.
type randomCase struct {
	Doc    *tree.Node
	Update Update
}

// Generate implements quick.Generator; it retries path generation until
// the update compiles, so properties never skip.
func (randomCase) Generate(r *rand.Rand, _ int) reflect.Value {
	doc := tree.Generate(r, tree.DefaultGenOptions())
	cfg := xpath.DefaultGenConfig()
	var u Update
	for {
		u = Update{Path: xpath.RandomPath(r, cfg)}
		switch r.Intn(4) {
		case 0:
			u.Op = Insert
			u.Elem = tree.NewElement("new", tree.NewText("v"))
		case 1:
			u.Op = Delete
		case 2:
			u.Op = Replace
			u.Elem = tree.NewElement("sub")
		case 3:
			u.Op = Rename
			u.Label = "renamed"
		}
		q := Query{Var: "a", Doc: "gen", Update: u}
		if _, err := q.Compile(); err == nil {
			break
		}
	}
	return reflect.ValueOf(randomCase{Doc: doc, Update: u})
}

// Property: all four in-memory methods compute identical results and leave
// the input untouched.
func TestQuickMethodsAgree(t *testing.T) {
	prop := func(tc randomCase) bool {
		q := &Query{Var: "a", Doc: "gen", Update: tc.Update}
		c, err := q.Compile()
		if err != nil {
			return false
		}
		before := tc.Doc.String()
		var ref *tree.Node
		for _, m := range Methods() {
			got, err := c.Eval(tc.Doc, m)
			if err != nil {
				return false
			}
			if ref == nil {
				ref = got
			} else if !tree.Equal(ref, got) {
				return false
			}
		}
		return tc.Doc.String() == before
	}
	cfg := &quick.Config{MaxCount: 120, Rand: rand.New(rand.NewSource(21))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// Property: no node of r[[p]] (by identity) survives a delete. Note the
// *path* may select fresh nodes in the result — removing a node can make
// an ancestor start satisfying a negated qualifier like //b[not(b)] — so
// the invariant is stated over the original selection, exactly as the
// semantics of §2 defines the update.
func TestQuickDeleteRemovesSelection(t *testing.T) {
	prop := func(tc randomCase) bool {
		u := Update{Op: Delete, Path: tc.Update.Path}
		q := &Query{Var: "a", Doc: "gen", Update: u}
		c, err := q.Compile()
		if err != nil {
			return false
		}
		selected := make(map[*tree.Node]struct{})
		for _, n := range xpath.Select(tc.Doc, u.Path) {
			selected[n] = struct{}{}
		}
		// topDown shares surviving subtrees by pointer, so identity
		// membership is meaningful.
		got, err := c.Eval(tc.Doc, MethodTopDown)
		if err != nil {
			return false
		}
		ok := true
		tree.Walk(got, func(n *tree.Node, _ int) bool {
			if _, hit := selected[n]; hit {
				ok = false
			}
			return ok
		})
		return ok
	}
	cfg := &quick.Config{MaxCount: 120, Rand: rand.New(rand.NewSource(22))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// Property: insert adds exactly |r[[p]]| copies of the element, and the
// result size is the input size plus that many subtree sizes.
func TestQuickInsertCountsMatchSelection(t *testing.T) {
	elem := tree.NewElement("inserted-marker")
	prop := func(tc randomCase) bool {
		u := Update{Op: Insert, Path: tc.Update.Path, Elem: elem}
		q := &Query{Var: "a", Doc: "gen", Update: u}
		c, err := q.Compile()
		if err != nil {
			return false
		}
		selected := len(xpath.Select(tc.Doc, u.Path))
		got, err := c.Eval(tc.Doc, MethodTwoPass)
		if err != nil {
			return false
		}
		if tree.CountLabel(got, "inserted-marker") != selected {
			return false
		}
		return got.Size() == tc.Doc.Size()+selected*elem.Size()
	}
	cfg := &quick.Config{MaxCount: 120, Rand: rand.New(rand.NewSource(23))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// Property: rename preserves document size and only changes labels of
// selected nodes.
func TestQuickRenamePreservesShape(t *testing.T) {
	prop := func(tc randomCase) bool {
		u := Update{Op: Rename, Path: tc.Update.Path, Label: "qren"}
		q := &Query{Var: "a", Doc: "gen", Update: u}
		c, err := q.Compile()
		if err != nil {
			return false
		}
		selected := len(xpath.Select(tc.Doc, u.Path))
		got, err := c.Eval(tc.Doc, MethodTopDown)
		if err != nil {
			return false
		}
		return got.Size() == tc.Doc.Size() &&
			tree.CountLabel(got, "qren") == selected
	}
	cfg := &quick.Config{MaxCount: 120, Rand: rand.New(rand.NewSource(24))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}
