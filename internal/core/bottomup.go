package core

import (
	"context"

	"xtq/internal/automaton"
	"xtq/internal/tree"
	"xtq/internal/xpath"
)

// satPageBits sizes the pages of the annotation table: 256 vectors per
// page balances the cost of zeroing pages on heavily-pruned passes (which
// touch a handful of pages) against pointer-chasing on dense ones.
const satPageBits = 8

// Annotations is the output of the bottomUp pass: for every node at which
// some qualifier (or sub-qualifier) had to be evaluated, the sat vector
// over the automaton's qualifier list LQ, stored by the node's preorder
// ordinal (tree.Index) in a two-level paged table. topDown's checkp()
// then answers in constant time — two array loads — instead of a
// pointer-map lookup, and a pass that prunes most of the document
// allocates only the pages its annotated ordinals fall into.
type Annotations struct {
	// Idx is the document index the ordinals refer to.
	Idx *tree.Index
	// pages[ord>>satPageBits][ord&mask] is the sat vector of the node
	// with that preorder ordinal; nil for nodes the pass did not
	// annotate. Vectors are carved out of a shared arena, so the pass
	// performs O(annotated/chunk) vector allocations rather than one per
	// node.
	pages [][]xpath.SatVec
	// NodesVisited counts nodes the pass descended into; the pruning
	// claim of Fig. 9 (line 6) is asserted on it in tests.
	NodesVisited int
}

func newAnnotations(idx *tree.Index) *Annotations {
	numPages := (idx.NumNodes + (1 << satPageBits) - 1) >> satPageBits
	return &Annotations{Idx: idx, pages: make([][]xpath.SatVec, numPages)}
}

// SatAt returns the sat vector annotated at n, or nil when n was not
// annotated (or belongs to a different document than the pass ran over).
func (a *Annotations) SatAt(n *tree.Node) xpath.SatVec {
	if ord, ok := a.Idx.OrdOf(n); ok {
		if p := a.pages[ord>>satPageBits]; p != nil {
			return p[ord&(1<<satPageBits-1)]
		}
	}
	return nil
}

// setSat records the vector for a node ordinal.
func (a *Annotations) setSat(ord int32, sat xpath.SatVec) {
	pi := ord >> satPageBits
	p := a.pages[pi]
	if p == nil {
		p = make([]xpath.SatVec, 1<<satPageBits)
		a.pages[pi] = p
	}
	p[ord&(1<<satPageBits-1)] = sat
}

// AnnotatedNodes returns the number of nodes carrying a sat vector.
func (a *Annotations) AnnotatedNodes() int {
	total := 0
	for _, p := range a.pages {
		for _, v := range p {
			if v != nil {
				total++
			}
		}
	}
	return total
}

// buFrame is the per-depth scratch of the bottomUp recursion: the csat and
// dsat accumulators of the node currently open at that depth. Frames are
// pooled — the frame released at depth d is reused by the next sibling
// visited at depth d.
type buFrame struct {
	csat, dsat xpath.SatVec
}

// buRun is the per-evaluation state of bottomUp.
type buRun struct {
	lq     *xpath.LQ
	cache  *automaton.ConfigCache
	ann    *Annotations
	can    *Canceler
	frames []*buFrame
	arena  []bool // current chunk backing the stored sat vectors
}

func (r *buRun) frameAt(depth int) *buFrame {
	for len(r.frames) <= depth {
		r.frames = append(r.frames, &buFrame{csat: r.lq.NewSatVec(), dsat: r.lq.NewSatVec()})
	}
	f := r.frames[depth]
	for i := range f.csat {
		f.csat[i] = false
		f.dsat[i] = false
	}
	return f
}

// allocVec carves one zeroed sat vector out of the arena.
func (r *buRun) allocVec() xpath.SatVec {
	l := r.lq.Len()
	if cap(r.arena)-len(r.arena) < l {
		chunk := 256 * l
		if chunk < 1024 {
			chunk = 1024
		}
		r.arena = make([]bool, 0, chunk)
	}
	v := r.arena[len(r.arena) : len(r.arena)+l : len(r.arena)+l]
	r.arena = r.arena[:len(r.arena)+l]
	return xpath.SatVec(v)
}

// visit processes node n entered with configuration cfg (which carries
// the unchecked state set and the pending qualifier work, memoized per
// (parent configuration, label symbol) in the ConfigCache). Results are
// folded straight into the parent frame, so nothing is returned.
func (r *buRun) visit(n *tree.Node, cfg *automaton.Config, depth int, parent *buFrame) {
	if r.can.Stopped() {
		return
	}
	r.ann.NodesVisited++
	if cfg.Pruned {
		// Pruning: no automaton state alive and no qualifier pending —
		// the subtree is irrelevant (Fig. 9 line 6).
		return
	}
	f := r.frameAt(depth)
	if !cfg.Next.Empty() || len(cfg.ChildNeeds) > 0 {
		for _, ch := range n.Children {
			if ch.Kind != tree.Element {
				continue
			}
			r.visit(ch, r.cache.Step(cfg, r.ann.Idx.SymOf(ch), ch.Label), depth+1, f)
		}
	}
	if len(cfg.EvalIDs) == 0 {
		return
	}
	sat := r.allocVec()
	r.lq.QualDP(n, cfg.EvalIDs, f.csat, f.dsat, sat)
	if ord, ok := r.ann.Idx.OrdOf(n); ok {
		r.ann.setSat(ord, sat)
	}
	if parent != nil {
		// Propagate: csat aggregates child sat, dsat child
		// sat-or-descendant.
		for _, id := range cfg.EvalIDs {
			if sat[id] {
				parent.csat[id] = true
				parent.dsat[id] = true
			} else if f.dsat[id] {
				parent.dsat[id] = true
			}
		}
	}
}

// EvalBottomUp implements algorithm bottomUp (§5, Fig. 9): a single pass
// over the tree that evaluates every qualifier needed by the selecting NFA
// using the QualDP recurrence.
//
// Differences in formulation (not in behaviour) from Fig. 9:
//
//   - Fig. 9 simulates the bottom-up traversal by recursing on the
//     left-most child and right sibling so the algorithm can be coded in
//     side-effect-free XQuery; in Go a direct post-order recursion visits
//     the same nodes in the same order.
//   - The paper's filtering NFA tracks, via qualifier-path states, which
//     sub-qualifiers must be evaluated at a node. Here the same set — the
//     list LQ(S') — lives in interned configurations
//     (automaton.ConfigCache): the unchecked state set, the closure to
//     run through QualDP and the child needs are computed once per
//     (parent configuration, label symbol) and then answered from a dense
//     per-symbol transition slice.
//
// The pass transitions the NFA without checking qualifiers (its state sets
// are supersets of the checked sets used by topDown) and prunes subtrees
// that can contribute neither to node selection nor to any pending
// qualifier (S' empty and no inherited needs).
func EvalBottomUp(ctx context.Context, c *Compiled, doc *tree.Node) (*Annotations, error) {
	idx := tree.EnsureIndex(doc)
	b := c.NFA.Bind(idx.Syms)
	r := &buRun{
		lq:    c.NFA.LQ,
		cache: automaton.NewConfigCache(b),
		ann:   newAnnotations(idx),
		can:   NewCanceler(ctx),
	}
	root := r.cache.Root()
	for _, ch := range doc.Children {
		if ch.Kind == tree.Element {
			r.visit(ch, r.cache.Step(root, idx.SymOf(ch), ch.Label), 0, nil)
		}
	}
	if err := r.can.Err(); err != nil {
		return nil, err
	}
	return r.ann, nil
}

// EvalTwoPass is the twoPass implementation of transform queries (§5,
// Fig. 10, "TD-BU" in the experiments): bottomUp to annotate qualifier
// truth values, then topDown with constant-time qualifier checks. Two
// passes over (the relevant part of) the tree, linear data complexity
// regardless of qualifier complexity.
func EvalTwoPass(ctx context.Context, c *Compiled, doc *tree.Node) (*tree.Node, error) {
	ann, err := EvalBottomUp(ctx, c, doc)
	if err != nil {
		return nil, err
	}
	checker := &AnnotChecker{Ann: ann}
	return EvalTopDown(ctx, c, doc, checker)
}
