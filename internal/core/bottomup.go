package core

import (
	"context"

	"xtq/internal/automaton"
	"xtq/internal/tree"
	"xtq/internal/xpath"
)

// Annotations is the output of the bottomUp pass: for every node at which
// some qualifier (or sub-qualifier) had to be evaluated, the sat vector
// over the automaton's qualifier list LQ. topDown's checkp() then answers
// in constant time from these vectors (§5).
type Annotations struct {
	Sat map[*tree.Node]xpath.SatVec
	// NodesVisited counts nodes the pass descended into; the pruning
	// claim of Fig. 9 (line 6) is asserted on it in tests.
	NodesVisited int
}

// EvalBottomUp implements algorithm bottomUp (§5, Fig. 9): a single pass
// over the tree that evaluates every qualifier needed by the selecting NFA
// using the QualDP recurrence.
//
// Differences in formulation (not in behaviour) from Fig. 9:
//
//   - Fig. 9 simulates the bottom-up traversal by recursing on the
//     left-most child and right sibling so the algorithm can be coded in
//     side-effect-free XQuery; in Go a direct post-order recursion visits
//     the same nodes in the same order.
//   - The paper's filtering NFA tracks, via qualifier-path states, which
//     sub-qualifiers must be evaluated at a node. Here the same set — the
//     list LQ(S') — is computed by propagating normalized expression ids
//     (xpath.LQ.ChildNeeds); see the automaton package comment.
//
// The pass transitions the NFA without checking qualifiers (its state sets
// are supersets of the checked sets used by topDown) and prunes subtrees
// that can contribute neither to node selection nor to any pending
// qualifier (S' empty and no inherited needs).
func EvalBottomUp(ctx context.Context, c *Compiled, doc *tree.Node) (*Annotations, error) {
	can := NewCanceler(ctx)
	ann := &Annotations{Sat: make(map[*tree.Node]xpath.SatVec)}
	lq := c.NFA.LQ
	m := c.NFA

	// visit processes node n entered with (unchecked) state set s and
	// inherited qualifier needs; it returns n's sat and selfOrDesc
	// vectors, or (nil, nil) when nothing was evaluated below n.
	var visit func(n *tree.Node, s automaton.StateSet, inherited []int) (sat, selfOrDesc xpath.SatVec)
	visit = func(n *tree.Node, s automaton.StateSet, inherited []int) (xpath.SatVec, xpath.SatVec) {
		if can.Stopped() {
			return nil, nil
		}
		ann.NodesVisited++
		next := m.Step(s, n.Label, nil)
		roots := m.EnteredQuals(s, n.Label)
		roots = append(roots, inherited...)
		if next.Empty() && len(roots) == 0 {
			// Pruning: no automaton state alive and no qualifier
			// pending — the subtree is irrelevant (Fig. 9 line 6).
			return nil, nil
		}
		evalIDs := lq.Closure(roots)
		childNeeds := lq.ChildNeeds(evalIDs)

		csat := lq.NewSatVec()
		dsat := lq.NewSatVec()
		descend := !next.Empty() || len(childNeeds) > 0
		if descend {
			for _, ch := range n.Children {
				if ch.Kind != tree.Element {
					continue
				}
				cSat, cSelfOrDesc := visit(ch, next, childNeeds)
				if cSat == nil {
					continue
				}
				for i := range csat {
					csat[i] = csat[i] || cSat[i]
					dsat[i] = dsat[i] || cSelfOrDesc[i]
				}
			}
		}
		if len(evalIDs) == 0 {
			return nil, nil
		}
		sat := lq.NewSatVec()
		lq.QualDP(n, evalIDs, csat, dsat, sat)
		selfOrDesc := lq.NewSatVec()
		for _, id := range evalIDs {
			selfOrDesc[id] = sat[id] || dsat[id]
		}
		ann.Sat[n] = sat
		return sat, selfOrDesc
	}

	s0 := m.InitialSet()
	for _, ch := range doc.Children {
		if ch.Kind == tree.Element {
			visit(ch, s0, nil)
		}
	}
	if err := can.Err(); err != nil {
		return nil, err
	}
	return ann, nil
}

// EvalTwoPass is the twoPass implementation of transform queries (§5,
// Fig. 10, "TD-BU" in the experiments): bottomUp to annotate qualifier
// truth values, then topDown with constant-time qualifier checks. Two
// passes over (the relevant part of) the tree, linear data complexity
// regardless of qualifier complexity.
func EvalTwoPass(ctx context.Context, c *Compiled, doc *tree.Node) (*tree.Node, error) {
	ann, err := EvalBottomUp(ctx, c, doc)
	if err != nil {
		return nil, err
	}
	checker := &AnnotChecker{Annot: ann.Sat}
	return EvalTopDown(ctx, c, doc, checker)
}
