package core

import (
	"context"
	"math/rand"
	"testing"

	"xtq/internal/tree"
	"xtq/internal/xpath"
)

func TestNoPruneAgrees(t *testing.T) {
	genOpts := tree.DefaultGenOptions()
	cfg := xpath.DefaultGenConfig()
	for seed := int64(0); seed < 100; seed++ {
		rng := rand.New(rand.NewSource(seed))
		d := tree.Generate(rng, genOpts)
		p := xpath.RandomPath(rng, cfg)
		q := &Query{Var: "a", Doc: "gen", Update: Update{Op: Delete, Path: p}}
		c, err := q.Compile()
		if err != nil {
			continue
		}
		want, err := EvalTopDown(context.Background(), c, d, DirectChecker{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := EvalTopDownNoPrune(context.Background(), c, d, DirectChecker{})
		if err != nil {
			t.Fatal(err)
		}
		if !tree.Equal(want, got) {
			t.Fatalf("seed %d: ablation differs for %s", seed, p)
		}
	}
}
