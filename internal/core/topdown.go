package core

import (
	"context"

	"xtq/internal/automaton"
	"xtq/internal/tree"
	"xtq/internal/xpath"
)

// QualChecker is checkp() of §3.3: it decides whether the qualifier of an
// automaton state holds at a node. The topDown algorithm is parameterized
// over it — direct recursive evaluation yields the GENTOP method, constant
// -time lookups into bottomUp annotations yield the twoPass (TD-BU) method.
type QualChecker interface {
	Check(st *automaton.State, n *tree.Node) bool
}

// DirectChecker evaluates qualifiers by recursive descent (the "native
// qualifier evaluation" strategy of the paper's GENTOP configuration).
type DirectChecker struct{}

// Check implements QualChecker.
func (DirectChecker) Check(st *automaton.State, n *tree.Node) bool {
	for _, q := range st.Quals {
		if !xpath.EvalQual(n, q) {
			return false
		}
	}
	return true
}

// AnnotChecker answers qualifier checks from the dense sat-vector
// annotations produced by the bottomUp pass, in constant time per check:
// one ordinal lookup into the annotation table. Nodes outside the
// annotated document — which cannot occur when the annotation pass ran
// over the same document and automaton, since the bottomUp state sets are
// supersets of topDown's — fall back to direct evaluation; the event is
// counted so tests can assert the invariant.
type AnnotChecker struct {
	Ann       *Annotations
	Fallbacks int
}

// Check implements QualChecker.
func (a *AnnotChecker) Check(st *automaton.State, n *tree.Node) bool {
	if len(st.Quals) == 0 {
		return true
	}
	if sat := a.Ann.SatAt(n); sat != nil {
		return sat[st.QualID]
	}
	a.Fallbacks++
	return DirectChecker{}.Check(st, n)
}

// tdRun is the per-evaluation state of topDown: the per-document symbol
// binding and a per-depth pool of successor state sets, so the traversal
// allocates nothing on the unchanged parts of the document.
type tdRun struct {
	c     *Compiled
	idx   *tree.Index
	b     *automaton.Binding
	check QualChecker
	can   *Canceler
	sets  []automaton.StateSet // successor-set scratch, one per depth
}

func (r *tdRun) setAt(depth int) automaton.StateSet {
	for len(r.sets) <= depth {
		r.sets = append(r.sets, r.b.M.NewSet())
	}
	return r.sets[depth]
}

// processNode applies the compiled update below (and at) node n, which the
// traversal entered from state set s — i.e. s is the parent-level set and
// n's label has not been consumed yet. It returns (replacement, kept):
// kept is false when n is deleted; otherwise the replacement is the
// original pointer when the update cannot touch n's subtree, or a rebuilt
// node. This is the recursive body of algorithm topDown (Fig. 3).
func (r *tdRun) processNode(n *tree.Node, s automaton.StateSet, depth int) (*tree.Node, bool) {
	if r.can.Stopped() {
		return n, true
	}
	next := r.setAt(depth)
	m := r.b.M
	r.b.StepInto(s, r.idx.SymOf(n), n.Label, func(id int) bool { return r.check.Check(&m.States[id], n) }, next)
	if next.Empty() {
		// No state is alive below n: the subtree cannot be selected,
		// return it unchanged (Fig. 3 lines 2-3).
		return n, true
	}
	return r.processEntered(n, next, depth)
}

// processEntered is processNode for a node whose label is already
// consumed: entered is the state set after the transition on n. The child
// slice is copied lazily — nodes whose subtree the update does not change
// are returned by reference without allocating.
func (r *tdRun) processEntered(n *tree.Node, entered automaton.StateSet, depth int) (*tree.Node, bool) {
	u := &r.c.Query.Update
	matched := r.b.M.Matches(entered)
	if matched {
		switch u.Op {
		case Delete:
			// Prune without loading the subtree.
			return nil, false
		case Replace:
			return u.Elem.DeepCopy(), true
		}
	}
	var newChildren []*tree.Node
	changed := false
	for i, ch := range n.Children {
		if ch.Kind != tree.Element {
			if changed {
				newChildren = append(newChildren, ch)
			}
			continue
		}
		out, kept := r.processNode(ch, entered, depth+1)
		if !changed && (!kept || out != ch) {
			// First divergence: copy the unchanged prefix.
			changed = true
			newChildren = make([]*tree.Node, 0, len(n.Children)+1)
			newChildren = append(newChildren, n.Children[:i]...)
		}
		if changed && kept {
			newChildren = append(newChildren, out)
		}
	}
	if matched && u.Op == Insert {
		if !changed {
			changed = true
			newChildren = make([]*tree.Node, 0, len(n.Children)+1)
			newChildren = append(newChildren, n.Children...)
		}
		newChildren = append(newChildren, u.Elem.DeepCopy())
	}
	relabel := matched && u.Op == Rename
	if !changed && !relabel {
		return n, true
	}
	if !changed {
		// Relabel only: the children are untouched, but the node gets a
		// private child slice so the output never aliases the input's
		// spare capacity.
		newChildren = append([]*tree.Node(nil), n.Children...)
	}
	out := &tree.Node{Kind: tree.Element, Sym: n.Sym, Label: n.Label, Attrs: n.Attrs, Children: newChildren}
	if relabel {
		out.Label = u.Label
		out.Sym = tree.NoSym
	}
	return out, true
}

// EvalTopDown implements algorithm topDown (§3.3, Fig. 3) for all four
// update kinds. It traverses only the part of the tree reachable with a
// non-empty automaton state set; subtrees the update cannot touch are
// returned by reference (structural sharing), so the result is a
// copy-on-write view over the input. The input is never modified (the
// document is indexed on first evaluation, which stamps ordinals — see
// tree.EnsureIndex — but its structure and content are untouched).
// Cancelling ctx aborts the traversal at node granularity.
func EvalTopDown(ctx context.Context, c *Compiled, doc *tree.Node, check QualChecker) (*tree.Node, error) {
	idx := tree.EnsureIndex(doc)
	r := &tdRun{
		c:     c,
		idx:   idx,
		b:     c.NFA.Bind(idx.Syms),
		check: check,
		can:   NewCanceler(ctx),
	}
	s0 := c.NFA.InitialSet()
	result := tree.NewDocument(nil)
	changed := false
	for _, ch := range doc.Children {
		if ch.Kind != tree.Element {
			result.Children = append(result.Children, ch)
			continue
		}
		out, kept := r.processNode(ch, s0, 0)
		if !kept {
			changed = true
			continue
		}
		if out != ch {
			changed = true
		}
		result.Children = append(result.Children, out)
	}
	if err := r.can.Err(); err != nil {
		return nil, err
	}
	if !changed {
		// Nothing matched anywhere: the query is the identity on doc.
		return doc, nil
	}
	return result, nil
}
