package core

import (
	"context"

	"xtq/internal/automaton"
	"xtq/internal/tree"
	"xtq/internal/xpath"
)

// QualChecker is checkp() of §3.3: it decides whether the qualifier of an
// automaton state holds at a node. The topDown algorithm is parameterized
// over it — direct recursive evaluation yields the GENTOP method, constant
// -time lookups into bottomUp annotations yield the twoPass (TD-BU) method.
type QualChecker interface {
	Check(st *automaton.State, n *tree.Node) bool
}

// DirectChecker evaluates qualifiers by recursive descent (the "native
// qualifier evaluation" strategy of the paper's GENTOP configuration).
type DirectChecker struct{}

// Check implements QualChecker.
func (DirectChecker) Check(st *automaton.State, n *tree.Node) bool {
	for _, q := range st.Quals {
		if !xpath.EvalQual(n, q) {
			return false
		}
	}
	return true
}

// AnnotChecker answers qualifier checks from the sat-vector annotations
// produced by the bottomUp pass, in constant time per check. If a node was
// not annotated (which cannot happen when the annotation pass ran over the
// same document and automaton — the bottomUp state sets are supersets of
// topDown's) it falls back to direct evaluation and counts the event, so
// tests can assert the invariant.
type AnnotChecker struct {
	Annot     map[*tree.Node]xpath.SatVec
	Fallbacks int
}

// Check implements QualChecker.
func (a *AnnotChecker) Check(st *automaton.State, n *tree.Node) bool {
	if len(st.Quals) == 0 {
		return true
	}
	if sat, ok := a.Annot[n]; ok {
		return sat[st.QualID]
	}
	a.Fallbacks++
	return DirectChecker{}.Check(st, n)
}

// ProcessNode applies the compiled update below (and at) node n, which the
// caller entered from state set s — i.e. s is the parent-level set and n's
// label has not been consumed yet. It returns the replacement list for n:
// empty when n is deleted, the original pointer when the update cannot
// touch n's subtree, or a rebuilt node. This is the recursive body of
// algorithm topDown (Fig. 3), exported for the composition package, which
// materializes returned subtrees exactly this way (the paper's embedded
// topDown() user-defined function, §4).
//
// can may be nil; when it observes cancellation the traversal unwinds with
// an arbitrary partial result, which the caller must discard after
// consulting can.Err().
func ProcessNode(c *Compiled, n *tree.Node, s automaton.StateSet, check QualChecker, can *Canceler) []*tree.Node {
	if can.Stopped() {
		return nil
	}
	m := c.NFA
	next := m.Step(s, n.Label, func(id int) bool { return check.Check(&m.States[id], n) })
	if next.Empty() {
		// No state is alive below n: the subtree cannot be selected,
		// return it unchanged (Fig. 3 lines 2-3).
		return []*tree.Node{n}
	}
	return ProcessEntered(c, n, next, check, can)
}

// ProcessEntered is ProcessNode for a node whose label is already consumed:
// entered is the state set after the transition on n.
func ProcessEntered(c *Compiled, n *tree.Node, entered automaton.StateSet, check QualChecker, can *Canceler) []*tree.Node {
	u := &c.Query.Update
	m := c.NFA
	matched := m.Matches(entered)
	if matched {
		switch u.Op {
		case Delete:
			// Prune without loading the subtree.
			return nil
		case Replace:
			return []*tree.Node{u.Elem.DeepCopy()}
		}
	}
	changed := false
	newChildren := make([]*tree.Node, 0, len(n.Children)+1)
	for _, ch := range n.Children {
		if ch.Kind != tree.Element {
			newChildren = append(newChildren, ch)
			continue
		}
		r := ProcessNode(c, ch, entered, check, can)
		if len(r) != 1 || r[0] != ch {
			changed = true
		}
		newChildren = append(newChildren, r...)
	}
	if matched && u.Op == Insert {
		newChildren = append(newChildren, u.Elem.DeepCopy())
		changed = true
	}
	relabel := matched && u.Op == Rename
	if !changed && !relabel {
		return []*tree.Node{n}
	}
	out := &tree.Node{Kind: tree.Element, Label: n.Label, Attrs: n.Attrs, Children: newChildren}
	if relabel {
		out.Label = u.Label
	}
	return []*tree.Node{out}
}

// EvalTopDown implements algorithm topDown (§3.3, Fig. 3) for all four
// update kinds. It traverses only the part of the tree reachable with a
// non-empty automaton state set; subtrees the update cannot touch are
// returned by reference (structural sharing), so the result is a
// copy-on-write view over the input. The input is never modified.
// Cancelling ctx aborts the traversal at node granularity.
func EvalTopDown(ctx context.Context, c *Compiled, doc *tree.Node, check QualChecker) (*tree.Node, error) {
	can := NewCanceler(ctx)
	s0 := c.NFA.InitialSet()
	result := tree.NewDocument(nil)
	changed := false
	for _, ch := range doc.Children {
		if ch.Kind != tree.Element {
			result.Children = append(result.Children, ch)
			continue
		}
		r := ProcessNode(c, ch, s0, check, can)
		if len(r) != 1 || r[0] != ch {
			changed = true
		}
		result.Children = append(result.Children, r...)
	}
	if err := can.Err(); err != nil {
		return nil, err
	}
	if !changed {
		// Nothing matched anywhere: the query is the identity on doc.
		return doc, nil
	}
	return result, nil
}
