package core

import "xtq/internal/tree"

// EvalCopyUpdate is the copy-and-update baseline: snapshot the document,
// then destructively apply the embedded update to the copy. This is the
// strategy the paper attributes to engines with native update support
// ("GalaXUpdate" in §7: "Galax implements transform queries by taking a
// snapshot of XML files"); it always costs Θ(|T|) time and space, which is
// why it loses to the automaton methods whenever the update touches a
// small part of the document.
func EvalCopyUpdate(c *Compiled, doc *tree.Node) (*tree.Node, error) {
	snapshot := doc.DeepCopy()
	if err := c.Query.Update.Apply(snapshot); err != nil {
		return nil, err
	}
	return snapshot, nil
}
