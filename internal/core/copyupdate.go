package core

import (
	"context"

	"xtq/internal/tree"
	"xtq/internal/xerr"
)

// EvalCopyUpdate is the copy-and-update baseline: snapshot the document,
// then destructively apply the embedded update to the copy. This is the
// strategy the paper attributes to engines with native update support
// ("GalaXUpdate" in §7: "Galax implements transform queries by taking a
// snapshot of XML files"); it always costs Θ(|T|) time and space, which is
// why it loses to the automaton methods whenever the update touches a
// small part of the document.
func EvalCopyUpdate(ctx context.Context, c *Compiled, doc *tree.Node) (*tree.Node, error) {
	// The snapshot and the in-place application are both monolithic
	// library calls, so cancellation is honoured between the two phases
	// rather than at node granularity.
	snapshot := doc.DeepCopy()
	if ctx != nil && ctx.Err() != nil {
		return nil, xerr.Wrap(xerr.Eval, ctx.Err())
	}
	// Index the private snapshot so the update's selected-set membership
	// is a dense ordinal bitset instead of a pointer map. The deep copy
	// shares no nodes with anything, so the sealed-ownership guard of
	// the public Update.Apply is skipped: applyPrivate saves a full
	// traversal per evaluation on this benchmarked baseline.
	tree.EnsureIndex(snapshot)
	if err := c.Query.Update.Validate(); err != nil {
		return nil, err
	}
	c.Query.Update.applyPrivate(snapshot)
	return snapshot, nil
}
