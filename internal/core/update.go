// Package core implements transform queries (Fan, Cong & Bohannon, SIGMOD
// 2007): queries of the form
//
//	transform copy $a := doc("T") modify do u($a) return $a
//
// whose embedded update u is one of
//
//	insert e into $a/p      delete $a/p
//	replace $a/p with e     rename $a/p as l
//
// together with the paper's evaluation algorithms: the Naive rewriting
// method (§3.1), the automaton-guided topDown method (§3.3, "GENTOP"), the
// bottomUp qualifier pass with QualDP (§5) and the resulting twoPass
// method ("TD-BU"), plus the copy-and-update baseline that models engines
// with native update support (GalaX in the paper's experiments).
package core

import (
	"fmt"

	"xtq/internal/tree"
	"xtq/internal/xerr"
	"xtq/internal/xpath"
)

// Op is the kind of an embedded update.
type Op uint8

const (
	// Insert adds a constant element as the last child of every node
	// selected by the path.
	Insert Op = iota
	// Delete removes every selected node along with its subtree.
	Delete
	// Replace substitutes a constant element for every selected node.
	// When selected nodes are nested, the outermost replacement wins
	// (the inner node is already gone).
	Replace
	// Rename changes the label of every selected node. Selection is
	// determined entirely on the original tree, so renaming a node does
	// not affect which of its descendants are selected.
	Rename
)

// String returns the update keyword.
func (op Op) String() string {
	switch op {
	case Insert:
		return "insert"
	case Delete:
		return "delete"
	case Replace:
		return "replace"
	case Rename:
		return "rename"
	default:
		return "invalid"
	}
}

// Update is the embedded update u($a) of a transform query.
type Update struct {
	Op    Op
	Path  *xpath.Path
	Elem  *tree.Node // constant element for Insert and Replace
	Label string     // new label for Rename
}

// Validate checks that the update is well formed. Failures are *xerr.Error
// with kind Compile.
func (u *Update) Validate() error {
	if u.Path == nil || len(u.Path.Steps) == 0 {
		return xerr.New(xerr.Compile, "", "core: update has no path")
	}
	if u.Path.HasAttributeStep() {
		return xerr.New(xerr.Compile, "", "core: update path selects attributes")
	}
	switch u.Op {
	case Insert, Replace:
		if u.Elem == nil || u.Elem.Kind != tree.Element {
			return xerr.New(xerr.Compile, "", "core: %s requires a constant element", u.Op)
		}
		if err := tree.Validate(u.Elem); err != nil {
			return &xerr.Error{Kind: xerr.Compile, Msg: fmt.Sprintf("core: %s element: %v", u.Op, err), Err: err}
		}
	case Delete:
		if u.Elem != nil || u.Label != "" {
			return xerr.New(xerr.Compile, "", "core: delete takes no element or label")
		}
	case Rename:
		if u.Label == "" {
			return xerr.New(xerr.Compile, "", "core: rename requires a label")
		}
	default:
		return xerr.New(xerr.Compile, "", "core: invalid op %d", u.Op)
	}
	return nil
}

// String renders the update in transform-query surface syntax with the
// variable name v (e.g. "$a").
func (u *Update) String(v string) string {
	ps := u.Path.String()
	p := v + "/" + ps
	if len(ps) > 0 && ps[0] == '/' {
		p = v + ps // "//"-rooted paths carry their own separator
	}
	switch u.Op {
	case Insert:
		return fmt.Sprintf("insert %s into %s", u.Elem, p)
	case Delete:
		return fmt.Sprintf("delete %s", p)
	case Replace:
		return fmt.Sprintf("replace %s with %s", p, u.Elem)
	case Rename:
		return fmt.Sprintf("rename %s as %s", p, u.Label)
	default:
		return "invalid"
	}
}

// Apply destructively applies the update to doc, which must be a private
// copy: this is the second half of the copy-and-update baseline and the
// only mutating operation on trees in the repository. The selected set
// r[[p]] is computed before any mutation, matching the paper's update
// semantics (§2). On an indexed document membership is a dense bitset
// over node ordinals; otherwise a pointer map is used. The mutation
// invalidates any index the document carried (structure and labels
// change), so the index is dropped and the next evaluation re-indexes.
//
// A document that is — or shares subtrees with — a sealed store snapshot
// is rejected up front with a typed Eval error: mutating nodes a live
// snapshot owns would corrupt its lock-free readers, and dropping the
// index afterwards would silently degrade them at best. Commit updates
// through the store (which evaluates the transform copy-on-write)
// instead of mutating a snapshot in place.
func (u *Update) Apply(doc *tree.Node) error {
	if err := u.Validate(); err != nil {
		return err
	}
	if ix := tree.SealedOwner(doc); ix != nil {
		return xerr.New(xerr.Eval, "",
			"core: in-place update on a tree sharing nodes with a sealed snapshot (%d nodes); apply the update through the store instead",
			ix.NumNodes)
	}
	u.applyPrivate(doc)
	return nil
}

// applyPrivate is Apply after validation and the sealed-ownership guard:
// the fast path for callers that constructed doc themselves this instant
// (EvalCopyUpdate's deep copy can never share sealed nodes, so scanning
// it on every evaluation would tax the baseline for nothing).
func (u *Update) applyPrivate(doc *tree.Node) {
	var selected func(*tree.Node) bool
	if ix := tree.IndexOf(doc); ix != nil {
		sel := make([]bool, ix.NumNodes)
		for _, n := range xpath.Select(doc, u.Path) {
			if ord, ok := ix.OrdOf(n); ok {
				sel[ord] = true
			}
		}
		selected = func(n *tree.Node) bool {
			ord, ok := ix.OrdOf(n)
			return ok && sel[ord]
		}
	} else {
		sel := make(map[*tree.Node]struct{})
		for _, n := range xpath.Select(doc, u.Path) {
			sel[n] = struct{}{}
		}
		selected = func(n *tree.Node) bool {
			_, hit := sel[n]
			return hit
		}
	}
	applyInPlace(doc, selected, u)
	tree.DropIndex(doc)
}

func applyInPlace(n *tree.Node, selected func(*tree.Node) bool, u *Update) {
	// Rewrite the child list: delete removes members, replace
	// substitutes the constant element (without descending further).
	out := n.Children[:0]
	for _, c := range n.Children {
		hit := selected(c)
		if hit {
			switch u.Op {
			case Delete:
				continue
			case Replace:
				out = append(out, u.Elem.DeepCopy())
				continue
			case Rename:
				c.Label = u.Label
				c.Sym = tree.NoSym
			case Insert:
				// handled after recursion so the inserted
				// element is the last child
			}
		}
		applyInPlace(c, selected, u)
		if hit && u.Op == Insert {
			c.Children = append(c.Children, u.Elem.DeepCopy())
		}
		out = append(out, c)
	}
	n.Children = out
}
