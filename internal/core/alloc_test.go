package core

import (
	"context"
	"strings"
	"testing"

	"xtq/internal/sax"
	"xtq/internal/tree"
)

// TestAnnotationPassAllocs pins the allocation count of the bottomUp
// annotation pass (the first half of twoPass) and of a full twoPass
// evaluation. The pass stores sat vectors in an
// arena indexed by node ordinal and answers transitions from the interned
// configuration cache, so its allocation count is a small constant plus
// O(annotated/chunk) — not one map insertion and three vectors per
// visited node, which is what a regression back to pointer-keyed
// annotation looks like (thousands of allocations at any realistic
// document size). Bounds carry headroom over the measured values
// (~420 and ~430 on this document) to stay robust against runtime changes.
func TestAnnotationPassAllocs(t *testing.T) {
	// A few hundred elements: enough that one stray allocation per
	// visited node (the failure mode being pinned) dwarfs the per-eval
	// constant of building the configuration cache.
	var b strings.Builder
	b.WriteString("<db>")
	for i := 0; i < 80; i++ {
		b.WriteString(`<part><pname>kb</pname>` +
			`<supplier><sname>HP</sname><price>15</price><country>US</country></supplier>` +
			`<supplier><sname>Logi</sname><price>12</price><country>A</country></supplier>` +
			`</part>`)
	}
	b.WriteString("</db>")
	d, err := sax.ParseString(b.String())
	if err != nil {
		t.Fatal(err)
	}
	c := compile(t, `transform copy $a := doc("foo") modify do delete $a//part[not(supplier/sname = "HP") and not(supplier/price < 15)] return $a`)
	ctx := context.Background()
	tree.EnsureIndex(d)
	warm, err := EvalBottomUp(ctx, c, d)
	if err != nil {
		t.Fatal(err)
	}
	if warm.AnnotatedNodes() == 0 {
		t.Fatal("annotation pass annotated nothing; the pin below would be vacuous")
	}
	const maxBottomUp = 600
	if got := testing.AllocsPerRun(200, func() {
		if _, err := EvalBottomUp(ctx, c, d); err != nil {
			t.Fatal(err)
		}
	}); got > maxBottomUp {
		t.Errorf("EvalBottomUp allocates %.1f times per run, want <= %d", got, maxBottomUp)
	}
	const maxTwoPass = 750
	if got := testing.AllocsPerRun(200, func() {
		if _, err := EvalTwoPass(ctx, c, d); err != nil {
			t.Fatal(err)
		}
	}); got > maxTwoPass {
		t.Errorf("EvalTwoPass allocates %.1f times per run, want <= %d", got, maxTwoPass)
	}
}
