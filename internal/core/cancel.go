package core

import (
	"context"

	"xtq/internal/obs"
	"xtq/internal/xerr"
)

// pollInterval is how many Stopped calls pass between looks at the
// context's done channel. Tree evaluation visits millions of nodes per
// second, so polling every visit would dominate the hot loop; every 1024
// visits keeps cancellation latency in the microseconds while costing one
// predictable branch per node.
const pollInterval = 1024

// Canceler adapts a context.Context to the node-granular abort checks of
// the tree evaluators. A nil *Canceler is valid and never stops, so the
// evaluators pay a single nil check when no cancellable context is in
// play (context.Background and friends).
type Canceler struct {
	done <-chan struct{}
	ctx  context.Context
	n    uint32
	err  error
}

// NewCanceler returns a Canceler for ctx, or nil when ctx can never be
// cancelled and no trace rides it. The canceler's poll counter
// increments once per Stopped call — once per visited node in every
// evaluator — so when ctx carries an obs.Trace the counter doubles as
// the trace's nodes-visited figure: the trace registers it here and
// sums after the evaluation returns, costing the hot loop nothing it
// didn't already pay for cancellation. With a non-cancellable context
// the done channel is nil and the poll's select never fires.
func NewCanceler(ctx context.Context) *Canceler {
	if ctx == nil {
		return nil
	}
	tr := obs.TraceFrom(ctx)
	if ctx.Done() == nil && tr == nil {
		return nil
	}
	c := &Canceler{done: ctx.Done(), ctx: ctx}
	if tr != nil {
		tr.AddVisitCounter(&c.n)
	}
	return c
}

// Stopped reports whether evaluation must abort. Once it returns true it
// keeps returning true, so deep recursions unwind quickly after a
// cancellation is observed.
func (c *Canceler) Stopped() bool {
	if c == nil {
		return false
	}
	if c.err != nil {
		return true
	}
	c.n++
	if c.n%pollInterval != 0 {
		return false
	}
	select {
	case <-c.done:
		c.err = xerr.Wrap(xerr.Eval, c.ctx.Err())
		return true
	default:
		return false
	}
}

// Err returns the evaluation error recorded by Stopped: nil while the
// context is live, an Eval-kind *xerr.Error wrapping the context's error
// after cancellation was observed.
func (c *Canceler) Err() error {
	if c == nil {
		return nil
	}
	return c.err
}
