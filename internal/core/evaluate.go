package core

import (
	"fmt"

	"xtq/internal/tree"
)

// Method selects a transform-query evaluation algorithm. The names follow
// the paper's experimental section (§7.1).
type Method string

const (
	// MethodNaive is the rewriting-based Naive method of §3.1 ("NAIVE").
	MethodNaive Method = "naive"
	// MethodTopDown is algorithm topDown with direct qualifier
	// evaluation (§3.3; "GENTOP").
	MethodTopDown Method = "topdown"
	// MethodTwoPass is bottomUp followed by topDown with annotated
	// qualifier checks (§5; "TD-BU").
	MethodTwoPass Method = "twopass"
	// MethodCopyUpdate is the snapshot-and-update baseline
	// ("GalaXUpdate").
	MethodCopyUpdate Method = "copyupdate"
)

// Methods lists the in-memory evaluation methods in the order the paper's
// figures report them. The streaming twoPassSAX method lives in the
// saxeval package since it consumes readers, not trees.
func Methods() []Method {
	return []Method{MethodCopyUpdate, MethodNaive, MethodTwoPass, MethodTopDown}
}

// Eval evaluates the compiled transform query on doc with the given
// method. The input tree is never modified; depending on the method the
// result may share unmodified subtrees with doc (see EvalTopDown).
func (c *Compiled) Eval(doc *tree.Node, m Method) (*tree.Node, error) {
	switch m {
	case MethodNaive:
		return EvalNaive(c, doc)
	case MethodTopDown:
		return EvalTopDown(c, doc, DirectChecker{})
	case MethodTwoPass:
		return EvalTwoPass(c, doc)
	case MethodCopyUpdate:
		return EvalCopyUpdate(c, doc)
	default:
		return nil, fmt.Errorf("core: unknown method %q", m)
	}
}

// Eval compiles and evaluates q on doc; a convenience for one-shot use.
func (q *Query) Eval(doc *tree.Node, m Method) (*tree.Node, error) {
	c, err := q.Compile()
	if err != nil {
		return nil, err
	}
	return c.Eval(doc, m)
}
