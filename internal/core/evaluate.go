package core

import (
	"context"
	"strings"

	"xtq/internal/tree"
	"xtq/internal/xerr"
)

// Method selects a transform-query evaluation algorithm. The names follow
// the paper's experimental section (§7.1).
type Method string

const (
	// MethodNaive is the rewriting-based Naive method of §3.1 ("NAIVE").
	MethodNaive Method = "naive"
	// MethodTopDown is algorithm topDown with direct qualifier
	// evaluation (§3.3; "GENTOP").
	MethodTopDown Method = "topdown"
	// MethodTwoPass is bottomUp followed by topDown with annotated
	// qualifier checks (§5; "TD-BU").
	MethodTwoPass Method = "twopass"
	// MethodCopyUpdate is the snapshot-and-update baseline
	// ("GalaXUpdate").
	MethodCopyUpdate Method = "copyupdate"
	// MethodAuto is not an algorithm but a directive: let the
	// cost-based planner (internal/plan) pick one of the concrete
	// methods per (query, document version). Layers that hold document
	// statistics (the engine facade, the store) resolve it before
	// evaluation; EvalContext itself rejects it — by the time an
	// evaluator runs, a concrete method must have been chosen.
	MethodAuto Method = "auto"
)

// Methods lists the in-memory evaluation methods in the order the paper's
// figures report them. The streaming twoPassSAX method lives in the
// saxeval package since it consumes readers, not trees.
func Methods() []Method {
	return []Method{MethodCopyUpdate, MethodNaive, MethodTwoPass, MethodTopDown}
}

// MethodNames returns the method names as strings, for flag help and
// error messages.
func MethodNames() []string {
	ms := Methods()
	out := make([]string, len(ms))
	for i, m := range ms {
		out[i] = string(m)
	}
	return out
}

// ParseMethod validates a method name, returning an Eval-kind *xerr.Error
// naming the valid methods when it is unknown. Use it to reject a bad
// method before any input document is read.
func ParseMethod(s string) (Method, error) {
	if s == string(MethodAuto) {
		return MethodAuto, nil
	}
	for _, m := range Methods() {
		if string(m) == s {
			return m, nil
		}
	}
	return "", unknownMethodErr(Method(s))
}

func unknownMethodErr(m Method) error {
	return xerr.New(xerr.Eval, "", "core: unknown method %q (valid: %s)",
		string(m), strings.Join(append(MethodNames(), string(MethodAuto)), ", "))
}

// EvalContext evaluates the compiled transform query on doc with the given
// method, aborting at node granularity when ctx is cancelled. The input
// tree is never modified; depending on the method the result may share
// unmodified subtrees with doc (see EvalTopDown). A Compiled is immutable,
// so EvalContext is safe to call from concurrent goroutines.
func (c *Compiled) EvalContext(ctx context.Context, doc *tree.Node, m Method) (*tree.Node, error) {
	// The evaluators poll cancellation every pollInterval nodes, which a
	// small document may never reach; checking up front makes an
	// already-cancelled context fail deterministically.
	if ctx != nil && ctx.Err() != nil {
		return nil, xerr.Wrap(xerr.Eval, ctx.Err())
	}
	switch m {
	case MethodNaive:
		return EvalNaive(ctx, c, doc)
	case MethodTopDown:
		return EvalTopDown(ctx, c, doc, DirectChecker{})
	case MethodTwoPass:
		return EvalTwoPass(ctx, c, doc)
	case MethodCopyUpdate:
		return EvalCopyUpdate(ctx, c, doc)
	case MethodAuto:
		return nil, xerr.New(xerr.Eval, "",
			"core: method auto must be resolved by the planner before evaluation")
	default:
		return nil, unknownMethodErr(m)
	}
}

// Eval is EvalContext without cancellation.
func (c *Compiled) Eval(doc *tree.Node, m Method) (*tree.Node, error) {
	return c.EvalContext(context.Background(), doc, m)
}

// Eval compiles and evaluates q on doc; a convenience for one-shot use.
func (q *Query) Eval(doc *tree.Node, m Method) (*tree.Node, error) {
	c, err := q.Compile()
	if err != nil {
		return nil, err
	}
	return c.Eval(doc, m)
}
