package core

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"testing"

	"xtq/internal/sax"
	"xtq/internal/tree"
	"xtq/internal/xerr"
	"xtq/internal/xpath"
)

func mustBottomUp(t *testing.T, c *Compiled, d *tree.Node) *Annotations {
	t.Helper()
	ann, err := EvalBottomUp(context.Background(), c, d)
	if err != nil {
		t.Fatal(err)
	}
	return ann
}

const fig1 = `<db>
<part><pname>keyboard</pname>
  <supplier><sname>HP</sname><price>15</price><country>US</country></supplier>
  <supplier><sname>Logi</sname><price>12</price><country>A</country></supplier>
  <subPart><part><pname>key</pname>
    <supplier><sname>Acme</sname><price>20</price><country>CN</country></supplier>
  </part></subPart>
</part>
<part><pname>mouse</pname>
  <supplier><sname>Dell</sname><price>9</price><country>A</country></supplier>
</part>
</db>`

func doc(t *testing.T) *tree.Node {
	t.Helper()
	d, err := sax.ParseString(fig1)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func compile(t *testing.T, src string) *Compiled {
	t.Helper()
	c, err := MustParseQuery(src).Compile()
	if err != nil {
		t.Fatalf("compile %s: %v", src, err)
	}
	return c
}

func evalAllMethods(t *testing.T, c *Compiled, d *tree.Node) map[Method]*tree.Node {
	t.Helper()
	out := make(map[Method]*tree.Node)
	for _, m := range Methods() {
		before := d.String()
		r, err := c.Eval(d, m)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if d.String() != before {
			t.Fatalf("%s: evaluation modified the input document", m)
		}
		out[m] = r
	}
	return out
}

func assertAllEqual(t *testing.T, results map[Method]*tree.Node) *tree.Node {
	t.Helper()
	ref := results[MethodCopyUpdate]
	for m, r := range results {
		if !tree.Equal(ref, r) {
			t.Fatalf("method %s disagrees:\ncopyupdate: %s\n%s: %s", m, ref, m, r)
		}
	}
	return ref
}

func TestDeletePrice(t *testing.T) {
	// The introduction's motivating query: delete $a//price.
	d := doc(t)
	c := compile(t, `transform copy $a := doc("foo") modify do delete $a//price return $a`)
	ref := assertAllEqual(t, evalAllMethods(t, c, d))
	if got := tree.CountLabel(ref, "price"); got != 0 {
		t.Errorf("result still has %d price elements", got)
	}
	if got := tree.CountLabel(ref, "supplier"); got != 4 {
		t.Errorf("suppliers damaged: %d", got)
	}
	if got := tree.CountLabel(d, "price"); got != 4 {
		t.Errorf("source lost price elements: %d", got)
	}
}

func TestSecurityViewDelete(t *testing.T) {
	// Example 1.1: delete //supplier[country='c1' or country='c2']/price.
	d := doc(t)
	c := compile(t, `transform copy $a := doc("foo") modify do delete $a//supplier[country = "A" or country = "CN"]/price return $a`)
	ref := assertAllEqual(t, evalAllMethods(t, c, d))
	if got := tree.CountLabel(ref, "price"); got != 1 {
		t.Errorf("result has %d price elements, want 1 (only the US supplier's)", got)
	}
}

func TestInsertExample32(t *testing.T) {
	// Example 3.2: insert a supplier under selected parts.
	d := doc(t)
	c := compile(t, `transform copy $a := doc("foo") modify do insert <supplier><sname>HP</sname></supplier> into $a//part[pname = "keyboard"]//part[not(supplier/sname = "HP") and not(supplier/price < 15)] return $a`)
	ref := assertAllEqual(t, evalAllMethods(t, c, d))
	// Only the inner "key" part matches (Acme at 20 ≥ 15, not HP).
	if got := tree.CountLabel(ref, "supplier"); got != 5 {
		t.Errorf("suppliers = %d, want 5", got)
	}
	inner := xpath.Select(ref, xpath.MustParse("//part[pname = \"key\"]"))
	if len(inner) != 1 {
		t.Fatalf("inner part missing")
	}
	last := inner[0].Children[len(inner[0].Children)-1]
	if last.Label != "supplier" || tree.CountLabel(last, "sname") != 1 {
		t.Errorf("inserted element not last child: %s", last)
	}
}

func TestReplace(t *testing.T) {
	d := doc(t)
	c := compile(t, `transform copy $a := doc("foo") modify do replace $a//supplier[price > 10]/price with <price>0</price> return $a`)
	ref := assertAllEqual(t, evalAllMethods(t, c, d))
	zeros := xpath.Select(ref, xpath.MustParse(`//price[. = "0"]`))
	if len(zeros) != 3 {
		t.Errorf("replaced %d prices, want 3 (15, 12 and 20)", len(zeros))
	}
	if got := tree.CountLabel(ref, "price"); got != 4 {
		t.Errorf("price count changed: %d", got)
	}
}

func TestRename(t *testing.T) {
	d := doc(t)
	c := compile(t, `transform copy $a := doc("foo") modify do rename $a//subPart as componentOf return $a`)
	ref := assertAllEqual(t, evalAllMethods(t, c, d))
	if tree.CountLabel(ref, "subPart") != 0 || tree.CountLabel(ref, "componentOf") != 1 {
		t.Errorf("rename failed: %s", ref)
	}
}

func TestNestedDelete(t *testing.T) {
	d := doc(t)
	c := compile(t, `transform copy $a := doc("foo") modify do delete $a//part return $a`)
	ref := assertAllEqual(t, evalAllMethods(t, c, d))
	if tree.CountLabel(ref, "part") != 0 {
		t.Errorf("parts remain: %s", ref)
	}
	if ref.Root() == nil || ref.Root().Label != "db" {
		t.Errorf("root damaged: %s", ref)
	}
}

func TestNestedInsert(t *testing.T) {
	d := doc(t)
	c := compile(t, `transform copy $a := doc("foo") modify do insert <tag/> into $a//part return $a`)
	ref := assertAllEqual(t, evalAllMethods(t, c, d))
	if got := tree.CountLabel(ref, "tag"); got != 3 {
		t.Errorf("inserted %d tags, want 3 (every part, nested included)", got)
	}
}

func TestNestedReplaceOutermostWins(t *testing.T) {
	d := doc(t)
	c := compile(t, `transform copy $a := doc("foo") modify do replace $a//part with <gone/> return $a`)
	ref := assertAllEqual(t, evalAllMethods(t, c, d))
	if got := tree.CountLabel(ref, "gone"); got != 2 {
		t.Errorf("gone = %d, want 2 (outermost parts only)", got)
	}
	if tree.CountLabel(ref, "part") != 0 {
		t.Errorf("parts remain")
	}
}

func TestDeleteRootElement(t *testing.T) {
	d := doc(t)
	c := compile(t, `transform copy $a := doc("foo") modify do delete $a/db return $a`)
	ref := assertAllEqual(t, evalAllMethods(t, c, d))
	if ref.Root() != nil {
		t.Errorf("document should be empty, got %s", ref)
	}
}

func TestNoMatchIsIdentity(t *testing.T) {
	d := doc(t)
	c := compile(t, `transform copy $a := doc("foo") modify do delete $a//nosuch return $a`)
	results := evalAllMethods(t, c, d)
	ref := assertAllEqual(t, results)
	if !tree.Equal(ref, d) {
		t.Errorf("no-match transform should be identity")
	}
	// topDown should return the document itself (full sharing).
	if results[MethodTopDown] != d {
		t.Errorf("topDown should share the unchanged document")
	}
}

func TestStructuralSharing(t *testing.T) {
	// topDown shares untouched subtrees; copy-update shares nothing.
	d := doc(t)
	c := compile(t, `transform copy $a := doc("foo") modify do delete $a/db/part[pname = "mouse"] return $a`)
	results := evalAllMethods(t, c, d)
	assertAllEqual(t, results)
	td := results[MethodTopDown]
	if shared := tree.SharedNodes(d, td); shared == 0 {
		t.Errorf("topDown result shares no nodes with input")
	}
	cu := results[MethodCopyUpdate]
	if shared := tree.SharedNodes(d, cu); shared != 0 {
		t.Errorf("copy-update result shares %d nodes with input", shared)
	}
	// The keyboard part (untouched) must be shared by pointer.
	kb := xpath.Select(d, xpath.MustParse(`db/part[pname = "keyboard"]`))[0]
	kbOut := xpath.Select(td, xpath.MustParse(`db/part[pname = "keyboard"]`))[0]
	if kb != kbOut {
		t.Errorf("untouched subtree was copied by topDown")
	}
}

func TestBottomUpPruning(t *testing.T) {
	d := doc(t)
	// supplier//part reaches no state from the root (Example 5.3): the
	// pass must stop after the root's children.
	c := compile(t, `transform copy $a := doc("foo") modify do delete $a/supplier//part return $a`)
	ann := mustBottomUp(t, c, d)
	if ann.NodesVisited > 1 {
		t.Errorf("bottomUp visited %d nodes, want 1 (just the root, then prune)", ann.NodesVisited)
	}
	// A selective path prunes the mouse part's subtree below depth 2.
	c2 := compile(t, `transform copy $a := doc("foo") modify do delete $a/db/part[pname = "keyboard"]/supplier[country = "US"] return $a`)
	ann2 := mustBottomUp(t, c2, d)
	total := d.CountElements()
	if ann2.NodesVisited >= total {
		t.Errorf("bottomUp visited all %d elements; pruning ineffective", ann2.NodesVisited)
	}
}

func TestTwoPassNoFallbacks(t *testing.T) {
	d := doc(t)
	c := compile(t, `transform copy $a := doc("foo") modify do delete $a//part[not(supplier/sname = "HP") and not(supplier/price < 15)] return $a`)
	ann := mustBottomUp(t, c, d)
	checker := &AnnotChecker{Ann: ann}
	got, err := EvalTopDown(context.Background(), c, d, checker)
	if err != nil {
		t.Fatal(err)
	}
	if checker.Fallbacks != 0 {
		t.Errorf("annotation checker fell back to direct evaluation %d times", checker.Fallbacks)
	}
	want, err := EvalTopDown(context.Background(), c, d, DirectChecker{})
	if err != nil {
		t.Fatal(err)
	}
	if !tree.Equal(got, want) {
		t.Errorf("twoPass result differs from direct topDown")
	}
}

// Property: all four in-memory methods agree on random documents × random
// updates, and never mutate the input.
func TestMethodsAgreeRandom(t *testing.T) {
	genOpts := tree.DefaultGenOptions()
	cfg := xpath.DefaultGenConfig()
	elems := []*tree.Node{
		tree.NewElement("new", tree.NewText("v")),
		tree.NewElement("supplier", tree.NewElement("sname", tree.NewText("HP"))),
	}
	checked := 0
	for seed := int64(0); seed < 250; seed++ {
		rng := rand.New(rand.NewSource(seed))
		d := tree.Generate(rng, genOpts)
		p := xpath.RandomPath(rng, cfg)
		u := Update{Path: p}
		switch rng.Intn(4) {
		case 0:
			u.Op = Insert
			u.Elem = elems[rng.Intn(len(elems))]
		case 1:
			u.Op = Delete
		case 2:
			u.Op = Replace
			u.Elem = elems[rng.Intn(len(elems))]
		case 3:
			u.Op = Rename
			u.Label = "renamed"
		}
		q := &Query{Var: "a", Doc: "gen", Update: u}
		c, err := q.Compile()
		if err != nil {
			continue
		}
		checked++
		results := make(map[Method]*tree.Node)
		for _, m := range Methods() {
			r, err := c.Eval(d, m)
			if err != nil {
				t.Fatalf("seed %d %s %s: %v", seed, m, q, err)
			}
			results[m] = r
		}
		ref := results[MethodCopyUpdate]
		for m, r := range results {
			if !tree.Equal(ref, r) {
				t.Fatalf("seed %d: %s disagrees on %s\ndoc: %s\ncopyupdate: %s\n%s: %s",
					seed, m, q.Update.String("$a"), d, ref, m, r)
			}
		}
		if err := tree.Validate(ref); err != nil && u.Op != Delete {
			// Delete of the root element may legitimately empty the doc.
			t.Fatalf("seed %d: invalid result: %v", seed, err)
		}
	}
	if checked < 200 {
		t.Fatalf("only %d/250 random updates compiled", checked)
	}
}

// Property: twoPass never needs the annotation fallback on random inputs.
func TestTwoPassNoFallbacksRandom(t *testing.T) {
	genOpts := tree.DefaultGenOptions()
	cfg := xpath.DefaultGenConfig()
	for seed := int64(500); seed < 650; seed++ {
		rng := rand.New(rand.NewSource(seed))
		d := tree.Generate(rng, genOpts)
		p := xpath.RandomPath(rng, cfg)
		q := &Query{Var: "a", Doc: "gen", Update: Update{Op: Delete, Path: p}}
		c, err := q.Compile()
		if err != nil {
			continue
		}
		ann := mustBottomUp(t, c, d)
		checker := &AnnotChecker{Ann: ann}
		if _, err := EvalTopDown(context.Background(), c, d, checker); err != nil {
			t.Fatal(err)
		}
		if checker.Fallbacks != 0 {
			t.Fatalf("seed %d: %d fallbacks for %s", seed, checker.Fallbacks, p)
		}
	}
}

func TestEvalUnknownMethod(t *testing.T) {
	d := doc(t)
	c := compile(t, `transform copy $a := doc("foo") modify do delete $a//price return $a`)
	if _, err := c.Eval(d, Method("bogus")); err == nil {
		t.Errorf("unknown method accepted")
	}
}

func TestQueryEvalConvenience(t *testing.T) {
	d := doc(t)
	q := MustParseQuery(`transform copy $a := doc("foo") modify do delete $a//price return $a`)
	r, err := q.Eval(d, MethodTopDown)
	if err != nil {
		t.Fatal(err)
	}
	if tree.CountLabel(r, "price") != 0 {
		t.Errorf("prices remain")
	}
	bad := &Query{Var: "a", Update: Update{Op: Delete, Path: xpath.MustParse(".")}}
	if _, err := bad.Eval(d, MethodTopDown); err == nil {
		t.Errorf("uncompilable query accepted")
	}
}

func TestNaiveQuadraticShape(t *testing.T) {
	// Sanity check of the membership-scan behaviour: broad scope means
	// |$xp| grows with the document.
	var b strings.Builder
	b.WriteString("<db>")
	for i := 0; i < 200; i++ {
		b.WriteString("<part><pname>p</pname></part>")
	}
	b.WriteString("</db>")
	d, err := sax.ParseString(b.String())
	if err != nil {
		t.Fatal(err)
	}
	c := compile(t, `transform copy $a := doc("x") modify do insert <t/> into $a//part return $a`)
	results := evalAllMethods(t, c, d)
	ref := assertAllEqual(t, results)
	if got := tree.CountLabel(ref, "t"); got != 200 {
		t.Errorf("inserted %d, want 200", got)
	}
}

// TestSharedSubtreeReindexSafety pins the ownership discipline of the
// node index: topDown results share subtrees with their input, so
// indexing a result steals those nodes from the input document's index
// (tree.Index ownership is exclusive). Every evaluator must detect the
// stolen nodes (Index.OrdOf reports non-membership) and degrade to its
// slow path instead of reading another document's ordinals.
func TestSharedSubtreeReindexSafety(t *testing.T) {
	d := doc(t)
	c := compile(t, `transform copy $a := doc("foo") modify do delete $a//supplier[country = "A"]/price return $a`)
	want := assertAllEqual(t, evalAllMethods(t, c, d))

	// Produce a sharing result and index it, stealing shared nodes.
	r1, err := c.Eval(d, MethodTopDown)
	if err != nil {
		t.Fatal(err)
	}
	if tree.SharedNodes(d, r1) == 0 {
		t.Fatal("precondition: result shares no nodes with input")
	}
	tree.EnsureIndex(r1)

	// The input document's cached index is now partial; all methods must
	// still agree with the pre-stealing reference.
	after := evalAllMethods(t, c, d)
	assertAllEqual(t, after)
	if !tree.Equal(after[MethodTwoPass], want) {
		t.Fatal("results changed after a sharing tree was re-indexed")
	}

	// Evaluating over the re-indexed result works too.
	r2, err := c.Eval(r1, MethodTwoPass)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := c.Eval(r1.DeepCopy(), MethodCopyUpdate)
	if err != nil {
		t.Fatal(err)
	}
	if !tree.Equal(r2, ref) {
		t.Fatal("evaluation over re-indexed result diverges")
	}

	// The sharper variant: deleting the document's first-interned label
	// shifts the result's interning order, so the stolen nodes' Sym
	// fields are valid ids of a *different* table ("a" gets "x"'s old
	// id). Trusting raw Sym values against the original document's
	// binding would then false-match and delete <a> on the re-run.
	d2, err := sax.ParseString(`<root><x/><a/><b/></root>`)
	if err != nil {
		t.Fatal(err)
	}
	c2 := compile(t, `transform copy $a := doc("foo") modify do delete $a/root/x return $a`)
	first, err := c2.Eval(d2, MethodTopDown)
	if err != nil {
		t.Fatal(err)
	}
	tree.EnsureIndex(first) // restamps the shared <a> and <b> nodes
	for _, m := range Methods() {
		again, err := c2.Eval(d2, m)
		if err != nil {
			t.Fatal(err)
		}
		if !tree.Equal(again, first) {
			t.Fatalf("%s after re-indexing: got %s, want %s", m, again, first)
		}
	}
}

// TestApplySealedSnapshotFailsFast pins the store-snapshot counterpart
// of TestSharedSubtreeReindexSafety: Update.Apply on a document that is
// — or shares subtrees with — a sealed snapshot must fail with a typed
// error before any mutation, instead of corrupting the snapshot's
// lock-free readers and silently degrading them by dropping the index.
func TestApplySealedSnapshotFailsFast(t *testing.T) {
	d := doc(t)
	snapRoot, _, _ := tree.Freeze(d, nil)
	snapXML := snapRoot.String()

	u := &Update{Op: Delete, Path: xpath.MustParse(`//price`)}

	// Directly on the sealed root.
	err := u.Apply(snapRoot)
	var xe *xerr.Error
	if !errors.As(err, &xe) || xe.Kind != xerr.Eval {
		t.Fatalf("Apply(sealed) = %v, want *xerr.Error kind eval", err)
	}
	if snapRoot.String() != snapXML {
		t.Fatal("failed Apply mutated the sealed snapshot")
	}
	if ix := tree.IndexOf(snapRoot); ix == nil || !ix.Sealed() {
		t.Fatal("failed Apply disturbed the sealed index")
	}

	// On a tree that shares subtrees with the snapshot: the structural
	// sharing shape a topDown result over a snapshot has.
	c := compile(t, `transform copy $a := doc("foo") modify do delete $a//supplier[country = "A"]/price return $a`)
	shared, err := c.Eval(snapRoot, MethodTopDown)
	if err != nil {
		t.Fatal(err)
	}
	if tree.SharedNodes(snapRoot, shared) == 0 {
		t.Fatal("precondition: result shares no nodes with the snapshot")
	}
	err = u.Apply(shared)
	if !errors.As(err, &xe) || xe.Kind != xerr.Eval {
		t.Fatalf("Apply(sharing tree) = %v, want *xerr.Error kind eval", err)
	}
	if snapRoot.String() != snapXML {
		t.Fatal("failed Apply mutated the snapshot through a sharing tree")
	}

	// A private deep copy severs the sharing and updates fine — the
	// copy-and-update baseline over snapshots keeps working.
	priv := shared.DeepCopy()
	if err := u.Apply(priv); err != nil {
		t.Fatalf("Apply(deep copy) = %v", err)
	}
	if snapRoot.String() != snapXML {
		t.Fatal("updating a deep copy mutated the snapshot")
	}
}

// TestEvalOverSealedSharingTree pins that all methods still agree when
// evaluating a tree that shares subtrees with a sealed snapshot: the
// sharing nodes stay owned by the snapshot (no stealing), so the
// evaluators must take their slow paths there instead of reading foreign
// ordinals.
func TestEvalOverSealedSharingTree(t *testing.T) {
	d := doc(t)
	snapRoot, _, _ := tree.Freeze(d, nil)

	c := compile(t, `transform copy $a := doc("foo") modify do delete $a//supplier[country = "A"]/price return $a`)
	shared, err := c.Eval(snapRoot, MethodTopDown)
	if err != nil {
		t.Fatal(err)
	}
	if tree.SharedNodes(snapRoot, shared) == 0 {
		t.Fatal("precondition: no structural sharing")
	}

	// Evaluate a second query over the sharing tree with every method;
	// EnsureIndex(shared) skips the sealed subtrees, so OrdOf misses
	// there and the slow paths must carry the evaluation.
	c2 := compile(t, `transform copy $a := doc("foo") modify do rename $a//supplier[country = "US"] as vendor return $a`)
	results := evalAllMethods(t, c2, shared)
	assertAllEqual(t, results)

	// The snapshot still owns every one of its nodes.
	ix := tree.IndexOf(snapRoot)
	if ix == nil || !ix.Sealed() {
		t.Fatal("snapshot index lost")
	}
	count := 0
	var walk func(n *tree.Node)
	walk = func(n *tree.Node) {
		if ix.Contains(n) {
			count++
		}
		for _, ch := range n.Children {
			walk(ch)
		}
	}
	walk(snapRoot)
	if count != ix.NumNodes {
		t.Fatalf("snapshot owns %d of %d nodes after sharing-tree evaluation", count, ix.NumNodes)
	}
}
