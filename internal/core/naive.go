package core

import (
	"context"

	"xtq/internal/tree"
	"xtq/internal/xpath"
)

// EvalNaive implements the Naive Method of §3.1 (Fig. 2): it first
// materializes the selected node set $xp = r[[p]] and then reconstructs the
// whole document, testing every element for membership in $xp with a linear
// scan — the "some $x in $xp satisfies ($n is $x)" test of the rewritten
// XQuery. This faithfully reproduces the method's O(|T|·|$xp|) worst-case
// behaviour: quadratic when the update's scope is broad, linear when p is
// highly selective.
//
// The input tree is not modified; element nodes are rebuilt (as the
// rewritten query's element constructors do) while text leaves are shared.
func EvalNaive(ctx context.Context, c *Compiled, doc *tree.Node) (*tree.Node, error) {
	can := NewCanceler(ctx)
	u := &c.Query.Update
	xp := xpath.Select(doc, u.Path)

	// member reproduces the unindexed node-set membership test of the
	// rewritten query; deliberately a linear scan, see above.
	member := func(n *tree.Node) bool {
		for _, x := range xp {
			if x == n {
				return true
			}
		}
		return false
	}

	var rebuild func(n *tree.Node) *tree.Node
	rebuild = func(n *tree.Node) *tree.Node {
		if can.Stopped() {
			return nil
		}
		if n.Kind != tree.Element {
			return n // "else $n": non-elements pass through
		}
		hit := member(n)
		if hit {
			switch u.Op {
			case Delete:
				return nil
			case Replace:
				return u.Elem.DeepCopy()
			}
		}
		out := &tree.Node{Kind: tree.Element, Sym: n.Sym, Label: n.Label, Attrs: n.Attrs}
		if hit && u.Op == Rename {
			out.Label = u.Label
			out.Sym = tree.NoSym
		}
		for _, ch := range n.Children {
			if r := rebuild(ch); r != nil {
				out.Children = append(out.Children, r)
			}
		}
		if hit && u.Op == Insert {
			out.Children = append(out.Children, u.Elem.DeepCopy())
		}
		return out
	}

	result := tree.NewDocument(nil)
	for _, ch := range doc.Children {
		if r := rebuild(ch); r != nil {
			result.Children = append(result.Children, r)
		}
	}
	if err := can.Err(); err != nil {
		return nil, err
	}
	return result, nil
}
