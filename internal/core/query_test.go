package core

import (
	"strings"
	"testing"

	"xtq/internal/tree"
	"xtq/internal/xpath"
)

func TestParseQueryForms(t *testing.T) {
	cases := []struct {
		src  string
		op   Op
		path string
	}{
		{
			`transform copy $a := doc("foo") modify do delete $a//price return $a`,
			Delete, "//price",
		},
		{
			`transform copy $x := doc('bar') modify do insert <e/> into $x/db/part return $x`,
			Insert, "db/part",
		},
		{
			`transform copy $a := doc("f") modify do replace $a//part[pname = "kb"] with <part><pname>kb2</pname></part> return $a`,
			Replace, `//part[pname = "kb"]`,
		},
		{
			`transform copy $a := doc("f") modify do rename $a//subPart as component return $a`,
			Rename, "//subPart",
		},
		{
			// Whitespace and newlines are insignificant.
			"transform copy $a := doc(\"f\")\n  modify\n  do delete $a//supplier[country = \"A\"]/price\n  return $a",
			Delete, `//supplier[country = "A"]/price`,
		},
	}
	for _, tc := range cases {
		q, err := ParseQuery(tc.src)
		if err != nil {
			t.Errorf("ParseQuery(%q): %v", tc.src, err)
			continue
		}
		if q.Update.Op != tc.op {
			t.Errorf("%q: op = %s, want %s", tc.src, q.Update.Op, tc.op)
		}
		if got := q.Update.Path.String(); got != tc.path {
			t.Errorf("%q: path = %q, want %q", tc.src, got, tc.path)
		}
		// Rendering re-parses to the same query.
		q2, err := ParseQuery(q.String())
		if err != nil {
			t.Errorf("reparse of %q: %v", q.String(), err)
			continue
		}
		if q2.String() != q.String() {
			t.Errorf("render not fixpoint: %q vs %q", q.String(), q2.String())
		}
	}
}

func TestParseQueryElemWithKeywordText(t *testing.T) {
	// The constant element may contain the keywords as text.
	q, err := ParseQuery(`transform copy $a := doc("f") modify do insert <note>go into the return </note> into $a//part return $a`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Update.Elem.Value() != "go into the return " {
		t.Errorf("element text = %q", q.Update.Elem.Value())
	}
}

func TestParseQueryElemNested(t *testing.T) {
	q, err := ParseQuery(`transform copy $a := doc("f") modify do insert <s a="1"><b><c/></b><b>t</b></s> into $a/db return $a`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Update.Elem.CountElements() != 4 {
		t.Errorf("element = %s", q.Update.Elem)
	}
}

func TestParseQueryPathWithQuotedKeyword(t *testing.T) {
	q, err := ParseQuery(`transform copy $a := doc("f") modify do delete $a//part[pname = "into x"] return $a`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(q.Update.Path.String(), "into x") {
		t.Errorf("path = %s", q.Update.Path)
	}
}

func TestParseQueryErrors(t *testing.T) {
	cases := []string{
		``,
		`transform`,
		`transform copy a := doc("f") modify do delete $a/x return $a`,
		`transform copy $a = doc("f") modify do delete $a/x return $a`,
		`transform copy $a := doc(f) modify do delete $a/x return $a`,
		`transform copy $a := doc("f" modify do delete $a/x return $a`,
		`transform copy $a := doc("f) modify do delete $a/x return $a`,
		`transform copy $a := doc("f") do delete $a/x return $a`,
		`transform copy $a := doc("f") modify delete $a/x return $a`,
		`transform copy $a := doc("f") modify do destroy $a/x return $a`,
		`transform copy $a := doc("f") modify do delete $b/x return $a`,
		`transform copy $a := doc("f") modify do delete $a/x return $b`,
		`transform copy $a := doc("f") modify do delete $a/x return $a junk`,
		`transform copy $a := doc("f") modify do delete $a return $a`,
		`transform copy $a := doc("f") modify do delete $a/x[ return $a`,
		`transform copy $a := doc("f") modify do insert into $a/x return $a`,
		`transform copy $a := doc("f") modify do insert <e> into $a/x return $a`,
		`transform copy $a := doc("f") modify do insert <e/> $a/x return $a`,
		`transform copy $a := doc("f") modify do replace $a/x with return $a`,
		`transform copy $a := doc("f") modify do rename $a/x as return $a`,
		`transform copy $a := doc("f") modify do rename $a/x return $a`,
		`transform copy $ := doc("f") modify do delete $/x return $`,
		`transform copy $a := doc("f") modify do delete $a/@id return $a`,
	}
	for _, src := range cases {
		if q, err := ParseQuery(src); err == nil {
			t.Errorf("ParseQuery accepted %q as %s", src, q)
		}
	}
}

func TestMustParseQueryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustParseQuery("nope")
}

func TestUpdateValidate(t *testing.T) {
	p := xpath.MustParse("a/b")
	bad := []Update{
		{Op: Insert, Path: p},                             // missing elem
		{Op: Insert, Path: p, Elem: tree.NewText("x")},    // not an element
		{Op: Insert, Path: p, Elem: tree.NewElement("")},  // invalid element
		{Op: Replace, Path: p},                            // missing elem
		{Op: Rename, Path: p},                             // missing label
		{Op: Delete, Path: p, Label: "x"},                 // extraneous label
		{Op: Delete, Path: p, Elem: tree.NewElement("e")}, // extraneous elem
		{Op: Delete},         // no path
		{Op: Op(9), Path: p}, // bad op
		{Op: Delete, Path: &xpath.Path{Steps: []xpath.Step{{Axis: xpath.Attribute, Label: "id"}}}},
	}
	for i, u := range bad {
		if err := u.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, u)
		}
	}
	good := Update{Op: Delete, Path: p}
	if err := good.Validate(); err != nil {
		t.Errorf("valid update rejected: %v", err)
	}
}

func TestOpString(t *testing.T) {
	for op, want := range map[Op]string{Insert: "insert", Delete: "delete", Replace: "replace", Rename: "rename", Op(9): "invalid"} {
		if got := op.String(); got != want {
			t.Errorf("Op(%d) = %q, want %q", op, got, want)
		}
	}
}

func TestUpdateStringForms(t *testing.T) {
	p := xpath.MustParse("db/part")
	e := tree.NewElement("e")
	cases := map[string]Update{
		"insert <e/> into $a/db/part":  {Op: Insert, Path: p, Elem: e},
		"delete $a/db/part":            {Op: Delete, Path: p},
		"replace $a/db/part with <e/>": {Op: Replace, Path: p, Elem: e},
		"rename $a/db/part as z":       {Op: Rename, Path: p, Label: "z"},
	}
	for want, u := range cases {
		if got := u.String("$a"); got != want {
			t.Errorf("String = %q, want %q", got, want)
		}
	}
	badOp := Update{Op: Op(9), Path: p}
	if got := badOp.String("$a"); got != "invalid" {
		t.Errorf("invalid op String = %q", got)
	}
}

func TestApplyRequiresValid(t *testing.T) {
	d := tree.NewDocument(tree.NewElement("db"))
	u := Update{Op: Insert, Path: xpath.MustParse("db")}
	if err := u.Apply(d); err == nil {
		t.Errorf("Apply accepted invalid update")
	}
}

func TestCompileRejectsBadPaths(t *testing.T) {
	for _, src := range []string{
		`transform copy $a := doc("f") modify do delete $a/. return $a`,
	} {
		q, err := ParseQuery(src)
		if err != nil {
			continue // parse-time rejection also acceptable
		}
		if _, err := q.Compile(); err == nil {
			t.Errorf("Compile accepted %q", src)
		}
	}
	q := &Query{Update: Update{Op: Delete, Path: xpath.MustParse("a")}}
	if _, err := q.Compile(); err == nil {
		t.Errorf("Compile accepted query without variable")
	}
}
