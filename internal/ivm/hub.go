package ivm

import (
	"context"
	"sync"

	"xtq/internal/xerr"
)

// Event is one change-feed entry of a document's watch stream.
type Event struct {
	// Doc is the document name.
	Doc string `json:"doc"`
	// Version is the committed version the event describes; for a
	// resync event, the newest version the hub knows (the subscriber
	// should re-read state and treat the stream as continuing from it).
	Version uint64 `json:"version"`
	// ETag is the strong entity tag of the version, exactly as the
	// document endpoints serve it.
	ETag string `json:"etag,omitempty"`
	// AffectedViews lists the registered views the commit may have
	// changed (statically affected or unknown); empty when every view
	// was provably unaffected.
	AffectedViews []string `json:"affectedViews,omitempty"`
	// Deleted marks the commit as a removal (a tombstone version).
	Deleted bool `json:"deleted,omitempty"`
	// ViewsChanged marks a view-registry mutation: the document itself
	// did not change (Version is its current head), but compositions
	// over it may differ. Registry events are delivered live only,
	// never replayed from the ring.
	ViewsChanged bool `json:"viewsChanged,omitempty"`
	// Resync tells the subscriber it missed events (slow consumer, ring
	// too short for its ?from, or a replica bootstrap): re-read current
	// state at Version, then continue consuming.
	Resync bool `json:"resync,omitempty"`
}

// DefaultRing is the per-document event-history ring size: how far
// back ?from catch-up can reach without a resync.
const DefaultRing = 64

// DefaultSubscriberBuffer bounds each subscriber's pending events;
// overflow collapses the backlog into one resync event. Publishing
// never blocks on slow consumers.
const DefaultSubscriberBuffer = 256

// Hub fans committed versions out to watch subscribers, one feed per
// document. All methods are safe for concurrent use; Publish never
// blocks (it runs inside commits).
type Hub struct {
	mu    sync.Mutex
	feeds map[string]*feed
	ring  int
	buf   int
}

// feed is one document's event history and subscriber set.
type feed struct {
	// ring holds the most recent change events (ViewsChanged events are
	// live-only), versions strictly ascending and contiguous.
	ring []Event
	subs map[*Subscriber]struct{}
}

// NewHub returns a hub with the given per-document history ring size
// and per-subscriber buffer bound (zero or negative pick defaults).
func NewHub(ring, buf int) *Hub {
	if ring <= 0 {
		ring = DefaultRing
	}
	if buf <= 0 {
		buf = DefaultSubscriberBuffer
	}
	return &Hub{feeds: make(map[string]*feed), ring: ring, buf: buf}
}

func (h *Hub) feedOf(doc string, create bool) *feed {
	f := h.feeds[doc]
	if f == nil && create {
		f = &feed{subs: make(map[*Subscriber]struct{})}
		h.feeds[doc] = f
	}
	return f
}

// Publish delivers ev to the document's subscribers and, unless it is
// a registry or resync signal, retains it in the catch-up ring.
func (h *Hub) Publish(ev Event) {
	h.mu.Lock()
	f := h.feedOf(ev.Doc, true)
	if !ev.ViewsChanged && !ev.Resync {
		f.ring = append(f.ring, ev)
		if len(f.ring) > h.ring {
			f.ring = f.ring[len(f.ring)-h.ring:]
		}
	}
	if ev.Resync {
		// A wholesale state replacement invalidates the ring: versions
		// may have been skipped.
		f.ring = f.ring[:0]
	}
	subs := make([]*Subscriber, 0, len(f.subs))
	for s := range f.subs {
		subs = append(subs, s)
	}
	h.mu.Unlock()
	for _, s := range subs {
		s.push(ev)
	}
}

// Subscribe registers a subscriber for doc's feed. With haveFrom, the
// pending queue is atomically seeded from the catch-up ring with every
// change event after version from; when the ring no longer covers
// from+1 (or the hub has no history but the document head — as the
// caller read it — is already past from), the queue starts with a
// single resync event instead, so the subscriber knows it has a gap.
// head is the document's current version as known to the caller; it is
// only consulted when the ring is empty.
func (h *Hub) Subscribe(doc string, from uint64, haveFrom bool, head uint64) *Subscriber {
	s := &Subscriber{
		hub:    h,
		doc:    doc,
		notify: make(chan struct{}, 1),
		max:    h.buf,
	}
	if haveFrom {
		// On a lagging replica the hub may publish versions at or below
		// from after this subscriber attaches; the floor suppresses those
		// so a resumed client never sees a version twice.
		s.floor = from
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	f := h.feedOf(doc, true)
	if haveFrom {
		var replay []Event
		for _, ev := range f.ring {
			if ev.Version > from {
				replay = append(replay, ev)
			}
		}
		switch {
		case len(replay) > 0 && replay[0].Version == from+1:
			s.pending = replay
		case len(replay) > 0:
			s.pending = []Event{{Doc: doc, Version: replay[len(replay)-1].Version, Resync: true}}
		case head > from:
			s.pending = []Event{{Doc: doc, Version: head, Resync: true}}
		}
	}
	f.subs[s] = struct{}{}
	mSubscribers.Inc()
	return s
}

// Subscriber is one watch connection's event queue.
type Subscriber struct {
	hub *Hub
	doc string

	mu      sync.Mutex
	pending []Event
	closed  bool
	notify  chan struct{}
	max     int
	floor   uint64 // change events at or below this version are already seen
}

// Doc returns the watched document name.
func (s *Subscriber) Doc() string { return s.doc }

// push appends ev, collapsing the backlog into one resync event when
// the buffer bound is hit. Never blocks.
func (s *Subscriber) push(ev Event) {
	s.mu.Lock()
	if s.closed || (!ev.Resync && !ev.ViewsChanged && ev.Version <= s.floor) {
		s.mu.Unlock()
		return
	}
	if len(s.pending) >= s.max {
		s.pending = append(s.pending[:0], Event{Doc: s.doc, Version: ev.Version, Resync: true})
		mHubResyncs.Inc()
	} else {
		s.pending = append(s.pending, ev)
	}
	s.mu.Unlock()
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// Next blocks until at least one event is pending and returns the
// whole batch, or the context's error, or a typed NotFound error after
// Close.
func (s *Subscriber) Next(ctx context.Context) ([]Event, error) {
	for {
		s.mu.Lock()
		if len(s.pending) > 0 {
			evs := s.pending
			s.pending = nil
			s.mu.Unlock()
			return evs, nil
		}
		closed := s.closed
		s.mu.Unlock()
		if closed {
			return nil, xerr.New(xerr.NotFound, "", "ivm: subscription closed")
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-s.notify:
		}
	}
}

// Close unregisters the subscriber and wakes any blocked Next.
func (s *Subscriber) Close() {
	s.hub.mu.Lock()
	if f := s.hub.feedOf(s.doc, false); f != nil {
		if _, ok := f.subs[s]; ok {
			delete(f.subs, s)
			mSubscribers.Dec()
		}
	}
	s.hub.mu.Unlock()
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	select {
	case s.notify <- struct{}{}:
	default:
	}
}
