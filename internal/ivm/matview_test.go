package ivm

import (
	"context"
	"math/rand"
	"testing"

	"xtq/internal/core"
	"xtq/internal/store"
	"xtq/internal/tree"
	"xtq/internal/xmark"
)

// mapCache is a trivial VerdictCache for tests.
type mapCache struct{ m map[string]Verdict }

func newMapCache() *mapCache                     { return &mapCache{m: make(map[string]Verdict)} }
func (c *mapCache) Get(k string) (Verdict, bool) { v, ok := c.m[k]; return v, ok }
func (c *mapCache) Add(k string, v Verdict)      { c.m[k] = v }

// hookStore wires a manager into a fresh in-memory store the way the
// facade does, recording the per-commit affected sets.
func hookStore(mgr *Manager) (*store.Store, *[][]string) {
	st := store.New()
	var affected [][]string
	st.SetCommitHook(func(ev store.CommitEvent) {
		affected = append(affected, mgr.OnCommit(ev))
	})
	return st, &affected
}

func mustPut(t *testing.T, st *store.Store, name string, doc *tree.Node) *store.Snapshot {
	t.Helper()
	snap, _, err := st.Put(name, doc, false)
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

func mustApply(t *testing.T, st *store.Store, name, src string) *store.Snapshot {
	t.Helper()
	c, err := core.MustParseQuery(src).Compile()
	if err != nil {
		t.Fatal(err)
	}
	snap, _, err := st.Apply(context.Background(), name, c, core.MethodTopDown)
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

func oracle(t *testing.T, layers []*core.Compiled, root *tree.Node) *tree.Node {
	t.Helper()
	cur := root
	for _, l := range layers {
		var err error
		if cur, err = l.EvalContext(context.Background(), cur, core.MethodCopyUpdate); err != nil {
			t.Fatal(err)
		}
	}
	return cur
}

func siteDoc() *tree.Node {
	return tree.NewDocument(tree.NewElement("site",
		tree.NewElement("regions",
			tree.NewElement("item", tree.NewElement("name", tree.NewText("lot")))),
		tree.NewElement("people",
			tree.NewElement("person", tree.NewElement("age", tree.NewText("30"))))))
}

func TestManagerLazyMaterializeAndCacheHit(t *testing.T) {
	mgr := NewManager(core.MethodTopDown, nil)
	layers := []*core.Compiled{compileUpdate(t, q(`delete $a/site/people`))}
	mgr.SetView("nopeople", layers, false)
	st, _ := hookStore(mgr)
	snap := mustPut(t, st, "T", siteDoc())

	out, s, err := mgr.Get(context.Background(), snap, "nopeople")
	if err != nil {
		t.Fatal(err)
	}
	if s.Source != "recompute" || s.CacheHit {
		t.Fatalf("first read: %+v", s)
	}
	if !tree.Equal(out, oracle(t, layers, snap.Root())) {
		t.Fatal("materialization mismatch")
	}
	out2, s2, err := mgr.Get(context.Background(), snap, "nopeople")
	if err != nil {
		t.Fatal(err)
	}
	if s2.Source != "cache" || !s2.CacheHit {
		t.Fatalf("second read not a cache hit: %+v", s2)
	}
	if out2 != out {
		t.Fatal("cache hit returned a different tree")
	}
	if _, _, err := mgr.Get(context.Background(), snap, "nosuch"); err == nil {
		t.Fatal("unregistered view served")
	}
}

func TestManagerUnaffectedCommitIsZeroWork(t *testing.T) {
	cache := newMapCache()
	mgr := NewManager(core.MethodTopDown, cache)
	layers := []*core.Compiled{compileUpdate(t, q(`delete $a/site/people`))}
	mgr.SetView("nopeople", layers, false)
	st, affected := hookStore(mgr)
	snap := mustPut(t, st, "T", siteDoc())
	if _, _, err := mgr.Get(context.Background(), snap, "nopeople"); err != nil {
		t.Fatal(err)
	}

	// An update entirely inside the deleted region: provably unaffected.
	snap2 := mustApply(t, st, "T", q(`insert <mark/> into $a/site/people/person`))
	if got := (*affected)[len(*affected)-1]; len(got) != 0 {
		t.Fatalf("unaffected commit reported affected views %v", got)
	}
	out, s, err := mgr.Get(context.Background(), snap2, "nopeople")
	if err != nil {
		t.Fatal(err)
	}
	if s.Source != "cache" || s.UnaffectedCommits != 1 || s.FullCommits != 1 {
		t.Fatalf("after unaffected commit: %+v", s)
	}
	if !tree.Equal(out, oracle(t, layers, snap2.Root())) {
		t.Fatal("unaffected bump serves wrong bytes")
	}
	if len(cache.m) == 0 {
		t.Fatal("verdict cache unused")
	}

	// The same update again must hit the verdict cache (same canonical
	// rendering) and bump again.
	snap3 := mustApply(t, st, "T", q(`insert <mark/> into $a/site/people/person`))
	_, s, err = mgr.Get(context.Background(), snap3, "nopeople")
	if err != nil {
		t.Fatal(err)
	}
	if s.UnaffectedCommits != 2 || s.FullCommits != 1 {
		t.Fatalf("after second unaffected commit: %+v", s)
	}
}

func TestManagerDeltaMaintenance(t *testing.T) {
	mgr := NewManager(core.MethodTopDown, nil)
	layers := []*core.Compiled{compileUpdate(t, q(`delete $a/site/people`))}
	mgr.SetView("nopeople", layers, true) // eager
	st, affected := hookStore(mgr)
	mustPut(t, st, "T", siteDoc())

	// An affecting update outside the deleted region.
	snap := mustApply(t, st, "T", q(`insert <mark/> into $a/site/regions/item`))
	if got := (*affected)[len(*affected)-1]; len(got) != 1 || got[0] != "nopeople" {
		t.Fatalf("affected set %v", got)
	}
	out, s, err := mgr.Get(context.Background(), snap, "nopeople")
	if err != nil {
		t.Fatal(err)
	}
	if s.Source != "cache" {
		t.Fatalf("eager view not maintained: %+v", s)
	}
	if s.DeltaCommits != 1 {
		t.Fatalf("affecting commit did not take the delta path: %+v", s)
	}
	if !tree.Equal(out, oracle(t, layers, snap.Root())) {
		t.Fatal("delta-maintained view mismatch")
	}

	// After an unaffected commit the memo is stale: the next affecting
	// commit must fall back to a full recomposition and still be right.
	mustApply(t, st, "T", q(`delete $a/site/people/person/age`))
	snap3 := mustApply(t, st, "T", q(`insert <mark/> into $a/site/regions`))
	out, s, err = mgr.Get(context.Background(), snap3, "nopeople")
	if err != nil {
		t.Fatal(err)
	}
	if s.Source != "cache" || s.DeltaCommits != 1 || s.FullCommits < 2 {
		t.Fatalf("stale-memo fallback: %+v", s)
	}
	if !tree.Equal(out, oracle(t, layers, snap3.Root())) {
		t.Fatal("full-fallback view mismatch")
	}
}

func TestManagerQualifiedViewMaintained(t *testing.T) {
	mgr := NewManager(core.MethodTopDown, nil)
	layers := []*core.Compiled{compileUpdate(t, q(`delete $a/site/people/person[age = "30"]`))}
	mgr.SetView("adults", layers, true)
	st, affected := hookStore(mgr)
	mustPut(t, st, "T", siteDoc())
	snap := mustApply(t, st, "T", q(`insert <person><age>30</age></person> into $a/site/people`))
	if got := (*affected)[len(*affected)-1]; len(got) != 1 {
		t.Fatalf("qualified view should be affected/unknown: %v", got)
	}
	out, s, err := mgr.Get(context.Background(), snap, "adults")
	if err != nil {
		t.Fatal(err)
	}
	if s.Source != "cache" || s.UnknownCommits != 1 || s.DeltaCommits != 0 {
		t.Fatalf("qualified maintenance: %+v", s)
	}
	if !tree.Equal(out, oracle(t, layers, snap.Root())) {
		t.Fatal("qualified view mismatch")
	}
}

func TestManagerTimeTravelReadDoesNotDisturbCache(t *testing.T) {
	mgr := NewManager(core.MethodTopDown, nil)
	layers := []*core.Compiled{compileUpdate(t, q(`delete $a/site/people`))}
	mgr.SetView("nopeople", layers, true)
	st, _ := hookStore(mgr)
	snap1 := mustPut(t, st, "T", siteDoc())
	snap2 := mustApply(t, st, "T", q(`insert <mark/> into $a/site/regions`))

	out2, s, err := mgr.Get(context.Background(), snap2, "nopeople")
	if err != nil {
		t.Fatal(err)
	}
	if s.Source != "cache" {
		t.Fatalf("head read: %+v", s)
	}
	out1, s1, err := mgr.Get(context.Background(), snap1, "nopeople")
	if err != nil {
		t.Fatal(err)
	}
	if s1.Source != "recompute" || s1.CacheHit {
		t.Fatalf("time-travel read: %+v", s1)
	}
	if !tree.Equal(out1, oracle(t, layers, snap1.Root())) {
		t.Fatal("time-travel view mismatch")
	}
	// The cache still serves the head.
	out2b, s2b, err := mgr.Get(context.Background(), snap2, "nopeople")
	if err != nil {
		t.Fatal(err)
	}
	if s2b.Source != "cache" || out2b != out2 {
		t.Fatal("time travel disturbed the cached head")
	}
}

func TestManagerRemoveAndViewRegistry(t *testing.T) {
	mgr := NewManager(core.MethodTopDown, nil)
	layers := []*core.Compiled{compileUpdate(t, q(`delete $a/site/people`))}
	mgr.SetView("v1", layers, false)
	mgr.SetView("v2", layers, false)
	st, affected := hookStore(mgr)
	snap := mustPut(t, st, "T", siteDoc())
	if _, _, err := mgr.Get(context.Background(), snap, "v1"); err != nil {
		t.Fatal(err)
	}
	if names := mgr.ViewNames(); len(names) != 2 || names[0] != "v1" || names[1] != "v2" {
		t.Fatalf("ViewNames: %v", names)
	}
	if ok, err := st.Remove("T"); err != nil || !ok {
		t.Fatalf("Remove: %v %v", ok, err)
	}
	if got := (*affected)[len(*affected)-1]; len(got) != 2 {
		t.Fatalf("removal affected set %v", got)
	}
	if !mgr.RemoveView("v1") || mgr.RemoveView("v1") {
		t.Fatal("RemoveView")
	}
	if mgr.HasView("v1") || !mgr.HasView("v2") {
		t.Fatal("registry state")
	}
}

// SetView must drop stale materializations: a redefinition with the
// same name serves the new definition immediately.
func TestManagerSetViewInvalidates(t *testing.T) {
	mgr := NewManager(core.MethodTopDown, nil)
	mgr.SetView("v", []*core.Compiled{compileUpdate(t, q(`delete $a/site/people`))}, false)
	st, _ := hookStore(mgr)
	snap := mustPut(t, st, "T", siteDoc())
	if _, _, err := mgr.Get(context.Background(), snap, "v"); err != nil {
		t.Fatal(err)
	}
	redef := []*core.Compiled{compileUpdate(t, q(`delete $a/site/regions`))}
	mgr.SetView("v", redef, false)
	out, s, err := mgr.Get(context.Background(), snap, "v")
	if err != nil {
		t.Fatal(err)
	}
	if s.Source != "recompute" {
		t.Fatalf("redefinition served stale cache: %+v", s)
	}
	if !tree.Equal(out, oracle(t, redef, snap.Root())) {
		t.Fatal("redefined view mismatch")
	}
}

// Property: an eagerly maintained materialization is byte-identical to
// full recomposition at every version of a random XMark update
// sequence, across delta, full-fallback and unaffected paths.
func TestQuickManagerMatchesOracle(t *testing.T) {
	cfg := xmarkCfg()
	totals := struct{ delta, full, unaffected int }{}
	for seed := int64(0); seed < 12; seed++ {
		rng := rand.New(rand.NewSource(11000 + seed))
		doc, err := xmark.Generate(xmark.Config{
			Factor: 0.0005 + rng.Float64()*0.002,
			Seed:   rng.Int63(),
		})
		if err != nil {
			t.Fatal(err)
		}
		mgr := NewManager(core.MethodTopDown, newMapCache())
		depth := 1 + rng.Intn(3)
		layers := make([]*core.Compiled, 0, depth)
		for len(layers) < depth {
			c, err := (&core.Query{Var: "a", Doc: "gen", Update: randomUpdate(rng, cfg)}).Compile()
			if err == nil {
				layers = append(layers, c)
			}
		}
		mgr.SetView("v", layers, true)
		st, _ := hookStore(mgr)
		snap := mustPut(t, st, "T", doc)
		for step := 0; step < 8; step++ {
			var upd *core.Compiled
			for upd == nil {
				c, err := (&core.Query{Var: "a", Doc: "gen", Update: randomUpdate(rng, cfg)}).Compile()
				if err == nil {
					upd = c
				}
			}
			var aerr error
			snap, _, aerr = st.Apply(context.Background(), "T", upd, core.MethodTopDown)
			if aerr != nil {
				t.Fatalf("seed %d step %d: %v", seed, step, aerr)
			}
			out, s, err := mgr.Get(context.Background(), snap, "v")
			if err != nil {
				t.Fatalf("seed %d step %d: %v", seed, step, err)
			}
			if !tree.Equal(out, oracle(t, layers, snap.Root())) {
				t.Fatalf("seed %d step %d: maintained view diverged from oracle\n update: %s",
					seed, step, upd.Query.Update.String("$a"))
			}
			totals.delta += s.DeltaCommits
			totals.full += s.FullCommits
			totals.unaffected += s.UnaffectedCommits
		}
	}
	if totals.delta == 0 {
		t.Error("property run never took the delta path")
	}
	if totals.unaffected == 0 {
		t.Error("property run never proved a commit unaffected")
	}
}
