package ivm

import (
	"context"
	"sort"
	"strings"
	"sync"

	"xtq/internal/compose"
	"xtq/internal/core"
	"xtq/internal/store"
	"xtq/internal/tree"
	"xtq/internal/xerr"
)

// Stats describes one materialized-view read plus the maintenance
// history of its cache entry; it is what the serving layer reports in
// the X-Xtq-View-Stats header.
type Stats struct {
	Doc     string `json:"doc"`
	View    string `json:"view"`
	Version uint64 `json:"version"`
	// Source is "cache" when the read was served from a current
	// materialization, "recompute" when it was evaluated on demand.
	Source   string `json:"source"`
	CacheHit bool   `json:"cacheHit"`
	// Commit-path counters of the cache entry: how many commits were
	// absorbed by delta maintenance, full recomposition, a provably
	// unaffected no-op bump, or an unknown verdict (maintained like
	// affected).
	DeltaCommits      int `json:"deltaCommits"`
	FullCommits       int `json:"fullCommits"`
	UnaffectedCommits int `json:"unaffectedCommits"`
	UnknownCommits    int `json:"unknownCommits"`
	// Work counters of the evaluation the entry's tree came from.
	NodesVisited   int `json:"nodesVisited"`
	Materialized   int `json:"materialized"`
	ReusedSubtrees int `json:"reusedSubtrees"`
	// Layers breaks the work down per transform layer.
	Layers []compose.Stats `json:"layers,omitempty"`
}

// viewDef is one registered view: a stack of compiled transforms.
type viewDef struct {
	name   string
	key    string // canonical layer renderings joined with \x1f
	layers []*core.Compiled
	// stack is the fused evaluator; nil when a layer has qualifiers
	// (maintenance then always recomposes sequentially).
	stack *compose.Stack
	// eager views are materialized on every affecting commit; lazy ones
	// only once read.
	eager bool
}

// matEntry is the maintained materialization of one (document, view)
// pair.
type matEntry struct {
	mu sync.Mutex
	// version is the document version tree reflects.
	version uint64
	// memoVersion is the document version memo's keys point into; delta
	// maintenance applies only when it equals the commit's base version.
	// Provably-unaffected commits advance version without touching the
	// tree, which leaves the memo behind — the next affecting commit
	// then recomposes in full.
	memoVersion uint64
	tree        *tree.Node
	memo        *compose.Memo

	deltaCommits, fullCommits int
	unaffected, unknown       int
	lastStats                 compose.ViewStats
}

// Manager maintains materializations of registered views across store
// commits and serves them to readers. It is driven by the store's
// commit hook (OnCommit) and by the facade's view registry
// (SetView/RemoveView); all methods are safe for concurrent use.
type Manager struct {
	method core.Method
	cache  VerdictCache

	mu    sync.Mutex
	views map[string]*viewDef
	mats  map[string]*matEntry // doc + "\x00" + view
}

// NewManager returns a manager evaluating qualified stacks with the
// given method. cache, when non-nil, memoizes impact verdicts across
// commits (keyed by canonical view and update renderings).
func NewManager(method core.Method, cache VerdictCache) *Manager {
	if method == "" {
		method = core.MethodTopDown
	}
	return &Manager{
		method: method,
		cache:  cache,
		views:  make(map[string]*viewDef),
		mats:   make(map[string]*matEntry),
	}
}

func matKey(doc, view string) string { return doc + "\x00" + view }

// SetView registers (or redefines) a view and atomically drops every
// materialization recorded under its name — callers publish the
// registry change event while holding no manager state.
func (m *Manager) SetView(name string, layers []*core.Compiled, eager bool) {
	keys := make([]string, len(layers))
	for i, l := range layers {
		keys[i] = l.Query.String()
	}
	def := &viewDef{name: name, key: strings.Join(keys, "\x1f"), layers: layers, eager: eager}
	if s, err := compose.NewStack(layers); err == nil {
		def.stack = s
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.views[name] = def
	m.dropViewLocked(name)
}

// RemoveView unregisters a view and drops its materializations,
// reporting whether it existed.
func (m *Manager) RemoveView(name string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.views[name]
	delete(m.views, name)
	m.dropViewLocked(name)
	return ok
}

func (m *Manager) dropViewLocked(name string) {
	suffix := "\x00" + name
	for k := range m.mats {
		if strings.HasSuffix(k, suffix) {
			delete(m.mats, k)
		}
	}
}

// ViewNames returns the registered view names, sorted.
func (m *Manager) ViewNames() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	names := make([]string, 0, len(m.views))
	for n := range m.views {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// HasView reports whether name is registered.
func (m *Manager) HasView(name string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.views[name]
	return ok
}

// DropDoc discards every materialization of the named document.
func (m *Manager) DropDoc(doc string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	prefix := doc + "\x00"
	for k := range m.mats {
		if strings.HasPrefix(k, prefix) {
			delete(m.mats, k)
		}
	}
}

// snapshot returns a stable copy of the registry.
func (m *Manager) defs() []*viewDef {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*viewDef, 0, len(m.views))
	for _, d := range m.views {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

func (m *Manager) entry(doc, view string, create bool) *matEntry {
	m.mu.Lock()
	defer m.mu.Unlock()
	k := matKey(doc, view)
	e := m.mats[k]
	if e == nil && create {
		e = &matEntry{}
		m.mats[k] = e
	}
	return e
}

// verdict analyzes one update against one view, going through the
// verdict cache when one is installed.
func (m *Manager) verdict(def *viewDef, upd *core.Compiled) Verdict {
	if m.cache == nil {
		return Analyze(def.layers, upd)
	}
	key := def.key + "\x1f\x1f" + upd.Query.String()
	if v, ok := m.cache.Get(key); ok {
		return v
	}
	v := Analyze(def.layers, upd)
	m.cache.Add(key, v)
	return v
}

// OnCommit maintains every registered view across one committed version
// change and returns the names of the views the commit may have changed
// (statically affected or unknown) — the change event's affectedViews.
// The store delivers events per document in version order; OnCommit
// runs inside the commit, so provably-unaffected paths do no tree work.
func (m *Manager) OnCommit(ev store.CommitEvent) []string {
	defs := m.defs()
	if len(defs) == 0 {
		return nil
	}
	if ev.Kind == store.CommitRemove || ev.Kind == store.CommitReset {
		// Removal or reset: every materialization of the document is
		// invalid, and without a base tree every view is affected.
		m.DropDoc(ev.Name)
		names := make([]string, len(defs))
		for i, d := range defs {
			names[i] = d.name
		}
		return names
	}
	if ev.Kind == store.CommitUpdate && ev.NoOp {
		// The snapshot shares the previous tree wholesale: memo pointers
		// stay valid, so both versions advance.
		for _, def := range defs {
			if e := m.entry(ev.Name, def.name, false); e != nil {
				e.mu.Lock()
				if e.version == ev.Prev {
					e.version = ev.Version
					if e.memoVersion == ev.Prev {
						e.memoVersion = ev.Version
					}
					e.unaffected++
					mMaintained.With("unaffected").Inc()
				}
				e.mu.Unlock()
			}
		}
		return nil
	}
	var affected []string
	for _, def := range defs {
		v := VerdictAffected
		if ev.Kind == store.CommitUpdate {
			v = m.verdict(def, ev.Update)
		}
		if v == VerdictUnknown {
			mUnknownVerdicts.Inc()
		}
		if v == VerdictUnaffected {
			// Zero-work path: the new version serves the same bytes. The
			// memo stays at its old version — nodes of the new snapshot
			// are unknown to it — so a later affecting commit recomposes.
			if e := m.entry(ev.Name, def.name, false); e != nil {
				e.mu.Lock()
				if e.version == ev.Prev {
					e.version = ev.Version
					e.unaffected++
					mMaintained.With("unaffected").Inc()
				}
				e.mu.Unlock()
			}
			continue
		}
		affected = append(affected, def.name)
		e := m.entry(ev.Name, def.name, def.eager)
		if e == nil {
			continue // lazy view never read: nothing to maintain
		}
		e.mu.Lock()
		if e.version == ev.Version {
			e.mu.Unlock()
			continue
		}
		canDelta := def.stack != nil && ev.Bridge != nil && e.memo != nil &&
			e.version == ev.Prev && e.memoVersion == ev.Prev
		maintained := false
		if canDelta {
			out, memo, stats, ok, err := def.stack.EvalDelta(
				context.Background(), ev.Snap.Root(), ev.Bridge, e.memo)
			if err == nil && ok {
				e.tree, e.memo = out, memo
				e.version, e.memoVersion = ev.Version, ev.Version
				e.deltaCommits++
				mMaintained.With("delta").Inc()
				if v == VerdictUnknown {
					e.unknown++
				}
				e.lastStats = stats
				maintained = true
			}
		}
		if !maintained {
			if err := m.fullLocked(e, def, ev.Snap); err != nil {
				// Evaluation failed (cancelled or depth-bounded): drop the
				// entry rather than serve a stale tree as current.
				m.mu.Lock()
				delete(m.mats, matKey(ev.Name, def.name))
				m.mu.Unlock()
			} else {
				mMaintained.With("full").Inc()
				if v == VerdictUnknown {
					e.unknown++
				}
			}
		}
		e.mu.Unlock()
	}
	return affected
}

// fullLocked recomputes e's materialization at snap (e.mu held).
func (m *Manager) fullLocked(e *matEntry, def *viewDef, snap *store.Snapshot) error {
	out, memo, stats, err := m.materialize(context.Background(), def, snap.Root())
	if err != nil {
		return err
	}
	e.tree, e.memo = out, memo
	e.version = snap.Version()
	if memo != nil {
		e.memoVersion = snap.Version()
	} else {
		e.memoVersion = 0
	}
	e.fullCommits++
	e.lastStats = stats
	return nil
}

// materialize evaluates the full stack over root: the fused evaluator
// (with memo) for qualifier-free stacks, sequential per-layer
// evaluation with the manager's method otherwise.
func (m *Manager) materialize(ctx context.Context, def *viewDef, root *tree.Node) (*tree.Node, *compose.Memo, compose.ViewStats, error) {
	if def.stack != nil {
		return def.stack.Eval(ctx, root)
	}
	cur := root
	for _, l := range def.layers {
		var err error
		if cur, err = l.EvalContext(ctx, cur, m.method); err != nil {
			return nil, nil, compose.ViewStats{}, err
		}
	}
	return cur, nil, compose.ViewStats{}, nil
}

// Get serves the materialization of view over snap. Reads at the
// maintained version are cache hits; reads of older snapshots
// (time travel) evaluate on demand without caching; reads ahead of the
// cache (first read of a lazy view, or a follower catching up)
// materialize and install, so subsequent reads hit.
func (m *Manager) Get(ctx context.Context, snap *store.Snapshot, view string) (*tree.Node, Stats, error) {
	m.mu.Lock()
	def := m.views[view]
	m.mu.Unlock()
	if def == nil {
		return nil, Stats{}, xerr.New(xerr.NotFound, "", "ivm: view %q is not registered", view)
	}
	st := Stats{Doc: snap.Name(), View: view, Version: snap.Version()}
	e := m.entry(snap.Name(), view, false)
	if e != nil {
		e.mu.Lock()
		if e.version == snap.Version() {
			out := e.tree
			fillStats(&st, e, true)
			e.mu.Unlock()
			noteRead(ctx, st)
			return out, st, nil
		}
		if snap.Version() < e.version {
			// Time travel below the maintained version: evaluate without
			// disturbing the cache.
			e.mu.Unlock()
			out, _, vs, err := m.materialize(ctx, def, snap.Root())
			if err != nil {
				return nil, st, err
			}
			st.Source, st.CacheHit = "recompute", false
			statsFromEval(&st, vs)
			noteRead(ctx, st)
			return out, st, nil
		}
		e.mu.Unlock()
	}
	// Ahead of (or absent from) the cache: materialize and install,
	// unless a maintenance racer got there first with a newer version.
	out, memo, vs, err := m.materialize(ctx, def, snap.Root())
	if err != nil {
		return nil, st, err
	}
	e = m.entry(snap.Name(), view, true)
	e.mu.Lock()
	if snap.Version() >= e.version {
		e.tree, e.memo = out, memo
		e.version = snap.Version()
		if memo != nil {
			e.memoVersion = snap.Version()
		} else {
			e.memoVersion = 0
		}
		e.fullCommits++
		e.lastStats = vs
	}
	fillStats(&st, e, false)
	e.mu.Unlock()
	st.Version = snap.Version()
	noteRead(ctx, st)
	return out, st, nil
}

// fillStats copies e's counters into st (e.mu held).
func fillStats(st *Stats, e *matEntry, hit bool) {
	if hit {
		st.Source, st.CacheHit = "cache", true
	} else {
		st.Source, st.CacheHit = "recompute", false
	}
	st.DeltaCommits = e.deltaCommits
	st.FullCommits = e.fullCommits
	st.UnaffectedCommits = e.unaffected
	st.UnknownCommits = e.unknown
	statsFromEval(st, e.lastStats)
}

func statsFromEval(st *Stats, vs compose.ViewStats) {
	st.NodesVisited = vs.NodesVisited
	st.Materialized = vs.Materialized
	st.ReusedSubtrees = vs.ReusedSubtrees
	if len(vs.Layers) > 0 {
		st.Layers = append([]compose.Stats(nil), vs.Layers...)
	}
}
