package ivm

import (
	"context"

	"xtq/internal/obs"
)

// Maintenance instruments on the process-wide obs registry. The commit
// counter is labeled by how the commit was absorbed — delta
// maintenance, full recomposition, or a provably-unaffected no-op bump
// — so the ratio the paper's incremental-maintenance argument rests on
// is a single PromQL expression. Unknown impact verdicts (maintained
// like affected) are counted separately: they overlap the delta/full
// outcomes rather than partition them.
var (
	mMaintained = obs.Default.CounterVec("xtq_ivm_commits_total",
		"View maintenance outcomes per (commit, view) pair.", "result")
	mUnknownVerdicts = obs.Default.Counter("xtq_ivm_unknown_verdicts_total",
		"Impact analyses that could not prove the view affected or unaffected.")
	mReads = obs.Default.CounterVec("xtq_ivm_reads_total",
		"Materialized-view reads by source (cache, recompute).", "source")
	mHubResyncs = obs.Default.Counter("xtq_ivm_hub_resyncs_total",
		"Change-feed subscribers whose buffer overflowed into a resync event.")
	mSubscribers = obs.Default.Gauge("xtq_ivm_subscribers",
		"Open change-feed subscriptions.")
)

// noteRead records one served view read: the source-labeled counter,
// and — when the request carries a trace — the trace's view section,
// the one source the serving layer's X-Xtq-View-Stats header and
// EXPLAIN body both read.
func noteRead(ctx context.Context, st Stats) {
	mReads.With(st.Source).Inc()
	tr := obs.TraceFrom(ctx)
	if tr == nil {
		return
	}
	vt := &obs.ViewTrace{
		Doc: st.Doc, View: st.View, Version: st.Version,
		Source: st.Source, CacheHit: st.CacheHit,
		DeltaCommits: st.DeltaCommits, FullCommits: st.FullCommits,
		UnaffectedCommits: st.UnaffectedCommits, UnknownCommits: st.UnknownCommits,
		NodesVisited: st.NodesVisited, Materialized: st.Materialized,
		ReusedSubtrees: st.ReusedSubtrees,
	}
	for _, l := range st.Layers {
		vt.Layers = append(vt.Layers, obs.LayerTrace{
			NodesVisited: l.NodesVisited, Materialized: l.Materialized,
		})
	}
	tr.SetView(vt)
}
