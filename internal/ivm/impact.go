// Package ivm implements incremental view maintenance over the
// versioned store: static impact analysis of updates against
// registered view stacks (automaton intersection, per Solimando et
// al.), maintained materializations that are delta-updated or kept
// verbatim across commits, and a change-feed hub that turns commits
// into subscriber events for the /watch endpoint.
//
// Store commits are persistent path copies (tree.PathCopy): subtrees
// an update does not touch keep their node pointers and ordinals
// across versions of a snapshot chain. Maintenance code that caches
// per-node state across commits must follow the tree.NodeRef identity
// rules (see internal/tree and the README's Architecture section) —
// in particular, refs die when a chain compacts and renumbers.
package ivm

import (
	"xtq/internal/automaton"
	"xtq/internal/core"
)

// Verdict is the result of statically analyzing one update against one
// view stack.
type Verdict uint8

const (
	// VerdictUnknown means the analysis could not decide — the view has
	// qualifiers, or the product exploration exceeded its state cap.
	// Maintenance treats unknown like affected; the distinction is
	// reported in ViewStats.
	VerdictUnknown Verdict = iota
	// VerdictUnaffected means the update provably cannot change the
	// view's materialization: every node it touches is deleted or
	// replaced away by the view's first layer.
	VerdictUnaffected
	// VerdictAffected means the update may change the view.
	VerdictAffected
)

// String returns the verdict name.
func (v Verdict) String() string {
	switch v {
	case VerdictUnaffected:
		return "unaffected"
	case VerdictAffected:
		return "affected"
	default:
		return "unknown"
	}
}

// VerdictCache caches Analyze results keyed by the canonical renderings
// of (view stack, update) — the adapter over the engine's LRU.
type VerdictCache interface {
	Get(key string) (Verdict, bool)
	Add(key string, v Verdict)
}

// Analyze decides whether the update can affect the view stack's
// materialization. Soundness is one-directional: VerdictUnaffected is
// a proof, the other verdicts are over-approximations.
//
// Only the stack's first layer can absorb an update — it is the one
// whose selection runs over document root paths, the alphabet the
// update's automaton shares. The absorption argument is per update
// kind, with w the root path of an updated node:
//
//   - update Delete under view Delete: covered if some prefix of w
//     (including w itself) is view-selected — the region is already
//     gone from the view.
//   - update Insert under view Delete: the inserted element's path is
//     w·label(e); covered if a prefix of it (including the inserted
//     element itself) is deleted by the view.
//   - update Insert under view Replace: covered only at or above w —
//     the view replacing the inserted element itself would add the
//     replacement constant to the output.
//   - update Replace/Rename: covered only strictly above w. At w the
//     node's label or content changes, so a view match at w in the old
//     document does not carry over (a renamed node escapes a deletion;
//     a replaced node's replacement constant need not be re-matched).
//   - update Delete under view Replace: covered strictly above w —
//     deleting w itself removes the view's replacement constant from
//     the output.
//
// Qualifiers on the update path are ignored (a sound widening);
// qualifiers on the view's first layer make the verdict unknown.
func Analyze(layers []*core.Compiled, upd *core.Compiled) Verdict {
	if len(layers) == 0 || upd == nil {
		return VerdictAffected
	}
	v0 := layers[0]
	vu := &v0.Query.Update
	if vu.Op != core.Delete && vu.Op != core.Replace {
		// Insert/Rename layers hide nothing: every document change
		// shows through.
		return VerdictAffected
	}
	if v0.NFA.HasQualifiers() {
		return VerdictUnknown
	}
	var (
		strict      bool
		insertLabel string
	)
	switch upd.Query.Update.Op {
	case core.Insert:
		if vu.Op == core.Delete {
			insertLabel = upd.Query.Update.Elem.Label
		}
		// Under view Replace: plain at-or-below on w (strict false).
	case core.Delete:
		strict = vu.Op == core.Replace
	case core.Replace, core.Rename:
		strict = true
	}
	covered, ok := automaton.Covered(upd.NFA, v0.NFA, strict, insertLabel, 0)
	if !ok {
		return VerdictUnknown
	}
	if covered {
		return VerdictUnaffected
	}
	return VerdictAffected
}
