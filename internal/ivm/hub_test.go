package ivm

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

func ev(doc string, v uint64) Event {
	return Event{Doc: doc, Version: v, ETag: fmt.Sprintf("%q", fmt.Sprint(v))}
}

func TestHubLiveDelivery(t *testing.T) {
	h := NewHub(0, 0)
	s := h.Subscribe("T", 0, false, 0)
	defer s.Close()
	for v := uint64(1); v <= 3; v++ {
		h.Publish(ev("T", v))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	var got []Event
	for len(got) < 3 {
		evs, err := s.Next(ctx)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, evs...)
	}
	for i, e := range got {
		if e.Version != uint64(i+1) || e.Resync {
			t.Fatalf("event %d: %+v", i, e)
		}
	}
}

func TestHubCatchUpFromRing(t *testing.T) {
	h := NewHub(0, 0)
	for v := uint64(1); v <= 5; v++ {
		h.Publish(ev("T", v))
	}
	s := h.Subscribe("T", 2, true, 5)
	defer s.Close()
	evs, err := s.Next(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 3 {
		t.Fatalf("replay: %+v", evs)
	}
	for i, e := range evs {
		if e.Version != uint64(3+i) || e.Resync {
			t.Fatalf("replay %d: %+v", i, e)
		}
	}
}

func TestHubGapForcesResync(t *testing.T) {
	h := NewHub(2, 0)
	for v := uint64(1); v <= 5; v++ {
		h.Publish(ev("T", v))
	}
	// The ring only holds 4,5: a subscriber at 1 has a gap.
	s := h.Subscribe("T", 1, true, 5)
	defer s.Close()
	evs, err := s.Next(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 || !evs[0].Resync || evs[0].Version != 5 {
		t.Fatalf("expected resync at 5, got %+v", evs)
	}
}

func TestHubResyncFromHeadWithoutHistory(t *testing.T) {
	h := NewHub(0, 0)
	s := h.Subscribe("T", 3, true, 7)
	defer s.Close()
	evs, err := s.Next(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 || !evs[0].Resync || evs[0].Version != 7 {
		t.Fatalf("expected resync at 7, got %+v", evs)
	}
	// Caught up exactly: nothing pending.
	s2 := h.Subscribe("T", 7, true, 7)
	defer s2.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if evs, err := s2.Next(ctx); err == nil {
		t.Fatalf("caught-up subscriber got events: %+v", evs)
	}
}

func TestHubSlowSubscriberCollapsesToResync(t *testing.T) {
	h := NewHub(0, 2)
	s := h.Subscribe("T", 0, false, 0)
	defer s.Close()
	for v := uint64(1); v <= 10; v++ {
		h.Publish(ev("T", v))
	}
	evs, err := s.Next(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// The backlog must have collapsed: far fewer events than published,
	// starting with a resync, and gap-free after it.
	if len(evs) > 2 || !evs[0].Resync {
		t.Fatalf("expected a collapsed resync, got %+v", evs)
	}
	last := evs[0].Version
	for _, e := range evs[1:] {
		if e.Resync || e.Version != last+1 {
			t.Fatalf("gap after collapse: %+v", evs)
		}
		last = e.Version
	}
	if last != 10 {
		t.Fatalf("collapsed stream does not reach the head: %+v", evs)
	}
}

func TestHubViewsChangedNotReplayed(t *testing.T) {
	h := NewHub(0, 0)
	h.Publish(ev("T", 1))
	h.Publish(Event{Doc: "T", Version: 1, ViewsChanged: true})
	s := h.Subscribe("T", 0, true, 1)
	defer s.Close()
	evs, err := s.Next(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 || evs[0].ViewsChanged {
		t.Fatalf("registry event replayed: %+v", evs)
	}
}

func TestHubResetInvalidatesRing(t *testing.T) {
	h := NewHub(0, 0)
	for v := uint64(1); v <= 3; v++ {
		h.Publish(ev("T", v))
	}
	h.Publish(Event{Doc: "T", Version: 9, Resync: true})
	// After a reset the old ring must not satisfy catch-up: versions may
	// have been skipped.
	s := h.Subscribe("T", 1, true, 9)
	defer s.Close()
	evs, err := s.Next(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 || !evs[0].Resync {
		t.Fatalf("stale ring replayed after reset: %+v", evs)
	}
}

func TestHubCloseWakesNext(t *testing.T) {
	h := NewHub(0, 0)
	s := h.Subscribe("T", 0, false, 0)
	done := make(chan error, 1)
	go func() {
		_, err := s.Next(context.Background())
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	s.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Next returned events after Close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Next did not wake on Close")
	}
}

// Concurrency: a publisher racing many consumers; every consumer sees a
// strictly increasing, gap-free version sequence or an explicit resync.
func TestHubConcurrentGapless(t *testing.T) {
	h := NewHub(0, 0)
	const versions = 500
	const readers = 8
	var wg sync.WaitGroup
	errs := make(chan error, readers)
	for r := 0; r < readers; r++ {
		s := h.Subscribe("T", 0, true, 0)
		wg.Add(1)
		go func(s *Subscriber) {
			defer wg.Done()
			defer s.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			last := uint64(0)
			for last < versions {
				evs, err := s.Next(ctx)
				if err != nil {
					errs <- err
					return
				}
				for _, e := range evs {
					switch {
					case e.Resync:
						last = e.Version
					case e.Version != last+1:
						errs <- fmt.Errorf("gap: %d after %d", e.Version, last)
						return
					default:
						last = e.Version
					}
				}
			}
		}(s)
	}
	for v := uint64(1); v <= versions; v++ {
		h.Publish(ev("T", v))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestHubFloorSuppressesLateDuplicates(t *testing.T) {
	h := NewHub(0, 0)
	// A ?from=3 subscriber on a lagging replica: the hub then publishes
	// versions 2..5 as replication applies them. Only 4 and 5 may reach
	// the subscriber.
	s := h.Subscribe("T", 3, true, 0)
	defer s.Close()
	for v := uint64(2); v <= 5; v++ {
		h.Publish(ev("T", v))
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	evs, err := s.Next(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 2 || evs[0].Version != 4 || evs[1].Version != 5 {
		t.Fatalf("floored delivery: %+v", evs)
	}
	// Resync and registry events are never floored.
	h.Publish(Event{Doc: "T", Version: 2, ViewsChanged: true})
	evs, err = s.Next(ctx)
	if err != nil || len(evs) != 1 || !evs[0].ViewsChanged {
		t.Fatalf("views event floored: %+v %v", evs, err)
	}
}
