package ivm

import (
	"context"
	"math/rand"
	"testing"

	"xtq/internal/core"
	"xtq/internal/tree"
	"xtq/internal/xmark"
	"xtq/internal/xpath"
)

func compileUpdate(t *testing.T, src string) *core.Compiled {
	t.Helper()
	c, err := core.MustParseQuery(src).Compile()
	if err != nil {
		t.Fatalf("compile %q: %v", src, err)
	}
	return c
}

func q(body string) string {
	return `transform copy $a := doc("T") modify do ` + body + ` return $a`
}

func TestAnalyze(t *testing.T) {
	cases := []struct {
		name string
		view string
		upd  string
		want Verdict
	}{
		// Update under a view-deleted region: at-or-below coverage.
		{"insert below deleted", q(`delete $a/site/people`),
			q(`insert <x/> into $a/site/people/person`), VerdictUnaffected},
		{"insert into deleted node itself", q(`delete $a/site/people`),
			q(`insert <x/> into $a/site/people`), VerdictUnaffected},
		{"delete below deleted", q(`delete $a/site/people`),
			q(`delete $a/site/people/person`), VerdictUnaffected},
		{"delete the deleted node itself", q(`delete $a/site/people`),
			q(`delete $a/site/people`), VerdictUnaffected},
		{"rename below deleted", q(`delete $a/site/people`),
			q(`rename $a/site/people/person as x`), VerdictUnaffected},
		{"replace below deleted", q(`delete $a/site/people`),
			q(`replace $a/site/people/person with <x/>`), VerdictUnaffected},
		// Rename/replace of the deleted node itself changes what the view
		// matches: strict coverage required.
		{"rename the deleted node", q(`delete $a/site/people`),
			q(`rename $a/site/people as crowd`), VerdictAffected},
		{"replace the deleted node", q(`delete $a/site/people`),
			q(`replace $a/site/people with <x/>`), VerdictAffected},
		// Insert whose element is itself deleted by the view: the label
		// refinement.
		{"inserted element deleted by view", q(`delete $a//mark`),
			q(`insert <mark/> into $a/site/regions`), VerdictUnaffected},
		{"inserted element not the deleted label", q(`delete $a//mark`),
			q(`insert <name/> into $a/site/regions`), VerdictAffected},
		// View Replace absorbs strictly-below inserts and deletes, but not
		// changes to the replaced node itself.
		{"insert below replaced", q(`replace $a/site/people with <people/>`),
			q(`insert <x/> into $a/site/people/person`), VerdictUnaffected},
		{"insert into replaced node", q(`replace $a/site/people with <people/>`),
			q(`insert <x/> into $a/site/people`), VerdictUnaffected},
		{"delete below replaced", q(`replace $a/site/people with <people/>`),
			q(`delete $a/site/people/person`), VerdictUnaffected},
		{"delete the replaced node", q(`replace $a/site/people with <people/>`),
			q(`delete $a/site/people`), VerdictAffected},
		// A view replacing the inserted element would add its constant to
		// the output — no label refinement for Replace.
		{"view would replace inserted element", q(`replace $a//mark with <x/>`),
			q(`insert <mark/> into $a/site`), VerdictAffected},
		// Descendant axes on either side.
		{"descendant view covers descendant update", q(`delete $a//person`),
			q(`delete $a//person/profile`), VerdictUnaffected},
		{"unrelated paths", q(`delete $a/site/regions`),
			q(`delete $a/site/people/person`), VerdictAffected},
		// Insert/Rename first layers hide nothing.
		{"insert view layer", q(`insert <x/> into $a/site/people`),
			q(`delete $a/site/people/person`), VerdictAffected},
		{"rename view layer", q(`rename $a/site/people as crowd`),
			q(`delete $a/site/people/person`), VerdictAffected},
		// Qualifiers on the view make the verdict unknown; on the update
		// they are soundly ignored.
		{"qualified view", q(`delete $a/site/people[person]`),
			q(`delete $a/site/people/person`), VerdictUnknown},
		{"qualified update", q(`delete $a/site/people`),
			q(`delete $a/site/people/person[age = "1"]`), VerdictUnaffected},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			view := compileUpdate(t, tc.view)
			upd := compileUpdate(t, tc.upd)
			if got := Analyze([]*core.Compiled{view}, upd); got != tc.want {
				t.Errorf("Analyze(%s | %s) = %s, want %s", tc.view, tc.upd, got, tc.want)
			}
		})
	}
}

func TestAnalyzeDegenerate(t *testing.T) {
	upd := compileUpdate(t, q(`delete $a/site/people`))
	if got := Analyze(nil, upd); got != VerdictAffected {
		t.Errorf("empty stack: %s", got)
	}
	if got := Analyze([]*core.Compiled{upd}, nil); got != VerdictAffected {
		t.Errorf("nil update: %s", got)
	}
}

// xmarkCfg mirrors the compose package's XMark vocabulary so random
// views and updates have non-trivial overlap on generated documents.
func xmarkCfg() xpath.GenConfig {
	return xpath.GenConfig{
		Labels: []string{
			"site", "regions", "africa", "asia", "item", "location",
			"quantity", "name", "people", "person", "profile", "age",
			"interest", "open_auctions", "open_auction", "initial",
			"reserve", "bidder", "increase", "mark",
		},
		Values:   []string{"1", "10", "United States", "Japan", "yes"},
		MaxSteps: 4,
		MaxQual:  0,
	}
}

func randomUpdate(r *rand.Rand, cfg xpath.GenConfig) core.Update {
	u := core.Update{Path: xpath.RandomPath(r, cfg)}
	switch r.Intn(4) {
	case 0:
		u.Op = core.Insert
		u.Elem = tree.NewElement("mark", tree.NewElement("name", tree.NewText("yes")))
	case 1:
		u.Op = core.Delete
	case 2:
		u.Op = core.Replace
		u.Elem = tree.NewElement("item", tree.NewText("redacted"))
	case 3:
		u.Op = core.Rename
		u.Label = cfg.Labels[r.Intn(len(cfg.Labels))]
	}
	return u
}

// Property: VerdictUnaffected is a proof. Whenever Analyze clears a
// random update against a random view stack, sequentially materializing
// the stack over the updated document must be byte-identical to
// materializing it over the original.
func TestQuickAnalyzeSound(t *testing.T) {
	cfg := xmarkCfg()
	ctx := context.Background()
	unaffected, affected := 0, 0
	for seed := int64(0); seed < 120; seed++ {
		rng := rand.New(rand.NewSource(9000 + seed))
		doc, err := xmark.Generate(xmark.Config{
			Factor: 0.0005 + rng.Float64()*0.002,
			Seed:   rng.Int63(),
		})
		if err != nil {
			t.Fatal(err)
		}
		depth := 1 + rng.Intn(3)
		layers := make([]*core.Compiled, 0, depth)
		for len(layers) < depth {
			c, err := (&core.Query{Var: "a", Doc: "gen", Update: randomUpdate(rng, cfg)}).Compile()
			if err == nil {
				layers = append(layers, c)
			}
		}
		var upd *core.Compiled
		for upd == nil {
			c, err := (&core.Query{Var: "a", Doc: "gen", Update: randomUpdate(rng, cfg)}).Compile()
			if err == nil {
				upd = c
			}
		}
		v := Analyze(layers, upd)
		if v != VerdictUnaffected {
			affected++
			continue
		}
		unaffected++
		updated, err := upd.EvalContext(ctx, doc, core.MethodTopDown)
		if err != nil {
			t.Fatalf("seed %d: update: %v", seed, err)
		}
		before, after := doc, updated
		for _, l := range layers {
			if before, err = l.EvalContext(ctx, before, core.MethodCopyUpdate); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if after, err = l.EvalContext(ctx, after, core.MethodCopyUpdate); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
		}
		if !tree.Equal(before, after) {
			t.Fatalf("seed %d: verdict unaffected but view changed\n view0: %s\n update: %s",
				seed, layers[0].Query.Update.String("$a"), upd.Query.Update.String("$a"))
		}
	}
	if unaffected == 0 {
		t.Error("property run never produced an unaffected verdict")
	}
	if affected == 0 {
		t.Error("property run never produced an affected verdict")
	}
}

func TestVerdictString(t *testing.T) {
	if VerdictUnaffected.String() != "unaffected" || VerdictAffected.String() != "affected" ||
		VerdictUnknown.String() != "unknown" {
		t.Error("verdict names")
	}
}
