// Package saxeval implements algorithm twoPassSAX (§6 of Fan, Cong &
// Bohannon, SIGMOD 2007): evaluating a transform query over an XML document
// with two passes of SAX parsing, using memory proportional to the document
// depth rather than its size.
//
// The first pass integrates algorithm bottomUp with the parser: it keeps a
// stack with one entry per open element (automaton state set, pending
// qualifier list, sat/csat/dsat vectors, buffered text and attributes) and
// appends the truth value of every top-level qualifier it evaluates to the
// list L_d, keyed by a cursor that counts qualifier occurrences in document
// order. The second pass integrates topDown: it re-parses the document,
// replays the same cursor discipline to look up qualifier truths in L_d,
// transitions the selecting NFA, and rewrites the event stream according to
// the embedded update before pushing it into an output Handler.
//
// The cursor discipline requires both passes to agree on which qualifiers
// are "evaluated" at which node. The first pass transitions the NFA without
// qualifier checking, so the second pass maintains the unchecked state set
// as well (alongside the checked one used for matching); both passes then
// derive identical qualifier sequences from identical unchecked sets.
//
// Both passes are symbol-aware handlers (sax.SymbolHandler): each pass
// binds the query's NFA to its parser's interning table up front
// (automaton.Binding) and memoizes unchecked transitions in an
// automaton.ConfigCache, so steady-state processing of an element is one
// dense per-symbol slice load — no string comparison and no map lookup.
// The passes derive identical configuration sequences because the
// transition function is deterministic in (parent configuration, label),
// and each pass's label↔symbol mapping is bijective.
package saxeval

import (
	"xtq/internal/automaton"
	"xtq/internal/core"
	"xtq/internal/sax"
	"xtq/internal/tree"
	"xtq/internal/xpath"
)

// QualLog is the list L_d of §6: the truth value of every top-level
// qualifier occurrence, in document order. The paper writes it to secondary
// storage; at one byte per evaluated qualifier occurrence it is kept in
// memory here (the experiments' largest runs produce a few MB).
type QualLog struct {
	Values []bool
}

// Stats reports resource numbers of a pass, used by the experiments to
// substantiate the O(depth) memory claim.
type Stats struct {
	MaxStackDepth  int
	QualsEvaluated int
	ElementsSeen   int
	ElementsPruned int // elements skipped by the first pass's pruning
}

// buEntry is one stack entry of the first pass (§6, "SAX-based bottomUp").
// Entries are pooled: the entry popped at depth d is reused by the next
// element opened at depth d.
type buEntry struct {
	cfg        *automaton.Config
	csat, dsat xpath.SatVec
	ldPos      int // position in L_d of the first of cfg.QualIDs
	attrs      []tree.Attr
	text       []byte
	node       tree.Node // scratch node for QualDP's local tests
}

// firstPass is the sax.SymbolHandler running bottomUp over the event
// stream.
type firstPass struct {
	nfa   *automaton.NFA
	cache *automaton.ConfigCache
	lq    *xpath.LQ
	stack []*buEntry
	depth int
	ld    *QualLog
	sat   xpath.SatVec // scratch vector reused at every endElement
	stats Stats
	skip  int // >0 while inside a pruned subtree
}

// runFirstPass runs the bottomUp pass over one parse of the document and
// returns the qualifier-truth list L_d.
func runFirstPass(c *core.Compiled, parse func(sax.Handler) error) (*QualLog, Stats, error) {
	fp := &firstPass{nfa: c.NFA, lq: c.NFA.LQ, ld: &QualLog{}}
	fp.sat = fp.lq.NewSatVec()
	if err := parse(fp); err != nil {
		return nil, fp.stats, err
	}
	return fp.ld, fp.stats, nil
}

// SetSymbols implements sax.SymbolHandler: the pass binds its automaton to
// the parser's interning table (interning the query's own labels up front,
// so every labelled transition resolves to a symbol) and builds the
// per-symbol transition cache against that binding.
func (f *firstPass) SetSymbols(s *tree.Symbols) {
	f.cache = automaton.NewConfigCache(f.nfa.BindIntern(s))
}

// push returns a reset entry for the next stack level.
func (f *firstPass) push() *buEntry {
	if f.depth < len(f.stack) {
		e := f.stack[f.depth]
		f.depth++
		for i := range e.csat {
			e.csat[i] = false
			e.dsat[i] = false
		}
		e.attrs = e.attrs[:0]
		e.text = e.text[:0]
		return e
	}
	e := &buEntry{csat: f.lq.NewSatVec(), dsat: f.lq.NewSatVec()}
	f.stack = append(f.stack, e)
	f.depth++
	return e
}

// StartDocument implements sax.Handler.
func (f *firstPass) StartDocument() error {
	if f.cache == nil {
		// Driven without a symbol-aware parser (not a path the package
		// itself uses): fall back to a private table.
		f.SetSymbols(tree.NewSymbols())
	}
	f.depth = 0
	e := f.push()
	e.cfg = f.cache.Root()
	return nil
}

// StartElement implements sax.Handler.
func (f *firstPass) StartElement(name string, attrs []tree.Attr) error {
	return f.StartElementSym(tree.NoSym, name, attrs)
}

// StartElementSym implements sax.SymbolHandler.
func (f *firstPass) StartElementSym(sym tree.SymID, name string, attrs []tree.Attr) error {
	f.stats.ElementsSeen++
	if f.skip > 0 {
		f.skip++
		f.stats.ElementsPruned++
		return nil
	}
	parent := f.stack[f.depth-1]
	cfg := f.cache.Step(parent.cfg, sym, name)
	if cfg.Pruned {
		// Pruning (Fig. 9 line 6): nothing below this element can
		// matter; skip its events entirely.
		f.skip = 1
		f.stats.ElementsPruned++
		return nil
	}
	e := f.push()
	e.cfg = cfg
	e.ldPos = len(f.ld.Values)
	e.attrs = append(e.attrs, attrs...)
	// Reserve L_d slots now (cursor order = document order of start
	// tags); values are filled in at endElement once csat/dsat are known.
	for range cfg.QualIDs {
		f.ld.Values = append(f.ld.Values, false)
	}
	f.stats.QualsEvaluated += len(cfg.QualIDs)
	e.node = tree.Node{Kind: tree.Element, Label: name, Attrs: e.attrs}
	if f.depth > f.stats.MaxStackDepth {
		f.stats.MaxStackDepth = f.depth
	}
	return nil
}

// Text implements sax.Handler.
func (f *firstPass) Text(data string) error {
	if f.skip > 0 || f.depth < 2 {
		return nil
	}
	top := f.stack[f.depth-1]
	top.text = append(top.text, data...)
	return nil
}

// EndElement implements sax.Handler.
func (f *firstPass) EndElement(string) error {
	if f.skip > 0 {
		f.skip--
		return nil
	}
	top := f.stack[f.depth-1]
	f.depth--
	parent := f.stack[f.depth-1]

	// Evaluate the pending qualifiers with QualDP; all descendant
	// information is in csat/dsat by now.
	node := &top.node
	node.Attrs = top.attrs
	node.Children = node.Children[:0]
	if len(top.text) > 0 {
		node.Children = append(node.Children, tree.NewText(string(top.text)))
	}
	f.lq.QualDP(node, top.cfg.EvalIDs, top.csat, top.dsat, f.sat)
	for i, qid := range top.cfg.QualIDs {
		f.ld.Values[top.ldPos+i] = f.sat[qid]
	}
	// Propagate to the parent: csat aggregates child sat, dsat child
	// sat-or-descendant.
	for _, id := range top.cfg.EvalIDs {
		if f.sat[id] {
			parent.csat[id] = true
			parent.dsat[id] = true
		} else if top.dsat[id] {
			parent.dsat[id] = true
		}
	}
	return nil
}

// EndDocument implements sax.Handler.
func (f *firstPass) EndDocument() error {
	f.depth = 0
	return nil
}
