package saxeval

import (
	"xtq/internal/automaton"
	"xtq/internal/core"
	"xtq/internal/sax"
	"xtq/internal/tree"
	"xtq/internal/xerr"
)

// tdEntry is one stack entry of the second pass (§6, "SAX-based topDown");
// entries are pooled by depth like the first pass's.
type tdEntry struct {
	cfg      *automaton.Config  // replays the first pass's cursor discipline
	checked  automaton.StateSet // the selecting NFA's real state set
	truth    []bool             // L_d values for cfg.QualIDs at this node
	matched  bool               // final state entered at this element
	outLabel string             // label emitted (differs under rename)
	emitted  bool               // start tag was written to the output
}

// secondPass rewrites the event stream according to the update while
// reading qualifier truths from L_d. Like the first pass it is
// symbol-aware: the checked transition steps the bound automaton on the
// label's symbol, and the unchecked configuration replay is a per-symbol
// cache lookup.
type secondPass struct {
	nfa      *automaton.NFA
	bind     *automaton.Binding
	cache    *automaton.ConfigCache
	update   *core.Update
	ld       *QualLog
	cursor   int
	out      sax.Handler
	stack    []*tdEntry
	depth    int
	suppress int // >0 while inside a deleted or replaced subtree
	stats    Stats
}

func runSecondPass(c *core.Compiled, ld *QualLog, out sax.Handler, parse func(sax.Handler) error) (Stats, error) {
	sp := &secondPass{
		nfa:    c.NFA,
		update: &c.Query.Update,
		ld:     ld,
		out:    out,
	}
	if err := parse(sp); err != nil {
		return sp.stats, err
	}
	if sp.cursor != len(ld.Values) {
		return sp.stats, xerr.New(xerr.Eval, "", "saxeval: cursor desync: consumed %d of %d qualifier values",
			sp.cursor, len(ld.Values))
	}
	return sp.stats, nil
}

// SetSymbols implements sax.SymbolHandler.
func (s *secondPass) SetSymbols(syms *tree.Symbols) {
	s.bind = s.nfa.BindIntern(syms)
	s.cache = automaton.NewConfigCache(s.bind)
}

func (s *secondPass) push() *tdEntry {
	if s.depth < len(s.stack) {
		e := s.stack[s.depth]
		s.depth++
		e.truth = e.truth[:0]
		e.matched = false
		e.emitted = false
		return e
	}
	e := &tdEntry{}
	s.stack = append(s.stack, e)
	s.depth++
	return e
}

// StartDocument implements sax.Handler.
func (s *secondPass) StartDocument() error {
	if s.cache == nil {
		s.SetSymbols(tree.NewSymbols())
	}
	s.depth = 0
	e := s.push()
	e.cfg = s.cache.Root()
	e.checked = s.nfa.InitialSet()
	return s.out.StartDocument()
}

// StartElement implements sax.Handler.
func (s *secondPass) StartElement(name string, attrs []tree.Attr) error {
	return s.StartElementSym(tree.NoSym, name, attrs)
}

// StartElementSym implements sax.SymbolHandler.
func (s *secondPass) StartElementSym(sym tree.SymID, name string, attrs []tree.Attr) error {
	s.stats.ElementsSeen++
	parent := s.stack[s.depth-1]

	// Replay the first pass's qualifier-id assignment: the same
	// unchecked transition yields the same qualifier sequence, so the
	// cursor indexes the truth values computed for exactly this node.
	cfg := s.cache.Step(parent.cfg, sym, name)
	e := s.push()
	e.cfg = cfg
	e.outLabel = name
	for range cfg.QualIDs {
		if s.cursor >= len(s.ld.Values) {
			return xerr.New(xerr.Eval, "", "saxeval: L_d exhausted at element <%s>", name)
		}
		e.truth = append(e.truth, s.ld.Values[s.cursor])
		s.cursor++
	}
	s.stats.QualsEvaluated += len(cfg.QualIDs)

	// The checked transition takes qualifier truth from L_d — this is
	// checkp() in constant time.
	if e.checked == nil {
		e.checked = s.nfa.NewSet()
	}
	s.bind.StepInto(parent.checked, sym, name, func(stateID int) bool {
		st := &s.nfa.States[stateID]
		if len(st.Quals) == 0 {
			return true
		}
		for i, qid := range cfg.QualIDs {
			if qid == st.QualID {
				return e.truth[i]
			}
		}
		// Unreachable when both passes share the cursor discipline; fail
		// safe.
		return false
	}, e.checked)
	e.matched = s.nfa.Matches(e.checked)
	if s.depth > s.stats.MaxStackDepth {
		s.stats.MaxStackDepth = s.depth
	}

	if s.suppress > 0 {
		s.suppress++
		return nil
	}
	if e.matched {
		switch s.update.Op {
		case core.Delete:
			// The deleted subtree produces no output; state
			// tracking continues for cursor sync.
			s.suppress = 1
			return nil
		case core.Replace:
			s.suppress = 1
			return sax.Emit(s.update.Elem, s.out)
		case core.Rename:
			e.outLabel = s.update.Label
		}
	}
	e.emitted = true
	return s.out.StartElement(e.outLabel, attrs)
}

// Text implements sax.Handler.
func (s *secondPass) Text(data string) error {
	if s.suppress > 0 {
		return nil
	}
	return s.out.Text(data)
}

// EndElement implements sax.Handler.
func (s *secondPass) EndElement(string) error {
	e := s.stack[s.depth-1]
	s.depth--
	if s.suppress > 0 {
		s.suppress--
		return nil
	}
	if e.matched && s.update.Op == core.Insert {
		// The inserted element becomes the last child.
		if err := sax.Emit(s.update.Elem, s.out); err != nil {
			return err
		}
	}
	if !e.emitted {
		return nil
	}
	return s.out.EndElement(e.outLabel)
}

// EndDocument implements sax.Handler.
func (s *secondPass) EndDocument() error {
	s.depth = 0
	return s.out.EndDocument()
}
