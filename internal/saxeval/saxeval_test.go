package saxeval

import (
	"math/rand"
	"os"
	"strings"
	"testing"

	"xtq/internal/core"
	"xtq/internal/sax"
	"xtq/internal/tree"
	"xtq/internal/xpath"
)

const fig1 = `<db>
<part><pname>keyboard</pname>
  <supplier><sname>HP</sname><price>15</price><country>US</country></supplier>
  <supplier><sname>Logi</sname><price>12</price><country>A</country></supplier>
  <subPart><part><pname>key</pname>
    <supplier><sname>Acme</sname><price>20</price><country>CN</country></supplier>
  </part></subPart>
</part>
<part><pname>mouse</pname>
  <supplier><sname>Dell</sname><price>9</price><country>A</country></supplier>
</part>
</db>`

func compile(t *testing.T, src string) *core.Compiled {
	t.Helper()
	c, err := core.MustParseQuery(src).Compile()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// runBoth evaluates the query with twoPassSAX and with the in-memory
// twoPass method and checks that results agree.
func runBoth(t *testing.T, c *core.Compiled, docXML string) (*tree.Node, Result) {
	t.Helper()
	var sb strings.Builder
	res, err := TransformXML(c, BytesSource(docXML), &sb)
	if err != nil {
		t.Fatalf("twoPassSAX: %v", err)
	}
	got, err := sax.ParseString(sb.String())
	if err != nil {
		t.Fatalf("parse of streamed output: %v\n%s", err, sb.String())
	}
	doc, err := sax.ParseString(docXML)
	if err != nil {
		t.Fatal(err)
	}
	want, err := c.Eval(doc, core.MethodTwoPass)
	if err != nil {
		t.Fatal(err)
	}
	if !tree.Equal(got, want) {
		t.Fatalf("twoPassSAX disagrees with twoPass:\n got %s\nwant %s", got, want)
	}
	return got, res
}

func TestDeleteStreaming(t *testing.T) {
	c := compile(t, `transform copy $a := doc("f") modify do delete $a//price return $a`)
	got, res := runBoth(t, c, fig1)
	if tree.CountLabel(got, "price") != 0 {
		t.Errorf("prices remain: %s", got)
	}
	if res.First.MaxStackDepth == 0 || res.Second.MaxStackDepth == 0 {
		t.Errorf("stats not recorded: %+v", res)
	}
}

func TestInsertStreaming(t *testing.T) {
	c := compile(t, `transform copy $a := doc("f") modify do insert <supplier><sname>HP</sname></supplier> into $a//part[pname = "keyboard"]//part[not(supplier/sname = "HP") and not(supplier/price < 15)] return $a`)
	got, res := runBoth(t, c, fig1)
	if got := tree.CountLabel(got, "supplier"); got != 5 {
		t.Errorf("suppliers = %d, want 5", got)
	}
	if res.QualOccurrences == 0 {
		t.Errorf("no qualifiers logged in L_d")
	}
}

func TestReplaceStreaming(t *testing.T) {
	c := compile(t, `transform copy $a := doc("f") modify do replace $a//supplier[country = "A"] with <redacted/> return $a`)
	got, _ := runBoth(t, c, fig1)
	if tree.CountLabel(got, "redacted") != 2 {
		t.Errorf("redacted = %d, want 2", tree.CountLabel(got, "redacted"))
	}
}

func TestRenameStreaming(t *testing.T) {
	c := compile(t, `transform copy $a := doc("f") modify do rename $a//subPart as componentOf return $a`)
	got, _ := runBoth(t, c, fig1)
	if tree.CountLabel(got, "componentOf") != 1 || tree.CountLabel(got, "subPart") != 0 {
		t.Errorf("rename failed: %s", got)
	}
}

func TestNestedDeleteStreaming(t *testing.T) {
	c := compile(t, `transform copy $a := doc("f") modify do delete $a//part return $a`)
	got, _ := runBoth(t, c, fig1)
	if tree.CountLabel(got, "part") != 0 {
		t.Errorf("parts remain")
	}
}

func TestAttributesPreserved(t *testing.T) {
	docXML := `<site><people><person id="person0"><name>Ada</name></person><person id="person10"><name>Bob</name></person></people></site>`
	c := compile(t, `transform copy $a := doc("f") modify do delete $a/site/people/person[@id = "person10"] return $a`)
	got, _ := runBoth(t, c, docXML)
	persons := xpath.Select(got, xpath.MustParse("site/people/person"))
	if len(persons) != 1 {
		t.Fatalf("persons = %d, want 1", len(persons))
	}
	if v, _ := persons[0].Attr("id"); v != "person0" {
		t.Errorf("wrong person deleted")
	}
}

func TestFirstPassPruning(t *testing.T) {
	c := compile(t, `transform copy $a := doc("f") modify do delete $a/db/part[pname = "keyboard"]/supplier return $a`)
	ld, st, err := runFirstPass(c, func(h sax.Handler) error {
		return sax.NewParser(strings.NewReader(fig1), h).Parse()
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.ElementsPruned == 0 {
		t.Errorf("no pruning on a selective path; stats %+v", st)
	}
	if len(ld.Values) == 0 {
		t.Errorf("no qualifiers evaluated")
	}
}

func TestStackDepthBounded(t *testing.T) {
	// A long flat document: stack depth stays at the tree depth even
	// though the document grows.
	var b strings.Builder
	b.WriteString("<db>")
	for i := 0; i < 5000; i++ {
		b.WriteString("<part><pname>p</pname><supplier><price>3</price></supplier></part>")
	}
	b.WriteString("</db>")
	c := compile(t, `transform copy $a := doc("f") modify do delete $a//supplier[price < 5] return $a`)
	var out strings.Builder
	res, err := TransformXML(c, BytesSource(b.String()), &out)
	if err != nil {
		t.Fatal(err)
	}
	// Depth: sentinel + db + part + supplier (+price on first pass) = 5.
	if res.First.MaxStackDepth > 6 || res.Second.MaxStackDepth > 6 {
		t.Errorf("stack depth grew with document size: %+v", res)
	}
	got, err := sax.ParseString(out.String())
	if err != nil {
		t.Fatal(err)
	}
	if tree.CountLabel(got, "supplier") != 0 {
		t.Errorf("suppliers remain")
	}
	if tree.CountLabel(got, "part") != 5000 {
		t.Errorf("parts = %d", tree.CountLabel(got, "part"))
	}
}

func TestFileSource(t *testing.T) {
	path := t.TempDir() + "/doc.xml"
	if err := writeFile(path, fig1); err != nil {
		t.Fatal(err)
	}
	c := compile(t, `transform copy $a := doc("f") modify do delete $a//price return $a`)
	var sb strings.Builder
	if _, err := TransformXML(c, FileSource(path), &sb); err != nil {
		t.Fatal(err)
	}
	got, err := sax.ParseString(sb.String())
	if err != nil {
		t.Fatal(err)
	}
	if tree.CountLabel(got, "price") != 0 {
		t.Errorf("prices remain")
	}
	if _, err := TransformXML(c, FileSource(path+".missing"), &sb); err == nil {
		t.Errorf("missing file accepted")
	}
}

func TestMalformedInput(t *testing.T) {
	c := compile(t, `transform copy $a := doc("f") modify do delete $a//x return $a`)
	var sb strings.Builder
	if _, err := TransformXML(c, BytesSource("<a><b></a>"), &sb); err == nil {
		t.Errorf("malformed document accepted")
	}
}

// Property: twoPassSAX agrees with the in-memory methods on random
// documents × random updates.
func TestStreamingAgreesRandom(t *testing.T) {
	genOpts := tree.DefaultGenOptions()
	cfg := xpath.DefaultGenConfig()
	elem := tree.NewElement("new", tree.NewText("v"))
	checked := 0
	for seed := int64(0); seed < 250; seed++ {
		rng := rand.New(rand.NewSource(seed))
		d := tree.Generate(rng, genOpts)
		p := xpath.RandomPath(rng, cfg)
		u := core.Update{Path: p}
		switch rng.Intn(4) {
		case 0:
			u.Op = core.Insert
			u.Elem = elem
		case 1:
			u.Op = core.Delete
		case 2:
			u.Op = core.Replace
			u.Elem = elem
		case 3:
			u.Op = core.Rename
			u.Label = "renamed"
		}
		q := &core.Query{Var: "a", Doc: "gen", Update: u}
		c, err := q.Compile()
		if err != nil {
			continue
		}
		checked++
		var sb strings.Builder
		if _, err := TransformXML(c, BytesSource(d.String()), &sb); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		got, err := sax.ParseString(sb.String())
		if err != nil {
			// Deleting/replacing the root element of a root-only
			// match can empty the document, which is unparseable.
			want, werr := c.Eval(d, core.MethodTwoPass)
			if werr == nil && want.Root() == nil && strings.TrimSpace(sb.String()) == "" {
				continue
			}
			t.Fatalf("seed %d: output unparseable: %v\n%q", seed, err, sb.String())
		}
		want, err := c.Eval(d, core.MethodTwoPass)
		if err != nil {
			t.Fatal(err)
		}
		if !treeEqualNormalized(got, want) {
			t.Fatalf("seed %d: mismatch for %s on %s\n got %s\nwant %s",
				seed, u.String("$a"), d, got, want)
		}
	}
	if checked < 200 {
		t.Fatalf("only %d/250 cases compiled", checked)
	}
}

// treeEqualNormalized compares modulo text-node coalescing (serializing
// and re-parsing merges adjacent text nodes).
func treeEqualNormalized(a, b *tree.Node) bool {
	return normalize(a).String() == normalize(b).String()
}

func normalize(n *tree.Node) *tree.Node {
	c := &tree.Node{Kind: n.Kind, Label: n.Label, Data: n.Data, Attrs: n.Attrs}
	for _, ch := range n.Children {
		s := normalize(ch)
		if last := len(c.Children) - 1; s.Kind == tree.Text && last >= 0 && c.Children[last].Kind == tree.Text {
			c.Children[last] = tree.NewText(c.Children[last].Data + s.Data)
			continue
		}
		c.Children = append(c.Children, s)
	}
	return c
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
