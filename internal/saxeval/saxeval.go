package saxeval

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"os"

	"xtq/internal/core"
	"xtq/internal/sax"
	"xtq/internal/xerr"
)

// Source provides independent sequential reads of one XML document. The
// two-pass algorithm parses the document twice, so plain io.Readers are
// not sufficient.
type Source interface {
	Open() (io.ReadCloser, error)
}

// FileSource reads the document from a file path; this is the intended
// production configuration for documents too large for a DOM.
type FileSource string

// Open implements Source.
func (p FileSource) Open() (io.ReadCloser, error) { return os.Open(string(p)) }

// BytesSource serves the document from memory; convenient for tests and
// for moderately sized inputs.
type BytesSource []byte

// Open implements Source.
func (b BytesSource) Open() (io.ReadCloser, error) {
	return io.NopCloser(bytes.NewReader(b)), nil
}

// Result carries the per-pass resource statistics of a transform run.
type Result struct {
	First  Stats
	Second Stats
	// QualOccurrences is the length of the qualifier-truth list L_d.
	QualOccurrences int
}

// parseWith runs one SAX pass of src into h, honouring ctx at event
// granularity, and classifies the failure modes the pass can hit: source
// open errors are IO, well-formedness violations are Parse (with the
// line:col position), cancellations are Eval wrapping the context error.
func parseWith(ctx context.Context, src Source, h sax.Handler) error {
	r, err := src.Open()
	if err != nil {
		return xerr.Wrap(xerr.IO, err)
	}
	defer r.Close()
	return classify(sax.NewParser(r, sax.WithCancel(ctx, h)).Parse())
}

// classify maps a pass error onto the module's error taxonomy. Errors that
// are already typed — including handler errors that bubbled through the
// parser — pass through unchanged.
func classify(err error) error {
	if err == nil {
		return nil
	}
	var pe *sax.ParseError
	if errors.As(err, &pe) {
		return &xerr.Error{
			Kind: xerr.Parse,
			Pos:  fmt.Sprintf("%d:%d", pe.Line, pe.Col),
			Msg:  pe.Msg,
			Err:  err,
		}
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return xerr.Wrap(xerr.Eval, err)
	}
	return err
}

// Transform evaluates the compiled transform query over src with two SAX
// passes, streaming the result into out. Memory use is bounded by the
// document depth (stack entries) plus the qualifier-truth list.
func Transform(c *core.Compiled, src Source, out sax.Handler) (Result, error) {
	return TransformContext(context.Background(), c, src, out)
}

// TransformContext is Transform honouring ctx: cancelling it aborts
// either pass at SAX-event granularity, so a multi-gigabyte document
// stops streaming within a few events of the cancellation.
func TransformContext(ctx context.Context, c *core.Compiled, src Source, out sax.Handler) (Result, error) {
	var res Result
	// The passes poll cancellation every few events, which a small
	// document may never reach; checking up front makes an
	// already-cancelled context fail deterministically.
	if ctx != nil && ctx.Err() != nil {
		return res, xerr.Wrap(xerr.Eval, ctx.Err())
	}
	ld, st1, err := runFirstPass(c, func(h sax.Handler) error { return parseWith(ctx, src, h) })
	if err != nil {
		return res, err
	}
	res.First = st1
	res.QualOccurrences = len(ld.Values)
	st2, err := runSecondPass(c, ld, out, func(h sax.Handler) error { return parseWith(ctx, src, h) })
	res.Second = st2
	return res, err
}

// TransformXML runs Transform and serializes the result to w as XML.
func TransformXML(c *core.Compiled, src Source, w io.Writer) (Result, error) {
	return TransformXMLContext(context.Background(), c, src, w)
}

// TransformXMLContext is TransformXML honouring ctx.
func TransformXMLContext(ctx context.Context, c *core.Compiled, src Source, w io.Writer) (Result, error) {
	sw := sax.NewWriter(w)
	res, err := TransformContext(ctx, c, src, sw)
	if err != nil {
		return res, err
	}
	return res, xerr.Wrap(xerr.IO, sw.Flush())
}
