package saxeval

import (
	"bytes"
	"io"
	"os"

	"xtq/internal/core"
	"xtq/internal/sax"
)

// Source provides independent sequential reads of one XML document. The
// two-pass algorithm parses the document twice, so plain io.Readers are
// not sufficient.
type Source interface {
	Open() (io.ReadCloser, error)
}

// FileSource reads the document from a file path; this is the intended
// production configuration for documents too large for a DOM.
type FileSource string

// Open implements Source.
func (p FileSource) Open() (io.ReadCloser, error) { return os.Open(string(p)) }

// BytesSource serves the document from memory; convenient for tests and
// for moderately sized inputs.
type BytesSource []byte

// Open implements Source.
func (b BytesSource) Open() (io.ReadCloser, error) {
	return io.NopCloser(bytes.NewReader(b)), nil
}

// Result carries the per-pass resource statistics of a transform run.
type Result struct {
	First  Stats
	Second Stats
	// QualOccurrences is the length of the qualifier-truth list L_d.
	QualOccurrences int
}

func parseWith(src Source, h sax.Handler) error {
	r, err := src.Open()
	if err != nil {
		return err
	}
	defer r.Close()
	return sax.NewParser(r, h).Parse()
}

// Transform evaluates the compiled transform query over src with two SAX
// passes, streaming the result into out. Memory use is bounded by the
// document depth (stack entries) plus the qualifier-truth list.
func Transform(c *core.Compiled, src Source, out sax.Handler) (Result, error) {
	var res Result
	ld, st1, err := runFirstPass(c, func(h sax.Handler) error { return parseWith(src, h) })
	if err != nil {
		return res, err
	}
	res.First = st1
	res.QualOccurrences = len(ld.Values)
	st2, err := runSecondPass(c, ld, out, func(h sax.Handler) error { return parseWith(src, h) })
	res.Second = st2
	return res, err
}

// TransformXML runs Transform and serializes the result to w as XML.
func TransformXML(c *core.Compiled, src Source, w io.Writer) (Result, error) {
	sw := sax.NewWriter(w)
	res, err := Transform(c, src, sw)
	if err != nil {
		return res, err
	}
	return res, sw.Flush()
}
