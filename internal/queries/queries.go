// Package queries defines the experimental workload of §7 (Fig. 11): the
// ten embedded XPath queries U1-U10 over XMark data, the transform queries
// built from them, and the four composition pairs of Fig. 15.
package queries

import (
	"fmt"

	"xtq/internal/core"
	"xtq/internal/tree"
	"xtq/internal/xpath"
	"xtq/internal/xquery"
)

// U holds the embedded XPath queries of Fig. 11, indexed U[1] … U[10]
// (U[0] is unused). Comments reproduce the paper's characterization.
var U = [...]string{
	"",
	`/site/people/person`,                   // U1: broad, no qualifier
	`/site/people/person[@id = "person10"]`, // U2: one simple qualifier
	`/site/people/person[profile/age > 20]`, // U3: one simple qualifier
	`/site/regions//item`,                   // U4: descendant axis
	`/site//description`,                    // U5: descendant axis
	`/site/closed_auctions/closed_auction/annotation/description/parlist/listitem/parlist/listitem/text/emph/keyword`, // U6: long path
	`/site/open_auctions/open_auction[bidder/increase > 5]/annotation[happiness < 20]/description//text`,              // U7: complex qualifier
	`/site/open_auctions/open_auction[initial > 10 and reserve > 50]/bidder`,                                          // U8: complex qualifier
	`/site/regions//item[location = "United States"]`,                                                                 // U9: descendant + qualifier
	`/site//open_auctions/open_auction[not(@id = "open_auction2")]/bidder[increase > 10]`,                             // U10: descendant + qualifier
}

// Names returns the identifiers U1 … U10.
func Names() []string {
	out := make([]string, 10)
	for i := range out {
		out[i] = fmt.Sprintf("U%d", i+1)
	}
	return out
}

// Path parses U<i> (1-based).
func Path(i int) *xpath.Path {
	return xpath.MustParse(U[i])
}

// insertElem is the constant element inserted by the benchmark transform
// queries, mirroring the small annotation elements of the paper's setup.
func insertElem() *tree.Node {
	return tree.NewElement("newnode",
		tree.NewElement("info", tree.NewText("inserted")),
	)
}

// Transform returns the insert transform query built from U<i>; the
// paper's Figures 12-14 report insert transform queries ("transform
// queries of the other types consistently yield qualitatively similar
// results", §7).
func Transform(i int) *core.Query {
	return &core.Query{
		Var: "a",
		Doc: "xmark",
		Update: core.Update{
			Op:   core.Insert,
			Path: Path(i),
			Elem: insertElem(),
		},
	}
}

// TransformOp returns a transform query from U<i> with an explicit update
// kind.
func TransformOp(i int, op core.Op) *core.Query {
	u := core.Update{Op: op, Path: Path(i)}
	switch op {
	case core.Insert, core.Replace:
		u.Elem = insertElem()
	case core.Rename:
		u.Label = "renamed"
	}
	return &core.Query{Var: "a", Doc: "xmark", Update: u}
}

// Compile compiles the insert transform query for U<i>.
func Compile(i int) (*core.Compiled, error) {
	return Transform(i).Compile()
}

// UserQuery returns U<i> as a user query "for $x in U<i> return $x",
// the form the composition experiment poses on the (virtual) view.
func UserQuery(i int) *xquery.UserQuery {
	return &xquery.UserQuery{
		Var:    "x",
		Path:   Path(i),
		Return: &xquery.Hole{},
	}
}

// Pair is one composition workload of Fig. 15: a transform query and a
// user query.
type Pair struct {
	Name      string
	Transform *core.Query
	User      *xquery.UserQuery
}

// Pairs returns the four pairs of Fig. 15: (U1, U2) and (U9, U1) with
// insert transform queries, (U9, U4) and (U8, U10) with deletes.
func Pairs() []Pair {
	return []Pair{
		{Name: "(U1,U2)", Transform: TransformOp(1, core.Insert), User: UserQuery(2)},
		{Name: "(U9,U1)", Transform: TransformOp(9, core.Insert), User: UserQuery(1)},
		{Name: "(U9,U4)", Transform: TransformOp(9, core.Delete), User: UserQuery(4)},
		{Name: "(U8,U10)", Transform: TransformOp(8, core.Delete), User: UserQuery(10)},
	}
}

// Stack is a stacked-view workload: an ordered transform stack (the
// first layer transforms the source document) and a user query over the
// top of the stack.
type Stack struct {
	Name   string
	Layers []*core.Query
	User   *xquery.UserQuery
}

// update builds a transform query from an explicit update, for workloads
// whose layers are not drawn verbatim from U1-U10.
func update(op core.Op, path string) *core.Query {
	u := core.Update{Op: op, Path: xpath.MustParse(path)}
	switch op {
	case core.Insert, core.Replace:
		u.Elem = insertElem()
	}
	return &core.Query{Var: "a", Doc: "xmark", Update: u}
}

// Stacks returns the stacked-view workloads: view chains whose layers
// genuinely interact (a layer deletes what an earlier one inserted,
// navigates labels an earlier one renamed), mirroring the paper's
// layered applications — a security view over a virtual update over a
// hypothetical state.
func Stacks() []Stack {
	renameRegions := update(core.Rename, "site/regions")
	renameRegions.Update.Label = "markets"
	return []Stack{
		{
			// Virtual update (withdraw US items) under an audit marker on
			// every surviving item; the user lists the audited region.
			Name: "upd|audit",
			Layers: []*core.Query{
				TransformOp(9, core.Delete),
				TransformOp(4, core.Insert),
			},
			User: UserQuery(4),
		},
		{
			// Hypothetical state (flag qualifying bidders) under a
			// security view that hides bid increases.
			Name: "hyp|sec",
			Layers: []*core.Query{
				TransformOp(8, core.Insert),
				update(core.Delete, "site/open_auctions/open_auction/bidder/increase"),
			},
			User: UserQuery(8),
		},
		{
			// Three layers: flag US items, rename the region container,
			// and hide quantities — the third layer navigates through
			// the renamed label, the user query likewise.
			Name: "upd|ren|sec",
			Layers: []*core.Query{
				TransformOp(9, core.Insert),
				renameRegions,
				update(core.Delete, "site/markets//item/quantity"),
			},
			User: &xquery.UserQuery{
				Var:    "x",
				Path:   xpath.MustParse("site/markets//item"),
				Return: &xquery.Hole{},
			},
		},
	}
}
