package queries

import (
	"context"
	"testing"

	"xtq/internal/compose"
	"xtq/internal/core"
	"xtq/internal/tree"
	"xtq/internal/xmark"
)

func TestAllQueriesCompile(t *testing.T) {
	for i := 1; i <= 10; i++ {
		c, err := Compile(i)
		if err != nil {
			t.Errorf("U%d: %v", i, err)
			continue
		}
		if c.NFA.Size() == 0 {
			t.Errorf("U%d: empty NFA", i)
		}
	}
}

func TestNames(t *testing.T) {
	names := Names()
	if len(names) != 10 || names[0] != "U1" || names[9] != "U10" {
		t.Errorf("Names() = %v", names)
	}
}

func TestTransformOps(t *testing.T) {
	for _, op := range []core.Op{core.Insert, core.Delete, core.Replace, core.Rename} {
		q := TransformOp(4, op)
		if err := q.Validate(); err != nil {
			t.Errorf("%s: %v", op, err)
		}
	}
}

func TestPairsRunnable(t *testing.T) {
	doc, err := xmark.Generate(xmark.Config{Factor: 0.002, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range Pairs() {
		ct, err := p.Transform.Compile()
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		plan, err := compose.NewPlan([]*core.Compiled{ct}, p.User)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		got, _, err := plan.Eval(context.Background(), doc)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		want, err := plan.EvalSequential(context.Background(), doc, core.MethodTopDown)
		if err != nil {
			t.Fatalf("%s naive: %v", p.Name, err)
		}
		if !tree.Equal(got, want) {
			t.Errorf("%s: compose and naive composition disagree", p.Name)
		}
	}
}

// TestAllMethodsOnWorkload runs every evaluation method over every
// workload query on a small document and cross-checks the results — the
// correctness backbone of the Fig. 12/13 benchmarks.
func TestAllMethodsOnWorkload(t *testing.T) {
	doc, err := xmark.Generate(xmark.Config{Factor: 0.002, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 10; i++ {
		c, err := Compile(i)
		if err != nil {
			t.Fatal(err)
		}
		var ref *tree.Node
		for _, m := range core.Methods() {
			got, err := c.Eval(doc, m)
			if err != nil {
				t.Fatalf("U%d %s: %v", i, m, err)
			}
			if ref == nil {
				ref = got
				continue
			}
			if !tree.Equal(ref, got) {
				t.Errorf("U%d: method %s disagrees", i, m)
			}
		}
	}
}
