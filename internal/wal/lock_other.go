//go:build !unix

package wal

import "os"

// lockDir is a no-op on platforms without flock: double-open protection
// is advisory and unix-only.
func lockDir(dir string) (*os.File, error) { return nil, nil }
