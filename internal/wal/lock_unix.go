//go:build unix

package wal

import (
	"os"
	"path/filepath"
	"syscall"

	"xtq/internal/xerr"
)

// lockDir takes an exclusive advisory lock on dir/LOCK, failing fast if
// another Log (in this process or another) holds it: two appenders on
// one directory would write records over each other at identical
// offsets, destroying acknowledged commits. flock locks die with the
// process, so a kill -9 never leaves a stale lock behind.
func lockDir(dir string) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, "LOCK"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, xerr.Wrap(xerr.IO, err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, xerr.New(xerr.IO, "", "wal: %s is locked by another store (flock: %v)", dir, err)
	}
	return f, nil
}
