package wal

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"

	"xtq/internal/xerr"
)

// CheckpointDoc is one document captured by a checkpoint: its name, the
// version the capture saw, and its canonical serialization — or, for a
// tombstone that was not yet garbage-collected, Removed with no bytes.
// Tombstone entries keep recovery's version-chain verification strict:
// replay knows the removed document's version, so a chain-restarting
// put (version 1 after a garbage collection) is distinguishable from a
// gap.
type CheckpointDoc struct {
	Name    string
	Version uint64
	XML     []byte
	Removed bool
}

// Checkpoint is a loaded checkpoint file: the segment cut it covers
// and the per-document state at exactly that cut.
type Checkpoint struct {
	// Seq is the highest segment sequence the checkpoint covers:
	// recovery loads the checkpoint, then replays segments > Seq.
	Seq  uint64
	Docs []CheckpointDoc
}

func checkpointName(seq uint64) string { return fmt.Sprintf("ckpt-%016d.ckpt", seq) }

// CheckpointWriter streams a checkpoint covering segments ≤ seq into a
// temporary file, one document at a time, publishing it atomically on
// Close: fully written and fsynced under the temporary name, renamed
// into place, directory fsynced. A crash at any point leaves either the
// previous checkpoint or the new one — never a half-visible file. Peak
// memory is one document's record, not the corpus: the caller hands
// each CheckpointDoc to Add and may reuse its XML buffer immediately.
//
// The file reuses the record codec: a KindCheckpoint header (Seq = seq,
// Version = count, fixed at creation) followed by one KindPut record
// per live document and one KindRemove per retained tombstone, so
// checkpoint reading is segment reading.
type CheckpointWriter struct {
	dir, tmp, final string
	f               *os.File
	bw              *bufio.Writer
	scratch         []byte
	added           uint64
	count           uint64
	err             error
}

// NewCheckpointWriter starts a checkpoint file that will hold exactly
// count entries.
func NewCheckpointWriter(dir string, seq, count uint64) (*CheckpointWriter, error) {
	final := filepath.Join(dir, checkpointName(seq))
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, xerr.Wrap(xerr.IO, err)
	}
	w := &CheckpointWriter{dir: dir, tmp: tmp, final: final, f: f, bw: bufio.NewWriterSize(f, 1<<16), count: count}
	w.write(&Record{Kind: KindCheckpoint, Seq: seq, Version: count})
	return w, nil
}

func (w *CheckpointWriter) write(rec *Record) {
	if w.err != nil {
		return
	}
	w.scratch = AppendRecord(w.scratch[:0], rec)
	if _, err := w.bw.Write(w.scratch); err != nil {
		w.err = xerr.Wrap(xerr.IO, err)
	}
}

// Add appends one entry. doc.XML is consumed before Add returns, so the
// caller may reuse the buffer.
func (w *CheckpointWriter) Add(doc CheckpointDoc) error {
	rec := Record{Kind: KindPut, Name: doc.Name, Version: doc.Version, Doc: doc.XML}
	if doc.Removed {
		rec = Record{Kind: KindRemove, Name: doc.Name, Version: doc.Version}
	}
	w.write(&rec)
	w.added++
	return w.err
}

// Close flushes, fsyncs and atomically publishes the checkpoint. It
// fails (removing the temporary file) if any Add failed or the entry
// count does not match the header's promise.
func (w *CheckpointWriter) Close() error {
	err := w.err
	if err == nil && w.added != w.count {
		err = xerr.New(xerr.IO, "", "wal: checkpoint promised %d entries, got %d", w.count, w.added)
	}
	if err == nil {
		err = w.bw.Flush()
	}
	if err == nil {
		err = w.f.Sync()
	}
	if cerr := w.f.Close(); err == nil && cerr != nil {
		err = cerr
	}
	if err != nil {
		os.Remove(w.tmp)
		return xerr.Wrap(xerr.IO, err)
	}
	if err := os.Rename(w.tmp, w.final); err != nil {
		os.Remove(w.tmp)
		return xerr.Wrap(xerr.IO, err)
	}
	syncDir(w.dir)
	return nil
}

// Abort discards the in-progress checkpoint.
func (w *CheckpointWriter) Abort() {
	w.f.Close()
	os.Remove(w.tmp)
}

// WriteCheckpoint writes a complete checkpoint in one call — the
// convenience form of CheckpointWriter for small corpora and tests.
func WriteCheckpoint(dir string, seq uint64, docs []CheckpointDoc) (string, error) {
	w, err := NewCheckpointWriter(dir, seq, uint64(len(docs)))
	if err != nil {
		return "", err
	}
	for i := range docs {
		if err := w.Add(docs[i]); err != nil {
			w.Abort()
			return "", err
		}
	}
	if err := w.Close(); err != nil {
		return "", err
	}
	return w.final, nil
}

// ReadLatestCheckpoint loads the newest checkpoint in dir, or returns
// nil when none exists. A checkpoint that fails validation (its rename
// was atomic, so this means bit rot, not a crash) is a typed corrupt
// error naming the file and offset.
func ReadLatestCheckpoint(dir string) (*Checkpoint, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, xerr.Wrap(xerr.IO, err)
	}
	var seqs []uint64
	for _, e := range ents {
		if seq, ok := parseSeq(e.Name(), "ckpt-", ".ckpt"); ok {
			seqs = append(seqs, seq)
		}
	}
	if len(seqs) == 0 {
		return nil, nil
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	seq := seqs[len(seqs)-1]
	return readCheckpoint(filepath.Join(dir, checkpointName(seq)))
}

// LatestCheckpointInfo reports the newest checkpoint file in dir
// without loading it: its path and the segment cut it covers. ok is
// false when the directory holds no checkpoint. The replication feed
// uses it to serve the checkpoint file's raw bytes to a bootstrapping
// follower.
func LatestCheckpointInfo(dir string) (path string, seq uint64, ok bool, err error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return "", 0, false, nil
		}
		return "", 0, false, xerr.Wrap(xerr.IO, err)
	}
	for _, e := range ents {
		if s, k := parseSeq(e.Name(), "ckpt-", ".ckpt"); k && (!ok || s > seq) {
			seq, ok = s, true
		}
	}
	if !ok {
		return "", 0, false, nil
	}
	return filepath.Join(dir, checkpointName(seq)), seq, true, nil
}

// ReadCheckpointFile loads one checkpoint file by path — the loader
// behind ReadLatestCheckpoint, exported for followers that fetch a
// checkpoint over the wire and park it under their own name.
func ReadCheckpointFile(path string) (*Checkpoint, error) { return readCheckpoint(path) }

func readCheckpoint(path string) (*Checkpoint, error) {
	r, err := openSegReader(path, 0)
	if err != nil {
		return nil, err
	}
	defer r.close()
	name := filepath.Base(path)
	ckpos := func(p Pos) string { return name + ":" + strconv.FormatInt(p.Offset, 10) }

	head, pos, err := r.next()
	if err != nil {
		return nil, corruptAt(err, ckpos(pos), "reading checkpoint header")
	}
	if head.Kind != KindCheckpoint {
		return nil, corrupt(ckpos(pos), "checkpoint starts with %s record, want checkpoint header", head.Kind)
	}
	ck := &Checkpoint{Seq: head.Seq}
	for {
		rec, pos, err := r.next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, corruptAt(err, ckpos(pos), "reading checkpoint document")
		}
		switch rec.Kind {
		case KindPut:
			ck.Docs = append(ck.Docs, CheckpointDoc{Name: rec.Name, Version: rec.Version, XML: rec.Doc})
		case KindRemove:
			ck.Docs = append(ck.Docs, CheckpointDoc{Name: rec.Name, Version: rec.Version, Removed: true})
		default:
			return nil, corrupt(ckpos(pos), "checkpoint holds %s record, want put or remove", rec.Kind)
		}
	}
	if uint64(len(ck.Docs)) != head.Version {
		return nil, corrupt(name, "checkpoint header promises %d documents, file holds %d", head.Version, len(ck.Docs))
	}
	return ck, nil
}

// corruptAt reclassifies a record-level failure (including a torn tail,
// which cannot legitimately appear inside an atomically renamed file) as
// checkpoint corruption at the given position. Inner errors are always
// re-positioned: the record reader names positions in segment terms,
// which would point operators at a segment file that does not exist.
func corruptAt(err error, pos, doing string) error {
	return &xerr.Error{Kind: xerr.Corrupt, Pos: pos, Msg: "wal: " + doing, Err: err}
}

// RemoveCheckpointsBelow deletes checkpoints older than seq, keeping the
// one at seq itself. Compaction calls it after publishing a new
// checkpoint.
func RemoveCheckpointsBelow(dir string, seq uint64) error {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return xerr.Wrap(xerr.IO, err)
	}
	for _, e := range ents {
		if s, ok := parseSeq(e.Name(), "ckpt-", ".ckpt"); ok && s < seq {
			if err := os.Remove(filepath.Join(dir, e.Name())); err != nil && !os.IsNotExist(err) {
				return xerr.Wrap(xerr.IO, err)
			}
		}
	}
	return nil
}
