package wal

import "xtq/internal/obs"

// Log instruments on the process-wide obs registry. Fsync latency is
// labeled by the policy in force so an FsyncAlways deployment's
// per-commit sync cost and an FsyncInterval deployment's background
// ticks chart as separate series.
var (
	mFsyncSeconds = obs.Default.HistogramVec("xtq_wal_fsync_seconds",
		"WAL fsync latency by fsync policy.", "policy")
	mRotations = obs.Default.Counter("xtq_wal_segment_rotations_total",
		"WAL segment rotations (size-triggered and checkpoint cuts).")
	mAppendedBytes = obs.Default.Counter("xtq_wal_appended_bytes_total",
		"Bytes appended to the WAL, including frame headers.")
	mRecords = obs.Default.Counter("xtq_wal_records_total",
		"Records appended to the WAL.")
)
