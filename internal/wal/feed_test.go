package wal

import (
	"os"
	"testing"
	"time"
)

func TestTailStateAdvancesAndNotifies(t *testing.T) {
	l, err := Open(t.TempDir(), Options{Fsync: FsyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	pos, ch := l.TailState()
	if pos.Seq != 1 || pos.Offset != 0 {
		t.Fatalf("fresh tail = %v, want seg 1 offset 0", pos)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		select {
		case <-ch:
		case <-time.After(5 * time.Second):
			t.Error("tail channel never closed after append")
		}
	}()
	if _, err := l.Append(&Record{Kind: KindRemove, Name: "a", Version: 1}); err != nil {
		t.Fatal(err)
	}
	<-done
	next, _ := l.TailState()
	if next.Seq != 1 || next.Offset <= 0 {
		t.Fatalf("tail after append = %v, want seg 1 offset > 0", next)
	}
	if got := l.AppendedRecords(); got != 1 {
		t.Fatalf("AppendedRecords = %d, want 1", got)
	}
}

func TestSegmentStatusTracksRotation(t *testing.T) {
	l, err := Open(t.TempDir(), Options{Fsync: FsyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	if _, err := l.Append(&Record{Kind: KindRemove, Name: "a", Version: 1}); err != nil {
		t.Fatal(err)
	}
	frozenSize := l.TailPos().Offset
	frozen, err := l.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(&Record{Kind: KindRemove, Name: "b", Version: 1}); err != nil {
		t.Fatal(err)
	}

	segs := l.SegmentStatus()
	if len(segs) != 2 {
		t.Fatalf("SegmentStatus = %v, want 2 segments", segs)
	}
	if s := segs[0]; s.Seq != frozen || !s.Sealed || s.Size != frozenSize {
		t.Fatalf("sealed segment = %+v, want seq %d sealed size %d", s, frozen, frozenSize)
	}
	if s := segs[1]; s.Seq != frozen+1 || s.Sealed || s.Size <= 0 {
		t.Fatalf("active segment = %+v, want seq %d unsealed with bytes", s, frozen+1)
	}

	// Tail notification fires on rotation too, so a long-poll parked on
	// the frozen segment wakes and discovers the seal.
	_, ch := l.TailState()
	go l.Rotate()
	select {
	case <-ch:
	case <-time.After(5 * time.Second):
		t.Fatal("tail channel never closed after rotation")
	}
}

func TestSegmentStatusSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Fsync: FsyncNone})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(&Record{Kind: KindRemove, Name: "a", Version: 1}); err != nil {
		t.Fatal(err)
	}
	size := l.TailPos().Offset
	if _, err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{Fsync: FsyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	segs := l2.SegmentStatus()
	if len(segs) != 2 || !segs[0].Sealed || segs[0].Size != size {
		t.Fatalf("after reopen SegmentStatus = %+v, want sealed seg of %d bytes first", segs, size)
	}
}

func TestSegmentPathAndLatestCheckpointInfo(t *testing.T) {
	dir := t.TempDir()
	if got, want := SegmentPath(dir, 7), dir+string(os.PathSeparator)+"seg-0000000000000007.wal"; got != want {
		t.Fatalf("SegmentPath = %q, want %q", got, want)
	}
	if _, _, ok, err := LatestCheckpointInfo(dir); err != nil || ok {
		t.Fatalf("empty dir LatestCheckpointInfo ok=%v err=%v, want none", ok, err)
	}
	if _, err := WriteCheckpoint(dir, 3, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := WriteCheckpoint(dir, 9, []CheckpointDoc{{Name: "d", Version: 2, XML: []byte("<d/>")}}); err != nil {
		t.Fatal(err)
	}
	path, seq, ok, err := LatestCheckpointInfo(dir)
	if err != nil || !ok || seq != 9 {
		t.Fatalf("LatestCheckpointInfo = %q seq=%d ok=%v err=%v, want seq 9", path, seq, ok, err)
	}
	ck, err := ReadCheckpointFile(path)
	if err != nil || ck.Seq != 9 || len(ck.Docs) != 1 || ck.Docs[0].Name != "d" {
		t.Fatalf("ReadCheckpointFile = %+v err=%v", ck, err)
	}
}

func TestIsShortFrame(t *testing.T) {
	_, _, err := DecodeRecord([]byte{1, 2, 3}, "x")
	if !IsShortFrame(err) {
		t.Fatalf("DecodeRecord on 3 bytes = %v, want short-frame signal", err)
	}
	if IsShortFrame(nil) || IsShortFrame(os.ErrNotExist) {
		t.Fatal("IsShortFrame misfires on unrelated errors")
	}
}
