package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"xtq/internal/xerr"
)

// FsyncPolicy selects when appended records are forced to stable
// storage.
type FsyncPolicy uint8

const (
	// FsyncAlways fsyncs before Append returns: a successful commit
	// survives an OS crash. Concurrent appenders share fsyncs (group
	// commit) — while one fsync is in flight, later appends queue and are
	// covered by the next one.
	FsyncAlways FsyncPolicy = iota
	// FsyncInterval fsyncs on a background ticker (Options.SyncEvery).
	// Append returns after write(2), so a committed write survives a
	// process kill immediately but may be lost to an OS crash inside the
	// sync window.
	FsyncInterval
	// FsyncNone never fsyncs outside rotation, checkpointing and Close.
	// Committed writes survive a process kill (the data is in the OS
	// page cache) but an OS crash loses the tail.
	FsyncNone
)

// String returns the policy's flag spelling.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	case FsyncNone:
		return "none"
	default:
		return "invalid"
	}
}

// ParseFsyncPolicy parses the flag spelling of a policy.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "none":
		return FsyncNone, nil
	}
	return 0, xerr.New(xerr.Eval, "", "wal: unknown fsync policy %q (want always, interval or none)", s)
}

// Options configures a Log.
type Options struct {
	// Fsync is the durability policy for appends. Default FsyncAlways.
	Fsync FsyncPolicy
	// SyncEvery is the FsyncInterval period. Default 25ms.
	SyncEvery time.Duration
	// SegmentBytes rotates the active segment when it exceeds this size.
	// Default 64 MiB.
	SegmentBytes int64
}

func (o Options) withDefaults() Options {
	if o.SyncEvery <= 0 {
		o.SyncEvery = 25 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 64 << 20
	}
	return o
}

// Pos locates a record in the log, for corrupt-error reporting and
// replay bookkeeping.
type Pos struct {
	Seq    uint64 // segment sequence number
	Offset int64  // byte offset of the frame within the segment
}

// String renders the position as "seg-SEQ.wal:OFFSET".
func (p Pos) String() string { return fmt.Sprintf("%s:%d", segmentName(p.Seq), p.Offset) }

func segmentName(seq uint64) string { return fmt.Sprintf("seg-%016d.wal", seq) }

// parseSeq extracts the sequence number from a segment or checkpoint
// file name, reporting ok=false for foreign files.
func parseSeq(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	mid := name[len(prefix) : len(name)-len(suffix)]
	seq, err := strconv.ParseUint(mid, 10, 64)
	if err != nil || len(mid) != 16 {
		return 0, false
	}
	return seq, true
}

// Log is an append-only segmented record log. Appends are safe for
// concurrent use; Replay must complete before the first Append.
type Log struct {
	dir  string
	opts Options

	// syncMu serializes fsyncs and segment transitions; it is always
	// acquired before mu. synced is the high-water mark of bytes known
	// stable, in cumulative log offsets (appended counts across segment
	// boundaries).
	syncMu sync.Mutex
	synced int64

	// mu guards the append path: the active file, sizes and the sticky
	// error.
	mu       sync.Mutex
	f        *os.File
	seq      uint64 // active segment sequence
	ckptSeq  uint64 // highest checkpoint cut found at Open (floor for seq)
	segSize  int64  // bytes in the active segment
	appended int64  // cumulative bytes appended across all segments
	records  int64  // records appended since Open
	segs     []uint64
	sizes    map[uint64]int64 // complete-record bytes per sealed segment
	tail     chan struct{}    // closed and replaced when the tail advances
	scratch  []byte
	err      error // sticky: a failed write poisons the log
	closed   bool

	lock *os.File // flock on dir/LOCK; closing releases it

	closeOnce  sync.Once
	closeErr   error
	stopTicker chan struct{}
	tickerDone chan struct{}
}

// Open opens dir as a log, creating it if necessary. Existing segments
// are scanned and validated: a torn tail in the newest segment (the
// expected state after a crash mid-append) is truncated away, while a
// checksum or framing violation anywhere else surfaces as a typed
// corrupt error naming the segment and offset. Appends continue in the
// newest segment.
//
// Call Replay before the first Append to feed the surviving records to
// recovery.
func Open(dir string, o Options) (*Log, error) {
	o = o.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, xerr.Wrap(xerr.IO, err)
	}
	lock, err := lockDir(dir)
	if err != nil {
		return nil, err
	}
	l := &Log{dir: dir, opts: o, lock: lock, sizes: make(map[uint64]int64), tail: make(chan struct{})}
	fail := func(err error) (*Log, error) {
		if lock != nil {
			lock.Close() // releases the flock
		}
		return nil, err
	}
	if err := l.scan(); err != nil {
		return fail(err)
	}
	if err := l.openActive(); err != nil {
		return fail(err)
	}
	if o.Fsync == FsyncInterval {
		l.stopTicker = make(chan struct{})
		l.tickerDone = make(chan struct{})
		go l.tick()
	}
	return l, nil
}

// scan lists segments, validates them and truncates a torn tail of the
// newest one.
func (l *Log) scan() error {
	ents, err := os.ReadDir(l.dir)
	if err != nil {
		return xerr.Wrap(xerr.IO, err)
	}
	var ckMax uint64
	for _, e := range ents {
		if seq, ok := parseSeq(e.Name(), "seg-", ".wal"); ok {
			l.segs = append(l.segs, seq)
		}
		if seq, ok := parseSeq(e.Name(), "ckpt-", ".ckpt"); ok && seq > ckMax {
			ckMax = seq
		}
		// Leftover temp files from an interrupted checkpoint are garbage.
		if strings.HasSuffix(e.Name(), ".tmp") {
			os.Remove(filepath.Join(l.dir, e.Name()))
		}
	}
	l.ckptSeq = ckMax
	sort.Slice(l.segs, func(i, j int) bool { return l.segs[i] < l.segs[j] })
	for i, seq := range l.segs {
		last := i == len(l.segs)-1
		valid, err := validateSegment(filepath.Join(l.dir, segmentName(seq)), seq, last)
		if err != nil {
			return err
		}
		l.sizes[seq] = valid
		if last {
			// A torn tail — a frame the crash cut short — is truncated so
			// new appends continue from the last whole record.
			path := filepath.Join(l.dir, segmentName(seq))
			fi, err := os.Stat(path)
			if err != nil {
				return xerr.Wrap(xerr.IO, err)
			}
			if fi.Size() > valid {
				if err := os.Truncate(path, valid); err != nil {
					return xerr.Wrap(xerr.IO, err)
				}
			}
			l.segSize = valid
		}
	}
	return nil
}

// openActive opens (or creates) the newest segment for appending. The
// active sequence is always above every checkpoint's covered cut: if
// the directory holds a checkpoint but no segments past it (segment
// files lost, or cleaned up by an operator), starting numbering back at
// 1 would put new appends below the cut, where the next recovery's
// Replay(afterSeq) would silently skip them.
func (l *Log) openActive() error {
	if len(l.segs) == 0 || l.segs[len(l.segs)-1] <= l.ckptSeq {
		l.seq = l.ckptSeq + 1 // 1 for a brand-new directory
		l.segs = append(l.segs, l.seq)
		l.segSize = 0
	} else {
		l.seq = l.segs[len(l.segs)-1]
	}
	f, err := os.OpenFile(filepath.Join(l.dir, segmentName(l.seq)), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return xerr.Wrap(xerr.IO, err)
	}
	if _, err := f.Seek(l.segSize, 0); err != nil {
		f.Close()
		return xerr.Wrap(xerr.IO, err)
	}
	l.f = f
	l.appended = l.segSize
	l.synced = l.segSize
	syncDir(l.dir)
	return nil
}

func (l *Log) tick() {
	defer close(l.tickerDone)
	t := time.NewTicker(l.opts.SyncEvery)
	defer t.Stop()
	for {
		select {
		case <-l.stopTicker:
			return
		case <-t.C:
			l.syncTo(-1)
		}
	}
}

// Append encodes rec and appends it to the active segment, honouring
// the fsync policy before returning. It reports the record's position.
// A log whose underlying file failed stays failed: every later Append
// returns the first error.
func (l *Log) Append(rec *Record) (Pos, error) {
	l.mu.Lock()
	if l.err != nil {
		err := l.err
		l.mu.Unlock()
		return Pos{}, err
	}
	if l.closed {
		l.mu.Unlock()
		return Pos{}, xerr.New(xerr.IO, "", "wal: log closed")
	}
	l.scratch = AppendRecord(l.scratch[:0], rec)
	pos := Pos{Seq: l.seq, Offset: l.segSize}
	n, err := l.f.Write(l.scratch)
	if err != nil {
		// A partial frame may be on disk; recovery will see it as a torn
		// tail. Poison the log so no later append writes after garbage.
		l.err = xerr.Wrap(xerr.IO, err)
		l.mu.Unlock()
		return Pos{}, l.err
	}
	l.segSize += int64(n)
	l.appended += int64(n)
	l.records++
	mAppendedBytes.Add(uint64(n))
	mRecords.Inc()
	l.bumpTail()
	lsn := l.appended
	needRotate := l.segSize >= l.opts.SegmentBytes
	l.mu.Unlock()

	if needRotate {
		if _, err := l.Rotate(); err != nil {
			return pos, err
		}
	}
	if l.opts.Fsync == FsyncAlways {
		if err := l.syncTo(lsn); err != nil {
			return pos, err
		}
	}
	return pos, nil
}

// syncTo fsyncs until at least lsn cumulative bytes are stable; lsn < 0
// means "everything appended so far". Concurrent callers group: one
// fsync covers every byte appended before it started.
func (l *Log) syncTo(lsn int64) error {
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	if lsn >= 0 && l.synced >= lsn {
		return nil
	}
	l.mu.Lock()
	target := l.appended
	f := l.f
	err := l.err
	l.mu.Unlock()
	if err != nil {
		return err
	}
	if f == nil || l.synced >= target {
		return nil
	}
	start := time.Now()
	err = f.Sync()
	mFsyncSeconds.With(l.opts.Fsync.String()).Observe(time.Since(start))
	if err != nil {
		l.mu.Lock()
		if l.err == nil {
			l.err = xerr.Wrap(xerr.IO, err)
		}
		err2 := l.err
		l.mu.Unlock()
		return err2
	}
	l.synced = target
	return nil
}

// Sync forces everything appended so far to stable storage, regardless
// of policy.
func (l *Log) Sync() error { return l.syncTo(-1) }

// Rotate syncs and closes the active segment and starts a new one,
// returning the sequence number of the segment just frozen — everything
// at or below it is complete, fsynced and immutable. Checkpointing uses
// it as the cut: a checkpoint capturing state after Rotate covers all
// records in segments ≤ the returned sequence.
func (l *Log) Rotate() (uint64, error) {
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return 0, l.err
	}
	if l.closed {
		return 0, xerr.New(xerr.IO, "", "wal: log closed")
	}
	frozen := l.seq
	if err := l.f.Sync(); err != nil {
		l.err = xerr.Wrap(xerr.IO, err)
		return 0, l.err
	}
	l.synced = l.appended
	if err := l.f.Close(); err != nil {
		l.err = xerr.Wrap(xerr.IO, err)
		return 0, l.err
	}
	l.seq++
	f, err := os.OpenFile(filepath.Join(l.dir, segmentName(l.seq)), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		l.err = xerr.Wrap(xerr.IO, err)
		return 0, l.err
	}
	l.f = f
	l.sizes[frozen] = l.segSize
	l.segSize = 0
	l.segs = append(l.segs, l.seq)
	l.bumpTail()
	syncDir(l.dir)
	mRotations.Inc()
	return frozen, nil
}

// RemoveThrough deletes all segments with sequence ≤ seq (they are
// covered by a checkpoint), reporting how many were removed. The active
// segment is never removed.
func (l *Log) RemoveThrough(seq uint64) (int, error) {
	l.mu.Lock()
	var keep, drop []uint64
	for _, s := range l.segs {
		if s <= seq && s != l.seq {
			drop = append(drop, s)
			delete(l.sizes, s)
		} else {
			keep = append(keep, s)
		}
	}
	l.segs = keep
	l.mu.Unlock()
	for _, s := range drop {
		if err := os.Remove(filepath.Join(l.dir, segmentName(s))); err != nil && !os.IsNotExist(err) {
			return 0, xerr.Wrap(xerr.IO, err)
		}
	}
	if len(drop) > 0 {
		syncDir(l.dir)
	}
	return len(drop), nil
}

// Size returns the cumulative bytes appended to the log since Open
// (across rotations; deletions do not subtract). The checkpointer uses
// it as its growth trigger.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appended
}

// Dir returns the log directory.
func (l *Log) Dir() string { return l.dir }

// Segments returns the live segment sequences in ascending order.
func (l *Log) Segments() []uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]uint64(nil), l.segs...)
}

// Close syncs and closes the log. Further appends fail. Close is
// idempotent: every call after the first returns the first call's
// result.
func (l *Log) Close() error {
	l.closeOnce.Do(func() {
		if l.stopTicker != nil {
			close(l.stopTicker)
			<-l.tickerDone
		}
		err := l.Sync()
		l.syncMu.Lock()
		defer l.syncMu.Unlock()
		l.mu.Lock()
		defer l.mu.Unlock()
		l.closed = true
		if l.f != nil {
			if cerr := l.f.Close(); err == nil && cerr != nil {
				err = xerr.Wrap(xerr.IO, cerr)
			}
			l.f = nil
		}
		if l.lock != nil {
			l.lock.Close()
			l.lock = nil
		}
		l.closeErr = err
	})
	return l.closeErr
}

// syncDir fsyncs a directory so renames and creates within it are
// durable. Best effort: some platforms reject directory fsync.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}
