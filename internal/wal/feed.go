package wal

import "path/filepath"

// This file is the log's tailing surface: what a replication feed needs
// to stream a live log to followers. The contract rests on two existing
// invariants — segSize only ever covers whole records (a failed partial
// write poisons the log before segSize advances), and rotation freezes a
// segment forever — so a reader that stays at or below the sizes
// reported here never observes a torn frame.

// SegmentInfo describes one live segment of the log.
type SegmentInfo struct {
	Seq    uint64
	Size   int64 // bytes of complete records: the safe read prefix
	Sealed bool  // frozen by rotation — immutable and fully fsynced
}

// bumpTail wakes every TailState waiter. Callers hold l.mu.
func (l *Log) bumpTail() {
	close(l.tail)
	l.tail = make(chan struct{})
}

// TailState reports the position one past the last complete record —
// the next byte a tailing reader should request — and a channel that is
// closed the next time the tail advances (an append or a rotation).
// Waiting on the channel and re-reading is the long-poll loop.
func (l *Log) TailState() (Pos, <-chan struct{}) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Pos{Seq: l.seq, Offset: l.segSize}, l.tail
}

// TailPos reports the position one past the last complete record.
func (l *Log) TailPos() Pos {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Pos{Seq: l.seq, Offset: l.segSize}
}

// AppendedRecords reports how many records have been appended since
// Open. Followers use the delta between two readings to convert byte
// lag into record lag.
func (l *Log) AppendedRecords() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.records
}

// SegmentStatus reports every live segment in ascending order with its
// safe read size. Exactly one entry — the last — is unsealed.
func (l *Log) SegmentStatus() []SegmentInfo {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]SegmentInfo, 0, len(l.segs))
	for _, s := range l.segs {
		if s == l.seq {
			out = append(out, SegmentInfo{Seq: s, Size: l.segSize})
		} else {
			out = append(out, SegmentInfo{Seq: s, Size: l.sizes[s], Sealed: true})
		}
	}
	return out
}

// SegmentPath returns the file path of segment seq inside dir.
func SegmentPath(dir string, seq uint64) string {
	return filepath.Join(dir, segmentName(seq))
}

// CheckpointPath returns the file path of the checkpoint keyed seq
// inside dir. Followers key their local checkpoints by a private
// counter rather than a segment cut; the naming is shared either way.
func CheckpointPath(dir string, seq uint64) string {
	return filepath.Join(dir, checkpointName(seq))
}
