package wal

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"xtq/internal/xerr"
)

var sampleRecords = []Record{
	{Kind: KindPut, Name: "parts", Version: 1, Doc: []byte("<db><part/></db>")},
	{Kind: KindUpdate, Name: "parts", Version: 2, Base: 1,
		Query: `transform copy $a := doc("parts") modify do delete $a//price return $a`},
	{Kind: KindRemove, Name: "parts", Version: 3},
	{Kind: KindCheckpoint, Seq: 7, Version: 2},
	{Kind: KindPut, Name: "", Version: 9, Doc: nil}, // degenerate fields still frame
}

func encodeAll(recs []Record) []byte {
	var buf []byte
	for i := range recs {
		buf = AppendRecord(buf, &recs[i])
	}
	return buf
}

func kindOf(t *testing.T, err error) xerr.Kind {
	t.Helper()
	var xe *xerr.Error
	if !errors.As(err, &xe) {
		t.Fatalf("error %v is not *xerr.Error", err)
	}
	return xe.Kind
}

func TestRecordRoundTrip(t *testing.T) {
	buf := encodeAll(sampleRecords)
	rest := buf
	for i := range sampleRecords {
		rec, n, err := DecodeRecord(rest, "t:0")
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		want := sampleRecords[i]
		if want.Doc == nil {
			want.Doc = []byte{}
		}
		if rec.Doc == nil {
			rec.Doc = []byte{}
		}
		if !reflect.DeepEqual(rec, want) {
			t.Fatalf("record %d: decoded %+v, want %+v", i, rec, want)
		}
		// Canonical: re-encoding reproduces the consumed bytes.
		if re := AppendRecord(nil, &rec); !bytes.Equal(re, rest[:n]) {
			t.Fatalf("record %d: re-encoding diverges", i)
		}
		rest = rest[n:]
	}
	if len(rest) != 0 {
		t.Fatalf("%d undecoded bytes", len(rest))
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	one := AppendRecord(nil, &sampleRecords[1])

	t.Run("bitflips", func(t *testing.T) {
		for i := 0; i < len(one); i++ {
			mut := append([]byte(nil), one...)
			mut[i] ^= 0x40
			_, _, err := DecodeRecord(mut, "t:0")
			if err == nil {
				// A flip in the length field can make the frame "short"
				// instead of corrupt only if it grows the length; both
				// shapes must be non-nil errors, never silent success.
				t.Fatalf("bit flip at %d decoded successfully", i)
			}
		}
	})
	t.Run("truncations", func(t *testing.T) {
		for i := 1; i < len(one); i++ {
			_, _, err := DecodeRecord(one[:len(one)-i], "t:0")
			if err == nil {
				t.Fatalf("truncation by %d decoded successfully", i)
			}
		}
	})
	t.Run("kind", func(t *testing.T) {
		bad := sampleRecords[0]
		bad.Kind = 99
		b := AppendRecord(nil, &bad)
		_, _, err := DecodeRecord(b, "t:0")
		if kindOf(t, err) != xerr.Corrupt {
			t.Fatalf("unknown kind produced %v, want corrupt", err)
		}
	})
}

func appendAll(t *testing.T, l *Log, recs []Record) {
	t.Helper()
	for i := range recs {
		if _, err := l.Append(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
}

func replayAll(t *testing.T, dir string, o Options) []Record {
	t.Helper()
	l, err := Open(dir, o)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var got []Record
	if err := l.Replay(0, func(r Record, _ Pos) error {
		got = append(got, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return got
}

func sameRecords(a, b []Record) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		x, y := a[i], b[i]
		if len(x.Doc) == 0 {
			x.Doc = nil
		}
		if len(y.Doc) == 0 {
			y.Doc = nil
		}
		if !reflect.DeepEqual(x, y) {
			return false
		}
	}
	return true
}

func TestLogAppendReplay(t *testing.T) {
	for _, policy := range []FsyncPolicy{FsyncAlways, FsyncInterval, FsyncNone} {
		t.Run(policy.String(), func(t *testing.T) {
			dir := t.TempDir()
			l, err := Open(dir, Options{Fsync: policy})
			if err != nil {
				t.Fatal(err)
			}
			appendAll(t, l, sampleRecords)
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			got := replayAll(t, dir, Options{Fsync: policy})
			if !sameRecords(got, sampleRecords) {
				t.Fatalf("replay returned %d records, want %d matching", len(got), len(sampleRecords))
			}
		})
	}
}

func TestLogRotationAndRemoveThrough(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments: every append rotates.
	l, err := Open(dir, Options{Fsync: FsyncNone, SegmentBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, sampleRecords)
	if segs := l.Segments(); len(segs) < len(sampleRecords) {
		t.Fatalf("expected ≥%d segments, got %v", len(sampleRecords), segs)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got := replayAll(t, dir, Options{})
	if !sameRecords(got, sampleRecords) {
		t.Fatal("multi-segment replay diverges")
	}
	// Reopen (the directory lock is released by Close) to compact.
	if l, err = Open(dir, Options{Fsync: FsyncNone, SegmentBytes: 1}); err != nil {
		t.Fatal(err)
	}

	frozen, err := l.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.RemoveThrough(frozen); err != nil {
		t.Fatal(err)
	}
	if segs := l.Segments(); len(segs) != 1 {
		t.Fatalf("RemoveThrough left %v", segs)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Fsync: FsyncNone})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, sampleRecords[:3])
	l.Close()

	seg := filepath.Join(dir, segmentName(1))
	whole, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Cut the last record in half: the classic crash-mid-append tail.
	if err := os.WriteFile(seg, whole[:len(whole)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	got := replayAll(t, dir, Options{})
	if !sameRecords(got, sampleRecords[:2]) {
		t.Fatalf("torn tail recovery returned %d records, want 2", len(got))
	}
	// And the file was truncated to the valid prefix, so new appends
	// extend a clean log.
	l2, err := Open(dir, Options{Fsync: FsyncNone})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l2, sampleRecords[2:3])
	l2.Close()
	got = replayAll(t, dir, Options{})
	if !sameRecords(got, sampleRecords[:3]) {
		t.Fatal("append after torn-tail truncation diverges")
	}
}

func TestFrozenSegmentCorruptionIsTyped(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Fsync: FsyncNone, SegmentBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, sampleRecords[:3])
	l.Close()

	// Flip a byte in the middle of segment 2 — a frozen, fsynced file:
	// that is bit rot, not a torn tail, and recovery must refuse.
	seg := filepath.Join(dir, segmentName(2))
	b, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0xff
	if err := os.WriteFile(seg, b, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Open(dir, Options{})
	if err == nil {
		t.Fatal("Open accepted a corrupt frozen segment")
	}
	var xe *xerr.Error
	if !errors.As(err, &xe) || xe.Kind != xerr.Corrupt {
		t.Fatalf("corruption surfaced as %v, want kind corrupt", err)
	}
	if xe.Pos == "" {
		t.Fatal("corrupt error carries no segment/offset position")
	}
}

func TestGroupCommitConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	const (
		writers = 8
		each    = 25
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				rec := Record{Kind: KindRemove, Name: "doc", Version: uint64(w*each + i + 1)}
				if _, err := l.Append(&rec); err != nil {
					panic(err)
				}
			}
		}(w)
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got := replayAll(t, dir, Options{})
	if len(got) != writers*each {
		t.Fatalf("replayed %d records, want %d", len(got), writers*each)
	}
	seen := make(map[uint64]bool)
	for _, r := range got {
		if seen[r.Version] {
			t.Fatalf("version %d duplicated", r.Version)
		}
		seen[r.Version] = true
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	if ck, err := ReadLatestCheckpoint(dir); err != nil || ck != nil {
		t.Fatalf("empty dir: ck=%v err=%v", ck, err)
	}
	docs := []CheckpointDoc{
		{Name: "a", Version: 3, XML: []byte("<a/>")},
		{Name: "b", Version: 17, XML: []byte("<b><c>x</c></b>")},
	}
	if _, err := WriteCheckpoint(dir, 4, docs); err != nil {
		t.Fatal(err)
	}
	if _, err := WriteCheckpoint(dir, 9, docs[:1]); err != nil {
		t.Fatal(err)
	}
	ck, err := ReadLatestCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Seq != 9 || len(ck.Docs) != 1 || ck.Docs[0].Name != "a" || string(ck.Docs[0].XML) != "<a/>" {
		t.Fatalf("latest checkpoint = %+v", ck)
	}
	if err := RemoveCheckpointsBelow(dir, 9); err != nil {
		t.Fatal(err)
	}
	ents, _ := os.ReadDir(dir)
	if len(ents) != 1 {
		t.Fatalf("compaction left %d files", len(ents))
	}

	// A truncated checkpoint (torn tails are impossible behind an atomic
	// rename, so this is corruption) must be a typed error.
	path := filepath.Join(dir, checkpointName(9))
	b, _ := os.ReadFile(path)
	os.WriteFile(path, b[:len(b)-3], 0o644)
	if _, err := ReadLatestCheckpoint(dir); kindOf(t, err) != xerr.Corrupt {
		t.Fatalf("truncated checkpoint read as %v, want corrupt", err)
	}
}

// TestActiveTailPointInTime pins the active segment's recovery
// contract: damage anywhere in the tail truncates to the prefix before
// it — point-in-time recovery. Group commit allows several
// written-but-unsynced records at once and page writeback is unordered,
// so after an OS crash a garbled frame followed by intact ones is a
// legitimate state of the unacknowledged suffix under every policy;
// refusing it would strand normal crashes. (Frozen segments stay
// strict: see TestFrozenSegmentCorruptionIsTyped.)
func TestActiveTailPointInTime(t *testing.T) {
	for _, policy := range []FsyncPolicy{FsyncAlways, FsyncNone} {
		t.Run("garbled mid-tail "+policy.String(), func(t *testing.T) {
			dir := t.TempDir()
			l, err := Open(dir, Options{Fsync: policy})
			if err != nil {
				t.Fatal(err)
			}
			appendAll(t, l, sampleRecords[:3])
			l.Close()
			// Garble the middle record, leaving the last one intact.
			seg := filepath.Join(dir, segmentName(1))
			b, err := os.ReadFile(seg)
			if err != nil {
				t.Fatal(err)
			}
			first := AppendRecord(nil, &sampleRecords[0])
			b[len(first)+10] ^= 0xff
			if err := os.WriteFile(seg, b, 0o644); err != nil {
				t.Fatal(err)
			}
			got := replayAll(t, dir, Options{Fsync: policy})
			if !sameRecords(got, sampleRecords[:1]) {
				t.Fatalf("point-in-time recovery returned %d records, want 1", len(got))
			}
		})
	}
	t.Run("garbled final frame", func(t *testing.T) {
		dir := t.TempDir()
		l, err := Open(dir, Options{Fsync: FsyncAlways})
		if err != nil {
			t.Fatal(err)
		}
		appendAll(t, l, sampleRecords[:2])
		l.Close()
		seg := filepath.Join(dir, segmentName(1))
		b, _ := os.ReadFile(seg)
		b[len(b)-3] ^= 0xff
		os.WriteFile(seg, b, 0o644)
		got := replayAll(t, dir, Options{Fsync: FsyncAlways})
		if !sameRecords(got, sampleRecords[:1]) {
			t.Fatalf("torn final frame: recovered %d records, want 1", len(got))
		}
	})
}

// TestActiveSegmentSeedsAboveCheckpoint pins the segment-numbering
// floor: a directory holding a checkpoint but no segments past its cut
// (segment files lost or cleaned up) must not restart numbering below
// the cut, or the next recovery's Replay(afterSeq) would silently skip
// every new append.
func TestActiveSegmentSeedsAboveCheckpoint(t *testing.T) {
	dir := t.TempDir()
	if _, err := WriteCheckpoint(dir, 5, nil); err != nil {
		t.Fatal(err)
	}
	l, err := Open(dir, Options{Fsync: FsyncNone})
	if err != nil {
		t.Fatal(err)
	}
	if segs := l.Segments(); len(segs) != 1 || segs[0] != 6 {
		t.Fatalf("active segment = %v, want [6]", segs)
	}
	appendAll(t, l, sampleRecords[:1])
	l.Close()

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	var got []Record
	if err := l2.Replay(5, func(r Record, _ Pos) error {
		got = append(got, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !sameRecords(got, sampleRecords[:1]) {
		t.Fatalf("post-checkpoint append not visible above the cut: %d records", len(got))
	}
}

// TestCheckpointCorruptionNamesCheckpointFile pins the corrupt-error
// position of a damaged checkpoint: it must name the checkpoint file,
// not a segment that does not exist.
func TestCheckpointCorruptionNamesCheckpointFile(t *testing.T) {
	dir := t.TempDir()
	if _, err := WriteCheckpoint(dir, 3, []CheckpointDoc{{Name: "a", Version: 1, XML: []byte("<a/>")}}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, checkpointName(3))
	b, _ := os.ReadFile(path)
	b[len(b)/2] ^= 0xff
	os.WriteFile(path, b, 0o644)
	_, err := ReadLatestCheckpoint(dir)
	var xe *xerr.Error
	if !errors.As(err, &xe) || xe.Kind != xerr.Corrupt {
		t.Fatalf("got %v, want corrupt", err)
	}
	if !strings.Contains(xe.Pos, "ckpt-") {
		t.Fatalf("corrupt position %q does not name the checkpoint file", xe.Pos)
	}
}

// TestCloseIdempotent pins that double Close (with and without the
// interval ticker) neither panics nor re-fails.
func TestCloseIdempotent(t *testing.T) {
	for _, policy := range []FsyncPolicy{FsyncAlways, FsyncInterval} {
		l, err := Open(t.TempDir(), Options{Fsync: policy})
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		if err := l.Close(); err != nil {
			t.Fatalf("second Close under %s: %v", policy, err)
		}
	}
}

// TestCheckpointTombstoneRoundTrip covers the Removed entries the store
// writes for not-yet-collected tombstones.
func TestCheckpointTombstoneRoundTrip(t *testing.T) {
	dir := t.TempDir()
	docs := []CheckpointDoc{
		{Name: "live", Version: 4, XML: []byte("<a/>")},
		{Name: "gone", Version: 9, Removed: true},
	}
	if _, err := WriteCheckpoint(dir, 2, docs); err != nil {
		t.Fatal(err)
	}
	ck, err := ReadLatestCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ck.Docs) != 2 || !ck.Docs[1].Removed || ck.Docs[1].Version != 9 || ck.Docs[1].XML != nil {
		t.Fatalf("round trip = %+v", ck.Docs)
	}
}

// TestDirectoryLock pins single-writer ownership of a log directory:
// two appenders at identical offsets would destroy each other's
// acknowledged records, so the second Open must fail fast, and Close
// must release the lock for a clean handover.
func TestDirectoryLock(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Fsync: FsyncNone})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{Fsync: FsyncNone}); err == nil {
		t.Fatal("second Open of a live log directory succeeded")
	} else if kindOf(t, err) != xerr.IO {
		t.Fatalf("double open = %v, want io error", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{Fsync: FsyncNone})
	if err != nil {
		t.Fatalf("reopen after Close: %v", err)
	}
	l2.Close()
}
