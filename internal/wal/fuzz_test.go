package wal

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"xtq/internal/xerr"
)

// FuzzWALRecord pins the codec's recovery contract: whatever bytes a
// segment holds, decoding must never panic and never silently succeed
// on damaged input — every outcome is a decoded record, a short-frame
// signal, or a typed corrupt error. Valid frames must round-trip
// canonically.
func FuzzWALRecord(f *testing.F) {
	// Seed corpus: a multi-record segment, each record alone, and
	// hand-damaged variants.
	seg := encodeAll(sampleRecords)
	f.Add(seg)
	for i := range sampleRecords {
		f.Add(AppendRecord(nil, &sampleRecords[i]))
	}
	f.Add(seg[:len(seg)-5])   // torn tail
	f.Add([]byte{})           // empty segment
	f.Add([]byte{0, 0, 0, 0}) // short header
	flipped := append([]byte(nil), seg...)
	flipped[len(flipped)/3] ^= 0x20
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		rest := data
		for len(rest) > 0 {
			rec, n, err := DecodeRecord(rest, "fuzz:0")
			if err != nil {
				// Either signal is acceptable; a panic or a silent
				// truncation is not. errShortFrame and corrupt both stop
				// the scan, like recovery would.
				if !errors.Is(err, errShortFrame) && !isCorrupt(err) && !errors.Is(err, io.EOF) {
					t.Fatalf("decode failed with unexpected error type: %v", err)
				}
				return
			}
			if n <= 0 || n > len(rest) {
				t.Fatalf("decode consumed %d of %d bytes", n, len(rest))
			}
			// A frame that decoded must re-encode to exactly the bytes it
			// came from: the encoding is canonical, so recovery can trust
			// byte offsets computed from re-encoding.
			if re := AppendRecord(nil, &rec); !bytes.Equal(re, rest[:n]) {
				t.Fatalf("decoded record re-encodes to %d bytes, consumed %d", len(re), n)
			}
			rest = rest[n:]
		}
	})
}

func isCorrupt(err error) bool {
	var xe *xerr.Error
	return errors.As(err, &xe) && xe.Kind == xerr.Corrupt
}
