package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"

	"xtq/internal/xerr"
)

// segReader decodes frames from one segment file sequentially.
type segReader struct {
	seq    uint64
	f      *os.File
	br     *bufio.Reader
	offset int64 // offset of the next (not yet consumed) frame
	buf    []byte
}

func openSegReader(path string, seq uint64) (*segReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, xerr.Wrap(xerr.IO, err)
	}
	return &segReader{seq: seq, f: f, br: bufio.NewReaderSize(f, 1<<16)}, nil
}

func (r *segReader) close() { r.f.Close() }

// next decodes the next record, returning its starting position. At a
// clean end of file it returns io.EOF. A frame the file ends inside
// returns errShortFrame (the torn-tail signature); a complete but
// invalid frame returns a typed corrupt error carrying the position.
// r.offset only advances past successfully decoded records, so after
// any failure it marks the end of the valid prefix.
func (r *segReader) next() (Record, Pos, error) {
	start := Pos{Seq: r.seq, Offset: r.offset}
	var hdr [frameHeader]byte
	got, err := io.ReadFull(r.br, hdr[:])
	if err != nil {
		if got == 0 && errors.Is(err, io.EOF) {
			return Record{}, start, io.EOF
		}
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return Record{}, start, errShortFrame
		}
		return Record{}, start, xerr.Wrap(xerr.IO, err)
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == 0 || n > MaxRecordBytes {
		return Record{}, start, corrupt(start.String(), "impossible payload length %d", n)
	}
	if cap(r.buf) < int(n) {
		r.buf = make([]byte, n)
	}
	payload := r.buf[:n]
	if _, err := io.ReadFull(r.br, payload); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return Record{}, start, errShortFrame
		}
		return Record{}, start, xerr.Wrap(xerr.IO, err)
	}
	if got, want := crc32.Checksum(payload, crcTable), binary.LittleEndian.Uint32(hdr[4:]); got != want {
		return Record{}, start, corrupt(start.String(), "checksum mismatch (stored %08x, computed %08x)", want, got)
	}
	rec, err := decodePayload(payload, start.String())
	if err != nil {
		return Record{}, start, err
	}
	r.offset += frameHeader + int64(n)
	return rec, start, nil
}

// validateSegment scans one segment end to end. For the last (active)
// segment it returns the byte offset of the valid prefix — everything
// from the first torn or garbled frame on is discarded by the caller:
// point-in-time recovery. That is the strongest sound contract for the
// active tail, because group commit allows several written-but-unsynced
// records at once and page writeback is unordered, so after an OS crash
// a garbled frame followed by intact ones is a legitimate state of the
// *unacknowledged* suffix under every fsync policy — indistinguishable,
// by construction, from bit rot there. Reliable corruption detection is
// the frozen segments' job: rotation fsyncs and closes them, so any
// invalid frame in a non-final segment is real damage and surfaces as a
// typed error naming the segment and offset.
func validateSegment(path string, seq uint64, last bool) (validThrough int64, err error) {
	r, err := openSegReader(path, seq)
	if err != nil {
		return 0, err
	}
	defer r.close()
	for {
		_, pos, err := r.next()
		if err == nil {
			continue
		}
		if errors.Is(err, io.EOF) {
			return r.offset, nil
		}
		if last && recoverableTail(err) {
			// Crash mid-append: the log continues from the last whole
			// record before the damage.
			return r.offset, nil
		}
		if errors.Is(err, errShortFrame) {
			return r.offset, corrupt(pos.String(), "frozen segment ends mid-frame")
		}
		return r.offset, err
	}
}

// recoverableTail reports whether a decode failure in the active
// segment is the expected signature of a crash mid-append — a short or
// garbled final frame — rather than an I/O failure recovery should
// surface. Both framing violations and checksum mismatches qualify:
// with buffered writes there is no ordering guarantee within the torn
// frame, so its bytes can be arbitrary.
func recoverableTail(err error) bool {
	if errors.Is(err, errShortFrame) {
		return true
	}
	var xe *xerr.Error
	return errors.As(err, &xe) && xe.Kind == xerr.Corrupt
}

// Replay streams every record in segments with sequence > afterSeq, in
// log order, to fn along with its position. It reads the files as they
// are on disk; call it after Open (which truncated any torn tail) and
// before the first Append. A non-nil error from fn aborts the replay
// and is returned as-is.
func (l *Log) Replay(afterSeq uint64, fn func(Record, Pos) error) error {
	l.mu.Lock()
	segs := append([]uint64(nil), l.segs...)
	l.mu.Unlock()
	for _, seq := range segs {
		if seq <= afterSeq {
			continue
		}
		if err := replaySegment(filepath.Join(l.dir, segmentName(seq)), seq, fn); err != nil {
			return err
		}
	}
	return nil
}

// replaySegment streams one segment's records to fn. A short tail is
// treated as end of segment: Open already truncated the active
// segment's torn tail, and ReplaySegments scans files that may still
// be growing under a concurrent appender.
func replaySegment(path string, seq uint64, fn func(Record, Pos) error) error {
	r, err := openSegReader(path, seq)
	if err != nil {
		return err
	}
	defer r.close()
	for {
		rec, pos, err := r.next()
		if errors.Is(err, io.EOF) || errors.Is(err, errShortFrame) {
			return nil
		}
		if err != nil {
			return err
		}
		if err := fn(rec, pos); err != nil {
			return err
		}
	}
}

// ReplaySegments streams records from every segment present in dir with
// sequence > afterSeq, without opening a Log — the time-travel
// reconstruction path, which runs while another Log instance is
// appending to the same directory. Short tails end a segment cleanly
// (the active segment may be mid-append); complete-but-garbled frames
// surface as corrupt errors.
func ReplaySegments(dir string, afterSeq uint64, fn func(Record, Pos) error) error {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return xerr.Wrap(xerr.IO, err)
	}
	var segs []uint64
	for _, e := range ents {
		if seq, ok := parseSeq(e.Name(), "seg-", ".wal"); ok && seq > afterSeq {
			segs = append(segs, seq)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	for _, seq := range segs {
		if err := replaySegment(filepath.Join(dir, segmentName(seq)), seq, fn); err != nil {
			return err
		}
	}
	return nil
}
