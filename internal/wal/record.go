// Package wal implements the durability layer of the versioned document
// store: an append-only write-ahead log of *logical* update records.
//
// Because every store commit is already expressed as an XQU update query,
// the log does not need physical page images — a committed update is
// durable as its canonical query text plus the version it was applied
// at, and recovery replays the text through the same engine that
// evaluated it live (the replay-as-evaluation discipline of functional
// XML update semantics). Ingests are logged as full document bytes,
// removals as tombstone markers.
//
// The package has three parts:
//
//   - a binary record codec (this file): length-prefixed,
//     CRC32C-checksummed frames holding put/update/remove/checkpoint
//     records. Decoding never panics; any framing, checksum or field
//     violation surfaces as a typed xerr.Corrupt error.
//   - an append-only segmented log (log.go): numbered segment files with
//     group-commit batching and a configurable fsync policy, plus
//     replay with torn-tail truncation (reader.go).
//   - snapshot checkpoints (checkpoint.go): a checkpoint file captures
//     every live document at a version, is published by atomic rename,
//     and lets the segments it covers be deleted.
//
// The package knows nothing about trees or queries: records are plain
// data, and the store decides what replaying one means.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"xtq/internal/xerr"
)

// Kind discriminates the record types of the log.
type Kind uint8

const (
	// KindPut is a full-document ingest: Name, Version and the serialized
	// document bytes in Doc.
	KindPut Kind = iota + 1
	// KindUpdate is a committed XQU update: Name, the canonical query
	// text in Query, the version it was evaluated against in Base and
	// the version it produced in Version (always Base+1).
	KindUpdate
	// KindRemove is a document removal: Name and the tombstone Version
	// the removal advanced the chain to.
	KindRemove
	// KindCheckpoint is the header of a checkpoint file: Seq is the
	// highest segment sequence the checkpoint covers, Version the number
	// of documents that follow. Checkpoint records never appear in
	// segment files.
	KindCheckpoint
)

// String returns the kind's lower-case name.
func (k Kind) String() string {
	switch k {
	case KindPut:
		return "put"
	case KindUpdate:
		return "update"
	case KindRemove:
		return "remove"
	case KindCheckpoint:
		return "checkpoint"
	default:
		return "invalid"
	}
}

// Record is one logical log entry. Which fields are meaningful depends
// on Kind; see the kind constants.
type Record struct {
	Kind    Kind
	Name    string // document name (empty for checkpoint headers)
	Version uint64 // version the record advanced the document to
	Base    uint64 // update: version the query was evaluated against
	Seq     uint64 // checkpoint: highest covered segment sequence
	Query   string // update: canonical transform-query text
	Doc     []byte // put: serialized document
}

// crcTable is the Castagnoli polynomial, hardware-accelerated on the
// platforms Go supports.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// frameHeader is the fixed prefix of every frame: payload length and
// payload CRC32C, both little-endian uint32.
const frameHeader = 8

// MaxRecordBytes bounds a single record's payload. Frames claiming more
// are rejected as corrupt before any allocation, so a flipped length
// byte cannot make recovery attempt a multi-gigabyte read.
const MaxRecordBytes = 1 << 30

func corrupt(pos, format string, args ...any) *xerr.Error {
	return xerr.New(xerr.Corrupt, pos, "wal: "+format, args...)
}

// AppendRecord encodes r as one frame and appends it to buf, returning
// the extended slice. The layout is
//
//	[4B payload len][4B CRC32C(payload)][payload]
//
// with the payload holding the kind byte followed by uvarint-framed
// fields. The encoding is canonical: decoding an encoded record and
// re-encoding it reproduces the bytes exactly.
func AppendRecord(buf []byte, r *Record) []byte {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0) // header patched below
	buf = append(buf, byte(r.Kind))
	buf = binary.AppendUvarint(buf, r.Version)
	buf = binary.AppendUvarint(buf, uint64(len(r.Name)))
	buf = append(buf, r.Name...)
	switch r.Kind {
	case KindPut:
		buf = binary.AppendUvarint(buf, uint64(len(r.Doc)))
		buf = append(buf, r.Doc...)
	case KindUpdate:
		buf = binary.AppendUvarint(buf, r.Base)
		buf = binary.AppendUvarint(buf, uint64(len(r.Query)))
		buf = append(buf, r.Query...)
	case KindRemove:
		// name and version say it all
	case KindCheckpoint:
		buf = binary.AppendUvarint(buf, r.Seq)
	}
	payload := buf[start+frameHeader:]
	binary.LittleEndian.PutUint32(buf[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[start+4:], crc32.Checksum(payload, crcTable))
	return buf
}

// DecodeRecord decodes the first frame of b into a Record, returning the
// number of bytes consumed. Failures are typed:
//
//   - a b shorter than a complete frame returns errShortFrame (the
//     caller decides whether that is a clean end of log or a torn tail);
//   - a frame whose checksum, kind or field framing is invalid returns
//     an xerr.Corrupt error whose Pos is pos (the caller supplies the
//     "file:offset" position, which this codec cannot know).
//
// DecodeRecord never panics, whatever bytes it is handed — the
// FuzzWALRecord fuzz target pins that.
func DecodeRecord(b []byte, pos string) (Record, int, error) {
	if len(b) < frameHeader {
		return Record{}, 0, errShortFrame
	}
	n := binary.LittleEndian.Uint32(b)
	if n == 0 || n > MaxRecordBytes {
		return Record{}, 0, corrupt(pos, "impossible payload length %d", n)
	}
	if uint64(len(b)) < frameHeader+uint64(n) {
		return Record{}, 0, errShortFrame
	}
	payload := b[frameHeader : frameHeader+int(n)]
	if got, want := crc32.Checksum(payload, crcTable), binary.LittleEndian.Uint32(b[4:]); got != want {
		return Record{}, 0, corrupt(pos, "checksum mismatch (stored %08x, computed %08x)", want, got)
	}
	r, err := decodePayload(payload, pos)
	if err != nil {
		return Record{}, 0, err
	}
	return r, frameHeader + int(n), nil
}

// errShortFrame reports that the buffer ends before the frame does. It
// is an internal sentinel: readers translate it into either a clean EOF
// or a torn-tail position.
var errShortFrame = fmt.Errorf("wal: short frame")

// IsShortFrame reports whether err is DecodeRecord's incomplete-frame
// signal: the buffer ends before the frame does. Streaming readers use
// it to distinguish "wait for more bytes" from corruption.
func IsShortFrame(err error) bool { return errors.Is(err, errShortFrame) }

func decodePayload(p []byte, pos string) (Record, error) {
	var r Record
	if len(p) == 0 {
		return r, corrupt(pos, "empty payload")
	}
	r.Kind = Kind(p[0])
	p = p[1:]
	var err error
	if r.Version, p, err = takeUvarint(p, pos, "version"); err != nil {
		return r, err
	}
	var name []byte
	if name, p, err = takeBytes(p, pos, "name"); err != nil {
		return r, err
	}
	r.Name = string(name)
	switch r.Kind {
	case KindPut:
		var doc []byte
		if doc, p, err = takeBytes(p, pos, "document"); err != nil {
			return r, err
		}
		// Copy: the payload buffer is reused by readers.
		r.Doc = append([]byte(nil), doc...)
	case KindUpdate:
		if r.Base, p, err = takeUvarint(p, pos, "base version"); err != nil {
			return r, err
		}
		var q []byte
		if q, p, err = takeBytes(p, pos, "query"); err != nil {
			return r, err
		}
		r.Query = string(q)
	case KindRemove:
	case KindCheckpoint:
		if r.Seq, p, err = takeUvarint(p, pos, "sequence"); err != nil {
			return r, err
		}
	default:
		return r, corrupt(pos, "unknown record kind %d", byte(r.Kind))
	}
	if len(p) != 0 {
		return r, corrupt(pos, "%d trailing payload bytes after %s record", len(p), r.Kind)
	}
	return r, nil
}

func takeUvarint(p []byte, pos, field string) (uint64, []byte, error) {
	v, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, nil, corrupt(pos, "truncated %s", field)
	}
	// Reject non-minimal encodings: the codec is canonical, so a decoded
	// record always re-encodes to the exact bytes it came from (replay
	// arithmetic and the fuzz round-trip property rely on that).
	if n > 1 && p[n-1] == 0 {
		return 0, nil, corrupt(pos, "non-canonical %s encoding", field)
	}
	return v, p[n:], nil
}

func takeBytes(p []byte, pos, field string) ([]byte, []byte, error) {
	n, p, err := takeUvarint(p, pos, field+" length")
	if err != nil {
		return nil, nil, err
	}
	if n > uint64(len(p)) {
		return nil, nil, corrupt(pos, "%s length %d exceeds remaining payload %d", field, n, len(p))
	}
	return p[:n], p[n:], nil
}
