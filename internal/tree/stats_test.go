package tree

import (
	"math/rand"
	"testing"
)

// statsAgree compares two statistics records field by field, ignoring
// the fingerprint generation and normalizing PerSym lengths (a commit
// that interns an attribute name grows the symbol table without
// touching element counts, so trailing zeros are equal-by-meaning).
func statsAgree(t *testing.T, tag string, got, want *Stats) {
	t.Helper()
	if got.Nodes != want.Nodes || got.Elems != want.Elems ||
		got.Texts != want.Texts || got.Attrs != want.Attrs ||
		got.TextBytes != want.TextBytes {
		t.Fatalf("%s: totals diverge: got %+v, want %+v", tag, got, want)
	}
	if got.Depth != want.Depth {
		t.Fatalf("%s: depth histogram diverges:\n got %v\nwant %v", tag, got.Depth, want.Depth)
	}
	n := len(got.PerSym)
	if len(want.PerSym) > n {
		n = len(want.PerSym)
	}
	at := func(s []int32, i int) int32 {
		if i < len(s) {
			return s[i]
		}
		return 0
	}
	for i := 0; i < n; i++ {
		if at(got.PerSym, i) != at(want.PerSym, i) {
			t.Fatalf("%s: PerSym[%d] = %d, want %d", tag, i, at(got.PerSym, i), at(want.PerSym, i))
		}
	}
}

func TestFreezeStats(t *testing.T) {
	root, ix, _ := Freeze(buildTestDoc(), nil)
	s := ix.Stats()
	if s == nil {
		t.Fatal("sealed snapshot carries no statistics")
	}
	if s.Nodes != root.Size() {
		t.Fatalf("Nodes = %d, want %d", s.Nodes, root.Size())
	}
	statsAgree(t, "freeze", s, RecountStats(ix))
	if int(s.MaxDepth())+1 != root.Depth() {
		t.Fatalf("MaxDepth = %d, want %d", s.MaxDepth(), root.Depth()-1)
	}
	// Per-label counts resolve through the symbol table.
	if got := s.Count(ix.Syms.Lookup("part")); got != 2 {
		t.Fatalf("Count(part) = %d, want 2", got)
	}
	if got := s.Count(ix.Syms.Lookup("nosuchlabel")); got != 0 {
		t.Fatalf("Count(nosuchlabel) = %d, want 0", got)
	}
	// The record is cached: same pointer, same fingerprint.
	if ix.Stats() != s {
		t.Fatal("Stats not cached")
	}
}

func TestStatsLazyOnPlainIndex(t *testing.T) {
	doc := buildTestDoc()
	ix := EnsureIndex(doc)
	s := ix.Stats()
	statsAgree(t, "plain", s, RecountStats(ix))
	if ix.Stats() != s {
		t.Fatal("Stats not cached on plain index")
	}
}

// TestPathCopyStatsOracle drives a long random update sequence through
// PathCopy and checks after every commit that the O(delta) incremental
// statistics maintenance agrees with a from-scratch recount, and that
// the fingerprint changed.
func TestPathCopyStatsOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	doc := Generate(rng, DefaultGenOptions())
	root, ix, _ := Freeze(doc, nil)
	statsAgree(t, "initial", ix.Stats(), RecountStats(ix))

	collect := func(n *Node) []*Node {
		var all []*Node
		stack := []*Node{n}
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			all = append(all, x)
			stack = append(stack, x.Children...)
		}
		return all
	}

	commits := 0
	for i := 0; i < 80; i++ {
		all := collect(root)
		target := all[rng.Intn(len(all))]
		if target == root {
			continue
		}
		var out *Node
		var hit bool
		switch rng.Intn(4) {
		case 0: // rename (elements only)
			if target.Kind != Element {
				continue
			}
			out = renameOut(t, root, target, "r"+string(rune('a'+rng.Intn(26))))
			hit = true
		case 1: // delete
			out, hit = rebuild(root, target, func(*Node) *Node { return nil })
		case 2: // insert a small fresh subtree as last child
			if target.Kind == Text {
				continue
			}
			out, hit = rebuild(root, target, func(n *Node) *Node {
				cp := shallowCopy(n)
				cp.Children = make([]*Node, len(n.Children), len(n.Children)+1)
				copy(cp.Children, n.Children)
				cp.Children = append(cp.Children, NewElement("ins", NewText("v")))
				return cp
			})
		case 3: // replace with a fresh subtree carrying an attribute
			out, hit = rebuild(root, target, func(*Node) *Node {
				el := NewElement("repl", NewText("xyz"))
				el.Attrs = []Attr{{Name: "k", Value: "v"}}
				return el
			})
		}
		if !hit {
			continue
		}
		prevGen := ix.Stats().Gen
		var newRoot *Node
		newRoot, ix, _ = PathCopy(out, ix)
		commits++
		s := ix.Stats()
		if s == nil {
			t.Fatalf("commit %d: no statistics after PathCopy", i)
		}
		statsAgree(t, "commit", s, RecountStats(ix))
		if s.Nodes != newRoot.Size() {
			t.Fatalf("commit %d: Nodes %d != Size %d", i, s.Nodes, newRoot.Size())
		}
		if s.Gen == prevGen {
			t.Fatalf("commit %d: fingerprint did not change", i)
		}
		root = newRoot
	}
	if commits < 20 {
		t.Fatalf("only %d commits exercised", commits)
	}
}
