package tree

import (
	"errors"
	"fmt"
)

// Walk visits every node of the subtree rooted at n in document order,
// calling fn with the node and its depth (n has depth 0). If fn returns
// false the node's subtree is skipped — the pruning used by the NFA-guided
// evaluators.
func Walk(n *Node, fn func(n *Node, depth int) bool) {
	walk(n, 0, fn)
}

func walk(n *Node, depth int, fn func(*Node, int) bool) {
	if !fn(n, depth) {
		return
	}
	for _, c := range n.Children {
		walk(c, depth+1, fn)
	}
}

// Descendants returns all element descendants of n (excluding n itself) in
// document order.
func Descendants(n *Node) []*Node {
	var out []*Node
	for _, c := range n.Children {
		Walk(c, func(m *Node, _ int) bool {
			if m.Kind == Element {
				out = append(out, m)
			}
			return true
		})
	}
	return out
}

// Validate checks the structural invariants of the model and returns an
// error describing the first violation:
//
//   - a document node has at most one element child and no text children,
//   - element nodes have non-empty labels,
//   - text nodes are leaves without attributes,
//   - attribute names are non-empty and unique within an element.
func Validate(n *Node) error {
	return validate(n, true)
}

func validate(n *Node, top bool) error {
	switch n.Kind {
	case Document:
		if !top {
			return errors.New("tree: document node below the top level")
		}
		elems := 0
		for _, c := range n.Children {
			if c.Kind == Text {
				return errors.New("tree: document node with text child")
			}
			if c.Kind == Element {
				elems++
			}
			if err := validate(c, false); err != nil {
				return err
			}
		}
		if elems > 1 {
			return fmt.Errorf("tree: document node with %d root elements", elems)
		}
		return nil
	case Element:
		if n.Label == "" {
			return errors.New("tree: element with empty label")
		}
		seen := make(map[string]struct{}, len(n.Attrs))
		for _, a := range n.Attrs {
			if a.Name == "" {
				return fmt.Errorf("tree: element <%s> with empty attribute name", n.Label)
			}
			if _, dup := seen[a.Name]; dup {
				return fmt.Errorf("tree: element <%s> with duplicate attribute %q", n.Label, a.Name)
			}
			seen[a.Name] = struct{}{}
		}
		for _, c := range n.Children {
			if err := validate(c, false); err != nil {
				return err
			}
		}
		return nil
	case Text:
		if len(n.Children) > 0 {
			return errors.New("tree: text node with children")
		}
		if len(n.Attrs) > 0 {
			return errors.New("tree: text node with attributes")
		}
		return nil
	default:
		return fmt.Errorf("tree: invalid node kind %d", n.Kind)
	}
}

// CountLabel returns the number of elements labelled label in the subtree.
func CountLabel(n *Node, label string) int {
	total := 0
	Walk(n, func(m *Node, _ int) bool {
		if m.Kind == Element && m.Label == label {
			total++
		}
		return true
	})
	return total
}
