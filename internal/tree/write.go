package tree

import (
	"bufio"
	"bytes"
	"io"
	"strings"
)

// Open serializes the subtree rooted at n and returns it as a reader,
// making *Node satisfy the facade's Source interface: an in-memory tree
// can feed the streaming evaluator (which parses its source twice) just
// like a file or byte slice. Each call serializes afresh, so the reads
// are independent as Source requires.
func (n *Node) Open() (io.ReadCloser, error) {
	var buf bytes.Buffer
	if err := n.WriteXML(&buf); err != nil {
		return nil, err
	}
	return io.NopCloser(&buf), nil
}

// escapeText writes s with the XML character-data escapes applied.
func escapeText(w *bufio.Writer, s string) {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '&':
			w.WriteString("&amp;")
		case '<':
			w.WriteString("&lt;")
		case '>':
			w.WriteString("&gt;")
		default:
			w.WriteByte(s[i])
		}
	}
}

// escapeAttr writes s escaped for use inside a double-quoted attribute.
func escapeAttr(w *bufio.Writer, s string) {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '&':
			w.WriteString("&amp;")
		case '<':
			w.WriteString("&lt;")
		case '"':
			w.WriteString("&quot;")
		default:
			w.WriteByte(s[i])
		}
	}
}

// WriteXML serializes the subtree rooted at n to w as XML. Text is escaped;
// no whitespace is introduced, so parsing the output yields a tree Equal to
// n (see sax.Parse).
//
// Index.WriteXML serializes sealed documents from the column store and
// must stay byte-identical to this pointer walk — FuzzSoARoundTrip and
// the persist tests pin the equivalence, so any format change here must
// land in writeOrd (soa.go) too.
func (n *Node) WriteXML(w io.Writer) error {
	bw := bufio.NewWriter(w)
	writeNode(bw, n)
	return bw.Flush()
}

func writeNode(w *bufio.Writer, n *Node) {
	switch n.Kind {
	case Document:
		for _, c := range n.Children {
			writeNode(w, c)
		}
	case Text:
		escapeText(w, n.Data)
	case Element:
		w.WriteByte('<')
		w.WriteString(n.Label)
		for _, a := range n.Attrs {
			w.WriteByte(' ')
			w.WriteString(a.Name)
			w.WriteString(`="`)
			escapeAttr(w, a.Value)
			w.WriteByte('"')
		}
		if len(n.Children) == 0 {
			w.WriteString("/>")
			return
		}
		w.WriteByte('>')
		for _, c := range n.Children {
			writeNode(w, c)
		}
		w.WriteString("</")
		w.WriteString(n.Label)
		w.WriteByte('>')
	}
}

// WriteIndented serializes the subtree rooted at n with two-space
// indentation, for human inspection. Text children are emitted inline with
// their parent when the element has only text children; mixed content is
// emitted unindented to avoid changing its value.
func (n *Node) WriteIndented(w io.Writer) error {
	bw := bufio.NewWriter(w)
	writeIndent(bw, n, 0)
	bw.WriteByte('\n')
	return bw.Flush()
}

func onlyTextChildren(n *Node) bool {
	for _, c := range n.Children {
		if c.Kind != Text {
			return false
		}
	}
	return true
}

func writeIndent(w *bufio.Writer, n *Node, depth int) {
	pad := strings.Repeat("  ", depth)
	switch n.Kind {
	case Document:
		for i, c := range n.Children {
			if i > 0 {
				w.WriteByte('\n')
			}
			writeIndent(w, c, depth)
		}
	case Text:
		w.WriteString(pad)
		escapeText(w, n.Data)
	case Element:
		w.WriteString(pad)
		w.WriteByte('<')
		w.WriteString(n.Label)
		for _, a := range n.Attrs {
			w.WriteByte(' ')
			w.WriteString(a.Name)
			w.WriteString(`="`)
			escapeAttr(w, a.Value)
			w.WriteByte('"')
		}
		switch {
		case len(n.Children) == 0:
			w.WriteString("/>")
		case onlyTextChildren(n):
			w.WriteByte('>')
			for _, c := range n.Children {
				escapeText(w, c.Data)
			}
			w.WriteString("</")
			w.WriteString(n.Label)
			w.WriteByte('>')
		default:
			w.WriteByte('>')
			for _, c := range n.Children {
				w.WriteByte('\n')
				writeIndent(w, c, depth+1)
			}
			w.WriteByte('\n')
			w.WriteString(pad)
			w.WriteString("</")
			w.WriteString(n.Label)
			w.WriteByte('>')
		}
	}
}

// String returns the compact XML serialization of n.
func (n *Node) String() string {
	var b strings.Builder
	bw := bufio.NewWriter(&b)
	writeNode(bw, n)
	bw.Flush()
	return b.String()
}
