package tree

import "math/rand"

// GenOptions controls Generate, the random-document generator used by
// property-based tests across the repository.
type GenOptions struct {
	MaxDepth    int      // maximum element nesting below the root
	MaxChildren int      // maximum children per element
	Labels      []string // element vocabulary
	Attrs       []string // attribute vocabulary
	Values      []string // text/attribute value vocabulary
	TextProb    float64  // probability that a child slot is a text node
}

// DefaultGenOptions returns the generator configuration used by the test
// suites: a small vocabulary so that random XPath queries have non-trivial
// selectivity.
func DefaultGenOptions() GenOptions {
	return GenOptions{
		MaxDepth:    5,
		MaxChildren: 4,
		Labels:      []string{"a", "b", "c", "d", "part", "supplier", "price"},
		Attrs:       []string{"id", "kind"},
		Values:      []string{"1", "2", "15", "HP", "keyboard", "x"},
		TextProb:    0.3,
	}
}

// Generate returns a random document node driven by rng. The same seed
// yields the same document.
func Generate(rng *rand.Rand, opts GenOptions) *Node {
	root := genElement(rng, opts, opts.MaxDepth)
	return NewDocument(root)
}

func genElement(rng *rand.Rand, opts GenOptions, depth int) *Node {
	e := NewElement(opts.Labels[rng.Intn(len(opts.Labels))])
	if len(opts.Attrs) > 0 && rng.Intn(3) == 0 {
		name := opts.Attrs[rng.Intn(len(opts.Attrs))]
		e.Attrs = append(e.Attrs, Attr{Name: name, Value: opts.Values[rng.Intn(len(opts.Values))]})
	}
	if depth == 0 {
		if rng.Intn(2) == 0 {
			e.Children = append(e.Children, NewText(opts.Values[rng.Intn(len(opts.Values))]))
		}
		return e
	}
	n := rng.Intn(opts.MaxChildren + 1)
	for i := 0; i < n; i++ {
		if rng.Float64() < opts.TextProb {
			e.Children = append(e.Children, NewText(opts.Values[rng.Intn(len(opts.Values))]))
		} else {
			e.Children = append(e.Children, genElement(rng, opts, depth-1))
		}
	}
	return e
}
