package tree

// The traversals in this file are iterative with explicit stacks: they
// run over arbitrary caller-supplied trees (including documents admitted
// by a generous WithMaxDepth), where recursion depth equals document
// depth and a pathological chain would overflow the goroutine stack.

// shallowCopy duplicates one node without children. The copy keeps the
// label symbol as a hint (Index validates it before trusting it) but is
// not a member of any index.
func shallowCopy(n *Node) *Node {
	c := &Node{Kind: n.Kind, Sym: n.Sym, Label: n.Label, Data: n.Data}
	if len(n.Attrs) > 0 {
		c.Attrs = make([]Attr, len(n.Attrs))
		copy(c.Attrs, n.Attrs)
	}
	return c
}

// DeepCopy returns a structurally identical copy of the subtree rooted at n
// sharing no nodes with the original. It is the "copy" half of the
// copy-and-update baseline: a snapshot whose mutation cannot be observed
// through the source tree. The copy is unindexed.
func (n *Node) DeepCopy() *Node {
	if n == nil {
		return nil
	}
	root := shallowCopy(n)
	type frame struct{ src, dst *Node }
	stack := []frame{{n, root}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if len(f.src.Children) == 0 {
			continue
		}
		f.dst.Children = make([]*Node, len(f.src.Children))
		for i, ch := range f.src.Children {
			c := shallowCopy(ch)
			f.dst.Children[i] = c
			if len(ch.Children) > 0 {
				stack = append(stack, frame{ch, c})
			}
		}
	}
	return root
}

// Equal reports whether the subtrees rooted at a and b are structurally
// identical: same kind, label, text data, attribute list (order-sensitive,
// as attribute order is preserved by the parser) and child list. Index
// membership and symbols are representation, not structure, and are
// ignored.
func Equal(a, b *Node) bool {
	type pair struct{ a, b *Node }
	stack := []pair{{a, b}}
	for len(stack) > 0 {
		p := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if p.a == nil || p.b == nil {
			if p.a != p.b {
				return false
			}
			continue
		}
		if p.a.Kind != p.b.Kind || p.a.Label != p.b.Label || p.a.Data != p.b.Data {
			return false
		}
		if len(p.a.Attrs) != len(p.b.Attrs) || len(p.a.Children) != len(p.b.Children) {
			return false
		}
		for i := range p.a.Attrs {
			if p.a.Attrs[i] != p.b.Attrs[i] {
				return false
			}
		}
		for i := range p.a.Children {
			stack = append(stack, pair{p.a.Children[i], p.b.Children[i]})
		}
	}
	return true
}

// SharedNodes returns the number of nodes (pointers) that the subtree
// rooted at result shares with the subtree rooted at source. It is a
// diagnostic for the structural-sharing property of the topDown evaluator:
// subtrees not touched by the embedded update are returned by reference,
// not copied.
func SharedNodes(source, result *Node) int {
	seen := make(map[*Node]struct{})
	stack := []*Node{source}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		seen[n] = struct{}{}
		stack = append(stack, n.Children...)
	}
	shared := 0
	stack = append(stack[:0], result)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if _, ok := seen[n]; ok {
			shared++
		}
		stack = append(stack, n.Children...)
	}
	return shared
}
