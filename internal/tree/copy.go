package tree

// DeepCopy returns a structurally identical copy of the subtree rooted at n
// sharing no nodes with the original. It is the "copy" half of the
// copy-and-update baseline: a snapshot whose mutation cannot be observed
// through the source tree.
func (n *Node) DeepCopy() *Node {
	if n == nil {
		return nil
	}
	c := &Node{Kind: n.Kind, Label: n.Label, Data: n.Data}
	if len(n.Attrs) > 0 {
		c.Attrs = make([]Attr, len(n.Attrs))
		copy(c.Attrs, n.Attrs)
	}
	if len(n.Children) > 0 {
		c.Children = make([]*Node, len(n.Children))
		for i, ch := range n.Children {
			c.Children[i] = ch.DeepCopy()
		}
	}
	return c
}

// Equal reports whether the subtrees rooted at a and b are structurally
// identical: same kind, label, text data, attribute list (order-sensitive,
// as attribute order is preserved by the parser) and child list.
func Equal(a, b *Node) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Kind != b.Kind || a.Label != b.Label || a.Data != b.Data {
		return false
	}
	if len(a.Attrs) != len(b.Attrs) || len(a.Children) != len(b.Children) {
		return false
	}
	for i := range a.Attrs {
		if a.Attrs[i] != b.Attrs[i] {
			return false
		}
	}
	for i := range a.Children {
		if !Equal(a.Children[i], b.Children[i]) {
			return false
		}
	}
	return true
}

// SharedNodes returns the number of nodes (pointers) that the subtree
// rooted at result shares with the subtree rooted at source. It is a
// diagnostic for the structural-sharing property of the topDown evaluator:
// subtrees not touched by the embedded update are returned by reference,
// not copied.
func SharedNodes(source, result *Node) int {
	seen := make(map[*Node]struct{})
	var index func(*Node)
	index = func(n *Node) {
		seen[n] = struct{}{}
		for _, c := range n.Children {
			index(c)
		}
	}
	index(source)
	shared := 0
	var count func(*Node)
	count = func(n *Node) {
		if _, ok := seen[n]; ok {
			shared++
		}
		for _, c := range n.Children {
			count(c)
		}
	}
	count(result)
	return shared
}
