package tree

import "sync/atomic"

// This file holds the statistics half of the planning subsystem: every
// sealed snapshot carries per-document statistics — node counts per
// label symbol, a depth histogram, totals — collected in one pass over
// the structure-of-arrays columns when the snapshot is built and
// maintained in O(|delta|) across PathCopy commits, so the cost-based
// method planner (internal/plan) can estimate per-(query, document)
// evaluation cost without ever walking the tree.

// DepthBuckets is the number of buckets of the depth histogram; the
// last bucket collects every depth >= DepthBuckets-1. 32 covers real
// documents (XMark nests ~12 deep) while keeping Stats cheap to copy
// per commit.
const DepthBuckets = 32

// depthBucket clamps a node depth into the histogram.
func depthBucket(d int32) int32 {
	if d >= DepthBuckets {
		return DepthBuckets - 1
	}
	return d
}

// Stats is the statistics record of one document version. A Stats value
// is immutable once published on an Index (commits derive the next
// version's record from it), so readers share it without locks.
type Stats struct {
	// Nodes counts every live node, including the document node.
	Nodes int
	// Elems, Texts count live nodes by kind.
	Elems int
	Texts int
	// Attrs counts attributes across all elements.
	Attrs int
	// TextBytes sums the character-data lengths of text nodes.
	TextBytes int64
	// Depth is the histogram of node depths (document node at depth 0);
	// the last bucket aggregates depths >= DepthBuckets-1.
	Depth [DepthBuckets]int32
	// PerSym counts live element nodes per label symbol, indexed by
	// SymID against the snapshot's table. Elements whose label the
	// table has never interned (foreign sealed subtrees) are counted in
	// Elems but not here.
	PerSym []int32
	// Gen is the fingerprint of this record: a process-unique
	// generation assigned when the record is built, so (query, Gen)
	// keys a planner decision that is valid exactly as long as the
	// statistics are.
	Gen uint64
}

// statsGen hands out fingerprint generations.
var statsGen atomic.Uint64

// Count returns the live element count of sym, 0 for NoSym or symbols
// interned after the record was built.
func (s *Stats) Count(sym SymID) int {
	if sym <= NoSym || int(sym) >= len(s.PerSym) {
		return 0
	}
	return int(s.PerSym[sym])
}

// MaxDepth returns the deepest non-empty histogram bucket — the
// document's height, clamped at DepthBuckets-1.
func (s *Stats) MaxDepth() int32 {
	for i := int32(DepthBuckets - 1); i >= 0; i-- {
		if s.Depth[i] > 0 {
			return i
		}
	}
	return 0
}

// clone derives a private copy for incremental maintenance, with a
// fresh fingerprint and the per-symbol slice grown to symLen.
func (s *Stats) clone(symLen int) *Stats {
	c := *s
	c.PerSym = make([]int32, max(symLen, len(s.PerSym)))
	copy(c.PerSym, s.PerSym)
	c.Gen = statsGen.Add(1)
	return &c
}

// bump adjusts the per-symbol count of sym, growing the slice when a
// commit interned new labels.
func (s *Stats) bump(sym SymID, delta int32) {
	if sym <= NoSym {
		return
	}
	for int(sym) >= len(s.PerSym) {
		s.PerSym = append(s.PerSym, 0)
	}
	s.PerSym[sym] += delta
}

// add accounts one node entering the document at the given depth. The
// node's Sym must already be valid in the target table.
func (s *Stats) add(n *Node, depth int32) {
	s.Nodes++
	s.Depth[depthBucket(depth)]++
	s.Attrs += len(n.Attrs)
	switch n.Kind {
	case Element:
		s.Elems++
		s.bump(n.Sym, 1)
	case Text:
		s.Texts++
		s.TextBytes += int64(len(n.Data))
	}
}

// subOrd accounts one node (by ordinal, through the previous version's
// columns) leaving the document at the given depth.
func (s *Stats) subOrd(c *Cols, ord, depth int32) {
	s.Nodes--
	s.Depth[depthBucket(depth)]--
	s.Attrs -= len(c.attrsAt(ord))
	switch c.kindAt(ord) {
	case Element:
		s.Elems--
		s.bump(c.symAt(ord), -1)
	case Text:
		s.Texts--
		s.TextBytes -= int64(len(c.textAt(ord)))
	}
}

// Stats returns the document's statistics, computing and caching them
// on first use. Sealed snapshots built by Seal, Freeze or PathCopy
// carry them eagerly; plain evaluation indexes pay one walk on first
// request and serve the cached record afterwards.
func (ix *Index) Stats() *Stats {
	if s := ix.stats.Load(); s != nil {
		return s
	}
	s := computeStats(ix)
	if ix.stats.CompareAndSwap(nil, s) {
		return s
	}
	return ix.stats.Load()
}

// computeStats builds a fresh record: one pass over the sym/kind/parent
// columns when the snapshot is dense columnar, a pointer walk otherwise.
func computeStats(ix *Index) *Stats {
	if ix.cols != nil && ix.Live == ix.NumNodes {
		return colsStats(ix)
	}
	return recountStats(ix)
}

// colsStats scans the columns of a dense (freshly frozen or sealed)
// snapshot. Ordinals are a preorder numbering there, so every parent
// ordinal precedes its children and one forward pass computes depths.
func colsStats(ix *Index) *Stats {
	s := &Stats{PerSym: make([]int32, ix.Syms.Len()), Gen: statsGen.Add(1)}
	c := ix.cols
	width := int32(ix.NumNodes)
	depth := make([]int32, width)
	for ord := int32(0); ord < width; ord++ {
		d := int32(0)
		if p := c.parentAt(ord); p != NilOrd {
			d = depth[p] + 1
		}
		depth[ord] = d
		s.Nodes++
		s.Depth[depthBucket(d)]++
		s.Attrs += len(c.attrsAt(ord))
		switch c.kindAt(ord) {
		case Element:
			s.Elems++
			s.bump(c.symAt(ord), 1)
		case Text:
			s.Texts++
			s.TextBytes += int64(len(c.textAt(ord)))
		}
	}
	return s
}

// recountStats walks the live tree from the root — the path for plain
// evaluation indexes and for sealed trees containing foreign subtrees,
// and the from-scratch oracle the incremental maintenance is tested
// against.
func recountStats(ix *Index) *Stats {
	s := &Stats{PerSym: make([]int32, ix.Syms.Len()), Gen: statsGen.Add(1)}
	type frame struct {
		n     *Node
		depth int32
	}
	stack := make([]frame, 0, 64)
	stack = append(stack, frame{ix.Root, 0})
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n := f.n
		s.Nodes++
		s.Depth[depthBucket(f.depth)]++
		s.Attrs += len(n.Attrs)
		switch n.Kind {
		case Element:
			s.Elems++
			// SymOf resolves nodes owned by foreign sealed snapshots by
			// name; labels this table never interned count into Elems
			// only.
			s.bump(ix.SymOf(n), 1)
		case Text:
			s.Texts++
			s.TextBytes += int64(len(n.Data))
		}
		for i := len(n.Children) - 1; i >= 0; i-- {
			stack = append(stack, frame{n.Children[i], f.depth + 1})
		}
	}
	return s
}

// RecountStats computes the statistics by a full walk over the live
// tree, bypassing the cached record — the oracle PathCopy's O(delta)
// maintenance is verified against.
func RecountStats(ix *Index) *Stats { return recountStats(ix) }
