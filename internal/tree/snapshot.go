package tree

import "unsafe"

// This file holds the freeze half of the versioned document store's
// snapshot machinery: adopting an arbitrary tree into a fresh, fully
// owned, sealed, columnar snapshot that starts a new version chain.
// Commits against an existing chain take the cheap path instead —
// PathCopy (persist.go) copies only the spine the update touched and
// shares every other chunk with the previous version. Freeze remains
// the Θ(|T|) entry point: first ingestion of a document, adoption of
// trees that share nodes with other sealed snapshots, and the
// compaction fallback that renumbers a chain whose ordinal space has
// grown past twice its live size.

// CopyStats reports the work of one Freeze or PathCopy.
type CopyStats struct {
	// Nodes is the number of nodes copied: every node of the new
	// snapshot for a Freeze, only the new (spine and inserted) nodes
	// for a PathCopy.
	Nodes int
	// Bytes approximates the heap bytes newly retained by the copy: the
	// node structs, attribute and child slices, and the column chunks
	// allocated or copy-on-write-copied for the new version. Label and
	// character-data strings are shared with the source (Go strings are
	// immutable), so they are not counted.
	Bytes int64
	// SharedWithBase counts source nodes reused from the base index by
	// reference — for a commit, how much of the update's result the
	// copy-on-write evaluation kept of the previous snapshot. A Freeze
	// copies those nodes anyway (it only counts them); a PathCopy
	// aliases them.
	SharedWithBase int
	// CopiedChunks and SharedChunks report chunk-level sharing of the
	// structure-of-arrays columns with the previous version: of the new
	// snapshot's chunks, how many this construction allocated or wrote
	// (CopiedChunks) versus aliased untouched from the base
	// (SharedChunks). A Freeze shares nothing; a no-op path copy shares
	// everything.
	CopiedChunks int
	SharedChunks int
}

// nodeBytes is the approximate retained size of one copied node.
const nodeBytes = int64(unsafe.Sizeof(Node{}))

// attrBytes is the approximate retained size of one copied attribute.
const attrBytes = int64(unsafe.Sizeof(Attr{}))

// ptrBytes is the retained size of one child-slice entry.
const ptrBytes = int64(unsafe.Sizeof((*Node)(nil)))

// arena allocates the nodes of one snapshot version in ChunkSize runs,
// so a version's new nodes are contiguous in memory (cache-friendly
// scans) and a node's identity is its slot in a chunk — stable for as
// long as any later version aliases it. The atomic idx field of each
// node is written exactly once, before the snapshot is published.
type arena struct {
	chunks [][]Node
	n      int
}

// alloc copies src's payload (kind, label, data, attributes — never the
// children or the index stamp) into the next arena slot.
func (a *arena) alloc(src *Node) *Node {
	if a.n&chunkMask == 0 {
		a.chunks = append(a.chunks, make([]Node, ChunkSize))
	}
	dst := &a.chunks[len(a.chunks)-1][a.n&chunkMask]
	a.n++
	dst.Kind = src.Kind
	dst.Sym = src.Sym
	dst.Label = src.Label
	dst.Data = src.Data
	if len(src.Attrs) > 0 {
		dst.Attrs = make([]Attr, len(src.Attrs))
		copy(dst.Attrs, src.Attrs)
	}
	return dst
}

// Freeze deep-copies the subtree rooted at src into a fresh, arena-
// backed tree that shares no nodes with any other document, indexing
// and sealing it in the same pass: every copied node is stamped with
// its preorder ordinal, labels and attribute names are interned, the
// structure-of-arrays columns are built, and the resulting index starts
// a new version chain — ready to be published (via an atomic pointer)
// to lock-free readers and to serve as the base of PathCopy commits.
//
// base, when non-nil, is the index of the document src derives from
// (for a compaction, the previous snapshot): its frozen symbol table is
// cloned so symbols stamped on nodes copied from it keep their ids and
// the walk skips the intern lookup for them, and the same pass counts
// how many source nodes base owns (CopyStats.SharedWithBase).
//
// src itself is only read, never written, so it may share subtrees with
// a live sealed snapshot (the intended input is exactly the structurally
// sharing result of evaluating an update over one).
func Freeze(src *Node, base *Index) (*Node, *Index, CopyStats) {
	syms := NewSymbols()
	if base != nil {
		syms = base.Syms.Clone()
	}
	var stats CopyStats
	ix := &Index{Syms: syms, sealed: true, chain: &chainID{}}
	ar := &arena{}
	ord := int32(0)
	stamp := func(n *Node) {
		n.ord = ord
		n.idx.Store(ix)
		ord++
		stats.Nodes++
		stats.Bytes += nodeBytes + int64(len(n.Attrs))*attrBytes
		if n.Kind == Element {
			if !syms.covers(n.Sym, n.Label) {
				n.Sym = syms.Intern(n.Label)
			}
			for i := range n.Attrs {
				syms.Intern(n.Attrs[i].Name)
			}
		}
	}

	root := ar.alloc(src)
	// Iterative walk stamping each copy as it is popped with children
	// pushed in reverse, so ordinals are assigned in strict preorder
	// (document order) — the evaluators' ordinal-based anchoring and
	// dedup rely on that order, not just on density.
	type frame struct{ src, dst *Node }
	stack := []frame{{src, root}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		stamp(f.dst)
		if base != nil && base.Contains(f.src) {
			stats.SharedWithBase++
		}
		if len(f.src.Children) == 0 {
			continue
		}
		f.dst.Children = make([]*Node, len(f.src.Children))
		stats.Bytes += int64(len(f.src.Children)) * ptrBytes
		for i := len(f.src.Children) - 1; i >= 0; i-- {
			ch := f.src.Children[i]
			c := ar.alloc(ch)
			f.dst.Children[i] = c
			stack = append(stack, frame{ch, c})
		}
	}
	ix.Root = root
	ix.NumNodes = int(ord)
	ix.Live = int(ord)
	ix.cols = buildCols(ix)
	if ix.cols != nil {
		stats.CopiedChunks = ix.cols.NumChunks()
		stats.Bytes += int64(stats.CopiedChunks) * colsChunkBytes
	}
	ix.stats.Store(computeStats(ix))
	return root, ix, stats
}

// SealedOwner scans the subtree rooted at doc and returns the sealed
// index owning the first node it finds that belongs to one, or nil when
// no node of the tree is part of a sealed snapshot. In-place mutation
// (core's Update.Apply) uses it to fail fast instead of corrupting a
// snapshot that live readers are evaluating against.
func SealedOwner(doc *Node) *Index {
	stack := make([]*Node, 0, 64)
	stack = append(stack, doc)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if ix := n.idx.Load(); ix != nil && ix.sealed {
			return ix
		}
		stack = append(stack, n.Children...)
	}
	return nil
}
