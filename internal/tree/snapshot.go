package tree

import "unsafe"

// This file holds the copy-on-write helpers behind the versioned
// document store: committing an update evaluates the transform over the
// current snapshot (structural sharing, never mutating), then adopts the
// result into a fresh, fully-owned, sealed snapshot with SnapshotCopy.
// The shared subtrees must be copied — they are owned by the previous
// snapshot's sealed index, which live lock-free readers are using — and
// the copy is where a commit pays its Θ(|T|); CopyStats makes that cost
// observable (the store's commit metrics and the xbench -store sweep
// report it).

// CopyStats reports the work of one SnapshotCopy.
type CopyStats struct {
	// Nodes is the number of nodes copied (every node of the new
	// snapshot: snapshots never share nodes with their predecessors).
	Nodes int
	// Bytes approximates the heap bytes retained by the copy: the node
	// structs plus attribute slices. Label and character-data strings
	// are shared with the source (Go strings are immutable), so they are
	// not counted.
	Bytes int64
	// SharedWithBase counts source nodes owned by the base index — for a
	// commit, how much of the update's result the copy-on-write
	// evaluation reused from the previous snapshot. Zero when no base
	// was given.
	SharedWithBase int
}

// nodeBytes is the approximate retained size of one copied node.
const nodeBytes = int64(unsafe.Sizeof(Node{}))

// attrBytes is the approximate retained size of one copied attribute.
const attrBytes = int64(unsafe.Sizeof(Attr{}))

// SnapshotCopy deep-copies the subtree rooted at src into a fresh tree
// that shares no nodes with any other document, indexing and sealing it
// in the same walk: every copied node is stamped with its preorder
// ordinal, labels and attribute names are interned, and the resulting
// index is sealed before it is returned — ready to be published (via an
// atomic pointer) to lock-free readers.
//
// base, when non-nil, is the index of the document src derives from
// (for a commit, the previous snapshot): its frozen symbol table is
// cloned so symbols stamped on nodes copied from it keep their ids and
// the walk skips the intern lookup for them, and the same pass counts
// how many source nodes base owns (CopyStats.SharedWithBase).
//
// src itself is only read, never written, so it may share subtrees with
// a live sealed snapshot (the intended input is exactly the structurally
// sharing result of evaluating an update over one).
func SnapshotCopy(src *Node, base *Index) (*Node, *Index, CopyStats) {
	syms := NewSymbols()
	if base != nil {
		syms = base.Syms.Clone()
	}
	var stats CopyStats
	ix := &Index{Syms: syms, sealed: true}
	ord := int32(0)
	stamp := func(n *Node) {
		n.ord = ord
		n.idx.Store(ix)
		ord++
		stats.Nodes++
		stats.Bytes += nodeBytes + int64(len(n.Attrs))*attrBytes
		if n.Kind == Element {
			if !syms.covers(n.Sym, n.Label) {
				n.Sym = syms.Intern(n.Label)
			}
			for i := range n.Attrs {
				syms.Intern(n.Attrs[i].Name)
			}
		}
	}

	root := shallowCopy(src)
	// Iterative walk mirroring DeepCopy, stamping each copy as it is
	// popped with children pushed in reverse, so ordinals are assigned in
	// strict preorder (document order) — the evaluators' ordinal-based
	// anchoring and dedup rely on that order, not just on density.
	type frame struct{ src, dst *Node }
	stack := []frame{{src, root}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		stamp(f.dst)
		if base != nil && f.src.idx.Load() == base {
			stats.SharedWithBase++
		}
		if len(f.src.Children) == 0 {
			continue
		}
		f.dst.Children = make([]*Node, len(f.src.Children))
		stats.Bytes += int64(len(f.src.Children)) * int64(unsafe.Sizeof((*Node)(nil)))
		for i := len(f.src.Children) - 1; i >= 0; i-- {
			ch := f.src.Children[i]
			c := shallowCopy(ch)
			f.dst.Children[i] = c
			stack = append(stack, frame{ch, c})
		}
	}
	ix.Root = root
	ix.NumNodes = int(ord)
	return root, ix, stats
}

// SealedOwner scans the subtree rooted at doc and returns the sealed
// index owning the first node it finds that belongs to one, or nil when
// no node of the tree is part of a sealed snapshot. In-place mutation
// (core's Update.Apply) uses it to fail fast instead of corrupting a
// snapshot that live readers are evaluating against.
func SealedOwner(doc *Node) *Index {
	stack := make([]*Node, 0, 64)
	stack = append(stack, doc)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if ix := n.idx.Load(); ix != nil && ix.sealed {
			return ix
		}
		stack = append(stack, n.Children...)
	}
	return nil
}
