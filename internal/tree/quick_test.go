package tree

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// randomDoc adapts the document generator to testing/quick.
type randomDoc struct{ Doc *Node }

// Generate implements quick.Generator.
func (randomDoc) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(randomDoc{Doc: Generate(r, DefaultGenOptions())})
}

func quickCfg(seed int64, max int) *quick.Config {
	return &quick.Config{MaxCount: max, Rand: rand.New(rand.NewSource(seed))}
}

// Property: DeepCopy produces an Equal tree that shares no nodes and
// preserves the structural statistics.
func TestQuickDeepCopy(t *testing.T) {
	prop := func(d randomDoc) bool {
		cp := d.Doc.DeepCopy()
		return Equal(d.Doc, cp) &&
			SharedNodes(d.Doc, cp) == 0 &&
			cp.Size() == d.Doc.Size() &&
			cp.Depth() == d.Doc.Depth() &&
			cp.CountElements() == d.Doc.CountElements()
	}
	if err := quick.Check(prop, quickCfg(1, 100)); err != nil {
		t.Error(err)
	}
}

// Property: Equal is reflexive and symmetric on random documents.
func TestQuickEqualReflexiveSymmetric(t *testing.T) {
	prop := func(a, b randomDoc) bool {
		if !Equal(a.Doc, a.Doc) || !Equal(b.Doc, b.Doc) {
			return false
		}
		return Equal(a.Doc, b.Doc) == Equal(b.Doc, a.Doc)
	}
	if err := quick.Check(prop, quickCfg(2, 100)); err != nil {
		t.Error(err)
	}
}

// Property: every generated document satisfies the model invariants, and
// Size is consistent with a full Walk.
func TestQuickValidateAndWalk(t *testing.T) {
	prop := func(d randomDoc) bool {
		if Validate(d.Doc) != nil {
			return false
		}
		visited := 0
		Walk(d.Doc, func(*Node, int) bool { visited++; return true })
		return visited == d.Doc.Size()
	}
	if err := quick.Check(prop, quickCfg(3, 100)); err != nil {
		t.Error(err)
	}
}
