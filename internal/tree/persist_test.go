package tree

import (
	"math/rand"
	"strings"
	"testing"
)

// rebuild returns a tree that shares every subtree of n except the
// spine down to target, which is re-created with fresh (unstamped)
// nodes — exactly the shape the topDown evaluator's output has for a
// single-site update. f maps the target to its replacement; returning
// nil deletes it.
func rebuild(n, target *Node, f func(*Node) *Node) (*Node, bool) {
	if n == target {
		return f(n), true
	}
	for i, c := range n.Children {
		r, hit := rebuild(c, target, f)
		if !hit {
			continue
		}
		cp := shallowCopy(n)
		cp.Children = make([]*Node, len(n.Children))
		copy(cp.Children, n.Children)
		if r == nil {
			cp.Children = append(cp.Children[:i], cp.Children[i+1:]...)
		} else {
			cp.Children[i] = r
		}
		return cp, true
	}
	return n, false
}

// rename returns the single-site rename output over root.
func renameOut(t *testing.T, root, target *Node, label string) *Node {
	t.Helper()
	out, hit := rebuild(root, target, func(n *Node) *Node {
		cp := shallowCopy(n)
		cp.Label = label
		cp.Sym = NoSym
		cp.Children = n.Children
		return cp
	})
	if !hit {
		t.Fatal("rename target not under root")
	}
	return out
}

func serialize(t *testing.T, ix *Index) string {
	t.Helper()
	var b strings.Builder
	if err := ix.WriteXML(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestPathCopySharesUntouchedSubtrees(t *testing.T) {
	root, prev, _ := Freeze(buildTestDoc(), nil)
	prevXML := root.String()

	// Rename the second <part> — the first part's subtree must survive
	// by reference, not by copy.
	target := root.Root().Children[1]
	out := renameOut(t, root, target, "spare")

	newRoot, ix, stats := PathCopy(out, prev)
	want := strings.Replace(prevXML, "<part><pname>gadget</pname></part>",
		"<spare><pname>gadget</pname></spare>", 1)
	if newRoot.String() != want {
		t.Fatalf("unexpected result: %s, want %s", newRoot, want)
	}
	// Previous snapshot untouched, bytes and structure.
	if root.String() != prevXML || serialize(t, prev) != prevXML {
		t.Fatal("path copy disturbed the previous snapshot")
	}
	// The untouched first part is the same pointer in both versions.
	if newRoot.Root().Children[0] != root.Root().Children[0] {
		t.Fatal("untouched subtree was copied instead of aliased")
	}
	if shared := SharedNodes(root, newRoot); shared == 0 {
		t.Fatal("no structural sharing between versions")
	}
	// Copied: document, db, renamed part (+ its aliased children stay).
	if stats.Nodes != 3 {
		t.Fatalf("CopyStats.Nodes = %d, want 3 (spine only)", stats.Nodes)
	}
	if stats.SharedWithBase == 0 {
		t.Fatal("no shared-with-base accounting")
	}
	// Chain bookkeeping: width grew by the spine, live count unchanged.
	if ix.Live != prev.Live {
		t.Fatalf("Live = %d, want %d", ix.Live, prev.Live)
	}
	if ix.NumNodes != prev.NumNodes+3 {
		t.Fatalf("NumNodes = %d, want %d", ix.NumNodes, prev.NumNodes+3)
	}
	// The SoA serialization of the new version matches the pointer walk.
	if serialize(t, ix) != newRoot.String() {
		t.Fatal("column serialization diverges from pointer serialization")
	}
}

func TestPathCopyChainMembership(t *testing.T) {
	root, prev, _ := Freeze(buildTestDoc(), nil)
	target := root.Root().Children[0]
	out := renameOut(t, root, target, "renamed")
	newRoot, ix, _ := PathCopy(out, prev)

	// Aliased nodes are members of both versions with the same ordinal.
	kept := newRoot.Root().Children[1]
	o1, ok1 := prev.OrdOf(kept)
	o2, ok2 := ix.OrdOf(kept)
	if !ok1 || !ok2 || o1 != o2 {
		t.Fatalf("aliased node membership: prev (%d,%v) new (%d,%v)", o1, ok1, o2, ok2)
	}
	// New nodes are members of the new version only.
	if _, ok := prev.OrdOf(newRoot); ok {
		t.Fatal("previous version claims the new root")
	}
	if _, ok := ix.OrdOf(newRoot); !ok {
		t.Fatal("new version does not own its root")
	}
	// Labels unchanged in the chain keep their symbol ids; the rename
	// interned a new label without touching the previous table.
	if prev.Syms.Lookup("renamed") != NoSym {
		t.Fatal("path copy interned into the frozen previous table")
	}
	if ix.Syms.Lookup("renamed") == NoSym {
		t.Fatal("new label not interned")
	}
	if got, want := ix.Syms.Lookup("pname"), prev.Syms.Lookup("pname"); got != want {
		t.Fatalf("stable symbol drifted: %d != %d", got, want)
	}
	// SymOf on an aliased node against the new index trusts the stamp.
	pn := kept.Children[0]
	if ix.SymOf(pn) != ix.Syms.Lookup("pname") {
		t.Fatal("SymOf wrong for aliased chain member")
	}

	// A commit with no new names reuses the previous table by pointer.
	out2 := renameOut(t, newRoot, newRoot.Root().Children[1], "renamed")
	_, ix2, _ := PathCopy(out2, ix)
	if ix2.Syms != ix.Syms {
		t.Fatal("table cloned although no new symbols were interned")
	}
}

func TestPathCopyLinkFixups(t *testing.T) {
	root, prev, _ := Freeze(buildTestDoc(), nil)
	// Delete the first <part>: the second part stays aliased but its
	// parent (db) is new, and it becomes db's first child.
	target := root.Root().Children[0]
	out, hit := rebuild(root, target, func(*Node) *Node { return nil })
	if !hit {
		t.Fatal("delete target not found")
	}
	newRoot, ix, _ := PathCopy(out, prev)

	kept := newRoot.Root().Children[0]
	po, ok := ix.ParentOf(kept)
	if !ok {
		t.Fatal("kept node has no parent link")
	}
	dbOrd, _ := ix.OrdOf(newRoot.Root())
	if po != dbOrd {
		t.Fatalf("parent link = %d, want new db ordinal %d", po, dbOrd)
	}
	// The previous version's links are untouched: its db still has the
	// deleted part as first child.
	if serialize(t, prev) != root.String() {
		t.Fatal("previous version serialization changed")
	}
	if serialize(t, ix) != newRoot.String() {
		t.Fatal("column serialization diverges after delete")
	}
	// Live shrank by the deleted subtree.
	if want := root.Size() - target.Size(); ix.Live != want {
		t.Fatalf("Live = %d, want %d", ix.Live, want)
	}
}

func TestPathCopyNoopReturnsPrev(t *testing.T) {
	root, prev, _ := Freeze(buildTestDoc(), nil)
	r, ix, stats := PathCopy(root, prev)
	if r != root || ix != prev {
		t.Fatal("no-op path copy built a new version")
	}
	if stats.Nodes != 0 || stats.CopiedChunks != 0 || stats.SharedChunks == 0 {
		t.Fatalf("no-op stats: %+v", stats)
	}
}

func TestPathCopyCompaction(t *testing.T) {
	// Grow a document past compactMinWidth, then repeatedly replace its
	// bulk subtree: the ordinal space fills with dead nodes until the
	// width exceeds twice the live count and PathCopy renumbers into a
	// fresh chain.
	bulk := NewElement("bulk")
	for i := 0; i < compactMinWidth; i++ {
		bulk.Append(NewElement("x"))
	}
	doc := NewDocument(NewElement("db", bulk, NewElement("tag")))
	root, ix, _ := Freeze(doc, nil)
	chain0 := ix.chain

	compacted := false
	for i := 0; i < 4 && !compacted; i++ {
		// Replace the bulk subtree wholesale (fresh nodes).
		nb := NewElement("bulk")
		for j := 0; j < compactMinWidth; j++ {
			nb.Append(NewElement("y"))
		}
		out, hit := rebuild(root, root.Root().Children[0], func(*Node) *Node { return nb })
		if !hit {
			t.Fatal("bulk not found")
		}
		var stats CopyStats
		root, ix, stats = PathCopy(out, ix)
		if ix.NumNodes < ix.Live {
			t.Fatalf("width %d below live %d", ix.NumNodes, ix.Live)
		}
		if ix.chain != chain0 {
			compacted = true
			if ix.NumNodes != ix.Live {
				t.Fatalf("compacted chain not dense: width %d live %d", ix.NumNodes, ix.Live)
			}
			if stats.SharedChunks != 0 {
				t.Fatal("compaction claims chunk sharing")
			}
		}
		if serialize(t, ix) != root.String() {
			t.Fatalf("round %d: column serialization diverges", i)
		}
	}
	if !compacted {
		t.Fatal("compaction never triggered")
	}
}

// TestPathCopyRandomEdits drives a long chain of random single-site
// renames, deletes and subtree insertions, checking after every commit
// that the column serialization matches the pointer walk, the previous
// version is byte-stable, and live counts agree with a full recount.
func TestPathCopyRandomEdits(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	doc := Generate(rng, DefaultGenOptions())
	root, ix, _ := Freeze(doc, nil)

	collect := func(n *Node) []*Node {
		var all []*Node
		stack := []*Node{n}
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			all = append(all, x)
			stack = append(stack, x.Children...)
		}
		return all
	}

	for i := 0; i < 60; i++ {
		prevXML := root.String()
		all := collect(root)
		target := all[rng.Intn(len(all))]
		if target == root {
			continue
		}
		var out *Node
		var hit bool
		switch rng.Intn(3) {
		case 0: // rename (elements only)
			if target.Kind != Element {
				continue
			}
			out = renameOut(t, root, target, "r"+string(rune('a'+rng.Intn(26))))
			hit = true
		case 1: // delete
			out, hit = rebuild(root, target, func(*Node) *Node { return nil })
		case 2: // insert a small fresh subtree as last child
			if target.Kind == Text {
				continue
			}
			out, hit = rebuild(root, target, func(n *Node) *Node {
				cp := shallowCopy(n)
				cp.Children = make([]*Node, len(n.Children), len(n.Children)+1)
				copy(cp.Children, n.Children)
				cp.Children = append(cp.Children, NewElement("ins", NewText("v")))
				return cp
			})
		}
		if !hit {
			continue
		}
		prevIx := ix
		var newRoot *Node
		newRoot, ix, _ = PathCopy(out, ix)
		if serialize(t, prevIx) != prevXML {
			t.Fatalf("commit %d: previous version changed", i)
		}
		if got := serialize(t, ix); got != newRoot.String() {
			t.Fatalf("commit %d: columns %q != pointers %q", i, got, newRoot.String())
		}
		if ix.Live != newRoot.Size() {
			t.Fatalf("commit %d: Live %d != recount %d", i, ix.Live, newRoot.Size())
		}
		root = newRoot
	}
}

func TestFreezeBuildsColumns(t *testing.T) {
	root, ix, stats := Freeze(buildTestDoc(), nil)
	cols := ix.Cols()
	if cols == nil {
		t.Fatal("freeze built no columns")
	}
	if int(cols.Width()) != ix.NumNodes {
		t.Fatalf("width %d != NumNodes %d", cols.Width(), ix.NumNodes)
	}
	if stats.CopiedChunks != cols.NumChunks() || stats.SharedChunks != 0 {
		t.Fatalf("freeze chunk stats: %+v", stats)
	}
	// NodeAt inverts OrdOf for every node.
	stack := []*Node{root}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		ord, ok := ix.OrdOf(n)
		if !ok || ix.NodeAt(ord) != n {
			t.Fatalf("NodeAt(%d) does not invert OrdOf", ord)
		}
		ref, ok := ix.Ref(n)
		if !ok || ref.Node() != n {
			t.Fatal("NodeRef round trip failed")
		}
		if sz, ok := ix.SizeOf(n); !ok || int(sz) != n.Size() {
			t.Fatalf("SizeOf = %d, want %d", sz, n.Size())
		}
		stack = append(stack, n.Children...)
	}
	if serialize(t, ix) != root.String() {
		t.Fatal("column serialization diverges from pointer serialization")
	}
}

func TestSealBuildsColumns(t *testing.T) {
	doc := buildTestDoc()
	ix := Seal(doc)
	if ix.Cols() == nil {
		t.Fatal("Seal did not build columns for a fully owned tree")
	}
	if ix.Live != ix.NumNodes {
		t.Fatalf("Live = %d, want %d", ix.Live, ix.NumNodes)
	}
	if serialize(t, ix) != doc.String() {
		t.Fatal("sealed column serialization diverges")
	}
}
