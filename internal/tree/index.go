package tree

import (
	"sync"
	"sync/atomic"
)

// Index is the dense per-document view of a tree: a frozen symbol table
// covering every element label and attribute name, plus a preorder
// numbering of all nodes (document node first, then each subtree in
// document order). Ordinals let the evaluators replace
// map[*Node]-annotation with slices indexed by node ordinal, and symbols
// let the automata step on integer comparisons; both are the substrate
// for the dense-state evaluation paths and for future parallel subtree
// evaluation.
//
// An Index belongs to exactly one document node. Indexing mutates the
// nodes it reaches (it stamps each with its ordinal and owning index), so
// a node can be a member of at most one Index at a time: re-indexing a
// tree that shares subtrees with an already-indexed document steals those
// nodes. OrdOf detects stolen or foreign nodes and reports them as
// non-members, so evaluators degrade to their slow paths instead of
// reading another document's ordinals. Do not index a tree concurrently
// with evaluations over another tree that shares nodes with it.
//
// A sealed Index (see Seal, Freeze and PathCopy) is the exception to the
// stealing rule: its nodes are permanently owned — indexing a tree that
// shares subtrees with a sealed document skips those subtrees instead of
// stealing them, and DropIndex is a no-op. Sealing is what makes
// versioned store snapshots safe to read without locks while other trees
// are being indexed.
type Index struct {
	// Root is the document node the index was built from.
	Root *Node
	// Syms holds every element label and attribute name of the document
	// (plus any symbols interned by the builder before the freeze). It is
	// frozen: treat as read-only.
	Syms *Symbols
	// NumNodes is the width of the ordinal space: every ordinal the
	// index can hand out is in 0..NumNodes-1, which is what sizes the
	// evaluators' per-ordinal annotation arrays. For a freshly indexed
	// or frozen document ordinals are a dense preorder numbering with
	// the document node at 0; for later versions of a path-copied chain
	// the numbering keeps preorder density per version's new nodes only
	// — replaced ordinals become holes, new nodes append at the tail —
	// so NumNodes can exceed the live node count (see Live).
	NumNodes int
	// Live is the number of nodes actually reachable from Root. Equal
	// to NumNodes for freshly indexed documents; after path copies it
	// lags NumNodes by the dead (replaced) ordinals still occupying the
	// numbering. Zero for indexes built before sealing (use NumNodes).
	Live int
	// sealed marks the index (and every node it owns) immutable: the
	// nodes can never be re-stamped by a later indexing and the index can
	// never be dropped. It is written only before the tree is published
	// to other goroutines (Seal's contract), so the lock-free fast paths
	// may read it without synchronization.
	sealed bool
	// cols is the structure-of-arrays view of a sealed snapshot (nil for
	// plain evaluation indexes and for sealed trees containing foreign
	// sealed subtrees, which keep the pointer-walk paths).
	cols *Cols
	// chain identifies the persistent version chain this sealed snapshot
	// belongs to: every version produced from it by PathCopy shares the
	// same chain pointer, and epoch counts the version's distance from
	// the chain's freeze. Membership (OrdOf) accepts nodes stamped by
	// any ancestor version — the aliased, unchanged subtrees a path copy
	// shares by reference — because their ordinals and symbols are
	// stable across the chain. nil for non-chain indexes.
	chain *chainID
	epoch int32
	// stats caches the per-document statistics record (see stats.go):
	// eager for sealed snapshots, computed on first Stats() call for
	// plain indexes. Atomic because lazy computation may race between
	// concurrent readers of a shared document.
	stats atomic.Pointer[Stats]
}

// chainID is an identity token shared by every version of one
// path-copied document chain; only its pointer matters.
type chainID struct{ _ byte }

// Sealed reports whether the index is sealed — owned by an immutable
// snapshot whose nodes can never be stolen or mutated.
func (ix *Index) Sealed() bool { return ix.sealed }

// indexMu serializes index construction and the cached-index check, so
// concurrent evaluations of the same document build its index exactly
// once and later callers observe fully-stamped nodes (the mutex acquire
// orders the stamp writes before any ordinal read).
var indexMu sync.Mutex

// IndexOf returns the document's current index, or nil when it was never
// indexed (or its index was superseded).
func IndexOf(doc *Node) *Index {
	if ix := doc.idx.Load(); ix != nil && ix.sealed && ix.Root == doc {
		return ix
	}
	indexMu.Lock()
	defer indexMu.Unlock()
	if ix := doc.idx.Load(); ix != nil && ix.Root == doc {
		return ix
	}
	return nil
}

// EnsureIndex returns the document's index, building it on first use.
// It is safe to call from concurrent evaluations of the same document;
// see the Index comment for the sharing caveat.
//
// For members of a sealed snapshot the hot path is lock-free: a sealed
// index is immutable and its nodes can never be re-stamped, so the
// cached pointer is returned without taking the package mutex. This is
// what lets any number of store readers evaluate against one snapshot
// with zero lock traffic. (When doc is an interior node of a sealed
// snapshot the owner's index is returned: its ordinals and symbols
// remain valid for the subtree.)
func EnsureIndex(doc *Node) *Index {
	if ix := doc.idx.Load(); ix != nil && ix.sealed {
		return ix
	}
	indexMu.Lock()
	defer indexMu.Unlock()
	if ix := doc.idx.Load(); ix != nil && (ix.Root == doc || ix.sealed) {
		return ix
	}
	return indexWithLocked(doc, NewSymbols())
}

// IndexWith builds doc's index against syms — the parser's TreeBuilder
// passes the table it interned labels into while building, so the walk
// reuses the Sym fields already stamped on the nodes. The caller must own
// syms (no concurrent readers); the table is frozen once IndexWith
// returns. When doc is already owned by a sealed index that index is
// returned unchanged: sealed trees are never re-indexed.
func IndexWith(doc *Node, syms *Symbols) *Index {
	indexMu.Lock()
	defer indexMu.Unlock()
	if ix := doc.idx.Load(); ix != nil && ix.sealed {
		return ix
	}
	return indexWithLocked(doc, syms)
}

func indexWithLocked(doc *Node, syms *Symbols) *Index {
	if cur := doc.idx.Load(); cur != nil && cur.sealed {
		// doc is (an interior node of) a sealed snapshot: nothing here
		// may be restamped. The owner's index covers the subtree.
		return cur
	}
	ix := &Index{Root: doc, Syms: syms}
	// Iterative preorder walk: documents admitted by a generous
	// WithMaxDepth must not overflow the goroutine stack here.
	ord := int32(0)
	stack := make([]*Node, 0, 64)
	stack = append(stack, doc)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if cur := n.idx.Load(); cur != nil && cur.sealed {
			// n (and, by construction, its whole subtree) is owned by a
			// sealed snapshot. Stealing it would corrupt lock-free
			// readers of that snapshot, so the subtree keeps its owner
			// and this index simply does not cover it — OrdOf reports
			// non-membership and evaluators use their slow paths there.
			continue
		}
		n.ord = ord
		n.idx.Store(ix)
		ord++
		if n.Kind == Element {
			if !syms.covers(n.Sym, n.Label) {
				n.Sym = syms.Intern(n.Label)
			}
			for i := range n.Attrs {
				syms.Intern(n.Attrs[i].Name)
			}
		}
		// Push children in reverse so they pop in document order.
		for i := len(n.Children) - 1; i >= 0; i-- {
			stack = append(stack, n.Children[i])
		}
	}
	ix.NumNodes = int(ord)
	doc.idx.Store(ix)
	return ix
}

// Seal marks doc's index immutable, building the index first when doc
// has none. A sealed document's nodes can never be stolen by a later
// indexing, its index is never dropped, and EnsureIndex serves it
// lock-free — the properties the versioned store relies on for its
// snapshots.
//
// The caller must own doc exclusively: Seal is meant for the moment a
// private, fully-built tree is about to be published (for example via an
// atomic pointer), which is what makes the unsynchronized sealed reads
// of the fast paths safe. Sealing a tree other goroutines already
// evaluate is a data race.
func Seal(doc *Node) *Index {
	indexMu.Lock()
	defer indexMu.Unlock()
	ix := doc.idx.Load()
	if ix == nil || ix.Root != doc {
		ix = indexWithLocked(doc, NewSymbols())
	}
	ix.sealed = true
	if ix.Live == 0 {
		ix.Live = ix.NumNodes
	}
	// Adopt the tree into the structure-of-arrays core: one array-fill
	// walk reusing the stamped ordinals turns the sealed snapshot into
	// the chunked columnar form that path-copy commits share structure
	// with. Trees containing foreign sealed subtrees are not fully
	// stamped and stay pointer-only (cols nil); PathCopy falls back to a
	// Freeze for them.
	if ix.cols == nil {
		ix.cols = buildCols(ix)
	}
	if ix.chain == nil && ix.cols != nil {
		ix.chain = &chainID{}
	}
	// Collect the planner's statistics while the whole tree is at hand:
	// one pass over the columns (or the walk, for partially-foreign
	// trees), instead of a lazy walk on the first planned evaluation.
	if ix.stats.Load() == nil {
		ix.stats.Store(computeStats(ix))
	}
	return ix
}

// IndexBuilder stamps ordinals incrementally while a tree is being
// constructed in document order — the parser's TreeBuilder feeds every
// node through Add as it is created, so a freshly parsed document is
// fully indexed without a second walk over it. The tree must be private
// to the builder until Finish publishes the index.
type IndexBuilder struct {
	ix          *Index
	syms        *Symbols
	internAttrs bool
	next        int32
}

// NewIndexBuilder returns a builder interning into syms (a fresh table
// when nil). internAttrs controls whether Add interns attribute names;
// pass false when the event source already interned them into syms (the
// parser does), true otherwise.
func NewIndexBuilder(syms *Symbols, internAttrs bool) *IndexBuilder {
	if syms == nil {
		syms = NewSymbols()
	}
	return &IndexBuilder{ix: &Index{Syms: syms}, syms: syms, internAttrs: internAttrs}
}

// Add stamps n with the next preorder ordinal. Nodes must be added in
// document order (each node before its children, siblings left to right —
// exactly the SAX event order of start tags and text runs).
func (b *IndexBuilder) Add(n *Node) {
	n.ord = b.next
	n.idx.Store(b.ix)
	b.next++
	if n.Kind == Element {
		if !b.syms.covers(n.Sym, n.Label) {
			n.Sym = b.syms.Intern(n.Label)
		}
		if b.internAttrs {
			for i := range n.Attrs {
				b.syms.Intern(n.Attrs[i].Name)
			}
		}
	}
}

// Finish freezes the symbol table and publishes the index on doc, which
// must be the first node that was added.
func (b *IndexBuilder) Finish(doc *Node) *Index {
	b.ix.Root = doc
	b.ix.NumNodes = int(b.next)
	indexMu.Lock()
	doc.idx.Store(b.ix)
	indexMu.Unlock()
	return b.ix
}

// DropIndex detaches doc's cached index, forcing the next EnsureIndex to
// rebuild it. Callers that mutate an indexed tree in place (the
// copy-and-update baseline) drop the index afterwards, since ordinals and
// the symbol table no longer describe the mutated structure. Dropping a
// sealed index is a no-op: sealed trees are immutable, so their index
// never goes stale (and in-place mutation of them is rejected upstream).
func DropIndex(doc *Node) {
	indexMu.Lock()
	defer indexMu.Unlock()
	if ix := doc.idx.Load(); ix != nil && ix.sealed {
		return
	}
	doc.idx.Store(nil)
}

// OrdOf returns n's preorder ordinal and whether n is a member of this
// index. Nodes of other documents — including nodes this document shares
// with a more recently indexed tree — report false, which the evaluators
// treat as "use the slow path".
//
// For a path-copied version chain, nodes stamped by an ancestor version
// are members too: a path copy aliases every untouched subtree from the
// previous snapshot, and those nodes keep their ordinal (the chain's
// numbering is shared) and their symbol ids (the chain's table only
// grows). Nodes stamped by a *later* version are not members — they do
// not exist in this version's tree.
func (ix *Index) OrdOf(n *Node) (int32, bool) {
	o := n.idx.Load()
	if o == ix {
		return n.ord, true
	}
	if o != nil && ix.chain != nil && o.chain == ix.chain && o.epoch <= ix.epoch {
		return n.ord, true
	}
	return 0, false
}

// Contains reports membership of n in this index (chain-aware, like
// OrdOf).
func (ix *Index) Contains(n *Node) bool {
	o := n.idx.Load()
	if o == ix {
		return true
	}
	return o != nil && ix.chain != nil && o.chain == ix.chain && o.epoch <= ix.epoch
}

// SymOf returns n's label symbol in this index's table. For members —
// including nodes stamped by an ancestor version of the same chain,
// whose ids are stable because the chain's table only grows — the
// stamped Sym is trusted; foreign nodes (shared subtrees stolen by a
// more recent indexing, whose Sym fields point into another table) are
// resolved by name — NoSym when this table has never seen the label.
// Evaluators must use this, never a raw n.Sym, when stepping automata
// bound to ix.Syms: symbol ids are only comparable within one table.
func (ix *Index) SymOf(n *Node) SymID {
	o := n.idx.Load()
	if o == ix || (o != nil && ix.chain != nil && o.chain == ix.chain && o.epoch <= ix.epoch) {
		return n.Sym
	}
	return ix.Syms.Lookup(n.Label)
}
