package tree

import (
	"bufio"
	"io"
)

// This file holds the structure-of-arrays core of sealed documents: a
// sealed snapshot is described by contiguous ordinal-indexed columns —
// label symbols, parent / first-child / next-sibling ordinals, subtree
// sizes, text spans and attribute ranges — stored in fixed-size chunks
// ("pages") that successive versions of a document share by reference.
//
// The pointer graph of *Node values remains the navigation surface the
// evaluators consume, but for a sealed snapshot the nodes themselves are
// values inside arena chunks (allocated ChunkSize at a time by Freeze
// and PathCopy), and every per-ordinal fact the write path and the
// serializer need lives in the columns. A commit (PathCopy) produces the
// next version by copying only the chunks it writes — the tail chunks
// holding the new ordinals and the chunks holding link fixups for the
// spine's children — and aliasing every other chunk of every column from
// the previous version. That is what turns the former Θ(|T|)
// whole-tree snapshot copy into an O(|delta|) path copy.

// ChunkShift sets the chunk (page) size of the SoA columns and node
// arenas: 1<<ChunkShift entries per chunk. 256 matches the evaluators'
// annotation pages: small enough that the per-commit copy-on-write tax
// (one tail chunk per column) stays a few KB, large enough that full
// documents stay cache-friendly contiguous runs.
const ChunkShift = 8

// ChunkSize is the number of ordinals per column chunk.
const ChunkSize = 1 << ChunkShift

const chunkMask = ChunkSize - 1

// NilOrd is the null ordinal used by the link columns: a parent link of
// NilOrd marks the root, a first-child or next-sibling link of NilOrd
// marks "none".
const NilOrd = int32(-1)

// Cols is the structure-of-arrays view of one sealed snapshot. Each
// column is a slice of chunks indexed [ord>>ChunkShift][ord&chunkMask];
// chunks are immutable once the snapshot is published and are shared by
// reference between versions of a document (PathCopy copies only the
// chunks it must write). All columns cover ordinals [0, width); after a
// path copy some ordinals are dead (their node was replaced or deleted
// in this version) — dead slots keep their last value and are simply
// never reached from the live root.
type Cols struct {
	width int32

	node   [][]*Node  // ordinal -> node (identity: chunk + slot)
	kind   [][]Kind   // ordinal -> node kind
	sym    [][]SymID  // ordinal -> element label symbol (NoSym otherwise)
	parent [][]int32  // ordinal -> parent ordinal (NilOrd for the root)
	first  [][]int32  // ordinal -> first-child ordinal (NilOrd: leaf)
	next   [][]int32  // ordinal -> next-sibling ordinal (NilOrd: last)
	size   [][]int32  // ordinal -> subtree size (counting the node)
	text   [][]string // ordinal -> character-data span (text nodes)
	attrs  [][][]Attr // ordinal -> attribute range (shares backing arrays)
}

// Width returns the ordinal-space width covered by the columns.
func (c *Cols) Width() int32 { return c.width }

// NumChunks returns the chunk count of one column — the unit of
// between-version sharing that Commit stats report.
func (c *Cols) NumChunks() int {
	return int(c.width+chunkMask) >> ChunkShift
}

func (c *Cols) nodeAt(ord int32) *Node   { return c.node[ord>>ChunkShift][ord&chunkMask] }
func (c *Cols) kindAt(ord int32) Kind    { return c.kind[ord>>ChunkShift][ord&chunkMask] }
func (c *Cols) symAt(ord int32) SymID    { return c.sym[ord>>ChunkShift][ord&chunkMask] }
func (c *Cols) parentAt(ord int32) int32 { return c.parent[ord>>ChunkShift][ord&chunkMask] }
func (c *Cols) firstAt(ord int32) int32  { return c.first[ord>>ChunkShift][ord&chunkMask] }
func (c *Cols) nextAt(ord int32) int32   { return c.next[ord>>ChunkShift][ord&chunkMask] }
func (c *Cols) sizeAt(ord int32) int32   { return c.size[ord>>ChunkShift][ord&chunkMask] }
func (c *Cols) textAt(ord int32) string  { return c.text[ord>>ChunkShift][ord&chunkMask] }
func (c *Cols) attrsAt(ord int32) []Attr { return c.attrs[ord>>ChunkShift][ord&chunkMask] }

// NodeRef is the stable identity of a node inside a sealed snapshot
// chain: the snapshot's index plus the node's ordinal. Because chunks
// are shared between versions, a node that survives a commit keeps both
// its ordinal and its *Node address — (chunk, slot) identity — in every
// later version, which is what lets view maintenance memos and delta
// walks carry per-node state across commits without translation.
//
// Identity rules (for view/IVM authors):
//
//   - Refs are only meaningful for ordinals reached through the owning
//     snapshot's live tree (OrdOf, or a walk from Root): a path copy
//     leaves dead ordinals behind whose slots still hold their last
//     value.
//   - A node's ref is valid in every later version of the chain that
//     still reaches the node; OrdOf answers membership for exactly
//     those versions.
//   - Compaction (see PathCopy) starts a fresh chain with a fresh
//     numbering; refs do not survive it, which OrdOf again reports.
type NodeRef struct {
	// Ix is the sealed snapshot index the ordinal is resolved against.
	Ix *Index
	// Ord is the node's ordinal within the chain's numbering.
	Ord int32
}

// Ref returns the ref of n in this snapshot, and whether n is a member.
func (ix *Index) Ref(n *Node) (NodeRef, bool) {
	ord, ok := ix.OrdOf(n)
	if !ok {
		return NodeRef{}, false
	}
	return NodeRef{Ix: ix, Ord: ord}, true
}

// Node resolves the ref through the node column.
func (r NodeRef) Node() *Node {
	if r.Ix == nil || r.Ix.cols == nil || r.Ord < 0 || r.Ord >= r.Ix.cols.width {
		return nil
	}
	return r.Ix.cols.nodeAt(r.Ord)
}

// Chunk returns the (chunk, slot) coordinates of the ref — the
// between-version sharing unit the ordinal lives in.
func (r NodeRef) Chunk() (chunk, slot int32) {
	return r.Ord >> ChunkShift, r.Ord & chunkMask
}

// Cols returns the snapshot's structure-of-arrays columns, or nil when
// the index is not a sealed SoA snapshot (plain evaluation indexes built
// by EnsureIndex carry no columns).
func (ix *Index) Cols() *Cols { return ix.cols }

// NodeAt returns the node with the given ordinal, or nil when the index
// has no columns or the ordinal is out of range. The ordinal must be
// live in this snapshot (see NodeRef identity rules).
func (ix *Index) NodeAt(ord int32) *Node {
	if ix.cols == nil || ord < 0 || ord >= ix.cols.width {
		return nil
	}
	return ix.cols.nodeAt(ord)
}

// ParentOf returns the ordinal of n's parent in the snapshot, or NilOrd
// for the root (and false when n is not a member or the index has no
// columns). This is upward navigation without parent pointers in the
// nodes — the columns carry it.
func (ix *Index) ParentOf(n *Node) (int32, bool) {
	if ix.cols == nil {
		return NilOrd, false
	}
	ord, ok := ix.OrdOf(n)
	if !ok {
		return NilOrd, false
	}
	return ix.cols.parentAt(ord), true
}

// SizeOf returns the subtree size of n recorded in the snapshot, in
// O(1), and whether n is a member of a snapshot with columns.
func (ix *Index) SizeOf(n *Node) (int32, bool) {
	if ix.cols == nil {
		return 0, false
	}
	ord, ok := ix.OrdOf(n)
	if !ok {
		return 0, false
	}
	return ix.cols.sizeAt(ord), true
}

// colsBuilder accumulates columns during a freeze or path copy. Chunks
// flagged fresh were allocated by this construction and may be written
// in place; every other chunk is shared with the previous version and
// is copied on first write. Copy-on-write is per column where it pays:
// the parent and next link fixups a path copy performs on aliased
// children touch old chunks, and copying only the 4-byte link column
// (freshParent / freshNext) instead of the whole row keeps the fixup
// tax at ~1KB per touched chunk.
type colsBuilder struct {
	c           *Cols
	fresh       []bool // per chunk: all columns owned by this construction
	freshParent []bool // per chunk: parent column owned
	freshNext   []bool // per chunk: next column owned
	// bytes accumulates the heap cost of every chunk this construction
	// allocated or copied, for CopyStats.Bytes.
	bytes int64
}

// linkChunkBytes is the copy cost of one link-column chunk.
const linkChunkBytes = int64(ChunkSize) * 4

// colsChunkBytes approximates the heap bytes of one chunk across all
// columns: the unit CopyStats.Bytes charges per fully allocated chunk
// (8B node pointer + 1B kind + 4B×5 links/sym/size + 16B string header
// + 24B slice header per ordinal).
const colsChunkBytes = int64(ChunkSize) * (8 + 1 + 4*5 + 16 + 24)

// newColsBuilder starts a builder from scratch (prev nil — Freeze) or
// from the previous version's columns (PathCopy), which are aliased
// chunk-by-chunk until written.
func newColsBuilder(prev *Cols) *colsBuilder {
	b := &colsBuilder{c: &Cols{}}
	if prev != nil {
		n := prev.NumChunks()
		b.c.width = prev.width
		b.c.node = append([][]*Node(nil), prev.node...)
		b.c.kind = append([][]Kind(nil), prev.kind...)
		b.c.sym = append([][]SymID(nil), prev.sym...)
		b.c.parent = append([][]int32(nil), prev.parent...)
		b.c.first = append([][]int32(nil), prev.first...)
		b.c.next = append([][]int32(nil), prev.next...)
		b.c.size = append([][]int32(nil), prev.size...)
		b.c.text = append([][]string(nil), prev.text...)
		b.c.attrs = append([][][]Attr(nil), prev.attrs...)
		b.fresh = make([]bool, n)
		b.freshParent = make([]bool, n)
		b.freshNext = make([]bool, n)
	}
	return b
}

// grow extends the ordinal space to width, appending fresh chunks (and
// copying the shared partial tail chunk, if any) so that every ordinal
// in [0, width) is addressable.
func (b *colsBuilder) grow(width int32) {
	if width <= b.c.width {
		return
	}
	oldChunks := len(b.fresh)
	newChunks := int(width+chunkMask) >> ChunkShift
	// The previous tail chunk is partial when the old width is not
	// chunk-aligned: appending into it would write memory the previous
	// version shares, so it is copied (copy-on-write) like any other
	// written chunk.
	if oldChunks > 0 && b.c.width&chunkMask != 0 {
		b.own(int32(oldChunks - 1))
	}
	for ci := oldChunks; ci < newChunks; ci++ {
		b.c.node = append(b.c.node, make([]*Node, ChunkSize))
		b.c.kind = append(b.c.kind, make([]Kind, ChunkSize))
		b.c.sym = append(b.c.sym, make([]SymID, ChunkSize))
		b.c.parent = append(b.c.parent, make([]int32, ChunkSize))
		b.c.first = append(b.c.first, make([]int32, ChunkSize))
		b.c.next = append(b.c.next, make([]int32, ChunkSize))
		b.c.size = append(b.c.size, make([]int32, ChunkSize))
		b.c.text = append(b.c.text, make([]string, ChunkSize))
		b.c.attrs = append(b.c.attrs, make([][]Attr, ChunkSize))
		b.fresh = append(b.fresh, true)
		b.freshParent = append(b.freshParent, true)
		b.freshNext = append(b.freshNext, true)
		b.bytes += colsChunkBytes
	}
	b.c.width = width
}

// own makes chunk ci fully writable, copying every column's chunk when
// it is still shared with the previous version.
func (b *colsBuilder) own(ci int32) {
	if b.fresh[ci] {
		return
	}
	b.c.node[ci] = append([]*Node(nil), b.c.node[ci]...)
	b.c.kind[ci] = append([]Kind(nil), b.c.kind[ci]...)
	b.c.sym[ci] = append([]SymID(nil), b.c.sym[ci]...)
	if !b.freshParent[ci] {
		b.c.parent[ci] = append([]int32(nil), b.c.parent[ci]...)
	}
	b.c.first[ci] = append([]int32(nil), b.c.first[ci]...)
	if !b.freshNext[ci] {
		b.c.next[ci] = append([]int32(nil), b.c.next[ci]...)
	}
	b.c.size[ci] = append([]int32(nil), b.c.size[ci]...)
	b.c.text[ci] = append([]string(nil), b.c.text[ci]...)
	b.c.attrs[ci] = append([][]Attr(nil), b.c.attrs[ci]...)
	b.fresh[ci] = true
	b.freshParent[ci] = true
	b.freshNext[ci] = true
	b.bytes += colsChunkBytes
}

// setRow writes the full column row of ord. The caller must have grown
// the builder past ord.
func (b *colsBuilder) setRow(ord int32, n *Node, parent, first, next, size int32) {
	ci := ord >> ChunkShift
	b.own(ci)
	s := ord & chunkMask
	b.c.node[ci][s] = n
	b.c.kind[ci][s] = n.Kind
	b.c.sym[ci][s] = NoSym
	if n.Kind == Element {
		b.c.sym[ci][s] = n.Sym
	}
	b.c.parent[ci][s] = parent
	b.c.first[ci][s] = first
	b.c.next[ci][s] = next
	b.c.size[ci][s] = size
	b.c.text[ci][s] = n.Data
	b.c.attrs[ci][s] = n.Attrs
}

// setParent rewrites the parent link of ord if it differs, copying only
// the parent column's chunk when it is still shared.
func (b *colsBuilder) setParent(ord, parent int32) {
	ci := ord >> ChunkShift
	if b.c.parent[ci][ord&chunkMask] == parent {
		return
	}
	if !b.fresh[ci] && !b.freshParent[ci] {
		b.c.parent[ci] = append([]int32(nil), b.c.parent[ci]...)
		b.freshParent[ci] = true
		b.bytes += linkChunkBytes
	}
	b.c.parent[ci][ord&chunkMask] = parent
}

// setNext rewrites the next-sibling link of ord if it differs, copying
// only the next column's chunk when it is still shared.
func (b *colsBuilder) setNext(ord, next int32) {
	ci := ord >> ChunkShift
	if b.c.next[ci][ord&chunkMask] == next {
		return
	}
	if !b.fresh[ci] && !b.freshNext[ci] {
		b.c.next[ci] = append([]int32(nil), b.c.next[ci]...)
		b.freshNext[ci] = true
		b.bytes += linkChunkBytes
	}
	b.c.next[ci][ord&chunkMask] = next
}

// chunkStats reports how many chunks this construction touched (fully
// or in a single link column) versus left aliased from the base.
func (b *colsBuilder) chunkStats() (copied, shared int) {
	for ci := range b.fresh {
		if b.fresh[ci] || b.freshParent[ci] || b.freshNext[ci] {
			copied++
		} else {
			shared++
		}
	}
	return
}

// finish returns the columns.
func (b *colsBuilder) finish() *Cols {
	return b.c
}

// buildCols constructs the columns for a fully-stamped tree in one walk
// over it, trusting the ordinals already on the nodes (the parser's
// IndexBuilder stamped them in preorder; Seal calls this at adoption so
// a freshly parsed document becomes an SoA snapshot without a second
// deep copy). Nodes not owned by ix (sealed-foreign subtrees skipped by
// indexing) make the tree non-columnar; buildCols returns nil for them
// and the snapshot simply serves without columns.
func buildCols(ix *Index) *Cols {
	b := newColsBuilder(nil)
	b.grow(int32(ix.NumNodes))
	c := b.c
	// Preorder walk with an explicit stack (documents can be arbitrarily
	// deep), filling every column except size.
	type item struct {
		n           *Node
		parent, sib int32
	}
	stack := make([]item, 0, 64)
	stack = append(stack, item{ix.Root, NilOrd, NilOrd})
	seen := 0
	for len(stack) > 0 {
		it := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		ord, ok := ix.OrdOf(it.n)
		if !ok {
			return nil
		}
		seen++
		first := NilOrd
		if len(it.n.Children) > 0 {
			fo, ok := ix.OrdOf(it.n.Children[0])
			if !ok {
				return nil
			}
			first = fo
		}
		b.setRow(ord, it.n, it.parent, first, it.sib, 1)
		// Each child's next-sibling link is its right neighbour's
		// ordinal; push in reverse so they pop in document order.
		next := NilOrd
		for i := len(it.n.Children) - 1; i >= 0; i-- {
			ch := it.n.Children[i]
			stack = append(stack, item{ch, ord, next})
			co, ok := ix.OrdOf(ch)
			if !ok {
				return nil
			}
			next = co
		}
	}
	if seen != ix.NumNodes {
		return nil
	}
	// Sizes: in a contiguous preorder numbering every child ordinal is
	// larger than its parent's, so a single reverse scan accumulates each
	// subtree into its parent before the parent is itself accumulated.
	// All chunks are fresh here, so the writes are in place.
	for ord := int32(ix.NumNodes) - 1; ord > 0; ord-- {
		p := c.parentAt(ord)
		c.size[p>>ChunkShift][p&chunkMask] += c.sizeAt(ord)
	}
	return b.finish()
}

// WriteXML serializes the snapshot by scanning the columns — label
// symbols resolved through the frozen table, text and attribute spans
// emitted without materializing any intermediate strings or visiting
// the node structs' child slices. Byte-identical to Node.WriteXML over
// the snapshot's root. It falls back to the pointer walk when the index
// carries no columns.
func (ix *Index) WriteXML(w io.Writer) error {
	if ix.cols == nil {
		return ix.Root.WriteXML(w)
	}
	bw := bufio.NewWriter(w)
	ix.writeOrd(bw, rootOrd(ix))
	return bw.Flush()
}

func rootOrd(ix *Index) int32 {
	ord, _ := ix.OrdOf(ix.Root)
	return ord
}

// writeOrd streams the subtree at ord using the first/next link columns
// with an explicit open-element stack (documents can be arbitrarily
// deep).
func (ix *Index) writeOrd(w *bufio.Writer, ord int32) {
	c := ix.cols
	syms := ix.Syms
	// stack holds the ordinals of open elements awaiting their end tag.
	var stack []int32
	cur := ord
	for {
		switch c.kindAt(cur) {
		case Document:
			if f := c.firstAt(cur); f != NilOrd {
				stack = append(stack, cur)
				cur = f
				continue
			}
		case Text:
			escapeText(w, c.textAt(cur))
		case Element:
			w.WriteByte('<')
			w.WriteString(syms.Name(c.symAt(cur)))
			for _, a := range c.attrsAt(cur) {
				w.WriteByte(' ')
				w.WriteString(a.Name)
				w.WriteString(`="`)
				escapeAttr(w, a.Value)
				w.WriteByte('"')
			}
			if f := c.firstAt(cur); f != NilOrd {
				w.WriteByte('>')
				stack = append(stack, cur)
				cur = f
				continue
			}
			w.WriteString("/>")
		}
		// Leaf done: advance to the next sibling, closing elements as
		// sibling chains run out.
		for {
			if cur == ord {
				return
			}
			if nx := c.nextAt(cur); nx != NilOrd {
				cur = nx
				break
			}
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if c.kindAt(top) == Element {
				w.WriteString("</")
				w.WriteString(syms.Name(c.symAt(top)))
				w.WriteByte('>')
			}
			cur = top
		}
	}
}
