package tree

import (
	"math/rand"
	"strings"
	"testing"
)

// sample builds the parts/suppliers document of Fig. 1 of the paper.
func sample() *Node {
	supplier := func(name, price, country string) *Node {
		return NewElement("supplier",
			NewElement("sname", NewText(name)),
			NewElement("price", NewText(price)),
			NewElement("country", NewText(country)),
		)
	}
	part := NewElement("part",
		NewElement("pname", NewText("keyboard")),
		supplier("HP", "15", "US"),
		NewElement("subPart",
			NewElement("part",
				NewElement("pname", NewText("key")),
				supplier("Acme", "2", "CN"),
			),
		),
	)
	return NewDocument(NewElement("db", part,
		NewElement("part", NewElement("pname", NewText("mouse")), supplier("Dell", "9", "A")),
	))
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{Document: "document", Element: "element", Text: "text", Kind(9): "invalid"}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestRoot(t *testing.T) {
	doc := sample()
	root := doc.Root()
	if root == nil || root.Label != "db" {
		t.Fatalf("Root() = %v, want db element", root)
	}
	if root.Root() != root {
		t.Errorf("element Root() should return itself")
	}
	if NewText("x").Root() != nil {
		t.Errorf("text Root() should be nil")
	}
	if NewDocument(nil).Root() != nil {
		t.Errorf("empty document Root() should be nil")
	}
}

func TestAttr(t *testing.T) {
	e := NewElement("person").WithAttrs(Attr{Name: "id", Value: "person10"})
	if v, ok := e.Attr("id"); !ok || v != "person10" {
		t.Errorf("Attr(id) = %q, %v", v, ok)
	}
	if _, ok := e.Attr("missing"); ok {
		t.Errorf("Attr(missing) should not be found")
	}
}

func TestValue(t *testing.T) {
	e := NewElement("sname", NewText("H"), NewElement("b", NewText("nested")), NewText("P"))
	if got := e.Value(); got != "HP" {
		t.Errorf("Value() = %q, want HP (direct text children only)", got)
	}
	if got := NewText("abc").Value(); got != "abc" {
		t.Errorf("text Value() = %q", got)
	}
}

func TestSizeDepthCounts(t *testing.T) {
	doc := sample()
	// db + 2 parts + 2 pname + 3 supplier*(1+3 leaves + 3 text)... compute by hand:
	// Count elements instead: db, part, pname, supplier, sname, price, country,
	// subPart, part, pname, supplier, sname, price, country,
	// part, pname, supplier, sname, price, country = 20
	if got := doc.CountElements(); got != 20 {
		t.Errorf("CountElements() = %d, want 20", got)
	}
	if got := CountLabel(doc, "part"); got != 3 {
		t.Errorf("CountLabel(part) = %d, want 3", got)
	}
	if got := CountLabel(doc, "price"); got != 3 {
		t.Errorf("CountLabel(price) = %d, want 3", got)
	}
	if doc.Size() <= doc.CountElements() {
		t.Errorf("Size() = %d should exceed element count (text nodes)", doc.Size())
	}
	// depth: doc -> db -> part -> subPart -> part -> supplier -> sname -> text = 8
	if got := doc.Depth(); got != 8 {
		t.Errorf("Depth() = %d, want 8", got)
	}
}

func TestElementsAndFirstChild(t *testing.T) {
	e := NewElement("p", NewText("t"), NewElement("a"), NewElement("b"))
	if got := len(e.Elements()); got != 2 {
		t.Errorf("Elements() returned %d, want 2", got)
	}
	if fc := e.FirstChild(); fc == nil || fc.Kind != Text {
		t.Errorf("FirstChild() = %v, want the text node", fc)
	}
	if NewElement("empty").FirstChild() != nil {
		t.Errorf("FirstChild() of empty element should be nil")
	}
}

func TestDeepCopyEqual(t *testing.T) {
	doc := sample()
	cp := doc.DeepCopy()
	if !Equal(doc, cp) {
		t.Fatalf("DeepCopy not Equal to original")
	}
	// Mutating the copy must not affect the original.
	cp.Root().Children[0].Label = "mutated"
	if Equal(doc, cp) {
		t.Fatalf("mutation of copy visible through Equal")
	}
	if doc.Root().Children[0].Label != "part" {
		t.Fatalf("mutation of copy leaked into original")
	}
	if (*Node)(nil).DeepCopy() != nil {
		t.Errorf("DeepCopy(nil) should be nil")
	}
}

func TestEqualEdgeCases(t *testing.T) {
	a := NewElement("a", NewText("x"))
	tests := []struct {
		name string
		b    *Node
		want bool
	}{
		{"same", NewElement("a", NewText("x")), true},
		{"label", NewElement("b", NewText("x")), false},
		{"text", NewElement("a", NewText("y")), false},
		{"children", NewElement("a"), false},
		{"extra attr", NewElement("a", NewText("x")).WithAttrs(Attr{"id", "1"}), false},
		{"nil", nil, false},
	}
	for _, tc := range tests {
		if got := Equal(a, tc.b); got != tc.want {
			t.Errorf("%s: Equal = %v, want %v", tc.name, got, tc.want)
		}
	}
	if !Equal(nil, nil) {
		t.Errorf("Equal(nil, nil) should be true")
	}
	x := NewElement("a").WithAttrs(Attr{"id", "1"})
	y := NewElement("a").WithAttrs(Attr{"id", "2"})
	if Equal(x, y) {
		t.Errorf("differing attribute values should not be Equal")
	}
}

func TestValidate(t *testing.T) {
	if err := Validate(sample()); err != nil {
		t.Fatalf("sample document invalid: %v", err)
	}
	bad := []*Node{
		NewDocument(NewElement("a")).Append(NewElement("b")), // two roots
		{Kind: Document, Children: []*Node{NewText("t")}},    // text under document
		NewElement(""), // empty label
		{Kind: Text, Children: []*Node{NewText("x")}},               // text with children
		{Kind: Text, Attrs: []Attr{{"a", "b"}}},                     // text with attrs
		NewElement("a").WithAttrs(Attr{"", "v"}),                    // empty attr name
		NewElement("a").WithAttrs(Attr{"id", "1"}, Attr{"id", "2"}), // dup attr
		NewElement("a", NewDocument(nil)),                           // nested document
		{Kind: Kind(7)},                                             // bogus kind
	}
	for i, n := range bad {
		if err := Validate(n); err == nil {
			t.Errorf("case %d: Validate accepted invalid tree %s", i, n)
		}
	}
}

func TestSharedNodes(t *testing.T) {
	doc := sample()
	if got, want := SharedNodes(doc, doc), doc.Size(); got != want {
		t.Errorf("SharedNodes(doc,doc) = %d, want %d", got, want)
	}
	cp := doc.DeepCopy()
	if got := SharedNodes(doc, cp); got != 0 {
		t.Errorf("SharedNodes(doc, deep copy) = %d, want 0", got)
	}
	// A rebuilt root sharing one original subtree.
	part := doc.Root().Children[0]
	mixed := NewDocument(NewElement("db2", part))
	if got, want := SharedNodes(doc, mixed), part.Size(); got != want {
		t.Errorf("SharedNodes = %d, want %d", got, want)
	}
}

func TestWalkPruning(t *testing.T) {
	doc := sample()
	visited := 0
	Walk(doc, func(n *Node, depth int) bool {
		visited++
		return n.Label != "supplier" // prune below suppliers
	})
	full := 0
	Walk(doc, func(*Node, int) bool { full++; return true })
	if visited >= full {
		t.Errorf("pruned walk visited %d, full walk %d", visited, full)
	}
	if full != doc.Size() {
		t.Errorf("full walk visited %d nodes, Size() = %d", full, doc.Size())
	}
}

func TestDescendants(t *testing.T) {
	doc := sample()
	all := Descendants(doc)
	if len(all) != doc.CountElements() {
		t.Errorf("Descendants(doc) = %d elements, want %d", len(all), doc.CountElements())
	}
	leaf := NewElement("leaf")
	if got := Descendants(leaf); len(got) != 0 {
		t.Errorf("Descendants(leaf) = %d, want 0", len(got))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	opts := DefaultGenOptions()
	a := Generate(rand.New(rand.NewSource(42)), opts)
	b := Generate(rand.New(rand.NewSource(42)), opts)
	if !Equal(a, b) {
		t.Fatalf("Generate not deterministic for equal seeds")
	}
	c := Generate(rand.New(rand.NewSource(43)), opts)
	if Equal(a, c) {
		t.Fatalf("Generate returned identical trees for different seeds")
	}
	for seed := int64(0); seed < 50; seed++ {
		doc := Generate(rand.New(rand.NewSource(seed)), opts)
		if err := Validate(doc); err != nil {
			t.Fatalf("seed %d: generated invalid tree: %v", seed, err)
		}
	}
}

func TestGenerateCopyEqualProperty(t *testing.T) {
	opts := DefaultGenOptions()
	for seed := int64(0); seed < 100; seed++ {
		doc := Generate(rand.New(rand.NewSource(seed)), opts)
		cp := doc.DeepCopy()
		if !Equal(doc, cp) {
			t.Fatalf("seed %d: deep copy differs from original", seed)
		}
		if cp.Size() != doc.Size() || cp.Depth() != doc.Depth() {
			t.Fatalf("seed %d: copy stats differ", seed)
		}
		if SharedNodes(doc, cp) != 0 {
			t.Fatalf("seed %d: deep copy shares nodes", seed)
		}
	}
}

func TestStringEscaping(t *testing.T) {
	e := NewElement("a", NewText("1 < 2 & 3 > 2")).WithAttrs(Attr{"q", `say "hi" & <bye>`})
	s := e.String()
	if strings.Contains(s, "1 < 2") {
		t.Errorf("unescaped text in %q", s)
	}
	for _, want := range []string{"&lt;", "&amp;", "&gt;", "&quot;"} {
		if !strings.Contains(s, want) {
			t.Errorf("serialization %q missing %s", s, want)
		}
	}
}

func TestWriteEmptyElement(t *testing.T) {
	if got := NewElement("br").String(); got != "<br/>" {
		t.Errorf("empty element = %q, want <br/>", got)
	}
}

func TestWriteIndented(t *testing.T) {
	var b strings.Builder
	if err := sample().WriteIndented(&b); err != nil {
		t.Fatalf("WriteIndented: %v", err)
	}
	out := b.String()
	if !strings.Contains(out, "<sname>HP</sname>") {
		t.Errorf("indented output should inline text-only elements:\n%s", out)
	}
	if !strings.Contains(out, "\n  <part>") && !strings.Contains(out, "\n  <part ") {
		t.Errorf("expected indented <part> in:\n%s", out)
	}
}
