package tree

import (
	"runtime/debug"
	"testing"
)

// deepChain builds a pathological single-path document of the given
// element depth, iteratively.
func deepChain(depth int) *Node {
	leaf := NewElement("leaf", NewText("x"))
	cur := leaf
	for i := 0; i < depth-1; i++ {
		cur = NewElement("e", cur)
	}
	return NewDocument(cur)
}

// TestDeepDocumentOps pins the iterative implementations of Equal,
// DeepCopy, SharedNodes and indexing: a document as deep as a generous
// WithMaxDepth admits must not overflow the stack. The goroutine stack
// ceiling is lowered for the duration of the test so a regression back to
// per-node recursion fails (fatally, as a stack overflow) instead of
// silently growing the stack to gigabytes.
func TestDeepDocumentOps(t *testing.T) {
	const depth = 200_000
	old := debug.SetMaxStack(4 << 20)
	defer debug.SetMaxStack(old)

	d := deepChain(depth)
	ix := EnsureIndex(d)
	if want := depth + 2; ix.NumNodes != want { // doc + element chain + one text leaf
		t.Fatalf("NumNodes = %d, want %d", ix.NumNodes, want)
	}

	c := d.DeepCopy()
	if IndexOf(c) != nil {
		t.Fatal("DeepCopy returned an indexed tree")
	}
	if !Equal(d, c) {
		t.Fatal("deep copy not Equal to original")
	}
	if got := SharedNodes(d, c); got != 0 {
		t.Fatalf("deep copy shares %d nodes with the original", got)
	}
	if got := SharedNodes(d, d); got != ix.NumNodes {
		t.Fatalf("self-sharing = %d, want %d", got, ix.NumNodes)
	}

	// Equality must detect a difference buried at the bottom of the chain.
	deepest := c.Root()
	for deepest.Children[0].Kind == Element {
		deepest = deepest.Children[0]
	}
	deepest.Data = "mutated"
	if Equal(d, c) {
		t.Fatal("Equal missed a mutation at maximum depth")
	}
}
