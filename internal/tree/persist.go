package tree

// PathCopy is the persistent (shared-structure) commit path of the
// versioned store: given the result of evaluating an update over a
// sealed snapshot — a tree whose untouched subtrees are the previous
// version's own nodes, shared by reference — it adopts only the new
// nodes (the spine from each change to the root, plus inserted
// content) into the next version of the chain, aliasing everything
// else. The new version shares the previous version's column chunks,
// node arenas, and symbol table; commit cost is O(|delta|) instead of
// the Θ(|T|) a full Freeze pays.
//
// How a version is built:
//
//   - Nodes of out that prev owns (chain membership, OrdOf) are kept by
//     reference: their subtree, ordinals, and column rows carry over
//     untouched. The four update operations never duplicate or move a
//     source subtree, so a member node appears at most once in out and
//     its links are unambiguous.
//   - Every other node is copied into the version's arena and appended
//     at the tail of the chain's ordinal space. Copying (rather than
//     stamping out's nodes in place) matters: evaluators alias query
//     constants (the insert/replace element) into their output, and
//     those may be shared across commits.
//   - Aliased children of new nodes get link fixups: their parent
//     ordinal (the parent was re-created) and, where siblings changed
//     around them, their next-sibling ordinal. Fixups copy only the
//     touched link-column chunks (~1KB each).
//
// Replaced ordinals become holes: NumNodes (the width the evaluators
// size their annotation arrays by) only grows along a chain, while Live
// tracks the reachable count. When the width exceeds compactMinWidth
// and twice the live count, PathCopy falls back to a full Freeze that
// starts a fresh, dense chain — bounding both ordinal-space growth and
// the retention of dead nodes pinned by shared chunks.
//
// prev must be a sealed columnar snapshot (Freeze, or Seal over a fully
// owned tree); anything else falls back to Freeze.
func PathCopy(out *Node, prev *Index) (*Node, *Index, CopyStats) {
	if prev == nil || !prev.sealed || prev.cols == nil || prev.chain == nil {
		return Freeze(out, prev)
	}
	if _, ok := prev.OrdOf(out); ok {
		// The evaluation returned the previous root itself: nothing
		// changed, the "new" version is the old one in full.
		return out, prev, CopyStats{
			SharedWithBase: prev.Live,
			SharedChunks:   prev.cols.NumChunks(),
		}
	}

	ix := &Index{
		Root:   nil, // set below
		sealed: true,
		chain:  prev.chain,
		epoch:  prev.epoch + 1,
	}
	// The chain's symbol table is reused by pointer while the commit
	// introduces no new labels or attribute names, so symbol ids stay
	// comparable across every version of the chain; the first genuinely
	// new name clones it (ids of existing symbols are preserved).
	syms := prev.Syms
	cloned := false
	intern := func(name string) SymID {
		if id := syms.Lookup(name); id != NoSym {
			return id
		}
		if !cloned {
			syms = prev.Syms.Clone()
			cloned = true
		}
		return syms.Intern(name)
	}

	b := newColsBuilder(prev.cols)
	ar := &arena{}
	start := int32(prev.NumNodes)
	next := start
	var stats CopyStats

	// The statistics record is maintained incrementally alongside the
	// copy: nodes this commit creates are added as the walk allocates
	// them (their depth is the walk's frame depth — the spine runs from
	// the root), and the previous version's dropped nodes are
	// subtracted afterwards by a prune-at-aliased-subtrees walk (see
	// below). kept records the ordinals of the aliased subtree roots
	// that walk prunes at.
	ns := prev.Stats().clone(prev.Syms.Len())
	kept := make(map[int32]struct{}, 8)

	// Per-new-node records for the post-walk subtree-size accumulation:
	// parent ordinal and size, indexed by ord-start.
	var parents, sizes []int32

	alloc := func(src *Node) (*Node, int32) {
		dst := ar.alloc(src)
		ord := next
		next++
		b.grow(next)
		stats.Nodes++
		stats.Bytes += nodeBytes + int64(len(dst.Attrs))*attrBytes
		if dst.Kind == Element {
			if !syms.covers(dst.Sym, dst.Label) {
				dst.Sym = intern(dst.Label)
			}
			for i := range dst.Attrs {
				intern(dst.Attrs[i].Name)
			}
		}
		dst.ord = ord
		dst.idx.Store(ix)
		parents = append(parents, NilOrd)
		sizes = append(sizes, 1)
		return dst, ord
	}

	type frame struct {
		src       *Node // node in out (not a member of prev)
		dst       *Node // its arena copy
		ord       int32
		parentOrd int32
		nextOrd   int32 // next-sibling ordinal (NilOrd for last child)
		depth     int32
	}

	root, rootOrd := alloc(out)
	ns.add(root, 0)
	stack := []frame{{out, root, rootOrd, NilOrd, NilOrd, 0}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		parents[f.ord-start] = f.parentOrd

		nc := len(f.src.Children)
		first := NilOrd
		if nc > 0 {
			f.dst.Children = make([]*Node, nc)
			stats.Bytes += int64(nc) * ptrBytes
			// First pass: resolve every child to (node, ordinal), so
			// sibling links are known before any row is written.
			ords := make([]int32, nc)
			for i, ch := range f.src.Children {
				if co, ok := prev.OrdOf(ch); ok {
					f.dst.Children[i] = ch
					ords[i] = co
					kept[co] = struct{}{}
					csz := prev.cols.sizeAt(co)
					sizes[f.ord-start] += csz
					stats.SharedWithBase += int(csz)
					continue
				}
				cd, co := alloc(ch)
				ns.add(cd, f.depth+1)
				f.dst.Children[i] = cd
				ords[i] = co
			}
			first = ords[0]
			// Second pass: aliased children get their (changed) parent
			// and sibling links rewritten in place in the columns; new
			// children get frames carrying theirs.
			for i := nc - 1; i >= 0; i-- {
				sib := NilOrd
				if i+1 < nc {
					sib = ords[i+1]
				}
				ch := f.dst.Children[i]
				if ords[i] < start {
					b.setParent(ords[i], f.ord)
					b.setNext(ords[i], sib)
					continue
				}
				stack = append(stack, frame{f.src.Children[i], ch, ords[i], f.ord, sib, f.depth + 1})
			}
		}
		b.setRow(f.ord, f.dst, f.parentOrd, first, f.nextOrd, 1)
	}

	// Sizes bottom-up: a new node's ordinal is always larger than its
	// new parent's (children are allocated while their parent's frame is
	// processed), so a reverse scan accumulates each subtree before its
	// parent. All new rows sit in fresh tail chunks — in-place writes.
	c := b.c
	for i := int32(len(sizes)) - 1; i >= 0; i-- {
		if p := parents[i]; p >= start {
			sizes[p-start] += sizes[i]
		}
		ord := start + i
		c.size[ord>>ChunkShift][ord&chunkMask] = sizes[i]
	}

	live := int(sizes[0])
	width := int(next)
	if width > compactMinWidth && width > 2*live {
		// The chain's ordinal space has outgrown its live tree: dead
		// ordinals dominate, which bloats every per-ordinal evaluator
		// array and pins dead nodes via shared chunks. Renumber into a
		// fresh, dense chain. The arena copies built above become
		// garbage; correctness is unaffected (out was never stamped).
		return Freeze(out, prev)
	}

	// Subtract the previous version's dropped nodes from the statistics:
	// walk its columns from its root, pruning at every aliased subtree
	// (those survive wholesale, and the update operations never move a
	// surviving subtree, so its depths carry over unchanged). Cost is
	// O(spine + deleted), the same delta the copy itself paid.
	{
		type dframe struct{ ord, depth int32 }
		dstack := make([]dframe, 0, 16)
		po, _ := prev.OrdOf(prev.Root)
		dstack = append(dstack, dframe{po, 0})
		for len(dstack) > 0 {
			f := dstack[len(dstack)-1]
			dstack = dstack[:len(dstack)-1]
			if _, ok := kept[f.ord]; ok {
				continue
			}
			ns.subOrd(prev.cols, f.ord, f.depth)
			for ch := prev.cols.firstAt(f.ord); ch != NilOrd; ch = prev.cols.nextAt(ch) {
				dstack = append(dstack, dframe{ch, f.depth + 1})
			}
		}
	}

	ix.Root = root
	ix.Syms = syms
	ix.NumNodes = width
	ix.Live = live
	ix.cols = b.finish()
	ix.stats.Store(ns)
	stats.Bytes += b.bytes
	stats.CopiedChunks, stats.SharedChunks = b.chunkStats()
	return root, ix, stats
}

// compactMinWidth is the ordinal-space width below which PathCopy never
// compacts: small documents can tolerate any dead ratio, and the
// threshold keeps commit cost stable for them.
const compactMinWidth = 4096
