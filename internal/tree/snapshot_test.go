package tree

import (
	"strings"
	"sync"
	"testing"
)

// buildTestDoc returns a small document built by hand (unindexed).
func buildTestDoc() *Node {
	return NewDocument(
		NewElement("db",
			NewElement("part",
				NewElement("pname", NewText("widget")),
				NewElement("price", NewText("9")).WithAttrs(Attr{Name: "cur", Value: "usd"}),
			),
			NewElement("part",
				NewElement("pname", NewText("gadget")),
			),
		),
	)
}

func TestFreezeStructureAndIndependence(t *testing.T) {
	src := buildTestDoc()
	EnsureIndex(src)

	root, ix, stats := Freeze(src, nil)
	if !Equal(src, root) {
		t.Fatalf("copy differs: got %s want %s", root, src)
	}
	if SharedNodes(src, root) != 0 {
		t.Fatal("snapshot copy shares nodes with its source")
	}
	if !ix.Sealed() {
		t.Fatal("snapshot index not sealed")
	}
	if ix.Root != root {
		t.Fatal("index root is not the copy")
	}
	if want := src.Size(); ix.NumNodes != want || stats.Nodes != want {
		t.Fatalf("NumNodes=%d stats.Nodes=%d want %d", ix.NumNodes, stats.Nodes, want)
	}
	if stats.Bytes <= 0 {
		t.Fatalf("stats.Bytes=%d, want > 0", stats.Bytes)
	}
	// The published index is the one EnsureIndex serves, lock-free.
	if got := EnsureIndex(root); got != ix {
		t.Fatal("EnsureIndex does not return the sealed index")
	}
	// The source document's own index is untouched.
	if got := IndexOf(src); got == nil || got == ix {
		t.Fatal("source index was disturbed by Freeze")
	}
}

// TestFreezePreorderOrdinals pins that ordinals are assigned in
// strict document order: compose's anchoring and dedup rely on ordinal
// comparisons meaning document-order comparisons.
func TestFreezePreorderOrdinals(t *testing.T) {
	src := buildTestDoc()
	root, ix, _ := Freeze(src, nil)
	want := int32(0)
	var walk func(n *Node)
	var fail bool
	walk = func(n *Node) {
		ord, ok := ix.OrdOf(n)
		if !ok || ord != want {
			fail = true
		}
		want++
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(root)
	if fail {
		t.Fatal("ordinals are not a preorder numbering")
	}
}

func TestFreezeClonesBaseSymbols(t *testing.T) {
	src := buildTestDoc()
	baseIx := EnsureIndex(src)
	root, ix, stats := Freeze(src, baseIx)
	if stats.SharedWithBase != src.Size() {
		t.Fatalf("SharedWithBase = %d, want %d (every source node is base-owned)",
			stats.SharedWithBase, src.Size())
	}
	if ix.Syms == baseIx.Syms {
		t.Fatal("snapshot shares the base symbol table instead of cloning it")
	}
	// Same names must keep their ids, so stamped Syms stay valid.
	for _, name := range []string{"db", "part", "pname", "price", "cur"} {
		if got, want := ix.Syms.Lookup(name), baseIx.Syms.Lookup(name); got != want || got == NoSym {
			t.Fatalf("symbol %q: clone id %d, base id %d", name, got, want)
		}
	}
	// New labels intern into the clone without touching the base.
	el := root.Root()
	el.Children = append(el.Children, NewElement("brandnew"))
	// (mutating our private copy pre-publication is fine; re-walk interns)
	if ix.Syms.Lookup("brandnew") != NoSym {
		t.Fatal("unexpected interning") // sanity: not interned by append alone
	}
}

// TestIndexingSkipsSealedSubtrees pins the no-stealing rule: indexing a
// tree that shares subtrees with a sealed snapshot leaves the shared
// nodes owned by the snapshot and simply does not cover them.
func TestIndexingSkipsSealedSubtrees(t *testing.T) {
	src := buildTestDoc()
	snapRoot, snapIx, _ := Freeze(src, nil)

	// Build a tree that shares the snapshot's first <part> subtree.
	sharedPart := snapRoot.Root().Children[0]
	mixed := NewDocument(NewElement("db", sharedPart, NewElement("extra")))

	ix := EnsureIndex(mixed)
	if ix == snapIx {
		t.Fatal("EnsureIndex returned the sealed index for a different root")
	}
	// The shared subtree still belongs to the snapshot.
	if !snapIx.Contains(sharedPart) {
		t.Fatal("sealed node was stolen by re-indexing")
	}
	if _, ok := ix.OrdOf(sharedPart); ok {
		t.Fatal("new index claims membership of a sealed node")
	}
	// Fresh nodes are covered.
	extra := mixed.Root().Children[1]
	if _, ok := ix.OrdOf(extra); !ok {
		t.Fatal("fresh sibling of a sealed subtree was not indexed")
	}
	// And the snapshot's own lookups still work.
	if _, ok := snapIx.OrdOf(sharedPart); !ok {
		t.Fatal("sealed membership lost")
	}
}

func TestEnsureIndexOnSealedInteriorReturnsOwner(t *testing.T) {
	src := buildTestDoc()
	snapRoot, snapIx, _ := Freeze(src, nil)
	part := snapRoot.Root().Children[0]
	if got := EnsureIndex(part); got != snapIx {
		t.Fatalf("EnsureIndex(interior) = %p, want owner %p", got, snapIx)
	}
}

func TestDropIndexIsNoOpOnSealed(t *testing.T) {
	src := buildTestDoc()
	root, ix, _ := Freeze(src, nil)
	DropIndex(root)
	if got := IndexOf(root); got != ix {
		t.Fatal("DropIndex removed a sealed index")
	}
}

func TestSealBuildsAndPins(t *testing.T) {
	doc := buildTestDoc()
	ix := Seal(doc)
	if !ix.Sealed() || ix.Root != doc || ix.NumNodes != doc.Size() {
		t.Fatalf("Seal: sealed=%v root-ok=%v nodes=%d", ix.Sealed(), ix.Root == doc, ix.NumNodes)
	}
	if EnsureIndex(doc) != ix {
		t.Fatal("EnsureIndex rebuilt a sealed index")
	}
	// Sealing an already-indexed document seals that index in place.
	doc2 := buildTestDoc()
	pre := EnsureIndex(doc2)
	if Seal(doc2) != pre {
		t.Fatal("Seal rebuilt an existing owned index")
	}
	if !pre.Sealed() {
		t.Fatal("existing index not sealed")
	}
}

func TestSealedOwner(t *testing.T) {
	plain := buildTestDoc()
	if SealedOwner(plain) != nil {
		t.Fatal("unindexed tree reported a sealed owner")
	}
	EnsureIndex(plain)
	if SealedOwner(plain) != nil {
		t.Fatal("unsealed indexed tree reported a sealed owner")
	}

	src := buildTestDoc()
	snapRoot, snapIx, _ := Freeze(src, nil)
	if SealedOwner(snapRoot) != snapIx {
		t.Fatal("sealed root not detected")
	}
	// Sharing case: a fresh spine over a sealed subtree.
	mixed := NewDocument(NewElement("wrap", snapRoot.Root().Children[0]))
	if SealedOwner(mixed) != snapIx {
		t.Fatal("sealed subtree under fresh spine not detected")
	}
}

// TestSealedConcurrentEnsureWhileIndexingSharingTree is the race-detector
// teeth of the sealed discipline: readers resolve a sealed snapshot's
// index lock-free while another goroutine indexes a tree sharing nodes
// with the snapshot. Without the sealed skip (or with a non-atomic idx
// field) this test fails under -race.
func TestSealedConcurrentEnsureWhileIndexingSharingTree(t *testing.T) {
	src := buildTestDoc()
	snapRoot, snapIx, _ := Freeze(src, nil)
	part := snapRoot.Root().Children[0]

	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for j := 0; j < 200; j++ {
				if EnsureIndex(snapRoot) != snapIx {
					panic("sealed index changed")
				}
				if _, ok := snapIx.OrdOf(part); !ok {
					panic("sealed membership lost")
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		for j := 0; j < 50; j++ {
			mixed := NewDocument(NewElement("db", part, NewElement("extra")))
			EnsureIndex(mixed)
		}
	}()
	close(start)
	wg.Wait()
}

func TestFreezeDeepChain(t *testing.T) {
	// A deep chain must not overflow the stack (iterative walk).
	n := NewElement("leaf")
	for i := 0; i < 100_000; i++ {
		n = NewElement("e", n)
	}
	doc := NewDocument(n)
	root, ix, stats := Freeze(doc, nil)
	if ix.NumNodes != doc.Size() || stats.Nodes != ix.NumNodes {
		t.Fatalf("NumNodes=%d size=%d", ix.NumNodes, doc.Size())
	}
	if !strings.HasPrefix(root.String(), "<e><e>") {
		t.Fatal("unexpected serialization")
	}
}
