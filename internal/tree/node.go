// Package tree implements the in-memory XML document model used throughout
// xtq: ordered trees of document, element and text nodes with attributes.
//
// The model follows the data model of Fan, Cong and Bohannon, "Querying XML
// with Update Syntax" (SIGMOD 2007): a document node with a single element
// child (the root element), elements carrying a label, attributes and an
// ordered child list, and text leaves.
//
// Nodes are treated as immutable once built, which lets the topDown
// evaluator share unmodified subtrees between the input and the output of a
// transform query. The only code that mutates nodes in place is the
// copy-and-update baseline, which always works on a private deep copy.
package tree

import (
	"strings"
	"sync/atomic"
)

// Kind distinguishes the three node kinds of the model.
type Kind uint8

const (
	// Document is the virtual node above the root element. XPath
	// expressions embedded in transform queries are evaluated with the
	// document node as context, so /site/... consumes the root element's
	// label as its first step.
	Document Kind = iota
	// Element is a labelled interior node.
	Element
	// Text is a character-data leaf.
	Text
)

// String returns the kind name, for diagnostics.
func (k Kind) String() string {
	switch k {
	case Document:
		return "document"
	case Element:
		return "element"
	case Text:
		return "text"
	default:
		return "invalid"
	}
}

// Attr is a single name="value" attribute of an element.
type Attr struct {
	Name  string
	Value string
}

// Node is one node of an XML tree. The zero value is not useful; construct
// nodes with NewDocument, NewElement and NewText.
type Node struct {
	Kind     Kind
	Sym      SymID   // interned label symbol; NoSym unless set by a parser or Index walk
	Label    string  // element label; empty for document and text nodes
	Data     string  // character data; set only for text nodes
	Attrs    []Attr  // attributes; set only for element nodes
	Children []*Node // ordered children; empty for text nodes

	// ord and idx are the node's preorder ordinal and owning Index; they
	// are stamped by indexing (see index.go) and read through
	// Index.OrdOf, which validates ownership. idx is atomic so the
	// sealed-snapshot fast path of EnsureIndex can read it without the
	// package mutex while another tree that shares nodes is being
	// indexed.
	ord int32
	idx atomic.Pointer[Index]
}

// NewDocument returns a document node holding root as its root element.
// A nil root yields an empty document.
func NewDocument(root *Node) *Node {
	d := &Node{Kind: Document}
	if root != nil {
		d.Children = []*Node{root}
	}
	return d
}

// NewElement returns an element node with the given label and children.
func NewElement(label string, children ...*Node) *Node {
	return &Node{Kind: Element, Label: label, Children: children}
}

// NewText returns a text node carrying data.
func NewText(data string) *Node {
	return &Node{Kind: Text, Data: data}
}

// WithAttrs returns n after appending the given attributes; it is a
// builder-style convenience for constructing literal trees in tests and
// generators.
func (n *Node) WithAttrs(attrs ...Attr) *Node {
	n.Attrs = append(n.Attrs, attrs...)
	return n
}

// Append adds children to n and returns n.
func (n *Node) Append(children ...*Node) *Node {
	n.Children = append(n.Children, children...)
	return n
}

// Root returns the root element of a document node, or n itself when n is
// already an element. It returns nil for an empty document or a text node.
func (n *Node) Root() *Node {
	switch n.Kind {
	case Document:
		for _, c := range n.Children {
			if c.Kind == Element {
				return c
			}
		}
		return nil
	case Element:
		return n
	default:
		return nil
	}
}

// Attr returns the value of the named attribute and whether it is present.
func (n *Node) Attr(name string) (string, bool) {
	for _, a := range n.Attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// Value returns the node's comparison value as used by qualifier tests of
// the form p = 's': for a text node its character data, and for an element
// the concatenation of its immediate text children. This matches the
// text()-based semantics of algorithm QualDP (Fig. 7 of the paper) and is
// what the streaming evaluator can compute in one pass; it deliberately
// excludes text nested under child elements.
func (n *Node) Value() string {
	if n.Kind == Text {
		return n.Data
	}
	// The overwhelmingly common shapes — no text child, or exactly one —
	// are answered without building (and allocating) a concatenation.
	first := ""
	count := 0
	for _, c := range n.Children {
		if c.Kind == Text {
			if count == 0 {
				first = c.Data
			}
			count++
		}
	}
	if count <= 1 {
		return first
	}
	var b strings.Builder
	for _, c := range n.Children {
		if c.Kind == Text {
			b.WriteString(c.Data)
		}
	}
	return b.String()
}

// Elements returns the element children of n.
func (n *Node) Elements() []*Node {
	out := make([]*Node, 0, len(n.Children))
	for _, c := range n.Children {
		if c.Kind == Element {
			out = append(out, c)
		}
	}
	return out
}

// FirstChild returns the first child of n, or nil.
func (n *Node) FirstChild() *Node {
	if len(n.Children) == 0 {
		return nil
	}
	return n.Children[0]
}

// Size returns the number of nodes in the subtree rooted at n, counting n.
func (n *Node) Size() int {
	total := 1
	for _, c := range n.Children {
		total += c.Size()
	}
	return total
}

// Depth returns the height of the subtree rooted at n; a leaf has depth 1.
func (n *Node) Depth() int {
	max := 0
	for _, c := range n.Children {
		if d := c.Depth(); d > max {
			max = d
		}
	}
	return max + 1
}

// CountElements returns the number of element nodes in the subtree,
// counting n when n is an element.
func (n *Node) CountElements() int {
	total := 0
	if n.Kind == Element {
		total = 1
	}
	for _, c := range n.Children {
		total += c.CountElements()
	}
	return total
}
