package tree

// SymID is a dense per-document symbol: element labels and attribute names
// interned into a Symbols table get consecutive small ids, so the hot
// loops of the evaluators compare labels with one integer comparison and
// index per-symbol lookup slices directly.
//
// ID 0 is reserved as NoSym — "no symbol" — so the zero value of a Node's
// Sym field is self-describingly invalid: a node built outside a parser or
// Index walk never accidentally claims the first interned label.
type SymID int32

// NoSym is the reserved invalid symbol. Lookup returns it for names absent
// from the table; evaluators treat it as "fall back to string comparison".
const NoSym SymID = 0

// Symbols is a symbol table mapping names to dense SymIDs. A table has two
// phases: while a document is being built (parser, Index walk) its single
// owner interns freely; once the document's Index is published the table
// is frozen and may be read from any number of goroutines concurrently.
// Interning into a table reachable from a published Index is a data race.
type Symbols struct {
	names []string
	ids   map[string]SymID
}

// NewSymbols returns an empty table with id 0 reserved.
func NewSymbols() *Symbols {
	return &Symbols{names: []string{""}, ids: make(map[string]SymID, 64)}
}

// Intern returns the id of name, assigning the next dense id on first use.
func (s *Symbols) Intern(name string) SymID {
	if id, ok := s.ids[name]; ok {
		return id
	}
	id := SymID(len(s.names))
	s.names = append(s.names, name)
	s.ids[name] = id
	return id
}

// InternBytes is Intern for a scratch byte buffer. It returns the id and
// the canonical string, allocating only on first sight of a name — the
// parser's hot path, where repeated element and attribute names dominate.
func (s *Symbols) InternBytes(b []byte) (SymID, string) {
	if id, ok := s.ids[string(b)]; ok {
		return id, s.names[id]
	}
	name := string(b)
	id := SymID(len(s.names))
	s.names = append(s.names, name)
	s.ids[name] = id
	return id, name
}

// Clone returns a private copy of the table assigning every existing
// name the same id, so symbols stamped against the original stay valid
// against the clone. Cloning is how a store commit derives the next
// version's table from the frozen table of the previous snapshot: the
// clone interns any labels the update introduced, then freezes in turn.
func (s *Symbols) Clone() *Symbols {
	c := &Symbols{
		names: append([]string(nil), s.names...),
		ids:   make(map[string]SymID, len(s.ids)+8),
	}
	for name, id := range s.ids {
		c.ids[name] = id
	}
	return c
}

// Lookup returns the id of name, or NoSym when it was never interned.
// Unlike Intern it never mutates the table, so it is safe on frozen
// tables shared between goroutines.
func (s *Symbols) Lookup(name string) SymID {
	return s.ids[name]
}

// Name returns the name of id; NoSym yields the empty string.
func (s *Symbols) Name(id SymID) string {
	if id <= NoSym || int(id) >= len(s.names) {
		return ""
	}
	return s.names[id]
}

// Len returns the table size including the reserved id 0, i.e. the length
// a dense per-symbol slice must have to be indexable by every assigned id.
func (s *Symbols) Len() int { return len(s.names) }

// covers reports whether sym is a valid id in s naming exactly label; the
// Index walk uses it to keep parser-assigned symbols instead of
// re-interning every element.
func (s *Symbols) covers(sym SymID, label string) bool {
	return sym > NoSym && int(sym) < len(s.names) && s.names[sym] == label
}
