// Package stats is the document side of the cost-based method planner:
// a read-only view over the per-snapshot statistics record the tree
// layer collects at Seal/Freeze time and maintains in O(|delta|) across
// PathCopy commits (internal/tree/stats.go). The planner
// (internal/plan) consumes this view by label name — it never touches
// symbol ids or the columns — so the cost model stays independent of
// the storage layout.
package stats

import "xtq/internal/tree"

// Doc is the statistics view of one document version. The zero Doc
// (Valid() == false) stands for "no statistics available" and makes
// every estimate degrade to a conservative whole-document guess.
type Doc struct {
	ix *tree.Index
	s  *tree.Stats
}

// Of returns the statistics view of the document version ix indexes.
// For sealed snapshots the record is precomputed and this is O(1); a
// plain evaluation index pays one tree walk on first use (cached on the
// index). A nil index yields the zero Doc.
func Of(ix *tree.Index) Doc {
	if ix == nil {
		return Doc{}
	}
	return Doc{ix: ix, s: ix.Stats()}
}

// Valid reports whether the view carries a statistics record.
func (d Doc) Valid() bool { return d.s != nil }

// Nodes returns the live node count (including the document node).
func (d Doc) Nodes() int {
	if d.s == nil {
		return 0
	}
	return d.s.Nodes
}

// Elems returns the live element count.
func (d Doc) Elems() int {
	if d.s == nil {
		return 0
	}
	return d.s.Elems
}

// Attrs returns the attribute count across all live elements.
func (d Doc) Attrs() int {
	if d.s == nil {
		return 0
	}
	return d.s.Attrs
}

// TextBytes returns the total character-data bytes of live text nodes.
func (d Doc) TextBytes() int64 {
	if d.s == nil {
		return 0
	}
	return d.s.TextBytes
}

// MaxDepth returns the document height (clamped at the histogram
// width; see tree.DepthBuckets).
func (d Doc) MaxDepth() int {
	if d.s == nil {
		return 0
	}
	return int(d.s.MaxDepth())
}

// AtDepth returns the number of live nodes at the given depth (document
// node at 0). Depths beyond the histogram are folded into its last
// bucket.
func (d Doc) AtDepth(depth int) int {
	if d.s == nil || depth < 0 {
		return 0
	}
	if depth >= tree.DepthBuckets {
		depth = tree.DepthBuckets - 1
	}
	return int(d.s.Depth[depth])
}

// BelowDepth returns the number of live nodes strictly deeper than the
// given depth — the subtree mass a descendant step launched from that
// depth can possibly scan.
func (d Doc) BelowDepth(depth int) int {
	if d.s == nil {
		return 0
	}
	if depth < 0 {
		depth = -1
	}
	n := 0
	for b := depth + 1; b < tree.DepthBuckets; b++ {
		n += int(d.s.Depth[b])
	}
	return n
}

// Count returns the number of live elements labeled label. Labels the
// document has never interned count zero — exactly the elements a label
// test on them would select.
func (d Doc) Count(label string) int {
	if d.s == nil || d.ix == nil {
		return 0
	}
	return d.s.Count(d.ix.Syms.Lookup(label))
}

// Fanout returns the average number of children per element — the
// branching factor the estimator expands child-step frontiers by.
// Every non-root node is some element's child, so (Nodes-1)/Elems.
func (d Doc) Fanout() float64 {
	if d.s == nil || d.s.Elems == 0 {
		return 1
	}
	f := float64(d.s.Nodes-1) / float64(d.s.Elems)
	if f < 1 {
		return 1
	}
	return f
}

// Fingerprint identifies the statistics record: two equal fingerprints
// mean the same record (same document version chain state), so a
// planner decision keyed by (query, Fingerprint) is valid exactly as
// long as the statistics are. Zero for the zero Doc.
func (d Doc) Fingerprint() uint64 {
	if d.s == nil {
		return 0
	}
	return d.s.Gen
}

// Recount computes the statistics of ix by a full walk, bypassing the
// cached record — the oracle the O(|delta|) incremental maintenance is
// verified against in tests.
func Recount(ix *tree.Index) *tree.Stats { return tree.RecountStats(ix) }
