package automaton

import "testing"

func TestCovered(t *testing.T) {
	cases := []struct {
		name        string
		upd, view   string
		strict      bool
		insertLabel string
		covered     bool
	}{
		// At-or-below: the word itself counts as its own prefix.
		{"same path", "//a", "//a", false, "", true},
		{"below deleted region", "/a/b/c", "/a/b", false, "", true},
		{"descendant under //", "/a//c", "//a", false, "", true},
		{"disjoint labels", "/a/b", "/x", false, "", false},
		{"sibling paths", "/a/b", "/a/c", false, "", false},
		{"update above view", "/a", "/a/b", false, "", false},
		{"wild view covers all", "/a/b", "/*", false, "", true},
		{"wild view absorbs all depths", "//x", "/*", false, "", true}, // every word's depth-1 prefix matches '*'
		{"view double wild", "//x", "//*", false, "", true},
		{"skip via //", "/a//c", "/a/b", false, "", false}, // w = a·c bypasses b

		// Strict: a proper prefix must be accepted.
		{"strict same path", "//a", "//a", true, "", false},
		{"strict below", "/a/b", "/a", true, "", true},
		{"strict at root", "/a", "/*", true, "", false},
		{"strict deep //", "//b", "/a", true, "", false}, // w = b has no proper prefix
		{"strict under //", "/a//b/c", "/a//b", true, "", true},

		// Insert refinement: the word becomes w·label.
		{"insert matched element", "//item", "//secret", false, "secret", true},
		{"insert unmatched element", "//item", "//other", false, "secret", false},
		{"insert under deleted region", "/a/b", "/a", false, "x", true},
		{"insert completes view path", "/a", "/a/x", false, "x", true},
		{"insert misses view path", "/a", "/a/x/y", false, "x", false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			u := mustNFA(t, tc.upd)
			v := mustNFA(t, tc.view)
			covered, ok := Covered(u, v, tc.strict, tc.insertLabel, 0)
			if !ok {
				t.Fatalf("Covered(%s, %s) hit the state cap", tc.upd, tc.view)
			}
			if covered != tc.covered {
				t.Errorf("Covered(%s, %s, strict=%v, insert=%q) = %v, want %v",
					tc.upd, tc.view, tc.strict, tc.insertLabel, covered, tc.covered)
			}
		})
	}
}

func TestCoveredQualifiersIgnored(t *testing.T) {
	// Qualifiers on the update path widen the accepted set; coverage
	// must still hold when the unqualified superset is covered …
	u := mustNFA(t, `/a/b[c = "1"]`)
	v := mustNFA(t, "/a")
	if covered, ok := Covered(u, v, true, "", 0); !ok || !covered {
		t.Errorf("qualified update under deleted parent: covered=%v ok=%v, want true,true", covered, ok)
	}
	// … and must not be claimed when only the qualified subset would be.
	v2 := mustNFA(t, "/a/b")
	if covered, ok := Covered(u, v2, true, "", 0); !ok || covered {
		t.Errorf("strict coverage via the word itself: covered=%v ok=%v, want false,true", covered, ok)
	}
}

func TestCoveredStateCap(t *testing.T) {
	u := mustNFA(t, "//a//b//c")
	v := mustNFA(t, "//x//y//z")
	if _, ok := Covered(u, v, false, "", 1); ok {
		t.Error("cap of 1 product state should report ok=false")
	}
}

func TestAliveSet(t *testing.T) {
	// Chain automata never construct dead states: every state reaches
	// the final state, including '//' self-loop states.
	for _, expr := range []string{"/a", "//a/b", "/a//b/*//c"} {
		m := mustNFA(t, expr)
		alive := m.AliveSet()
		for i := range m.States {
			if !alive.Has(i) {
				t.Errorf("%s: state %d not alive", expr, i)
			}
		}
	}
}
