// Static impact analysis over selecting NFAs: a product construction
// deciding whether every node an update can select is "absorbed" by a
// view's selection — the automata-intersection idea of Solimando et al.
// ("Automata-based Static Analysis of XML Document Adaptation") applied
// to the paper's chain automata of §3.4.
//
// Both automata run over root paths: a word a1…an is the sequence of
// element labels from the document root down to a node. The update's
// NFA u describes which nodes a commit touches; the view's NFA v
// describes which nodes the view's first layer deletes or replaces. If
// every u-selected word is provably at or below a v-selected node, the
// touched region is invisible to the view's output and the view is
// statically unaffected by the commit.
//
// Qualifiers are ignored on both sides (Step with keep == nil), which
// makes u accept a superset of the really-touched words — sound for
// coverage, since covering the superset covers the real set. Callers
// that need qualifier precision on v must not use this analysis (the
// ivm layer reports such views as unknown).
package automaton

import "encoding/binary"

// DefaultCoverCap bounds the number of product states Covered explores
// before giving up. Chain automata keep the product tiny (|u|·|v|
// subset pairs in practice); the cap only guards adversarial inputs.
const DefaultCoverCap = 4096

// Covered reports whether every word accepted by u is absorbed by v:
//
//   - strict == false ("at or below"): some prefix of the word,
//     including the word itself, is accepted by v;
//   - strict == true ("strictly below"): some proper prefix is
//     accepted by v.
//
// A non-empty insertLabel switches to the insert refinement (strict is
// ignored): the word under test becomes w·insertLabel for every
// u-accepted w — the root path of an element inserted as a child of a
// selected node — and absorption may also happen at that appended
// position (v deleting the inserted element hides its whole subtree).
//
// ok is false when the exploration exceeded capStates product states
// (capStates <= 0 uses DefaultCoverCap); covered is then meaningless
// and the caller should fall back to "unknown".
//
// The alphabet is the set of labels tested by either automaton plus a
// single fresh symbol: transitions only compare labels for equality
// (or accept anything via '*'/self-loops), so all labels outside the
// tested set behave identically and one representative suffices.
func Covered(u, v *NFA, strict bool, insertLabel string, capStates int) (covered, ok bool) {
	if capStates <= 0 {
		capStates = DefaultCoverCap
	}
	alphabet := coverAlphabet(u, v)

	// Product states are (Su, Sv) pairs with an implicit absorbed=false
	// flag: once a prefix is v-accepted, no extension can be a
	// counterexample in any mode, so absorbed branches are pruned
	// instead of tracked. Likewise Su = ∅ can never reach a u-final
	// word again and is pruned.
	type pair struct {
		su, sv StateSet
	}
	start := pair{u.InitialSet(), v.InitialSet()}
	// The empty word is never accepted: final states are consuming
	// states and unreachable through ε-closure alone.
	visited := map[string]bool{coverKey(start.su, start.sv): true}
	queue := []pair{start}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, a := range alphabet {
			su := u.Step(cur.su, a, nil)
			if su.Empty() {
				// Quick reject before paying for the v step: an empty
				// u-set can neither accept nor recover (Step(∅) = ∅).
				continue
			}
			sv := v.Step(cur.sv, a, nil)
			matchNow := v.Matches(sv)
			if u.Matches(su) {
				// cur has absorbed=false by construction, so the only
				// prefix that can save the word is the one just read
				// (or, in insert mode, the appended insert label).
				switch {
				case insertLabel != "":
					sve := v.Step(sv, insertLabel, nil)
					if !matchNow && !v.Matches(sve) {
						return false, true
					}
				case strict:
					return false, true
				default:
					if !matchNow {
						return false, true
					}
				}
			}
			if matchNow {
				continue // absorbed: no extension can go bad
			}
			k := coverKey(su, sv)
			if visited[k] {
				continue
			}
			if len(visited) >= capStates {
				return false, false
			}
			visited[k] = true
			queue = append(queue, pair{su, sv})
		}
	}
	return true, true
}

// coverAlphabet returns the labels tested by any transition of the
// given automata plus one fresh symbol standing in for "every other
// label". "\x00" cannot occur in an XML element name, so it is always
// fresh.
func coverAlphabet(ms ...*NFA) []string {
	seen := make(map[string]bool)
	var out []string
	for _, m := range ms {
		for i := range m.States {
			st := &m.States[i]
			if st.Next >= 0 && !st.NextWild && !seen[st.NextLabel] {
				seen[st.NextLabel] = true
				out = append(out, st.NextLabel)
			}
		}
	}
	return append(out, "\x00")
}

// coverKey encodes a product state for the visited set. Both bitsets
// have a fixed word count per automaton, so plain concatenation is
// unambiguous.
func coverKey(su, sv StateSet) string {
	b := make([]byte, 8*(len(su)+len(sv)))
	for i, w := range su {
		binary.LittleEndian.PutUint64(b[i*8:], w)
	}
	off := 8 * len(su)
	for i, w := range sv {
		binary.LittleEndian.PutUint64(b[off+i*8:], w)
	}
	return string(b)
}

// HasQualifiers reports whether any state of the NFA carries a
// qualifier — the condition that rules out both the coverage analysis
// above (on the view side) and the memoizing delta evaluator.
func (m *NFA) HasQualifiers() bool {
	for i := range m.States {
		if len(m.States[i].Quals) > 0 {
			return true
		}
	}
	return false
}

// AliveSet returns the states from which the final state is reachable
// through label/ε transitions. For the chain automata New builds this
// is every state — the construction never creates dead branches — but
// the delta evaluator masks its state sets with it anyway, so that
// "no alive state left" is the pruning condition rather than the
// construction-specific "empty set".
func (m *NFA) AliveSet() StateSet {
	alive := m.NewSet()
	alive.Add(m.Final)
	// Transitions point to equal-or-higher IDs by construction, so one
	// descending pass converges; loop to a fixpoint anyway in case the
	// construction ever changes.
	for changed := true; changed; {
		changed = false
		for id := len(m.States) - 1; id >= 0; id-- {
			if alive.Has(id) {
				continue
			}
			st := &m.States[id]
			if (st.Next >= 0 && alive.Has(st.Next)) || (st.Eps >= 0 && alive.Has(st.Eps)) {
				alive.Add(id)
				changed = true
			}
		}
	}
	return alive
}
