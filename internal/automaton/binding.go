package automaton

import "xtq/internal/tree"

// Binding resolves an NFA's labelled transitions against one document's
// symbol table, so stepping compares dense tree.SymIDs instead of label
// strings. A compiled query (and its NFA) is cached across documents,
// while symbol ids are per document — the binding is the per-document
// half, built at the Prepare/Eval boundary in O(states) time.
//
// Symbols the binding cannot resolve keep working through a string
// fallback: a consumed node whose own symbol is NoSym (a virtual label
// introduced by a rename or a constant element, never interned into the
// document's table) is matched by comparing NextLabel directly. Nodes of
// an indexed document always carry a valid symbol, so the fallback never
// fires on the in-memory hot paths.
type Binding struct {
	// M is the bound automaton.
	M *NFA
	// Syms is the bound symbol table; per-symbol caches size their rows
	// by its Len.
	Syms *tree.Symbols
	// nextSym[id] is the symbol of States[id].NextLabel in the bound
	// table, or NoSym when the state has no labelled transition or the
	// table has never seen the label (such a transition can only fire
	// through the string fallback).
	nextSym []tree.SymID
}

// Bind resolves m against a frozen symbol table (an indexed document's).
// It performs lookups only — the table is never mutated, so one frozen
// table may be bound by any number of concurrent evaluations.
func (m *NFA) Bind(syms *tree.Symbols) *Binding {
	b := &Binding{M: m, Syms: syms, nextSym: make([]tree.SymID, len(m.States))}
	for i := range m.States {
		st := &m.States[i]
		if st.Next >= 0 && !st.NextWild && st.NextLabel != "" {
			b.nextSym[i] = syms.Lookup(st.NextLabel)
		}
	}
	return b
}

// BindIntern resolves m against a growing table the caller owns — the
// streaming parse path, where document names keep arriving after the
// binding is built. Interning the query's labels up front guarantees
// every one of them has an id, so later transitions resolve by integer
// comparison no matter when (or whether) the document first uses the
// label.
func (m *NFA) BindIntern(syms *tree.Symbols) *Binding {
	b := &Binding{M: m, Syms: syms, nextSym: make([]tree.SymID, len(m.States))}
	for i := range m.States {
		st := &m.States[i]
		if st.Next >= 0 && !st.NextWild && st.NextLabel != "" {
			b.nextSym[i] = syms.Intern(st.NextLabel)
		}
	}
	return b
}

// matches reports whether state id's labelled transition fires on a node
// with the given symbol (string fallback for NoSym).
func (b *Binding) matches(id int, sym tree.SymID, label string) bool {
	st := &b.M.States[id]
	if st.Next < 0 {
		return false
	}
	if st.NextWild {
		return true
	}
	if sym != tree.NoSym {
		return b.nextSym[id] == sym
	}
	return st.NextLabel == label
}

// StepInto is NFA.StepInto resolving the label test through the binding:
// from state set s, consume an element carrying sym (and label, used only
// when sym is NoSym), writing the successor set into out (cleared first).
// keep is the checkp() hook; nil accepts every candidate.
func (b *Binding) StepInto(s StateSet, sym tree.SymID, label string, keep func(stateID int) bool, out StateSet) {
	for i := range out {
		out[i] = 0
	}
	m := b.M
	s.ForEach(func(id int) {
		st := &m.States[id]
		if st.SelfLoop {
			m.addEps(out, id)
		}
		if b.matches(id, sym, label) {
			if keep == nil || keep(st.Next) {
				m.addEps(out, st.Next)
			}
		}
	})
}

// Step is StepInto allocating a fresh set.
func (b *Binding) Step(s StateSet, sym tree.SymID, label string, keep func(stateID int) bool) StateSet {
	out := b.M.NewSet()
	b.StepInto(s, sym, label, keep, out)
	return out
}

// EnteredQualsInto appends to buf the qualifier ids (into M.LQ) of the
// states entered by consuming an element with sym/label from s, without
// checking them — the top-level qualifiers the bottom-up passes must
// evaluate at that node. It returns the extended buf, so per-depth
// callers can reuse storage.
func (b *Binding) EnteredQualsInto(s StateSet, sym tree.SymID, label string, buf []int) []int {
	m := b.M
	s.ForEach(func(id int) {
		if b.matches(id, sym, label) {
			next := m.States[id].Next
			if len(m.States[next].Quals) > 0 {
				buf = append(buf, m.States[next].QualID)
			}
		}
	})
	return buf
}
