package automaton

import (
	"xtq/internal/tree"
	"xtq/internal/xpath"
)

// Config is an interned node configuration of the unchecked automaton:
// the state set in force for a node's children plus the qualifier work at
// the node itself. Because the unchecked transition depends only on the
// parent's configuration and the element's label, documents hit a small
// number of distinct configurations, and memoizing them turns the
// per-element work of the bottom-up passes — nextStates, EnteredQuals,
// the LQ closure and the child-needs propagation of §5 — into a single
// dense array lookup. Both SAX passes of twoPassSAX derive identical
// configuration sequences from identical (parent, label) streams, which
// is what keeps their qualifier-log cursors in sync.
//
// A Config is immutable once returned by Step; treat all fields as
// read-only.
type Config struct {
	// ID is the dense configuration id within its cache.
	ID int
	// Next is the unchecked successor state set (Fig. 9 lines 1-2).
	Next StateSet
	// QualIDs are the top-level qualifiers (ids into the NFA's LQ)
	// evaluated at this node, in state order.
	QualIDs []int
	// EvalIDs is the sub-expression closure run through QualDP here.
	EvalIDs []int
	// ChildNeeds are the qualifier ids the node's children must provide
	// (the list LQ(S') descent of §5).
	ChildNeeds []int
	// Pruned marks a dead configuration: no automaton state alive and no
	// qualifier pending, so the whole subtree is irrelevant (Fig. 9
	// line 6).
	Pruned bool
}

// ConfigCache interns configurations and memoizes their transitions. The
// transition table is a dense per-symbol slice per configuration —
// trans[cfg.ID][sym] — so steady-state processing of an element is one
// bounds-checked load; labels without a symbol (virtual labels on
// composed views) go through a small string-keyed spill map instead.
//
// A cache belongs to one evaluation or one parse: it is not safe for
// concurrent use.
type ConfigCache struct {
	b    *Binding
	lq   *xpath.LQ
	root *Config

	configs []*Config
	trans   [][]*Config // trans[parent.ID][sym], rows allocated lazily
	spill   map[spillKey]*Config

	rootsBuf []int // scratch for Step
}

type spillKey struct {
	parent int
	label  string
}

// NewConfigCache returns a cache for stepping b's automaton.
func NewConfigCache(b *Binding) *ConfigCache {
	c := &ConfigCache{b: b, lq: b.M.LQ}
	c.root = &Config{ID: 0, Next: b.M.InitialSet()}
	c.configs = []*Config{c.root}
	c.trans = [][]*Config{nil}
	return c
}

// Root returns the document-node configuration: the initial state set with
// no pending qualifiers.
func (c *ConfigCache) Root() *Config { return c.root }

// NumConfigs returns the number of distinct configurations interned.
func (c *ConfigCache) NumConfigs() int { return len(c.configs) }

// Step returns the configuration for an element carrying sym (and label,
// consulted only when sym is NoSym) whose parent has configuration p.
func (c *ConfigCache) Step(p *Config, sym tree.SymID, label string) *Config {
	if sym != tree.NoSym {
		row := c.trans[p.ID]
		if int(sym) < len(row) {
			if cfg := row[sym]; cfg != nil {
				return cfg
			}
		}
		cfg := c.build(p, sym, label)
		c.store(p.ID, sym, cfg)
		return cfg
	}
	k := spillKey{parent: p.ID, label: label}
	if cfg, ok := c.spill[k]; ok {
		return cfg
	}
	cfg := c.build(p, sym, label)
	if c.spill == nil {
		c.spill = make(map[spillKey]*Config)
	}
	c.spill[k] = cfg
	return cfg
}

// store records a transition, growing the parent's per-symbol row to the
// current table size (symbol tables keep growing during streaming
// parses, so rows are sized generously to avoid repeated regrowth).
func (c *ConfigCache) store(parent int, sym tree.SymID, cfg *Config) {
	row := c.trans[parent]
	if int(sym) >= len(row) {
		size := c.b.Syms.Len()
		if size <= int(sym) {
			size = int(sym) + 1
		}
		grown := make([]*Config, size)
		copy(grown, row)
		row = grown
		c.trans[parent] = row
	}
	row[sym] = cfg
}

func (c *ConfigCache) build(p *Config, sym tree.SymID, label string) *Config {
	next := c.b.M.NewSet()
	c.b.StepInto(p.Next, sym, label, nil, next)
	c.rootsBuf = c.b.EnteredQualsInto(p.Next, sym, label, c.rootsBuf[:0])
	qualIDs := append([]int(nil), c.rootsBuf...)
	roots := append(c.rootsBuf, p.ChildNeeds...)
	cfg := &Config{ID: len(c.configs), Next: next, QualIDs: qualIDs}
	if next.Empty() && len(roots) == 0 {
		cfg.Pruned = true
	} else {
		cfg.EvalIDs = c.lq.Closure(roots)
		cfg.ChildNeeds = c.lq.ChildNeeds(cfg.EvalIDs)
	}
	c.configs = append(c.configs, cfg)
	c.trans = append(c.trans, nil)
	return cfg
}
